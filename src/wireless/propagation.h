// Physical propagation constants and delay.
//
// The paper's latency terms d/c (Eqs. 6, 16, 18, 23) use straight-line
// propagation at the speed of light; this module centralizes that constant
// and the unit conversions the framework uses (ms everywhere).
#pragma once

namespace xr::wireless {

/// Speed of light in vacuum, m/s.
inline constexpr double kSpeedOfLightMps = 299'792'458.0;

/// One-way propagation delay in milliseconds over `distance_m` meters.
/// Throws std::invalid_argument for negative distances.
[[nodiscard]] double propagation_delay_ms(double distance_m);

/// Convert a payload size in megabytes to transmission milliseconds over a
/// throughput in Mbit/s: (MB * 8) / Mbps * 1000. Throws on non-positive rate
/// or negative size.
[[nodiscard]] double transmission_time_ms(double payload_mb,
                                          double throughput_mbps);

}  // namespace xr::wireless
