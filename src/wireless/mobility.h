// Random-walk mobility over wireless coverage zones.
//
// The paper models XR-device mobility with the Random Walk model and derives
// the probability P(HO) that the device crosses from one wireless coverage
// zone into another during a frame's processing time (Eq. 17 uses
// L_HO = l_HO * P(HO)). This module provides the 2-D random walk, a circular
// coverage-zone geometry, the analytic boundary-crossing probability, and a
// Monte-Carlo estimator used to validate it.
#pragma once

#include <cstddef>
#include <vector>

#include "math/rng.h"

namespace xr::wireless {

/// 2-D position in meters.
struct Vec2 {
  double x = 0;
  double y = 0;
};

[[nodiscard]] double distance(const Vec2& a, const Vec2& b) noexcept;

/// Classic random-walk (a.k.a. random-direction) mobility: at each step the
/// node picks a uniformly random heading and advances `step_length` meters.
class RandomWalk {
 public:
  /// step_length: distance per step (m); must be > 0.
  RandomWalk(Vec2 start, double step_length, math::Rng rng);

  /// Advance one step and return the new position.
  Vec2 step();
  [[nodiscard]] const Vec2& position() const noexcept { return pos_; }
  [[nodiscard]] double step_length() const noexcept { return step_; }

 private:
  Vec2 pos_;
  double step_;
  math::Rng rng_;
};

/// A circular wireless coverage zone (access point / base station cell).
struct CoverageZone {
  Vec2 center;
  double radius_m = 0;
  /// True when the neighbouring zone uses a different access technology, so
  /// leaving this zone triggers a *vertical* handoff.
  bool vertical_neighbor = false;

  [[nodiscard]] bool contains(const Vec2& p) const noexcept;
};

/// Analytic per-step boundary-crossing probability for a random walk that is
/// uniformly positioned inside a disk of radius R and moves `step` meters in
/// a uniform direction:
///   P(HO) ≈ 2 * step / (pi * R)    for step << R
/// (the exact expression integrates the chord geometry; we use the standard
/// first-order result from the location-management literature [49]).
/// Requires 0 < step < R.
[[nodiscard]] double random_walk_crossing_probability(double step_length_m,
                                                      double zone_radius_m);

/// Monte-Carlo estimate of the same probability: place the node uniformly in
/// the disk, take one random-direction step, count exits. Used in tests to
/// validate the analytic form.
[[nodiscard]] double estimate_crossing_probability(double step_length_m,
                                                   double zone_radius_m,
                                                   std::size_t trials,
                                                   math::Rng& rng);

/// Fraction of steps of a long random walk confined to a disk (reflected at
/// the boundary) that would have exited — an empirical handoff rate.
[[nodiscard]] double simulate_handoff_rate(double step_length_m,
                                           double zone_radius_m,
                                           std::size_t steps, math::Rng& rng);

}  // namespace xr::wireless
