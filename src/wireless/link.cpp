#include "wireless/link.h"

#include <algorithm>
#include <stdexcept>

namespace xr::wireless {

LinkModel::LinkModel(double throughput_mbps)
    : fixed_throughput_mbps_(throughput_mbps) {
  if (throughput_mbps <= 0)
    throw std::invalid_argument("LinkModel: throughput must be > 0");
}

LinkModel::LinkModel(ChannelConfig channel) : channel_(channel) {
  if (channel.bandwidth_mhz <= 0 || channel.carrier_frequency_hz <= 0)
    throw std::invalid_argument("LinkModel: invalid channel config");
  if (channel.efficiency <= 0 || channel.efficiency > 1)
    throw std::invalid_argument("LinkModel: efficiency in (0, 1]");
}

double LinkModel::throughput_mbps(double distance_m, math::Rng* rng) const {
  if (!channel_) return fixed_throughput_mbps_;
  const auto& ch = *channel_;
  const double d = std::max(distance_m, ch.reference_distance_m);
  const double ref_loss =
      free_space_path_loss_db(ch.reference_distance_m,
                              ch.carrier_frequency_hz);
  const double pl = log_distance_path_loss_db(
      d, ch.reference_distance_m, ref_loss, ch.path_loss_exponent);
  double shadow = 0.0;
  double fading = 1.0;
  if (rng != nullptr) {
    if (ch.shadowing_sigma_db > 0) shadow = shadowing_db(ch.shadowing_sigma_db, *rng);
    if (ch.rician_k_factor >= 0) fading = rician_power_gain(ch.rician_k_factor, *rng);
  }
  const double snr = received_snr_linear(ch.tx_power_dbm, pl, shadow, fading,
                                         ch.noise_floor_dbm);
  return std::max(ch.efficiency * shannon_capacity_mbps(ch.bandwidth_mhz, snr),
                  1e-3);
}

double LinkModel::transmission_latency_ms(double payload_mb, double distance_m,
                                          math::Rng* rng) const {
  if (payload_mb < 0)
    throw std::invalid_argument("transmission_latency_ms: negative payload");
  return transmission_time_ms(payload_mb, throughput_mbps(distance_m, rng)) +
         propagation_delay_ms(distance_m);
}

}  // namespace xr::wireless
