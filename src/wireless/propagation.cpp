#include "wireless/propagation.h"

#include <stdexcept>

namespace xr::wireless {

double propagation_delay_ms(double distance_m) {
  if (distance_m < 0)
    throw std::invalid_argument("propagation_delay_ms: negative distance");
  return distance_m / kSpeedOfLightMps * 1000.0;
}

double transmission_time_ms(double payload_mb, double throughput_mbps) {
  if (payload_mb < 0)
    throw std::invalid_argument("transmission_time_ms: negative payload");
  if (throughput_mbps <= 0)
    throw std::invalid_argument("transmission_time_ms: rate must be > 0");
  return payload_mb * 8.0 / throughput_mbps * 1000.0;
}

}  // namespace xr::wireless
