#include "wireless/pathloss.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace xr::wireless {

double free_space_path_loss_db(double distance_m, double frequency_hz) {
  if (distance_m <= 0 || frequency_hz <= 0)
    throw std::invalid_argument("free_space_path_loss_db: positive args");
  return 20.0 * std::log10(distance_m) + 20.0 * std::log10(frequency_hz) -
         147.55221677811662;  // 20 log10(4 pi / c)
}

double log_distance_path_loss_db(double distance_m,
                                 double reference_distance_m,
                                 double reference_loss_db, double exponent) {
  if (reference_distance_m <= 0 || distance_m < reference_distance_m)
    throw std::invalid_argument(
        "log_distance_path_loss_db: need d >= d0 > 0");
  if (exponent <= 0)
    throw std::invalid_argument("log_distance_path_loss_db: exponent > 0");
  return reference_loss_db +
         10.0 * exponent * std::log10(distance_m / reference_distance_m);
}

double two_ray_path_loss_db(double distance_m, double tx_height_m,
                            double rx_height_m) {
  if (distance_m <= 0 || tx_height_m <= 0 || rx_height_m <= 0)
    throw std::invalid_argument("two_ray_path_loss_db: positive args");
  return 40.0 * std::log10(distance_m) -
         20.0 * std::log10(tx_height_m * rx_height_m);
}

double shadowing_db(double sigma_db, math::Rng& rng) {
  if (sigma_db < 0)
    throw std::invalid_argument("shadowing_db: sigma must be >= 0");
  return rng.normal(0.0, sigma_db);
}

double rayleigh_power_gain(math::Rng& rng) { return rng.exponential(1.0); }

double rician_power_gain(double k_factor, math::Rng& rng) {
  if (k_factor < 0)
    throw std::invalid_argument("rician_power_gain: K must be >= 0");
  // Complex Gaussian with LOS component: mean power normalized to 1.
  const double sigma = std::sqrt(1.0 / (2.0 * (k_factor + 1.0)));
  const double los = std::sqrt(k_factor / (k_factor + 1.0));
  const double re = los + sigma * rng.normal();
  const double im = sigma * rng.normal();
  return re * re + im * im;
}

double db_to_linear(double db) noexcept { return std::pow(10.0, db / 10.0); }

double linear_to_db(double linear) {
  if (linear <= 0)
    throw std::invalid_argument("linear_to_db: positive values only");
  return 10.0 * std::log10(linear);
}

double shannon_capacity_mbps(double bandwidth_mhz, double snr_linear) {
  if (bandwidth_mhz <= 0)
    throw std::invalid_argument("shannon_capacity_mbps: bandwidth > 0");
  if (snr_linear < 0)
    throw std::invalid_argument("shannon_capacity_mbps: SNR >= 0");
  return bandwidth_mhz * std::log2(1.0 + snr_linear);
}

double received_snr_linear(double tx_power_dbm, double path_loss_db,
                           double shadow_db, double fading_gain_linear,
                           double noise_floor_dbm) {
  if (fading_gain_linear < 0)
    throw std::invalid_argument("received_snr_linear: fading gain >= 0");
  const double rx_dbm = tx_power_dbm - path_loss_db - shadow_db;
  return db_to_linear(rx_dbm - noise_floor_dbm) * fading_gain_linear;
}

}  // namespace xr::wireless
