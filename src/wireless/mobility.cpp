#include "wireless/mobility.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace xr::wireless {

double distance(const Vec2& a, const Vec2& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

RandomWalk::RandomWalk(Vec2 start, double step_length, math::Rng rng)
    : pos_(start), step_(step_length), rng_(rng) {
  if (step_length <= 0)
    throw std::invalid_argument("RandomWalk: step length must be > 0");
}

Vec2 RandomWalk::step() {
  const double theta = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  pos_.x += step_ * std::cos(theta);
  pos_.y += step_ * std::sin(theta);
  return pos_;
}

bool CoverageZone::contains(const Vec2& p) const noexcept {
  return distance(center, p) <= radius_m;
}

double random_walk_crossing_probability(double step_length_m,
                                        double zone_radius_m) {
  if (step_length_m <= 0 || zone_radius_m <= 0)
    throw std::invalid_argument(
        "random_walk_crossing_probability: positive args");
  if (step_length_m >= zone_radius_m)
    throw std::invalid_argument(
        "random_walk_crossing_probability: step must be < radius");
  return 2.0 * step_length_m / (std::numbers::pi * zone_radius_m);
}

namespace {
Vec2 uniform_in_disk(double radius, math::Rng& rng) {
  // Inverse-CDF sampling: r = R sqrt(u) gives uniform area density.
  const double r = radius * std::sqrt(rng.uniform());
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return Vec2{r * std::cos(theta), r * std::sin(theta)};
}
}  // namespace

double estimate_crossing_probability(double step_length_m,
                                     double zone_radius_m, std::size_t trials,
                                     math::Rng& rng) {
  if (trials == 0)
    throw std::invalid_argument("estimate_crossing_probability: 0 trials");
  const CoverageZone zone{Vec2{0, 0}, zone_radius_m, false};
  std::size_t exits = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    Vec2 p = uniform_in_disk(zone_radius_m, rng);
    const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
    p.x += step_length_m * std::cos(theta);
    p.y += step_length_m * std::sin(theta);
    if (!zone.contains(p)) ++exits;
  }
  return double(exits) / double(trials);
}

double simulate_handoff_rate(double step_length_m, double zone_radius_m,
                             std::size_t steps, math::Rng& rng) {
  if (steps == 0)
    throw std::invalid_argument("simulate_handoff_rate: 0 steps");
  const CoverageZone zone{Vec2{0, 0}, zone_radius_m, false};
  RandomWalk walk(Vec2{0, 0}, step_length_m, rng.stream("walk"));
  std::size_t handoffs = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    const Vec2 next = walk.step();
    if (!zone.contains(next)) {
      ++handoffs;
      // Re-enter: model the neighbouring zone as a fresh zone by reflecting
      // the walker back to a uniformly random interior point.
      const Vec2 fresh = uniform_in_disk(zone_radius_m * 0.9, rng);
      walk = RandomWalk(fresh, step_length_m, rng.stream("walk-reset"));
    }
  }
  return double(handoffs) / double(steps);
}

}  // namespace xr::wireless
