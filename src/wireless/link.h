// Wireless link model: Eq. (16) transmission latency and optional channel
// impairments.
//
// The paper's transmission latency is L_tr = δ_f3 / r_w + d_ε / c, with r_w
// the available throughput (Mbps) and d_ε the device↔edge distance. The base
// model ignores path loss ("can be added ... based on system requirements");
// LinkModel supports both the bare form and a channel-derived throughput.
#pragma once

#include <optional>

#include "math/rng.h"
#include "wireless/pathloss.h"
#include "wireless/propagation.h"

namespace xr::wireless {

/// Optional channel impairment description used to derive throughput from
/// physical parameters instead of a fixed configured rate.
struct ChannelConfig {
  double carrier_frequency_hz = 5.0e9;  ///< 5 GHz Wi-Fi by default.
  double bandwidth_mhz = 80.0;
  double tx_power_dbm = 20.0;
  double noise_floor_dbm = -90.0;
  double shadowing_sigma_db = 0.0;   ///< 0 disables shadowing.
  double rician_k_factor = -1.0;     ///< <0 disables fading; 0 = Rayleigh.
  double path_loss_exponent = 2.0;   ///< log-distance exponent.
  double reference_distance_m = 1.0;
  /// Fraction of Shannon capacity achievable by the MAC/PHY stack (TCP over
  /// Wi-Fi typically reaches 50–65% of the PHY rate).
  double efficiency = 0.6;
};

/// A point-to-point wireless link between the XR device and a peer
/// (edge server, sensor, or cooperative device).
class LinkModel {
 public:
  /// Fixed-throughput link (the paper's base model): r_w in Mbps.
  explicit LinkModel(double throughput_mbps);

  /// Channel-derived link: throughput computed per-call from the channel
  /// config and distance (deterministic unless shadowing/fading enabled).
  explicit LinkModel(ChannelConfig channel);

  /// Eq. (16): L_tr = payload/r_w + d/c, in ms. payload in MB, distance in m.
  /// For a channel-derived link, `rng` supplies shadowing/fading draws; pass
  /// nullptr for the deterministic mean channel.
  [[nodiscard]] double transmission_latency_ms(double payload_mb,
                                               double distance_m,
                                               math::Rng* rng = nullptr) const;

  /// Throughput in Mbps at the given distance (fixed value or derived).
  [[nodiscard]] double throughput_mbps(double distance_m,
                                       math::Rng* rng = nullptr) const;

  [[nodiscard]] bool channel_derived() const noexcept {
    return channel_.has_value();
  }

 private:
  double fixed_throughput_mbps_ = 0;
  std::optional<ChannelConfig> channel_;
};

}  // namespace xr::wireless
