// Path-loss, shadowing, and fading models.
//
// The paper's base latency model "assume[s] no path loss, shadowing, or
// fading effects ... which can be incorporated into the model according to
// system requirements" (§IV). This module supplies those optional effects:
// free-space / log-distance / two-ray path loss, lognormal shadowing, and
// Rayleigh/Rician small-scale fading, which the ground-truth simulator and
// the extended examples use to perturb link throughput.
#pragma once

#include "math/rng.h"

namespace xr::wireless {

/// Free-space path loss in dB at distance d (m) and frequency f (Hz).
/// FSPL = 20 log10(d) + 20 log10(f) − 147.55. Requires d, f > 0.
[[nodiscard]] double free_space_path_loss_db(double distance_m,
                                             double frequency_hz);

/// Log-distance path loss: PL(d) = PL(d0) + 10 n log10(d/d0).
/// Requires d >= d0 > 0 and exponent n > 0.
[[nodiscard]] double log_distance_path_loss_db(double distance_m,
                                               double reference_distance_m,
                                               double reference_loss_db,
                                               double exponent);

/// Two-ray ground-reflection loss (far field): PL = 40 log10(d)
/// − 20 log10(ht hr). Requires positive arguments.
[[nodiscard]] double two_ray_path_loss_db(double distance_m,
                                          double tx_height_m,
                                          double rx_height_m);

/// Lognormal shadowing sample in dB: N(0, sigma_db).
[[nodiscard]] double shadowing_db(double sigma_db, math::Rng& rng);

/// Rayleigh-fading power gain (linear, mean 1): Exp(1).
[[nodiscard]] double rayleigh_power_gain(math::Rng& rng);

/// Rician-fading power gain (linear, mean 1) with K-factor (linear >= 0).
/// K = 0 degenerates to Rayleigh.
[[nodiscard]] double rician_power_gain(double k_factor, math::Rng& rng);

/// Convert dB to linear power ratio and back.
[[nodiscard]] double db_to_linear(double db) noexcept;
[[nodiscard]] double linear_to_db(double linear);

/// Shannon capacity in Mbit/s for bandwidth (MHz) and linear SNR.
[[nodiscard]] double shannon_capacity_mbps(double bandwidth_mhz,
                                           double snr_linear);

/// Received SNR (linear) from tx power (dBm), path loss (dB), shadowing
/// (dB), fading power gain (linear), and noise floor (dBm).
[[nodiscard]] double received_snr_linear(double tx_power_dbm,
                                         double path_loss_db,
                                         double shadowing_db,
                                         double fading_gain_linear,
                                         double noise_floor_dbm);

}  // namespace xr::wireless
