#include "wireless/handoff.h"

#include <stdexcept>

namespace xr::wireless {

HandoffModel::HandoffModel(HandoffLatencyConfig config, double zone_radius_m,
                           double step_length_m, double vertical_fraction)
    : config_(config),
      zone_radius_m_(zone_radius_m),
      step_length_m_(step_length_m),
      vertical_fraction_(vertical_fraction) {
  if (zone_radius_m <= 0 || step_length_m <= 0)
    throw std::invalid_argument("HandoffModel: positive geometry required");
  if (step_length_m >= zone_radius_m)
    throw std::invalid_argument("HandoffModel: step must be < zone radius");
  if (vertical_fraction < 0 || vertical_fraction > 1)
    throw std::invalid_argument("HandoffModel: vertical fraction in [0,1]");
}

double HandoffModel::event_latency_ms(HandoffKind kind) const noexcept {
  const double horizontal = config_.l2_scan_ms + config_.l2_auth_assoc_ms +
                            config_.l3_registration_ms +
                            config_.service_migration_ms;
  if (kind == HandoffKind::kHorizontal) return horizontal;
  return horizontal + config_.interface_activation_ms +
         config_.vertical_auth_ms + config_.vertical_l3_ms;
}

double HandoffModel::handoff_probability() const {
  return random_walk_crossing_probability(step_length_m_, zone_radius_m_);
}

double HandoffModel::expected_latency_ms() const {
  const double l_ho =
      (1.0 - vertical_fraction_) *
          event_latency_ms(HandoffKind::kHorizontal) +
      vertical_fraction_ * event_latency_ms(HandoffKind::kVertical);
  return l_ho * handoff_probability();
}

}  // namespace xr::wireless
