// Handoff (service-migration) latency model — Eq. (17).
//
// The paper considers an XR device leaving one wireless coverage zone for
// another, with horizontal handoffs (same access technology / sub-network)
// and vertical handoffs (different technology, e.g. Wi-Fi → cellular),
// following the latency breakdowns of [50] (802.11 mobile-IP fast handoff)
// and [51] (vertical WLAN/UMTS handoff). The average per-frame handoff
// latency is L_HO = l_HO * P(HO).
#pragma once

#include "wireless/mobility.h"

namespace xr::wireless {

/// Kind of handoff an exit from the current zone triggers.
enum class HandoffKind { kHorizontal, kVertical };

/// Component latencies of a single handoff event, in ms. Defaults follow the
/// 802.11 / mobile-IP measurements in [50] and the vertical-handoff analysis
/// in [51]: L2 scanning dominates horizontal HO; authentication and L3
/// re-registration dominate vertical HO.
struct HandoffLatencyConfig {
  // Horizontal (intra-technology) components.
  double l2_scan_ms = 50.0;         ///< 802.11 channel probe/scan.
  double l2_auth_assoc_ms = 8.0;    ///< authentication + reassociation.
  double l3_registration_ms = 12.0; ///< mobile-IP binding update (same
                                    ///< subnet: often skipped; kept small).
  // Additional vertical (inter-technology) components.
  double interface_activation_ms = 120.0;  ///< power up target radio.
  double vertical_auth_ms = 180.0;         ///< AAA across networks.
  double vertical_l3_ms = 250.0;           ///< cross-network registration.
  /// Edge service-migration cost added when the serving edge changes.
  double service_migration_ms = 0.0;
};

/// Handoff model combining the per-event latency with the random-walk
/// crossing probability.
class HandoffModel {
 public:
  /// zone_radius_m: coverage radius; step_length_m: device movement per
  /// frame-processing interval; vertical_fraction: probability that a zone
  /// exit crosses technologies (0 = all horizontal, 1 = all vertical).
  HandoffModel(HandoffLatencyConfig config, double zone_radius_m,
               double step_length_m, double vertical_fraction);

  /// Latency of one handoff event of the given kind, l_HO, in ms.
  [[nodiscard]] double event_latency_ms(HandoffKind kind) const noexcept;

  /// Probability that a handoff occurs during one frame's processing time
  /// (random-walk crossing probability).
  [[nodiscard]] double handoff_probability() const;

  /// Eq. (17): expected handoff latency charged to one frame, in ms.
  /// Averages horizontal/vertical event latencies by vertical_fraction.
  [[nodiscard]] double expected_latency_ms() const;

  [[nodiscard]] const HandoffLatencyConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] double vertical_fraction() const noexcept {
    return vertical_fraction_;
  }

 private:
  HandoffLatencyConfig config_;
  double zone_radius_m_;
  double step_length_m_;
  double vertical_fraction_;
};

}  // namespace xr::wireless
