#include "runtime/batch_evaluator.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <numeric>

#include "obs/registry.h"
#include "obs/span.h"

namespace xr::runtime {

BatchEvaluator::BatchEvaluator(core::XrPerformanceModel model,
                               BatchOptions options)
    : model_(std::move(model)), grain_(options.grain) {
  if (options.threads != 0)
    own_pool_ = std::make_unique<ThreadPool>(options.threads);
}

BatchResult BatchEvaluator::run(const ScenarioGrid& grid) const {
  static obs::Counter runs("runtime.batch.runs");
  static obs::Counter points("runtime.batch.points");
  static obs::Histogram run_ms("runtime.batch.run_ms",
                               obs::Histogram::latency_bounds_ms());
  static obs::Gauge points_per_sec("runtime.batch.last_points_per_sec");
  const obs::Span span("batch.run");

  BatchResult out;
  const std::size_t n = grid.size();
  const auto t0 = std::chrono::steady_clock::now();
  out.reports = pool().map(
      n, [&](std::size_t i) { return model_.evaluate(grid.at(i)); }, grain_);
  const auto t1 = std::chrono::steady_clock::now();
  out.stats.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.stats.threads = pool().size();
  out.stats.evaluated = n;
  out.stats.candidates_per_sec =
      out.stats.wall_ms > 0 ? 1000.0 * double(n) / out.stats.wall_ms : 0.0;
  runs.add();
  points.add(n);
  run_ms.observe(out.stats.wall_ms);
  points_per_sec.set(out.stats.candidates_per_sec);

  // Reductions run over the index-ordered reports, so they are independent
  // of how the parallel pass scheduled the evaluations.
  out.min_latency_ms = std::numeric_limits<double>::infinity();
  out.max_latency_ms = -std::numeric_limits<double>::infinity();
  out.min_energy_mj = std::numeric_limits<double>::infinity();
  out.max_energy_mj = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double l = out.reports[i].latency.total;
    const double e = out.reports[i].energy.total;
    if (l < out.min_latency_ms) {
      out.min_latency_ms = l;
      out.best_latency_index = i;
    }
    out.max_latency_ms = std::max(out.max_latency_ms, l);
    if (e < out.min_energy_mj) {
      out.min_energy_mj = e;
      out.best_energy_index = i;
    }
    out.max_energy_mj = std::max(out.max_energy_mj, e);
  }

  // Pareto frontier: sort indices by (latency, energy), keep strictly
  // improving energy — same construction the optimizer historically used.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double la = out.reports[a].latency.total;
                     const double lb = out.reports[b].latency.total;
                     if (la != lb) return la < lb;
                     return out.reports[a].energy.total <
                            out.reports[b].energy.total;
                   });
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t i : order) {
    if (out.reports[i].energy.total < best_energy) {
      out.pareto_indices.push_back(i);
      best_energy = out.reports[i].energy.total;
    }
  }
  return out;
}

}  // namespace xr::runtime
