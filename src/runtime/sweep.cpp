#include "runtime/sweep.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/framework.h"
#include "core/serialize.h"

namespace xr::runtime {

namespace {

core::EdgeConfig edge_template(const core::ScenarioConfig& s) {
  return s.inference.edges.empty() ? core::EdgeConfig{}
                                   : s.inference.edges.front();
}

void set_edge_count(core::ScenarioConfig& s, int count) {
  if (count < 1)
    throw std::invalid_argument("SweepSpec: edge count must be >= 1");
  const core::EdgeConfig tmpl = edge_template(s);
  s.inference.edges.assign(std::size_t(count), tmpl);
  for (std::size_t e = 0; e < s.inference.edges.size(); ++e) {
    s.inference.edges[e].omega_edge = 1.0 / double(count);
    s.inference.edges[e].name = "edge-" + std::to_string(e);
  }
}

[[noreturn]] void axis_error(const AxisSpec& spec, const std::string& what) {
  throw std::invalid_argument("axis '" + spec.knob + "': " + what);
}

std::string number_label(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Points for a numeric knob: label "knob=value", one setter per value.
SweepAxis numeric_axis(const AxisSpec& spec,
                       void (*set)(core::ScenarioConfig&, double)) {
  SweepAxis axis{spec.knob, {}};
  axis.points.reserve(spec.numbers.size());
  for (double v : spec.numbers)
    axis.points.push_back(AxisPoint{
        spec.knob + "=" + number_label(v),
        [set, v](core::ScenarioConfig& s) { set(s, v); }});
  return axis;
}

/// Points for a string knob.
SweepAxis string_axis(const AxisSpec& spec,
                      void (*set)(core::ScenarioConfig&,
                                  const std::string&)) {
  SweepAxis axis{spec.knob, {}};
  axis.points.reserve(spec.strings.size());
  for (const std::string& v : spec.strings)
    axis.points.push_back(AxisPoint{
        spec.knob + "=" + v,
        [set, v](core::ScenarioConfig& s) { set(s, v); }});
  return axis;
}

void apply_placement(core::ScenarioConfig& s, core::InferencePlacement p) {
  s.inference.placement = p;
  if (p == core::InferencePlacement::kLocal) {
    s.inference.omega_client = 1.0;
    s.inference.edges.clear();
  } else {
    s.inference.omega_client = 0.0;
    if (s.inference.edges.empty()) set_edge_count(s, 1);
  }
}

}  // namespace

bool knob_is_numeric(const std::string& knob) {
  if (knob == "frame_size" || knob == "cpu_ghz" || knob == "omega_c" ||
      knob == "codec_mbps" || knob == "throughput_mbps" ||
      knob == "edge_count")
    return true;
  if (knob == "placement" || knob == "local_cnn" || knob == "edge_cnn")
    return false;
  throw std::invalid_argument(
      "axis '" + knob +
      "': unknown knob (known: frame_size, cpu_ghz, omega_c, codec_mbps, "
      "throughput_mbps, edge_count, placement, local_cnn, edge_cnn)");
}

SweepAxis axis_from_spec(const AxisSpec& spec) {
  if (!spec.numbers.empty() && !spec.strings.empty())
    axis_error(spec, "has both numeric and string values");
  const bool numeric = knob_is_numeric(spec.knob);
  if (numeric && spec.numbers.empty())
    axis_error(spec, spec.strings.empty()
                         ? "has no values"
                         : "takes numeric values, got strings");
  if (!numeric && spec.strings.empty())
    axis_error(spec, spec.numbers.empty()
                         ? "has no values"
                         : "takes string values, got numbers");

  if (spec.knob == "frame_size")
    return numeric_axis(spec, [](core::ScenarioConfig& s, double size) {
      s.frame.frame_size = size;
      s.frame.scene_size = size;
      s.frame.converted_size = size * 0.6;
    });
  if (spec.knob == "cpu_ghz")
    return numeric_axis(spec, [](core::ScenarioConfig& s, double ghz) {
      s.client.cpu_ghz = ghz;
    });
  if (spec.knob == "omega_c")
    return numeric_axis(spec, [](core::ScenarioConfig& s, double wc) {
      s.client.omega_c = wc;
    });
  if (spec.knob == "codec_mbps")
    return numeric_axis(spec, [](core::ScenarioConfig& s, double rate) {
      s.codec.bitrate_mbps = rate;
    });
  if (spec.knob == "throughput_mbps")
    return numeric_axis(spec, [](core::ScenarioConfig& s, double rate) {
      s.network.throughput_mbps = rate;
    });
  if (spec.knob == "edge_count") {
    SweepAxis axis{spec.knob, {}};
    axis.points.reserve(spec.numbers.size());
    for (double v : spec.numbers) {
      if (v < 1.0 || v != std::floor(v))
        axis_error(spec, "edge counts must be integers >= 1 (got " +
                             number_label(v) + ")");
      const int count = int(v);
      axis.points.push_back(AxisPoint{
          spec.knob + "=" + std::to_string(count),
          [count](core::ScenarioConfig& s) { set_edge_count(s, count); }});
    }
    return axis;
  }
  if (spec.knob == "placement") {
    SweepAxis axis{spec.knob, {}};
    axis.points.reserve(spec.strings.size());
    for (const std::string& v : spec.strings) {
      core::InferencePlacement p;
      try {
        p = core::placement_from_name(v);
      } catch (const std::invalid_argument& e) {
        axis_error(spec, e.what());
      }
      axis.points.push_back(AxisPoint{
          spec.knob + "=" + v,
          [p](core::ScenarioConfig& s) { apply_placement(s, p); }});
    }
    return axis;
  }
  if (spec.knob == "local_cnn")
    return string_axis(spec,
                       [](core::ScenarioConfig& s, const std::string& n) {
                         s.inference.local_cnn_name = n;
                       });
  // knob_is_numeric already rejected unknown names; only edge_cnn is left.
  return string_axis(spec, [](core::ScenarioConfig& s, const std::string& n) {
    for (auto& e : s.inference.edges) e.cnn_name = n;
  });
}

// ---- AxisSpec JSON ------------------------------------------------------

core::Json AxisSpec::to_json() const {
  core::Json a = core::Json::object();
  a.set("knob", knob);
  core::Json values = core::Json::array();
  if (!strings.empty())
    for (const auto& s : strings) values.push_back(core::Json(s));
  else
    for (double v : numbers) values.push_back(core::Json(v));
  a.set("values", std::move(values));
  return a;
}

AxisSpec AxisSpec::from_json(const core::Json& j) {
  AxisSpec axis;
  axis.knob = j.at("knob").as_string();
  for (const core::Json& v : j.at("values").as_array()) {
    if (v.is_string())
      axis.strings.push_back(v.as_string());
    else
      axis.numbers.push_back(v.as_double());
  }
  if (!axis.strings.empty() && !axis.numbers.empty())
    axis_error(axis, "mixes string and numeric values");
  return axis;
}

// ---- GridSpec -----------------------------------------------------------

void GridSpec::validate() const {
  (void)base_config();
  for (std::size_t i = 0; i < axes.size(); ++i) {
    (void)axis_from_spec(axes[i]);
    for (std::size_t k = 0; k < i; ++k)
      if (axes[k].knob == axes[i].knob)
        throw std::invalid_argument("axis '" + axes[i].knob +
                                    "': duplicate knob across axes");
  }
}

core::ScenarioConfig GridSpec::base_config() const {
  if (scenario) return *scenario;
  if (factory == "local")
    return core::make_local_scenario(frame_size, cpu_ghz);
  if (factory == "remote")
    return core::make_remote_scenario(frame_size, cpu_ghz);
  throw std::invalid_argument("GridSpec: unknown base '" + factory +
                              "' (expected 'local' or 'remote')");
}

ScenarioGrid GridSpec::build() const {
  // SweepSpec's constructor re-runs every check validate() makes (base
  // name, per-axis validation, duplicate knobs), so no separate pass.
  return SweepSpec(*this).build();
}

core::Json GridSpec::to_json() const {
  core::Json b = core::Json::object();
  if (scenario) {
    b.set("scenario", core::to_json(*scenario));
  } else {
    b.set("scenario", factory);
    b.set("frame_size", frame_size);
    b.set("cpu_ghz", cpu_ghz);
  }

  core::Json ax = core::Json::array();
  for (const auto& axis : axes) ax.push_back(axis.to_json());

  core::Json out = core::Json::object();
  out.set("base", std::move(b));
  out.set("axes", std::move(ax));
  return out;
}

GridSpec GridSpec::from_json(const core::Json& j) {
  GridSpec out;
  const core::Json& base = j.at("base");
  const core::Json& which = base.at("scenario");
  if (which.is_string()) {
    out.factory = which.as_string();
    out.frame_size = base.at("frame_size").as_double();
    out.cpu_ghz = base.at("cpu_ghz").as_double();
  } else {
    out.scenario = core::scenario_from_json(which);
  }
  for (const core::Json& a : j.at("axes").as_array())
    out.axes.push_back(AxisSpec::from_json(a));
  out.validate();
  return out;
}

// ---- SweepSpec ----------------------------------------------------------

SweepSpec::SweepSpec(const GridSpec& spec) : base_(spec.base_config()) {
  for (const auto& a : spec.axes) axis_spec(a);
}

std::string SweepSpec::value_label(double v) { return number_label(v); }

std::string SweepSpec::value_label(int v) { return std::to_string(v); }

std::string SweepSpec::value_label(core::InferencePlacement p) {
  return core::placement_name(p);
}

SweepSpec& SweepSpec::axis(std::string name, std::vector<AxisPoint> points) {
  if (points.empty())
    throw std::invalid_argument("SweepSpec: axis '" + name + "' is empty");
  for (const auto& existing : axes_)
    if (existing.name == name)
      throw std::invalid_argument("SweepSpec: duplicate axis '" + name + "'");
  axes_.push_back(SweepAxis{std::move(name), std::move(points)});
  specs_.push_back(std::nullopt);  // closure axes are not serializable
  return *this;
}

SweepSpec& SweepSpec::axis_spec(AxisSpec spec) {
  SweepAxis built = axis_from_spec(spec);  // eager validation
  for (const auto& existing : axes_)
    if (existing.name == built.name)
      throw std::invalid_argument("SweepSpec: duplicate axis '" + built.name +
                                  "'");
  axes_.push_back(std::move(built));
  specs_.push_back(std::move(spec));
  return *this;
}

SweepSpec& SweepSpec::frame_sizes(const std::vector<double>& sizes) {
  AxisSpec a;
  a.knob = "frame_size";
  a.numbers = sizes;
  return axis_spec(std::move(a));
}

SweepSpec& SweepSpec::cpu_clocks_ghz(const std::vector<double>& clocks) {
  AxisSpec a;
  a.knob = "cpu_ghz";
  a.numbers = clocks;
  return axis_spec(std::move(a));
}

SweepSpec& SweepSpec::omega_c(const std::vector<double>& shares) {
  AxisSpec a;
  a.knob = "omega_c";
  a.numbers = shares;
  return axis_spec(std::move(a));
}

SweepSpec& SweepSpec::placements(
    const std::vector<core::InferencePlacement>& p) {
  AxisSpec a;
  a.knob = "placement";
  a.strings.reserve(p.size());
  for (core::InferencePlacement placement : p)
    a.strings.push_back(value_label(placement));
  return axis_spec(std::move(a));
}

SweepSpec& SweepSpec::local_cnns(const std::vector<std::string>& names) {
  AxisSpec a;
  a.knob = "local_cnn";
  a.strings = names;
  return axis_spec(std::move(a));
}

SweepSpec& SweepSpec::edge_cnns(const std::vector<std::string>& names) {
  AxisSpec a;
  a.knob = "edge_cnn";
  a.strings = names;
  return axis_spec(std::move(a));
}

SweepSpec& SweepSpec::edge_counts(const std::vector<int>& counts) {
  AxisSpec a;
  a.knob = "edge_count";
  a.numbers.reserve(counts.size());
  for (int c : counts) a.numbers.push_back(double(c));
  return axis_spec(std::move(a));
}

SweepSpec& SweepSpec::codec_bitrates_mbps(const std::vector<double>& mbps) {
  AxisSpec a;
  a.knob = "codec_mbps";
  a.numbers = mbps;
  return axis_spec(std::move(a));
}

SweepSpec& SweepSpec::network_throughputs_mbps(
    const std::vector<double>& mbps) {
  AxisSpec a;
  a.knob = "throughput_mbps";
  a.numbers = mbps;
  return axis_spec(std::move(a));
}

bool SweepSpec::serializable() const noexcept {
  for (const auto& s : specs_)
    if (!s) return false;
  return true;
}

GridSpec SweepSpec::grid_spec() const {
  GridSpec out;
  out.scenario = base_;
  out.axes.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (!specs_[i])
      throw std::invalid_argument(
          "SweepSpec: axis '" + axes_[i].name +
          "' is a closure axis (the non-serializable escape hatch); it "
          "cannot be expressed as a GridSpec");
    out.axes.push_back(*specs_[i]);
  }
  return out;
}

ScenarioGrid SweepSpec::build() const { return ScenarioGrid(base_, axes_); }

ScenarioGrid::ScenarioGrid(core::ScenarioConfig base,
                           std::vector<SweepAxis> axes)
    : base_(std::move(base)), axes_(std::move(axes)) {
  for (const auto& a : axes_) size_ *= a.points.size();
}

std::vector<std::size_t> ScenarioGrid::coords(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("ScenarioGrid: index out of range");
  std::vector<std::size_t> c(axes_.size(), 0);
  // Mixed-radix decode, last axis fastest (axis 0 is the outermost loop).
  for (std::size_t k = axes_.size(); k-- > 0;) {
    const std::size_t radix = axes_[k].points.size();
    c[k] = i % radix;
    i /= radix;
  }
  return c;
}

std::size_t ScenarioGrid::index_of(
    const std::vector<std::size_t>& coords) const {
  if (coords.size() != axes_.size())
    throw std::invalid_argument("ScenarioGrid: coords rank mismatch");
  std::size_t i = 0;
  for (std::size_t k = 0; k < axes_.size(); ++k) {
    if (coords[k] >= axes_[k].points.size())
      throw std::out_of_range("ScenarioGrid: coord out of range");
    i = i * axes_[k].points.size() + coords[k];
  }
  return i;
}

core::ScenarioConfig ScenarioGrid::at(std::size_t i) const {
  const auto c = coords(i);
  core::ScenarioConfig s = base_;
  for (std::size_t k = 0; k < axes_.size(); ++k)
    axes_[k].points[c[k]].apply(s);
  return s;
}

std::string ScenarioGrid::label(std::size_t i) const {
  const auto c = coords(i);
  std::string out;
  for (std::size_t k = 0; k < axes_.size(); ++k) {
    if (k) out += ", ";
    out += axes_[k].points[c[k]].label;
  }
  return out;
}

}  // namespace xr::runtime
