#include "runtime/sweep.h"

#include <cstdio>
#include <stdexcept>

namespace xr::runtime {

namespace {

core::EdgeConfig edge_template(const core::ScenarioConfig& s) {
  return s.inference.edges.empty() ? core::EdgeConfig{}
                                   : s.inference.edges.front();
}

void set_edge_count(core::ScenarioConfig& s, int count) {
  if (count < 1)
    throw std::invalid_argument("SweepSpec: edge count must be >= 1");
  const core::EdgeConfig tmpl = edge_template(s);
  s.inference.edges.assign(std::size_t(count), tmpl);
  for (std::size_t e = 0; e < s.inference.edges.size(); ++e) {
    s.inference.edges[e].omega_edge = 1.0 / double(count);
    s.inference.edges[e].name = "edge-" + std::to_string(e);
  }
}

}  // namespace

std::string SweepSpec::value_label(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string SweepSpec::value_label(int v) { return std::to_string(v); }

std::string SweepSpec::value_label(core::InferencePlacement p) {
  return p == core::InferencePlacement::kLocal ? "local" : "remote";
}

SweepSpec& SweepSpec::axis(std::string name, std::vector<AxisPoint> points) {
  if (points.empty())
    throw std::invalid_argument("SweepSpec: axis '" + name + "' is empty");
  for (const auto& existing : axes_)
    if (existing.name == name)
      throw std::invalid_argument("SweepSpec: duplicate axis '" + name + "'");
  axes_.push_back(SweepAxis{std::move(name), std::move(points)});
  return *this;
}

SweepSpec& SweepSpec::frame_sizes(const std::vector<double>& sizes) {
  return axis<double>("frame_size", sizes,
                      [](core::ScenarioConfig& s, const double& size) {
                        s.frame.frame_size = size;
                        s.frame.scene_size = size;
                        s.frame.converted_size = size * 0.6;
                      });
}

SweepSpec& SweepSpec::cpu_clocks_ghz(const std::vector<double>& clocks) {
  return axis<double>("cpu_ghz", clocks,
                      [](core::ScenarioConfig& s, const double& ghz) {
                        s.client.cpu_ghz = ghz;
                      });
}

SweepSpec& SweepSpec::omega_c(const std::vector<double>& shares) {
  return axis<double>("omega_c", shares,
                      [](core::ScenarioConfig& s, const double& wc) {
                        s.client.omega_c = wc;
                      });
}

SweepSpec& SweepSpec::placements(
    const std::vector<core::InferencePlacement>& p) {
  return axis<core::InferencePlacement>(
      "placement", p,
      [](core::ScenarioConfig& s, const core::InferencePlacement& where) {
        s.inference.placement = where;
        if (where == core::InferencePlacement::kLocal) {
          s.inference.omega_client = 1.0;
          s.inference.edges.clear();
        } else {
          s.inference.omega_client = 0.0;
          if (s.inference.edges.empty()) set_edge_count(s, 1);
        }
      });
}

SweepSpec& SweepSpec::local_cnns(const std::vector<std::string>& names) {
  return axis<std::string>("local_cnn", names,
                           [](core::ScenarioConfig& s, const std::string& n) {
                             s.inference.local_cnn_name = n;
                           });
}

SweepSpec& SweepSpec::edge_cnns(const std::vector<std::string>& names) {
  return axis<std::string>("edge_cnn", names,
                           [](core::ScenarioConfig& s, const std::string& n) {
                             for (auto& e : s.inference.edges) e.cnn_name = n;
                           });
}

SweepSpec& SweepSpec::edge_counts(const std::vector<int>& counts) {
  return axis<int>("edge_count", counts,
                   [](core::ScenarioConfig& s, const int& count) {
                     set_edge_count(s, count);
                   });
}

SweepSpec& SweepSpec::codec_bitrates_mbps(const std::vector<double>& mbps) {
  return axis<double>("codec_mbps", mbps,
                      [](core::ScenarioConfig& s, const double& rate) {
                        s.codec.bitrate_mbps = rate;
                      });
}

SweepSpec& SweepSpec::network_throughputs_mbps(
    const std::vector<double>& mbps) {
  return axis<double>("throughput_mbps", mbps,
                      [](core::ScenarioConfig& s, const double& rate) {
                        s.network.throughput_mbps = rate;
                      });
}

ScenarioGrid SweepSpec::build() const { return ScenarioGrid(base_, axes_); }

ScenarioGrid::ScenarioGrid(core::ScenarioConfig base,
                           std::vector<SweepAxis> axes)
    : base_(std::move(base)), axes_(std::move(axes)) {
  for (const auto& a : axes_) size_ *= a.points.size();
}

std::vector<std::size_t> ScenarioGrid::coords(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("ScenarioGrid: index out of range");
  std::vector<std::size_t> c(axes_.size(), 0);
  // Mixed-radix decode, last axis fastest (axis 0 is the outermost loop).
  for (std::size_t k = axes_.size(); k-- > 0;) {
    const std::size_t radix = axes_[k].points.size();
    c[k] = i % radix;
    i /= radix;
  }
  return c;
}

std::size_t ScenarioGrid::index_of(
    const std::vector<std::size_t>& coords) const {
  if (coords.size() != axes_.size())
    throw std::invalid_argument("ScenarioGrid: coords rank mismatch");
  std::size_t i = 0;
  for (std::size_t k = 0; k < axes_.size(); ++k) {
    if (coords[k] >= axes_[k].points.size())
      throw std::out_of_range("ScenarioGrid: coord out of range");
    i = i * axes_[k].points.size() + coords[k];
  }
  return i;
}

core::ScenarioConfig ScenarioGrid::at(std::size_t i) const {
  const auto c = coords(i);
  core::ScenarioConfig s = base_;
  for (std::size_t k = 0; k < axes_.size(); ++k)
    axes_[k].points[c[k]].apply(s);
  return s;
}

std::string ScenarioGrid::label(std::size_t i) const {
  const auto c = coords(i);
  std::string out;
  for (std::size_t k = 0; k < axes_.size(); ++k) {
    if (k) out += ", ";
    out += axes_[k].points[c[k]].label;
  }
  return out;
}

}  // namespace xr::runtime
