#include "runtime/decision_batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>

#include "core/energy_model.h"
#include "core/latency_model.h"
#include "core/pipeline.h"
#include "devices/power.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "runtime/thread_pool.h"

namespace xr::runtime {

namespace {

// Serving-kernel telemetry: prepare (table build, model walks) vs run
// (branch-free sweep) is the split the ≥2× SoA gate cares about. Nothing
// is recorded inside eval_range — the hot loop stays clock-free.
struct KernelMetrics {
  obs::Counter prepares{"serving.kernel.prepares"};
  obs::Histogram prepare_ms{"serving.kernel.prepare_ms",
                            obs::Histogram::latency_bounds_ms()};
  obs::Gauge table_entries{"serving.kernel.table_entries"};
  obs::Counter runs{"serving.kernel.runs"};
  obs::Counter decisions{"serving.kernel.decisions"};
  obs::Histogram run_ms{"serving.kernel.run_ms",
                        obs::Histogram::latency_bounds_ms()};
  obs::Gauge decisions_per_sec{"serving.kernel.last_decisions_per_sec"};

  static KernelMetrics& get() {
    static KernelMetrics m;
    return m;
  }
};

}  // namespace

namespace {

std::atomic<bool> g_batch_kernel_enabled{true};

/// Which placement path a segment belongs to. Off-path segments stay at
/// the literal 0.0 the scalar LatencyBreakdown/EnergyBreakdown carries.
enum class PathMask { kAny, kLocalOnly, kRemoteOnly };

/// Which power rail charges a segment (Eq. 20/21 vs the radio states).
enum class EnergySource { kCompute, kRadioRx, kRadioTx, kRadioIdleWait };

/// One Eq. (1) segment's dependency tuple: the serializable knobs its
/// LatencyModel method (and energy counterpart) reads. An axis outside a
/// segment's set provably cannot change that segment's value, which is
/// what licenses pinning it at coordinate 0 during table fill. `placement`
/// appears wherever the segment is path-masked (the mask reads it) or the
/// value itself branches on it (rendering's result-delivery term).
struct SegmentRecipe {
  PathMask mask;
  EnergySource energy;
  std::vector<const char*> deps;
};

/// Indexed in the exact order LatencyModel::evaluate sums Eq. (1) — the
/// reduction loops in eval_range rely on it.
const std::array<SegmentRecipe, 11>& segment_recipes() {
  static const std::array<SegmentRecipe, 11> recipes = {{
      // frame generation
      {PathMask::kAny,
       EnergySource::kCompute,
       {"cpu_ghz", "omega_c", "frame_size"}},
      // volumetric data
      {PathMask::kAny,
       EnergySource::kCompute,
       {"cpu_ghz", "omega_c", "frame_size"}},
      // external sensors (radio receive; sensor set is never an axis)
      {PathMask::kAny, EnergySource::kRadioRx, {}},
      // rendering (result delivery crosses memory or wireless → placement
      // and throughput are genuine value dependencies, not just a mask)
      {PathMask::kAny,
       EnergySource::kCompute,
       {"cpu_ghz", "omega_c", "frame_size", "throughput_mbps", "placement"}},
      // frame conversion
      {PathMask::kLocalOnly,
       EnergySource::kCompute,
       {"cpu_ghz", "omega_c", "frame_size", "placement"}},
      // encoding
      {PathMask::kRemoteOnly,
       EnergySource::kCompute,
       {"cpu_ghz", "omega_c", "frame_size", "codec_mbps", "placement"}},
      // local inference
      {PathMask::kLocalOnly,
       EnergySource::kCompute,
       {"cpu_ghz", "omega_c", "frame_size", "local_cnn", "placement"}},
      // remote inference (device idles on the radio while edges work)
      {PathMask::kRemoteOnly,
       EnergySource::kRadioIdleWait,
       {"cpu_ghz", "omega_c", "frame_size", "edge_cnn", "edge_count",
        "codec_mbps", "placement"}},
      // transmission
      {PathMask::kRemoteOnly,
       EnergySource::kRadioTx,
       {"frame_size", "codec_mbps", "throughput_mbps", "placement"}},
      // handoff (mobility config is base-constant)
      {PathMask::kRemoteOnly, EnergySource::kRadioTx, {"placement"}},
      // cooperation
      {PathMask::kAny, EnergySource::kRadioTx, {"throughput_mbps"}},
  }};
  return recipes;
}

constexpr std::size_t kCooperation = 10;

double segment_latency_ms(const core::LatencyModel& m, std::size_t seg,
                          const core::ScenarioConfig& s) {
  switch (seg) {
    case 0: return m.frame_generation_ms(s);
    case 1: return m.volumetric_ms(s);
    case 2: return m.external_sensors_ms(s);
    case 3: return m.rendering_ms(s);
    case 4: return m.frame_conversion_ms(s);
    case 5: return m.encoding_ms(s);
    case 6: return m.local_inference_ms(s);
    case 7: return m.remote_inference_ms(s);
    case 8: return m.transmission_ms(s);
    case 9: return m.handoff_ms(s);
    default: return m.cooperation_ms(s);
  }
}

/// Every knob the recipes above map. A grid using anything else (a future
/// vocabulary extension) is not eligible — prepare() returns nullopt and
/// the caller keeps the scalar path, instead of a stale dependency map
/// silently computing wrong totals.
constexpr const char* kKnownKnobs[] = {
    "frame_size", "cpu_ghz",    "omega_c",  "codec_mbps", "throughput_mbps",
    "edge_count", "placement",  "local_cnn", "edge_cnn"};

}  // namespace

void set_batch_decision_kernel(bool enabled) noexcept {
  g_batch_kernel_enabled.store(enabled, std::memory_order_relaxed);
}

bool batch_decision_kernel_enabled() noexcept {
  return g_batch_kernel_enabled.load(std::memory_order_relaxed);
}

std::optional<DecisionBatchKernel> DecisionBatchKernel::prepare(
    const GridSpec& spec, const core::XrPerformanceModel& model) {
  const obs::Span span("kernel.prepare");
  const auto prep_start = std::chrono::steady_clock::now();
  for (const AxisSpec& axis : spec.axes) {
    const bool known =
        std::any_of(std::begin(kKnownKnobs), std::end(kKnownKnobs),
                    [&](const char* k) { return axis.knob == k; });
    if (!known) return std::nullopt;
  }
  const ScenarioGrid grid = spec.build();

  DecisionBatchKernel kernel;
  kernel.model_ = model;
  kernel.size_ = grid.size();
  kernel.radix_.reserve(grid.axis_count());
  for (std::size_t k = 0; k < grid.axis_count(); ++k)
    kernel.radix_.push_back(grid.axis(k).points.size());

  const core::LatencyModel& latency = model.latency_model();
  const devices::PowerModel& power = model.energy_model().power_model();
  const core::RadioPowerConfig& radio = model.energy_model().radio();
  const auto& recipes = segment_recipes();

  for (std::size_t seg = 0; seg < recipes.size(); ++seg) {
    const SegmentRecipe& recipe = recipes[seg];
    SegmentTable& table = kernel.tables_[seg];

    // This segment's axes, in declaration order (the order the strides
    // below assume).
    std::vector<std::size_t> dep_axes;
    for (std::size_t k = 0; k < spec.axes.size(); ++k)
      for (const char* dep : recipe.deps)
        if (spec.axes[k].knob == dep) {
          dep_axes.push_back(k);
          break;
        }

    std::size_t entries = 1;
    for (std::size_t a : dep_axes) entries *= kernel.radix_[a];
    table.terms.resize(dep_axes.size());
    std::size_t stride = 1;
    for (std::size_t j = dep_axes.size(); j-- > 0;) {
      table.terms[j] = SegmentTable::IndexTerm{dep_axes[j], stride};
      stride *= kernel.radix_[dep_axes[j]];
    }
    table.latency_ms.assign(entries, 0.0);
    table.energy_mj.assign(entries, 0.0);

    // Materialize one real scenario per dependency tuple — through the
    // grid's own appliers, never a re-implementation of them — and read
    // the segment off the same compiled model methods the scalar path
    // calls. Non-dependency coordinates stay pinned at 0.
    std::vector<std::size_t> coords(kernel.radix_.size(), 0);
    for (std::size_t flat = 0; flat < entries; ++flat) {
      std::size_t rest = flat;
      for (std::size_t j = dep_axes.size(); j-- > 0;) {
        coords[dep_axes[j]] = rest % kernel.radix_[dep_axes[j]];
        rest /= kernel.radix_[dep_axes[j]];
      }
      const core::ScenarioConfig s = grid.at(grid.index_of(coords));
      core::validate(s);

      const bool local =
          s.inference.placement == core::InferencePlacement::kLocal;
      bool on_path = recipe.mask == PathMask::kAny ||
                     (recipe.mask == PathMask::kLocalOnly && local) ||
                     (recipe.mask == PathMask::kRemoteOnly && !local);
      // Eq. (1) adds cooperation only when the scenario both runs it and
      // counts it; both flags are base constants, so the whole table holds
      // exactly the 0.0 the scalar sum adds.
      if (seg == kCooperation &&
          !(s.cooperation.active && s.cooperation.include_in_total))
        on_path = false;
      if (!on_path) continue;

      const double lat = segment_latency_ms(latency, seg, s);
      table.latency_ms[flat] = lat;
      switch (recipe.energy) {
        case EnergySource::kCompute:
          // Same call chain as the scalar path: Eq. (21) mean power for
          // this scenario's allocation, times the segment duration.
          table.energy_mj[flat] = power.segment_energy_mj(
              lat, s.client.cpu_ghz, s.client.gpu_ghz, s.client.omega_c);
          break;
        case EnergySource::kRadioRx:
          table.energy_mj[flat] = radio.rx_mw * lat / 1000.0;
          break;
        case EnergySource::kRadioTx:
          table.energy_mj[flat] = radio.tx_mw * lat / 1000.0;
          break;
        case EnergySource::kRadioIdleWait:
          table.energy_mj[flat] = radio.idle_wait_mw * lat / 1000.0;
          break;
      }
    }
  }
  KernelMetrics& metrics = KernelMetrics::get();
  metrics.prepares.add();
  metrics.prepare_ms.observe(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - prep_start)
                                 .count());
  metrics.table_entries.set(double(kernel.table_entries()));
  return kernel;
}

std::size_t DecisionBatchKernel::table_entries() const noexcept {
  std::size_t total = 0;
  for (const SegmentTable& t : tables_) total += t.latency_ms.size();
  return total;
}

void DecisionBatchKernel::eval_range(std::size_t begin, std::size_t end,
                                     double* latency_out,
                                     double* energy_out) const {
  const std::size_t n_axes = radix_.size();
  std::vector<std::size_t> coords(n_axes, 0);
  std::size_t rest = begin;
  for (std::size_t k = n_axes; k-- > 0;) {
    coords[k] = rest % radix_[k];
    rest /= radix_[k];
  }
  const devices::PowerModel& power = model_.energy_model().power_model();

  std::array<double, 11> lat{}, nrg{};
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const SegmentTable& table = tables_[t];
      std::size_t idx = 0;
      for (const SegmentTable::IndexTerm& term : table.terms)
        idx += coords[term.axis] * term.stride;
      lat[t] = table.latency_ms[idx];
      nrg[t] = table.energy_mj[idx];
    }

    // Eq. (1) in LatencyModel::evaluate's exact left-to-right association;
    // off-path segments contribute the same literal 0.0 the scalar
    // breakdown fields hold.
    double total_ms = lat[0];
    for (std::size_t t = 1; t < lat.size(); ++t) total_ms += lat[t];

    // Eq. (19): segment_sum, then base and thermal. base/thermal stay
    // out-of-line PowerModel calls so the multiply happens in the same
    // compiled code as the scalar path — an inline multiply here could be
    // contracted into the following addition (FMA) and round differently.
    double segment_sum = nrg[0];
    for (std::size_t t = 1; t < nrg.size(); ++t) segment_sum += nrg[t];
    double total_mj = segment_sum;
    total_mj += power.base_energy_mj(total_ms);
    total_mj += power.thermal_energy_mj(segment_sum);

    latency_out[i] = total_ms;
    energy_out[i] = total_mj;

    // Mixed-radix odometer, last axis fastest — ScenarioGrid::coords order.
    for (std::size_t k = n_axes; k-- > 0;) {
      if (++coords[k] < radix_[k]) break;
      coords[k] = 0;
    }
  }
}

DecisionBatchKernel::Totals DecisionBatchKernel::run(
    const BatchOptions& options) const {
  const obs::Span span("kernel.run");
  Totals out;
  out.latency_ms.resize(size_);
  out.energy_mj.resize(size_);
  const auto start = std::chrono::steady_clock::now();

  if (options.threads == 1) {
    eval_range(0, size_, out.latency_ms.data(), out.energy_mj.data());
    out.threads = 1;
  } else {
    const auto run_on = [&](ThreadPool& pool) {
      out.threads = pool.size();
      // Chunks of consecutive indices so each task pays one odometer seed;
      // writes land in disjoint ranges, so results are thread-invariant.
      const std::size_t chunk =
          options.grain
              ? options.grain
              : std::max<std::size_t>(1024, size_ / (8 * pool.size()) + 1);
      const std::size_t chunks = (size_ + chunk - 1) / chunk;
      pool.parallel_for(
          chunks,
          [&](std::size_t c) {
            const std::size_t b = c * chunk;
            eval_range(b, std::min(size_, b + chunk), out.latency_ms.data(),
                       out.energy_mj.data());
          },
          1);
    };
    if (options.threads == 0) {
      run_on(ThreadPool::shared());
    } else {
      ThreadPool pool(options.threads);
      run_on(pool);
    }
  }

  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  KernelMetrics& metrics = KernelMetrics::get();
  metrics.runs.add();
  metrics.decisions.add(size_);
  metrics.run_ms.observe(out.wall_ms);
  metrics.decisions_per_sec.set(
      out.wall_ms > 0 ? 1000.0 * double(size_) / out.wall_ms : 0.0);
  return out;
}

shard::MergedSummary DecisionBatchKernel::run_summary(
    std::uint64_t fingerprint, const ExecutionSpec& execution) const {
  const Totals totals = run(BatchOptions{execution.threads, execution.grain});
  const shard::ShardIdentity id{0, 1, shard::ShardStrategy::kRange, size_,
                                fingerprint};
  shard::PartialReduction partial(id, false);
  for (std::size_t i = 0; i < size_; ++i)
    partial.add(i, totals.latency_ms[i], totals.energy_mj[i]);
  partial.wall_ms = totals.wall_ms;
  partial.threads = totals.threads;
  return shard::merge_partials({partial});
}

std::optional<shard::MergedSummary> try_run_request_batched(
    const SweepRequest& request, const core::XrPerformanceModel& model) {
  if (!batch_decision_kernel_enabled()) return std::nullopt;
  // Ground-truth and adaptive requests need per-point simulation — there
  // is nothing to hoist; only the pure analytical model factors by axis.
  if (request.adaptive || request.evaluator.is_ground_truth())
    return std::nullopt;
  const auto kernel = DecisionBatchKernel::prepare(request.grid, model);
  if (!kernel) return std::nullopt;
  return kernel->run_summary(request.fingerprint(), request.execution);
}

}  // namespace xr::runtime
