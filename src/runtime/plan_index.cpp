#include "runtime/plan_index.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/registry.h"
#include "obs/span.h"
#include "runtime/offload_search.h"

namespace xr::runtime {

namespace {

// Per-tier serve telemetry, process-wide across every index instance (the
// per-instance PlanServeCounters stay authoritative for tests). The tier
// split is the serving story: exact = free, snap = free but approximate,
// computed = a full plan_offload search.
struct PlanIndexMetrics {
  obs::Counter exact_hits{"serving.plan_index.exact_hits"};
  obs::Counter snap_hits{"serving.plan_index.snap_hits"};
  obs::Counter computed{"serving.plan_index.computed"};
  obs::Counter builds{"serving.plan_index.builds"};
  obs::Gauge cells{"serving.plan_index.cells"};

  static PlanIndexMetrics& get() {
    static PlanIndexMetrics m;
    return m;
  }
};

constexpr const char* kIndexSchema = "xr.offload_plan_index.v1";
constexpr const char* kSpecSchema = "xr.offload_plan_index.spec.v1";

/// The bitwise tuple key of the exact tier: the raw bytes of every axis
/// coordinate, in axis order. Exactness here means bit-for-bit — the same
/// identity the JSON round trip preserves.
std::string bitwise_key(const std::vector<double>& values) {
  if (values.empty()) return {};
  std::string key(values.size() * sizeof(double), '\0');
  std::memcpy(key.data(), values.data(), key.size());
  return key;
}

}  // namespace

const char* plan_source_name(PlanSource s) noexcept {
  switch (s) {
    case PlanSource::kExactHit: return "exact_hit";
    case PlanSource::kNearestHit: return "nearest_hit";
    case PlanSource::kComputed: return "computed";
  }
  return "computed";
}

void PlanIndexSpec::validate() const {
  scenarios.validate();
  for (const AxisSpec& axis : scenarios.axes) {
    if (!knob_is_numeric(axis.knob))
      throw std::invalid_argument(
          "PlanIndexSpec: scenarios axis '" + axis.knob +
          "': index axes must be numeric scenario knobs (nearest-cell "
          "distance is undefined for string knobs)");
    for (std::size_t i = 0; i < axis.numbers.size(); ++i) {
      if (!std::isfinite(axis.numbers[i]))
        throw std::invalid_argument("PlanIndexSpec: scenarios axis '" +
                                    axis.knob +
                                    "': values must be finite");
      for (std::size_t k = i + 1; k < axis.numbers.size(); ++k)
        if (axis.numbers[i] == axis.numbers[k])
          throw std::invalid_argument(
              "PlanIndexSpec: scenarios axis '" + axis.knob +
              "': duplicate value " + core::format_double(axis.numbers[i]));
    }
  }
  if (!(alpha >= 0.0 && alpha <= 1.0))
    throw std::invalid_argument("PlanIndexSpec: alpha must be in [0, 1]");
  if (!std::isfinite(max_relative_gap) || max_relative_gap < 0.0)
    throw std::invalid_argument(
        "PlanIndexSpec: max_relative_gap must be finite and >= 0");
}

core::Json PlanIndexSpec::to_json() const {
  core::Json j = core::Json::object();
  j.set("schema", kSpecSchema);
  j.set("scenarios", scenarios.to_json());
  j.set("space", space.to_json());
  j.set("alpha", alpha);
  j.set("max_relative_gap", max_relative_gap);
  return j;
}

PlanIndexSpec PlanIndexSpec::from_json(const core::Json& j) {
  if (j.at("schema").as_string() != kSpecSchema)
    throw std::invalid_argument("PlanIndexSpec: unknown schema '" +
                                j.at("schema").as_string() + "'");
  PlanIndexSpec spec;
  spec.scenarios = GridSpec::from_json(j.at("scenarios"));
  spec.space = core::OffloadSearchSpace::from_json(j.at("space"));
  spec.alpha = j.at("alpha").as_double();
  spec.max_relative_gap = j.at("max_relative_gap").as_double();
  spec.validate();
  return spec;
}

OffloadPlanIndex OffloadPlanIndex::build(PlanIndexSpec spec,
                                         const core::XrPerformanceModel& model,
                                         const BatchOptions& options) {
  spec.validate();
  const obs::Span span("plan_index.build");
  OffloadPlanIndex index;
  index.spec_ = std::move(spec);
  const ScenarioGrid grid = index.spec_.scenarios.build();
  for (const AxisSpec& axis : index.spec_.scenarios.axes)
    index.axis_values_.push_back(axis.numbers);
  index.plans_.reserve(grid.size());
  for (std::size_t cell = 0; cell < grid.size(); ++cell) {
    auto request = core::offload_search_request(
        grid.at(cell), index.spec_.space, index.spec_.alpha);
    request.execution.threads = options.threads;
    request.execution.grain = options.grain;
    index.plans_.push_back(core::plan_offload(request, model));
  }
  index.rebuild_lookup();
  PlanIndexMetrics::get().builds.add();
  PlanIndexMetrics::get().cells.set(double(index.plans_.size()));
  return index;
}

void OffloadPlanIndex::rebuild_lookup() {
  exact_.clear();
  exact_.reserve(plans_.size());
  std::vector<double> key(axis_values_.size(), 0.0);
  for (std::size_t cell = 0; cell < plans_.size(); ++cell) {
    std::size_t rest = cell;
    for (std::size_t k = axis_values_.size(); k-- > 0;) {
      key[k] = axis_values_[k][rest % axis_values_[k].size()];
      rest /= axis_values_[k].size();
    }
    exact_.emplace(bitwise_key(key), cell);
  }
}

void OffloadPlanIndex::require_key_arity(
    const std::vector<double>& key) const {
  if (key.size() != axis_values_.size())
    throw std::invalid_argument(
        "OffloadPlanIndex: query has " + std::to_string(key.size()) +
        " values but the index has " + std::to_string(axis_values_.size()) +
        " scenario axes");
  for (std::size_t k = 0; k < key.size(); ++k)
    if (!std::isfinite(key[k]))
      throw std::invalid_argument("OffloadPlanIndex: query axis '" +
                                  spec_.scenarios.axes[k].knob +
                                  "' must be finite");
}

std::optional<std::size_t> OffloadPlanIndex::exact_cell(
    const std::vector<double>& key) const {
  require_key_arity(key);
  const auto it = exact_.find(bitwise_key(key));
  if (it == exact_.end()) return std::nullopt;
  return it->second;
}

OffloadPlanIndex::NearestCell OffloadPlanIndex::nearest_cell(
    const std::vector<double>& key) const {
  require_key_arity(key);
  NearestCell out;
  for (std::size_t k = 0; k < key.size(); ++k) {
    const std::vector<double>& values = axis_values_[k];
    std::size_t best = 0;
    double best_distance = std::abs(key[k] - values[0]);
    for (std::size_t j = 1; j < values.size(); ++j) {
      const double distance = std::abs(key[k] - values[j]);
      if (distance < best_distance) {  // strict: ties keep the lower index
        best = j;
        best_distance = distance;
      }
    }
    const double scale =
        std::max(std::max(std::abs(key[k]), std::abs(values[best])), 1e-9);
    out.worst_gap = std::max(out.worst_gap, best_distance / scale);
    out.cell = out.cell * values.size() + best;
  }
  return out;
}

OffloadPlanIndex::ServeResult OffloadPlanIndex::serve(
    const std::vector<double>& key, const core::XrPerformanceModel& model) {
  if (const auto cell = exact_cell(key)) {
    ++counters_.exact_hits;
    PlanIndexMetrics::get().exact_hits.add();
    return ServeResult{plans_[*cell], PlanSource::kExactHit, *cell};
  }
  const NearestCell nearest = nearest_cell(key);
  if (nearest.worst_gap <= spec_.max_relative_gap) {
    ++counters_.nearest_hits;
    PlanIndexMetrics::get().snap_hits.add();
    return ServeResult{plans_[nearest.cell], PlanSource::kNearestHit,
                       nearest.cell};
  }
  // Genuine miss: materialize the queried scenario through the same axis
  // appliers the grid uses (a one-value axis per knob) and run a fresh
  // search — on the SoA kernel when enabled.
  ++counters_.computed;
  PlanIndexMetrics::get().computed.add();
  const obs::Span span("plan_index.serve_computed");
  core::ScenarioConfig scenario = spec_.scenarios.base_config();
  for (std::size_t k = 0; k < key.size(); ++k) {
    AxisSpec point;
    point.knob = spec_.scenarios.axes[k].knob;
    point.numbers = {key[k]};
    axis_from_spec(point).points.front().apply(scenario);
  }
  auto request = core::offload_search_request(scenario, spec_.space,
                                              spec_.alpha);
  return ServeResult{core::plan_offload(request, model),
                     PlanSource::kComputed, kNoCell};
}

core::Json OffloadPlanIndex::to_json() const {
  core::Json j = core::Json::object();
  j.set("schema", kIndexSchema);
  j.set("spec", spec_.to_json());
  core::Json plans = core::Json::array();
  for (const core::OffloadPlan& plan : plans_) plans.push_back(plan.to_json());
  j.set("plans", std::move(plans));
  return j;
}

OffloadPlanIndex OffloadPlanIndex::from_json(const core::Json& j) {
  if (j.at("schema").as_string() != kIndexSchema)
    throw std::invalid_argument("OffloadPlanIndex: unknown schema '" +
                                j.at("schema").as_string() + "'");
  OffloadPlanIndex index;
  index.spec_ = PlanIndexSpec::from_json(j.at("spec"));
  std::size_t expected = 1;
  for (const AxisSpec& axis : index.spec_.scenarios.axes) {
    index.axis_values_.push_back(axis.numbers);
    expected *= axis.numbers.size();
  }
  for (const core::Json& p : j.at("plans").as_array())
    index.plans_.push_back(core::OffloadPlan::from_json(p));
  if (index.plans_.size() != expected)
    throw std::invalid_argument(
        "OffloadPlanIndex: plans has " + std::to_string(index.plans_.size()) +
        " entries but the scenario grid has " + std::to_string(expected) +
        " cells");
  index.rebuild_lookup();
  return index;
}

}  // namespace xr::runtime
