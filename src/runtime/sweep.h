// The unified sweep description: serializable grids over any scenario.
//
// Every figure, optimizer search, and capacity study in this repo is "take a
// base ScenarioConfig and vary a few knobs over a grid" (the ω terms of
// Eq. 1, the Fig. 4/5 frame-size × CPU-clock axes, codec operating points,
// edge-server counts). This header captures that pattern once, in layers:
//
//   * AxisSpec   — one typed, serializable axis: a knob id plus its values.
//   * GridSpec   — THE grid description: a base scenario (a factory name or
//                  any inline ScenarioConfig, via core/serialize.h) plus
//                  AxisSpec axes, round-trippable through JSON so worker
//                  processes rebuild the exact grid from a document.
//   * SweepSpec  — a thin builder over GridSpec for C++ call sites; its
//                  named knob methods append AxisSpecs. Raw axis<T>()
//                  closures remain as an explicitly NON-serializable escape
//                  hatch: a spec that uses one cannot become a GridSpec.
//   * ScenarioGrid — the lazy cartesian product both of them build().
//
// Enumeration order matches the equivalent nested loops with the FIRST
// declared axis outermost, so refactored call-sites keep their historical
// iteration order. Axis mutations are applied in declaration order and are
// written to be order-independent where they touch the same field group
// (edge count vs. edge CNN).
//
// Axis specs are validated eagerly (on parse and on append): unknown knob
// ids, duplicate knobs, empty or mixed-type value lists, and invalid values
// (e.g. a fractional edge count) all throw with the offending axis named,
// instead of silently misbuilding the grid.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/jsonio.h"
#include "core/pipeline.h"

namespace xr::runtime {

/// One labelled point on an axis: a mutation of the base scenario.
struct AxisPoint {
  std::string label;
  std::function<void(core::ScenarioConfig&)> apply;
};

/// One named sweep dimension (materialized form).
struct SweepAxis {
  std::string name;
  std::vector<AxisPoint> points;
};

/// One serializable sweep axis: a named knob plus its values. Numeric knobs
/// use `numbers`; placement / CNN-name knobs use `strings`.
///
/// Knobs: "frame_size", "cpu_ghz", "omega_c", "codec_mbps",
/// "throughput_mbps", "edge_count" (numeric); "placement"
/// ("local"/"remote"), "local_cnn", "edge_cnn" (string).
struct AxisSpec {
  std::string knob;
  std::vector<double> numbers;
  std::vector<std::string> strings;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static AxisSpec from_json(const core::Json& j);
};

/// Whether a knob id takes numeric values (false → string values). Throws
/// std::invalid_argument on unknown knob ids.
[[nodiscard]] bool knob_is_numeric(const std::string& knob);

/// Validate an AxisSpec and materialize it (same labels and appliers as the
/// equivalent SweepSpec named-knob call). Throws std::invalid_argument with
/// the axis named on: unknown knob, empty values, both value lists
/// populated, values of the wrong kind for the knob, non-integral or < 1
/// edge counts, unknown placement names.
[[nodiscard]] SweepAxis axis_from_spec(const AxisSpec& spec);

class ScenarioGrid;
class SweepSpec;

/// THE serializable grid description: base scenario + typed knob axes.
///
/// The base is either a factory name ("local"/"remote" instantiated at
/// frame_size/cpu_ghz) or — when `scenario` is engaged — an arbitrary
/// inline ScenarioConfig, so example workloads and optimizer searches
/// shard exactly like the factory sweeps. Axis declaration order is
/// enumeration order (first axis outermost), exactly as SweepSpec.
struct GridSpec {
  std::string factory = "remote";  ///< "local" or "remote" (ignored when
                                   ///< `scenario` is set).
  double frame_size = 500.0;
  double cpu_ghz = 2.0;
  /// Inline base scenario; overrides the factory fields when engaged.
  std::optional<core::ScenarioConfig> scenario;
  std::vector<AxisSpec> axes;

  /// Validate the base name and every axis (see axis_from_spec), including
  /// duplicate knob names across axes. from_json and build both run this.
  void validate() const;

  /// The materialized base scenario (factory or inline).
  [[nodiscard]] core::ScenarioConfig base_config() const;

  /// Materialize the grid; throws std::invalid_argument on invalid specs.
  [[nodiscard]] ScenarioGrid build() const;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static GridSpec from_json(const core::Json& j);
};

/// Builder over GridSpec. Named knob methods and axis_spec() append
/// serializable AxisSpecs; the axis()/axis<T>() closure overloads are the
/// non-serializable escape hatch for mutations the knob vocabulary cannot
/// express (grid_spec() refuses a spec that used one).
class SweepSpec {
 public:
  explicit SweepSpec(core::ScenarioConfig base) : base_(std::move(base)) {}
  /// Start from a serializable spec (base + its typed axes).
  explicit SweepSpec(const GridSpec& spec);

  /// Typed serializable axis. Validates eagerly (see axis_from_spec) and
  /// throws on a knob already declared.
  SweepSpec& axis_spec(AxisSpec spec);

  /// Escape hatch: generic axis from pre-built points. The resulting spec
  /// is no longer serializable. Throws std::invalid_argument on an empty
  /// axis or a duplicate axis name.
  SweepSpec& axis(std::string name, std::vector<AxisPoint> points);

  /// Escape hatch: one setter applied per value, labelled "name=value".
  template <typename T>
  SweepSpec& axis(const std::string& name, const std::vector<T>& values,
                  std::function<void(core::ScenarioConfig&, const T&)> set) {
    std::vector<AxisPoint> points;
    points.reserve(values.size());
    for (const T& v : values) {
      points.push_back(AxisPoint{
          name + "=" + value_label(v),
          [set, v](core::ScenarioConfig& s) { set(s, v); }});
    }
    return axis(name, std::move(points));
  }

  // ---- the paper's deployment knobs (all serializable) ----------------
  /// Frame-size axis with the factory geometry of make_local_scenario /
  /// make_remote_scenario: scene_size = s, converted_size = 0.6 s.
  SweepSpec& frame_sizes(const std::vector<double>& sizes);
  /// f_c axis.
  SweepSpec& cpu_clocks_ghz(const std::vector<double>& clocks);
  /// ω_c axis (CPU share of the device allocation).
  SweepSpec& omega_c(const std::vector<double>& shares);
  /// ω_loc axis. kLocal clears the edge set and keeps the task on-device;
  /// kRemote moves the full task to the edge set (adding one default edge
  /// if the scenario has none).
  SweepSpec& placements(const std::vector<core::InferencePlacement>& p);
  /// On-device CNN axis (local path).
  SweepSpec& local_cnns(const std::vector<std::string>& names);
  /// Edge CNN axis: applies to every edge server (remote path).
  SweepSpec& edge_cnns(const std::vector<std::string>& names);
  /// Parallel edge-server count axis (Eq. 15, even split).
  SweepSpec& edge_counts(const std::vector<int>& counts);
  /// H.264 bitrate axis (remote path).
  SweepSpec& codec_bitrates_mbps(const std::vector<double>& mbps);
  /// Wireless throughput axis r_w.
  SweepSpec& network_throughputs_mbps(const std::vector<double>& mbps);

  /// False once any closure axis was added.
  [[nodiscard]] bool serializable() const noexcept;
  /// The serializable description of this spec (base embedded inline).
  /// Throws std::invalid_argument when a closure axis makes the spec
  /// non-serializable.
  [[nodiscard]] GridSpec grid_spec() const;

  [[nodiscard]] ScenarioGrid build() const;

 private:
  static std::string value_label(double v);
  static std::string value_label(int v);
  static std::string value_label(const std::string& v) { return v; }
  static std::string value_label(core::InferencePlacement p);

  core::ScenarioConfig base_;
  std::vector<SweepAxis> axes_;
  /// Parallel to axes_; disengaged for closure (escape hatch) axes.
  std::vector<std::optional<AxisSpec>> specs_;
};

/// The lazy cartesian product of a sweep's axes over its base scenario.
class ScenarioGrid {
 public:
  ScenarioGrid(core::ScenarioConfig base, std::vector<SweepAxis> axes);

  /// Total number of scenarios (1 when the spec has no axes: just the base).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t axis_count() const noexcept {
    return axes_.size();
  }
  [[nodiscard]] const SweepAxis& axis(std::size_t k) const {
    return axes_.at(k);
  }

  /// Decode a flat index into per-axis point indices (axis 0 slowest).
  [[nodiscard]] std::vector<std::size_t> coords(std::size_t i) const;
  /// Inverse of coords().
  [[nodiscard]] std::size_t index_of(
      const std::vector<std::size_t>& coords) const;

  /// Materialize scenario i: copy the base, apply one point per axis.
  [[nodiscard]] core::ScenarioConfig at(std::size_t i) const;

  /// "axis0=v0, axis1=v1, ..." for scenario i.
  [[nodiscard]] std::string label(std::size_t i) const;

  [[nodiscard]] const core::ScenarioConfig& base() const noexcept {
    return base_;
  }

 private:
  core::ScenarioConfig base_;
  std::vector<SweepAxis> axes_;
  std::size_t size_ = 1;
};

}  // namespace xr::runtime
