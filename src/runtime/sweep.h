// Declarative scenario-space sweeps.
//
// Every figure, optimizer search, and capacity study in this repo is "take a
// base ScenarioConfig and vary a few knobs over a grid" (the ω terms of
// Eq. 1, the Fig. 4/5 frame-size × CPU-clock axes, codec operating points,
// edge-server counts). SweepSpec captures that pattern declaratively: a base
// scenario plus named axes, each axis a list of labelled point mutations.
// build() produces a ScenarioGrid — the lazy cartesian product — which
// materializes ScenarioConfigs on demand instead of nesting for-loops at
// every call-site.
//
// Enumeration order matches the equivalent nested loops with the FIRST
// declared axis outermost, so refactored call-sites keep their historical
// iteration order. Axis mutations are applied in declaration order and are
// written to be order-independent where they touch the same field group
// (edge count vs. edge CNN).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace xr::runtime {

/// One labelled point on an axis: a mutation of the base scenario.
struct AxisPoint {
  std::string label;
  std::function<void(core::ScenarioConfig&)> apply;
};

/// One named sweep dimension.
struct SweepAxis {
  std::string name;
  std::vector<AxisPoint> points;
};

class ScenarioGrid;

class SweepSpec {
 public:
  explicit SweepSpec(core::ScenarioConfig base) : base_(std::move(base)) {}

  /// Generic axis from pre-built points. Throws std::invalid_argument on an
  /// empty axis or a duplicate axis name.
  SweepSpec& axis(std::string name, std::vector<AxisPoint> points);

  /// Typed axis: one setter applied per value, labelled "name=value".
  template <typename T>
  SweepSpec& axis(const std::string& name, const std::vector<T>& values,
                  std::function<void(core::ScenarioConfig&, const T&)> set) {
    std::vector<AxisPoint> points;
    points.reserve(values.size());
    for (const T& v : values) {
      points.push_back(AxisPoint{
          name + "=" + value_label(v),
          [set, v](core::ScenarioConfig& s) { set(s, v); }});
    }
    return axis(name, std::move(points));
  }

  // ---- the paper's deployment knobs -----------------------------------
  /// Frame-size axis with the factory geometry of make_local_scenario /
  /// make_remote_scenario: scene_size = s, converted_size = 0.6 s.
  SweepSpec& frame_sizes(const std::vector<double>& sizes);
  /// f_c axis.
  SweepSpec& cpu_clocks_ghz(const std::vector<double>& clocks);
  /// ω_c axis (CPU share of the device allocation).
  SweepSpec& omega_c(const std::vector<double>& shares);
  /// ω_loc axis. kLocal clears the edge set and keeps the task on-device;
  /// kRemote moves the full task to the edge set (adding one default edge
  /// if the scenario has none).
  SweepSpec& placements(const std::vector<core::InferencePlacement>& p);
  /// On-device CNN axis (local path).
  SweepSpec& local_cnns(const std::vector<std::string>& names);
  /// Edge CNN axis: applies to every edge server (remote path).
  SweepSpec& edge_cnns(const std::vector<std::string>& names);
  /// Parallel edge-server count axis (Eq. 15, even split).
  SweepSpec& edge_counts(const std::vector<int>& counts);
  /// H.264 bitrate axis (remote path).
  SweepSpec& codec_bitrates_mbps(const std::vector<double>& mbps);
  /// Wireless throughput axis r_w.
  SweepSpec& network_throughputs_mbps(const std::vector<double>& mbps);

  [[nodiscard]] ScenarioGrid build() const;

 private:
  static std::string value_label(double v);
  static std::string value_label(int v);
  static std::string value_label(const std::string& v) { return v; }
  static std::string value_label(core::InferencePlacement p);

  core::ScenarioConfig base_;
  std::vector<SweepAxis> axes_;
};

/// The lazy cartesian product of a SweepSpec's axes over its base scenario.
class ScenarioGrid {
 public:
  ScenarioGrid(core::ScenarioConfig base, std::vector<SweepAxis> axes);

  /// Total number of scenarios (1 when the spec has no axes: just the base).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t axis_count() const noexcept {
    return axes_.size();
  }
  [[nodiscard]] const SweepAxis& axis(std::size_t k) const {
    return axes_.at(k);
  }

  /// Decode a flat index into per-axis point indices (axis 0 slowest).
  [[nodiscard]] std::vector<std::size_t> coords(std::size_t i) const;
  /// Inverse of coords().
  [[nodiscard]] std::size_t index_of(
      const std::vector<std::size_t>& coords) const;

  /// Materialize scenario i: copy the base, apply one point per axis.
  [[nodiscard]] core::ScenarioConfig at(std::size_t i) const;

  /// "axis0=v0, axis1=v1, ..." for scenario i.
  [[nodiscard]] std::string label(std::size_t i) const;

  [[nodiscard]] const core::ScenarioConfig& base() const noexcept {
    return base_;
  }

 private:
  core::ScenarioConfig base_;
  std::vector<SweepAxis> axes_;
  std::size_t size_ = 1;
};

}  // namespace xr::runtime
