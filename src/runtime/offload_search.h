// Offload searches as unified sweep requests — the runtime-facing half of
// the optimizer.
//
// core/optimizer.h declares the decision/plan value types and the classic
// plan_offload(base, space, alpha) entry point without referencing the
// runtime layer; this header declares the request plumbing that ties those
// types to runtime::SweepRequest, so core's headers stay below runtime in
// the include graph even though one library implements both.
//
// Because the request is a document, the search distributes: K sweep_worker
// processes over the same request merge (sweep_merge / merge_partials) into
// a summary whose offload_plan_from_summary reduction is bitwise identical
// to the monolithic plan_offload call — asserted in-process by
// tests/runtime/test_sweep_request.cpp and across real processes by
// scripts/sweep_offload_plan.sh.
#pragma once

#include <cstddef>

#include "core/optimizer.h"
#include "runtime/shard/merge.h"
#include "runtime/sweep_request.h"

namespace xr::core {

/// Express an offload search as the unified serializable sweep request: ONE
/// grid over `base` crossing ω_c × local CNN × edge CNN × edge count ×
/// codec bitrate × placement (placement declared last so its applier
/// resolves each point's path: local points drop the edge set, remote
/// points keep the prepared one). The reduction block carries
/// {offload_plan, alpha}. Throws std::invalid_argument for alpha outside
/// [0, 1] or a search space with no candidates.
///
/// Deliberate tradeoff: the full cross product evaluates local-placement
/// points once per (edge CNN × edge count × bitrate) combination — ~3.4×
/// redundancy on the default space (240 points vs the old two-half 70) —
/// in exchange for the whole search being ONE document under ONE merge
/// law. The evaluator is microseconds per point and the redundant points
/// are bitwise-equal, so reductions are unaffected; revisit with
/// placement-split sub-grids only if search spaces grow enough to matter.
[[nodiscard]] runtime::SweepRequest offload_search_request(
    const ScenarioConfig& base, const OffloadSearchSpace& space = {},
    double alpha = 0.5);

/// Decode the OffloadDecision a grid index of an offload request encodes
/// (axes outside the decision vocabulary are scenario context and ignored).
[[nodiscard]] OffloadDecision decision_at(const runtime::GridSpec& grid,
                                          std::size_t index);

/// Reduce a merged sweep summary into the plan: the summary's argmin and
/// Pareto reductions are decoded into decisions and their reports
/// re-derived from the (pure) model — bitwise identical to the values the
/// workers streamed. Throws std::invalid_argument when the summary does not
/// belong to `request` (fingerprint mismatch) or the request's reduction is
/// not offload_plan.
[[nodiscard]] OffloadPlan offload_plan_from_summary(
    const runtime::SweepRequest& request,
    const runtime::shard::MergedSummary& summary,
    const XrPerformanceModel& model = {});

/// Monolithic execution of an offload request: run_request +
/// offload_plan_from_summary, i.e. literally the K = 1 case of the sharded
/// path. Rejects non-offload_plan reductions and ground-truth evaluators
/// *before* running the sweep.
[[nodiscard]] OffloadPlan plan_offload(const runtime::SweepRequest& request,
                                       const XrPerformanceModel& model = {});

}  // namespace xr::core
