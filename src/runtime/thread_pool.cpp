#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "obs/registry.h"

namespace xr::runtime {

namespace {

// Pool telemetry. Counters are thread-shard cheap; the queue-depth gauge
// is only touched on enqueue/dequeue, which already take the pool mutex.
obs::Counter& pool_tasks() {
  static obs::Counter c("runtime.pool.tasks");
  return c;
}
obs::Gauge& pool_queue_depth() {
  static obs::Gauge g("runtime.pool.queue_depth");
  return g;
}
obs::Histogram& pool_task_ms() {
  static obs::Histogram h("runtime.pool.task_ms",
                          obs::Histogram::latency_bounds_ms());
  return h;
}

}  // namespace

struct ThreadPool::State {
  std::mutex mtx;
  std::condition_variable cv;
  std::deque<std::function<void()>> jobs;
  bool stop = false;
};

ThreadPool::ThreadPool(std::size_t threads) : state_(std::make_unique<State>()) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads_ = threads;
  // A 1-thread pool runs everything inline: no workers, no queue traffic.
  if (threads_ == 1) return;
  workers_.reserve(threads_);
  for (std::size_t t = 0; t < threads_; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mtx);
    state_->stop = true;
  }
  state_->cv.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::enqueue(std::function<void()> job) {
  pool_tasks().add();
  if (threads_ == 1) {  // inline execution preserves strict ordering
    const auto t0 = std::chrono::steady_clock::now();
    job();
    pool_task_ms().observe(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mtx);
    if (state_->stop)
      throw std::runtime_error("ThreadPool: submit after shutdown");
    state_->jobs.push_back(std::move(job));
    pool_queue_depth().set(double(state_->jobs.size()));
  }
  state_->cv.notify_one();
}

namespace {
/// True while the current thread is executing a pool job. Guards against
/// nested parallel_for deadlock: a worker that blocked waiting for helper
/// jobs it enqueued behind itself could never see them scheduled.
thread_local bool t_inside_pool_worker = false;
}  // namespace

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(state_->mtx);
      state_->cv.wait(lock,
                      [&] { return state_->stop || !state_->jobs.empty(); });
      if (state_->jobs.empty()) return;  // stop requested, queue drained
      job = std::move(state_->jobs.front());
      state_->jobs.pop_front();
      pool_queue_depth().set(double(state_->jobs.size()));
    }
    const auto t0 = std::chrono::steady_clock::now();
    job();
    pool_task_ms().observe(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
  }
}

namespace {

/// Shared state of one parallel_for: a chunked work-stealing index range.
struct LoopContext {
  std::function<void(std::size_t)> f;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> live_runners{0};

  std::mutex mtx;
  std::condition_variable done_cv;
  std::exception_ptr error;

  void run() {
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + chunk, n);
      try {
        for (std::size_t i = begin; i < end; ++i) f(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mtx);
        if (!error) error = std::current_exception();
        next.store(n);  // abandon unclaimed chunks
        break;
      }
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mtx);
      last = --live_runners == 0;
    }
    if (last) done_cv.notify_all();
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& f,
                              std::size_t grain) {
  if (n == 0) return;
  // Grain utilization telemetry: how many chunks a loop splits into
  // relative to its index count tells whether the auto-grain heuristic is
  // feeding workers µs-crumbs or starving the steal queue.
  static obs::Counter calls("runtime.pool.parallel_for.calls");
  static obs::Counter indices("runtime.pool.parallel_for.indices");
  static obs::Counter chunks("runtime.pool.parallel_for.chunks");
  static obs::Gauge last_grain("runtime.pool.last_grain");
  calls.add();
  indices.add(n);
  // Serial inline path: 1-thread pools, single-index loops, and calls made
  // from inside a pool job (nested parallelism would deadlock — the caller
  // would wait on helper jobs queued behind its own).
  if (threads_ == 1 || n == 1 || t_inside_pool_worker) {
    chunks.add();  // the whole range runs as one inline chunk
    last_grain.set(double(n));
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }

  auto ctx = std::make_shared<LoopContext>();
  ctx->f = f;  // copy: helpers may outlive the caller's reference
  ctx->n = n;
  // Auto grain: ~8 contiguous chunks per runner balances load without
  // per-point contention on `next` — submitting one task per point would
  // drown µs-scale model evaluations in queue traffic (the regression the
  // fig4b baseline recorded). A chunk is a contiguous index range so
  // results stay ordered.
  ctx->chunk = grain ? grain : std::max<std::size_t>(1, n / (threads_ * 8));
  chunks.add((n + ctx->chunk - 1) / ctx->chunk);
  last_grain.set(double(ctx->chunk));

  const std::size_t helpers = std::min(threads_, n - 1);
  ctx->live_runners.store(helpers + 1);  // + the calling thread
  for (std::size_t t = 0; t < helpers; ++t) enqueue([ctx] { ctx->run(); });
  ctx->run();

  std::unique_lock<std::mutex> lock(ctx->mtx);
  ctx->done_cv.wait(lock, [&] { return ctx->live_runners.load() == 0; });
  if (ctx->error) std::rethrow_exception(ctx->error);
}

}  // namespace xr::runtime
