// Parallel batch evaluation of scenario grids.
//
// BatchEvaluator is the one sweep engine under the optimizer, the testbed
// experiment runners, and the bench binaries: it evaluates every scenario of
// a ScenarioGrid against an XrPerformanceModel on a ThreadPool, in
// contiguous chunks with deterministic index-aligned results, and reduces
// the batch to the summaries every caller wants (per-metric optima, ranges,
// the latency/energy Pareto frontier, throughput statistics).
//
// Because the models are pure functions of ScenarioConfig, the parallel
// path is bitwise identical to the serial loop — asserted by
// tests/runtime/test_batch_evaluator.cpp — so thread count is purely a
// throughput knob.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/framework.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"

namespace xr::runtime {

struct BatchOptions {
  /// Worker count: 0 uses the process-wide shared pool; 1 forces the strict
  /// serial reference path; N > 1 creates a dedicated pool of N workers.
  std::size_t threads = 0;
  /// Indices per claimed task chunk: 0 = auto, max(1, n / (8 · threads)).
  /// The ExecutionSpec override for grids whose per-point cost is too
  /// uneven for the auto grain. Never affects results — only scheduling.
  std::size_t grain = 0;
};

/// Timing of one batch run.
struct BatchStats {
  double wall_ms = 0;
  double candidates_per_sec = 0;
  std::size_t threads = 1;
  std::size_t evaluated = 0;
};

/// Index-aligned reports plus streaming reductions over one grid.
struct BatchResult {
  std::vector<core::PerformanceReport> reports;  ///< reports[i] ↔ grid.at(i)

  std::size_t best_latency_index = 0;  ///< argmin of total latency.
  std::size_t best_energy_index = 0;   ///< argmin of total energy.
  double min_latency_ms = 0, max_latency_ms = 0;
  double min_energy_mj = 0, max_energy_mj = 0;

  /// Latency-ascending, energy-strictly-descending frontier (grid indices);
  /// no member dominates another on (latency, energy).
  std::vector<std::size_t> pareto_indices;

  BatchStats stats;

  [[nodiscard]] double latency_ms(std::size_t i) const {
    return reports.at(i).latency.total;
  }
  [[nodiscard]] double energy_mj(std::size_t i) const {
    return reports.at(i).energy.total;
  }
};

class BatchEvaluator {
 public:
  explicit BatchEvaluator(core::XrPerformanceModel model = {},
                          BatchOptions options = {});

  /// Evaluate the whole grid; throws whatever the model throws on the first
  /// invalid scenario.
  [[nodiscard]] BatchResult run(const ScenarioGrid& grid) const;

  /// Evaluate an arbitrary pure function of each grid scenario in parallel,
  /// results indexed by grid position. Used by the testbed runners to fan
  /// out ground-truth simulation and model variants with the same engine.
  template <typename F>
  auto map(const ScenarioGrid& grid, F&& f) const
      -> std::vector<std::decay_t<decltype(f(grid.at(0)))>> {
    return pool().map(grid.size(),
                      [&](std::size_t i) { return f(grid.at(i)); },
                      grain_);
  }

  /// Evaluate an arbitrary pure function of the index in parallel. The
  /// shard layer uses this to fan out one ShardPlan range at a time without
  /// materializing per-shard grids.
  template <typename F>
  auto map(std::size_t n, F&& f) const
      -> std::vector<std::decay_t<decltype(f(std::size_t{0}))>> {
    return pool().map(n, std::forward<F>(f), grain_);
  }

  [[nodiscard]] const core::XrPerformanceModel& model() const noexcept {
    return model_;
  }
  [[nodiscard]] std::size_t threads() const noexcept { return pool().size(); }

 private:
  [[nodiscard]] ThreadPool& pool() const noexcept {
    return own_pool_ ? *own_pool_ : ThreadPool::shared();
  }

  core::XrPerformanceModel model_;
  std::unique_ptr<ThreadPool> own_pool_;  ///< null → shared pool.
  std::size_t grain_ = 0;                 ///< 0 → auto (see BatchOptions).
};

}  // namespace xr::runtime
