// SweepRequest — the one serializable entry point for every sweep.
//
// A request bundles the four decisions a sweep is made of:
//
//   {"schema": "xr.sweep.request.v1",
//    "grid":      {<runtime::GridSpec>},        // what to enumerate
//    "evaluator": {<shard::EvaluatorSpec>},     // what to run per point
//    "reduction": {"kind": "summary"} |         // what to keep
//                 {"kind": "offload_plan", "alpha": 0.5},
//    "adaptive":  {"coarse_frames": 20,         // optional: multi-fidelity
//                  "fine_frames": 200,          // (ground truth only; see
//                  "band_fraction": 0.05},      //  runtime/adaptive.h)
//    "execution": {"threads": N, "chunk_records": N, "grain": N,
//                  "metrics": false, "format": "binary"}}
//
// The same document runs monolithically (run_request, below) or sharded
// (sweep_worker --request, one process per shard, merged by sweep_merge)
// with bitwise-equal results: run_request folds the exact PartialReduction
// a worker streams and merges it through the same merge_partials code path,
// so "monolithic" is literally the K = 1 case of the merge law rather than
// a separate implementation.
//
// Reductions:
//   * summary      — the MergedSummary every sweep produces anyway
//                    (argmin/extrema/Pareto, GT aggregates).
//   * offload_plan — the paper's planning workflow: the summary's argmin
//                    and Pareto reductions are decoded back into
//                    OffloadDecisions (core/optimizer.h), producing an
//                    OffloadPlan that merges exactly across shards.
//
// The execution block is per-process mechanics (thread count, checkpoint
// cadence, slim records, record encoding); it never affects result values
// — only the grid, evaluator, and reduction do, which is why only those
// are fingerprinted.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "core/framework.h"
#include "core/jsonio.h"
#include "runtime/shard/evaluator.h"
#include "runtime/shard/merge.h"
#include "runtime/sweep.h"

namespace xr::runtime {

enum class ReductionKind { kSummary, kOffloadPlan };

[[nodiscard]] const char* reduction_name(ReductionKind k) noexcept;
/// Inverse of reduction_name; throws std::invalid_argument on unknown
/// names.
[[nodiscard]] ReductionKind reduction_from_name(const std::string& name);

/// What to keep from a sweep.
struct ReductionSpec {
  ReductionKind kind = ReductionKind::kSummary;
  /// Weighted-objective latency weight (offload_plan only); must be in
  /// [0, 1] — from_json and plan_offload reject anything else.
  double alpha = 0.5;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static ReductionSpec from_json(const core::Json& j);
};

/// Per-process execution mechanics. Never part of the result identity —
/// thread count, chunk cadence, task grain, record shape, and record
/// encoding never change a value (the bitwise determinism the runtime and
/// shard tests assert).
struct ExecutionSpec {
  /// BatchOptions convention: 0 = shared pool, 1 = strict serial,
  /// N = dedicated pool of N workers.
  std::size_t threads = 0;
  /// Records per flush/checkpoint for sharded streaming runs.
  std::size_t chunk_records = 64;
  /// Indices per claimed parallel task chunk: 0 = auto,
  /// max(1, n / (8 · threads)) — see BatchOptions::grain.
  std::size_t grain = 0;
  /// Slim totals-only records (see record_stream.h).
  bool metrics = false;
  /// Record encoding for sharded streaming runs (record_stream.h); the
  /// merge law holds across formats, so shards of one sweep may mix them.
  shard::RecordFormat format = shard::RecordFormat::kJsonl;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static ExecutionSpec from_json(const core::Json& j);
};

/// Multi-fidelity execution of a ground-truth sweep (the optional
/// "adaptive" request block; driver in runtime/adaptive.h). Pass 1 runs
/// the whole grid at coarse_frames; a pure selection rule marks
/// refinement candidates — points whose placement decision flips against
/// a grid neighbor, or whose measured latency/energy lies within
/// band_fraction of the incumbent argmin — and pass 2 re-runs only those
/// at fine_frames. Unlike ExecutionSpec this block IS part of the result
/// identity (it changes which fidelity each point ends up with), so it is
/// covered by the sweep fingerprint.
struct AdaptiveSpec {
  /// Pass-1 frames per point; must satisfy 1 <= coarse_frames <
  /// fine_frames (from_json names the offending field).
  std::size_t coarse_frames = 20;
  /// Pass-2 frames per point — the sweep's target fidelity.
  std::size_t fine_frames = 200;
  /// Relative width of the refinement band around each incumbent argmin:
  /// a point refines when latency <= min_latency · (1 + band) or energy
  /// <= min_energy · (1 + band). Must be >= 0; 0 refines the argmins
  /// alone.
  double band_fraction = 0.05;

  /// The one copy of the invariant every consumer enforces: throws
  /// std::invalid_argument (naming the offending field) unless
  /// 1 <= coarse_frames < fine_frames and band_fraction >= 0. from_json,
  /// the AdaptiveSweep driver, and run_worker all call this.
  void validate() const;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static AdaptiveSpec from_json(const core::Json& j);
};

/// The unified sweep request.
struct SweepRequest {
  GridSpec grid;
  shard::EvaluatorSpec evaluator;
  ReductionSpec reduction;
  /// Engaged → adaptive-fidelity execution (ground-truth evaluators only;
  /// from_json rejects the combination with an analytical evaluator).
  std::optional<AdaptiveSpec> adaptive;
  ExecutionSpec execution;

  /// The sweep fingerprint workers stamp on records and partials:
  /// grid + evaluator + the adaptive block when engaged (execution and
  /// reduction excluded — they do not change point values).
  [[nodiscard]] std::uint64_t fingerprint() const;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static SweepRequest from_json(const core::Json& j);
};

/// Execute a request in-process and reduce it to the merged summary: the
/// grid is evaluated on a BatchEvaluator pool (execution.threads), folded
/// into a single-shard PartialReduction, and passed through
/// shard::merge_partials — the K = 1 case of the merge law, so a sharded
/// run of the same request merges bitwise identical to this result.
/// Adaptive requests dispatch to the two-pass driver (run_adaptive in
/// runtime/adaptive.h) and return its hybrid summary under the same law.
[[nodiscard]] shard::MergedSummary run_request(
    const SweepRequest& request, const core::XrPerformanceModel& model = {});

}  // namespace xr::runtime
