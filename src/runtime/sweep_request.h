// SweepRequest — the one serializable entry point for every sweep.
//
// A request bundles the four decisions a sweep is made of:
//
//   {"schema": "xr.sweep.request.v1",
//    "grid":      {<runtime::GridSpec>},        // what to enumerate
//    "evaluator": {<shard::EvaluatorSpec>},     // what to run per point
//    "reduction": {"kind": "summary"} |         // what to keep
//                 {"kind": "offload_plan", "alpha": 0.5},
//    "execution": {"threads": N, "chunk_records": N, "metrics": false}}
//
// The same document runs monolithically (run_request, below) or sharded
// (sweep_worker --request, one process per shard, merged by sweep_merge)
// with bitwise-equal results: run_request folds the exact PartialReduction
// a worker streams and merges it through the same merge_partials code path,
// so "monolithic" is literally the K = 1 case of the merge law rather than
// a separate implementation.
//
// Reductions:
//   * summary      — the MergedSummary every sweep produces anyway
//                    (argmin/extrema/Pareto, GT aggregates).
//   * offload_plan — the paper's planning workflow: the summary's argmin
//                    and Pareto reductions are decoded back into
//                    OffloadDecisions (core/optimizer.h), producing an
//                    OffloadPlan that merges exactly across shards.
//
// The execution block is per-process mechanics (thread count, checkpoint
// cadence, slim records); it never affects result values — only the grid,
// evaluator, and reduction do, which is why only those are fingerprinted.
#pragma once

#include <cstddef>
#include <string>

#include "core/framework.h"
#include "core/jsonio.h"
#include "runtime/shard/evaluator.h"
#include "runtime/shard/merge.h"
#include "runtime/sweep.h"

namespace xr::runtime {

enum class ReductionKind { kSummary, kOffloadPlan };

[[nodiscard]] const char* reduction_name(ReductionKind k) noexcept;
/// Inverse of reduction_name; throws std::invalid_argument on unknown
/// names.
[[nodiscard]] ReductionKind reduction_from_name(const std::string& name);

/// What to keep from a sweep.
struct ReductionSpec {
  ReductionKind kind = ReductionKind::kSummary;
  /// Weighted-objective latency weight (offload_plan only); must be in
  /// [0, 1] — from_json and plan_offload reject anything else.
  double alpha = 0.5;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static ReductionSpec from_json(const core::Json& j);
};

/// Per-process execution mechanics. Never part of the result identity —
/// thread count, chunk cadence, and record shape never change a value
/// (the bitwise determinism the runtime and shard tests assert).
struct ExecutionSpec {
  /// BatchOptions convention: 0 = shared pool, 1 = strict serial,
  /// N = dedicated pool of N workers.
  std::size_t threads = 0;
  /// Records per flush/checkpoint for sharded streaming runs.
  std::size_t chunk_records = 64;
  /// Slim totals-only JSONL records (see streaming_sink.h).
  bool metrics = false;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static ExecutionSpec from_json(const core::Json& j);
};

/// The unified sweep request.
struct SweepRequest {
  GridSpec grid;
  shard::EvaluatorSpec evaluator;
  ReductionSpec reduction;
  ExecutionSpec execution;

  /// The sweep fingerprint workers stamp on records and partials:
  /// grid + evaluator (execution and reduction excluded — they do not
  /// change point values).
  [[nodiscard]] std::uint64_t fingerprint() const;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static SweepRequest from_json(const core::Json& j);
};

/// Execute a request in-process and reduce it to the merged summary: the
/// grid is evaluated on a BatchEvaluator pool (execution.threads), folded
/// into a single-shard PartialReduction, and passed through
/// shard::merge_partials — the K = 1 case of the merge law, so a sharded
/// run of the same request merges bitwise identical to this result.
[[nodiscard]] shard::MergedSummary run_request(
    const SweepRequest& request, const core::XrPerformanceModel& model = {});

}  // namespace xr::runtime
