// The lease-driven worker state machine behind `sweep_worker --serve`.
//
// A serving worker registers with the coordinator, then loops: poll the
// mailbox, run the active lease one slice at a time (run_worker with
// max_new_records — every slice boundary leaves a flushed, resumable
// checkpoint), heartbeat between slices, and send lease_complete when the
// shard's record stream is done. The slice structure is what makes a
// serving worker both killable (a SIGKILL lands between or inside a
// slice; either way the stem holds a valid prefix the reassigned attempt
// resumes byte-identically) and revocable (a revoke or shutdown is seen
// at the next slice boundary, never mid-record).
//
// Churn protocol:
//   * grant      -> fetch + cache the request document (bounded re-fetch:
//                   a corrupt, truncated, or fingerprint-mismatched board
//                   blob is a NAMED lease_failed, never an evaluation of
//                   the wrong grid), copy the previous attempt's stem
//                   forward when this is a reassignment, then slice
//                   through the shard with resume always on;
//   * revoke     -> abandon the active lease (the coordinator has already
//                   reassigned it) and re-register to rejoin the pool;
//   * shutdown   -> send the final obs snapshot + deregister, exit.
//
// `max_slices` is the deterministic churn-injection hook the gate script
// uses: after that many work slices the loop returns immediately —
// no deregister, no goodbye — indistinguishable from a kill -9 to the
// coordinator, whose lease expiry must then reassign the shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "runtime/service/transport.h"

namespace xr::runtime::service {

struct WorkerLoopOptions {
  /// Mailbox name; must be unique per live worker ([A-Za-z0-9._-]).
  std::string name;
  /// Records evaluated per slice between heartbeats/mailbox polls,
  /// rounded up per lease to the request's checkpoint chunk (binary
  /// streams resume only on chunk boundaries). Keep slice wall time well
  /// under the coordinator's lease timeout.
  std::size_t slice_records = 32;
  std::uint64_t heartbeat_ms = 200;
  std::uint64_t poll_ms = 25;
  /// Exit (without deregistering) when idle this long with no coordinator
  /// contact; 0 = wait for shutdown forever.
  std::uint64_t idle_timeout_ms = 0;
  /// Test hook: simulate a crash by returning (holding a lease, silently)
  /// after this many work slices. 0 = never.
  std::size_t max_slices = 0;
  /// Test hook: sleep this long after every work slice, stretching a
  /// lease's wall time so an external kill (or lease expiry) can land
  /// mid-shard deterministically even when evaluation is instant. 0 =
  /// full speed.
  std::uint64_t slice_delay_ms = 0;
};

struct WorkerLoopOutcome {
  std::size_t leases_completed = 0;
  std::size_t records_evaluated = 0;
  std::size_t slices = 0;
  /// Times a failed slice was repaired locally by wiping the attempt stem
  /// and re-running fresh (once per lease, before reporting lease_failed).
  std::size_t fresh_restarts = 0;
  bool shutdown = false;  ///< exited on the coordinator's shutdown.
  bool crashed = false;   ///< the max_slices churn hook tripped.
  bool idle_timeout = false;
};

/// Run the serving loop until shutdown (or a hook/timeout). Throws on
/// invalid options; lease execution errors are reported to the
/// coordinator as lease_failed, never thrown — and coordinator-bound
/// sends are best-effort (a lost message degrades to lease expiry, which
/// the protocol already absorbs).
[[nodiscard]] WorkerLoopOutcome run_service_worker(
    Transport& transport, const WorkerLoopOptions& options);

}  // namespace xr::runtime::service
