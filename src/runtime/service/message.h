// Wire messages of the elastic sweep service.
//
// Coordinator and workers exchange versioned JSON documents over a
// pluggable Transport (transport.h). Every message is one envelope:
//
//   {"schema": "xr.service.msg.v1", "kind": "lease_grant",
//    "from": "coordinator", "body": {...kind-specific...}}
//
// Parsing is strict in the same named-field-rejection style as the rest of
// the repo's documents: an unknown envelope or body field throws
// std::invalid_argument naming the offender, and a schema bump is a named
// refusal rather than a silent best-effort read — two builds that disagree
// on the protocol must fail loudly, not mis-coordinate a sweep.
//
// The protocol (worker -> coordinator unless noted):
//
//   register        worker joins the pool (idempotent; re-sent to rejoin
//                   after a revoke).
//   deregister      worker leaves cleanly; its active lease returns to the
//                   pending queue.
//   heartbeat       liveness + progress of the worker's active lease; the
//                   coordinator extends the lease deadline only when the
//                   (lease, attempt) pair matches the current holder.
//   lease_grant     coordinator -> worker: run shard `lease` of the fixed
//                   partition, streaming to `output`; `resume_from` names
//                   the previous attempt's stem after a reassignment.
//   lease_complete  the shard's record stream is complete at
//                   `records_path`; the coordinator folds it immediately.
//   lease_failed    the worker could not run the lease (named error);
//                   the coordinator reassigns it.
//   revoke          coordinator -> worker: the named (lease, attempt) was
//                   expired and reassigned — abandon it and re-register.
//   snapshot        the worker's "xr.obs.snapshot.v1" document, sent at
//                   shutdown so the coordinator can expose one aggregated,
//                   worker-labeled snapshot.
//   shutdown        coordinator -> worker: the sweep is merged; exit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/jsonio.h"
#include "runtime/shard/shard_plan.h"

namespace xr::runtime::service {

inline constexpr const char* kMessageSchema = "xr.service.msg.v1";
/// The coordinator's well-known mailbox name.
inline constexpr const char* kCoordinatorEndpoint = "coordinator";
/// The blob-board key under which the coordinator publishes the
/// SweepRequest document workers execute.
inline constexpr const char* kRequestKey = "request.json";

enum class MessageKind {
  kRegister,
  kDeregister,
  kHeartbeat,
  kLeaseGrant,
  kLeaseComplete,
  kLeaseFailed,
  kRevoke,
  kSnapshot,
  kShutdown,
};

[[nodiscard]] const char* message_kind_name(MessageKind k) noexcept;
/// Inverse of message_kind_name; throws std::invalid_argument on unknown
/// names.
[[nodiscard]] MessageKind message_kind_from_name(const std::string& name);

/// The envelope every service message travels in. `body` holds the
/// kind-specific document (an empty object for bodyless kinds); the typed
/// body structs below parse it strictly.
struct Message {
  MessageKind kind = MessageKind::kRegister;
  std::string from;
  core::Json body = core::Json::object();

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static Message from_json(const core::Json& j);
};

// ---- typed bodies ------------------------------------------------------

/// coordinator -> worker: run one shard of the fixed partition.
struct LeaseGrantBody {
  std::size_t lease = 0;        ///< shard id in the coordinator's partition.
  std::size_t attempt = 0;      ///< reassignment generation of this lease.
  std::size_t shard_count = 1;  ///< the partition's fixed shard count.
  shard::ShardStrategy strategy = shard::ShardStrategy::kRange;
  /// This attempt's output stem (the worker streams to
  /// record_path(output, request format) + <output>.partial.json).
  std::string output;
  /// Previous attempt's stem after a reassignment ("" on attempt 0): the
  /// worker copies its surviving record stream/checkpoint forward and
  /// resumes, so a dead worker's flushed prefix is never re-evaluated.
  std::string resume_from;
  /// The request's sweep fingerprint — the worker refuses a grant whose
  /// fingerprint disagrees with the request document it fetched.
  std::uint64_t fingerprint = 0;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static LeaseGrantBody from_json(const core::Json& j);
};

/// worker -> coordinator: liveness + progress.
struct HeartbeatBody {
  bool busy = false;            ///< a lease is actively being worked.
  std::size_t lease = 0;        ///< meaningful only when busy.
  std::size_t attempt = 0;      ///< meaningful only when busy.
  std::size_t records_done = 0; ///< records in the shard stream so far.

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static HeartbeatBody from_json(const core::Json& j);
};

/// worker -> coordinator: the shard is complete on disk.
struct LeaseCompleteBody {
  std::size_t lease = 0;
  std::size_t attempt = 0;
  std::string records_path;  ///< the complete record stream (either format).
  std::size_t records = 0;   ///< records in the stream.

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static LeaseCompleteBody from_json(const core::Json& j);
};

/// worker -> coordinator: the lease could not be run.
struct LeaseFailedBody {
  std::size_t lease = 0;
  std::size_t attempt = 0;
  std::string error;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static LeaseFailedBody from_json(const core::Json& j);
};

/// coordinator -> worker: the named grant was expired and reassigned.
struct RevokeBody {
  std::size_t lease = 0;
  std::size_t attempt = 0;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static RevokeBody from_json(const core::Json& j);
};

// ---- envelope helpers ---------------------------------------------------

[[nodiscard]] Message make_register(const std::string& from);
[[nodiscard]] Message make_deregister(const std::string& from);
[[nodiscard]] Message make_heartbeat(const std::string& from,
                                     const HeartbeatBody& body);
[[nodiscard]] Message make_lease_grant(const LeaseGrantBody& body);
[[nodiscard]] Message make_lease_complete(const std::string& from,
                                          const LeaseCompleteBody& body);
[[nodiscard]] Message make_lease_failed(const std::string& from,
                                        const LeaseFailedBody& body);
[[nodiscard]] Message make_revoke(const RevokeBody& body);
/// `doc` is a full "xr.obs.snapshot.v1" document (obs/snapshot.h).
[[nodiscard]] Message make_snapshot(const std::string& from, core::Json doc);
[[nodiscard]] Message make_shutdown();

}  // namespace xr::runtime::service
