#include "runtime/service/transport.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/failpoint.h"
#include "obs/registry.h"

namespace xr::runtime::service {

namespace fs = std::filesystem;

namespace {

struct TransportMetrics {
  obs::Counter sent{"service.transport.messages_sent"};
  obs::Counter received{"service.transport.messages_received"};
  obs::Counter retries{"service.transport.retries"};
  obs::Counter torn{"service.transport.torn_messages"};

  static TransportMetrics& get() {
    static TransportMetrics m;
    return m;
  }
};

/// Run `op` under the bounded-backoff retry policy. Transient filesystem
/// errors (directory-iteration races, permission flickers on shared
/// mailboxes) are retried with exponentially growing sleeps; the final
/// failure propagates.
template <typename Op>
auto with_retries(const FsTransportOptions& options, Op&& op) {
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return op();
    } catch (const fs::filesystem_error&) {
      if (attempt >= options.max_retries) throw;
      TransportMetrics::get().retries.add();
      std::this_thread::sleep_for(
          std::chrono::microseconds(backoff_us(options, attempt)));
    }
  }
}

void write_file_atomic(const fs::path& dir, const fs::path& final_path,
                       const std::string& content,
                       const FsTransportOptions& options) {
  with_retries(options, [&] {
    fs::create_directories(dir);
    // Dot prefix keeps half-written files invisible to poll(); rename on
    // the same filesystem makes publication atomic.
    // (Built via append, not operator+ chaining: GCC 12's -Wrestrict
    // false-fires on `"." + std::string(...) + ".tmp"` here.)
    std::string tmp_name = ".";
    tmp_name += final_path.filename().string();
    tmp_name += ".tmp";
    const fs::path tmp = dir / tmp_name;
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out)
        throw fs::filesystem_error(
            "cannot open message temp file", tmp,
            std::make_error_code(std::errc::io_error));
      out << content;
      out.flush();
      if (!out)
        throw fs::filesystem_error(
            "failed writing message temp file", tmp,
            std::make_error_code(std::errc::io_error));
    }
    fs::rename(tmp, final_path);
  });
}

}  // namespace

std::uint64_t backoff_us(const FsTransportOptions& options,
                         std::size_t attempt) noexcept {
  // Saturating doubling: once the shifted value would pass the cap (or
  // the shift would pass the width of the integer — UB territory), the
  // answer is the cap.
  std::uint64_t us = options.backoff_initial_us;
  for (std::size_t i = 0; i < attempt; ++i) {
    if (us >= options.backoff_max_us) break;
    us *= 2;
  }
  return std::min<std::uint64_t>(us, options.backoff_max_us);
}

Transport::~Transport() = default;

void validate_endpoint_name(const std::string& name) {
  if (name.empty() || name.front() == '.')
    throw std::invalid_argument("service endpoint name '" + name +
                                "' is empty or starts with '.'");
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok)
      throw std::invalid_argument(
          "service endpoint name '" + name +
          "' may only contain [A-Za-z0-9._-] (it becomes a mailbox path)");
  }
}

FsTransport::FsTransport(std::string root, FsTransportOptions options)
    : root_(std::move(root)), options_(options) {
  if (root_.empty())
    throw std::invalid_argument("FsTransport: empty root directory");
}

void FsTransport::send(const std::string& to, const Message& msg) {
  validate_endpoint_name(to);
  validate_endpoint_name(msg.from);
  const fs::path mailbox = fs::path(root_) / "mail" / to;
  std::string content = msg.to_json().dump() + "\n";
  if (const auto fault = fail::point("transport.send")) {
    switch (fault->action) {
      case fail::Action::kDelay:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault->delay_ms));
        break;
      case fail::Action::kDrop:
        return;  // swallowed on the wire; the lease protocol must recover.
      case fail::Action::kCorrupt:
        // Mangle the first byte: guaranteed unparseable, so the receiver
        // exercises the ignored-once-then-cleaned torn-message path.
        content[0] = '#';
        break;
      case fail::Action::kTruncate:
        // A tear mid-document: what a non-atomic writer's crash leaves.
        content.resize(content.size() / 2);
        break;
      case fail::Action::kIoError:
        throw std::runtime_error("fault injected: transport.send io_error (" +
                                 msg.from + " -> " + to + ")");
    }
  }
  // Sequence first (zero-padded) so one sender's messages sort in send
  // order; sender + pid distinguish concurrent senders and restarts.
  char name[160];
  std::snprintf(name, sizeof name, "m-%010zu-%s-%ld.json", seq_++,
                msg.from.c_str(), long(::getpid()));
  write_file_atomic(mailbox, mailbox / name, content, options_);
  TransportMetrics::get().sent.add();
}

std::vector<Message> FsTransport::poll(const std::string& inbox) {
  validate_endpoint_name(inbox);
  const fs::path mailbox = fs::path(root_) / "mail" / inbox;
  std::vector<std::string> names = with_retries(options_, [&] {
    // Inside the retried lambda on purpose: an injected transient error
    // must be absorbed by the bounded-backoff policy, not escape it.
    if (const auto fault = fail::point("transport.poll")) {
      if (fault->action == fail::Action::kDelay)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault->delay_ms));
      else if (fault->action == fail::Action::kIoError)
        throw fs::filesystem_error("fault injected: transport.poll", mailbox,
                                   std::make_error_code(std::errc::io_error));
    }
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(mailbox, ec)) {
      const std::string n = entry.path().filename().string();
      if (!n.empty() && n.front() != '.') out.push_back(n);
    }
    if (ec && ec != std::errc::no_such_file_or_directory)
      throw fs::filesystem_error("cannot list mailbox", mailbox, ec);
    return out;
  });
  std::sort(names.begin(), names.end());

  std::vector<Message> messages;
  for (const std::string& n : names) {
    const fs::path path = mailbox / n;
    const std::string key = path.string();
    std::string text;
    try {
      text = core::read_text_file(key);
    } catch (const std::exception&) {
      continue;  // consumed by a concurrent poller between list and read
    }
    try {
      messages.push_back(Message::from_json(core::Json::parse(text)));
      suspect_.erase(key);
    } catch (const std::exception&) {
      // Torn or foreign file: never fatal. First sight is ignored (a
      // non-atomic writer may still be mid-write); still unparseable on
      // the next poll -> cleaned up, so garbage cannot wedge the mailbox.
      TransportMetrics::get().torn.add();
      if (suspect_[key]++ > 0) {
        std::error_code ec;
        fs::remove(path, ec);
        suspect_.erase(key);
      }
      continue;
    }
    std::error_code ec;
    fs::remove(path, ec);  // consume
    TransportMetrics::get().received.add();
  }
  return messages;
}

void FsTransport::publish(const std::string& key, const std::string& content) {
  validate_endpoint_name(key);
  if (const auto fault = fail::point("transport.publish")) {
    if (fault->action == fail::Action::kDelay)
      std::this_thread::sleep_for(std::chrono::milliseconds(fault->delay_ms));
    else if (fault->action == fail::Action::kIoError)
      throw std::runtime_error("fault injected: transport.publish io_error ('" +
                               key + "')");
  }
  const fs::path board = fs::path(root_) / "board";
  write_file_atomic(board, board / key, content, options_);
}

std::optional<std::string> FsTransport::fetch(const std::string& key) {
  validate_endpoint_name(key);
  const auto fault = fail::point("transport.fetch");
  // An unreadable blob already reads as "not published" below; drop and
  // io_error injections take the same door.
  if (fault && (fault->action == fail::Action::kDrop ||
                fault->action == fail::Action::kIoError))
    return std::nullopt;
  const fs::path path = fs::path(root_) / "board" / key;
  std::error_code ec;
  if (!fs::exists(path, ec)) return std::nullopt;
  try {
    std::string text = core::read_text_file(path.string());
    // Corrupt/truncate: hand the caller a torn half of the blob — its
    // strict parse (and bounded re-fetch) is what the chaos gate probes.
    if (fault && (fault->action == fail::Action::kCorrupt ||
                  fault->action == fail::Action::kTruncate))
      text.resize(text.size() / 2);
    return text;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace xr::runtime::service
