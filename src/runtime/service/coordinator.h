// The sweep coordinator: owns one SweepRequest, leases its shards to an
// elastic worker pool, and streaming-merges the results.
//
// The headline invariant (the scripts.sweep_service churn gate): workers
// joining, dying, or leaving mid-sweep never change a byte of the merged
// output. It follows from three established laws plus one new rule:
//
//   * the partition is FIXED up front — options.shards leases over a
//     range ShardPlan, independent of how many workers ever register, so
//     each shard's record stream is the same stream a static K-shard run
//     writes;
//   * re-execution is resume — an expired lease's next attempt copies the
//     dead attempt's stem forward and resumes from its longest valid
//     prefix, and the checkpoint/resume machinery (PR 2/8) makes that
//     byte-identical to an uninterrupted run;
//   * merging is the PR 2 merge law — each completed shard folds through
//     partial_from_records (the PR 8 RecordSource seam, so JSONL and
//     binary shards fold alike) the moment its lease_complete arrives,
//     and merge_partials over the K folds equals the monolithic
//     run_request bitwise;
//   * attempt-numbered stems (shard<k>.a<n>) keep a revoked-but-alive
//     straggler from ever writing the stream a reassigned attempt reads.
//
// Liveness: workers heartbeat while holding a lease; a missed deadline
// expires the lease (service.lease.reassigned), sends the presumed-dead
// holder a revoke (a live straggler abandons and re-registers), and
// returns the shard to the pending queue. A shard that burns
// max_attempts assignments aborts the sweep with a named error — or,
// under allow_partial, is quarantined and reported in the
// "xr.service.partial.v1" document while the completed shards still merge.
//
// Fault hardening (the scripts.sweep_service_chaos gate): a completed
// shard is folded BEFORE its lease flips to done, with bounded retries
// for transient read errors — a persistently unusable stream fails the
// attempt and reassigns, never aborts. Lost wire messages are absorbed:
// an idle heartbeat from an unknown (or presumed-dead) worker re-adopts
// it, and revoke/shutdown/grant sends are best-effort (a failed grant
// returns the shard to the queue immediately).
//
// Telemetry: workers attach their "xr.obs.snapshot.v1" document at
// shutdown; the coordinator exposes ONE aggregated snapshot — its own
// metrics unlabeled plus every worker's under a worker="name" label
// (obs::aggregate_labeled) — through CoordinatorResult / --metrics-out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/jsonio.h"
#include "core/optimizer.h"
#include "obs/snapshot.h"
#include "runtime/service/lease.h"
#include "runtime/service/transport.h"
#include "runtime/shard/merge.h"
#include "runtime/sweep_request.h"

namespace xr::runtime::service {

struct CoordinatorOptions {
  /// The fixed shard partition (this IS the merged summary's shard_count;
  /// worker churn never changes it).
  std::size_t shards = 4;
  /// Directory for per-shard output stems (created on demand).
  std::string shard_dir;
  /// A lease expires when its holder misses heartbeats this long.
  std::uint64_t lease_timeout_ms = 3000;
  /// Event-loop poll cadence.
  std::uint64_t poll_ms = 25;
  /// A shard that burns this many assignments aborts the sweep — or is
  /// quarantined instead when allow_partial is set.
  std::size_t max_attempts = 16;
  /// How long to wait after broadcasting shutdown for worker snapshots
  /// and goodbyes.
  std::uint64_t shutdown_grace_ms = 2000;
  /// Bounded retries of a completed shard's fold (partial_from_records):
  /// a transient read error must not burn the attempt, let alone the
  /// sweep. Persistent fold failure fails the attempt -> reassignment.
  std::size_t fold_retries = 3;
  /// Graceful degradation: instead of aborting when a shard exhausts
  /// max_attempts, quarantine it, merge what completed, and emit the
  /// "xr.service.partial.v1" document (CoordinatorResult::partial_document).
  bool allow_partial = false;
};

/// Schema tag of the graceful-degradation document emitted when shards
/// were quarantined: the quarantined ids (with attempt counts and last
/// errors), the completed ids, and the merged summary of the completed
/// subset.
inline constexpr const char* kPartialDocumentSchema = "xr.service.partial.v1";

struct CoordinatorResult {
  /// The full merge — or, when shards were quarantined (allow_partial),
  /// the merge of the completed subset (summary.evaluated < grid_size).
  shard::MergedSummary summary;
  /// Engaged when the request's reduction is offload_plan — never for a
  /// partial sweep (a plan argmin over a subset would be silently wrong).
  std::optional<core::OffloadPlan> plan;
  /// The aggregated, worker-labeled service snapshot.
  obs::ObsDocument metrics;
  std::size_t workers_seen = 0;
  std::size_t leases_reassigned = 0;
  /// Shards parked after exhausting max_attempts (allow_partial only).
  std::vector<std::size_t> quarantined;
  /// The "xr.service.partial.v1" document; engaged iff quarantined is
  /// non-empty.
  std::optional<core::Json> partial_document;
};

/// Run one sweep to completion over whatever workers show up. Publishes
/// the request document on the transport's blob board, grants/expires/
/// reassigns leases, folds each completed shard as it lands, broadcasts
/// shutdown, and returns the merged result. Blocking; throws on invalid
/// requests (adaptive requests are not lease-schedulable yet), exhausted
/// shard attempts, and unrecoverable transport failure.
[[nodiscard]] CoordinatorResult run_coordinator(Transport& transport,
                                                const SweepRequest& request,
                                                const CoordinatorOptions& options);

}  // namespace xr::runtime::service
