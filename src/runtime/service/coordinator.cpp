#include "runtime/service/coordinator.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "obs/span.h"
#include "runtime/offload_search.h"
#include "runtime/shard/record_stream.h"

namespace xr::runtime::service {

namespace fs = std::filesystem;

namespace {

struct CoordinatorMetrics {
  obs::Counter workers_registered{"service.coordinator.workers_registered"};
  obs::Counter workers_deregistered{
      "service.coordinator.workers_deregistered"};
  obs::Counter leases_granted{"service.coordinator.leases_granted"};
  obs::Counter leases_completed{"service.coordinator.leases_completed"};
  obs::Counter leases_failed{"service.coordinator.leases_failed"};
  obs::Counter lease_expired{"service.lease.expired"};
  obs::Counter lease_reassigned{"service.lease.reassigned"};
  obs::Counter stale_messages{"service.coordinator.stale_messages"};
  obs::Counter records_merged{"service.coordinator.records_merged"};
  obs::Counter snapshots_collected{"service.coordinator.snapshots_collected"};
  obs::Gauge workers_live{"service.coordinator.workers_live"};
  obs::Gauge leases_done{"service.coordinator.leases_done"};

  static CoordinatorMetrics& get() {
    static CoordinatorMetrics m;
    return m;
  }
};

std::uint64_t now_ms() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

struct WorkerState {
  bool live = false;                   ///< registered and not presumed dead.
  std::optional<std::size_t> lease;    ///< active lease, if any.
  std::optional<obs::ObsDocument> snapshot;
};

/// Per-shard attempt stem: <shard_dir>/shard<k>.a<attempt>. Attempt
/// numbering keeps a revoked straggler's writes off the stream the next
/// attempt resumes.
std::string attempt_stem(const std::string& dir, std::size_t shard,
                         std::size_t attempt) {
  return (fs::path(dir) /
          ("shard" + std::to_string(shard) + ".a" + std::to_string(attempt)))
      .string();
}

}  // namespace

CoordinatorResult run_coordinator(Transport& transport,
                                  const SweepRequest& request,
                                  const CoordinatorOptions& options) {
  if (options.shards == 0)
    throw std::invalid_argument("coordinator: shards must be >= 1");
  if (options.shard_dir.empty())
    throw std::invalid_argument("coordinator: shard_dir is required");
  if (request.adaptive)
    throw std::invalid_argument(
        "coordinator: adaptive requests are not lease-schedulable yet — "
        "run the two-pass flow of scripts/sweep_adaptive.sh");
  fs::create_directories(options.shard_dir);

  CoordinatorMetrics& metrics = CoordinatorMetrics::get();
  const obs::Span span("service.coordinate");
  const std::uint64_t fingerprint = request.fingerprint();

  // Workers fetch the request document at their first grant; publish it
  // before any lease can be granted.
  transport.publish(kRequestKey, request.to_json().dump() + "\n");

  LeaseTable table(options.shards, options.lease_timeout_ms,
                   options.max_attempts);
  std::map<std::string, WorkerState> workers;
  // One fold per shard, collected as lease_complete messages land; the
  // final merge is the pure merge_partials over all of them.
  std::vector<std::optional<shard::PartialReduction>> partials(options.shards);
  CoordinatorResult result;

  const auto live_workers = [&] {
    std::size_t n = 0;
    for (const auto& [name, w] : workers) n += w.live ? 1 : 0;
    return n;
  };

  const auto grant_to = [&](const std::string& name, WorkerState& w) {
    if (!w.live || w.lease) return;
    const auto assignment = table.assign(name, now_ms());
    if (!assignment) return;
    LeaseGrantBody grant;
    grant.lease = assignment->lease;
    grant.attempt = assignment->attempt;
    grant.shard_count = options.shards;
    grant.strategy = shard::ShardStrategy::kRange;
    grant.output =
        attempt_stem(options.shard_dir, assignment->lease, assignment->attempt);
    if (assignment->previous_attempt)
      grant.resume_from = attempt_stem(options.shard_dir, assignment->lease,
                                       *assignment->previous_attempt);
    grant.fingerprint = fingerprint;
    w.lease = assignment->lease;
    transport.send(name, make_lease_grant(grant));
    metrics.leases_granted.add();
  };

  const auto grant_pending = [&] {
    for (auto& [name, w] : workers) grant_to(name, w);
  };

  // ---- event loop -------------------------------------------------------
  while (!table.all_done()) {
    for (const Message& msg : transport.poll(kCoordinatorEndpoint)) {
      WorkerState* w = nullptr;
      if (msg.kind != MessageKind::kRegister) {
        auto it = workers.find(msg.from);
        if (it == workers.end()) {
          metrics.stale_messages.add();
          continue;  // never registered (or message from a prior run).
        }
        w = &it->second;
      }
      switch (msg.kind) {
        case MessageKind::kRegister: {
          WorkerState& state = workers[msg.from];
          if (!state.live) {
            state.live = true;
            ++result.workers_seen;
            metrics.workers_registered.add();
          }
          // A rejoin after a revoke carries no lease by construction; a
          // duplicate register while leased is a worker restart — its old
          // lease deadline will expire and reassign.
          break;
        }
        case MessageKind::kDeregister: {
          table.release_worker(msg.from);  // lease back to pending.
          w->live = false;
          w->lease.reset();
          metrics.workers_deregistered.add();
          break;
        }
        case MessageKind::kHeartbeat: {
          const auto hb = HeartbeatBody::from_json(msg.body);
          if (hb.busy &&
              !table.heartbeat(msg.from, hb.lease, hb.attempt,
                               hb.records_done, now_ms()))
            metrics.stale_messages.add();
          break;
        }
        case MessageKind::kLeaseComplete: {
          const auto done = LeaseCompleteBody::from_json(msg.body);
          if (!table.complete(msg.from, done.lease, done.attempt)) {
            metrics.stale_messages.add();
            break;
          }
          w->lease.reset();
          // Streaming merge: fold this shard's records through the
          // RecordSource seam now, while other shards are still running.
          try {
            shard::PartialReduction partial =
                shard::partial_from_records(done.records_path);
            if (partial.identity().grid_fingerprint != fingerprint)
              throw std::runtime_error(
                  "completed shard carries the wrong sweep fingerprint");
            metrics.records_merged.add(partial.evaluated());
            partials[done.lease] = std::move(partial);
            metrics.leases_completed.add();
            metrics.leases_done.set(double(table.done_count()));
          } catch (const std::exception& e) {
            // The stream on disk is unusable (torn, foreign, deleted):
            // treat as a failed attempt and reassign.
            metrics.leases_failed.add();
            if (!table.fail(msg.from, done.lease, done.attempt)) {
              // complete() above already flipped it to done — undo is not
              // possible through the public API, so abort loudly instead
              // of merging garbage.
              throw std::runtime_error(
                  std::string("coordinator: completed shard ") +
                  std::to_string(done.lease) +
                  " has an unusable record stream: " + e.what());
            }
          }
          break;
        }
        case MessageKind::kLeaseFailed: {
          const auto failed = LeaseFailedBody::from_json(msg.body);
          metrics.leases_failed.add();
          if (table.fail(msg.from, failed.lease, failed.attempt))
            w->lease.reset();
          else
            metrics.stale_messages.add();
          break;
        }
        case MessageKind::kSnapshot: {
          w->snapshot = obs::ObsDocument::from_json(msg.body.at("doc"));
          metrics.snapshots_collected.add();
          break;
        }
        default:
          metrics.stale_messages.add();
          break;
      }
    }

    // Expire leases whose holders went quiet: presume the worker dead,
    // tell it to abandon in case it is merely slow, reassign the shard.
    for (const LeaseExpiry& expired : table.expire(now_ms())) {
      metrics.lease_expired.add();
      metrics.lease_reassigned.add();
      ++result.leases_reassigned;
      auto it = workers.find(expired.holder);
      if (it != workers.end()) {
        it->second.live = false;
        it->second.lease.reset();
      }
      transport.send(expired.holder,
                     make_revoke({expired.lease, expired.attempt}));
    }

    grant_pending();
    metrics.workers_live.set(double(live_workers()));
    if (table.all_done()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
  }

  // ---- final merge ------------------------------------------------------
  std::vector<shard::PartialReduction> folded;
  folded.reserve(options.shards);
  for (std::size_t k = 0; k < options.shards; ++k) {
    if (!partials[k])
      throw std::runtime_error("coordinator: shard " + std::to_string(k) +
                               " is done but carries no fold");
    folded.push_back(*partials[k]);
  }
  result.summary = shard::merge_partials(folded);
  if (request.reduction.kind == ReductionKind::kOffloadPlan)
    result.plan = core::offload_plan_from_summary(request, result.summary);

  // ---- drain: shutdown broadcast + snapshot collection ------------------
  for (const auto& [name, w] : workers)
    if (w.live) transport.send(name, make_shutdown());
  const std::uint64_t drain_deadline = now_ms() + options.shutdown_grace_ms;
  const auto all_drained = [&] {
    for (const auto& [name, w] : workers)
      if (w.live) return false;
    return true;
  };
  while (!all_drained() && now_ms() < drain_deadline) {
    for (const Message& msg : transport.poll(kCoordinatorEndpoint)) {
      auto it = workers.find(msg.from);
      switch (msg.kind) {
        case MessageKind::kRegister:
          // A very late joiner: nothing left to do — send it home.
          transport.send(msg.from, make_shutdown());
          break;
        case MessageKind::kSnapshot:
          if (it != workers.end()) {
            it->second.snapshot =
                obs::ObsDocument::from_json(msg.body.at("doc"));
            metrics.snapshots_collected.add();
          }
          break;
        case MessageKind::kDeregister:
          if (it != workers.end()) {
            it->second.live = false;
            metrics.workers_deregistered.add();
          }
          break;
        default:
          break;  // stragglers; the sweep is already merged.
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
  }

  // ---- aggregated, worker-labeled snapshot ------------------------------
  std::vector<std::pair<std::string, obs::ObsDocument>> labeled;
  for (const auto& [name, w] : workers)
    if (w.snapshot) labeled.emplace_back(name, *w.snapshot);
  result.metrics = obs::aggregate_labeled(obs::capture(), labeled);
  return result;
}

}  // namespace xr::runtime::service
