#include "runtime/service/coordinator.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "core/failpoint.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "runtime/offload_search.h"
#include "runtime/shard/record_stream.h"

namespace xr::runtime::service {

namespace fs = std::filesystem;

namespace {

struct CoordinatorMetrics {
  obs::Counter workers_registered{"service.coordinator.workers_registered"};
  obs::Counter workers_deregistered{
      "service.coordinator.workers_deregistered"};
  obs::Counter leases_granted{"service.coordinator.leases_granted"};
  obs::Counter leases_completed{"service.coordinator.leases_completed"};
  obs::Counter leases_failed{"service.coordinator.leases_failed"};
  obs::Counter lease_expired{"service.lease.expired"};
  obs::Counter lease_reassigned{"service.lease.reassigned"};
  obs::Counter stale_messages{"service.coordinator.stale_messages"};
  obs::Counter records_merged{"service.coordinator.records_merged"};
  obs::Counter snapshots_collected{"service.coordinator.snapshots_collected"};
  obs::Counter fold_retries{"service.coordinator.fold_retries"};
  obs::Counter send_failures{"service.coordinator.send_failures"};
  obs::Counter implicit_registers{"service.coordinator.implicit_registers"};
  obs::Counter workers_resurrected{"service.coordinator.workers_resurrected"};
  obs::Counter shards_quarantined{"service.coordinator.shards_quarantined"};
  obs::Gauge workers_live{"service.coordinator.workers_live"};
  obs::Gauge leases_done{"service.coordinator.leases_done"};

  static CoordinatorMetrics& get() {
    static CoordinatorMetrics m;
    return m;
  }
};

std::uint64_t now_ms() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

struct WorkerState {
  bool live = false;                   ///< registered and not presumed dead.
  std::optional<std::size_t> lease;    ///< active lease, if any.
  std::optional<obs::ObsDocument> snapshot;
};

/// Per-shard attempt stem: <shard_dir>/shard<k>.a<attempt>. Attempt
/// numbering keeps a revoked straggler's writes off the stream the next
/// attempt resumes.
std::string attempt_stem(const std::string& dir, std::size_t shard,
                         std::size_t attempt) {
  return (fs::path(dir) /
          ("shard" + std::to_string(shard) + ".a" + std::to_string(attempt)))
      .string();
}

}  // namespace

CoordinatorResult run_coordinator(Transport& transport,
                                  const SweepRequest& request,
                                  const CoordinatorOptions& options) {
  if (options.shards == 0)
    throw std::invalid_argument("coordinator: shards must be >= 1");
  if (options.shard_dir.empty())
    throw std::invalid_argument("coordinator: shard_dir is required");
  if (request.adaptive)
    throw std::invalid_argument(
        "coordinator: adaptive requests are not lease-schedulable yet — "
        "run the two-pass flow of scripts/sweep_adaptive.sh");
  fs::create_directories(options.shard_dir);

  CoordinatorMetrics& metrics = CoordinatorMetrics::get();
  const obs::Span span("service.coordinate");
  const std::uint64_t fingerprint = request.fingerprint();

  // Workers fetch the request document at their first grant; publish it
  // before any lease can be granted.
  transport.publish(kRequestKey, request.to_json().dump() + "\n");

  LeaseTable table(options.shards, options.lease_timeout_ms,
                   options.max_attempts, options.allow_partial);
  std::map<std::string, WorkerState> workers;
  // One fold per shard, collected as lease_complete messages land; the
  // final merge is the pure merge_partials over all of them.
  std::vector<std::optional<shard::PartialReduction>> partials(options.shards);
  // Why each shard last went back to pending — surfaced per quarantined
  // shard in the "xr.service.partial.v1" document.
  std::map<std::size_t, std::string> last_error;
  CoordinatorResult result;

  const auto live_workers = [&] {
    std::size_t n = 0;
    for (const auto& [name, w] : workers) n += w.live ? 1 : 0;
    return n;
  };

  // Best-effort send: control messages whose loss the protocol already
  // absorbs (revokes, shutdowns — expiry and idle timeouts recover) must
  // not crash the coordinator when the transport hiccups.
  const auto safe_send = [&](const std::string& to, const Message& msg) {
    try {
      transport.send(to, msg);
      return true;
    } catch (const std::exception&) {
      metrics.send_failures.add();
      return false;
    }
  };

  const auto grant_to = [&](const std::string& name, WorkerState& w) {
    if (!w.live || w.lease) return;
    const auto assignment = table.assign(name, now_ms());
    if (!assignment) return;
    LeaseGrantBody grant;
    grant.lease = assignment->lease;
    grant.attempt = assignment->attempt;
    grant.shard_count = options.shards;
    grant.strategy = shard::ShardStrategy::kRange;
    grant.output =
        attempt_stem(options.shard_dir, assignment->lease, assignment->attempt);
    if (assignment->previous_attempt)
      grant.resume_from = attempt_stem(options.shard_dir, assignment->lease,
                                       *assignment->previous_attempt);
    grant.fingerprint = fingerprint;
    w.lease = assignment->lease;
    if (!safe_send(name, make_lease_grant(grant))) {
      // The worker never saw the grant; waiting for its lease to expire
      // would only stall the shard. Put it straight back in the queue.
      table.fail(name, assignment->lease, assignment->attempt);
      w.lease.reset();
      return;
    }
    metrics.leases_granted.add();
  };

  const auto grant_pending = [&] {
    for (auto& [name, w] : workers) grant_to(name, w);
  };

  // ---- event loop -------------------------------------------------------
  while (!table.finished()) {
    for (const Message& msg : transport.poll(kCoordinatorEndpoint)) {
      WorkerState* w = nullptr;
      if (msg.kind != MessageKind::kRegister) {
        auto it = workers.find(msg.from);
        if (it == workers.end()) {
          // An IDLE heartbeat from a stranger is a worker whose register
          // was lost on the wire — adopt it (implicit register) rather
          // than strand a live worker forever.
          bool adopt = false;
          if (msg.kind == MessageKind::kHeartbeat) {
            try {
              adopt = !HeartbeatBody::from_json(msg.body).busy;
            } catch (const std::exception&) {
            }
          }
          if (!adopt) {
            metrics.stale_messages.add();
            continue;  // never registered (or message from a prior run).
          }
          workers[msg.from].live = true;
          ++result.workers_seen;
          metrics.implicit_registers.add();
          metrics.workers_registered.add();
          continue;  // this tick's grant_pending pass can use it already.
        }
        w = &it->second;
      }
      switch (msg.kind) {
        case MessageKind::kRegister: {
          WorkerState& state = workers[msg.from];
          if (!state.live) {
            state.live = true;
            ++result.workers_seen;
            metrics.workers_registered.add();
          }
          // A rejoin after a revoke carries no lease by construction; a
          // duplicate register while leased is a worker restart — its old
          // lease deadline will expire and reassign.
          break;
        }
        case MessageKind::kDeregister: {
          table.release_worker(msg.from);  // lease back to pending.
          w->live = false;
          w->lease.reset();
          metrics.workers_deregistered.add();
          break;
        }
        case MessageKind::kHeartbeat: {
          const auto hb = HeartbeatBody::from_json(msg.body);
          if (hb.busy) {
            if (!table.heartbeat(msg.from, hb.lease, hb.attempt,
                                 hb.records_done, now_ms()))
              metrics.stale_messages.add();
          } else if (!w->live) {
            // Expiry presumed this worker dead, yet here it is, idle (it
            // abandoned the revoked lease or finished and lost the
            // message): let it rejoin the pool.
            w->live = true;
            w->lease.reset();
            metrics.workers_resurrected.add();
          }
          break;
        }
        case MessageKind::kLeaseComplete: {
          const auto done = LeaseCompleteBody::from_json(msg.body);
          if (!table.holds(msg.from, done.lease, done.attempt)) {
            metrics.stale_messages.add();
            break;
          }
          w->lease.reset();
          // Fold FIRST, complete after: a completion is only real once
          // its records fold (the streaming merge through the
          // RecordSource seam). A transient read error gets bounded
          // retries; a persistently unusable stream (torn, corrupt,
          // deleted, wrong sweep) fails the attempt — reassignment, never
          // a merged lie and never an aborted sweep.
          const std::size_t fold_attempts =
              std::max<std::size_t>(options.fold_retries, 1);
          std::optional<shard::PartialReduction> partial;
          std::string error;
          for (std::size_t t = 0; t < fold_attempts && !partial; ++t) {
            try {
              if (const auto fault = fail::point("service.coordinator.fold"))
                if (fault->action == fail::Action::kIoError)
                  throw std::runtime_error(
                      "fault injected: service.coordinator.fold io_error (" +
                      done.records_path + ")");
              shard::PartialReduction folded =
                  shard::partial_from_records(done.records_path);
              if (folded.identity().grid_fingerprint != fingerprint)
                throw std::runtime_error(
                    "completed shard carries the wrong sweep fingerprint");
              partial = std::move(folded);
            } catch (const std::exception& e) {
              error = e.what();
              if (t + 1 < fold_attempts) metrics.fold_retries.add();
            }
          }
          if (partial) {
            table.complete(msg.from, done.lease, done.attempt);
            metrics.records_merged.add(partial->evaluated());
            partials[done.lease] = std::move(*partial);
            metrics.leases_completed.add();
            metrics.leases_done.set(double(table.done_count()));
          } else {
            metrics.leases_failed.add();
            table.fail(msg.from, done.lease, done.attempt);
            last_error[done.lease] = error;
          }
          break;
        }
        case MessageKind::kLeaseFailed: {
          const auto failed = LeaseFailedBody::from_json(msg.body);
          metrics.leases_failed.add();
          if (table.fail(msg.from, failed.lease, failed.attempt)) {
            w->lease.reset();
            last_error[failed.lease] = failed.error;
          } else {
            metrics.stale_messages.add();
          }
          break;
        }
        case MessageKind::kSnapshot: {
          w->snapshot = obs::ObsDocument::from_json(msg.body.at("doc"));
          metrics.snapshots_collected.add();
          break;
        }
        default:
          metrics.stale_messages.add();
          break;
      }
    }

    // Expire leases whose holders went quiet: presume the worker dead,
    // tell it to abandon in case it is merely slow, reassign the shard.
    for (const LeaseExpiry& expired : table.expire(now_ms())) {
      metrics.lease_expired.add();
      metrics.lease_reassigned.add();
      ++result.leases_reassigned;
      last_error[expired.lease] = "lease expired (holder '" + expired.holder +
                                  "' missed its heartbeat deadline)";
      auto it = workers.find(expired.holder);
      if (it != workers.end()) {
        it->second.live = false;
        it->second.lease.reset();
      }
      safe_send(expired.holder,
                make_revoke({expired.lease, expired.attempt}));
    }

    grant_pending();
    metrics.workers_live.set(double(live_workers()));
    if (table.finished()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
  }

  // ---- final merge ------------------------------------------------------
  result.quarantined = table.quarantined_ids();
  std::vector<shard::PartialReduction> folded;
  std::vector<std::size_t> completed;
  folded.reserve(options.shards);
  for (std::size_t k = 0; k < options.shards; ++k) {
    if (partials[k]) {
      folded.push_back(*partials[k]);
      completed.push_back(k);
    } else if (!std::count(result.quarantined.begin(),
                           result.quarantined.end(), k)) {
      throw std::runtime_error("coordinator: shard " + std::to_string(k) +
                               " is done but carries no fold");
    }
  }
  if (result.quarantined.empty()) {
    result.summary = shard::merge_partials(folded);
    if (request.reduction.kind == ReductionKind::kOffloadPlan)
      result.plan = core::offload_plan_from_summary(request, result.summary);
  } else {
    // Graceful degradation (allow_partial): merge what completed and emit
    // the named partial document. No OffloadPlan — an argmin over a
    // subset of the grid would be a silently wrong answer.
    metrics.shards_quarantined.add(result.quarantined.size());
    if (folded.empty())
      throw std::runtime_error(
          "coordinator: every shard was quarantined — nothing completed "
          "(inspect the shard stems under " + options.shard_dir + ")");
    result.summary =
        shard::merge_partials(folded, /*require_complete_cover=*/false);
    core::Json doc = core::Json::object();
    doc.set("schema", kPartialDocumentSchema);
    doc.set("total_shards", options.shards);
    core::Json quarantined_json = core::Json::array();
    for (std::size_t k : result.quarantined) {
      core::Json q = core::Json::object();
      q.set("shard", k);
      q.set("attempts", table.info(k).attempt + 1);
      const auto it = last_error.find(k);
      q.set("last_error", it == last_error.end() ? std::string() : it->second);
      quarantined_json.push_back(std::move(q));
    }
    doc.set("quarantined", std::move(quarantined_json));
    core::Json completed_json = core::Json::array();
    for (std::size_t k : completed) completed_json.push_back(k);
    doc.set("completed", std::move(completed_json));
    doc.set("summary", result.summary.to_json());
    result.partial_document = std::move(doc);
  }

  // ---- drain: shutdown broadcast + snapshot collection ------------------
  for (const auto& [name, w] : workers)
    if (w.live) safe_send(name, make_shutdown());
  const std::uint64_t drain_deadline = now_ms() + options.shutdown_grace_ms;
  const auto all_drained = [&] {
    for (const auto& [name, w] : workers)
      if (w.live) return false;
    return true;
  };
  while (!all_drained() && now_ms() < drain_deadline) {
    for (const Message& msg : transport.poll(kCoordinatorEndpoint)) {
      auto it = workers.find(msg.from);
      switch (msg.kind) {
        case MessageKind::kRegister:
          // A very late joiner: nothing left to do — send it home.
          safe_send(msg.from, make_shutdown());
          break;
        case MessageKind::kSnapshot:
          if (it != workers.end()) {
            it->second.snapshot =
                obs::ObsDocument::from_json(msg.body.at("doc"));
            metrics.snapshots_collected.add();
          }
          break;
        case MessageKind::kDeregister:
          if (it != workers.end()) {
            it->second.live = false;
            metrics.workers_deregistered.add();
          }
          break;
        default:
          break;  // stragglers; the sweep is already merged.
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
  }

  // ---- aggregated, worker-labeled snapshot ------------------------------
  std::vector<std::pair<std::string, obs::ObsDocument>> labeled;
  for (const auto& [name, w] : workers)
    if (w.snapshot) labeled.emplace_back(name, *w.snapshot);
  result.metrics = obs::aggregate_labeled(obs::capture(), labeled);
  return result;
}

}  // namespace xr::runtime::service
