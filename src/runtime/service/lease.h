// Shard lease table — who owns which slice of the sweep, and until when.
//
// The coordinator fixes the partition up front (shard_count leases over a
// ShardPlan, independent of how many workers ever show up — that fixedness
// is what makes the merged output byte-stable under churn) and hands each
// lease to at most one worker at a time. A lease is a deadline-bearing
// claim: the holder must heartbeat before the deadline or the lease
// returns to the pending queue with its attempt counter bumped, ready for
// reassignment — the checkpoint/resume machinery makes the re-execution
// byte-identical, so expiry is always safe, merely wasteful.
//
// The table is deliberately clock-free: every method takes `now_ms` from
// the caller (the coordinator's steady clock), so lease semantics — grant,
// extend, expire, reassign, complete, stale-message rejection — are unit
// testable without sleeping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace xr::runtime::service {

enum class LeaseState { kPending, kActive, kDone, kQuarantined };

struct LeaseInfo {
  LeaseState state = LeaseState::kPending;
  std::string holder;            ///< current worker ("" when pending/never).
  std::size_t attempt = 0;       ///< last granted generation (0 = first).
  bool ever_assigned = false;    ///< false until the first assign().
  std::uint64_t deadline_ms = 0; ///< heartbeat deadline while active.
  std::size_t records_done = 0;  ///< last reported progress.
};

/// A grant handed to a worker: shard `lease`, generation `attempt`;
/// `previous_attempt` is engaged when this is a reassignment (the worker
/// resumes from that attempt's output stem).
struct LeaseAssignment {
  std::size_t lease = 0;
  std::size_t attempt = 0;
  std::optional<std::size_t> previous_attempt;
};

/// An expired lease: who held it (for the revoke message) and which
/// attempt just died.
struct LeaseExpiry {
  std::size_t lease = 0;
  std::string holder;
  std::size_t attempt = 0;
};

class LeaseTable {
 public:
  /// `shard_count` leases, each expiring timeout_ms after its last
  /// heartbeat. A lease whose attempt counter would exceed max_attempts
  /// makes assign() throw (named) — the sweep is aborted rather than
  /// ground forever against a poisoned shard — unless
  /// `quarantine_exhausted` is set, in which case the lease is parked in
  /// kQuarantined instead and the sweep degrades gracefully (the
  /// coordinator's "xr.service.partial.v1" document).
  LeaseTable(std::size_t shard_count, std::uint64_t timeout_ms,
             std::size_t max_attempts = 16, bool quarantine_exhausted = false);

  /// Assign the lowest pending lease to `worker`; nullopt when none is
  /// pending. A lease that has already burned max_attempts assignments
  /// throws std::runtime_error — or is quarantined and skipped when the
  /// table was built with quarantine_exhausted.
  [[nodiscard]] std::optional<LeaseAssignment> assign(
      const std::string& worker, std::uint64_t now_ms);

  /// True iff `worker` currently holds (lease, attempt) active — the
  /// const precondition of complete()/fail(), checkable before deciding
  /// which one to call.
  [[nodiscard]] bool holds(const std::string& worker, std::size_t lease,
                           std::size_t attempt) const;

  /// Extend the deadline of (lease, attempt) iff `worker` is its current
  /// holder and the attempt matches; returns false (stale) otherwise.
  bool heartbeat(const std::string& worker, std::size_t lease,
                 std::size_t attempt, std::size_t records_done,
                 std::uint64_t now_ms);

  /// Mark (lease, attempt) done iff `worker` currently holds it; a stale
  /// completion (reassigned lease, wrong attempt) returns false and
  /// changes nothing.
  bool complete(const std::string& worker, std::size_t lease,
                std::size_t attempt);

  /// Return (lease, attempt) to the pending queue after a worker-reported
  /// failure; stale reports return false.
  bool fail(const std::string& worker, std::size_t lease, std::size_t attempt);

  /// Collect every active lease whose deadline has passed; each returns to
  /// the pending queue with attempt+1 reserved for the next assign.
  [[nodiscard]] std::vector<LeaseExpiry> expire(std::uint64_t now_ms);

  /// Release every active lease held by `worker` (clean deregistration);
  /// returns the lease ids released.
  std::vector<std::size_t> release_worker(const std::string& worker);

  [[nodiscard]] std::size_t size() const noexcept { return leases_.size(); }
  [[nodiscard]] std::size_t done_count() const noexcept { return done_; }
  [[nodiscard]] bool all_done() const noexcept {
    return done_ == leases_.size();
  }
  /// Shards parked by attempt exhaustion (quarantine mode only), ascending.
  [[nodiscard]] std::vector<std::size_t> quarantined_ids() const;
  [[nodiscard]] std::size_t quarantined_count() const noexcept {
    return quarantined_;
  }
  /// Nothing left to schedule: every lease is done or quarantined. Equals
  /// all_done() outside quarantine mode.
  [[nodiscard]] bool finished() const noexcept {
    return done_ + quarantined_ == leases_.size();
  }
  [[nodiscard]] const LeaseInfo& info(std::size_t lease) const;

 private:
  std::vector<LeaseInfo> leases_;
  std::uint64_t timeout_ms_;
  std::size_t max_attempts_;
  bool quarantine_exhausted_;
  std::size_t done_ = 0;
  std::size_t quarantined_ = 0;
};

}  // namespace xr::runtime::service
