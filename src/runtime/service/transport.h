// Pluggable message transport of the elastic sweep service.
//
// The coordinator and its workers are processes that exchange Messages
// (message.h) through named mailboxes plus one tiny blob board (the
// coordinator publishes the SweepRequest document once; workers fetch it
// at their first grant). The interface is deliberately this narrow —
// send / poll / publish / fetch, no connections, no callbacks — so a
// socket backend can implement it later without touching either state
// machine.
//
// FsTransport is the first backend: a filesystem/localhost mailbox rooted
// at a service directory.
//
//   <root>/mail/<endpoint>/m-<seq>-<sender>-<pid>.json   one message each
//   <root>/board/<key>                                   published blobs
//
// Delivery is atomic-rename: a message is written to a dot-prefixed temp
// file in the destination mailbox and renamed into place, so a reader
// never observes a partial message under POSIX rename semantics. Readers
// consume (delete) messages after parsing; per-sender order is preserved
// by a zero-padded per-process sequence number in the file name.
//
// Hardening (the service must survive a messy shared directory):
//   * transient filesystem errors (directory-iteration races, EACCES
//     flickers under contention) are retried under bounded exponential
//     backoff — counted in `service.transport.retries` — before becoming
//     an error;
//   * a message file that does not parse is NEVER fatal: it is ignored on
//     first sight (a slow non-atomic writer may still be mid-write) and
//     deleted when still unparseable on the next poll — counted in
//     `service.transport.torn_messages`;
//   * leftover temp files from crashed senders are invisible to poll()
//     (dot prefix) and cleaned up opportunistically.
//
// Fault injection (core/failpoint.h): send/poll/publish/fetch consult the
// failpoints "transport.send", "transport.poll", "transport.publish", and
// "transport.fetch", so a chaos schedule can drop, delay, tear, or
// corrupt wire traffic — exactly the failures the hardening above and the
// service's lease-expiry machinery claim to absorb.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "runtime/service/message.h"

namespace xr::runtime::service {

class Transport {
 public:
  virtual ~Transport();

  /// Deliver one message to `to`'s mailbox. Visible to a subsequent
  /// poll(to) in any process sharing the transport once this returns.
  /// Throws std::runtime_error on unrecoverable I/O failure.
  virtual void send(const std::string& to, const Message& msg) = 0;

  /// Drain `inbox`: every pending message, per-sender arrival order,
  /// consumed (a message is returned exactly once across all polls).
  virtual std::vector<Message> poll(const std::string& inbox) = 0;

  /// Publish a small named blob (atomically replacing any previous value).
  virtual void publish(const std::string& key, const std::string& content) = 0;

  /// Read a published blob; nullopt when nothing was published under key.
  virtual std::optional<std::string> fetch(const std::string& key) = 0;
};

/// Endpoint/key names are path components; restrict them to
/// [A-Za-z0-9._-] (not starting with '.') so no name can escape the
/// mailbox root. Throws std::invalid_argument on anything else.
void validate_endpoint_name(const std::string& name);

struct FsTransportOptions {
  /// Bounded exponential backoff for transient filesystem errors:
  /// attempt n sleeps min(backoff_initial_us << n, backoff_max_us), up to
  /// max_retries attempts.
  std::size_t max_retries = 6;
  std::size_t backoff_initial_us = 200;
  /// Hard cap on any single backoff sleep — both a latency bound and the
  /// overflow guard (the shift saturates here instead of running off the
  /// end of the integer past attempt 63).
  std::size_t backoff_max_us = 50'000;
};

/// The sleep before retry `attempt` (0-based) under `options`: the
/// doubling series backoff_initial_us << attempt, saturating at
/// backoff_max_us — well-defined for every attempt, however large.
[[nodiscard]] std::uint64_t backoff_us(const FsTransportOptions& options,
                                       std::size_t attempt) noexcept;

class FsTransport : public Transport {
 public:
  /// Roots the mailbox tree at `root` (created on demand).
  explicit FsTransport(std::string root, FsTransportOptions options = {});

  void send(const std::string& to, const Message& msg) override;
  std::vector<Message> poll(const std::string& inbox) override;
  void publish(const std::string& key, const std::string& content) override;
  std::optional<std::string> fetch(const std::string& key) override;

  [[nodiscard]] const std::string& root() const noexcept { return root_; }

 private:
  std::string root_;
  FsTransportOptions options_;
  /// Atomic: send() has no other shared state, so concurrent senders on
  /// one transport are safe — a plain counter could mint two messages
  /// with the same name, and the second rename would overwrite the first.
  std::atomic<std::size_t> seq_{0};
  /// Unparseable message files seen by the previous poll of each inbox:
  /// still-unparseable on the next sight -> deleted (ignored-then-cleaned).
  std::map<std::string, int> suspect_;
};

}  // namespace xr::runtime::service
