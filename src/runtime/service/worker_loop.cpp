#include "runtime/service/worker_loop.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/failpoint.h"
#include "obs/registry.h"
#include "obs/snapshot.h"
#include "runtime/shard/worker.h"
#include "runtime/sweep_request.h"

namespace xr::runtime::service {

namespace fs = std::filesystem;

namespace {

struct ServeMetrics {
  obs::Counter grants{"service.worker.grants"};
  obs::Counter completed{"service.worker.leases_completed"};
  obs::Counter failed{"service.worker.leases_failed"};
  obs::Counter revoked{"service.worker.revocations"};
  obs::Counter slices{"service.worker.slices"};
  obs::Counter heartbeats{"service.worker.heartbeats_sent"};
  obs::Counter fresh_restarts{"service.worker.fresh_restarts"};
  obs::Counter send_failures{"service.worker.send_failures"};
  obs::Counter request_refetches{"service.worker.request_refetches"};

  static ServeMetrics& get() {
    static ServeMetrics m;
    return m;
  }
};

std::uint64_t now_ms() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

/// Carry a dead attempt's surviving output forward so its flushed prefix
/// is resumed, not re-evaluated. Missing source files are fine (the
/// attempt died before its first flush); a copy that catches a torn tail
/// is fine too (the resume scan truncates it).
void copy_attempt_forward(const std::string& from_stem,
                          const std::string& to_stem) {
  static const char* kSuffixes[] = {".jsonl", ".xrb", ".partial.json"};
  for (const char* suffix : kSuffixes) {
    std::error_code ec;
    const fs::path src = from_stem + suffix;
    if (!fs::exists(src, ec)) continue;
    fs::copy_file(src, fs::path(to_stem + suffix),
                  fs::copy_options::overwrite_existing, ec);
    if (ec)
      throw std::runtime_error("serve: cannot copy " + src.string() + " to " +
                               to_stem + suffix + ": " + ec.message());
  }
}

/// Drop an attempt stem's files (record streams + checkpoint): the local
/// repair move when a stem turns out poisoned — re-evaluation from empty
/// is byte-identical by the resume law, merely wasteful.
void remove_attempt_files(const std::string& stem) {
  static const char* kSuffixes[] = {".jsonl", ".xrb", ".partial.json",
                                    ".partial.json.tmp"};
  for (const char* suffix : kSuffixes) {
    std::error_code ec;
    fs::remove(fs::path(stem + suffix), ec);
  }
}

/// The active lease: the grant plus the ready-to-run worker spec.
struct ActiveLease {
  LeaseGrantBody grant;
  shard::WorkerSpec spec;
  /// options.slice_records rounded up to the spec's checkpoint chunk —
  /// binary streams accept only chunk-aligned resume prefixes (the
  /// byte-identity-on-the-chunk-grid rule of binary_stream.h), so a slice
  /// that stopped mid-chunk would be truncated by the next slice's resume
  /// scan and re-evaluated forever.
  std::size_t slice_records = 1;
  std::size_t records_done = 0;
  /// One local repair per lease: set after wiping the stem and retrying
  /// fresh; a second failure reports lease_failed.
  bool fresh_retried = false;
};

}  // namespace

WorkerLoopOutcome run_service_worker(Transport& transport,
                                     const WorkerLoopOptions& options) {
  validate_endpoint_name(options.name);
  if (options.slice_records == 0)
    throw std::invalid_argument("serve: slice_records must be >= 1");

  WorkerLoopOutcome out;
  std::optional<SweepRequest> request;  // fetched + cached at first grant.
  std::uint64_t request_fingerprint = 0;
  std::optional<ActiveLease> active;
  std::uint64_t last_heartbeat = 0;
  std::uint64_t last_contact = now_ms();
  ServeMetrics& metrics = ServeMetrics::get();

  // Coordinator-bound sends are best-effort: the lease protocol already
  // survives a silent worker (the lease expires and reassigns), so a
  // transport failure must degrade to exactly that, never crash the loop.
  const auto safe_send = [&](const Message& msg) -> bool {
    try {
      transport.send(kCoordinatorEndpoint, msg);
      return true;
    } catch (const std::exception&) {
      metrics.send_failures.add();
      return false;
    }
  };

  safe_send(make_register(options.name));

  const auto send_heartbeat = [&](std::uint64_t now) {
    HeartbeatBody hb;
    if (active) {
      hb.busy = true;
      hb.lease = active->grant.lease;
      hb.attempt = active->grant.attempt;
      hb.records_done = active->records_done;
    }
    safe_send(make_heartbeat(options.name, hb));
    metrics.heartbeats.add();
    last_heartbeat = now;
  };

  // Fetch + validate the request document against the grant, with bounded
  // re-fetches: a corrupt or truncated board blob (or a stale document
  // from an old run) must surface as a NAMED refusal to evaluate, never a
  // crash and never a wrong-grid evaluation (the fingerprint check is the
  // one guard between a torn blob and silently merging foreign records).
  const auto fetch_request = [&](const LeaseGrantBody& grant) {
    std::string why;
    for (std::size_t tries = 0; tries < 3; ++tries) {
      if (tries) metrics.request_refetches.add();
      const auto text = transport.fetch(kRequestKey);
      if (!text) {
        why = "coordinator has not published the request document";
        continue;
      }
      try {
        request = SweepRequest::from_json(core::Json::parse(*text));
      } catch (const std::exception& e) {
        request.reset();
        why = std::string("request document does not parse (corrupt board "
                          "blob?): ") +
              e.what();
        continue;
      }
      request_fingerprint = request->fingerprint();
      if (request_fingerprint == grant.fingerprint) return;
      why =
          "request document fingerprint mismatch vs the grant (corrupt "
          "board blob or stale service directory)";
      request.reset();
    }
    throw std::runtime_error("serve: request document unusable after 3 "
                             "fetches: " +
                             why);
  };

  const auto start_lease = [&](const LeaseGrantBody& grant) {
    if (!request || request_fingerprint != grant.fingerprint)
      fetch_request(grant);
    if (request->adaptive)
      throw std::runtime_error(
          "serve: adaptive requests are not lease-schedulable yet — run "
          "the two-pass flow of scripts/sweep_adaptive.sh");
    if (!grant.resume_from.empty())
      copy_attempt_forward(grant.resume_from, grant.output);
    ActiveLease lease;
    lease.grant = grant;
    // Resume is always on: attempt 0 of a restarted coordinator picks up
    // its own previous output, a reassignment picks up the copied prefix,
    // and a fresh stem just starts empty.
    lease.spec = shard::WorkerSpec::from_request(
        *request, grant.lease, grant.shard_count, grant.strategy,
        grant.output, /*resume=*/true);
    const std::size_t chunk =
        std::max<std::size_t>(lease.spec.chunk_records, 1);
    lease.slice_records =
        (options.slice_records + chunk - 1) / chunk * chunk;
    active = std::move(lease);
    metrics.grants.add();
  };

  for (;;) {
    bool saw_message = false;
    for (const Message& msg : transport.poll(options.name)) {
      saw_message = true;
      switch (msg.kind) {
        case MessageKind::kLeaseGrant: {
          const auto grant = LeaseGrantBody::from_json(msg.body);
          try {
            start_lease(grant);
          } catch (const std::exception& e) {
            active.reset();
            metrics.failed.add();
            safe_send(make_lease_failed(
                options.name, {grant.lease, grant.attempt, e.what()}));
          }
          break;
        }
        case MessageKind::kRevoke: {
          const auto revoke = RevokeBody::from_json(msg.body);
          if (active && active->grant.lease == revoke.lease &&
              active->grant.attempt == revoke.attempt) {
            // The coordinator expired us and has (or will) reassign the
            // shard; our stem is now the resume source of the next
            // attempt. Drop the lease and rejoin the pool.
            active.reset();
            metrics.revoked.add();
            safe_send(make_register(options.name));
          }
          break;
        }
        case MessageKind::kShutdown: {
          safe_send(make_snapshot(options.name,
                                  obs::capture(false).to_json()));
          safe_send(make_deregister(options.name));
          out.shutdown = true;
          return out;
        }
        default:
          break;  // coordinator-bound kinds; ignore.
      }
    }
    const std::uint64_t now = now_ms();
    if (saw_message) last_contact = now;

    if (active) {
      if (options.max_slices && out.slices >= options.max_slices) {
        out.crashed = true;  // simulated kill: vanish mid-lease.
        return out;
      }
      shard::WorkerOutcome slice;
      try {
        if (const auto fired = fail::point("service.worker.slice")) {
          if (fired->action == fail::Action::kDelay)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(fired->delay_ms));
          else if (fired->action == fail::Action::kIoError)
            throw std::runtime_error(
                "fault injected: service.worker.slice io_error (" +
                active->spec.output + ")");
        }
        slice = shard::run_worker(active->spec, active->slice_records);
      } catch (const std::exception& e) {
        if (!active->fresh_retried) {
          // Local repair, once per lease: the slice may have died on a
          // poisoned stem (torn stream, bad checkpoint), and re-evaluating
          // from empty is byte-identical by the resume law. Wipe the
          // attempt's files and try again before involving the
          // coordinator.
          active->fresh_retried = true;
          active->records_done = 0;
          remove_attempt_files(active->spec.output);
          metrics.fresh_restarts.add();
          ++out.fresh_restarts;
          continue;
        }
        const LeaseGrantBody grant = active->grant;
        active.reset();
        metrics.failed.add();
        safe_send(make_lease_failed(
            options.name, {grant.lease, grant.attempt, e.what()}));
        continue;
      }
      ++out.slices;
      metrics.slices.add();
      out.records_evaluated += slice.evaluated_records;
      active->records_done = slice.shard_records;
      send_heartbeat(now_ms());
      if (options.slice_delay_ms)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.slice_delay_ms));
      if (slice.complete) {
        LeaseCompleteBody done;
        done.lease = active->grant.lease;
        done.attempt = active->grant.attempt;
        done.records_path = slice.records_path;
        done.records = slice.shard_records;
        if (!safe_send(make_lease_complete(options.name, done))) {
          // Keep the lease: the shard is fully evaluated, so the next
          // iteration's run_worker returns complete immediately and we
          // retry the send — heartbeats keep the lease alive meanwhile.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options.poll_ms));
          continue;
        }
        metrics.completed.add();
        ++out.leases_completed;
        active.reset();
      }
      continue;  // no sleep while a lease is in hand.
    }

    if (options.idle_timeout_ms && now - last_contact > options.idle_timeout_ms) {
      out.idle_timeout = true;
      return out;
    }
    if (now - last_heartbeat >= options.heartbeat_ms) send_heartbeat(now);
    std::this_thread::sleep_for(std::chrono::milliseconds(options.poll_ms));
  }
}

}  // namespace xr::runtime::service
