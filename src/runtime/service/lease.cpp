#include "runtime/service/lease.h"

#include <stdexcept>

namespace xr::runtime::service {

LeaseTable::LeaseTable(std::size_t shard_count, std::uint64_t timeout_ms,
                       std::size_t max_attempts, bool quarantine_exhausted)
    : leases_(shard_count), timeout_ms_(timeout_ms),
      max_attempts_(max_attempts),
      quarantine_exhausted_(quarantine_exhausted) {
  if (shard_count == 0)
    throw std::invalid_argument("LeaseTable: shard_count must be >= 1");
  if (timeout_ms == 0)
    throw std::invalid_argument("LeaseTable: timeout_ms must be >= 1");
  if (max_attempts == 0)
    throw std::invalid_argument("LeaseTable: max_attempts must be >= 1");
}

std::optional<LeaseAssignment> LeaseTable::assign(const std::string& worker,
                                                  std::uint64_t now_ms) {
  if (worker.empty())
    throw std::invalid_argument("LeaseTable: empty worker name");
  for (std::size_t k = 0; k < leases_.size(); ++k) {
    LeaseInfo& l = leases_[k];
    if (l.state != LeaseState::kPending) continue;
    LeaseAssignment out;
    out.lease = k;
    if (l.ever_assigned) {
      if (l.attempt + 1 >= max_attempts_) {
        if (quarantine_exhausted_) {
          // Graceful degradation: park the poisoned shard and keep
          // scheduling the rest; the coordinator reports it in the
          // "xr.service.partial.v1" document instead of aborting.
          l.state = LeaseState::kQuarantined;
          l.holder.clear();
          ++quarantined_;
          continue;
        }
        throw std::runtime_error(
            "LeaseTable: shard " + std::to_string(k) + " failed " +
            std::to_string(max_attempts_) +
            " attempts — aborting the sweep (inspect the shard stems)");
      }
      out.attempt = l.attempt + 1;
      out.previous_attempt = l.attempt;
    } else {
      out.attempt = 0;
    }
    l.state = LeaseState::kActive;
    l.holder = worker;
    l.attempt = out.attempt;
    l.ever_assigned = true;
    l.deadline_ms = now_ms + timeout_ms_;
    return out;
  }
  return std::nullopt;
}

bool LeaseTable::holds(const std::string& worker, std::size_t lease,
                       std::size_t attempt) const {
  if (lease >= leases_.size()) return false;
  const LeaseInfo& l = leases_[lease];
  return l.state == LeaseState::kActive && l.holder == worker &&
         l.attempt == attempt;
}

bool LeaseTable::heartbeat(const std::string& worker, std::size_t lease,
                           std::size_t attempt, std::size_t records_done,
                           std::uint64_t now_ms) {
  if (lease >= leases_.size()) return false;
  LeaseInfo& l = leases_[lease];
  if (l.state != LeaseState::kActive || l.holder != worker ||
      l.attempt != attempt)
    return false;
  l.deadline_ms = now_ms + timeout_ms_;
  l.records_done = records_done;
  return true;
}

bool LeaseTable::complete(const std::string& worker, std::size_t lease,
                          std::size_t attempt) {
  if (lease >= leases_.size()) return false;
  LeaseInfo& l = leases_[lease];
  if (l.state != LeaseState::kActive || l.holder != worker ||
      l.attempt != attempt)
    return false;
  l.state = LeaseState::kDone;
  ++done_;
  return true;
}

bool LeaseTable::fail(const std::string& worker, std::size_t lease,
                      std::size_t attempt) {
  if (lease >= leases_.size()) return false;
  LeaseInfo& l = leases_[lease];
  if (l.state != LeaseState::kActive || l.holder != worker ||
      l.attempt != attempt)
    return false;
  l.state = LeaseState::kPending;
  l.holder.clear();
  return true;
}

std::vector<LeaseExpiry> LeaseTable::expire(std::uint64_t now_ms) {
  std::vector<LeaseExpiry> out;
  for (std::size_t k = 0; k < leases_.size(); ++k) {
    LeaseInfo& l = leases_[k];
    if (l.state != LeaseState::kActive || l.deadline_ms >= now_ms) continue;
    out.push_back({k, l.holder, l.attempt});
    l.state = LeaseState::kPending;
    l.holder.clear();
  }
  return out;
}

std::vector<std::size_t> LeaseTable::release_worker(const std::string& worker) {
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < leases_.size(); ++k) {
    LeaseInfo& l = leases_[k];
    if (l.state != LeaseState::kActive || l.holder != worker) continue;
    out.push_back(k);
    l.state = LeaseState::kPending;
    l.holder.clear();
  }
  return out;
}

std::vector<std::size_t> LeaseTable::quarantined_ids() const {
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < leases_.size(); ++k)
    if (leases_[k].state == LeaseState::kQuarantined) out.push_back(k);
  return out;
}

const LeaseInfo& LeaseTable::info(std::size_t lease) const {
  if (lease >= leases_.size())
    throw std::out_of_range("LeaseTable: lease out of range");
  return leases_[lease];
}

}  // namespace xr::runtime::service
