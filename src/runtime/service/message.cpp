#include "runtime/service/message.h"

#include <stdexcept>

namespace xr::runtime::service {

namespace {

using core::Json;

/// Shared strict-object walker: calls `field` for each member and throws
/// (naming the document kind and the offender) when `field` returns false.
template <typename F>
void walk_strict(const Json& j, const char* what, F&& field) {
  for (const auto& [key, value] : j.as_object()) {
    if (!field(key, value))
      throw std::invalid_argument(std::string(what) + ": unknown field '" +
                                  key + "'");
  }
}

}  // namespace

const char* message_kind_name(MessageKind k) noexcept {
  switch (k) {
    case MessageKind::kRegister: return "register";
    case MessageKind::kDeregister: return "deregister";
    case MessageKind::kHeartbeat: return "heartbeat";
    case MessageKind::kLeaseGrant: return "lease_grant";
    case MessageKind::kLeaseComplete: return "lease_complete";
    case MessageKind::kLeaseFailed: return "lease_failed";
    case MessageKind::kRevoke: return "revoke";
    case MessageKind::kSnapshot: return "snapshot";
    case MessageKind::kShutdown: return "shutdown";
  }
  return "?";
}

MessageKind message_kind_from_name(const std::string& name) {
  for (MessageKind k :
       {MessageKind::kRegister, MessageKind::kDeregister,
        MessageKind::kHeartbeat, MessageKind::kLeaseGrant,
        MessageKind::kLeaseComplete, MessageKind::kLeaseFailed,
        MessageKind::kRevoke, MessageKind::kSnapshot, MessageKind::kShutdown})
    if (name == message_kind_name(k)) return k;
  throw std::invalid_argument("service message: unknown kind '" + name + "'");
}

Json Message::to_json() const {
  Json j = Json::object();
  j.set("schema", kMessageSchema);
  j.set("kind", message_kind_name(kind));
  j.set("from", from);
  j.set("body", body);
  return j;
}

Message Message::from_json(const Json& j) {
  Message out;
  bool saw_schema = false, saw_kind = false, saw_from = false, saw_body = false;
  walk_strict(j, "service message", [&](const std::string& key,
                                        const Json& value) {
    if (key == "schema") {
      if (value.as_string() != kMessageSchema)
        throw std::invalid_argument("service message: unknown schema '" +
                                    value.as_string() + "'");
      saw_schema = true;
    } else if (key == "kind") {
      out.kind = message_kind_from_name(value.as_string());
      saw_kind = true;
    } else if (key == "from") {
      out.from = value.as_string();
      saw_from = true;
    } else if (key == "body") {
      if (!value.is_object())
        throw std::invalid_argument("service message: body must be an object");
      out.body = value;
      saw_body = true;
    } else {
      return false;
    }
    return true;
  });
  if (!saw_schema)
    throw std::invalid_argument("service message: missing 'schema'");
  if (!saw_kind) throw std::invalid_argument("service message: missing 'kind'");
  if (!saw_from) throw std::invalid_argument("service message: missing 'from'");
  if (!saw_body) throw std::invalid_argument("service message: missing 'body'");
  return out;
}

// ---- bodies -------------------------------------------------------------

Json LeaseGrantBody::to_json() const {
  Json j = Json::object();
  j.set("lease", lease);
  j.set("attempt", attempt);
  j.set("shard_count", shard_count);
  j.set("strategy", shard::strategy_name(strategy));
  j.set("output", output);
  if (!resume_from.empty()) j.set("resume_from", resume_from);
  j.set("fingerprint", core::format_hex64(fingerprint));
  return j;
}

LeaseGrantBody LeaseGrantBody::from_json(const Json& j) {
  LeaseGrantBody out;
  bool saw_lease = false, saw_count = false, saw_output = false,
       saw_fp = false;
  walk_strict(j, "lease_grant", [&](const std::string& key,
                                    const Json& value) {
    if (key == "lease") {
      out.lease = value.as_size();
      saw_lease = true;
    } else if (key == "attempt") {
      out.attempt = value.as_size();
    } else if (key == "shard_count") {
      out.shard_count = value.as_size();
      saw_count = true;
    } else if (key == "strategy") {
      out.strategy = shard::strategy_from_name(value.as_string());
    } else if (key == "output") {
      out.output = value.as_string();
      saw_output = true;
    } else if (key == "resume_from") {
      out.resume_from = value.as_string();
    } else if (key == "fingerprint") {
      out.fingerprint = core::parse_hex64(value.as_string());
      saw_fp = true;
    } else {
      return false;
    }
    return true;
  });
  if (!saw_lease) throw std::invalid_argument("lease_grant: missing 'lease'");
  if (!saw_count)
    throw std::invalid_argument("lease_grant: missing 'shard_count'");
  if (out.shard_count == 0)
    throw std::invalid_argument("lease_grant: shard_count must be >= 1");
  if (out.lease >= out.shard_count)
    throw std::invalid_argument("lease_grant: lease out of range");
  if (!saw_output || out.output.empty())
    throw std::invalid_argument("lease_grant: missing 'output'");
  if (!saw_fp)
    throw std::invalid_argument("lease_grant: missing 'fingerprint'");
  return out;
}

Json HeartbeatBody::to_json() const {
  Json j = Json::object();
  j.set("busy", busy);
  if (busy) {
    j.set("lease", lease);
    j.set("attempt", attempt);
    j.set("records_done", records_done);
  }
  return j;
}

HeartbeatBody HeartbeatBody::from_json(const Json& j) {
  HeartbeatBody out;
  walk_strict(j, "heartbeat",
              [&](const std::string& key, const Json& value) {
                if (key == "busy") out.busy = value.as_bool();
                else if (key == "lease") out.lease = value.as_size();
                else if (key == "attempt") out.attempt = value.as_size();
                else if (key == "records_done")
                  out.records_done = value.as_size();
                else
                  return false;
                return true;
              });
  return out;
}

Json LeaseCompleteBody::to_json() const {
  Json j = Json::object();
  j.set("lease", lease);
  j.set("attempt", attempt);
  j.set("records_path", records_path);
  j.set("records", records);
  return j;
}

LeaseCompleteBody LeaseCompleteBody::from_json(const Json& j) {
  LeaseCompleteBody out;
  bool saw_lease = false, saw_path = false;
  walk_strict(j, "lease_complete",
              [&](const std::string& key, const Json& value) {
                if (key == "lease") {
                  out.lease = value.as_size();
                  saw_lease = true;
                } else if (key == "attempt") {
                  out.attempt = value.as_size();
                } else if (key == "records_path") {
                  out.records_path = value.as_string();
                  saw_path = true;
                } else if (key == "records") {
                  out.records = value.as_size();
                } else {
                  return false;
                }
                return true;
              });
  if (!saw_lease)
    throw std::invalid_argument("lease_complete: missing 'lease'");
  if (!saw_path || out.records_path.empty())
    throw std::invalid_argument("lease_complete: missing 'records_path'");
  return out;
}

Json LeaseFailedBody::to_json() const {
  Json j = Json::object();
  j.set("lease", lease);
  j.set("attempt", attempt);
  j.set("error", error);
  return j;
}

LeaseFailedBody LeaseFailedBody::from_json(const Json& j) {
  LeaseFailedBody out;
  bool saw_lease = false;
  walk_strict(j, "lease_failed",
              [&](const std::string& key, const Json& value) {
                if (key == "lease") {
                  out.lease = value.as_size();
                  saw_lease = true;
                } else if (key == "attempt") {
                  out.attempt = value.as_size();
                } else if (key == "error") {
                  out.error = value.as_string();
                } else {
                  return false;
                }
                return true;
              });
  if (!saw_lease) throw std::invalid_argument("lease_failed: missing 'lease'");
  return out;
}

Json RevokeBody::to_json() const {
  Json j = Json::object();
  j.set("lease", lease);
  j.set("attempt", attempt);
  return j;
}

RevokeBody RevokeBody::from_json(const Json& j) {
  RevokeBody out;
  bool saw_lease = false;
  walk_strict(j, "revoke", [&](const std::string& key, const Json& value) {
    if (key == "lease") {
      out.lease = value.as_size();
      saw_lease = true;
    } else if (key == "attempt") {
      out.attempt = value.as_size();
    } else {
      return false;
    }
    return true;
  });
  if (!saw_lease) throw std::invalid_argument("revoke: missing 'lease'");
  return out;
}

// ---- helpers ------------------------------------------------------------

namespace {
Message make(MessageKind kind, std::string from, Json body) {
  Message m;
  m.kind = kind;
  m.from = std::move(from);
  m.body = std::move(body);
  return m;
}
}  // namespace

Message make_register(const std::string& from) {
  return make(MessageKind::kRegister, from, Json::object());
}
Message make_deregister(const std::string& from) {
  return make(MessageKind::kDeregister, from, Json::object());
}
Message make_heartbeat(const std::string& from, const HeartbeatBody& body) {
  return make(MessageKind::kHeartbeat, from, body.to_json());
}
Message make_lease_grant(const LeaseGrantBody& body) {
  return make(MessageKind::kLeaseGrant, kCoordinatorEndpoint, body.to_json());
}
Message make_lease_complete(const std::string& from,
                            const LeaseCompleteBody& body) {
  return make(MessageKind::kLeaseComplete, from, body.to_json());
}
Message make_lease_failed(const std::string& from,
                          const LeaseFailedBody& body) {
  return make(MessageKind::kLeaseFailed, from, body.to_json());
}
Message make_revoke(const RevokeBody& body) {
  return make(MessageKind::kRevoke, kCoordinatorEndpoint, body.to_json());
}
Message make_snapshot(const std::string& from, Json doc) {
  Json body = Json::object();
  body.set("doc", std::move(doc));
  return make(MessageKind::kSnapshot, from, std::move(body));
}
Message make_shutdown() {
  return make(MessageKind::kShutdown, kCoordinatorEndpoint, Json::object());
}

}  // namespace xr::runtime::service
