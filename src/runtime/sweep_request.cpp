#include "runtime/sweep_request.h"

#include <stdexcept>
#include <vector>

#include "obs/registry.h"
#include "obs/span.h"
#include "runtime/adaptive.h"
#include "runtime/batch_evaluator.h"
#include "runtime/decision_batch.h"
#include "runtime/shard/streaming_sink.h"

namespace xr::runtime {

namespace {

constexpr const char* kRequestSchema = "xr.sweep.request.v1";

}  // namespace

const char* reduction_name(ReductionKind k) noexcept {
  return k == ReductionKind::kSummary ? "summary" : "offload_plan";
}

ReductionKind reduction_from_name(const std::string& name) {
  if (name == "summary") return ReductionKind::kSummary;
  if (name == "offload_plan") return ReductionKind::kOffloadPlan;
  throw std::invalid_argument("ReductionSpec: unknown kind '" + name + "'");
}

core::Json ReductionSpec::to_json() const {
  core::Json j = core::Json::object();
  j.set("kind", reduction_name(kind));
  if (kind == ReductionKind::kOffloadPlan) j.set("alpha", alpha);
  return j;
}

ReductionSpec ReductionSpec::from_json(const core::Json& j) {
  ReductionSpec out;
  out.kind = reduction_from_name(j.at("kind").as_string());
  if (const core::Json* a = j.find("alpha")) out.alpha = a->as_double();
  if (out.alpha < 0 || out.alpha > 1)
    throw std::invalid_argument("ReductionSpec: alpha must be in [0, 1]");
  return out;
}

core::Json ExecutionSpec::to_json() const {
  core::Json j = core::Json::object();
  j.set("threads", threads);
  j.set("chunk_records", chunk_records);
  if (grain != 0) j.set("grain", grain);
  j.set("metrics", metrics);
  // Only the non-default encoding is serialized: existing jsonl request
  // documents stay byte-stable.
  if (format == shard::RecordFormat::kBinary)
    j.set("format", shard::format_name(format));
  return j;
}

ExecutionSpec ExecutionSpec::from_json(const core::Json& j) {
  ExecutionSpec out;
  if (const core::Json* t = j.find("threads")) out.threads = t->as_size();
  if (const core::Json* c = j.find("chunk_records"))
    out.chunk_records = c->as_size();
  // The same normalization WorkerSpec applies: 0 means "flush every
  // record", expressed as chunks of 1.
  if (out.chunk_records == 0) out.chunk_records = 1;
  if (const core::Json* g = j.find("grain")) out.grain = g->as_size();
  if (const core::Json* m = j.find("metrics")) out.metrics = m->as_bool();
  if (const core::Json* f = j.find("format"))
    out.format = shard::format_from_name(f->as_string());
  return out;
}

core::Json AdaptiveSpec::to_json() const {
  core::Json j = core::Json::object();
  j.set("coarse_frames", coarse_frames);
  j.set("fine_frames", fine_frames);
  j.set("band_fraction", band_fraction);
  return j;
}

void AdaptiveSpec::validate() const {
  if (coarse_frames == 0)
    throw std::invalid_argument(
        "AdaptiveSpec: adaptive.coarse_frames must be >= 1 (a zero-frame "
        "coarse pass measures nothing)");
  if (coarse_frames >= fine_frames)
    throw std::invalid_argument(
        "AdaptiveSpec: adaptive.coarse_frames (" +
        std::to_string(coarse_frames) +
        ") must be < adaptive.fine_frames (" + std::to_string(fine_frames) +
        ") — a coarse pass at or above the target fidelity saves nothing");
  if (!(band_fraction >= 0))
    throw std::invalid_argument(
        "AdaptiveSpec: adaptive.band_fraction must be >= 0");
}

AdaptiveSpec AdaptiveSpec::from_json(const core::Json& j) {
  AdaptiveSpec out;
  if (const core::Json* c = j.find("coarse_frames"))
    out.coarse_frames = c->as_size();
  if (const core::Json* f = j.find("fine_frames"))
    out.fine_frames = f->as_size();
  if (const core::Json* b = j.find("band_fraction"))
    out.band_fraction = b->as_double();
  out.validate();
  return out;
}

std::uint64_t SweepRequest::fingerprint() const {
  if (adaptive)
    return adaptive_fingerprint(grid, evaluator, *adaptive);
  return shard::grid_fingerprint(grid, evaluator);
}

core::Json SweepRequest::to_json() const {
  core::Json j = core::Json::object();
  j.set("schema", kRequestSchema);
  j.set("grid", grid.to_json());
  j.set("evaluator", evaluator.to_json());
  j.set("reduction", reduction.to_json());
  if (adaptive) j.set("adaptive", adaptive->to_json());
  j.set("execution", execution.to_json());
  return j;
}

SweepRequest SweepRequest::from_json(const core::Json& j) {
  if (j.at("schema").as_string() != kRequestSchema)
    throw std::invalid_argument("SweepRequest: unknown schema '" +
                                j.at("schema").as_string() + "'");
  SweepRequest out;
  out.grid = GridSpec::from_json(j.at("grid"));
  if (const core::Json* e = j.find("evaluator"))
    out.evaluator = shard::EvaluatorSpec::from_json(*e);
  if (const core::Json* r = j.find("reduction"))
    out.reduction = ReductionSpec::from_json(*r);
  if (const core::Json* a = j.find("adaptive"))
    out.adaptive = AdaptiveSpec::from_json(*a);
  if (const core::Json* x = j.find("execution"))
    out.execution = ExecutionSpec::from_json(*x);
  // Detectable from the document alone, so refuse here — before any worker
  // burns a full (possibly ground-truth, possibly sharded) sweep on a
  // request whose reduction must reject its summary at merge time.
  if (out.reduction.kind == ReductionKind::kOffloadPlan &&
      out.evaluator.is_ground_truth())
    throw std::invalid_argument(
        "SweepRequest: the offload_plan reduction requires the analytical "
        "evaluator (ground-truth measurements cannot be re-derived per "
        "decision)");
  if (out.adaptive && !out.evaluator.is_ground_truth())
    throw std::invalid_argument(
        "SweepRequest: the adaptive block requires the ground_truth "
        "evaluator (the analytical model has no fidelity knob to trade "
        "against wall time)");
  return out;
}

shard::MergedSummary run_request(const SweepRequest& request,
                                 const core::XrPerformanceModel& model) {
  static obs::Counter runs("runtime.request.runs");
  static obs::Counter adaptive_runs("runtime.request.adaptive_runs");
  static obs::Counter batched_runs("runtime.request.batched_runs");
  static obs::Counter scalar_runs("runtime.request.scalar_runs");
  const obs::Span span("request.run");
  runs.add();

  // Adaptive requests have their own two-pass driver; its result obeys the
  // same merge law (K = 1 case), so callers see one entry point.
  if (request.adaptive) {
    adaptive_runs.add();
    const obs::Span adaptive_span("request.adaptive");
    return run_adaptive(request, model).summary;
  }

  // Analytical requests take the SoA serving kernel when it is enabled and
  // maps every axis — bitwise-identical to the scalar fold below (the
  // standing gate of tests/runtime/test_decision_batch.cpp), just without
  // re-walking the full model per candidate.
  {
    const obs::Span batched_span("request.batched_kernel");
    if (const auto batched = try_run_request_batched(request, model)) {
      batched_runs.add();
      return *batched;
    }
  }

  scalar_runs.add();
  const ScenarioGrid grid = request.grid.build();
  const BatchEvaluator engine(
      model, BatchOptions{request.execution.threads, request.execution.grain});

  // Evaluate every point through the exact per-point code path the sharded
  // workers run (evaluate_point, seeded from the global index), then fold
  // the same single-shard reduction a K = 1 worker would stream.
  std::vector<shard::EvaluatedPoint> points;
  {
    const obs::Span map_span("request.map");
    points = engine.map(grid.size(), [&](std::size_t i) {
      return shard::evaluate_point(request.evaluator, model, grid.at(i), i);
    });
  }

  const obs::Span reduce_span("request.reduce");
  const shard::ShardIdentity id{0, 1, shard::ShardStrategy::kRange,
                                grid.size(), request.fingerprint()};
  shard::PartialReduction partial(id, request.evaluator.is_ground_truth());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const shard::GtMeasurement* gt =
        points[i].gt ? &*points[i].gt : nullptr;
    if (gt)
      partial.add(i, gt->mean_latency_ms, gt->mean_energy_mj, gt);
    else
      partial.add(i, points[i].report.latency.total,
                  points[i].report.energy.total);
  }
  partial.threads = engine.threads();
  return shard::merge_partials({partial});
}

}  // namespace xr::runtime
