// SoA batch kernel for offload-decision grids — the serving hot path.
//
// The scalar path computes every candidate of an offload search by walking
// the full analytical model: per point it re-resolves the CNN zoo entry and
// codec curves (devices/memo.h lookups), re-derives the Eq. (2) resource
// allocation and Eq. (21) power regression, and re-branches on placement.
// But a serializable grid (runtime::GridSpec) varies at most nine knobs,
// and every Eq. (1)/Eq. (19) segment depends on a small, fixed subset of
// them — so across the grid each segment takes only as many distinct
// values as the cross product of ITS axes, not the whole grid's.
//
// DecisionBatchKernel exploits that structure:
//
//   * prepare() hoists each segment into a dense lookup table over exactly
//     the axes that segment reads (its "dependency tuple"), filled by
//     calling the same compiled LatencyModel/PowerModel methods the scalar
//     path calls. All memo-table lookups, string resolutions, validation,
//     and placement branches happen here, once per request.
//   * run() then evaluates candidates column-wise (structure-of-arrays):
//     the per-candidate loop is a mixed-radix odometer over the axis
//     coordinates, ~11 table loads, and a fixed chain of additions — no
//     strings, no branches on scenario content, no submodel lookups
//     (devices::submodel_lookup_count() is flat across it).
//
// Bitwise identity with the scalar path is the standing gate, not an
// accuracy target. It holds by construction:
//
//   * a segment value is produced by the SAME machine code as the scalar
//     path (out-of-line calls into latency_model.cpp / power.cpp), fed the
//     SAME materialized scenario (grid.at() with non-dependency coordinates
//     pinned at 0 — legal precisely because the segment never reads those
//     knobs);
//   * the totals are reduced in the scalar path's exact association:
//     Eq. (1)'s left-to-right segment order for latency, Eq. (19)'s
//     segment_sum + base + thermal for energy. Masked segments contribute
//     the same literal 0.0 the scalar breakdown carries. The loop body
//     performs additions only — base/thermal stay out-of-line PowerModel
//     calls so no FP contraction (fused multiply-add) can re-round what the
//     scalar path computed as separate multiply and add;
//   * PartialReduction only consumes the two totals, and
//     offload_plan_from_summary re-derives the winning reports through the
//     scalar model — so bitwise-equal totals imply bitwise-equal summaries,
//     plans, and reports (asserted by tests/runtime/test_decision_batch.cpp
//     across the shared example scenarios and thread counts).
//
// run_request() routes analytical, non-adaptive requests through this
// kernel (try_run_request_batched below) behind a process-wide toggle —
// the same pattern as devices/memo.h — which makes plan_offload and the
// OffloadPlanIndex miss path serve from it transparently.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/framework.h"
#include "runtime/batch_evaluator.h"
#include "runtime/sweep_request.h"

namespace xr::runtime {

/// Enable/disable the SoA batch routing of run_request (default enabled).
/// Never changes results — only which code path computes them (the bitwise
/// gate above); exists for A/B benchmarks and the gate tests themselves.
void set_batch_decision_kernel(bool enabled) noexcept;
[[nodiscard]] bool batch_decision_kernel_enabled() noexcept;

class DecisionBatchKernel {
 public:
  /// Index-aligned totals of one grid evaluation (totals[i] ↔ grid.at(i)),
  /// plus throughput stats of the run that produced them.
  struct Totals {
    std::vector<double> latency_ms;
    std::vector<double> energy_mj;
    double wall_ms = 0;
    std::size_t threads = 1;
  };

  /// Hoist the grid into per-segment tables. Returns nullopt when an axis
  /// knob is outside the kernel's dependency map (future knobs fall back
  /// to the scalar path rather than risking a silent mismatch). Throws
  /// what GridSpec::build / core::validate throw on invalid grids.
  [[nodiscard]] static std::optional<DecisionBatchKernel> prepare(
      const GridSpec& spec, const core::XrPerformanceModel& model = {});

  /// Candidate count of the grid.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Total hoisted table entries — the number of model-segment evaluations
  /// prepare() performed; everything past this is table loads and adds.
  [[nodiscard]] std::size_t table_entries() const noexcept;

  /// Evaluate every candidate. Threads follow the BatchOptions convention
  /// (0 shared pool, 1 strict serial, N dedicated); results are identical
  /// for every thread count (disjoint index ranges, no shared state).
  [[nodiscard]] Totals run(const BatchOptions& options = {}) const;

  /// run() folded through the exact single-shard reduction run_request's
  /// scalar path produces — the K = 1 case of the merge law.
  [[nodiscard]] shard::MergedSummary run_summary(
      std::uint64_t fingerprint, const ExecutionSpec& execution) const;

 private:
  DecisionBatchKernel() = default;

  /// One hoisted segment: a dense (latency, energy) table over the
  /// segment's dependency axes, addressed by sum(coords[axis] * stride).
  struct SegmentTable {
    struct IndexTerm {
      std::size_t axis = 0;
      std::size_t stride = 0;
    };
    std::vector<IndexTerm> terms;
    std::vector<double> latency_ms;
    std::vector<double> energy_mj;
  };

  void eval_range(std::size_t begin, std::size_t end, double* latency_out,
                  double* energy_out) const;

  core::XrPerformanceModel model_;
  std::vector<std::size_t> radix_;  ///< per-axis point counts.
  std::size_t size_ = 1;
  std::array<SegmentTable, 11> tables_;  ///< Eq. (1) segment order.
};

/// The run_request fast path: evaluate an analytical, non-adaptive request
/// through the SoA kernel and reduce it to the same MergedSummary the
/// scalar path folds. nullopt when the toggle is off, the request needs
/// per-point simulation (ground truth / adaptive), or the grid uses a knob
/// the kernel does not map — the caller then runs the scalar path.
[[nodiscard]] std::optional<shard::MergedSummary> try_run_request_batched(
    const SweepRequest& request, const core::XrPerformanceModel& model);

}  // namespace xr::runtime
