#include "runtime/shard/record_stream.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/serialize.h"
#include "runtime/shard/binary_stream.h"

namespace xr::runtime::shard {

RecordSink::~RecordSink() = default;
RecordSource::~RecordSource() = default;

// ---- formats -----------------------------------------------------------

const char* format_name(RecordFormat f) noexcept {
  return f == RecordFormat::kBinary ? "binary" : "jsonl";
}

RecordFormat format_from_name(const std::string& name) {
  if (name == "jsonl") return RecordFormat::kJsonl;
  if (name == "binary") return RecordFormat::kBinary;
  throw std::invalid_argument("unknown record format '" + name +
                              "' (expected jsonl|binary)");
}

const char* format_extension(RecordFormat f) noexcept {
  return f == RecordFormat::kBinary ? ".xrb" : ".jsonl";
}

std::string record_path(const std::string& stem, RecordFormat f) {
  return stem + format_extension(f);
}

std::optional<RecordFormat> format_from_path(std::string_view path) {
  for (RecordFormat f : {RecordFormat::kJsonl, RecordFormat::kBinary}) {
    const std::string_view ext = format_extension(f);
    if (path.size() > ext.size() &&
        path.substr(path.size() - ext.size()) == ext)
      return f;
  }
  return std::nullopt;
}

// ---- record codec (JSONL encoding) -------------------------------------

std::string record_line(std::size_t global_index,
                        const core::PerformanceReport& report,
                        const GtMeasurement* gt, bool metrics_only) {
  Json j = Json::object();
  j.set("i", global_index);
  if (metrics_only) {
    // Slim shape: exactly the totals the reduction consumes.
    j.set("latency_ms", report.latency.total);
    j.set("energy_mj", report.energy.total);
  } else {
    j.set("latency", core::to_json(report.latency));
    j.set("energy", core::to_json(report.energy));
    j.set("sensors", core::to_json(report.sensors));
  }
  if (gt) {
    Json g = Json::object();
    g.set("seed", format_hex64(gt->seed));
    g.set("frames", gt->frames);
    g.set("mean_latency_ms", gt->mean_latency_ms);
    g.set("mean_energy_mj", gt->mean_energy_mj);
    g.set("latency_error_pct", gt->latency_error_pct);
    g.set("energy_error_pct", gt->energy_error_pct);
    j.set("gt", std::move(g));
  }
  return j.dump();
}

ParsedRecord parse_record_line(std::string_view line) {
  const Json j = Json::parse(line);
  ParsedRecord out;
  out.index = j.at("i").as_size();
  if (j.find("latency")) {
    // Full shape: rebuild the report through the core breakdown codecs.
    out.report.latency = core::latency_breakdown_from_json(j.at("latency"));
    out.report.energy = core::energy_breakdown_from_json(j.at("energy"));
    out.report.sensors = core::sensors_from_json(j.at("sensors"));
  } else {
    // Slim (metrics-only) shape: only the totals exist.
    out.slim = true;
    out.report.latency.total = j.at("latency_ms").as_double();
    out.report.energy.total = j.at("energy_mj").as_double();
  }
  if (const Json* g = j.find("gt")) {
    GtMeasurement m;
    m.seed = parse_hex64(g->at("seed").as_string());
    m.frames = g->at("frames").as_size();
    m.mean_latency_ms = g->at("mean_latency_ms").as_double();
    m.mean_energy_mj = g->at("mean_energy_mj").as_double();
    m.latency_error_pct = g->at("latency_error_pct").as_double();
    m.energy_error_pct = g->at("energy_error_pct").as_double();
    out.gt = m;
  }
  return out;
}

// ---- JSONL backend -----------------------------------------------------

namespace {

class JsonlSink final : public RecordSink {
 public:
  JsonlSink(std::string path, const RecordStreamConfig& config,
            const std::size_t* resume_valid_bytes)
      : path_(std::move(path)), metrics_only_(config.metrics_only) {
    if (resume_valid_bytes) {
      // Drop any torn tail, keep the valid prefix, continue appending.
      std::error_code ec;
      if (std::filesystem::exists(path_, ec))
        std::filesystem::resize_file(path_, *resume_valid_bytes);
      file_ = std::fopen(path_.c_str(), "ab");
    } else {
      file_ = std::fopen(path_.c_str(), "wb");
    }
    if (!file_)
      throw std::runtime_error("RecordSink: cannot open " + path_);
    buffer_.reserve(config.chunk_records * 256);
  }

  ~JsonlSink() override {
    if (file_) std::fclose(file_);
  }

  void append(std::size_t global_index,
              const core::PerformanceReport& report,
              const GtMeasurement* gt) override {
    buffer_ += record_line(global_index, report, gt, metrics_only_);
    buffer_ += '\n';
  }

  std::size_t flush() override {
    const std::size_t bytes = buffer_.size();
    if (!buffer_.empty()) {
      if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
          buffer_.size())
        throw std::runtime_error("RecordSink: short write to " + path_);
      buffer_.clear();
    }
    if (std::fflush(file_) != 0)
      throw std::runtime_error("RecordSink: flush failed for " + path_);
    return bytes;
  }

  [[nodiscard]] const std::string& path() const noexcept override {
    return path_;
  }
  [[nodiscard]] RecordFormat format() const noexcept override {
    return RecordFormat::kJsonl;
  }

 private:
  std::string path_;
  bool metrics_only_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
};

class JsonlSource final : public RecordSource {
 public:
  explicit JsonlSource(std::string path)
      : path_(std::move(path)), in_(path_, std::ios::binary) {
    if (!in_)
      throw std::runtime_error("RecordSource: cannot open " + path_);
  }

  bool next(ParsedRecord& out) override {
    std::string line;
    if (!std::getline(in_, line)) {
      if (!line.empty())
        throw std::runtime_error("RecordSource: torn trailing record in " +
                                 path_);
      return false;
    }
    // getline sets eofbit only when the stream ended without a final
    // newline — a torn trailing record; strict readers refuse it.
    if (in_.eof())
      throw std::runtime_error("RecordSource: torn trailing record in " +
                               path_);
    try {
      out = parse_record_line(line);
    } catch (const std::exception& e) {
      throw std::runtime_error("RecordSource: corrupt record in " + path_ +
                               ": " + e.what());
    }
    return true;
  }

  [[nodiscard]] const std::string& path() const noexcept override {
    return path_;
  }
  [[nodiscard]] RecordFormat format() const noexcept override {
    return RecordFormat::kJsonl;
  }

 private:
  std::string path_;
  std::ifstream in_;
};

}  // namespace

// ---- factories ---------------------------------------------------------

std::unique_ptr<RecordSink> open_record_sink(
    const std::string& stem, const RecordStreamConfig& config,
    const ShardIdentity& id, const std::size_t* resume_valid_bytes) {
  std::string path = record_path(stem, config.format);
  if (!resume_valid_bytes) {
    // Fresh stream: drop a stale sibling of the other format so a stem
    // never carries two conflicting encodings.
    const RecordFormat other = config.format == RecordFormat::kJsonl
                                   ? RecordFormat::kBinary
                                   : RecordFormat::kJsonl;
    std::error_code ec;
    std::filesystem::remove(record_path(stem, other), ec);
  }
  if (config.format == RecordFormat::kBinary)
    return open_binary_sink(std::move(path), config, id, resume_valid_bytes);
  return std::make_unique<JsonlSink>(std::move(path), config,
                                     resume_valid_bytes);
}

std::unique_ptr<RecordSource> open_record_source(const std::string& path) {
  const std::optional<RecordFormat> f = format_from_path(path);
  if (!f)
    throw std::invalid_argument(
        "open_record_source: '" + path +
        "' carries neither record extension (.jsonl/.xrb)");
  if (*f == RecordFormat::kBinary) return open_binary_source(path);
  return std::make_unique<JsonlSource>(path);
}

}  // namespace xr::runtime::shard
