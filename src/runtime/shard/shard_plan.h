// Deterministic partitioning of a ScenarioGrid across processes.
//
// The grid is index-addressable (ScenarioGrid::at), so distributing a sweep
// over N workers is a pure index-space question. ShardPlan answers it two
// ways:
//
//   * kRange   — balanced contiguous ranges: shard k owns
//                [k·q + min(k, r), …) with q = ⌊size/K⌋, r = size mod K.
//                The first r shards get one extra index. This is the default
//                and keeps each worker's record stream (JSONL or binary,
//                record_stream.h) a sorted slice of the monolithic
//                enumeration.
//   * kStrided — shard k owns {k, k+K, k+2K, …}. Useful when scenario cost
//                varies systematically along the grid (e.g. the remote end
//                of a placement axis simulating more edges) and contiguous
//                ranges would load-balance badly.
//
// Both strategies enumerate each shard's indices in ascending global order,
// which is what makes the streamed partial reductions mergeable back into
// the exact monolithic result (see streaming_sink.h).
//
// The serializable grid description itself is runtime::GridSpec
// (runtime/sweep.h): one document type shared by every sweep in the repo,
// whether it runs monolithically or sharded.
#pragma once

#include <cstddef>
#include <string>

#include "runtime/sweep.h"

namespace xr::runtime::shard {

enum class ShardStrategy { kRange, kStrided };

[[nodiscard]] const char* strategy_name(ShardStrategy s) noexcept;
/// Inverse of strategy_name; throws std::invalid_argument on unknown names.
[[nodiscard]] ShardStrategy strategy_from_name(const std::string& name);

/// Partition of [0, grid_size) into shard_count shards.
class ShardPlan {
 public:
  /// Throws std::invalid_argument when shard_count == 0. shard_count may
  /// exceed grid_size; the surplus shards are simply empty.
  ShardPlan(std::size_t grid_size, std::size_t shard_count,
            ShardStrategy strategy = ShardStrategy::kRange);

  [[nodiscard]] std::size_t grid_size() const noexcept { return grid_size_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_count_;
  }
  [[nodiscard]] ShardStrategy strategy() const noexcept { return strategy_; }

  /// Number of grid indices owned by shard k.
  [[nodiscard]] std::size_t shard_size(std::size_t shard) const;
  /// The local-th index of shard k, in ascending global order.
  [[nodiscard]] std::size_t global_index(std::size_t shard,
                                         std::size_t local) const;
  /// Which shard owns a global index.
  [[nodiscard]] std::size_t shard_of(std::size_t global) const;

 private:
  void check_shard(std::size_t shard) const;

  std::size_t grid_size_;
  std::size_t shard_count_;
  ShardStrategy strategy_;
};

}  // namespace xr::runtime::shard
