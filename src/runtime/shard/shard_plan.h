// Deterministic partitioning of a ScenarioGrid across processes.
//
// The grid is index-addressable (ScenarioGrid::at), so distributing a sweep
// over N workers is a pure index-space question. ShardPlan answers it two
// ways:
//
//   * kRange   — balanced contiguous ranges: shard k owns
//                [k·q + min(k, r), …) with q = ⌊size/K⌋, r = size mod K.
//                The first r shards get one extra index. This is the default
//                and keeps each worker's JSONL output a sorted slice of the
//                monolithic enumeration.
//   * kStrided — shard k owns {k, k+K, k+2K, …}. Useful when scenario cost
//                varies systematically along the grid (e.g. the remote end
//                of a placement axis simulating more edges) and contiguous
//                ranges would load-balance badly.
//
// Both strategies enumerate each shard's indices in ascending global order,
// which is what makes the streamed partial reductions mergeable back into
// the exact monolithic result (see streaming_sink.h).
//
// GridSpec is the serializable companion: the declarative subset of
// SweepSpec (a factory base scenario plus the paper's named knobs) as a
// compact JSON document, so a worker process can rebuild the exact grid
// from a spec file. Arbitrary axis<T>() mutations are not serializable and
// stay in-process.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/shard/jsonio.h"
#include "runtime/sweep.h"

namespace xr::runtime::shard {

enum class ShardStrategy { kRange, kStrided };

[[nodiscard]] const char* strategy_name(ShardStrategy s) noexcept;
/// Inverse of strategy_name; throws std::invalid_argument on unknown names.
[[nodiscard]] ShardStrategy strategy_from_name(const std::string& name);

/// Partition of [0, grid_size) into shard_count shards.
class ShardPlan {
 public:
  /// Throws std::invalid_argument when shard_count == 0. shard_count may
  /// exceed grid_size; the surplus shards are simply empty.
  ShardPlan(std::size_t grid_size, std::size_t shard_count,
            ShardStrategy strategy = ShardStrategy::kRange);

  [[nodiscard]] std::size_t grid_size() const noexcept { return grid_size_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_count_;
  }
  [[nodiscard]] ShardStrategy strategy() const noexcept { return strategy_; }

  /// Number of grid indices owned by shard k.
  [[nodiscard]] std::size_t shard_size(std::size_t shard) const;
  /// The local-th index of shard k, in ascending global order.
  [[nodiscard]] std::size_t global_index(std::size_t shard,
                                         std::size_t local) const;
  /// Which shard owns a global index.
  [[nodiscard]] std::size_t shard_of(std::size_t global) const;

 private:
  void check_shard(std::size_t shard) const;

  std::size_t grid_size_;
  std::size_t shard_count_;
  ShardStrategy strategy_;
};

/// One serializable sweep axis: a named knob plus its values. Numeric knobs
/// use `numbers`; placement / CNN-name knobs use `strings`.
struct GridAxisSpec {
  std::string knob;
  std::vector<double> numbers;
  std::vector<std::string> strings;
};

/// Serializable scenario grid: factory base + named knob axes.
///
/// Knobs: "frame_size", "cpu_ghz", "omega_c", "codec_mbps",
/// "throughput_mbps", "edge_count" (numeric); "placement"
/// ("local"/"remote"), "local_cnn", "edge_cnn" (string). Axis declaration
/// order is enumeration order (first axis outermost), exactly as SweepSpec.
struct GridSpec {
  std::string base = "remote";  ///< factory: "local" or "remote".
  double frame_size = 500.0;
  double cpu_ghz = 2.0;
  std::vector<GridAxisSpec> axes;

  /// Materialize via SweepSpec; throws std::invalid_argument on unknown
  /// base/knob names or empty axes.
  [[nodiscard]] ScenarioGrid build() const;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static GridSpec from_json(const Json& j);
};

}  // namespace xr::runtime::shard
