#include "runtime/shard/exact_sum.h"

#include <cmath>

namespace xr::runtime::shard {

void ExactSum::add(double x) {
  // msum inner loop (Shewchuk via Hettinger, as in CPython's math.fsum):
  // each two_sum is exact, so partials_ always sums to the exact total.
  std::size_t i = 0;
  for (double y : partials_) {
    if (std::fabs(x) < std::fabs(y)) {
      const double t = x;
      x = y;
      y = t;
    }
    const double hi = x + y;
    const double lo = y - (hi - x);
    if (lo != 0.0) partials_[i++] = lo;
    x = hi;
  }
  partials_.resize(i);
  partials_.push_back(x);
}

void ExactSum::merge(const ExactSum& other) {
  // Safe under self-merge only via copy; callers never self-merge, but the
  // loop below indexes a snapshot size anyway for robustness.
  const std::vector<double> snapshot = other.partials_;
  for (double p : snapshot) add(p);
}

double ExactSum::value() const {
  // CPython fsum's final rounding over non-overlapping increasing-magnitude
  // partials: sum from the top until the addition is inexact, then apply
  // the half-even correction that can span two partials. The result is the
  // exact value correctly rounded — a pure function of the exact value.
  std::size_t n = partials_.size();
  if (n == 0) return 0.0;
  double hi = partials_[--n];
  double lo = 0.0;
  while (n > 0) {
    const double x = hi;
    const double y = partials_[--n];
    hi = x + y;
    const double yr = hi - x;
    lo = y - yr;
    if (lo != 0.0) break;
  }
  if (n > 0 && ((lo < 0.0 && partials_[n - 1] < 0.0) ||
                (lo > 0.0 && partials_[n - 1] > 0.0))) {
    const double y = lo * 2.0;
    const double x = hi + y;
    if (y == x - hi) hi = x;
  }
  return hi;
}

bool ExactSum::same_value(const ExactSum& other) const {
  ExactSum diff = *this;
  for (double p : other.partials_) diff.add(-p);
  for (double p : diff.partials_)
    if (p != 0.0) return false;
  return true;
}

std::vector<double> ExactSum::canonical() const {
  std::vector<double> out;
  ExactSum rest = *this;
  for (;;) {
    const double r = rest.value();
    if (r == 0.0) break;  // exact zero remainder (±0 both terminate)
    out.push_back(r);
    rest.add(-r);
  }
  return out;
}

Json ExactSum::to_json() const {
  Json j = Json::array();
  for (double c : canonical()) j.push_back(Json(c));
  return j;
}

ExactSum ExactSum::from_json(const Json& j) {
  ExactSum out;
  for (const Json& c : j.as_array()) out.add(c.as_double());
  return out;
}

}  // namespace xr::runtime::shard
