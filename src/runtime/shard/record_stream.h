// Pluggable record sinks/sources — the format-agnostic seam of the shard
// I/O stack.
//
// A shard worker streams one record per evaluated grid point through a
// RecordSink and every reader (resume scan, merge fold, the adaptive
// pass-2 copy, sweep_plan's refinement selection) consumes records back
// through a RecordSource. The encoding behind the seam is a backend:
//
//   * jsonl  — one self-describing JSON line per record (<stem>.jsonl),
//     doubles in shortest round-trip form; human-greppable, the default.
//   * binary — the columnar format of binary_stream.h (<stem>.xrb): a
//     versioned header carrying the ShardIdentity + sweep fingerprint,
//     then chunk-framed blocks of raw little-endian column arrays.
//
// Both backends carry the *same* record model (ParsedRecord below: global
// index, a PerformanceReport full or slim, an optional GtMeasurement), so
// every consumer is format-agnostic and the merge law cannot see the
// encoding: a PartialReduction is a pure function of the decoded totals,
// hence K binary shards — or any mix of formats across shards — merge
// bitwise identical to the monolithic JSONL run.
//
// Record shapes (identical across backends):
//
//   full          {index, LatencyBreakdown, EnergyBreakdown, sensors[]}
//   metrics-only  {index, latency total, energy total}   (slim)
//   either + gt   {seed, frames, mean latency/energy, model error %}
//
// Crash contract: a sink buffers chunk_records records between flushes and
// each flush leaves the file a valid prefix, so a killed worker loses at
// most one chunk; StreamingSink::scan_existing recovers the longest valid
// prefix per the backend's tear rules (a torn *tail* truncates silently,
// mid-file corruption is a named error — see streaming_sink.h).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/framework.h"
#include "runtime/shard/evaluator.h"
#include "runtime/shard/jsonio.h"
#include "runtime/shard/shard_plan.h"

namespace xr::runtime::shard {

// ---- formats -----------------------------------------------------------

enum class RecordFormat { kJsonl, kBinary };

[[nodiscard]] const char* format_name(RecordFormat f) noexcept;
/// Inverse of format_name ("jsonl" | "binary"); throws
/// std::invalid_argument on unknown names — the sweep_worker --format
/// values.
[[nodiscard]] RecordFormat format_from_name(const std::string& name);
/// The backend's file extension: ".jsonl" / ".xrb".
[[nodiscard]] const char* format_extension(RecordFormat f) noexcept;
/// <stem> + format_extension(f) — the one place the mapping lives.
[[nodiscard]] std::string record_path(const std::string& stem,
                                      RecordFormat f);
/// Autodetect a record stream's format from its path extension; nullopt
/// when the path carries neither record extension.
[[nodiscard]] std::optional<RecordFormat> format_from_path(
    std::string_view path);

// ---- identity ----------------------------------------------------------

/// Which shard of which partition a document belongs to; every record
/// stream and reduction carries this so merges can validate coverage.
struct ShardIdentity {
  std::size_t shard_id = 0;
  std::size_t shard_count = 1;
  ShardStrategy strategy = ShardStrategy::kRange;
  std::size_t grid_size = 0;
  /// Fingerprint of the grid the records came from (grid_fingerprint() of
  /// the GridSpec for worker-produced documents; 0 when unused). Resume
  /// refuses a checkpoint whose fingerprint differs — index sequences
  /// alone cannot tell two same-shape grids apart — and merge refuses to
  /// fold partials from different grids.
  std::uint64_t grid_fingerprint = 0;
};

// ---- the record model --------------------------------------------------

struct ParsedRecord {
  std::size_t index = 0;
  core::PerformanceReport report;   ///< slim records fill only the totals.
  std::optional<GtMeasurement> gt;  ///< present for ground-truth records.
  bool slim = false;                ///< record was in metrics-only form.
};

/// Serialize one report as a single JSONL line (no trailing newline).
/// `gt` (when non-null) appends the ground-truth measurement block.
/// `metrics_only` emits the slim totals-only shape (see header comment).
[[nodiscard]] std::string record_line(std::size_t global_index,
                                      const core::PerformanceReport& report,
                                      const GtMeasurement* gt = nullptr,
                                      bool metrics_only = false);

/// Parse one JSONL record line (full or slim shape); throws
/// std::invalid_argument on malformed input.
[[nodiscard]] ParsedRecord parse_record_line(std::string_view line);

// ---- sink / source interfaces ------------------------------------------

/// Shared knobs of a record stream, format included. chunk_records bounds
/// buffering for both backends and is the binary backend's chunk framing
/// (one frame per flush); the shape flags are stamped into the binary
/// header and validated by every reader.
struct RecordStreamConfig {
  RecordFormat format = RecordFormat::kJsonl;
  std::size_t chunk_records = 64;
  bool ground_truth = false;
  bool metrics_only = false;
};

/// Append-side backend: encodes records and owns the stream file. Appends
/// buffer; flush() writes one chunk and must leave the file a valid
/// prefix. Implementations throw std::runtime_error on I/O failure.
class RecordSink {
 public:
  virtual ~RecordSink();
  /// Buffer one record (`gt` non-null for ground-truth records).
  virtual void append(std::size_t global_index,
                      const core::PerformanceReport& report,
                      const GtMeasurement* gt) = 0;
  /// Write buffered records to disk as one chunk (no-op when empty) and
  /// fflush. Returns the bytes written by this call.
  virtual std::size_t flush() = 0;
  [[nodiscard]] virtual const std::string& path() const noexcept = 0;
  [[nodiscard]] virtual RecordFormat format() const noexcept = 0;
};

/// Read-side backend: decodes records sequentially. next() is strict —
/// a torn or corrupt stream throws a named std::runtime_error (readers of
/// complete streams must never silently shorten them); the tolerant
/// longest-valid-prefix scan for resume lives in
/// StreamingSink::scan_existing instead.
class RecordSource {
 public:
  virtual ~RecordSource();
  /// Decode the next record into `out`. Returns false at a clean end of
  /// stream.
  virtual bool next(ParsedRecord& out) = 0;
  [[nodiscard]] virtual const std::string& path() const noexcept = 0;
  [[nodiscard]] virtual RecordFormat format() const noexcept = 0;
};

/// Open a sink on record_path(stem, config.format). With
/// `resume_valid_bytes` non-null the existing file is truncated to that
/// prefix and appended to (the scan_existing recovery); otherwise the
/// stream is created fresh (binary: header written) and a stale sibling
/// stream of the *other* format at the same stem is removed, so a stem
/// never carries two conflicting encodings.
[[nodiscard]] std::unique_ptr<RecordSink> open_record_sink(
    const std::string& stem, const RecordStreamConfig& config,
    const ShardIdentity& id, const std::size_t* resume_valid_bytes = nullptr);

/// Open a strict source over a complete record stream; the format comes
/// from the path's extension (throws std::invalid_argument when the path
/// carries neither record extension, std::runtime_error when the file
/// cannot be opened or its binary header is invalid).
[[nodiscard]] std::unique_ptr<RecordSource> open_record_source(
    const std::string& path);

}  // namespace xr::runtime::shard
