// The shard layer's JSON vocabulary is core's (core/jsonio.h): the codec
// moved down so serializable documents — ScenarioConfig, GridSpec,
// SweepRequest — exist below the runtime layer. These imports keep the
// shard subsystem's own documents (worker specs, records, partials)
// spelled the way they always were.
#pragma once

#include "core/jsonio.h"

namespace xr::runtime::shard {

using core::Json;
using core::format_double;
using core::format_hex64;
using core::parse_double;
using core::parse_hex64;
using core::read_text_file;

}  // namespace xr::runtime::shard
