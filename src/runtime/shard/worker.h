// One shard worker: evaluate a grid slice with streaming, resumable output.
//
// run_worker() is the whole of tools/sweep_worker.cpp minus argument
// parsing, kept in the library so tests can drive the exact production code
// path in-process (including kill/resume, via max_new_records).
//
// Shard spec document (the tools' --spec format):
//
//   {"grid": {<runtime::GridSpec>}, "evaluator": {<EvaluatorSpec>},
//    "shard_id": 0, "shard_count": 4,
//    "strategy": "range", "output": "out/shard0",
//    "format": "binary",  // record encoding; omitted = jsonl
//    "chunk_records": 64, "threads": 1, "metrics": false, "resume": false,
//    // adaptive-fidelity legs only (runtime/adaptive.h):
//    "adaptive": {<AdaptiveSpec>}, "adaptive_pass": 1|2,
//    "refine": [..global indices..], "coarse_input": "out/coarse0"}
//
// A WorkerSpec is also derivable from the unified runtime::SweepRequest
// (from_request below): the request contributes the grid, evaluator, and
// execution mechanics; the shard assignment and output stem are this
// worker's own.
//
// "evaluator" is optional and defaults to the analytical model; a
// ground_truth evaluator streams per-point simulator measurements (seeded
// from the *global* grid index — see evaluator.h) through the same sink.
//
// The worker writes a record stream through the pluggable RecordSink
// layer (record_stream.h) — <output>.jsonl or <output>.xrb per the spec's
// format, one record per scenario in ascending global index — plus
// <output>.partial.json (the mergeable reduction, checkpointed at every
// chunk flush). Resume scans the existing record stream, truncates any
// torn tail, rebuilds the reduction from the valid prefix, and continues
// from the first missing record — so a re-run after a kill produces
// byte-identical outputs to an uninterrupted run, in either format.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "runtime/adaptive.h"
#include "runtime/shard/evaluator.h"
#include "runtime/shard/shard_plan.h"
#include "runtime/shard/streaming_sink.h"
#include "runtime/sweep_request.h"

namespace xr::runtime::shard {

struct WorkerSpec {
  GridSpec grid;
  /// What to run at each point (analytical model or ground-truth
  /// simulation); covered by the sweep fingerprint so resume/merge never
  /// mix evaluators. For adaptive sweeps this is the BASE evaluator — the
  /// per-leg evaluator (coarse_frames/pass 1 or fine_frames/pass 2) is
  /// derived from it and the adaptive block.
  EvaluatorSpec evaluator;
  std::size_t shard_id = 0;
  std::size_t shard_count = 1;
  ShardStrategy strategy = ShardStrategy::kRange;
  /// Output stem: writes record_path(output, format) — <output>.jsonl or
  /// <output>.xrb — and <output>.partial.json.
  std::string output;
  /// Record encoding (see record_stream.h). Execution mechanics only:
  /// never fingerprinted, never affects the partial reduction or the
  /// merge law.
  RecordFormat format = RecordFormat::kJsonl;
  std::size_t chunk_records = 64;
  /// BatchOptions convention: 0 = shared pool, 1 = strict serial,
  /// N = dedicated pool of N workers (chunks still land in index order).
  std::size_t threads = 1;
  /// Indices per claimed parallel task chunk (0 = auto); see
  /// BatchOptions::grain. Mechanics only, never identity.
  std::size_t grain = 0;
  /// Slim totals-only records (see record_stream.h). Never affects the
  /// partial reduction or the merge law.
  bool metrics = false;
  /// Continue from an existing record stream instead of restarting.
  bool resume = false;

  // ---- adaptive-fidelity legs (see runtime/adaptive.h) -----------------
  /// Engaged → this worker runs one leg of an adaptive sweep; mirrors the
  /// request's adaptive block.
  std::optional<runtime::AdaptiveSpec> adaptive;
  /// Which leg: 1 = coarse (whole shard at coarse_frames), 2 = fine (the
  /// hybrid stream: `refine` indices re-evaluated at fine_frames, every
  /// other record copied from this shard's coarse stream). Required (and
  /// only meaningful) when `adaptive` is engaged.
  std::size_t adaptive_pass = 0;
  /// Pass 2: the refinement set (sorted unique global indices, from
  /// sweep_plan --refine-out / select_refinement).
  std::vector<std::size_t> refine;
  /// Pass 2: this shard's pass-1 output stem. The coarse stream must be
  /// complete and carry the matching coarse identity; may be empty only
  /// when every index of this shard is refined (nothing to copy). Its
  /// format is autodetected from which record file exists at the stem, so
  /// a binary fine leg can copy from a JSONL coarse pass and vice versa.
  std::string coarse_input;

  /// This worker's slice of a unified sweep request: grid, evaluator,
  /// adaptive block, and execution mechanics come from the request; the
  /// shard assignment and output stem are the caller's. For adaptive
  /// requests the caller must still pick the leg (adaptive_pass) and, for
  /// pass 2, supply the refinement set and coarse stem.
  [[nodiscard]] static WorkerSpec from_request(
      const runtime::SweepRequest& request, std::size_t shard_id,
      std::size_t shard_count, ShardStrategy strategy,
      std::string output, bool resume = false);

  [[nodiscard]] Json to_json() const;
  /// Parses and validates/normalizes in one place: shard_count == 0 is
  /// rejected with a clear error (rather than surfacing later as a
  /// confusing ShardPlan/shard_id failure) and chunk_records == 0 is
  /// normalized to 1 — the same clamp every consumer applies — so the
  /// sink's checkpoint cadence and the worker's chunk loop can never
  /// disagree.
  [[nodiscard]] static WorkerSpec from_json(const Json& j);
};

struct WorkerOutcome {
  std::size_t shard_records = 0;     ///< records in the stream at exit.
  std::size_t resumed_records = 0;   ///< recovered from the checkpoint.
  std::size_t evaluated_records = 0; ///< newly evaluated this run.
  bool complete = false;             ///< reached the end of the shard.
  PartialReduction partial;
  std::string records_path;          ///< the record stream (either format).
  std::string partial_path;
};

/// Run one shard to completion, or until max_new_records new records when
/// non-zero — the kill-simulation hook: the run stops early with a
/// *consistent* flushed prefix + checkpoint, i.e. the state after a kill
/// that landed between chunk flushes. The harsher aftermaths (a torn
/// trailing line, a lost unflushed chunk) are covered by the tests that
/// truncate the files by hand; scan_existing handles all of them.
/// Throws on invalid specs and I/O failure.
[[nodiscard]] WorkerOutcome run_worker(const WorkerSpec& spec,
                                       std::size_t max_new_records = 0);

}  // namespace xr::runtime::shard
