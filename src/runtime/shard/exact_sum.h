// Exactly-associative streaming sum of doubles.
//
// The ground-truth merge law needs *means* (GT latency/energy, model error)
// that come out bitwise identical no matter how the grid was sharded. A
// plain double accumulator cannot deliver that — float addition is not
// associative, so K per-shard sums folded together generally differ from
// the monolithic left-to-right sum in the last ulp. ExactSum removes the
// problem at the root: it represents the *exact* real-valued sum as a list
// of non-overlapping doubles (Shewchuk-style expansion, the same scheme as
// Python's math.fsum), so
//
//   * add() is exact — no rounding error ever enters the state;
//   * merge() is exact — folding shard B into shard A preserves the exact
//     value, so any grouping of shards yields the same sum;
//   * value() rounds the exact sum to the nearest double once (half-even),
//     which is a pure function of the exact value — identical across every
//     shard count, strategy, thread count, and resume point.
//
// Serialization uses the canonical greedy expansion (round, subtract,
// repeat), which is unique for a given exact value, so two summaries that
// agree exactly also serialize identically.
#pragma once

#include <vector>

#include "runtime/shard/jsonio.h"

namespace xr::runtime::shard {

class ExactSum {
 public:
  /// Fold one finite double in, exactly.
  void add(double x);
  /// Fold another sum in, exactly (associative: any merge tree over the
  /// same multiset of add() calls yields the same exact value).
  void merge(const ExactSum& other);

  /// The exact sum rounded to the nearest double (round-half-even) — the
  /// unique correctly-rounded result, independent of accumulation order.
  [[nodiscard]] double value() const;

  /// True iff the two exact sums are equal as real numbers (representation
  /// independent; this is the merge-law comparison).
  [[nodiscard]] bool same_value(const ExactSum& other) const;

  /// Canonical greedy expansion: [value(), value(rest), ...], decreasing
  /// magnitude, empty for zero. Unique for a given exact value.
  [[nodiscard]] std::vector<double> canonical() const;

  /// Serialized as the canonical expansion (a JSON array of doubles in
  /// shortest round-trip form), so equal sums serialize byte-identically.
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static ExactSum from_json(const Json& j);

 private:
  /// Non-overlapping partials in increasing magnitude; their exact sum is
  /// the represented value (math.fsum's invariant).
  std::vector<double> partials_;
};

}  // namespace xr::runtime::shard
