// Pluggable per-point evaluators for the shard worker.
//
// PR 2's worker could only run the cheap analytical model, so the grids
// that actually dominate wall time — the Fig. 4/5 validation sweeps, where
// every point runs a GroundTruthSimulator episode — still ran
// monolithically. EvaluatorSpec closes that gap: a small serializable
// document (carried inside WorkerSpec and covered by the sweep
// fingerprint) that selects what "evaluate grid point i" means:
//
//   {"kind": "analytical"}
//   {"kind": "ground_truth", "seed": "000000000000002a",
//    "frames_per_point": 200}
//
// Ground-truth mode runs the testbed-substitute simulator at every point
// *and* the analytical prediction, and records both plus the model error —
// the paper's §VII validation quantity — in the JSONL stream.
//
// Determinism contract: each point's simulator seed derives from the
// sweep seed, the point's *global* grid index, and the fidelity pass
// (point_seed), never from shard-local state. Records are therefore
// bitwise independent of shard count, strategy, thread count, and resume
// position — the property the GT merge law and
// scripts/sweep_gt_sharded.sh assert. Pass 0 is the ordinary single-pass
// sweep; the adaptive-fidelity driver (runtime/adaptive.h) runs its
// coarse leg as pass 1 and its refinement leg as pass 2, so the two legs'
// measurements are independent draws that still obey the same contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/framework.h"
#include "runtime/shard/jsonio.h"

namespace xr::runtime::shard {

enum class EvaluatorKind { kAnalytical, kGroundTruth };

[[nodiscard]] const char* evaluator_name(EvaluatorKind k) noexcept;
/// Inverse of evaluator_name; throws std::invalid_argument on unknown
/// names.
[[nodiscard]] EvaluatorKind evaluator_from_name(const std::string& name);

/// What the worker runs at each grid point.
struct EvaluatorSpec {
  EvaluatorKind kind = EvaluatorKind::kAnalytical;
  /// Sweep-level seed (ground truth only); each point's simulator seed is
  /// point_seed(seed, global_index).
  std::uint64_t seed = 42;
  /// Simulated frames averaged per point (ground truth only) — the
  /// fidelity/wall-time knob the adaptive-fidelity driver
  /// (runtime/adaptive.h) turns: its coarse leg runs the whole grid at
  /// AdaptiveSpec::coarse_frames and its refinement leg re-runs the
  /// boundary points at fine_frames. Must be >= 1: a zero-frame sweep
  /// measures nothing (from_json rejects it).
  std::size_t frames_per_point = 200;
  /// Fidelity pass this evaluator belongs to: 0 for ordinary single-pass
  /// sweeps (the historical seed derivation, byte-compatible with every
  /// existing stream), 1 for an adaptive coarse leg, 2 for the refinement
  /// leg. Folded into every point's simulator seed (see point_seed) and
  /// serialized (hence fingerprinted) only when nonzero.
  std::size_t pass = 0;

  [[nodiscard]] bool is_ground_truth() const noexcept {
    return kind == EvaluatorKind::kGroundTruth;
  }

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static EvaluatorSpec from_json(const Json& j);
};

/// The simulator seed for one grid point: a SplitMix64 mix of the sweep
/// seed, the global index, and the fidelity pass. Pure — independent of
/// shard layout. Pass 0 reproduces the historical two-argument derivation
/// exactly, so single-pass sweeps keep their committed values.
[[nodiscard]] std::uint64_t point_seed(std::uint64_t sweep_seed,
                                       std::size_t global_index,
                                       std::size_t pass = 0) noexcept;

/// One point's ground-truth measurement plus its model error.
struct GtMeasurement {
  std::uint64_t seed = 0;        ///< point_seed actually used.
  std::size_t frames = 0;        ///< frames averaged.
  double mean_latency_ms = 0;    ///< measured end-to-end latency.
  double mean_energy_mj = 0;     ///< measured energy.
  /// |analytical - measured| / measured, in percent (the §VII quantity).
  double latency_error_pct = 0;
  double energy_error_pct = 0;
};

/// One evaluated grid point: the analytical prediction always, the GT
/// measurement when the evaluator is ground_truth.
struct EvaluatedPoint {
  core::PerformanceReport report;
  std::optional<GtMeasurement> gt;
};

/// Evaluate one grid point under the spec. The single evaluation path
/// shared by run_worker and the in-process testbed runners, so both
/// provably compute identical records. Throws std::invalid_argument when a
/// ground-truth spec has frames_per_point == 0.
[[nodiscard]] EvaluatedPoint evaluate_point(const EvaluatorSpec& spec,
                                            const core::XrPerformanceModel& model,
                                            const core::ScenarioConfig& scenario,
                                            std::size_t global_index);

}  // namespace xr::runtime::shard
