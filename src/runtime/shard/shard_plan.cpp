#include "runtime/shard/shard_plan.h"

#include <algorithm>
#include <stdexcept>

namespace xr::runtime::shard {

const char* strategy_name(ShardStrategy s) noexcept {
  return s == ShardStrategy::kRange ? "range" : "strided";
}

ShardStrategy strategy_from_name(const std::string& name) {
  if (name == "range") return ShardStrategy::kRange;
  if (name == "strided") return ShardStrategy::kStrided;
  throw std::invalid_argument("ShardPlan: unknown strategy '" + name + "'");
}

ShardPlan::ShardPlan(std::size_t grid_size, std::size_t shard_count,
                     ShardStrategy strategy)
    : grid_size_(grid_size), shard_count_(shard_count), strategy_(strategy) {
  if (shard_count_ == 0)
    throw std::invalid_argument("ShardPlan: shard_count must be >= 1");
}

void ShardPlan::check_shard(std::size_t shard) const {
  if (shard >= shard_count_)
    throw std::out_of_range("ShardPlan: shard id out of range");
}

std::size_t ShardPlan::shard_size(std::size_t shard) const {
  check_shard(shard);
  if (strategy_ == ShardStrategy::kRange) {
    const std::size_t q = grid_size_ / shard_count_;
    const std::size_t r = grid_size_ % shard_count_;
    return q + (shard < r ? 1 : 0);
  }
  // Strided: count of i < grid_size with i ≡ shard (mod shard_count).
  if (shard >= grid_size_) return 0;
  return (grid_size_ - shard - 1) / shard_count_ + 1;
}

std::size_t ShardPlan::global_index(std::size_t shard,
                                    std::size_t local) const {
  check_shard(shard);
  if (local >= shard_size(shard))
    throw std::out_of_range("ShardPlan: local index out of range");
  if (strategy_ == ShardStrategy::kRange) {
    const std::size_t q = grid_size_ / shard_count_;
    const std::size_t r = grid_size_ % shard_count_;
    return shard * q + std::min(shard, r) + local;
  }
  return shard + local * shard_count_;
}

std::size_t ShardPlan::shard_of(std::size_t global) const {
  if (global >= grid_size_)
    throw std::out_of_range("ShardPlan: global index out of range");
  if (strategy_ == ShardStrategy::kStrided) return global % shard_count_;
  const std::size_t q = grid_size_ / shard_count_;
  const std::size_t r = grid_size_ % shard_count_;
  // The first r shards own q+1 indices each (covers q == 0, where r ==
  // grid_size and every owned index lands in this branch).
  if (global < r * (q + 1)) return global / (q + 1);
  return r + (global - r * (q + 1)) / q;
}

}  // namespace xr::runtime::shard
