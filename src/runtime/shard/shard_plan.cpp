#include "runtime/shard/shard_plan.h"

#include <algorithm>
#include <stdexcept>

#include "core/framework.h"

namespace xr::runtime::shard {

const char* strategy_name(ShardStrategy s) noexcept {
  return s == ShardStrategy::kRange ? "range" : "strided";
}

ShardStrategy strategy_from_name(const std::string& name) {
  if (name == "range") return ShardStrategy::kRange;
  if (name == "strided") return ShardStrategy::kStrided;
  throw std::invalid_argument("ShardPlan: unknown strategy '" + name + "'");
}

ShardPlan::ShardPlan(std::size_t grid_size, std::size_t shard_count,
                     ShardStrategy strategy)
    : grid_size_(grid_size), shard_count_(shard_count), strategy_(strategy) {
  if (shard_count_ == 0)
    throw std::invalid_argument("ShardPlan: shard_count must be >= 1");
}

void ShardPlan::check_shard(std::size_t shard) const {
  if (shard >= shard_count_)
    throw std::out_of_range("ShardPlan: shard id out of range");
}

std::size_t ShardPlan::shard_size(std::size_t shard) const {
  check_shard(shard);
  if (strategy_ == ShardStrategy::kRange) {
    const std::size_t q = grid_size_ / shard_count_;
    const std::size_t r = grid_size_ % shard_count_;
    return q + (shard < r ? 1 : 0);
  }
  // Strided: count of i < grid_size with i ≡ shard (mod shard_count).
  if (shard >= grid_size_) return 0;
  return (grid_size_ - shard - 1) / shard_count_ + 1;
}

std::size_t ShardPlan::global_index(std::size_t shard,
                                    std::size_t local) const {
  check_shard(shard);
  if (local >= shard_size(shard))
    throw std::out_of_range("ShardPlan: local index out of range");
  if (strategy_ == ShardStrategy::kRange) {
    const std::size_t q = grid_size_ / shard_count_;
    const std::size_t r = grid_size_ % shard_count_;
    return shard * q + std::min(shard, r) + local;
  }
  return shard + local * shard_count_;
}

std::size_t ShardPlan::shard_of(std::size_t global) const {
  if (global >= grid_size_)
    throw std::out_of_range("ShardPlan: global index out of range");
  if (strategy_ == ShardStrategy::kStrided) return global % shard_count_;
  const std::size_t q = grid_size_ / shard_count_;
  const std::size_t r = grid_size_ % shard_count_;
  // The first r shards own q+1 indices each (covers q == 0, where r ==
  // grid_size and every owned index lands in this branch).
  if (global < r * (q + 1)) return global / (q + 1);
  return r + (global - r * (q + 1)) / q;
}

ScenarioGrid GridSpec::build() const {
  core::ScenarioConfig base_scenario;
  if (base == "local")
    base_scenario = core::make_local_scenario(frame_size, cpu_ghz);
  else if (base == "remote")
    base_scenario = core::make_remote_scenario(frame_size, cpu_ghz);
  else
    throw std::invalid_argument("GridSpec: unknown base '" + base +
                                "' (expected 'local' or 'remote')");

  SweepSpec spec(base_scenario);
  for (const auto& axis : axes) {
    if (axis.knob == "frame_size") {
      spec.frame_sizes(axis.numbers);
    } else if (axis.knob == "cpu_ghz") {
      spec.cpu_clocks_ghz(axis.numbers);
    } else if (axis.knob == "omega_c") {
      spec.omega_c(axis.numbers);
    } else if (axis.knob == "codec_mbps") {
      spec.codec_bitrates_mbps(axis.numbers);
    } else if (axis.knob == "throughput_mbps") {
      spec.network_throughputs_mbps(axis.numbers);
    } else if (axis.knob == "edge_count") {
      std::vector<int> counts;
      counts.reserve(axis.numbers.size());
      for (double v : axis.numbers) counts.push_back(int(v));
      spec.edge_counts(counts);
    } else if (axis.knob == "placement") {
      std::vector<core::InferencePlacement> placements;
      placements.reserve(axis.strings.size());
      for (const auto& s : axis.strings) {
        if (s == "local")
          placements.push_back(core::InferencePlacement::kLocal);
        else if (s == "remote")
          placements.push_back(core::InferencePlacement::kRemote);
        else
          throw std::invalid_argument("GridSpec: unknown placement '" + s +
                                      "'");
      }
      spec.placements(placements);
    } else if (axis.knob == "local_cnn") {
      spec.local_cnns(axis.strings);
    } else if (axis.knob == "edge_cnn") {
      spec.edge_cnns(axis.strings);
    } else {
      throw std::invalid_argument("GridSpec: unknown knob '" + axis.knob +
                                  "'");
    }
  }
  return spec.build();
}

Json GridSpec::to_json() const {
  Json b = Json::object();
  b.set("scenario", base);
  b.set("frame_size", frame_size);
  b.set("cpu_ghz", cpu_ghz);

  Json ax = Json::array();
  for (const auto& axis : axes) {
    Json a = Json::object();
    a.set("knob", axis.knob);
    Json values = Json::array();
    if (!axis.strings.empty())
      for (const auto& s : axis.strings) values.push_back(Json(s));
    else
      for (double v : axis.numbers) values.push_back(Json(v));
    a.set("values", std::move(values));
    ax.push_back(std::move(a));
  }

  Json out = Json::object();
  out.set("base", std::move(b));
  out.set("axes", std::move(ax));
  return out;
}

GridSpec GridSpec::from_json(const Json& j) {
  GridSpec out;
  const Json& base = j.at("base");
  out.base = base.at("scenario").as_string();
  out.frame_size = base.at("frame_size").as_double();
  out.cpu_ghz = base.at("cpu_ghz").as_double();
  for (const Json& a : j.at("axes").as_array()) {
    GridAxisSpec axis;
    axis.knob = a.at("knob").as_string();
    for (const Json& v : a.at("values").as_array()) {
      if (v.is_string())
        axis.strings.push_back(v.as_string());
      else
        axis.numbers.push_back(v.as_double());
    }
    if (!axis.strings.empty() && !axis.numbers.empty())
      throw std::invalid_argument(
          "GridSpec: axis '" + axis.knob +
          "' mixes string and numeric values");
    out.axes.push_back(std::move(axis));
  }
  return out;
}

}  // namespace xr::runtime::shard
