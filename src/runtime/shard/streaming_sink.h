// Bounded-memory, chunked result delivery with mergeable reductions.
//
// A shard worker never holds its whole report vector: it evaluates the grid
// in chunks, appends each report through a pluggable RecordSink (see
// record_stream.h — JSONL text or the binary columnar format of
// binary_stream.h, selected by SinkOptions::format), and folds it into a
// PartialReduction — the exact sufficient statistic for every BatchResult
// summary (per-metric argmin/min/max, the latency/energy Pareto frontier,
// throughput stats). K partial reductions over a disjoint cover of the
// grid merge back (see merge.h) into the *bitwise identical* monolithic
// summary, because
//
//   * argmin: each shard records the first occurrence of its minimum in
//     ascending global-index order, so the merged argmin (smallest index
//     among shards attaining the global minimum) is the global first
//     occurrence — the same index BatchEvaluator's serial scan picks;
//   * Pareto: a point excluded from its shard frontier is excluded from the
//     monolithic frontier by the same dominator, so the union of shard
//     frontiers re-scanned in (latency, energy, index) order — the order
//     BatchEvaluator's stable_sort induces — reproduces the monolithic
//     frontier exactly;
//   * every double crossing a process boundary survives the trip
//     bit-for-bit: shortest round-trip text form in JSONL (jsonio.h), raw
//     IEEE-754 little-endian columns in the binary backend.
//
// A PartialReduction is therefore a pure function of the decoded totals —
// the record *encoding* cannot reach it, which is why shards written in
// different formats (or slim vs full shapes) merge to bitwise-identical
// summaries.
//
// Record shapes — full, metrics-only (SinkOptions::metrics_only, the
// sweep_worker --metrics flag, for million-point grids where breakdowns
// dominate I/O), and either shape plus a ground-truth measurement block
// (see evaluator.h) — are defined once in record_stream.h and encoded
// per-backend. In ground-truth mode the reduction runs over the
// *measurements* (extrema and Pareto on GT means) plus a GtAggregate of
// exactly-mergeable sums (ExactSum), so GT summaries obey the same bitwise
// merge law as analytical ones.
//
// The sink flushes every chunk_records records and rewrites the partial
// checkpoint, so a killed worker loses at most one chunk; scan_existing()
// recovers the longest valid record prefix for resume under the backend's
// tear rules: a torn *tail* (the only damage a kill can inflict) truncates
// silently, while mid-file corruption — an unparseable newline-terminated
// JSONL line, a binary chunk with bad magic or checksum — is a named
// std::runtime_error, because silently dropping the valid suffix behind it
// would mask real data loss.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/framework.h"
#include "runtime/shard/evaluator.h"
#include "runtime/shard/exact_sum.h"
#include "runtime/shard/jsonio.h"
#include "runtime/shard/record_stream.h"
#include "runtime/shard/shard_plan.h"

namespace xr::runtime::shard {

/// FNV-1a over a runtime::GridSpec's canonical JSON serialization.
[[nodiscard]] std::uint64_t grid_fingerprint(const GridSpec& spec);
/// Chain one more canonical JSON document onto a fingerprint across a
/// 0x1F (unit separator) boundary — the byte cannot appear in a JSON
/// dump, so documents never alias across the join. Every multi-document
/// fingerprint in the repo (grid+evaluator below, the adaptive
/// fingerprint in runtime/adaptive.h) composes through this one helper so
/// the schemes cannot drift apart.
[[nodiscard]] std::uint64_t fingerprint_chain(std::uint64_t h,
                                              const std::string& document);
/// Sweep fingerprint: the grid *and* the evaluator (kind, seed, frames).
/// Worker documents carry this form so a resume or merge can never mix an
/// analytical stream with a ground-truth one, or two GT sweeps that differ
/// in seed or fidelity.
[[nodiscard]] std::uint64_t grid_fingerprint(const GridSpec& spec,
                                             const EvaluatorSpec& evaluator);

/// One Pareto-frontier member: grid index plus the two objectives.
struct ParetoPoint {
  std::size_t index = 0;
  double latency_ms = 0;
  double energy_mj = 0;
};

/// Exactly-mergeable ground-truth aggregates of one shard (or of a merged
/// cover): counts plus ExactSum totals, so the derived means are bitwise
/// identical however the grid was partitioned.
struct GtAggregate {
  std::size_t count = 0;
  ExactSum latency_ms_sum;
  ExactSum energy_mj_sum;
  ExactSum latency_error_pct_sum;
  ExactSum energy_error_pct_sum;

  void add(const GtMeasurement& m);
  void merge(const GtAggregate& other);

  [[nodiscard]] double mean_latency_ms() const {
    return count ? latency_ms_sum.value() / double(count) : 0.0;
  }
  [[nodiscard]] double mean_energy_mj() const {
    return count ? energy_mj_sum.value() / double(count) : 0.0;
  }
  [[nodiscard]] double mean_latency_error_pct() const {
    return count ? latency_error_pct_sum.value() / double(count) : 0.0;
  }
  [[nodiscard]] double mean_energy_error_pct() const {
    return count ? energy_error_pct_sum.value() / double(count) : 0.0;
  }

  /// Exact (representation-independent) equality of counts and sums.
  [[nodiscard]] bool same_values(const GtAggregate& other) const;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static GtAggregate from_json(const Json& j);
};

/// Streaming reduction over (index, latency, energy) triples fed in
/// ascending index order. Mergeable across shards; serializable.
///
/// In ground-truth mode (constructed with ground_truth = true, or restored
/// from a document with a "gt" block) the latency/energy fed to add() are
/// the *measured* per-point means, every record must carry a
/// GtMeasurement, and the reduction additionally folds the GtAggregate.
/// The block is present even while empty, so a zero-record GT shard is
/// still distinguishable from an analytical one.
class PartialReduction {
 public:
  explicit PartialReduction(ShardIdentity id = {}, bool ground_truth = false);

  /// Fold one scenario result in. Indices must arrive in ascending order.
  /// `gt` is required in ground-truth mode and rejected otherwise (a
  /// mismatch means the record stream and the spec disagree).
  void add(std::size_t global_index, double latency_ms, double energy_mj,
           const GtMeasurement* gt = nullptr);

  [[nodiscard]] bool ground_truth() const noexcept { return gt_.has_value(); }
  /// The GT aggregate, or nullptr for analytical reductions.
  [[nodiscard]] const GtAggregate* gt() const noexcept {
    return gt_ ? &*gt_ : nullptr;
  }

  [[nodiscard]] const ShardIdentity& identity() const noexcept { return id_; }
  [[nodiscard]] std::size_t evaluated() const noexcept { return evaluated_; }
  [[nodiscard]] std::size_t best_latency_index() const noexcept {
    return best_latency_index_;
  }
  [[nodiscard]] std::size_t best_energy_index() const noexcept {
    return best_energy_index_;
  }
  [[nodiscard]] double min_latency_ms() const noexcept {
    return min_latency_ms_;
  }
  [[nodiscard]] double max_latency_ms() const noexcept {
    return max_latency_ms_;
  }
  [[nodiscard]] double min_energy_mj() const noexcept {
    return min_energy_mj_;
  }
  [[nodiscard]] double max_energy_mj() const noexcept {
    return max_energy_mj_;
  }
  /// This shard's Pareto frontier, latency-ascending.
  [[nodiscard]] std::vector<ParetoPoint> pareto() const;

  // Worker throughput stats carried into the summary (not part of the
  // bitwise identity — wall time is non-deterministic by nature).
  double wall_ms = 0;
  std::size_t threads = 1;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static PartialReduction from_json(const Json& j);

 private:
  ShardIdentity id_;
  std::optional<GtAggregate> gt_;
  std::size_t evaluated_ = 0;
  std::size_t last_index_ = 0;
  std::size_t best_latency_index_ = 0, best_energy_index_ = 0;
  double min_latency_ms_ = 0, max_latency_ms_ = 0;
  double min_energy_mj_ = 0, max_energy_mj_ = 0;
  /// Frontier keyed by latency; values (energy, index). Latencies are
  /// unique and energies strictly decreasing along the key order.
  std::map<double, std::pair<double, std::size_t>> frontier_;
};

// ---- the sink ----------------------------------------------------------

struct SinkOptions {
  /// Files written: record_path(output_stem, format) — <stem>.jsonl or
  /// <stem>.xrb — and <output_stem>.partial.json.
  std::string output_stem;
  /// Record encoding (see record_stream.h). Resume refuses to continue a
  /// stem whose existing stream is in the other format.
  RecordFormat format = RecordFormat::kJsonl;
  /// Records buffered between flushes (bounds worker memory and the
  /// checkpoint loss window).
  std::size_t chunk_records = 64;
  /// Ground-truth mode: records must carry GtMeasurements, the reduction
  /// runs over the measured means, and the partial carries a GtAggregate
  /// (even while empty).
  bool ground_truth = false;
  /// Metrics mode: write slim totals-only records. The reduction (and so
  /// the merge law) is unaffected; resume refuses to continue a stream
  /// whose record shape disagrees with this flag.
  bool metrics_only = false;
};

class StreamingSink {
 public:
  /// State recovered from an existing record stream.
  struct Recovery {
    std::size_t records = 0;      ///< valid record prefix length.
    std::size_t valid_bytes = 0;  ///< prefix size; anything beyond is torn.
    PartialReduction partial;     ///< reduction rebuilt from the prefix.
  };

  /// Scan the existing record stream for the longest prefix of valid
  /// records whose global indices match the plan's enumeration for this
  /// shard. A torn tail (a killed worker's partial final write) ends the
  /// prefix silently; mid-file corruption throws a named
  /// std::runtime_error; a stream in the *other* format at the same stem
  /// is a named error too (cross-format resume refusal). Missing file →
  /// zero records.
  [[nodiscard]] static Recovery scan_existing(const SinkOptions& options,
                                              const ShardIdentity& id,
                                              const ShardPlan& plan);

  /// Open the record stream. When `recovered` is non-null the stream is
  /// truncated to the recovered prefix and appended to (resume); otherwise
  /// it is created fresh. Throws std::runtime_error on I/O failure.
  StreamingSink(SinkOptions options, ShardIdentity id,
                const Recovery* recovered = nullptr);

  StreamingSink(const StreamingSink&) = delete;
  StreamingSink& operator=(const StreamingSink&) = delete;

  /// Append one analytical result (ascending global index). Flushes
  /// automatically every chunk_records appends. Throws in GT mode (the
  /// record would be missing its measurement).
  void append(std::size_t global_index, const core::PerformanceReport& report);
  /// Append one evaluated point — the evaluator-aware path: analytical
  /// points feed the prediction, ground-truth points feed the measurement
  /// and the GtAggregate. Point kind must match the sink's mode.
  void append(std::size_t global_index, const EvaluatedPoint& point);

  /// Write buffered records to disk (one backend chunk) and checkpoint the
  /// partial reduction.
  void flush();

  /// Attach worker throughput stats to the reduction (carried into the
  /// summary; not part of the bitwise identity).
  void set_stats(double wall_ms, std::size_t threads) {
    partial_.wall_ms = wall_ms;
    partial_.threads = threads;
  }

  /// Flush and write the final <stem>.partial.json. Returns the reduction.
  PartialReduction finalize();

  [[nodiscard]] std::size_t records_written() const noexcept {
    return records_written_;
  }
  [[nodiscard]] const PartialReduction& partial() const noexcept {
    return partial_;
  }
  /// The record stream's path: record_path(output_stem, format).
  [[nodiscard]] std::string records_path() const {
    return record_path(options_.output_stem, options_.format);
  }
  [[nodiscard]] std::string partial_path() const {
    return options_.output_stem + ".partial.json";
  }

 private:
  void write_partial_checkpoint();

  SinkOptions options_;
  PartialReduction partial_;
  std::unique_ptr<RecordSink> sink_;
  std::size_t buffered_records_ = 0;
  std::size_t records_written_ = 0;
};

}  // namespace xr::runtime::shard
