#include "runtime/shard/binary_stream.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "runtime/shard/streaming_sink.h"

namespace xr::runtime::shard {

// The column codec memcpys doubles/u64s straight into the stream; on a
// big-endian host it would need byte swaps this repo has no target for.
static_assert(std::endian::native == std::endian::little,
              "binary record streams assume a little-endian host");

namespace {

constexpr std::uint64_t kFileMagic = 0x0A3143455242'5258ull;   // "XRBREC1\n"
constexpr std::uint64_t kChunkMagic = 0x314B4E4843'425258ull;  // "XRBCHNK1"

constexpr std::uint64_t kFlagMetricsOnly = 1ull << 0;
constexpr std::uint64_t kFlagGroundTruth = 1ull << 1;
constexpr std::uint64_t kKnownFlags = kFlagMetricsOnly | kFlagGroundTruth;

std::uint64_t fnv1a_bytes(const unsigned char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---- little-endian put/take --------------------------------------------

void put_u64(std::string& out, std::uint64_t v) {
  char raw[8];
  std::memcpy(raw, &v, 8);
  out.append(raw, 8);
}

void put_f64(std::string& out, double v) {
  char raw[8];
  std::memcpy(raw, &v, 8);
  out.append(raw, 8);
}

/// Bounds-checked reader over one decoded byte block; running off the end
/// means the block lies about its own extent — corruption, not a tear.
struct Cursor {
  const unsigned char* p;
  const unsigned char* end;
  const std::string& path;

  std::uint64_t take_u64() {
    if (end - p < 8)
      throw std::runtime_error("binary record stream: corrupt chunk in " +
                               path + " (column block overruns payload)");
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  }
  double take_f64() {
    if (end - p < 8)
      throw std::runtime_error("binary record stream: corrupt chunk in " +
                               path + " (column block overruns payload)");
    double v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  }
  void take_bytes(char* dst, std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n)
      throw std::runtime_error("binary record stream: corrupt chunk in " +
                               path + " (column block overruns payload)");
    if (dst) std::memcpy(dst, p, n);
    p += n;
  }
};

std::size_t padded8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

std::uint64_t strategy_code(ShardStrategy s) {
  return s == ShardStrategy::kStrided ? 1 : 0;
}

ShardStrategy strategy_from_code(std::uint64_t code,
                                 const std::string& path) {
  if (code == 0) return ShardStrategy::kRange;
  if (code == 1) return ShardStrategy::kStrided;
  throw std::runtime_error("binary record stream: " + path +
                           " header carries an unknown shard strategy");
}

// ---- file header -------------------------------------------------------

std::string encode_header(const ShardIdentity& id, bool ground_truth,
                          bool metrics_only) {
  std::string out;
  out.reserve(kBinaryFileHeaderBytes);
  put_u64(out, kFileMagic);
  put_u64(out, kBinaryVersion);
  put_u64(out, (metrics_only ? kFlagMetricsOnly : 0) |
                   (ground_truth ? kFlagGroundTruth : 0));
  put_u64(out, id.shard_id);
  put_u64(out, id.shard_count);
  put_u64(out, strategy_code(id.strategy));
  put_u64(out, id.grid_size);
  put_u64(out, id.grid_fingerprint);
  return out;
}

BinaryHeaderInfo decode_header(const unsigned char* raw,
                               const std::string& path) {
  Cursor c{raw, raw + kBinaryFileHeaderBytes, path};
  if (c.take_u64() != kFileMagic)
    throw std::runtime_error("binary record stream: " + path +
                             " is not an xrb stream (bad magic)");
  const std::uint64_t version = c.take_u64();
  if (version != kBinaryVersion)
    throw std::runtime_error(
        "binary record stream: " + path + " has unsupported version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kBinaryVersion) + ")");
  const std::uint64_t flags = c.take_u64();
  if (flags & ~kKnownFlags)
    throw std::runtime_error("binary record stream: " + path +
                             " header carries unknown shape flags");
  BinaryHeaderInfo info;
  info.metrics_only = (flags & kFlagMetricsOnly) != 0;
  info.ground_truth = (flags & kFlagGroundTruth) != 0;
  info.id.shard_id = c.take_u64();
  info.id.shard_count = c.take_u64();
  info.id.strategy = strategy_from_code(c.take_u64(), path);
  info.id.grid_size = c.take_u64();
  info.id.grid_fingerprint = c.take_u64();
  return info;
}

/// Header read that distinguishes a SHORT file (a kill before the header
/// landed; nullopt) from an invalid one (named error). Missing file is
/// also nullopt.
std::optional<BinaryHeaderInfo> try_read_header(std::ifstream& in,
                                                const std::string& path) {
  unsigned char raw[kBinaryFileHeaderBytes];
  if (!in) return std::nullopt;
  in.read(reinterpret_cast<char*>(raw), kBinaryFileHeaderBytes);
  if (static_cast<std::size_t>(in.gcount()) < kBinaryFileHeaderBytes)
    return std::nullopt;
  return decode_header(raw, path);
}

// ---- chunk codec -------------------------------------------------------

struct ChunkHeader {
  std::uint64_t record_count = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};

std::string encode_chunk_payload(
    const std::vector<ParsedRecord>& records, bool ground_truth,
    bool metrics_only) {
  std::string out;
  for (const ParsedRecord& r : records) put_u64(out, r.index);
  if (metrics_only) {
    for (const ParsedRecord& r : records)
      put_f64(out, r.report.latency.total);
    for (const ParsedRecord& r : records) put_f64(out, r.report.energy.total);
  } else {
    const auto lat_col = [&](double core::LatencyBreakdown::* field) {
      for (const ParsedRecord& r : records) put_f64(out, r.report.latency.*field);
    };
    lat_col(&core::LatencyBreakdown::frame_generation);
    lat_col(&core::LatencyBreakdown::volumetric);
    lat_col(&core::LatencyBreakdown::external_sensors);
    lat_col(&core::LatencyBreakdown::rendering);
    lat_col(&core::LatencyBreakdown::buffer_wait);
    lat_col(&core::LatencyBreakdown::frame_conversion);
    lat_col(&core::LatencyBreakdown::encoding);
    lat_col(&core::LatencyBreakdown::local_inference);
    lat_col(&core::LatencyBreakdown::remote_inference);
    lat_col(&core::LatencyBreakdown::transmission);
    lat_col(&core::LatencyBreakdown::handoff);
    lat_col(&core::LatencyBreakdown::cooperation);
    lat_col(&core::LatencyBreakdown::total);
    const auto en_col = [&](double core::EnergyBreakdown::* field) {
      for (const ParsedRecord& r : records) put_f64(out, r.report.energy.*field);
    };
    en_col(&core::EnergyBreakdown::frame_generation);
    en_col(&core::EnergyBreakdown::volumetric);
    en_col(&core::EnergyBreakdown::external_sensors);
    en_col(&core::EnergyBreakdown::rendering);
    en_col(&core::EnergyBreakdown::frame_conversion);
    en_col(&core::EnergyBreakdown::encoding);
    en_col(&core::EnergyBreakdown::local_inference);
    en_col(&core::EnergyBreakdown::remote_inference);
    en_col(&core::EnergyBreakdown::transmission);
    en_col(&core::EnergyBreakdown::handoff);
    en_col(&core::EnergyBreakdown::cooperation);
    en_col(&core::EnergyBreakdown::thermal);
    en_col(&core::EnergyBreakdown::base);
    en_col(&core::EnergyBreakdown::total);
    for (const ParsedRecord& r : records)
      put_u64(out, (r.report.latency.cooperation_in_total ? 1ull : 0) |
                       (r.report.energy.cooperation_in_total ? 2ull : 0));
    std::size_t total_sensors = 0;
    for (const ParsedRecord& r : records)
      total_sensors += r.report.sensors.size();
    put_u64(out, total_sensors);
    for (const ParsedRecord& r : records)
      put_u64(out, r.report.sensors.size());
    std::string names;
    for (const ParsedRecord& r : records)
      for (const core::SensorReport& s : r.report.sensors) {
        put_u64(out, s.name.size());
        names += s.name;
      }
    names.resize(padded8(names.size()), '\0');
    out += names;
    const auto sensor_col = [&](double core::SensorReport::* field) {
      for (const ParsedRecord& r : records)
        for (const core::SensorReport& s : r.report.sensors)
          put_f64(out, s.*field);
    };
    sensor_col(&core::SensorReport::average_aoi_ms);
    sensor_col(&core::SensorReport::processed_hz);
    sensor_col(&core::SensorReport::roi);
    for (const ParsedRecord& r : records)
      for (const core::SensorReport& s : r.report.sensors)
        put_u64(out, s.fresh ? 1 : 0);
  }
  if (ground_truth) {
    for (const ParsedRecord& r : records) put_u64(out, r.gt->seed);
    for (const ParsedRecord& r : records) put_u64(out, r.gt->frames);
    for (const ParsedRecord& r : records) put_f64(out, r.gt->mean_latency_ms);
    for (const ParsedRecord& r : records) put_f64(out, r.gt->mean_energy_mj);
    for (const ParsedRecord& r : records)
      put_f64(out, r.gt->latency_error_pct);
    for (const ParsedRecord& r : records)
      put_f64(out, r.gt->energy_error_pct);
  }
  return out;
}

std::vector<ParsedRecord> decode_chunk_payload(
    const std::vector<unsigned char>& payload, std::size_t m,
    bool ground_truth, bool metrics_only, const std::string& path) {
  std::vector<ParsedRecord> records(m);
  Cursor c{payload.data(), payload.data() + payload.size(), path};
  for (auto& r : records) r.index = c.take_u64();
  if (metrics_only) {
    for (auto& r : records) {
      r.slim = true;
      r.report.latency.total = c.take_f64();
    }
    for (auto& r : records) r.report.energy.total = c.take_f64();
  } else {
    const auto lat_col = [&](double core::LatencyBreakdown::* field) {
      for (auto& r : records) r.report.latency.*field = c.take_f64();
    };
    lat_col(&core::LatencyBreakdown::frame_generation);
    lat_col(&core::LatencyBreakdown::volumetric);
    lat_col(&core::LatencyBreakdown::external_sensors);
    lat_col(&core::LatencyBreakdown::rendering);
    lat_col(&core::LatencyBreakdown::buffer_wait);
    lat_col(&core::LatencyBreakdown::frame_conversion);
    lat_col(&core::LatencyBreakdown::encoding);
    lat_col(&core::LatencyBreakdown::local_inference);
    lat_col(&core::LatencyBreakdown::remote_inference);
    lat_col(&core::LatencyBreakdown::transmission);
    lat_col(&core::LatencyBreakdown::handoff);
    lat_col(&core::LatencyBreakdown::cooperation);
    lat_col(&core::LatencyBreakdown::total);
    const auto en_col = [&](double core::EnergyBreakdown::* field) {
      for (auto& r : records) r.report.energy.*field = c.take_f64();
    };
    en_col(&core::EnergyBreakdown::frame_generation);
    en_col(&core::EnergyBreakdown::volumetric);
    en_col(&core::EnergyBreakdown::external_sensors);
    en_col(&core::EnergyBreakdown::rendering);
    en_col(&core::EnergyBreakdown::frame_conversion);
    en_col(&core::EnergyBreakdown::encoding);
    en_col(&core::EnergyBreakdown::local_inference);
    en_col(&core::EnergyBreakdown::remote_inference);
    en_col(&core::EnergyBreakdown::transmission);
    en_col(&core::EnergyBreakdown::handoff);
    en_col(&core::EnergyBreakdown::cooperation);
    en_col(&core::EnergyBreakdown::thermal);
    en_col(&core::EnergyBreakdown::base);
    en_col(&core::EnergyBreakdown::total);
    for (auto& r : records) {
      const std::uint64_t flags = c.take_u64();
      if (flags & ~3ull)
        throw std::runtime_error(
            "binary record stream: corrupt chunk in " + path +
            " (unknown breakdown flags)");
      r.report.latency.cooperation_in_total = (flags & 1ull) != 0;
      r.report.energy.cooperation_in_total = (flags & 2ull) != 0;
    }
    const std::uint64_t total_sensors = c.take_u64();
    std::uint64_t counted = 0;
    for (auto& r : records) {
      const std::uint64_t n = c.take_u64();
      counted += n;
      if (counted > total_sensors)
        throw std::runtime_error(
            "binary record stream: corrupt chunk in " + path +
            " (sensor counts exceed the declared total)");
      r.report.sensors.resize(n);
    }
    if (counted != total_sensors)
      throw std::runtime_error("binary record stream: corrupt chunk in " +
                               path +
                               " (sensor counts disagree with the total)");
    std::size_t names_bytes = 0;
    for (auto& r : records)
      for (auto& s : r.report.sensors) {
        const std::uint64_t len = c.take_u64();
        if (len > payload.size())
          throw std::runtime_error(
              "binary record stream: corrupt chunk in " + path +
              " (sensor name overruns payload)");
        s.name.resize(len);
        names_bytes += len;
      }
    for (auto& r : records)
      for (auto& s : r.report.sensors)
        if (!s.name.empty()) c.take_bytes(s.name.data(), s.name.size());
    c.take_bytes(nullptr, padded8(names_bytes) - names_bytes);
    const auto sensor_col = [&](double core::SensorReport::* field) {
      for (auto& r : records)
        for (auto& s : r.report.sensors) s.*field = c.take_f64();
    };
    sensor_col(&core::SensorReport::average_aoi_ms);
    sensor_col(&core::SensorReport::processed_hz);
    sensor_col(&core::SensorReport::roi);
    for (auto& r : records)
      for (auto& s : r.report.sensors) s.fresh = c.take_u64() != 0;
  }
  if (ground_truth) {
    for (auto& r : records) r.gt.emplace();
    for (auto& r : records) r.gt->seed = c.take_u64();
    for (auto& r : records) r.gt->frames = c.take_u64();
    for (auto& r : records) r.gt->mean_latency_ms = c.take_f64();
    for (auto& r : records) r.gt->mean_energy_mj = c.take_f64();
    for (auto& r : records) r.gt->latency_error_pct = c.take_f64();
    for (auto& r : records) r.gt->energy_error_pct = c.take_f64();
  }
  if (c.p != c.end)
    throw std::runtime_error("binary record stream: corrupt chunk in " +
                             path + " (trailing bytes after the columns)");
  return records;
}

/// Read one chunk header+payload. Returns false at a clean end of stream.
/// `tolerate_tear` (the resume scan) turns a short header/payload into a
/// clean stop instead of a "torn" error; corruption throws either way.
bool read_chunk(std::ifstream& in, const std::string& path,
                bool tolerate_tear, ChunkHeader& header,
                std::vector<unsigned char>& payload) {
  unsigned char raw[kBinaryChunkHeaderBytes];
  in.read(reinterpret_cast<char*>(raw), kBinaryChunkHeaderBytes);
  const std::size_t got = static_cast<std::size_t>(in.gcount());
  if (got == 0) return false;
  if (got < kBinaryChunkHeaderBytes) {
    if (tolerate_tear) return false;
    throw std::runtime_error("binary record stream: torn chunk header in " +
                             path);
  }
  Cursor c{raw, raw + kBinaryChunkHeaderBytes, path};
  if (c.take_u64() != kChunkMagic)
    throw std::runtime_error("binary record stream: corrupt chunk in " +
                             path + " (bad chunk magic)");
  header.record_count = c.take_u64();
  header.payload_bytes = c.take_u64();
  header.checksum = c.take_u64();
  if (header.payload_bytes % 8 != 0)
    throw std::runtime_error("binary record stream: corrupt chunk in " +
                             path + " (payload not 8-byte aligned)");
  payload.resize(header.payload_bytes);
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(header.payload_bytes));
  if (static_cast<std::size_t>(in.gcount()) < header.payload_bytes) {
    if (tolerate_tear) return false;
    throw std::runtime_error("binary record stream: torn chunk payload in " +
                             path);
  }
  if (fnv1a_bytes(payload.data(), payload.size()) != header.checksum)
    throw std::runtime_error("binary record stream: corrupt chunk in " +
                             path + " (checksum mismatch)");
  return true;
}

// ---- sink --------------------------------------------------------------

class BinarySink final : public RecordSink {
 public:
  BinarySink(std::string path, const RecordStreamConfig& config,
             const ShardIdentity& id, const std::size_t* resume_valid_bytes)
      : path_(std::move(path)), config_(config) {
    // A recovery below one full header means the stream never became
    // valid — rewrite it fresh, header included.
    if (resume_valid_bytes && *resume_valid_bytes >= kBinaryFileHeaderBytes) {
      std::error_code ec;
      if (std::filesystem::exists(path_, ec))
        std::filesystem::resize_file(path_, *resume_valid_bytes);
      file_ = std::fopen(path_.c_str(), "ab");
      if (!file_)
        throw std::runtime_error("RecordSink: cannot open " + path_);
    } else {
      file_ = std::fopen(path_.c_str(), "wb");
      if (!file_)
        throw std::runtime_error("RecordSink: cannot open " + path_);
      const std::string header =
          encode_header(id, config_.ground_truth, config_.metrics_only);
      if (std::fwrite(header.data(), 1, header.size(), file_) !=
              header.size() ||
          std::fflush(file_) != 0)
        throw std::runtime_error("RecordSink: cannot write header to " +
                                 path_);
    }
    pending_.reserve(config_.chunk_records);
  }

  ~BinarySink() override {
    if (file_) std::fclose(file_);
  }

  void append(std::size_t global_index,
              const core::PerformanceReport& report,
              const GtMeasurement* gt) override {
    if (config_.ground_truth && !gt)
      throw std::invalid_argument(
          "RecordSink: ground-truth binary stream fed a record without a "
          "measurement");
    ParsedRecord r;
    r.index = global_index;
    r.slim = config_.metrics_only;
    if (config_.metrics_only) {
      r.report.latency.total = report.latency.total;
      r.report.energy.total = report.energy.total;
    } else {
      r.report = report;
    }
    if (gt) r.gt = *gt;
    pending_.push_back(std::move(r));
  }

  std::size_t flush() override {
    std::size_t bytes = 0;
    if (!pending_.empty()) {
      const std::string payload = encode_chunk_payload(
          pending_, config_.ground_truth, config_.metrics_only);
      std::string frame;
      frame.reserve(kBinaryChunkHeaderBytes + payload.size());
      put_u64(frame, kChunkMagic);
      put_u64(frame, pending_.size());
      put_u64(frame, payload.size());
      put_u64(frame,
              fnv1a_bytes(
                  reinterpret_cast<const unsigned char*>(payload.data()),
                  payload.size()));
      frame += payload;
      if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size())
        throw std::runtime_error("RecordSink: short write to " + path_);
      bytes = frame.size();
      pending_.clear();
    }
    if (std::fflush(file_) != 0)
      throw std::runtime_error("RecordSink: flush failed for " + path_);
    return bytes;
  }

  [[nodiscard]] const std::string& path() const noexcept override {
    return path_;
  }
  [[nodiscard]] RecordFormat format() const noexcept override {
    return RecordFormat::kBinary;
  }

 private:
  std::string path_;
  RecordStreamConfig config_;
  std::FILE* file_ = nullptr;
  std::vector<ParsedRecord> pending_;
};

// ---- source ------------------------------------------------------------

class BinarySource final : public RecordSource {
 public:
  explicit BinarySource(std::string path)
      : path_(std::move(path)), in_(path_, std::ios::binary) {
    if (!in_)
      throw std::runtime_error("RecordSource: cannot open " + path_);
    const std::optional<BinaryHeaderInfo> header =
        try_read_header(in_, path_);
    if (!header)
      throw std::runtime_error(
          "binary record stream: missing or truncated header in " + path_);
    info_ = *header;
  }

  bool next(ParsedRecord& out) override {
    while (cursor_ >= decoded_.size()) {
      ChunkHeader header;
      std::vector<unsigned char> payload;
      if (!read_chunk(in_, path_, /*tolerate_tear=*/false, header, payload))
        return false;
      decoded_ = decode_chunk_payload(payload, header.record_count,
                                      info_.ground_truth, info_.metrics_only,
                                      path_);
      cursor_ = 0;
    }
    out = decoded_[cursor_++];
    return true;
  }

  [[nodiscard]] const std::string& path() const noexcept override {
    return path_;
  }
  [[nodiscard]] RecordFormat format() const noexcept override {
    return RecordFormat::kBinary;
  }

 private:
  std::string path_;
  std::ifstream in_;
  BinaryHeaderInfo info_;
  std::vector<ParsedRecord> decoded_;
  std::size_t cursor_ = 0;
};

}  // namespace

// ---- public entry points -----------------------------------------------

BinaryHeaderInfo read_binary_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("binary record stream: cannot open " + path);
  const std::optional<BinaryHeaderInfo> header = try_read_header(in, path);
  if (!header)
    throw std::runtime_error(
        "binary record stream: missing or truncated header in " + path);
  return *header;
}

BinaryRecovery scan_binary_prefix(
    const std::string& path, const RecordStreamConfig& config,
    const ShardIdentity& id, const ShardPlan& plan,
    const std::function<void(const ParsedRecord&)>& fold) {
  BinaryRecovery rec;
  std::ifstream in(path, std::ios::binary);
  if (!in) return rec;
  const std::optional<BinaryHeaderInfo> header = try_read_header(in, path);
  if (!header) return rec;  // torn header: rewrite from scratch
  // A wrong identity or fingerprint is a refusal, not a rewrite — the
  // stream belongs to a different sweep and silently clobbering it would
  // hide an operator error (same rule check_resume_identity applies to
  // the checkpoint).
  if (header->id.shard_id != id.shard_id ||
      header->id.shard_count != id.shard_count ||
      header->id.strategy != id.strategy ||
      header->id.grid_size != id.grid_size ||
      header->id.grid_fingerprint != id.grid_fingerprint)
    throw std::runtime_error(
        "binary record stream: " + path +
        " carries a different shard identity or sweep fingerprint than the "
        "resuming spec; refusing to resume");
  // A shape mismatch mirrors the JSONL scan's slim-vs-metrics rule: the
  // stream belongs to a different run configuration of the same sweep, so
  // resume rewrites it rather than mixing shapes.
  if (header->ground_truth != config.ground_truth ||
      header->metrics_only != config.metrics_only)
    return BinaryRecovery{};

  const std::size_t shard_n = plan.shard_size(id.shard_id);
  std::size_t offset = kBinaryFileHeaderBytes;
  rec.valid_bytes = offset;
  ChunkHeader chunk;
  std::vector<unsigned char> payload;
  while (rec.records < shard_n &&
         read_chunk(in, path, /*tolerate_tear=*/true, chunk, payload)) {
    // Chunk-grid acceptance keeps resumed files byte-identical to clean
    // runs: only full chunks count, plus an undersized final chunk that
    // completes the shard. A valid undersized tail that does NOT complete
    // the shard is dropped (≤ chunk_records - 1 records re-evaluated —
    // within the lose-at-most-one-chunk contract).
    const std::size_t full = std::max<std::size_t>(config.chunk_records, 1);
    if (chunk.record_count != full &&
        rec.records + chunk.record_count != shard_n)
      break;
    if (rec.records + chunk.record_count > shard_n) break;
    const std::vector<ParsedRecord> records =
        decode_chunk_payload(payload, chunk.record_count,
                             header->ground_truth, header->metrics_only,
                             path);
    bool aligned = true;
    for (std::size_t k = 0; k < records.size(); ++k)
      if (records[k].index !=
          plan.global_index(id.shard_id, rec.records + k)) {
        aligned = false;
        break;
      }
    if (!aligned) break;  // foreign indices: resume re-evaluates from here
    for (const ParsedRecord& r : records) fold(r);
    rec.records += records.size();
    offset += kBinaryChunkHeaderBytes + chunk.payload_bytes;
    rec.valid_bytes = offset;
  }
  return rec;
}

PartialReduction fold_binary_partial(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("binary record stream: cannot open " + path);
  const std::optional<BinaryHeaderInfo> header = try_read_header(in, path);
  if (!header)
    throw std::runtime_error(
        "binary record stream: missing or truncated header in " + path);
  PartialReduction partial(header->id, header->ground_truth);
  ChunkHeader chunk;
  std::vector<unsigned char> payload;
  while (read_chunk(in, path, /*tolerate_tear=*/false, chunk, payload)) {
    // Feed add() straight from the decoded columns — no PerformanceReport
    // or sensor rehydration on the merge path.
    const std::size_t m = chunk.record_count;
    const std::size_t col = m * 8;
    if (payload.size() < col)
      throw std::runtime_error("binary record stream: corrupt chunk in " +
                               path + " (payload shorter than its columns)");
    const unsigned char* base = payload.data();
    const auto u64_at = [&](std::size_t byte_offset, std::size_t i) {
      std::uint64_t v;
      if (byte_offset + (i + 1) * 8 > payload.size())
        throw std::runtime_error("binary record stream: corrupt chunk in " +
                                 path +
                                 " (column block overruns payload)");
      std::memcpy(&v, base + byte_offset + i * 8, 8);
      return v;
    };
    const auto f64_at = [&](std::size_t byte_offset, std::size_t i) {
      double v;
      if (byte_offset + (i + 1) * 8 > payload.size())
        throw std::runtime_error("binary record stream: corrupt chunk in " +
                                 path +
                                 " (column block overruns payload)");
      std::memcpy(&v, base + byte_offset + i * 8, 8);
      return v;
    };
    // Column offsets (bytes from payload start); see binary_stream.h.
    std::size_t lat_total_off, en_total_off, gt_off;
    if (header->metrics_only) {
      lat_total_off = col;           // the single latency column
      en_total_off = col + col;      // the single energy column
      gt_off = 3 * col;
    } else {
      lat_total_off = col + 12 * col;       // 13th latency column
      en_total_off = col + 13 * col + 13 * col;  // 14th energy column
      // Skip breakdown_flags[m], then the sensor blocks sized by S.
      const std::size_t flags_off = col + 13 * col + 14 * col;
      const std::size_t s_off = flags_off + col;
      const std::uint64_t S = u64_at(s_off, 0);
      std::size_t names_bytes = 0;
      const std::size_t name_len_off = s_off + 8 + col;
      for (std::uint64_t k = 0; k < S; ++k) {
        const std::uint64_t len = u64_at(name_len_off, k);
        if (len > chunk.payload_bytes)
          throw std::runtime_error(
              "binary record stream: corrupt chunk in " + path +
              " (sensor name overruns payload)");
        names_bytes += len;
      }
      gt_off = name_len_off + S * 8 + padded8(names_bytes) + 3 * S * 8 +
               S * 8;
    }
    const std::size_t expected =
        (header->metrics_only ? 3 * col : gt_off) +
        (header->ground_truth ? 6 * col : 0);
    if (payload.size() != expected)
      throw std::runtime_error("binary record stream: corrupt chunk in " +
                               path +
                               " (payload size disagrees with its columns)");
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t index = u64_at(0, i);
      if (header->ground_truth) {
        GtMeasurement gt;
        gt.seed = u64_at(gt_off, i);
        gt.frames = u64_at(gt_off + col, i);
        gt.mean_latency_ms = f64_at(gt_off + 2 * col, i);
        gt.mean_energy_mj = f64_at(gt_off + 3 * col, i);
        gt.latency_error_pct = f64_at(gt_off + 4 * col, i);
        gt.energy_error_pct = f64_at(gt_off + 5 * col, i);
        partial.add(index, gt.mean_latency_ms, gt.mean_energy_mj, &gt);
      } else {
        partial.add(index, f64_at(lat_total_off, i), f64_at(en_total_off, i));
      }
    }
  }
  return partial;
}

std::unique_ptr<RecordSink> open_binary_sink(
    std::string path, const RecordStreamConfig& config,
    const ShardIdentity& id, const std::size_t* resume_valid_bytes) {
  return std::make_unique<BinarySink>(std::move(path), config, id,
                                      resume_valid_bytes);
}

std::unique_ptr<RecordSource> open_binary_source(std::string path) {
  return std::make_unique<BinarySource>(std::move(path));
}

}  // namespace xr::runtime::shard
