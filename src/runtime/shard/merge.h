// Fold K shard partial reductions into one monolithic-equivalent summary.
//
// The merge law — the whole point of the sharded subsystem — is that for
// any disjoint complete cover of a grid,
//
//   merge_partials(partials over K shards)  ≡  BatchEvaluator::run(grid)
//
// bitwise, on every deterministic field: best_latency_index /
// best_energy_index, the four extrema, and the Pareto frontier (indices and
// values). tests/runtime/test_sharded_merge.cpp asserts this for K ∈
// {1, 2, 3, 7} on randomized grids, and scripts/sweep_sharded.sh asserts it
// across real worker processes.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "runtime/batch_evaluator.h"
#include "runtime/shard/streaming_sink.h"

namespace xr::runtime::shard {

/// Aggregate worker throughput (not part of the bitwise identity).
struct MergeStats {
  std::size_t shards = 0;
  double wall_ms_sum = 0;  ///< total CPU-side work.
  double wall_ms_max = 0;  ///< makespan when shards ran concurrently.
};

/// The BatchResult-equivalent summary of a sharded sweep.
///
/// For ground-truth sweeps the extrema/Pareto fields range over the
/// *measured* per-point means, and `gt` carries the exactly-merged
/// aggregates (mean GT latency/energy, mean model error vs the analytical
/// prediction) — bitwise identical for every disjoint cover of the grid.
struct MergedSummary {
  std::size_t grid_size = 0;
  std::size_t shard_count = 0;
  ShardStrategy strategy = ShardStrategy::kRange;
  std::size_t evaluated = 0;
  std::uint64_t grid_fingerprint = 0;  ///< from the workers' GridSpec.

  std::size_t best_latency_index = 0;
  std::size_t best_energy_index = 0;
  double min_latency_ms = 0, max_latency_ms = 0;
  double min_energy_mj = 0, max_energy_mj = 0;
  std::vector<ParetoPoint> pareto;  ///< latency-ascending frontier.

  /// Ground-truth aggregates; engaged iff the workers ran the GT evaluator.
  std::optional<GtAggregate> gt;

  MergeStats stats;

  [[nodiscard]] std::vector<std::size_t> pareto_indices() const;
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static MergedSummary from_json(const Json& j);
};

/// Merge a complete disjoint cover. Throws std::invalid_argument when the
/// partials disagree on the partition or evaluator kind, a shard is
/// missing or duplicated, or any shard is incomplete (evaluated != its
/// plan size).
///
/// With `require_complete_cover = false` (the coordinator's quarantine
/// path: summarize the shards that DID finish) missing shards are
/// permitted — extrema/Pareto then range over the present shards only and
/// `evaluated < grid_size` records the gap. Every present shard must
/// still be internally complete, duplicate-free, and partition-agreed.
[[nodiscard]] MergedSummary merge_partials(
    const std::vector<PartialReduction>& partials,
    bool require_complete_cover = true);

/// Rebuild one shard's PartialReduction from its record stream (either
/// format, autodetected from the extension). Binary streams carry their
/// own identity in the file header and fold column-wise without
/// rehydrating rows (binary_stream.h); JSONL streams take their identity
/// from the sibling <stem>.partial.json checkpoint, which must exist (a
/// bare .jsonl cannot name the sweep it came from) — missing checkpoint
/// is a named std::runtime_error. The stream must be complete and valid:
/// tears and corruption are named errors, never truncation. Worker
/// throughput stats are carried from the sibling checkpoint when present.
[[nodiscard]] PartialReduction partial_from_records(
    const std::string& record_path);

/// Load K shard documents and merge them. Each path is either a
/// .partial.json checkpoint or a record stream (.jsonl/.xrb, dispatched
/// through partial_from_records) — the two kinds may be mixed freely, as
/// may record formats across shards, because a PartialReduction is a pure
/// function of the decoded totals.
[[nodiscard]] MergedSummary merge_partial_files(
    const std::vector<std::string>& paths);

/// Compare the deterministic fields of two summaries (stats excluded).
/// On mismatch returns false and, when `why` is non-null, describes the
/// first differing field.
[[nodiscard]] bool summaries_equivalent(const MergedSummary& a,
                                        const MergedSummary& b,
                                        std::string* why = nullptr);

/// Compare a merged summary against an in-memory monolithic BatchResult
/// (analytical summaries only; a ground-truth summary never matches).
[[nodiscard]] bool matches_batch_result(const MergedSummary& summary,
                                        const BatchResult& result,
                                        std::string* why = nullptr);

}  // namespace xr::runtime::shard
