// The binary columnar record-stream backend ("xrb", RecordFormat::kBinary).
//
// Layout (all integers and doubles little-endian, every block 8-byte
// aligned so a complete stream can be mmap'd and folded in place):
//
//   file header (64 bytes)
//     byte  0  magic   "XRBREC1\n"
//     byte  8  u64 version            (kBinaryVersion = 1)
//     byte 16  u64 shape flags        bit0 metrics_only, bit1 ground_truth
//     byte 24  u64 shard_id
//     byte 32  u64 shard_count
//     byte 40  u64 strategy           (0 range, 1 strided)
//     byte 48  u64 grid_size
//     byte 56  u64 grid_fingerprint   (the sweep fingerprint)
//
//   then zero or more chunks, one per sink flush:
//
//   chunk header (32 bytes)
//     u64 chunk magic  "XRBCHNK1"
//     u64 record_count m
//     u64 payload_bytes
//     u64 checksum                    FNV-1a over the payload bytes
//
//   chunk payload — column blocks, in order:
//     u64    index[m]                 global grid indices, ascending
//     metrics-only shape:
//       f64  latency_total[m], f64 energy_total[m]
//     full shape:
//       f64  latency columns x13      (field order of LatencyBreakdown)
//       f64  energy columns  x14      (field order of EnergyBreakdown)
//       u64  breakdown_flags[m]       bit0/bit1 = cooperation_in_total
//       u64  total_sensors S
//       u64  sensor_count[m]          sensors per record, sum = S
//       u64  name_len[S]; name bytes (concatenated, zero-padded to 8)
//       f64  aoi_ms[S], f64 processed_hz[S], f64 roi[S]; u64 fresh[S]
//     ground-truth streams append:
//       u64  seed[m], u64 frames[m]
//       f64  mean_latency_ms[m], mean_energy_mj[m],
//            latency_error_pct[m], energy_error_pct[m]
//
// Crash/corruption taxonomy (the resume scan and S1 fuzz contract):
//   * fewer bytes than a chunk header, or a payload shorter than the
//     header declares — a torn TAIL from a kill; the scan truncates it.
//   * wrong chunk magic, checksum mismatch, or a payload/record-count
//     disagreement on a byte-complete chunk — CORRUPTION; named error.
//   * wrong file magic/version, or a header identity/fingerprint that
//     disagrees with the resuming spec — refused with a named error.
//
// Resume keeps the byte-identity law on the chunk grid: the scan accepts
// only chunks of exactly chunk_records records (plus an undersized final
// chunk when it completes the shard), so a resumed worker re-flushes on
// the same chunk boundaries an uninterrupted run would and the bytes come
// out identical. Dropping a valid undersized tail re-evaluates at most
// chunk_records - 1 records — within the lose-at-most-one-chunk contract.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "runtime/shard/record_stream.h"

namespace xr::runtime::shard {

class PartialReduction;  // streaming_sink.h (which includes this header's
                         // sibling record_stream.h; no cycle)
class ShardPlan;

inline constexpr std::uint64_t kBinaryVersion = 1;
inline constexpr std::size_t kBinaryFileHeaderBytes = 64;
inline constexpr std::size_t kBinaryChunkHeaderBytes = 32;

/// The self-description a binary stream's file header carries.
struct BinaryHeaderInfo {
  ShardIdentity id;
  bool ground_truth = false;
  bool metrics_only = false;
};

/// Read and validate a stream's file header. Throws std::runtime_error
/// naming the failure on a missing/short file, wrong magic, or an
/// unsupported version.
[[nodiscard]] BinaryHeaderInfo read_binary_header(const std::string& path);

/// The longest valid chunk-aligned prefix of an existing stream (resume).
struct BinaryRecovery {
  std::size_t records = 0;
  std::size_t valid_bytes = 0;  ///< header + accepted chunks.
};

/// Scan an existing stream for resume: validates the header against
/// `config`/`id` (mismatched identity/fingerprint/version are named
/// errors; a shape-flag mismatch returns an empty recovery so resume
/// rewrites, mirroring the JSONL scan), truncates torn tails silently,
/// throws on mid-file corruption, and applies the chunk-grid acceptance
/// rule above. `fold` is called once per accepted record in order — the
/// caller rebuilds its PartialReduction through it. A missing file is an
/// empty recovery.
[[nodiscard]] BinaryRecovery scan_binary_prefix(
    const std::string& path, const RecordStreamConfig& config,
    const ShardIdentity& id, const ShardPlan& plan,
    const std::function<void(const ParsedRecord&)>& fold);

/// Fold a COMPLETE binary stream straight into a PartialReduction without
/// rehydrating rows: the identity comes from the file header and add() is
/// fed directly from the decoded column arrays (no PerformanceReport or
/// sensor reconstruction). Throws named errors on any tear or corruption
/// — merge inputs must be complete. This is sweep_merge's record-operand
/// fast path.
[[nodiscard]] PartialReduction fold_binary_partial(const std::string& path);

/// Backend factories used by record_stream.cpp (see open_record_sink /
/// open_record_source for the contracts).
[[nodiscard]] std::unique_ptr<RecordSink> open_binary_sink(
    std::string path, const RecordStreamConfig& config,
    const ShardIdentity& id, const std::size_t* resume_valid_bytes);
[[nodiscard]] std::unique_ptr<RecordSource> open_binary_source(
    std::string path);

}  // namespace xr::runtime::shard
