#include "runtime/shard/merge.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "obs/registry.h"
#include "obs/span.h"
#include "runtime/shard/binary_stream.h"

namespace xr::runtime::shard {

namespace {

constexpr const char* kSummarySchema = "xr.sweep.summary.v1";

}  // namespace

std::vector<std::size_t> MergedSummary::pareto_indices() const {
  std::vector<std::size_t> out;
  out.reserve(pareto.size());
  for (const auto& p : pareto) out.push_back(p.index);
  return out;
}

Json MergedSummary::to_json() const {
  Json j = Json::object();
  j.set("schema", kSummarySchema);
  j.set("grid_size", grid_size);
  j.set("shard_count", shard_count);
  j.set("strategy", strategy_name(strategy));
  j.set("evaluated", evaluated);
  j.set("grid_fingerprint", format_hex64(grid_fingerprint));
  j.set("best_latency_index", best_latency_index);
  j.set("min_latency_ms", min_latency_ms);
  j.set("max_latency_ms", max_latency_ms);
  j.set("best_energy_index", best_energy_index);
  j.set("min_energy_mj", min_energy_mj);
  j.set("max_energy_mj", max_energy_mj);
  Json pj = Json::array();
  for (const auto& p : pareto) {
    Json t = Json::array();
    t.push_back(p.index);
    t.push_back(p.latency_ms);
    t.push_back(p.energy_mj);
    pj.push_back(std::move(t));
  }
  j.set("pareto", std::move(pj));
  if (gt) j.set("gt", gt->to_json());
  Json sj = Json::object();
  sj.set("shards", stats.shards);
  sj.set("wall_ms_sum", stats.wall_ms_sum);
  sj.set("wall_ms_max", stats.wall_ms_max);
  j.set("stats", std::move(sj));
  return j;
}

MergedSummary MergedSummary::from_json(const Json& j) {
  if (j.at("schema").as_string() != kSummarySchema)
    throw std::invalid_argument("MergedSummary: unknown schema '" +
                                j.at("schema").as_string() + "'");
  MergedSummary out;
  out.grid_size = j.at("grid_size").as_size();
  out.shard_count = j.at("shard_count").as_size();
  out.strategy = strategy_from_name(j.at("strategy").as_string());
  out.evaluated = j.at("evaluated").as_size();
  out.grid_fingerprint = parse_hex64(j.at("grid_fingerprint").as_string());
  out.best_latency_index = j.at("best_latency_index").as_size();
  out.min_latency_ms = j.at("min_latency_ms").as_double();
  out.max_latency_ms = j.at("max_latency_ms").as_double();
  out.best_energy_index = j.at("best_energy_index").as_size();
  out.min_energy_mj = j.at("min_energy_mj").as_double();
  out.max_energy_mj = j.at("max_energy_mj").as_double();
  for (const Json& t : j.at("pareto").as_array()) {
    const auto& triple = t.as_array();
    if (triple.size() != 3)
      throw std::invalid_argument("MergedSummary: bad pareto entry");
    out.pareto.push_back(ParetoPoint{triple[0].as_size(),
                                     triple[1].as_double(),
                                     triple[2].as_double()});
  }
  if (const Json* g = j.find("gt")) out.gt = GtAggregate::from_json(*g);
  const Json& sj = j.at("stats");
  out.stats.shards = sj.at("shards").as_size();
  out.stats.wall_ms_sum = sj.at("wall_ms_sum").as_double();
  out.stats.wall_ms_max = sj.at("wall_ms_max").as_double();
  return out;
}

MergedSummary merge_partials(const std::vector<PartialReduction>& partials,
                             bool require_complete_cover) {
  static obs::Counter merges("shard.merge.merges");
  static obs::Counter merged_shards("shard.merge.shards");
  merges.add();
  merged_shards.add(partials.size());
  const obs::Span span("merge.partials");
  if (partials.empty())
    throw std::invalid_argument("merge_partials: no partials");

  const ShardIdentity& first = partials.front().identity();
  const bool gt_mode = partials.front().ground_truth();
  const ShardPlan plan(first.grid_size, first.shard_count, first.strategy);
  std::vector<bool> seen(first.shard_count, false);
  std::size_t evaluated = 0;
  for (const auto& p : partials) {
    const ShardIdentity& id = p.identity();
    if (id.grid_size != first.grid_size ||
        id.shard_count != first.shard_count ||
        id.strategy != first.strategy ||
        id.grid_fingerprint != first.grid_fingerprint)
      throw std::invalid_argument(
          "merge_partials: partials disagree on the partition or grid");
    if (p.ground_truth() != gt_mode)
      throw std::invalid_argument(
          "merge_partials: cannot mix analytical and ground-truth partials");
    if (id.shard_id >= id.shard_count)
      throw std::invalid_argument("merge_partials: shard id out of range");
    if (seen[id.shard_id])
      throw std::invalid_argument("merge_partials: duplicate shard " +
                                  std::to_string(id.shard_id));
    seen[id.shard_id] = true;
    if (p.evaluated() != plan.shard_size(id.shard_id))
      throw std::invalid_argument(
          "merge_partials: shard " + std::to_string(id.shard_id) +
          " is incomplete (" + std::to_string(p.evaluated()) + " of " +
          std::to_string(plan.shard_size(id.shard_id)) + " records)");
    evaluated += p.evaluated();
  }
  if (require_complete_cover) {
    if (partials.size() != first.shard_count)
      throw std::invalid_argument("merge_partials: expected " +
                                  std::to_string(first.shard_count) +
                                  " shards, got " +
                                  std::to_string(partials.size()));
    if (evaluated != first.grid_size)
      throw std::invalid_argument("merge_partials: cover is incomplete");
  }
  if (evaluated == 0)
    throw std::invalid_argument("merge_partials: empty grid");

  MergedSummary out;
  out.grid_size = first.grid_size;
  out.shard_count = first.shard_count;
  out.strategy = first.strategy;
  out.evaluated = evaluated;
  out.grid_fingerprint = first.grid_fingerprint;

  // Extrema: global min value, tie broken toward the smallest index. Each
  // shard's argmin is the first occurrence within the shard, so the winner
  // is the global first occurrence — BatchEvaluator's pick.
  bool init = false;
  for (const auto& p : partials) {
    if (p.evaluated() == 0) continue;
    if (!init) {
      init = true;
      out.best_latency_index = p.best_latency_index();
      out.min_latency_ms = p.min_latency_ms();
      out.max_latency_ms = p.max_latency_ms();
      out.best_energy_index = p.best_energy_index();
      out.min_energy_mj = p.min_energy_mj();
      out.max_energy_mj = p.max_energy_mj();
      continue;
    }
    if (p.min_latency_ms() < out.min_latency_ms ||
        (p.min_latency_ms() == out.min_latency_ms &&
         p.best_latency_index() < out.best_latency_index)) {
      out.min_latency_ms = p.min_latency_ms();
      out.best_latency_index = p.best_latency_index();
    }
    out.max_latency_ms = std::max(out.max_latency_ms, p.max_latency_ms());
    if (p.min_energy_mj() < out.min_energy_mj ||
        (p.min_energy_mj() == out.min_energy_mj &&
         p.best_energy_index() < out.best_energy_index)) {
      out.min_energy_mj = p.min_energy_mj();
      out.best_energy_index = p.best_energy_index();
    }
    out.max_energy_mj = std::max(out.max_energy_mj, p.max_energy_mj());
  }

  // Pareto: union of shard frontiers, re-scanned in the order the
  // monolithic stable_sort induces — (latency, energy, index).
  std::vector<ParetoPoint> candidates;
  for (const auto& p : partials) {
    const auto f = p.pareto();
    candidates.insert(candidates.end(), f.begin(), f.end());
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.latency_ms != b.latency_ms)
                return a.latency_ms < b.latency_ms;
              if (a.energy_mj != b.energy_mj)
                return a.energy_mj < b.energy_mj;
              return a.index < b.index;
            });
  double best_energy = std::numeric_limits<double>::infinity();
  for (const auto& c : candidates) {
    if (c.energy_mj < best_energy) {
      out.pareto.push_back(c);
      best_energy = c.energy_mj;
    }
  }

  // Ground-truth aggregates: ExactSum merges are exact, so any grouping of
  // shards produces the same sums — and the same derived means — bitwise.
  if (gt_mode) {
    GtAggregate agg;
    for (const auto& p : partials) agg.merge(*p.gt());
    out.gt = std::move(agg);
  }

  for (const auto& p : partials) {
    ++out.stats.shards;
    out.stats.wall_ms_sum += p.wall_ms;
    out.stats.wall_ms_max = std::max(out.stats.wall_ms_max, p.wall_ms);
  }
  return out;
}

namespace {

/// The sibling checkpoint of a record stream: <stem>.partial.json.
std::string sibling_checkpoint(const std::string& path, RecordFormat f) {
  const std::string ext = format_extension(f);
  return path.substr(0, path.size() - ext.size()) + ".partial.json";
}

}  // namespace

PartialReduction partial_from_records(const std::string& path) {
  const std::optional<RecordFormat> f = format_from_path(path);
  if (!f)
    throw std::invalid_argument("partial_from_records: '" + path +
                                "' carries neither record extension "
                                "(.jsonl/.xrb)");
  const std::string checkpoint = sibling_checkpoint(path, *f);
  std::optional<PartialReduction> prior;
  try {
    prior = PartialReduction::from_json(Json::parse(read_text_file(checkpoint)));
  } catch (const std::exception&) {
    // Tolerable for binary streams (the header is self-identifying);
    // fatal for JSONL below.
  }

  PartialReduction partial;
  if (*f == RecordFormat::kBinary) {
    // Identity + shape come from the stream's own header; the fold runs
    // column-wise with no row rehydration.
    partial = fold_binary_partial(path);
  } else {
    if (!prior)
      throw std::runtime_error(
          "partial_from_records: " + path +
          " needs its sibling checkpoint " + checkpoint +
          " — a bare .jsonl stream cannot name the sweep it came from");
    partial = PartialReduction(prior->identity(), prior->ground_truth());
    const std::unique_ptr<RecordSource> source = open_record_source(path);
    ParsedRecord r;
    while (source->next(r)) {
      if (r.gt)
        partial.add(r.index, r.gt->mean_latency_ms, r.gt->mean_energy_mj,
                    &*r.gt);
      else
        partial.add(r.index, r.report.latency.total, r.report.energy.total);
    }
  }
  if (prior) {
    // Throughput stats live only in the checkpoint (they are not part of
    // the record stream's bitwise identity).
    partial.wall_ms = prior->wall_ms;
    partial.threads = prior->threads;
  }
  return partial;
}

MergedSummary merge_partial_files(const std::vector<std::string>& paths) {
  std::vector<PartialReduction> partials;
  partials.reserve(paths.size());
  for (const auto& path : paths) {
    if (format_from_path(path))
      partials.push_back(partial_from_records(path));
    else
      partials.push_back(
          PartialReduction::from_json(Json::parse(read_text_file(path))));
  }
  return merge_partials(partials);
}

namespace {

bool fail(std::string* why, const std::string& message) {
  if (why) *why = message;
  return false;
}

}  // namespace

bool summaries_equivalent(const MergedSummary& a, const MergedSummary& b,
                          std::string* why) {
  if (a.grid_size != b.grid_size) return fail(why, "grid_size differs");
  if (a.evaluated != b.evaluated) return fail(why, "evaluated differs");
  if (a.grid_fingerprint != b.grid_fingerprint)
    return fail(why, "grid_fingerprint differs (different grids)");
  if (a.best_latency_index != b.best_latency_index)
    return fail(why, "best_latency_index differs");
  if (a.best_energy_index != b.best_energy_index)
    return fail(why, "best_energy_index differs");
  if (a.min_latency_ms != b.min_latency_ms)
    return fail(why, "min_latency_ms differs");
  if (a.max_latency_ms != b.max_latency_ms)
    return fail(why, "max_latency_ms differs");
  if (a.min_energy_mj != b.min_energy_mj)
    return fail(why, "min_energy_mj differs");
  if (a.max_energy_mj != b.max_energy_mj)
    return fail(why, "max_energy_mj differs");
  if (a.pareto.size() != b.pareto.size())
    return fail(why, "pareto size differs");
  for (std::size_t i = 0; i < a.pareto.size(); ++i)
    if (a.pareto[i].index != b.pareto[i].index ||
        a.pareto[i].latency_ms != b.pareto[i].latency_ms ||
        a.pareto[i].energy_mj != b.pareto[i].energy_mj)
      return fail(why, "pareto[" + std::to_string(i) + "] differs");
  if (a.gt.has_value() != b.gt.has_value())
    return fail(why, "evaluator kind differs (ground-truth vs analytical)");
  if (a.gt) {
    // Exact-value comparison — representation independent, stricter than
    // comparing the rounded means.
    if (a.gt->count != b.gt->count) return fail(why, "gt count differs");
    if (!a.gt->latency_ms_sum.same_value(b.gt->latency_ms_sum))
      return fail(why, "gt latency sum differs");
    if (!a.gt->energy_mj_sum.same_value(b.gt->energy_mj_sum))
      return fail(why, "gt energy sum differs");
    if (!a.gt->latency_error_pct_sum.same_value(b.gt->latency_error_pct_sum))
      return fail(why, "gt latency model-error sum differs");
    if (!a.gt->energy_error_pct_sum.same_value(b.gt->energy_error_pct_sum))
      return fail(why, "gt energy model-error sum differs");
  }
  return true;
}

bool matches_batch_result(const MergedSummary& summary,
                          const BatchResult& result, std::string* why) {
  if (summary.gt)
    return fail(why,
                "ground-truth summary cannot match an analytical "
                "BatchResult");
  if (summary.grid_size != result.reports.size())
    return fail(why, "grid_size differs");
  if (summary.best_latency_index != result.best_latency_index)
    return fail(why, "best_latency_index differs");
  if (summary.best_energy_index != result.best_energy_index)
    return fail(why, "best_energy_index differs");
  if (summary.min_latency_ms != result.min_latency_ms)
    return fail(why, "min_latency_ms differs");
  if (summary.max_latency_ms != result.max_latency_ms)
    return fail(why, "max_latency_ms differs");
  if (summary.min_energy_mj != result.min_energy_mj)
    return fail(why, "min_energy_mj differs");
  if (summary.max_energy_mj != result.max_energy_mj)
    return fail(why, "max_energy_mj differs");
  if (summary.pareto.size() != result.pareto_indices.size())
    return fail(why, "pareto size differs");
  for (std::size_t i = 0; i < summary.pareto.size(); ++i) {
    const std::size_t idx = result.pareto_indices[i];
    if (summary.pareto[i].index != idx ||
        summary.pareto[i].latency_ms != result.latency_ms(idx) ||
        summary.pareto[i].energy_mj != result.energy_mj(idx))
      return fail(why, "pareto[" + std::to_string(i) + "] differs");
  }
  return true;
}

}  // namespace xr::runtime::shard
