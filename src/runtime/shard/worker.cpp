#include "runtime/shard/worker.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/framework.h"
#include "runtime/thread_pool.h"

namespace xr::runtime::shard {

namespace {

/// Resume guard: records on disk imply a flushed checkpoint, and the
/// checkpoint carries the full shard identity (partition + grid
/// fingerprint). An index sequence alone cannot tell two same-shape grids
/// apart, so a missing or mismatched checkpoint means the stream belongs
/// to some other sweep — refuse rather than silently mix grids.
void check_resume_identity(const std::string& partial_path,
                           const ShardIdentity& id) {
  std::string text;
  try {
    text = read_text_file(partial_path);
  } catch (const std::exception&) {
    throw std::runtime_error(
        "run_worker: cannot resume — record stream exists but checkpoint " +
        partial_path + " is missing; delete the outputs to restart");
  }
  const ShardIdentity existing =
      PartialReduction::from_json(Json::parse(text)).identity();
  if (existing.shard_id != id.shard_id ||
      existing.shard_count != id.shard_count ||
      existing.strategy != id.strategy ||
      existing.grid_size != id.grid_size ||
      existing.grid_fingerprint != id.grid_fingerprint)
    throw std::runtime_error(
        "run_worker: cannot resume — " + partial_path +
        " was written for a different grid or partition; delete the "
        "outputs (or restore the original spec) to proceed");
}

}  // namespace

Json WorkerSpec::to_json() const {
  Json j = Json::object();
  j.set("grid", grid.to_json());
  j.set("shard_id", shard_id);
  j.set("shard_count", shard_count);
  j.set("strategy", strategy_name(strategy));
  j.set("output", output);
  j.set("chunk_records", chunk_records);
  j.set("threads", threads);
  j.set("resume", resume);
  return j;
}

WorkerSpec WorkerSpec::from_json(const Json& j) {
  WorkerSpec out;
  out.grid = GridSpec::from_json(j.at("grid"));
  out.shard_id = j.at("shard_id").as_size();
  out.shard_count = j.at("shard_count").as_size();
  if (const Json* s = j.find("strategy"))
    out.strategy = strategy_from_name(s->as_string());
  out.output = j.at("output").as_string();
  if (const Json* c = j.find("chunk_records"))
    out.chunk_records = c->as_size();
  if (const Json* t = j.find("threads")) out.threads = t->as_size();
  if (const Json* r = j.find("resume")) out.resume = r->as_bool();
  return out;
}

WorkerOutcome run_worker(const WorkerSpec& spec,
                         std::size_t max_new_records) {
  if (spec.shard_id >= spec.shard_count)
    throw std::invalid_argument("run_worker: shard_id out of range");
  if (spec.output.empty())
    throw std::invalid_argument("run_worker: empty output stem");

  const ScenarioGrid grid = spec.grid.build();
  const ShardPlan plan(grid.size(), spec.shard_count, spec.strategy);
  const ShardIdentity id{spec.shard_id, spec.shard_count, spec.strategy,
                         grid.size(), grid_fingerprint(spec.grid)};
  const SinkOptions options{spec.output, spec.chunk_records};

  StreamingSink::Recovery recovery;
  const StreamingSink::Recovery* recovered = nullptr;
  if (spec.resume) {
    recovery = StreamingSink::scan_existing(options, id, plan);
    if (recovery.records > 0)
      check_resume_identity(spec.output + ".partial.json", id);
    recovered = &recovery;
  }
  StreamingSink sink(options, id, recovered);

  // Worker pool per the BatchOptions convention; chunks always land in
  // ascending index order regardless of thread count (pure model).
  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = nullptr;
  if (spec.threads == 0)
    pool = &ThreadPool::shared();
  else if (spec.threads > 1)
    pool = (own_pool = std::make_unique<ThreadPool>(spec.threads)).get();

  const core::XrPerformanceModel model;
  const std::size_t shard_n = plan.shard_size(spec.shard_id);
  const std::size_t chunk = std::max<std::size_t>(spec.chunk_records, 1);

  WorkerOutcome out;
  out.resumed_records = sink.records_written();
  out.jsonl_path = sink.jsonl_path();
  out.partial_path = sink.partial_path();

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t done = sink.records_written();
  while (done < shard_n) {
    std::size_t m = std::min(chunk, shard_n - done);
    if (max_new_records)
      m = std::min(m, max_new_records - out.evaluated_records);
    if (m == 0) break;

    const auto evaluate = [&](std::size_t j) {
      return model.evaluate(
          grid.at(plan.global_index(spec.shard_id, done + j)));
    };
    std::vector<core::PerformanceReport> reports;
    if (pool) {
      reports = pool->map(m, evaluate);
    } else {
      reports.reserve(m);
      for (std::size_t j = 0; j < m; ++j) reports.push_back(evaluate(j));
    }
    for (std::size_t j = 0; j < m; ++j)
      sink.append(plan.global_index(spec.shard_id, done + j), reports[j]);

    done += m;
    out.evaluated_records += m;
    if (max_new_records && out.evaluated_records >= max_new_records) break;
  }
  const auto t1 = std::chrono::steady_clock::now();
  sink.set_stats(std::chrono::duration<double, std::milli>(t1 - t0).count(),
                 pool ? pool->size() : 1);

  out.shard_records = done;
  out.complete = done == shard_n;
  out.partial = sink.finalize();
  return out;
}

}  // namespace xr::runtime::shard
