#include "runtime/shard/worker.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/framework.h"
#include "runtime/thread_pool.h"

namespace xr::runtime::shard {

namespace {

/// Resume guard: records on disk imply a flushed checkpoint, and the
/// checkpoint carries the full shard identity (partition + sweep
/// fingerprint, which covers the grid *and* the evaluator). An index
/// sequence alone cannot tell two same-shape sweeps apart, so a missing or
/// mismatched checkpoint means the stream belongs to some other sweep —
/// refuse rather than silently mix them. Returns the prior checkpoint so
/// the caller can carry its throughput stats forward.
PartialReduction check_resume_identity(const std::string& partial_path,
                                       const ShardIdentity& id) {
  std::string text;
  try {
    text = read_text_file(partial_path);
  } catch (const std::exception&) {
    throw std::runtime_error(
        "run_worker: cannot resume — record stream exists but checkpoint " +
        partial_path + " is missing; delete the outputs to restart");
  }
  PartialReduction prior = PartialReduction::from_json(Json::parse(text));
  const ShardIdentity& existing = prior.identity();
  if (existing.shard_id != id.shard_id ||
      existing.shard_count != id.shard_count ||
      existing.strategy != id.strategy ||
      existing.grid_size != id.grid_size ||
      existing.grid_fingerprint != id.grid_fingerprint)
    throw std::runtime_error(
        "run_worker: cannot resume — " + partial_path +
        " was written for a different grid, evaluator, or partition; "
        "delete the outputs (or restore the original spec) to proceed");
  return prior;
}

}  // namespace

WorkerSpec WorkerSpec::from_request(const runtime::SweepRequest& request,
                                    std::size_t shard_id,
                                    std::size_t shard_count,
                                    ShardStrategy strategy, std::string output,
                                    bool resume) {
  WorkerSpec spec;
  spec.grid = request.grid;
  spec.evaluator = request.evaluator;
  spec.shard_id = shard_id;
  spec.shard_count = shard_count;
  spec.strategy = strategy;
  spec.output = std::move(output);
  spec.chunk_records = request.execution.chunk_records;
  spec.threads = request.execution.threads;
  spec.metrics = request.execution.metrics;
  spec.resume = resume;
  return spec;
}

Json WorkerSpec::to_json() const {
  Json j = Json::object();
  j.set("grid", grid.to_json());
  j.set("evaluator", evaluator.to_json());
  j.set("shard_id", shard_id);
  j.set("shard_count", shard_count);
  j.set("strategy", strategy_name(strategy));
  j.set("output", output);
  j.set("chunk_records", chunk_records);
  j.set("threads", threads);
  j.set("metrics", metrics);
  j.set("resume", resume);
  return j;
}

WorkerSpec WorkerSpec::from_json(const Json& j) {
  WorkerSpec out;
  out.grid = GridSpec::from_json(j.at("grid"));
  if (const Json* e = j.find("evaluator"))
    out.evaluator = EvaluatorSpec::from_json(*e);
  out.shard_id = j.at("shard_id").as_size();
  out.shard_count = j.at("shard_count").as_size();
  if (out.shard_count == 0)
    throw std::invalid_argument(
        "WorkerSpec: shard_count must be >= 1 (got 0)");
  if (const Json* s = j.find("strategy"))
    out.strategy = strategy_from_name(s->as_string());
  out.output = j.at("output").as_string();
  if (const Json* c = j.find("chunk_records"))
    out.chunk_records = c->as_size();
  // Normalize once: 0 would otherwise mean "flush every record" to the
  // sink but "chunks of 1" to the worker loop only by way of two separate
  // clamps that could drift apart.
  if (out.chunk_records == 0) out.chunk_records = 1;
  if (const Json* t = j.find("threads")) out.threads = t->as_size();
  if (const Json* m = j.find("metrics")) out.metrics = m->as_bool();
  if (const Json* r = j.find("resume")) out.resume = r->as_bool();
  return out;
}

WorkerOutcome run_worker(const WorkerSpec& spec,
                         std::size_t max_new_records) {
  if (spec.shard_count == 0)
    throw std::invalid_argument("run_worker: shard_count must be >= 1");
  if (spec.shard_id >= spec.shard_count)
    throw std::invalid_argument("run_worker: shard_id out of range");
  if (spec.output.empty())
    throw std::invalid_argument("run_worker: empty output stem");
  if (spec.evaluator.is_ground_truth() && spec.evaluator.frames_per_point == 0)
    throw std::invalid_argument(
        "run_worker: ground-truth evaluator needs frames_per_point >= 1");

  const ScenarioGrid grid = spec.grid.build();
  const ShardPlan plan(grid.size(), spec.shard_count, spec.strategy);
  const ShardIdentity id{spec.shard_id, spec.shard_count, spec.strategy,
                         grid.size(),
                         grid_fingerprint(spec.grid, spec.evaluator)};
  // Single normalization point for the chunk size: the sink's checkpoint
  // cadence and the worker loop below share this exact value.
  const std::size_t chunk = std::max<std::size_t>(spec.chunk_records, 1);
  const SinkOptions options{spec.output, chunk,
                            spec.evaluator.is_ground_truth(), spec.metrics};

  StreamingSink::Recovery recovery;
  const StreamingSink::Recovery* recovered = nullptr;
  if (spec.resume) {
    recovery = StreamingSink::scan_existing(options, id, plan);
    // The identity check must run whenever a checkpoint exists — not only
    // when the scan recovered records. A spec mismatch (e.g. resuming a
    // ground-truth stream under the analytical default) makes every
    // existing record look invalid, so gating on recovery.records would
    // skip the refusal and silently truncate the whole prior stream.
    const std::string partial_path = spec.output + ".partial.json";
    std::error_code ec;
    if (recovery.records > 0 ||
        std::filesystem::exists(partial_path, ec)) {
      const PartialReduction prior = check_resume_identity(partial_path, id);
      // Carry the prior legs' throughput stats into the rebuilt reduction;
      // set_stats below then accumulates instead of clobbering, so a
      // resume that evaluates nothing new cannot zero the recorded wall
      // time.
      recovery.partial.wall_ms = prior.wall_ms;
      recovery.partial.threads = prior.threads;
    }
    recovered = &recovery;
  }
  StreamingSink sink(options, id, recovered);

  // Worker pool per the BatchOptions convention; chunks always land in
  // ascending index order regardless of thread count (the per-point seed
  // depends only on the global index, so threading never changes records).
  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = nullptr;
  if (spec.threads == 0)
    pool = &ThreadPool::shared();
  else if (spec.threads > 1)
    pool = (own_pool = std::make_unique<ThreadPool>(spec.threads)).get();

  const core::XrPerformanceModel model;
  const std::size_t shard_n = plan.shard_size(spec.shard_id);

  WorkerOutcome out;
  out.resumed_records = sink.records_written();
  out.jsonl_path = sink.jsonl_path();
  out.partial_path = sink.partial_path();

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t done = sink.records_written();
  while (done < shard_n) {
    std::size_t m = std::min(chunk, shard_n - done);
    if (max_new_records)
      m = std::min(m, max_new_records - out.evaluated_records);
    if (m == 0) break;

    const auto evaluate = [&](std::size_t j) {
      const std::size_t g = plan.global_index(spec.shard_id, done + j);
      return evaluate_point(spec.evaluator, model, grid.at(g), g);
    };
    std::vector<EvaluatedPoint> points;
    if (pool) {
      points = pool->map(m, evaluate);
    } else {
      points.reserve(m);
      for (std::size_t j = 0; j < m; ++j) points.push_back(evaluate(j));
    }
    for (std::size_t j = 0; j < m; ++j)
      sink.append(plan.global_index(spec.shard_id, done + j), points[j]);

    done += m;
    out.evaluated_records += m;
    if (max_new_records && out.evaluated_records >= max_new_records) break;
  }
  const auto t1 = std::chrono::steady_clock::now();
  // Accumulate across resume legs; a leg that evaluated nothing keeps the
  // prior thread count (there is no meaningful "this run" value for it).
  const std::size_t leg_threads = pool ? pool->size() : 1;
  sink.set_stats(
      sink.partial().wall_ms +
          std::chrono::duration<double, std::milli>(t1 - t0).count(),
      out.evaluated_records > 0 ? leg_threads : sink.partial().threads);

  out.shard_records = done;
  out.complete = done == shard_n;
  out.partial = sink.finalize();
  return out;
}

}  // namespace xr::runtime::shard
