#include "runtime/shard/worker.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/framework.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "runtime/thread_pool.h"

namespace xr::runtime::shard {

namespace {

// Worker liveness/progress telemetry — the signals the future elastic
// coordinator needs to reassign a stalled shard's lease: the heartbeat
// gauge advances once per flushed chunk, and records_done against
// shard_size is the progress fraction.
struct WorkerMetrics {
  obs::Counter runs{"shard.worker.runs"};
  obs::Counter records_streamed{"shard.worker.records_streamed"};
  obs::Counter resume_events{"shard.worker.resume_events"};
  obs::Counter chunks{"shard.worker.chunks"};
  obs::Gauge heartbeat_unix_ms{"shard.worker.heartbeat_unix_ms"};
  obs::Gauge records_done{"shard.worker.records_done"};
  obs::Gauge shard_size{"shard.worker.shard_size"};
  obs::Gauge shard_id{"shard.worker.shard_id"};

  static WorkerMetrics& get() {
    static WorkerMetrics m;
    return m;
  }

  void beat(std::size_t done) {
    records_done.set(double(done));
    heartbeat_unix_ms.set(double(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count()));
  }
};

/// Resume guard: records on disk imply a flushed checkpoint, and the
/// checkpoint carries the full shard identity (partition + sweep
/// fingerprint, which covers the grid *and* the evaluator). An index
/// sequence alone cannot tell two same-shape sweeps apart, so a missing or
/// mismatched checkpoint means the stream belongs to some other sweep —
/// refuse rather than silently mix them. Returns the prior checkpoint so
/// the caller can carry its throughput stats forward.
PartialReduction check_resume_identity(const std::string& partial_path,
                                       const ShardIdentity& id) {
  std::string text;
  try {
    text = read_text_file(partial_path);
  } catch (const std::exception&) {
    throw std::runtime_error(
        "run_worker: cannot resume — record stream exists but checkpoint " +
        partial_path + " is missing; delete the outputs to restart");
  }
  PartialReduction prior = PartialReduction::from_json(Json::parse(text));
  const ShardIdentity& existing = prior.identity();
  if (existing.shard_id != id.shard_id ||
      existing.shard_count != id.shard_count ||
      existing.strategy != id.strategy ||
      existing.grid_size != id.grid_size ||
      existing.grid_fingerprint != id.grid_fingerprint)
    throw std::runtime_error(
        "run_worker: cannot resume — " + partial_path +
        " was written for a different grid, evaluator, or partition; "
        "delete the outputs (or restore the original spec) to proceed");
  return prior;
}

/// Sequential reader over this shard's pass-1 (coarse) record stream for
/// the hybrid pass-2 leg, format-agnostic through RecordSource. The coarse
/// stream enumerates exactly the same global indices in the same order as
/// the pass-2 stream (same shard of the same plan), so the reader only
/// ever moves forward one record per local index.
class CoarseStream {
 public:
  explicit CoarseStream(const std::string& stem)
      : source_(open_record_source(resolve(stem))) {}

  void skip(std::size_t records) {
    ParsedRecord r;
    while (records-- > 0) next(r);
  }

  void next(ParsedRecord& r) {
    if (!source_->next(r))
      throw std::runtime_error(
          "run_worker: coarse record stream " + source_->path() +
          " ended early — the coarse pass must be complete before the "
          "refinement pass");
  }

 private:
  /// Autodetect the coarse pass's format from which record file exists at
  /// the stem; a stem carrying both encodings is ambiguous and refused.
  static std::string resolve(const std::string& stem) {
    const std::string jsonl = record_path(stem, RecordFormat::kJsonl);
    const std::string binary = record_path(stem, RecordFormat::kBinary);
    std::error_code ec;
    const bool has_jsonl = std::filesystem::exists(jsonl, ec);
    const bool has_binary = std::filesystem::exists(binary, ec);
    if (has_jsonl && has_binary)
      throw std::runtime_error(
          "run_worker: coarse stem " + stem +
          " carries both a .jsonl and a .xrb stream — remove the stale one");
    if (!has_jsonl && !has_binary)
      throw std::runtime_error("run_worker: cannot open coarse record stream " +
                               jsonl + " (or " + binary + ")");
    return has_binary ? binary : jsonl;
  }

  std::unique_ptr<RecordSource> source_;
};

/// Pass-2 guard: the coarse stream this leg copies from must be this
/// exact shard of this exact coarse sweep, and complete. The checkpoint
/// carries everything needed to verify that.
void check_coarse_complete(const std::string& partial_path,
                           const ShardIdentity& coarse_id,
                           std::size_t shard_n) {
  std::string text;
  try {
    text = read_text_file(partial_path);
  } catch (const std::exception&) {
    throw std::runtime_error(
        "run_worker: refinement pass needs the coarse checkpoint " +
        partial_path + " — run the coarse pass (adaptive_pass 1) first");
  }
  const PartialReduction prior =
      PartialReduction::from_json(Json::parse(text));
  const ShardIdentity& existing = prior.identity();
  if (existing.shard_id != coarse_id.shard_id ||
      existing.shard_count != coarse_id.shard_count ||
      existing.strategy != coarse_id.strategy ||
      existing.grid_size != coarse_id.grid_size ||
      existing.grid_fingerprint != coarse_id.grid_fingerprint)
    throw std::runtime_error(
        "run_worker: " + partial_path +
        " does not belong to this shard's coarse pass (different grid, "
        "evaluator, adaptive block, or partition)");
  if (prior.evaluated() != shard_n)
    throw std::runtime_error(
        "run_worker: coarse shard behind " + partial_path +
        " is incomplete (" + std::to_string(prior.evaluated()) + " of " +
        std::to_string(shard_n) +
        " records) — finish the coarse pass before refining");
}

}  // namespace

WorkerSpec WorkerSpec::from_request(const runtime::SweepRequest& request,
                                    std::size_t shard_id,
                                    std::size_t shard_count,
                                    ShardStrategy strategy, std::string output,
                                    bool resume) {
  WorkerSpec spec;
  spec.grid = request.grid;
  spec.evaluator = request.evaluator;
  spec.shard_id = shard_id;
  spec.shard_count = shard_count;
  spec.strategy = strategy;
  spec.output = std::move(output);
  spec.format = request.execution.format;
  spec.chunk_records = request.execution.chunk_records;
  spec.threads = request.execution.threads;
  spec.grain = request.execution.grain;
  spec.metrics = request.execution.metrics;
  spec.resume = resume;
  spec.adaptive = request.adaptive;
  return spec;
}

Json WorkerSpec::to_json() const {
  Json j = Json::object();
  j.set("grid", grid.to_json());
  j.set("evaluator", evaluator.to_json());
  j.set("shard_id", shard_id);
  j.set("shard_count", shard_count);
  j.set("strategy", strategy_name(strategy));
  j.set("output", output);
  // Only the non-default encoding is serialized, mirroring ExecutionSpec:
  // existing jsonl spec documents stay byte-stable.
  if (format == RecordFormat::kBinary) j.set("format", format_name(format));
  j.set("chunk_records", chunk_records);
  j.set("threads", threads);
  if (grain != 0) j.set("grain", grain);
  j.set("metrics", metrics);
  j.set("resume", resume);
  if (adaptive) {
    j.set("adaptive", adaptive->to_json());
    j.set("adaptive_pass", adaptive_pass);
    if (!refine.empty()) {
      Json idx = Json::array();
      for (std::size_t i : refine) idx.push_back(i);
      j.set("refine", std::move(idx));
    }
    if (!coarse_input.empty()) j.set("coarse_input", coarse_input);
  }
  return j;
}

WorkerSpec WorkerSpec::from_json(const Json& j) {
  WorkerSpec out;
  out.grid = GridSpec::from_json(j.at("grid"));
  if (const Json* e = j.find("evaluator"))
    out.evaluator = EvaluatorSpec::from_json(*e);
  out.shard_id = j.at("shard_id").as_size();
  out.shard_count = j.at("shard_count").as_size();
  if (out.shard_count == 0)
    throw std::invalid_argument(
        "WorkerSpec: shard_count must be >= 1 (got 0)");
  if (const Json* s = j.find("strategy"))
    out.strategy = strategy_from_name(s->as_string());
  out.output = j.at("output").as_string();
  if (const Json* f = j.find("format"))
    out.format = format_from_name(f->as_string());
  if (const Json* c = j.find("chunk_records"))
    out.chunk_records = c->as_size();
  // Normalize once: 0 would otherwise mean "flush every record" to the
  // sink but "chunks of 1" to the worker loop only by way of two separate
  // clamps that could drift apart.
  if (out.chunk_records == 0) out.chunk_records = 1;
  if (const Json* t = j.find("threads")) out.threads = t->as_size();
  if (const Json* g = j.find("grain")) out.grain = g->as_size();
  if (const Json* m = j.find("metrics")) out.metrics = m->as_bool();
  if (const Json* r = j.find("resume")) out.resume = r->as_bool();
  if (const Json* a = j.find("adaptive"))
    out.adaptive = runtime::AdaptiveSpec::from_json(*a);
  // The leg fields parse unconditionally: a document carrying them with a
  // missing (or misspelled) adaptive block must reach run_worker's
  // loud-failure guard, not silently run a full single-fidelity sweep.
  if (const Json* p = j.find("adaptive_pass"))
    out.adaptive_pass = p->as_size();
  if (const Json* rf = j.find("refine"))
    for (const Json& v : rf->as_array()) out.refine.push_back(v.as_size());
  if (const Json* c = j.find("coarse_input"))
    out.coarse_input = c->as_string();
  return out;
}

WorkerOutcome run_worker(const WorkerSpec& spec,
                         std::size_t max_new_records) {
  if (spec.shard_count == 0)
    throw std::invalid_argument("run_worker: shard_count must be >= 1");
  if (spec.shard_id >= spec.shard_count)
    throw std::invalid_argument("run_worker: shard_id out of range");
  if (spec.output.empty())
    throw std::invalid_argument("run_worker: empty output stem");
  if (spec.evaluator.is_ground_truth() && spec.evaluator.frames_per_point == 0)
    throw std::invalid_argument(
        "run_worker: ground-truth evaluator needs frames_per_point >= 1");
  if (!spec.adaptive &&
      (spec.adaptive_pass != 0 || !spec.refine.empty() ||
       !spec.coarse_input.empty()))
    throw std::invalid_argument(
        "run_worker: adaptive_pass/refine/coarse_input require an adaptive "
        "block in the spec");
  if (spec.adaptive) {
    if (!spec.evaluator.is_ground_truth())
      throw std::invalid_argument(
          "run_worker: adaptive fidelity requires the ground_truth "
          "evaluator");
    if (spec.adaptive_pass != 1 && spec.adaptive_pass != 2)
      throw std::invalid_argument(
          "run_worker: adaptive specs must pick a leg — adaptive_pass 1 "
          "(coarse) or 2 (fine/refine)");
    spec.adaptive->validate();
    // A coarse leg always covers its whole shard; silently ignoring a
    // refinement set would run the full sweep as if the restriction
    // applied.
    if (spec.adaptive_pass == 1 &&
        (!spec.refine.empty() || !spec.coarse_input.empty()))
      throw std::invalid_argument(
          "run_worker: refine/coarse_input belong to the fine leg "
          "(adaptive_pass 2); the coarse leg evaluates its whole shard");
  }
  const bool hybrid = spec.adaptive && spec.adaptive_pass == 2;

  const ScenarioGrid grid = spec.grid.build();

  // The evaluator this leg actually runs, and the sweep fingerprint its
  // stream carries. A coarse leg is an ordinary sweep at coarse fidelity
  // (pass-1 seeds); a fine leg's hybrid stream is stamped with the
  // adaptive fingerprint so it can never be resumed as — or merged with —
  // either single-fidelity sweep.
  EvaluatorSpec eval = spec.evaluator;
  std::uint64_t fingerprint = grid_fingerprint(spec.grid, spec.evaluator);
  if (spec.adaptive) {
    if (spec.adaptive_pass == 1) {
      eval = runtime::coarse_evaluator(spec.evaluator, *spec.adaptive);
      fingerprint = grid_fingerprint(spec.grid, eval);
    } else {
      eval = runtime::fine_evaluator(spec.evaluator, *spec.adaptive);
      fingerprint = runtime::adaptive_fingerprint(spec.grid, spec.evaluator,
                                                  *spec.adaptive);
    }
  }
  if (hybrid) {
    for (std::size_t k = 0; k < spec.refine.size(); ++k) {
      if (spec.refine[k] >= grid.size())
        throw std::invalid_argument(
            "run_worker: refine index out of range for the grid");
      if (k > 0 && spec.refine[k] <= spec.refine[k - 1])
        throw std::invalid_argument(
            "run_worker: refine indices must be sorted ascending and "
            "unique");
    }
  }

  const ShardPlan plan(grid.size(), spec.shard_count, spec.strategy);
  const ShardIdentity id{spec.shard_id, spec.shard_count, spec.strategy,
                         grid.size(), fingerprint};
  // Single normalization point for the chunk size: the sink's checkpoint
  // cadence and the worker loop below share this exact value.
  const std::size_t chunk = std::max<std::size_t>(spec.chunk_records, 1);
  SinkOptions options;
  options.output_stem = spec.output;
  options.format = spec.format;
  options.chunk_records = chunk;
  options.ground_truth = spec.evaluator.is_ground_truth();
  options.metrics_only = spec.metrics;

  StreamingSink::Recovery recovery;
  const StreamingSink::Recovery* recovered = nullptr;
  if (spec.resume) {
    recovery = StreamingSink::scan_existing(options, id, plan);
    // The identity check must run whenever a checkpoint exists — not only
    // when the scan recovered records. A spec mismatch (e.g. resuming a
    // ground-truth stream under the analytical default) makes every
    // existing record look invalid, so gating on recovery.records would
    // skip the refusal and silently truncate the whole prior stream.
    const std::string partial_path = spec.output + ".partial.json";
    std::error_code ec;
    if (recovery.records > 0 ||
        std::filesystem::exists(partial_path, ec)) {
      const PartialReduction prior = check_resume_identity(partial_path, id);
      // Carry the prior legs' throughput stats into the rebuilt reduction;
      // set_stats below then accumulates instead of clobbering, so a
      // resume that evaluates nothing new cannot zero the recorded wall
      // time.
      recovery.partial.wall_ms = prior.wall_ms;
      recovery.partial.threads = prior.threads;
    }
    recovered = &recovery;
  }
  StreamingSink sink(options, id, recovered);

  // Worker pool per the BatchOptions convention; chunks always land in
  // ascending index order regardless of thread count (the per-point seed
  // depends only on the global index, so threading never changes records).
  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = nullptr;
  if (spec.threads == 0)
    pool = &ThreadPool::shared();
  else if (spec.threads > 1)
    pool = (own_pool = std::make_unique<ThreadPool>(spec.threads)).get();

  const core::XrPerformanceModel model;
  const std::size_t shard_n = plan.shard_size(spec.shard_id);

  // Hybrid (pass-2) leg: open this shard's coarse stream when any of its
  // indices fall outside the refinement set (those records are copied, not
  // re-evaluated), after verifying the coarse leg really completed.
  const auto refined = [&](std::size_t g) {
    return std::binary_search(spec.refine.begin(), spec.refine.end(), g);
  };
  std::unique_ptr<CoarseStream> coarse;
  if (hybrid) {
    bool needs_coarse = false;
    for (std::size_t l = 0; l < shard_n && !needs_coarse; ++l)
      needs_coarse = !refined(plan.global_index(spec.shard_id, l));
    if (needs_coarse) {
      if (spec.coarse_input.empty())
        throw std::invalid_argument(
            "run_worker: refinement pass needs coarse_input — this shard "
            "has indices outside the refinement set to copy");
      const ShardIdentity coarse_id{
          spec.shard_id, spec.shard_count, spec.strategy, grid.size(),
          grid_fingerprint(spec.grid, runtime::coarse_evaluator(
                                          spec.evaluator, *spec.adaptive))};
      check_coarse_complete(spec.coarse_input + ".partial.json", coarse_id,
                            shard_n);
      coarse = std::make_unique<CoarseStream>(spec.coarse_input);
    }
  }

  WorkerOutcome out;
  out.resumed_records = sink.records_written();
  out.records_path = sink.records_path();
  out.partial_path = sink.partial_path();

  const obs::Span worker_span("worker.run");
  WorkerMetrics& metrics = WorkerMetrics::get();
  metrics.runs.add();
  metrics.shard_id.set(double(spec.shard_id));
  metrics.shard_size.set(double(shard_n));
  if (out.resumed_records > 0) metrics.resume_events.add();

  const auto t0 = std::chrono::steady_clock::now();
  std::size_t done = sink.records_written();
  metrics.beat(done);
  // The coarse stream tracks the output stream line for line; a resumed
  // leg starts past the already-delivered prefix.
  if (coarse) coarse->skip(done);
  while (done < shard_n) {
    std::size_t m = std::min(chunk, shard_n - done);
    if (max_new_records)
      m = std::min(m, max_new_records - out.evaluated_records);
    if (m == 0) break;

    // Pull this chunk's coarse records up front — the stream read (decode
    // included) is strictly sequential; evaluation then runs on the pool.
    std::vector<ParsedRecord> coarse_records;
    if (coarse) {
      coarse_records.resize(m);
      for (std::size_t j = 0; j < m; ++j) coarse->next(coarse_records[j]);
    }

    const auto evaluate = [&](std::size_t j) {
      const std::size_t g = plan.global_index(spec.shard_id, done + j);
      if (hybrid && !refined(g)) {
        const ParsedRecord& r = coarse_records[j];
        if (r.index != g)
          throw std::runtime_error(
              "run_worker: coarse record stream misaligned (expected index " +
              std::to_string(g) + ", found " + std::to_string(r.index) + ")");
        if (!r.gt)
          throw std::runtime_error(
              "run_worker: coarse record for index " + std::to_string(g) +
              " carries no ground-truth measurement");
        if (r.slim != spec.metrics)
          throw std::runtime_error(
              "run_worker: coarse record shape (slim vs full) disagrees "
              "with this leg's metrics mode — rerun the coarse pass with "
              "the same execution.metrics");
        return EvaluatedPoint{r.report, r.gt};
      }
      return evaluate_point(eval, model, grid.at(g), g);
    };
    std::vector<EvaluatedPoint> points;
    if (pool) {
      points = pool->map(m, evaluate, spec.grain);
    } else {
      points.reserve(m);
      for (std::size_t j = 0; j < m; ++j) points.push_back(evaluate(j));
    }
    for (std::size_t j = 0; j < m; ++j)
      sink.append(plan.global_index(spec.shard_id, done + j), points[j]);

    done += m;
    out.evaluated_records += m;
    metrics.chunks.add();
    metrics.records_streamed.add(m);
    metrics.beat(done);
    if (max_new_records && out.evaluated_records >= max_new_records) break;
  }
  const auto t1 = std::chrono::steady_clock::now();
  // Accumulate across resume legs; a leg that evaluated nothing keeps the
  // prior thread count (there is no meaningful "this run" value for it).
  const std::size_t leg_threads = pool ? pool->size() : 1;
  sink.set_stats(
      sink.partial().wall_ms +
          std::chrono::duration<double, std::milli>(t1 - t0).count(),
      out.evaluated_records > 0 ? leg_threads : sink.partial().threads);

  out.shard_records = done;
  out.complete = done == shard_n;
  out.partial = sink.finalize();
  return out;
}

}  // namespace xr::runtime::shard
