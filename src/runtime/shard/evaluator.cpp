#include "runtime/shard/evaluator.h"

#include <cmath>
#include <stdexcept>

#include "math/rng.h"
#include "xrsim/ground_truth.h"

namespace xr::runtime::shard {

const char* evaluator_name(EvaluatorKind k) noexcept {
  return k == EvaluatorKind::kAnalytical ? "analytical" : "ground_truth";
}

EvaluatorKind evaluator_from_name(const std::string& name) {
  if (name == "analytical") return EvaluatorKind::kAnalytical;
  if (name == "ground_truth") return EvaluatorKind::kGroundTruth;
  throw std::invalid_argument("EvaluatorSpec: unknown evaluator '" + name +
                              "' (expected 'analytical' or 'ground_truth')");
}

Json EvaluatorSpec::to_json() const {
  Json j = Json::object();
  j.set("kind", evaluator_name(kind));
  if (kind == EvaluatorKind::kGroundTruth) {
    j.set("seed", format_hex64(seed));
    j.set("frames_per_point", frames_per_point);
    // Emitted only when engaged so single-pass documents — and their sweep
    // fingerprints — are byte-identical to the pre-adaptive era.
    if (pass != 0) j.set("pass", pass);
  }
  return j;
}

EvaluatorSpec EvaluatorSpec::from_json(const Json& j) {
  EvaluatorSpec out;
  out.kind = evaluator_from_name(j.at("kind").as_string());
  if (out.kind == EvaluatorKind::kGroundTruth) {
    if (const Json* s = j.find("seed")) out.seed = parse_hex64(s->as_string());
    if (const Json* f = j.find("frames_per_point"))
      out.frames_per_point = f->as_size();
    if (const Json* p = j.find("pass")) out.pass = p->as_size();
    if (out.frames_per_point == 0)
      throw std::invalid_argument(
          "EvaluatorSpec: frames_per_point must be >= 1 (a zero-frame "
          "ground-truth sweep measures nothing)");
  }
  return out;
}

std::uint64_t point_seed(std::uint64_t sweep_seed, std::size_t global_index,
                         std::size_t pass) noexcept {
  // Golden-ratio offset keeps index 0 distinct from the raw sweep seed;
  // SplitMix64 scrambles the low-entropy index into a full 64-bit seed.
  // The pass term adds 0 for pass 0, so single-pass sweeps reproduce the
  // historical derivation bit for bit.
  std::uint64_t state =
      sweep_seed + 0x9E3779B97F4A7C15ull * (std::uint64_t(global_index) + 1) +
      0x94D049BB133111EBull * std::uint64_t(pass);
  return math::splitmix64(state);
}

EvaluatedPoint evaluate_point(const EvaluatorSpec& spec,
                              const core::XrPerformanceModel& model,
                              const core::ScenarioConfig& scenario,
                              std::size_t global_index) {
  EvaluatedPoint out;
  out.report = model.evaluate(scenario);
  if (spec.kind != EvaluatorKind::kGroundTruth) return out;
  if (spec.frames_per_point == 0)
    throw std::invalid_argument(
        "evaluate_point: ground-truth evaluator needs frames_per_point >= 1");

  xrsim::GroundTruthConfig cfg;
  cfg.seed = point_seed(spec.seed, global_index, spec.pass);
  cfg.frames = spec.frames_per_point;
  // Sweep evaluators only consume the running means; skipping the
  // per-frame records avoids one vector churn per grid point.
  cfg.record_frames = false;
  const xrsim::GroundTruthSimulator sim(cfg);
  const auto gt = sim.run(scenario);

  GtMeasurement m;
  m.seed = cfg.seed;
  m.frames = spec.frames_per_point;
  m.mean_latency_ms = gt.mean_latency_ms();
  m.mean_energy_mj = gt.mean_energy_mj();
  m.latency_error_pct = 100.0 *
                        std::fabs(out.report.latency.total - m.mean_latency_ms) /
                        m.mean_latency_ms;
  m.energy_error_pct = 100.0 *
                       std::fabs(out.report.energy.total - m.mean_energy_mj) /
                       m.mean_energy_mj;
  out.gt = m;
  return out;
}

}  // namespace xr::runtime::shard
