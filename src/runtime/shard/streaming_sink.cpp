#include "runtime/shard/streaming_sink.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/serialize.h"
#include "obs/registry.h"

namespace xr::runtime::shard {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const std::string& text) {
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;

}  // namespace

std::uint64_t grid_fingerprint(const GridSpec& spec) {
  return fnv1a(kFnvOffsetBasis, spec.to_json().dump());
}

std::uint64_t fingerprint_chain(std::uint64_t h,
                                const std::string& document) {
  h ^= 0x1F;
  h *= 1099511628211ull;
  return fnv1a(h, document);
}

std::uint64_t grid_fingerprint(const GridSpec& spec,
                               const EvaluatorSpec& evaluator) {
  return fingerprint_chain(grid_fingerprint(spec),
                           evaluator.to_json().dump());
}

void GtAggregate::add(const GtMeasurement& m) {
  ++count;
  latency_ms_sum.add(m.mean_latency_ms);
  energy_mj_sum.add(m.mean_energy_mj);
  latency_error_pct_sum.add(m.latency_error_pct);
  energy_error_pct_sum.add(m.energy_error_pct);
}

void GtAggregate::merge(const GtAggregate& other) {
  count += other.count;
  latency_ms_sum.merge(other.latency_ms_sum);
  energy_mj_sum.merge(other.energy_mj_sum);
  latency_error_pct_sum.merge(other.latency_error_pct_sum);
  energy_error_pct_sum.merge(other.energy_error_pct_sum);
}

bool GtAggregate::same_values(const GtAggregate& other) const {
  return count == other.count &&
         latency_ms_sum.same_value(other.latency_ms_sum) &&
         energy_mj_sum.same_value(other.energy_mj_sum) &&
         latency_error_pct_sum.same_value(other.latency_error_pct_sum) &&
         energy_error_pct_sum.same_value(other.energy_error_pct_sum);
}

Json GtAggregate::to_json() const {
  Json j = Json::object();
  j.set("count", count);
  // Derived means first (informational; recomputed on load), exact sums
  // after (the merge-law identity).
  j.set("mean_latency_ms", mean_latency_ms());
  j.set("mean_energy_mj", mean_energy_mj());
  j.set("mean_latency_error_pct", mean_latency_error_pct());
  j.set("mean_energy_error_pct", mean_energy_error_pct());
  j.set("latency_ms_sum", latency_ms_sum.to_json());
  j.set("energy_mj_sum", energy_mj_sum.to_json());
  j.set("latency_error_pct_sum", latency_error_pct_sum.to_json());
  j.set("energy_error_pct_sum", energy_error_pct_sum.to_json());
  return j;
}

GtAggregate GtAggregate::from_json(const Json& j) {
  GtAggregate out;
  out.count = j.at("count").as_size();
  out.latency_ms_sum = ExactSum::from_json(j.at("latency_ms_sum"));
  out.energy_mj_sum = ExactSum::from_json(j.at("energy_mj_sum"));
  out.latency_error_pct_sum =
      ExactSum::from_json(j.at("latency_error_pct_sum"));
  out.energy_error_pct_sum = ExactSum::from_json(j.at("energy_error_pct_sum"));
  return out;
}

PartialReduction::PartialReduction(ShardIdentity id, bool ground_truth)
    : id_(id) {
  if (ground_truth) gt_.emplace();
}

void PartialReduction::add(std::size_t global_index, double latency_ms,
                           double energy_mj, const GtMeasurement* gt) {
  if (evaluated_ > 0 && global_index <= last_index_)
    throw std::invalid_argument(
        "PartialReduction: indices must arrive in ascending order");
  if (gt_.has_value() != (gt != nullptr))
    throw std::invalid_argument(
        gt_ ? "PartialReduction: ground-truth reduction fed a record "
              "without a measurement"
            : "PartialReduction: analytical reduction fed a ground-truth "
              "measurement");
  last_index_ = global_index;
  if (gt) gt_->add(*gt);

  if (evaluated_ == 0) {
    best_latency_index_ = best_energy_index_ = global_index;
    min_latency_ms_ = max_latency_ms_ = latency_ms;
    min_energy_mj_ = max_energy_mj_ = energy_mj;
  } else {
    // Strict < keeps the first occurrence of the minimum — the same index
    // BatchEvaluator's serial reduction scan selects.
    if (latency_ms < min_latency_ms_) {
      min_latency_ms_ = latency_ms;
      best_latency_index_ = global_index;
    }
    if (latency_ms > max_latency_ms_) max_latency_ms_ = latency_ms;
    if (energy_mj < min_energy_mj_) {
      min_energy_mj_ = energy_mj;
      best_energy_index_ = global_index;
    }
    if (energy_mj > max_energy_mj_) max_energy_mj_ = energy_mj;
  }
  ++evaluated_;

  // Incremental 2-D Pareto maintenance. A new point is excluded iff some
  // frontier point has latency <= and energy <= (ties lose to the earlier
  // index, which is always the incumbent since indices ascend). Among
  // frontier keys <= latency the minimal energy sits at the greatest key.
  auto after = frontier_.upper_bound(latency_ms);
  if (after != frontier_.begin()) {
    const auto prev = std::prev(after);
    if (prev->second.first <= energy_mj) return;  // dominated
  }
  // The new point dominates every frontier entry with latency >= and
  // energy >= it; those form a contiguous run starting at the first key
  // >= latency (energies decrease along the key order).
  auto it = frontier_.lower_bound(latency_ms);
  while (it != frontier_.end() && it->second.first >= energy_mj)
    it = frontier_.erase(it);
  frontier_[latency_ms] = {energy_mj, global_index};
}

std::vector<ParetoPoint> PartialReduction::pareto() const {
  std::vector<ParetoPoint> out;
  out.reserve(frontier_.size());
  for (const auto& [lat, rest] : frontier_)
    out.push_back(ParetoPoint{rest.second, lat, rest.first});
  return out;
}

namespace {

Json identity_to_json(const ShardIdentity& id) {
  Json j = Json::object();
  j.set("id", id.shard_id);
  j.set("count", id.shard_count);
  j.set("strategy", strategy_name(id.strategy));
  j.set("grid_size", id.grid_size);
  j.set("grid_fingerprint", format_hex64(id.grid_fingerprint));
  return j;
}

ShardIdentity identity_from_json(const Json& j) {
  ShardIdentity id;
  id.shard_id = j.at("id").as_size();
  id.shard_count = j.at("count").as_size();
  id.strategy = strategy_from_name(j.at("strategy").as_string());
  id.grid_size = j.at("grid_size").as_size();
  id.grid_fingerprint = parse_hex64(j.at("grid_fingerprint").as_string());
  return id;
}

constexpr const char* kPartialSchema = "xr.sweep.partial.v1";

}  // namespace

Json PartialReduction::to_json() const {
  Json j = Json::object();
  j.set("schema", kPartialSchema);
  j.set("shard", identity_to_json(id_));
  j.set("evaluated", evaluated_);
  if (evaluated_ > 0) {
    j.set("last_index", last_index_);
    j.set("best_latency_index", best_latency_index_);
    j.set("min_latency_ms", min_latency_ms_);
    j.set("max_latency_ms", max_latency_ms_);
    j.set("best_energy_index", best_energy_index_);
    j.set("min_energy_mj", min_energy_mj_);
    j.set("max_energy_mj", max_energy_mj_);
    Json pareto = Json::array();
    for (const auto& [lat, rest] : frontier_) {
      Json p = Json::array();
      p.push_back(rest.second);
      p.push_back(lat);
      p.push_back(rest.first);
      pareto.push_back(std::move(p));
    }
    j.set("pareto", std::move(pareto));
  }
  if (gt_) j.set("gt", gt_->to_json());
  Json stats = Json::object();
  stats.set("wall_ms", wall_ms);
  stats.set("threads", threads);
  j.set("stats", std::move(stats));
  return j;
}

PartialReduction PartialReduction::from_json(const Json& j) {
  if (j.at("schema").as_string() != kPartialSchema)
    throw std::invalid_argument("PartialReduction: unknown schema '" +
                                j.at("schema").as_string() + "'");
  PartialReduction out(identity_from_json(j.at("shard")));
  out.evaluated_ = j.at("evaluated").as_size();
  if (out.evaluated_ > 0) {
    out.last_index_ = j.at("last_index").as_size();
    out.best_latency_index_ = j.at("best_latency_index").as_size();
    out.min_latency_ms_ = j.at("min_latency_ms").as_double();
    out.max_latency_ms_ = j.at("max_latency_ms").as_double();
    out.best_energy_index_ = j.at("best_energy_index").as_size();
    out.min_energy_mj_ = j.at("min_energy_mj").as_double();
    out.max_energy_mj_ = j.at("max_energy_mj").as_double();
    for (const Json& p : j.at("pareto").as_array()) {
      const auto& triple = p.as_array();
      if (triple.size() != 3)
        throw std::invalid_argument("PartialReduction: bad pareto entry");
      out.frontier_[triple[1].as_double()] = {triple[2].as_double(),
                                              triple[0].as_size()};
    }
  }
  if (const Json* g = j.find("gt")) out.gt_ = GtAggregate::from_json(*g);
  const Json& stats = j.at("stats");
  out.wall_ms = stats.at("wall_ms").as_double();
  out.threads = stats.at("threads").as_size();
  return out;
}

// ---- record codec ------------------------------------------------------

std::string record_line(std::size_t global_index,
                        const core::PerformanceReport& report,
                        const GtMeasurement* gt, bool metrics_only) {
  Json j = Json::object();
  j.set("i", global_index);
  if (metrics_only) {
    // Slim shape: exactly the totals the reduction consumes.
    j.set("latency_ms", report.latency.total);
    j.set("energy_mj", report.energy.total);
  } else {
    j.set("latency", core::to_json(report.latency));
    j.set("energy", core::to_json(report.energy));
    j.set("sensors", core::to_json(report.sensors));
  }
  if (gt) {
    Json g = Json::object();
    g.set("seed", format_hex64(gt->seed));
    g.set("frames", gt->frames);
    g.set("mean_latency_ms", gt->mean_latency_ms);
    g.set("mean_energy_mj", gt->mean_energy_mj);
    g.set("latency_error_pct", gt->latency_error_pct);
    g.set("energy_error_pct", gt->energy_error_pct);
    j.set("gt", std::move(g));
  }
  return j.dump();
}

ParsedRecord parse_record_line(std::string_view line) {
  const Json j = Json::parse(line);
  ParsedRecord out;
  out.index = j.at("i").as_size();
  if (j.find("latency")) {
    // Full shape: rebuild the report through the core breakdown codecs.
    out.report.latency = core::latency_breakdown_from_json(j.at("latency"));
    out.report.energy = core::energy_breakdown_from_json(j.at("energy"));
    out.report.sensors = core::sensors_from_json(j.at("sensors"));
  } else {
    // Slim (metrics-only) shape: only the totals exist.
    out.slim = true;
    out.report.latency.total = j.at("latency_ms").as_double();
    out.report.energy.total = j.at("energy_mj").as_double();
  }
  if (const Json* g = j.find("gt")) {
    GtMeasurement m;
    m.seed = parse_hex64(g->at("seed").as_string());
    m.frames = g->at("frames").as_size();
    m.mean_latency_ms = g->at("mean_latency_ms").as_double();
    m.mean_energy_mj = g->at("mean_energy_mj").as_double();
    m.latency_error_pct = g->at("latency_error_pct").as_double();
    m.energy_error_pct = g->at("energy_error_pct").as_double();
    out.gt = m;
  }
  return out;
}

// ---- the sink ----------------------------------------------------------

StreamingSink::Recovery StreamingSink::scan_existing(
    const SinkOptions& options, const ShardIdentity& id,
    const ShardPlan& plan) {
  Recovery rec;
  rec.partial = PartialReduction(id, options.ground_truth);
  std::ifstream in(options.output_stem + ".jsonl", std::ios::binary);
  if (!in) return rec;

  const std::size_t shard_n = plan.shard_size(id.shard_id);
  std::string line;
  std::size_t offset = 0;
  while (rec.records < shard_n && std::getline(in, line)) {
    // getline sets eofbit only when the stream ended without a final
    // newline — exactly a torn trailing line from a killed worker.
    if (in.eof()) break;
    try {
      const ParsedRecord r = parse_record_line(line);
      if (r.index != plan.global_index(id.shard_id, rec.records)) break;
      // A stream whose record shape disagrees with the sink's metrics mode
      // belongs to a different run configuration; cut the scan so resume
      // rewrites rather than mixing shapes in one file.
      if (r.slim != options.metrics_only) break;
      // In GT mode the reduction runs over the measurements; add() also
      // rejects records whose kind disagrees with the sink's mode, which
      // cuts the scan exactly like a corrupt line would.
      if (r.gt)
        rec.partial.add(r.index, r.gt->mean_latency_ms, r.gt->mean_energy_mj,
                        &*r.gt);
      else
        rec.partial.add(r.index, r.report.latency.total,
                        r.report.energy.total);
    } catch (const std::exception&) {
      break;  // corrupt line: resume re-evaluates from here
    }
    ++rec.records;
    offset += line.size() + 1;
    rec.valid_bytes = offset;
  }
  return rec;
}

StreamingSink::StreamingSink(SinkOptions options, ShardIdentity id,
                             const Recovery* recovered)
    : options_(std::move(options)), partial_(id, options_.ground_truth) {
  if (options_.chunk_records == 0) options_.chunk_records = 1;
  const std::string path = jsonl_path();
  if (recovered) {
    // Drop any torn tail, keep the valid prefix, continue appending.
    std::error_code ec;
    if (std::filesystem::exists(path, ec))
      std::filesystem::resize_file(path, recovered->valid_bytes);
    partial_ = recovered->partial;
    records_written_ = recovered->records;
    file_ = std::fopen(path.c_str(), "ab");
  } else {
    file_ = std::fopen(path.c_str(), "wb");
  }
  if (!file_)
    throw std::runtime_error("StreamingSink: cannot open " + path);
  buffer_.reserve(options_.chunk_records * 256);
}

StreamingSink::~StreamingSink() {
  if (file_) std::fclose(file_);
}

void StreamingSink::append(std::size_t global_index,
                           const core::PerformanceReport& report) {
  append(global_index, EvaluatedPoint{report, std::nullopt});
}

void StreamingSink::append(std::size_t global_index,
                           const EvaluatedPoint& point) {
  // Validate through the reduction *before* touching the line buffer, so a
  // rejected (out-of-order or kind-mismatched) record never reaches the
  // stream and the two outputs cannot drift apart.
  const GtMeasurement* gt = point.gt ? &*point.gt : nullptr;
  if (gt)
    partial_.add(global_index, gt->mean_latency_ms, gt->mean_energy_mj, gt);
  else
    partial_.add(global_index, point.report.latency.total,
                 point.report.energy.total);
  buffer_ += record_line(global_index, point.report, gt,
                         options_.metrics_only);
  buffer_ += '\n';
  ++buffered_records_;
  ++records_written_;
  if (buffered_records_ >= options_.chunk_records) flush();
}

void StreamingSink::flush() {
  if (!buffer_.empty()) {
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size())
      throw std::runtime_error("StreamingSink: short write to " +
                               jsonl_path());
    buffer_.clear();
  }
  if (std::fflush(file_) != 0)
    throw std::runtime_error("StreamingSink: flush failed for " +
                             jsonl_path());
  buffered_records_ = 0;
  write_partial_checkpoint();
}

void StreamingSink::write_partial_checkpoint() {
  static obs::Counter checkpoint_writes("shard.worker.checkpoint_writes");
  checkpoint_writes.add();
  // Write-then-rename so a kill mid-checkpoint never leaves a torn
  // partial.json (the record stream is the source of truth regardless).
  const std::string path = partial_path();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("StreamingSink: cannot open " + tmp);
    out << partial_.to_json().dump() << '\n';
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("StreamingSink: cannot rename " + tmp + ": " +
                             ec.message());
}

PartialReduction StreamingSink::finalize() {
  flush();
  return partial_;
}

}  // namespace xr::runtime::shard
