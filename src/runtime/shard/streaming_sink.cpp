#include "runtime/shard/streaming_sink.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/failpoint.h"
#include "obs/registry.h"
#include "runtime/shard/binary_stream.h"

namespace xr::runtime::shard {

namespace {

/// Chaos helper (shard.sink.flush truncate): tear `cut` bytes off the
/// file's tail — the on-disk shape of a short write that lost power.
/// Too-small files are left alone (there is no tail to tear).
void tear_file_tail(const std::string& path, std::uint64_t cut) {
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec || size <= cut) return;
  std::filesystem::resize_file(path, size - cut, ec);
}

/// Chaos helper (shard.sink.flush corrupt): overwrite one byte `back`
/// from the end with NUL (or 0xFF when it already is NUL) — bit rot that
/// no writer-side check can see. NUL is unparseable in a JSONL stream and
/// breaks a binary chunk's checksum, so strict readers must reject it.
void corrupt_file_tail(const std::string& path, std::uint64_t back) {
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec || size <= back) return;
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f) return;
  f.seekg(std::streamoff(size - back));
  const int old = f.get();
  f.seekp(std::streamoff(size - back));
  f.put(old == 0 ? char(0xFF) : char(0));
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& text) {
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;

}  // namespace

std::uint64_t grid_fingerprint(const GridSpec& spec) {
  return fnv1a(kFnvOffsetBasis, spec.to_json().dump());
}

std::uint64_t fingerprint_chain(std::uint64_t h,
                                const std::string& document) {
  h ^= 0x1F;
  h *= 1099511628211ull;
  return fnv1a(h, document);
}

std::uint64_t grid_fingerprint(const GridSpec& spec,
                               const EvaluatorSpec& evaluator) {
  return fingerprint_chain(grid_fingerprint(spec),
                           evaluator.to_json().dump());
}

void GtAggregate::add(const GtMeasurement& m) {
  ++count;
  latency_ms_sum.add(m.mean_latency_ms);
  energy_mj_sum.add(m.mean_energy_mj);
  latency_error_pct_sum.add(m.latency_error_pct);
  energy_error_pct_sum.add(m.energy_error_pct);
}

void GtAggregate::merge(const GtAggregate& other) {
  count += other.count;
  latency_ms_sum.merge(other.latency_ms_sum);
  energy_mj_sum.merge(other.energy_mj_sum);
  latency_error_pct_sum.merge(other.latency_error_pct_sum);
  energy_error_pct_sum.merge(other.energy_error_pct_sum);
}

bool GtAggregate::same_values(const GtAggregate& other) const {
  return count == other.count &&
         latency_ms_sum.same_value(other.latency_ms_sum) &&
         energy_mj_sum.same_value(other.energy_mj_sum) &&
         latency_error_pct_sum.same_value(other.latency_error_pct_sum) &&
         energy_error_pct_sum.same_value(other.energy_error_pct_sum);
}

Json GtAggregate::to_json() const {
  Json j = Json::object();
  j.set("count", count);
  // Derived means first (informational; recomputed on load), exact sums
  // after (the merge-law identity).
  j.set("mean_latency_ms", mean_latency_ms());
  j.set("mean_energy_mj", mean_energy_mj());
  j.set("mean_latency_error_pct", mean_latency_error_pct());
  j.set("mean_energy_error_pct", mean_energy_error_pct());
  j.set("latency_ms_sum", latency_ms_sum.to_json());
  j.set("energy_mj_sum", energy_mj_sum.to_json());
  j.set("latency_error_pct_sum", latency_error_pct_sum.to_json());
  j.set("energy_error_pct_sum", energy_error_pct_sum.to_json());
  return j;
}

GtAggregate GtAggregate::from_json(const Json& j) {
  GtAggregate out;
  out.count = j.at("count").as_size();
  out.latency_ms_sum = ExactSum::from_json(j.at("latency_ms_sum"));
  out.energy_mj_sum = ExactSum::from_json(j.at("energy_mj_sum"));
  out.latency_error_pct_sum =
      ExactSum::from_json(j.at("latency_error_pct_sum"));
  out.energy_error_pct_sum = ExactSum::from_json(j.at("energy_error_pct_sum"));
  return out;
}

PartialReduction::PartialReduction(ShardIdentity id, bool ground_truth)
    : id_(id) {
  if (ground_truth) gt_.emplace();
}

void PartialReduction::add(std::size_t global_index, double latency_ms,
                           double energy_mj, const GtMeasurement* gt) {
  if (evaluated_ > 0 && global_index <= last_index_)
    throw std::invalid_argument(
        "PartialReduction: indices must arrive in ascending order");
  if (gt_.has_value() != (gt != nullptr))
    throw std::invalid_argument(
        gt_ ? "PartialReduction: ground-truth reduction fed a record "
              "without a measurement"
            : "PartialReduction: analytical reduction fed a ground-truth "
              "measurement");
  last_index_ = global_index;
  if (gt) gt_->add(*gt);

  if (evaluated_ == 0) {
    best_latency_index_ = best_energy_index_ = global_index;
    min_latency_ms_ = max_latency_ms_ = latency_ms;
    min_energy_mj_ = max_energy_mj_ = energy_mj;
  } else {
    // Strict < keeps the first occurrence of the minimum — the same index
    // BatchEvaluator's serial reduction scan selects.
    if (latency_ms < min_latency_ms_) {
      min_latency_ms_ = latency_ms;
      best_latency_index_ = global_index;
    }
    if (latency_ms > max_latency_ms_) max_latency_ms_ = latency_ms;
    if (energy_mj < min_energy_mj_) {
      min_energy_mj_ = energy_mj;
      best_energy_index_ = global_index;
    }
    if (energy_mj > max_energy_mj_) max_energy_mj_ = energy_mj;
  }
  ++evaluated_;

  // Incremental 2-D Pareto maintenance. A new point is excluded iff some
  // frontier point has latency <= and energy <= (ties lose to the earlier
  // index, which is always the incumbent since indices ascend). Among
  // frontier keys <= latency the minimal energy sits at the greatest key.
  auto after = frontier_.upper_bound(latency_ms);
  if (after != frontier_.begin()) {
    const auto prev = std::prev(after);
    if (prev->second.first <= energy_mj) return;  // dominated
  }
  // The new point dominates every frontier entry with latency >= and
  // energy >= it; those form a contiguous run starting at the first key
  // >= latency (energies decrease along the key order).
  auto it = frontier_.lower_bound(latency_ms);
  while (it != frontier_.end() && it->second.first >= energy_mj)
    it = frontier_.erase(it);
  frontier_[latency_ms] = {energy_mj, global_index};
}

std::vector<ParetoPoint> PartialReduction::pareto() const {
  std::vector<ParetoPoint> out;
  out.reserve(frontier_.size());
  for (const auto& [lat, rest] : frontier_)
    out.push_back(ParetoPoint{rest.second, lat, rest.first});
  return out;
}

namespace {

Json identity_to_json(const ShardIdentity& id) {
  Json j = Json::object();
  j.set("id", id.shard_id);
  j.set("count", id.shard_count);
  j.set("strategy", strategy_name(id.strategy));
  j.set("grid_size", id.grid_size);
  j.set("grid_fingerprint", format_hex64(id.grid_fingerprint));
  return j;
}

ShardIdentity identity_from_json(const Json& j) {
  ShardIdentity id;
  id.shard_id = j.at("id").as_size();
  id.shard_count = j.at("count").as_size();
  id.strategy = strategy_from_name(j.at("strategy").as_string());
  id.grid_size = j.at("grid_size").as_size();
  id.grid_fingerprint = parse_hex64(j.at("grid_fingerprint").as_string());
  return id;
}

constexpr const char* kPartialSchema = "xr.sweep.partial.v1";

}  // namespace

Json PartialReduction::to_json() const {
  Json j = Json::object();
  j.set("schema", kPartialSchema);
  j.set("shard", identity_to_json(id_));
  j.set("evaluated", evaluated_);
  if (evaluated_ > 0) {
    j.set("last_index", last_index_);
    j.set("best_latency_index", best_latency_index_);
    j.set("min_latency_ms", min_latency_ms_);
    j.set("max_latency_ms", max_latency_ms_);
    j.set("best_energy_index", best_energy_index_);
    j.set("min_energy_mj", min_energy_mj_);
    j.set("max_energy_mj", max_energy_mj_);
    Json pareto = Json::array();
    for (const auto& [lat, rest] : frontier_) {
      Json p = Json::array();
      p.push_back(rest.second);
      p.push_back(lat);
      p.push_back(rest.first);
      pareto.push_back(std::move(p));
    }
    j.set("pareto", std::move(pareto));
  }
  if (gt_) j.set("gt", gt_->to_json());
  Json stats = Json::object();
  stats.set("wall_ms", wall_ms);
  stats.set("threads", threads);
  j.set("stats", std::move(stats));
  return j;
}

PartialReduction PartialReduction::from_json(const Json& j) {
  if (j.at("schema").as_string() != kPartialSchema)
    throw std::invalid_argument("PartialReduction: unknown schema '" +
                                j.at("schema").as_string() + "'");
  PartialReduction out(identity_from_json(j.at("shard")));
  out.evaluated_ = j.at("evaluated").as_size();
  if (out.evaluated_ > 0) {
    out.last_index_ = j.at("last_index").as_size();
    out.best_latency_index_ = j.at("best_latency_index").as_size();
    out.min_latency_ms_ = j.at("min_latency_ms").as_double();
    out.max_latency_ms_ = j.at("max_latency_ms").as_double();
    out.best_energy_index_ = j.at("best_energy_index").as_size();
    out.min_energy_mj_ = j.at("min_energy_mj").as_double();
    out.max_energy_mj_ = j.at("max_energy_mj").as_double();
    for (const Json& p : j.at("pareto").as_array()) {
      const auto& triple = p.as_array();
      if (triple.size() != 3)
        throw std::invalid_argument("PartialReduction: bad pareto entry");
      out.frontier_[triple[1].as_double()] = {triple[2].as_double(),
                                              triple[0].as_size()};
    }
  }
  if (const Json* g = j.find("gt")) out.gt_ = GtAggregate::from_json(*g);
  const Json& stats = j.at("stats");
  out.wall_ms = stats.at("wall_ms").as_double();
  out.threads = stats.at("threads").as_size();
  return out;
}

// ---- the sink ----------------------------------------------------------

namespace {

/// S3: an existing stream in the other format at the same stem means the
/// operator is resuming with the wrong --format — refuse by name rather
/// than leaving the stem carrying two conflicting encodings.
void refuse_cross_format(const SinkOptions& options) {
  const RecordFormat other = options.format == RecordFormat::kJsonl
                                 ? RecordFormat::kBinary
                                 : RecordFormat::kJsonl;
  const std::string sibling = record_path(options.output_stem, other);
  std::error_code ec;
  if (std::filesystem::exists(sibling, ec))
    throw std::runtime_error(
        "StreamingSink: cross-format resume refused: found " + sibling +
        " but the spec requests " + format_name(options.format) +
        " records");
}

StreamingSink::Recovery scan_existing_jsonl(const SinkOptions& options,
                                            const ShardIdentity& id,
                                            const ShardPlan& plan) {
  StreamingSink::Recovery rec;
  rec.partial = PartialReduction(id, options.ground_truth);
  const std::string path =
      record_path(options.output_stem, RecordFormat::kJsonl);
  std::ifstream in(path, std::ios::binary);
  if (!in) return rec;

  const std::size_t shard_n = plan.shard_size(id.shard_id);
  std::string line;
  std::size_t offset = 0;
  while (rec.records < shard_n && std::getline(in, line)) {
    // getline sets eofbit only when the stream ended without a final
    // newline — exactly a torn trailing line from a killed worker.
    if (in.eof()) break;
    ParsedRecord r;
    try {
      r = parse_record_line(line);
    } catch (const std::exception&) {
      // A newline-terminated line that does not parse cannot be a tear (a
      // kill cuts the final fwrite mid-line, never behind a newline) — the
      // file is corrupt mid-stream, and silently truncating here would
      // discard the valid suffix behind it.
      throw std::runtime_error(
          "StreamingSink: corrupt record mid-stream in " + path +
          " (line " + std::to_string(rec.records + 1) +
          "); refusing to truncate");
    }
    try {
      if (r.index != plan.global_index(id.shard_id, rec.records)) break;
      // A stream whose record shape disagrees with the sink's metrics mode
      // belongs to a different run configuration; cut the scan so resume
      // rewrites rather than mixing shapes in one file.
      if (r.slim != options.metrics_only) break;
      // In GT mode the reduction runs over the measurements; add() also
      // rejects records whose kind disagrees with the sink's mode, which
      // cuts the scan exactly like a shape mismatch would.
      if (r.gt)
        rec.partial.add(r.index, r.gt->mean_latency_ms, r.gt->mean_energy_mj,
                        &*r.gt);
      else
        rec.partial.add(r.index, r.report.latency.total,
                        r.report.energy.total);
    } catch (const std::exception&) {
      break;  // kind mismatch: resume re-evaluates from here
    }
    ++rec.records;
    offset += line.size() + 1;
    rec.valid_bytes = offset;
  }
  return rec;
}

StreamingSink::Recovery scan_existing_binary(const SinkOptions& options,
                                             const ShardIdentity& id,
                                             const ShardPlan& plan) {
  StreamingSink::Recovery rec;
  rec.partial = PartialReduction(id, options.ground_truth);
  RecordStreamConfig config;
  config.format = RecordFormat::kBinary;
  config.chunk_records = options.chunk_records;
  config.ground_truth = options.ground_truth;
  config.metrics_only = options.metrics_only;
  const BinaryRecovery bin = scan_binary_prefix(
      record_path(options.output_stem, RecordFormat::kBinary), config, id,
      plan, [&rec](const ParsedRecord& r) {
        if (r.gt)
          rec.partial.add(r.index, r.gt->mean_latency_ms,
                          r.gt->mean_energy_mj, &*r.gt);
        else
          rec.partial.add(r.index, r.report.latency.total,
                          r.report.energy.total);
      });
  rec.records = bin.records;
  rec.valid_bytes = bin.valid_bytes;
  return rec;
}

}  // namespace

StreamingSink::Recovery StreamingSink::scan_existing(
    const SinkOptions& options, const ShardIdentity& id,
    const ShardPlan& plan) {
  refuse_cross_format(options);
  SinkOptions normalized = options;
  if (normalized.chunk_records == 0) normalized.chunk_records = 1;
  return options.format == RecordFormat::kBinary
             ? scan_existing_binary(normalized, id, plan)
             : scan_existing_jsonl(normalized, id, plan);
}

StreamingSink::StreamingSink(SinkOptions options, ShardIdentity id,
                             const Recovery* recovered)
    : options_(std::move(options)), partial_(id, options_.ground_truth) {
  if (options_.chunk_records == 0) options_.chunk_records = 1;
  RecordStreamConfig config;
  config.format = options_.format;
  config.chunk_records = options_.chunk_records;
  config.ground_truth = options_.ground_truth;
  config.metrics_only = options_.metrics_only;
  if (recovered) {
    partial_ = recovered->partial;
    records_written_ = recovered->records;
    sink_ = open_record_sink(options_.output_stem, config, id,
                             &recovered->valid_bytes);
  } else {
    sink_ = open_record_sink(options_.output_stem, config, id);
  }
}

void StreamingSink::append(std::size_t global_index,
                           const core::PerformanceReport& report) {
  append(global_index, EvaluatedPoint{report, std::nullopt});
}

void StreamingSink::append(std::size_t global_index,
                           const EvaluatedPoint& point) {
  // Validate through the reduction *before* touching the sink buffer, so a
  // rejected (out-of-order or kind-mismatched) record never reaches the
  // stream and the two outputs cannot drift apart.
  const GtMeasurement* gt = point.gt ? &*point.gt : nullptr;
  if (gt)
    partial_.add(global_index, gt->mean_latency_ms, gt->mean_energy_mj, gt);
  else
    partial_.add(global_index, point.report.latency.total,
                 point.report.energy.total);
  sink_->append(global_index, point.report, gt);
  ++buffered_records_;
  ++records_written_;
  if (buffered_records_ >= options_.chunk_records) flush();
}

void StreamingSink::flush() {
  // Backend-labeled sink telemetry (satellite S2): records/bytes per
  // encoding plus flush latency; all compile to no-ops under
  // XR_OBS_DISABLED.
  static obs::Counter jsonl_records("shard.sink.jsonl.records");
  static obs::Counter jsonl_bytes("shard.sink.jsonl.bytes");
  static obs::Counter binary_records("shard.sink.binary.records");
  static obs::Counter binary_bytes("shard.sink.binary.bytes");
  static obs::Histogram flush_ms("shard.sink.flush_ms",
                                 obs::Histogram::latency_bounds_ms());
  const auto t0 = std::chrono::steady_clock::now();
  // Chaos hook: a flush is where a disk failure actually lands. io_error
  // fires BEFORE the sink write (the buffered records never reach disk,
  // the stream keeps its valid prefix); truncate tears the tail of the
  // just-written region and then reports the failure (a short write the
  // writer noticed); corrupt flips a byte mid-stream and reports nothing
  // (bit rot the writer cannot see — downstream folds must catch it).
  const auto fault = fail::point("shard.sink.flush");
  if (fault) {
    if (fault->action == fail::Action::kDelay)
      std::this_thread::sleep_for(std::chrono::milliseconds(fault->delay_ms));
    else if (fault->action == fail::Action::kIoError)
      throw std::runtime_error("fault injected: shard.sink.flush io_error (" +
                               records_path() + ")");
  }
  const std::size_t flushed = buffered_records_;
  const std::size_t bytes = sink_->flush();
  buffered_records_ = 0;
  if (fault && fault->action == fail::Action::kTruncate) {
    tear_file_tail(records_path(), 7);
    throw std::runtime_error("fault injected: shard.sink.flush short write (" +
                             records_path() + ")");
  }
  if (fault && fault->action == fail::Action::kCorrupt)
    corrupt_file_tail(records_path(), 10);
  write_partial_checkpoint();
  if (options_.format == RecordFormat::kBinary) {
    binary_records.add(flushed);
    binary_bytes.add(bytes);
  } else {
    jsonl_records.add(flushed);
    jsonl_bytes.add(bytes);
  }
  flush_ms.observe(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

void StreamingSink::write_partial_checkpoint() {
  static obs::Counter checkpoint_writes("shard.worker.checkpoint_writes");
  checkpoint_writes.add();
  // Write-then-rename so a kill mid-checkpoint never leaves a torn
  // partial.json (the record stream is the source of truth regardless).
  const std::string path = partial_path();
  if (const auto fault = fail::point("shard.sink.checkpoint")) {
    if (fault->action == fail::Action::kIoError)
      throw std::runtime_error(
          "fault injected: shard.sink.checkpoint io_error (" + path + ")");
    if (fault->action == fail::Action::kTruncate) {
      // A torn checkpoint ON THE FINAL PATH — what a crashed non-atomic
      // writer leaves. Returns without error: the record stream must stay
      // the source of truth, and whoever reads this checkpoint (the
      // coordinator's jsonl fold) must fail over to reassignment.
      std::ofstream torn(path, std::ios::binary | std::ios::trunc);
      const std::string doc = partial_.to_json().dump();
      torn << doc.substr(0, doc.size() / 2);
      return;
    }
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("StreamingSink: cannot open " + tmp);
    out << partial_.to_json().dump() << '\n';
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("StreamingSink: cannot rename " + tmp + ": " +
                             ec.message());
}

PartialReduction StreamingSink::finalize() {
  flush();
  return partial_;
}

}  // namespace xr::runtime::shard
