#include "runtime/adaptive.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <stdexcept>
#include <string>

#include "runtime/batch_evaluator.h"
#include "runtime/shard/streaming_sink.h"

namespace xr::runtime {

namespace {

constexpr const char* kRefineSchema = "xr.sweep.refine.v1";

/// Per-axis point counts of a grid spec (1-sized grid when there are no
/// axes), plus the total size.
std::vector<std::size_t> axis_sizes(const GridSpec& grid,
                                    std::size_t* total) {
  std::vector<std::size_t> sizes;
  sizes.reserve(grid.axes.size());
  std::size_t n = 1;
  for (const auto& axis : grid.axes) {
    const std::size_t s =
        axis.numbers.empty() ? axis.strings.size() : axis.numbers.size();
    sizes.push_back(s);
    n *= s;
  }
  if (total) *total = n;
  return sizes;
}

}  // namespace

shard::EvaluatorSpec coarse_evaluator(const shard::EvaluatorSpec& base,
                                      const AdaptiveSpec& adaptive) {
  shard::EvaluatorSpec ev = base;
  ev.frames_per_point = adaptive.coarse_frames;
  ev.pass = 1;
  return ev;
}

shard::EvaluatorSpec fine_evaluator(const shard::EvaluatorSpec& base,
                                    const AdaptiveSpec& adaptive) {
  shard::EvaluatorSpec ev = base;
  ev.frames_per_point = adaptive.fine_frames;
  ev.pass = 2;
  return ev;
}

std::uint64_t adaptive_fingerprint(const GridSpec& grid,
                                   const shard::EvaluatorSpec& evaluator,
                                   const AdaptiveSpec& adaptive) {
  return shard::fingerprint_chain(shard::grid_fingerprint(grid, evaluator),
                                  adaptive.to_json().dump());
}

std::vector<std::size_t> select_refinement(
    const GridSpec& grid, const std::vector<PointEstimate>& coarse,
    const AdaptiveSpec& adaptive) {
  adaptive.validate();
  std::size_t n = 0;
  const std::vector<std::size_t> sizes = axis_sizes(grid, &n);
  if (coarse.size() != n)
    throw std::invalid_argument(
        "select_refinement: got " + std::to_string(coarse.size()) +
        " coarse estimates for a grid of " + std::to_string(n) + " points");
  if (n == 0) return {};

  std::vector<char> selected(n, 0);

  // Band rule: anything whose coarse latency or energy sits within the
  // band of the incumbent argmin could own the fine-fidelity argmin.
  double min_lat = coarse[0].latency_ms, min_en = coarse[0].energy_mj;
  for (const auto& p : coarse) {
    min_lat = std::min(min_lat, p.latency_ms);
    min_en = std::min(min_en, p.energy_mj);
  }
  const double lat_edge = min_lat * (1.0 + adaptive.band_fraction);
  const double en_edge = min_en * (1.0 + adaptive.band_fraction);
  for (std::size_t i = 0; i < n; ++i)
    if (coarse[i].latency_ms <= lat_edge || coarse[i].energy_mj <= en_edge)
      selected[i] = 1;

  // Boundary-flip rule: refine every point of the reduced cells whose
  // latency-optimal placement disagrees with a neighbor's.
  std::size_t placement_axis = sizes.size();
  for (std::size_t k = 0; k < grid.axes.size(); ++k)
    if (grid.axes[k].knob == "placement" && sizes[k] >= 2) {
      placement_axis = k;
      break;
    }
  if (placement_axis < sizes.size()) {
    // Row-major strides, first axis outermost (the grid enumeration order).
    std::vector<std::size_t> strides(sizes.size(), 1);
    for (std::size_t k = sizes.size(); k-- > 1;)
      strides[k - 1] = strides[k] * sizes[k];
    const std::size_t p = placement_axis;

    const auto is_rep = [&](std::size_t i) {
      return (i / strides[p]) % sizes[p] == 0;
    };
    // One pass precomputes the latency-optimal placement position of each
    // reduced cell (keyed by its representative: placement coordinate 0).
    std::vector<std::size_t> decision(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_rep(i)) continue;
      for (std::size_t j = 1; j < sizes[p]; ++j)
        if (coarse[i + j * strides[p]].latency_ms <
            coarse[i + decision[i] * strides[p]].latency_ms)
          decision[i] = j;
    }
    const auto mark_cell = [&](std::size_t i) {
      for (std::size_t j = 0; j < sizes[p]; ++j)
        selected[i + j * strides[p]] = 1;
    };

    for (std::size_t i = 0; i < n; ++i) {
      if (!is_rep(i)) continue;  // not a cell rep
      for (std::size_t a = 0; a < sizes.size(); ++a) {
        if (a == p) continue;
        if ((i / strides[a]) % sizes[a] + 1 >= sizes[a]) continue;
        const std::size_t neighbor = i + strides[a];
        if (decision[i] != decision[neighbor]) {
          mark_cell(i);
          mark_cell(neighbor);
        }
      }
    }
  }

  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n; ++i)
    if (selected[i]) out.push_back(i);
  return out;
}

core::Json RefinementSet::to_json() const {
  core::Json j = core::Json::object();
  j.set("schema", kRefineSchema);
  j.set("fingerprint", shard::format_hex64(fingerprint));
  j.set("grid_size", grid_size);
  core::Json idx = core::Json::array();
  for (std::size_t i : indices) idx.push_back(i);
  j.set("indices", std::move(idx));
  return j;
}

RefinementSet RefinementSet::from_json(const core::Json& j) {
  if (j.at("schema").as_string() != kRefineSchema)
    throw std::invalid_argument("RefinementSet: unknown schema '" +
                                j.at("schema").as_string() + "'");
  RefinementSet out;
  out.fingerprint = shard::parse_hex64(j.at("fingerprint").as_string());
  out.grid_size = j.at("grid_size").as_size();
  for (const core::Json& v : j.at("indices").as_array())
    out.indices.push_back(v.as_size());
  for (std::size_t k = 0; k < out.indices.size(); ++k) {
    if (out.indices[k] >= out.grid_size)
      throw std::invalid_argument(
          "RefinementSet: index out of range for the grid");
    if (k > 0 && out.indices[k] <= out.indices[k - 1])
      throw std::invalid_argument(
          "RefinementSet: indices must be sorted ascending and unique");
  }
  return out;
}

std::vector<PointEstimate> coarse_estimates_from_records(
    const std::vector<std::string>& paths, std::size_t grid_size) {
  std::vector<PointEstimate> out(grid_size);
  std::vector<char> seen(grid_size, 0);
  std::size_t covered = 0;
  for (const auto& path : paths) {
    const auto source = shard::open_record_source(path);
    shard::ParsedRecord r;
    while (source->next(r)) {
      if (!r.gt)
        throw std::invalid_argument(
            "coarse_estimates_from_records: record without a ground-truth "
            "measurement in " + path);
      if (r.index >= grid_size)
        throw std::invalid_argument(
            "coarse_estimates_from_records: index out of range in " + path);
      if (seen[r.index])
        throw std::invalid_argument(
            "coarse_estimates_from_records: duplicate record for index " +
            std::to_string(r.index) + " in " + path);
      seen[r.index] = 1;
      out[r.index] = PointEstimate{r.gt->mean_latency_ms,
                                   r.gt->mean_energy_mj};
      ++covered;
    }
  }
  if (covered != grid_size)
    throw std::invalid_argument(
        "coarse_estimates_from_records: coarse records cover " +
        std::to_string(covered) + " of " + std::to_string(grid_size) +
        " grid points — the coarse pass must be complete before selection");
  return out;
}

AdaptiveSweep::AdaptiveSweep(SweepRequest request,
                             core::XrPerformanceModel model)
    : request_(std::move(request)), model_(std::move(model)) {
  if (!request_.adaptive)
    throw std::invalid_argument(
        "AdaptiveSweep: the request has no adaptive block");
  if (!request_.evaluator.is_ground_truth())
    throw std::invalid_argument(
        "AdaptiveSweep: adaptive fidelity requires the ground_truth "
        "evaluator");
  request_.adaptive->validate();
}

AdaptiveOutcome AdaptiveSweep::run() const {
  const AdaptiveSpec& adaptive = *request_.adaptive;
  const ScenarioGrid grid = request_.grid.build();
  const std::size_t n = grid.size();
  const BatchEvaluator engine(
      model_,
      BatchOptions{request_.execution.threads, request_.execution.grain});
  const shard::EvaluatorSpec coarse_ev =
      coarse_evaluator(request_.evaluator, adaptive);
  const shard::EvaluatorSpec fine_ev =
      fine_evaluator(request_.evaluator, adaptive);

  AdaptiveOutcome out;
  out.coarse_frames = adaptive.coarse_frames;
  out.fine_frames = adaptive.fine_frames;

  // Pass 1: the whole grid, cheap.
  const auto t0 = std::chrono::steady_clock::now();
  const auto coarse_points = engine.map(n, [&](std::size_t i) {
    return shard::evaluate_point(coarse_ev, model_, grid.at(i), i);
  });
  const auto t1 = std::chrono::steady_clock::now();
  out.coarse_wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  out.estimates.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    out.estimates[i] = PointEstimate{coarse_points[i].gt->mean_latency_ms,
                                     coarse_points[i].gt->mean_energy_mj};

  // Selection: pure function of the coarse measurements.
  out.refined = select_refinement(request_.grid, out.estimates, adaptive);

  // Pass 2: only the candidates, at target fidelity.
  const auto t2 = std::chrono::steady_clock::now();
  const auto fine_points = engine.map(out.refined.size(), [&](std::size_t j) {
    const std::size_t g = out.refined[j];
    return shard::evaluate_point(fine_ev, model_, grid.at(g), g);
  });
  const auto t3 = std::chrono::steady_clock::now();
  out.fine_wall_ms =
      std::chrono::duration<double, std::milli>(t3 - t2).count();

  // Fold the hybrid single-shard reduction and run it through the merge
  // law (K = 1), exactly as run_request does — so K sharded hybrid
  // partials of the same request merge bitwise identical to this summary.
  const shard::ShardIdentity id{
      0, 1, shard::ShardStrategy::kRange, n,
      adaptive_fingerprint(request_.grid, request_.evaluator, adaptive)};
  shard::PartialReduction partial(id, /*ground_truth=*/true);
  std::size_t r = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const shard::EvaluatedPoint& point =
        (r < out.refined.size() && out.refined[r] == i) ? fine_points[r++]
                                                        : coarse_points[i];
    partial.add(i, point.gt->mean_latency_ms, point.gt->mean_energy_mj,
                &*point.gt);
    out.estimates[i] =
        PointEstimate{point.gt->mean_latency_ms, point.gt->mean_energy_mj};
  }
  partial.wall_ms = out.coarse_wall_ms + out.fine_wall_ms;
  partial.threads = engine.threads();
  out.summary = shard::merge_partials({partial});
  return out;
}

AdaptiveOutcome run_adaptive(const SweepRequest& request,
                             const core::XrPerformanceModel& model) {
  return AdaptiveSweep(request, model).run();
}

}  // namespace xr::runtime
