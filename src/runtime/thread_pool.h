// Fixed-size worker pool for embarrassingly-parallel model evaluation.
//
// The analytical models (latency §IV, energy §V, AoI §VI) are pure functions
// of a ScenarioConfig, so scenario sweeps parallelize trivially. ThreadPool
// provides the two primitives the batch runtime needs:
//
//   * submit(fn)        — run one task asynchronously, returns a future;
//   * parallel_for(n,f) — run f(0..n-1), blocking until every index is done.
//
// Guarantees (see DESIGN.md, "Runtime layer"):
//   * deterministic results — parallel_for assigns disjoint index ranges, so
//     callers writing result[i] from f(i) get the same vector regardless of
//     thread count (each f(i) is evaluated exactly once, in isolation);
//   * exception propagation — the first exception thrown by any f(i) is
//     rethrown on the calling thread after the loop drains;
//   * serial fallback — a pool of size 1 (or n == 1) runs inline on the
//     calling thread, byte-for-byte the plain for-loop;
//   * nesting safety — a parallel_for issued from inside a pool job runs
//     inline on that worker instead of enqueueing (helper jobs queued
//     behind a blocked worker could never run, i.e. deadlock).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

namespace xr::runtime {

class ThreadPool {
 public:
  /// `threads == 0` picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (>= 1). A pool of size 1 executes everything inline.
  [[nodiscard]] std::size_t size() const noexcept { return threads_; }

  /// Run f(i) for every i in [0, n). Blocks until all indices complete.
  /// Rethrows the first exception any f(i) raised. `grain` is the number
  /// of consecutive indices a runner claims per atomic fetch: 0 picks the
  /// auto grain max(1, n / (8 · threads)) — ~8 contiguous chunks per
  /// runner, large enough that cheap per-point work (the analytical model
  /// is ~1 µs/point) amortizes the claim and the type-erased call, small
  /// enough to load-balance. Callers with very uneven per-index cost
  /// (e.g. mixed-fidelity passes) can force a smaller grain.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f,
                    std::size_t grain = 0);

  /// Evaluate f(i) for i in [0, n) and return the results indexed by i.
  /// R must be default-constructible and must not be bool (std::vector<bool>
  /// packs bits, so concurrent out[i] writes would race) — return char/int
  /// for predicates. `grain` as in parallel_for.
  template <typename F>
  auto map(std::size_t n, F&& f, std::size_t grain = 0)
      -> std::vector<std::decay_t<decltype(f(std::size_t{0}))>> {
    using R = std::decay_t<decltype(f(std::size_t{0}))>;
    static_assert(!std::is_same_v<R, bool>,
                  "ThreadPool::map: bool results race in std::vector<bool>; "
                  "return char or int instead");
    std::vector<R> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = f(i); }, grain);
    return out;
  }

  /// Run one task asynchronously.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// The default pool shared by the batch runtime (hardware-sized, created
  /// on first use).
  static ThreadPool& shared();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  struct State;
  std::unique_ptr<State> state_;
  std::size_t threads_ = 1;
  std::vector<std::thread> workers_;
};

}  // namespace xr::runtime
