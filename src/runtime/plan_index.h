// OffloadPlanIndex — precomputed offload plans served by scenario lookup.
//
// The serving story's second tier: most requests arriving at a planner are
// near-duplicates (the same device class, a handful of frame sizes, a
// quantized link estimate), so the millions-of-users path is precompute the
// plans over a scenario grid once, then answer each request by LOOKUP —
// O(1) on an exact scenario match, nearest-cell interpolation when the
// query lies close enough to the grid, and only the genuinely novel
// scenarios fall through to a fresh search (which itself runs on the SoA
// kernel, runtime/decision_batch.h).
//
//   spec     — base scenario + numeric context axes (frame_size, cpu_ghz,
//              throughput_mbps, ...) × one OffloadSearchSpace × alpha:
//              everything needed to rebuild the index from scratch.
//   build()  — one plan_offload per grid cell, row-major (axis 0 slowest,
//              the ScenarioGrid order).
//   serve()  — exact hit: the stored plan, without consulting the model at
//              all (asserted by a submodel_lookup_count test);
//              nearest hit: the stored plan of the per-axis nearest cell
//              when every axis lies within max_relative_gap;
//              miss: fall through to the batch kernel for a fresh plan.
//
// The whole index is JSON round-trippable through core/serialize's exact
// double form, so indexes ship like any other sweep artifact — build on a
// beefy box, serve anywhere — and the round trip is bitwise (dump ==
// re-dump). from_json applies the same named-field validation build does:
// non-numeric or duplicate or non-finite axis values, a plans array whose
// length disagrees with the scenario grid, and malformed plans
// (OffloadPlan::from_json) are all rejected with the offending field named.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/optimizer.h"
#include "runtime/batch_evaluator.h"
#include "runtime/sweep.h"

namespace xr::runtime {

/// How a serve() call was answered.
enum class PlanSource { kExactHit, kNearestHit, kComputed };
[[nodiscard]] const char* plan_source_name(PlanSource s) noexcept;

/// Everything needed to (re)build an index: the scenario grid the plans
/// cover, the per-cell search, and the serving tolerance.
struct PlanIndexSpec {
  /// Scenario context axes over the base; every axis must be a NUMERIC
  /// knob (nearest-cell distance is undefined for string knobs) with
  /// finite, duplicate-free values — validate() names offenders.
  GridSpec scenarios;
  core::OffloadSearchSpace space;
  /// Weighted-objective latency weight of every precomputed plan.
  double alpha = 0.5;
  /// Per-axis relative gap ceiling for nearest-cell serving: a query q
  /// snaps to its nearest cell when |q - v| / max(|q|, |v|, 1e-9) stays
  /// within this bound on EVERY axis; otherwise serve() recomputes. 0
  /// serves only exact coordinates from the store.
  double max_relative_gap = 0.25;

  void validate() const;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static PlanIndexSpec from_json(const core::Json& j);
};

/// Cumulative serve() outcomes (not serialized; diagnostics only).
struct PlanServeCounters {
  std::uint64_t exact_hits = 0;
  std::uint64_t nearest_hits = 0;
  std::uint64_t computed = 0;
};

class OffloadPlanIndex {
 public:
  static constexpr std::size_t kNoCell = std::size_t(-1);

  /// Precompute one plan per scenario cell (through plan_offload, i.e. the
  /// batch kernel when enabled). `options` sets the sweep thread count.
  [[nodiscard]] static OffloadPlanIndex build(
      PlanIndexSpec spec, const core::XrPerformanceModel& model = {},
      const BatchOptions& options = {});

  [[nodiscard]] const PlanIndexSpec& spec() const noexcept { return spec_; }
  /// Cell count (= scenario grid size = plans().size()).
  [[nodiscard]] std::size_t size() const noexcept { return plans_.size(); }
  [[nodiscard]] const core::OffloadPlan& plan_at(std::size_t cell) const {
    return plans_.at(cell);
  }
  /// Values of scenario axis k, in grid order.
  [[nodiscard]] const std::vector<double>& axis_values(std::size_t k) const {
    return axis_values_.at(k);
  }

  /// The cell whose coordinates equal `key` bitwise on every axis, if any.
  /// `key` holds one value per scenario axis, in declaration order.
  [[nodiscard]] std::optional<std::size_t> exact_cell(
      const std::vector<double>& key) const;

  struct NearestCell {
    std::size_t cell = 0;
    /// max over axes of |q - v| / max(|q|, |v|, 1e-9).
    double worst_gap = 0;
  };
  /// Per-axis nearest snap (ties break to the lower axis index, so the
  /// answer is deterministic for midpoints).
  [[nodiscard]] NearestCell nearest_cell(const std::vector<double>& key) const;

  struct ServeResult {
    core::OffloadPlan plan;
    PlanSource source = PlanSource::kComputed;
    /// Index cell the plan came from; kNoCell when freshly computed.
    std::size_t cell = kNoCell;
  };
  /// Answer one query (see header comment for the three tiers). The model
  /// is consulted ONLY on the computed path.
  [[nodiscard]] ServeResult serve(const std::vector<double>& key,
                                  const core::XrPerformanceModel& model = {});

  [[nodiscard]] const PlanServeCounters& counters() const noexcept {
    return counters_;
  }

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static OffloadPlanIndex from_json(const core::Json& j);

 private:
  OffloadPlanIndex() = default;
  void rebuild_lookup();
  void require_key_arity(const std::vector<double>& key) const;

  PlanIndexSpec spec_;
  std::vector<core::OffloadPlan> plans_;  ///< row-major over the grid.
  std::vector<std::vector<double>> axis_values_;
  /// Bitwise axis-tuple key → cell, for the O(1) exact tier.
  std::unordered_map<std::string, std::size_t> exact_;
  PlanServeCounters counters_;
};

}  // namespace xr::runtime
