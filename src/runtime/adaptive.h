// Adaptive-fidelity ground-truth sweeps: coarse pass + boundary refinement.
//
// The GroundTruthSimulator dominates validation-sweep wall time — every
// grid point is a full simulated episode, and fidelity (frames per point)
// buys accuracy linearly in wall time. But the quantities a sweep is run
// for (the argmin, the placement decision set, the Pareto shape) are
// decided by a handful of points near decision boundaries; everywhere
// else a cheap estimate is enough. AdaptiveSweep operationalizes that:
//
//   pass 1 (coarse)  — the ENTIRE grid at AdaptiveSpec::coarse_frames
//                      (seeds point_seed(seed, i, 1));
//   selection        — a pure rule over the coarse measurements marks
//                      refinement candidates: points whose latency or
//                      energy lies within band_fraction of the incumbent
//                      argmin, plus — when the grid has a "placement"
//                      axis — every point of any reduced cell whose
//                      latency-optimal placement flips against a grid
//                      neighbor (the decision boundary);
//   pass 2 (fine)    — ONLY the candidates, re-evaluated at fine_frames
//                      (seeds point_seed(seed, i, 2)).
//
// The result is a hybrid sweep — fine values at the points that decide,
// coarse values elsewhere — reduced through the ordinary merge law.
//
// Determinism contract (the same one every sweep in this repo obeys):
// each pass's per-point seed derives from (sweep_seed, global_index,
// pass) and nothing else, and the selection rule is a pure function of
// the coarse measurements — themselves bitwise shard-independent — so the
// refinement set, the hybrid records, and the merged summary are bitwise
// independent of shard count, strategy, thread count, and resume
// position. Sharded execution: run each shard's coarse leg with
// `sweep_worker --request R --pass coarse`, derive the refinement set
// once from the coarse record streams (`sweep_plan --refine-out`), then
// run each shard's fine leg with `--pass fine --refine SET --coarse
// STEM`: the pass-2 worker re-evaluates its refined indices and copies
// every other record from its own coarse stream, producing complete
// hybrid partials that merge through the unmodified merge_partials
// (scripts/sweep_adaptive.sh is the ctest gate).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/sweep_request.h"

namespace xr::runtime {

/// One point's scalar estimates — the selection rule's whole input, and
/// the per-point output of the driver (coarse or fine, per the set).
struct PointEstimate {
  double latency_ms = 0;
  double energy_mj = 0;
};

/// The pass-1 evaluator of an adaptive request: the base evaluator at
/// coarse_frames, pass 1.
[[nodiscard]] shard::EvaluatorSpec coarse_evaluator(
    const shard::EvaluatorSpec& base, const AdaptiveSpec& adaptive);
/// The pass-2 evaluator: fine_frames, pass 2.
[[nodiscard]] shard::EvaluatorSpec fine_evaluator(
    const shard::EvaluatorSpec& base, const AdaptiveSpec& adaptive);

/// The sweep fingerprint of an adaptive request: grid + base evaluator +
/// adaptive block, chained the same way grid_fingerprint chains grid and
/// evaluator. Hybrid (pass-2) record streams and partials carry this, so
/// resume and merge can never mix an adaptive sweep with either of its
/// single-fidelity cousins.
[[nodiscard]] std::uint64_t adaptive_fingerprint(
    const GridSpec& grid, const shard::EvaluatorSpec& evaluator,
    const AdaptiveSpec& adaptive);

/// The pure selection rule: given the coarse measurement of every grid
/// point (indexed by global grid index; size must equal the grid's size),
/// return the sorted, deduplicated refinement set. Two sub-rules, united:
///
///   * band — latency <= min_latency · (1 + band_fraction), or energy <=
///     min_energy · (1 + band_fraction). Inclusive at the edge, so the
///     argmins themselves always refine (band 0 refines them alone).
///   * boundary flip — when the grid has a "placement" axis with >= 2
///     values: for each reduced cell (the coordinates of every other
///     axis), the placement decision is the axis value minimizing coarse
///     latency (ties to the earlier axis position). Every point of two
///     cells adjacent along any non-placement axis whose decisions
///     disagree is a candidate — those cells straddle the decision
///     boundary, where coarse-pass noise can flip the answer.
///
/// Throws std::invalid_argument when coarse.size() disagrees with the
/// grid's size.
[[nodiscard]] std::vector<std::size_t> select_refinement(
    const GridSpec& grid, const std::vector<PointEstimate>& coarse,
    const AdaptiveSpec& adaptive);

/// Serializable refinement-set document ("xr.sweep.refine.v1") — the file
/// `sweep_plan --refine-out` writes and `sweep_worker --refine` consumes.
/// Carries the adaptive sweep fingerprint so a pass-2 worker refuses a
/// set derived from a different request.
struct RefinementSet {
  std::uint64_t fingerprint = 0;
  std::size_t grid_size = 0;
  std::vector<std::size_t> indices;  ///< sorted ascending, unique.

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static RefinementSet from_json(const core::Json& j);
};

/// Parse coarse record streams (any disjoint complete cover of the grid,
/// e.g. the K pass-1 shard record files, .jsonl or .xrb in any mix —
/// format autodetected per path) into the per-point estimates the
/// selection rule consumes. Every record must carry a ground-truth
/// measurement; throws on missing/duplicate indices or coverage gaps.
[[nodiscard]] std::vector<PointEstimate> coarse_estimates_from_records(
    const std::vector<std::string>& paths, std::size_t grid_size);

/// Result of an adaptive run.
struct AdaptiveOutcome {
  /// The hybrid summary — extrema/Pareto/GT aggregates over fine values
  /// at refined points and coarse values elsewhere — produced through
  /// merge_partials (K = 1), so a sharded two-pass run of the same
  /// request merges bitwise identical to it.
  shard::MergedSummary summary;
  /// The refinement set (sorted global indices).
  std::vector<std::size_t> refined;
  /// Per-point hybrid estimates, indexed by global grid index — what the
  /// summary was reduced from; callers (the bench, decision-set checks)
  /// read per-point values here.
  std::vector<PointEstimate> estimates;
  std::size_t coarse_frames = 0, fine_frames = 0;
  double coarse_wall_ms = 0, fine_wall_ms = 0;
};

/// The in-process two-pass driver. Requires request.adaptive engaged and
/// a ground-truth evaluator (throws std::invalid_argument otherwise).
/// Pool sizing and task grain follow request.execution.
class AdaptiveSweep {
 public:
  explicit AdaptiveSweep(SweepRequest request,
                         core::XrPerformanceModel model = {});

  [[nodiscard]] AdaptiveOutcome run() const;

  [[nodiscard]] const SweepRequest& request() const noexcept {
    return request_;
  }

 private:
  SweepRequest request_;
  core::XrPerformanceModel model_;
};

/// Convenience: AdaptiveSweep(request, model).run().
[[nodiscard]] AdaptiveOutcome run_adaptive(
    const SweepRequest& request, const core::XrPerformanceModel& model = {});

}  // namespace xr::runtime
