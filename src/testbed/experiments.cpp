#include "testbed/experiments.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/regression.h"
#include "math/stats.h"
#include "runtime/batch_evaluator.h"
#include "runtime/shard/evaluator.h"
#include "runtime/shard/shard_plan.h"
#include "runtime/sweep.h"
#include "trace/table.h"
#include "wireless/propagation.h"
#include "xrsim/sensors.h"

namespace xr::testbed {

namespace {

/// Ground truth + proposed-model evaluation of one sweep point.
struct PointMeasurement {
  double gt_latency_ms = 0;
  double gt_energy_mj = 0;
  core::PerformanceReport report;
};

/// Fan the whole sweep out through the shard layer's ground-truth
/// evaluator: evaluate_point with the *global* grid index is the exact
/// per-point code path (and the exact per-point seed derivation) the
/// multi-process sweep_worker runs over a ShardPlan slice of the same
/// grid, so an in-process sweep and a sharded one measure
/// bitwise-identical values — scripts/sweep_gt_sharded.sh asserts it.
/// One flat map, no shard barriers: range shards concatenated in order
/// are exactly the 0..N-1 enumeration, so partitioning in-process would
/// only serialize the pool.
std::vector<PointMeasurement> measure_sweep(
    const runtime::ScenarioGrid& grid, const SweepConfig& cfg,
    std::uint64_t seed_offset = 0) {
  const auto evaluator = gt_evaluator_spec(cfg, seed_offset);
  const runtime::BatchEvaluator engine;
  return engine.map(grid.size(), [&](std::size_t g) {
    const auto p = runtime::shard::evaluate_point(evaluator, engine.model(),
                                                  grid.at(g), g);
    return PointMeasurement{p.gt->mean_latency_ms, p.gt->mean_energy_mj,
                            p.report};
  });
}

std::string clock_label(const char* prefix, double ghz) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s (%.0f GHz)", prefix, ghz);
  return buf;
}

ValidationResult run_validation(Metric metric,
                                core::InferencePlacement placement,
                                const SweepConfig& cfg) {
  const bool latency = metric == Metric::kLatency;
  const bool local = placement == core::InferencePlacement::kLocal;
  ValidationResult out;
  out.series = trace::SeriesSet(
      std::string(latency ? "End-to-end latency, " : "End-to-end energy, ") +
          (local ? "local inference" : "remote inference"),
      "frame size (pixel^2)", latency ? "latency (ms)" : "energy (mJ)");

  // One sharded-evaluator run over the clock × size grid (built from the
  // same serializable spec the sweep tools shard); the serial code below
  // is a reduction over its index-ordered results.
  const auto grid = validation_grid_spec(placement, cfg).build();
  const auto points = measure_sweep(grid, cfg);

  std::vector<double> gt_all, model_all;
  std::size_t i = 0;
  for (double ghz : cfg.cpu_clocks_ghz) {
    auto& gt_series = out.series.series(clock_label("GT", ghz));
    auto& mod_series = out.series.series(clock_label("Proposed", ghz));
    std::vector<double> gt_clock, model_clock;
    for (double size : cfg.frame_sizes) {
      const PointMeasurement& m = points[i++];
      const double gt_value = latency ? m.gt_latency_ms : m.gt_energy_mj;
      const double model_value =
          latency ? m.report.latency.total : m.report.energy.total;
      gt_series.add(size, gt_value);
      mod_series.add(size, model_value);
      gt_clock.push_back(gt_value);
      model_clock.push_back(model_value);
    }
    out.per_clock_error_percent.push_back(math::mape(gt_clock, model_clock));
    gt_all.insert(gt_all.end(), gt_clock.begin(), gt_clock.end());
    model_all.insert(model_all.end(), model_clock.begin(), model_clock.end());
  }
  out.mean_error_percent = math::mape(gt_all, model_all);
  return out;
}

}  // namespace

runtime::shard::EvaluatorSpec gt_evaluator_spec(const SweepConfig& cfg,
                                                std::uint64_t seed_offset) {
  if (cfg.frames_per_point == 0)
    throw std::invalid_argument(
        "SweepConfig: frames_per_point must be >= 1 (a zero-frame sweep "
        "would silently measure nothing)");
  runtime::shard::EvaluatorSpec ev;
  ev.kind = runtime::shard::EvaluatorKind::kGroundTruth;
  ev.seed = cfg.seed + seed_offset;
  ev.frames_per_point = cfg.frames_per_point;
  return ev;
}

ValidationResult run_latency_validation(core::InferencePlacement placement,
                                        const SweepConfig& cfg) {
  return run_validation(Metric::kLatency, placement, cfg);
}

ValidationResult run_energy_validation(core::InferencePlacement placement,
                                       const SweepConfig& cfg) {
  return run_validation(Metric::kEnergy, placement, cfg);
}

AoiValidationResult run_aoi_validation(const AoiSweepConfig& cfg) {
  AoiValidationResult out;
  out.series = trace::SeriesSet("Age-of-Information validation",
                                "time (ms)", "AoI (ms)");
  const core::AoiModel model;
  core::BufferConfig buffer;  // defaults: stable external class.
  std::vector<double> gt_all, model_all;

  for (double rate : cfg.sensor_rates_hz) {
    core::SensorConfig sensor;
    sensor.generation_hz = rate;
    sensor.distance_m = 20.0;
    char label[32];
    std::snprintf(label, sizeof label, "%.0f Hz", rate);

    const auto analytic =
        model.timeline(sensor, buffer, cfg.request_period_ms, cfg.cycles);
    xrsim::SensorSimConfig sim_cfg;
    sim_cfg.seed = cfg.seed;
    const auto observed = xrsim::simulate_sensor_aoi(
        sensor, buffer, cfg.request_period_ms, cfg.cycles, sim_cfg);

    auto& gt_series = out.series.series(std::string("GT (") + label + ")");
    auto& mod_series =
        out.series.series(std::string("Proposed (") + label + ")");
    for (int i = 0; i < cfg.cycles; ++i) {
      const double t = analytic[std::size_t(i)].request_time_ms;
      gt_series.add(t, observed[std::size_t(i)].aoi_ms);
      mod_series.add(t, analytic[std::size_t(i)].aoi_ms);
      gt_all.push_back(observed[std::size_t(i)].aoi_ms);
      model_all.push_back(analytic[std::size_t(i)].aoi_ms);
    }
  }
  out.mean_error_percent = math::mape(gt_all, model_all);
  return out;
}

RoiStaircaseResult run_roi_staircase(double sensor_rate_hz,
                                     double request_period_ms, int cycles) {
  RoiStaircaseResult out;
  out.sensor_rate_hz = sensor_rate_hz;
  out.request_period_ms = request_period_ms;
  core::SensorConfig sensor;
  sensor.generation_hz = sensor_rate_hz;
  sensor.distance_m = 0.0;  // the paper's Fig. 4(f) shows pure timing.
  core::BufferConfig buffer;
  buffer.external_arrival_per_ms = 1e-9;  // negligible buffer wait
  buffer.service_rate_per_ms = 1e9;
  const core::AoiModel model;
  out.points = model.timeline(sensor, buffer, request_period_ms, cycles);
  return out;
}

namespace {

/// Ground-truth measurements over the calibration grid.
struct GridPoint {
  core::ScenarioConfig scenario;
  double gt_latency_ms = 0;
  double gt_energy_mj = 0;
};

std::vector<GridPoint> measure_grid(const SweepConfig& cfg,
                                    std::uint64_t seed_offset) {
  const auto sweep =
      validation_grid_spec(core::InferencePlacement::kRemote, cfg).build();
  const auto points = measure_sweep(sweep, cfg, seed_offset);
  std::vector<GridPoint> grid;
  grid.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    grid.push_back(GridPoint{sweep.at(i), points[i].gt_latency_ms,
                             points[i].gt_energy_mj});
  return grid;
}

}  // namespace

CalibratedBaselines calibrate_baselines(const SweepConfig& cfg) {
  // The calibration grid always spans several clocks so the baselines' freq-
  // dependent and freq-independent features stay linearly independent, no
  // matter what the evaluation sweep looks like.
  SweepConfig cal_cfg = cfg;
  cal_cfg.cpu_clocks_ghz = {1.0, 1.5, 2.0, 2.5, 3.0};
  const auto grid = measure_grid(cal_cfg, /*seed_offset=*/1000);
  CalibratedBaselines out;
  out.calibration_points = grid.size();

  // ---------------- FACT latency: fit {a, b} ----------------------------
  // L = capture + a (s_f+s_v)/f_c · 1e3 + b s_f/f_edge · 1e3 + tx + prop
  //     + core_net, with everything but a, b fixed and physical.
  {
    baselines::FactConfig fc;  // defaults give the fixed structure
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (const auto& p : grid) {
      const auto& s = p.scenario;
      const double capture = 1000.0 / s.frame.fps;
      const double tx = wireless::transmission_time_ms(
                            core::raw_frame_mb(s.frame),
                            s.network.throughput_mbps) +
                        wireless::propagation_delay_ms(
                            s.network.edge_distance_m);
      const double f1 = (s.frame.frame_size + s.frame.scene_size) /
                        s.client.cpu_ghz * 1000.0;
      const double f2 = s.frame.frame_size / fc.edge_cpu_ghz * 1000.0;
      x.push_back({f1, f2});
      y.push_back(p.gt_latency_ms - capture - tx - fc.core_network_ms);
    }
    math::LinearModel fit({math::raw_feature("f1", 0),
                           math::raw_feature("f2", 1)},
                          /*intercept=*/false);
    fit.fit(x, y);
    fc.client_cycles_per_size = std::max(fit.coefficients()[0], 1e-6);
    fc.edge_cycles_per_size = std::max(fit.coefficients()[1], 1e-6);

    // FACT energy: fit {device_active_mw, radio_tx_mw}.
    const baselines::FactModel probe(fc);
    std::vector<std::vector<double>> xe;
    std::vector<double> ye;
    for (const auto& p : grid) {
      const auto& s = p.scenario;
      const double capture = 1000.0 / s.frame.fps;
      const double compute_ms =
          capture + fc.client_cycles_per_size *
                        (s.frame.frame_size + s.frame.scene_size) /
                        s.client.cpu_ghz * 1000.0;
      const double tx_ms = wireless::transmission_time_ms(
                               core::raw_frame_mb(s.frame),
                               s.network.throughput_mbps) +
                           wireless::propagation_delay_ms(
                               s.network.edge_distance_m);
      xe.push_back({compute_ms / 1000.0,
                    compute_ms / 1000.0 * s.client.cpu_ghz, tx_ms / 1000.0});
      ye.push_back(p.gt_energy_mj);
    }
    math::LinearModel efit({math::raw_feature("compute_s", 0),
                            math::raw_feature("compute_s*fc", 1),
                            math::raw_feature("tx_s", 2)},
                           /*intercept=*/false);
    efit.fit(xe, ye);
    fc.device_active_mw = efit.coefficients()[0];
    fc.device_active_mw_per_ghz = efit.coefficients()[1];
    fc.radio_tx_mw = std::max(efit.coefficients()[2], 1.0);
    out.fact = baselines::FactModel(fc);
  }

  // ---------------- LEAF latency: fit {K_cycles, b_edge, C_fixed} -------
  // With s_v = s_f on this workload the capture/volumetric/render cycle
  // coefficients are collinear; LEAF effectively fits one client-cycles
  // slope, one edge slope, and one fixed cost (its measured encode+buffer
  // constants).
  {
    baselines::LeafConfig lc;
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    const devices::CodecModel codec;
    for (const auto& p : grid) {
      const auto& s = p.scenario;
      const double capture = 1000.0 / s.frame.fps;
      double ext = 0;
      for (const auto& sensor : s.sensors)
        ext = std::max(ext, 1000.0 / sensor.generation_hz);
      const double wireless_ms =
          wireless::transmission_time_ms(
              codec.encoded_size_mb(s.frame.frame_size, s.codec),
              s.network.throughput_mbps) +
          wireless::propagation_delay_ms(s.network.edge_distance_m);
      const double g1 = s.frame.frame_size / s.client.cpu_ghz * 1000.0;
      const double g2 = s.frame.frame_size / lc.edge_cpu_ghz * 1000.0;
      x.push_back({g1, g2});
      y.push_back(p.gt_latency_ms - capture - ext - wireless_ms);
    }
    math::LinearModel fit({math::raw_feature("g1", 0),
                           math::raw_feature("g2", 1)},
                          /*intercept=*/true);
    fit.fit(x, y);
    const double fixed = std::max(fit.coefficients()[0], 0.0);
    const double k_client = std::max(fit.coefficients()[1], 1e-6);
    const double b_edge = std::max(fit.coefficients()[2], 1e-6);
    // Distribute: capture/volumetric/render split the client slope; the
    // fixed cost is LEAF's measured encode + buffer constants.
    lc.capture_cycles_per_size = k_client / 3.0;
    lc.volumetric_cycles_per_size = k_client / 3.0;
    lc.stage_cycles_per_size = k_client / 3.0;
    lc.edge_inference_cycles_per_size = b_edge;
    lc.encode_fixed_ms = 0.85 * fixed;
    lc.buffer_fixed_ms = 0.15 * fixed;

    // LEAF energy: fit {compute_mw, radio_tx_mw} with rx/idle at defaults.
    baselines::LeafModel probe(lc);
    std::vector<std::vector<double>> xe;
    std::vector<double> ye;
    for (const auto& p : grid) {
      const auto b = probe.breakdown(p.scenario);
      const double compute_ms = b.capture + b.volumetric +
                                b.conversion_or_encode + b.rendering;
      const double known = (lc.radio_rx_mw * b.external +
                            lc.idle_mw * b.inference) /
                           1000.0;
      xe.push_back({compute_ms / 1000.0,
                    compute_ms / 1000.0 * p.scenario.client.cpu_ghz,
                    b.wireless / 1000.0});
      ye.push_back(p.gt_energy_mj - known);
    }
    math::LinearModel efit({math::raw_feature("compute_s", 0),
                            math::raw_feature("compute_s*fc", 1),
                            math::raw_feature("tx_s", 2)},
                           /*intercept=*/false);
    efit.fit(xe, ye);
    lc.compute_mw = efit.coefficients()[0];
    lc.compute_mw_per_ghz = efit.coefficients()[1];
    lc.radio_tx_mw = std::max(efit.coefficients()[2], 1.0);
    out.leaf = baselines::LeafModel(lc);
  }
  return out;
}

ComparisonResult run_model_comparison(Metric metric, const SweepConfig& cfg) {
  const auto baselines_fitted = calibrate_baselines(cfg);
  const bool latency = metric == Metric::kLatency;

  ComparisonResult out;
  out.accuracy = trace::SeriesSet(
      std::string("Normalized accuracy, ") +
          (latency ? "end-to-end latency" : "end-to-end energy") +
          " (remote inference)",
      "frame size (pixel^2)", "normalized accuracy (%)");

  auto& gt_series = out.accuracy.series("GT");
  auto& prop_series = out.accuracy.series("Proposed");
  auto& fact_series = out.accuracy.series("FACT");
  auto& leaf_series = out.accuracy.series("LEAF");

  // Size (outer) × clock (inner) grid, built from the serializable Fig. 5
  // spec and batch-evaluated: every point carries its own ground-truth run
  // plus all three predictors.
  // Evaluation GT uses a different seed offset than the calibration grid.
  const auto grid = comparison_grid_spec(cfg).build();
  const auto points = measure_sweep(grid, cfg, /*seed_offset=*/0);
  struct BaselinePrediction {
    double fact = 0, leaf = 0;
  };
  const runtime::BatchEvaluator engine;
  const auto baseline_points =
      engine.map(grid, [&](const core::ScenarioConfig& scenario) {
        BaselinePrediction p;
        p.fact = latency ? baselines_fitted.fact.latency_ms(scenario)
                         : baselines_fitted.fact.energy_mj(scenario);
        p.leaf = latency ? baselines_fitted.leaf.latency_ms(scenario)
                         : baselines_fitted.leaf.energy_mj(scenario);
        return p;
      });

  std::vector<double> acc_p, acc_f, acc_l;
  std::size_t i = 0;
  for (double size : cfg.frame_sizes) {
    double err_p = 0, err_f = 0, err_l = 0;
    for (std::size_t k = 0; k < cfg.cpu_clocks_ghz.size(); ++k, ++i) {
      const PointMeasurement& m = points[i];
      const double truth = latency ? m.gt_latency_ms : m.gt_energy_mj;
      const double prop =
          latency ? m.report.latency.total : m.report.energy.total;
      err_p += std::abs(prop - truth) / truth;
      err_f += std::abs(baseline_points[i].fact - truth) / truth;
      err_l += std::abs(baseline_points[i].leaf - truth) / truth;
    }
    const double n = double(cfg.cpu_clocks_ghz.size());
    const double a_p = std::max(0.0, 100.0 - 100.0 * err_p / n);
    const double a_f = std::max(0.0, 100.0 - 100.0 * err_f / n);
    const double a_l = std::max(0.0, 100.0 - 100.0 * err_l / n);
    gt_series.add(size, 100.0);
    prop_series.add(size, a_p);
    fact_series.add(size, a_f);
    leaf_series.add(size, a_l);
    acc_p.push_back(a_p);
    acc_f.push_back(a_f);
    acc_l.push_back(a_l);
  }
  out.mean_accuracy_proposed = math::mean(acc_p);
  out.mean_accuracy_fact = math::mean(acc_f);
  out.mean_accuracy_leaf = math::mean(acc_l);
  return out;
}

const char* variant_name(ModelVariant v) noexcept {
  switch (v) {
    case ModelVariant::kFull: return "full model";
    case ModelVariant::kNoMemoryTerms: return "no memory terms";
    case ModelVariant::kNoAllocationModel: return "no allocation model";
    case ModelVariant::kNoCnnComplexity: return "no CNN complexity";
    case ModelVariant::kFixedEncodeCost: return "fixed encode cost";
  }
  return "unknown";
}

double variant_latency_ms(ModelVariant v, const core::ScenarioConfig& s) {
  switch (v) {
    case ModelVariant::kFull: {
      return core::LatencyModel().evaluate(s).total;
    }
    case ModelVariant::kNoMemoryTerms: {
      // Infinite memory bandwidth zeroes every δ/m term.
      core::ScenarioConfig t = s;
      t.client.memory_bandwidth_gbps = 1e12;
      for (auto& e : t.inference.edges) e.memory_bandwidth_gbps = 1e12;
      return core::LatencyModel().evaluate(t).total;
    }
    case ModelVariant::kNoAllocationModel: {
      // Cycles-style resource: c = κ f_c, with κ matched to the Eq. (3)
      // value at the 2 GHz center so the variant is calibrated, not broken.
      const devices::ComputeAllocationModel paper;
      const double kappa =
          paper.evaluate(2.0, s.client.gpu_ghz,
                         s.client.omega_c > 0 ? s.client.omega_c : 1.0) /
          2.0;
      devices::AllocationCoefficients flat{};
      flat.cpu_intercept = 0;
      flat.cpu_quadratic = 0;
      flat.cpu_linear = kappa;
      flat.gpu_intercept = 0;
      flat.gpu_quadratic = 0;
      flat.gpu_linear = kappa;
      core::LatencyModel::Submodels sub;
      sub.allocation = devices::ComputeAllocationModel(flat);
      return core::LatencyModel(std::move(sub)).evaluate(s).total;
    }
    case ModelVariant::kNoCnnComplexity: {
      core::LatencyModel::Submodels sub;
      sub.cnn = devices::CnnComplexityModel(
          devices::CnnComplexityCoefficients{1.0, 0.0, 0.0, 0.0});
      return core::LatencyModel(std::move(sub)).evaluate(s).total;
    }
    case ModelVariant::kFixedEncodeCost: {
      const core::LatencyModel model;
      const auto full = model.evaluate(s);
      if (s.inference.placement == core::InferencePlacement::kLocal)
        return full.total;
      // Replace Eq. (10) with the constant measured at the sweep center.
      const auto center = core::make_remote_scenario(500.0, 2.0);
      const double fixed_encode = model.encoding_ms(center);
      return full.total - full.encoding + fixed_encode;
    }
  }
  throw std::logic_error("variant_latency_ms: unknown variant");
}

namespace {

/// Clock/size axes over a factory base; axis order decides which is outer.
runtime::GridSpec clock_size_spec(const char* base,
                                         const SweepConfig& cfg,
                                         bool clock_outer) {
  runtime::GridSpec spec;
  spec.factory = base;
  spec.frame_size = 500.0;
  spec.cpu_ghz = 2.0;
  runtime::AxisSpec clocks;
  clocks.knob = "cpu_ghz";
  clocks.numbers = cfg.cpu_clocks_ghz;
  runtime::AxisSpec sizes;
  sizes.knob = "frame_size";
  sizes.numbers = cfg.frame_sizes;
  if (clock_outer)
    spec.axes = {std::move(clocks), std::move(sizes)};
  else
    spec.axes = {std::move(sizes), std::move(clocks)};
  return spec;
}

}  // namespace

runtime::GridSpec validation_grid_spec(
    core::InferencePlacement placement, const SweepConfig& cfg) {
  return clock_size_spec(
      placement == core::InferencePlacement::kLocal ? "local" : "remote",
      cfg, /*clock_outer=*/true);
}

runtime::GridSpec comparison_grid_spec(const SweepConfig& cfg) {
  return clock_size_spec("remote", cfg, /*clock_outer=*/false);
}

runtime::SweepRequest adaptive_validation_request(
    core::InferencePlacement placement, const SweepConfig& cfg,
    runtime::AdaptiveSpec adaptive) {
  runtime::SweepRequest request;
  request.grid = validation_grid_spec(placement, cfg);
  request.evaluator = gt_evaluator_spec(cfg);
  // One source of truth for the target fidelity: the evaluator's
  // frames_per_point is the fine pass.
  adaptive.fine_frames = cfg.frames_per_point;
  if (adaptive.coarse_frames >= adaptive.fine_frames)
    throw std::invalid_argument(
        "adaptive_validation_request: adaptive.coarse_frames must be < "
        "cfg.frames_per_point (the fine fidelity)");
  request.adaptive = std::move(adaptive);
  return request;
}

runtime::GridSpec placement_decision_grid_spec(const SweepConfig& cfg) {
  runtime::GridSpec spec = clock_size_spec("remote", cfg,
                                           /*clock_outer=*/true);
  runtime::AxisSpec placement;
  placement.knob = "placement";
  placement.strings = {"local", "remote"};
  // Placement outermost: each (clock, size) cell's variants sit a fixed
  // stride apart, and the flip rule scans cells along the inner axes.
  spec.axes.insert(spec.axes.begin(), std::move(placement));
  return spec;
}

runtime::GridSpec ablation_grid_spec(const SweepConfig& cfg) {
  return clock_size_spec("remote", cfg, /*clock_outer=*/true);
}

std::vector<AblationRow> run_ablation(const SweepConfig& cfg) {
  // GT over the remote sweep, batch-simulated on the runtime. The grid is
  // rebuilt from its serializable spec — the same document the sharded
  // sweep tools consume — so the in-process runner and the multi-process
  // path enumerate provably identical scenario spaces.
  const auto grid = ablation_grid_spec(cfg).build();
  const auto points = measure_sweep(grid, cfg);
  std::vector<double> truth;
  truth.reserve(points.size());
  for (const auto& p : points) truth.push_back(p.gt_latency_ms);

  // Each variant's predictions fan out over the same grid, routed through
  // the shard layer as range shards — the same partitioning the
  // multi-process sweep tools apply to this grid, exercised here from a
  // real call site. Concatenating range shards in shard order reproduces
  // the monolithic index order bitwise (the CI gate for this grid is
  // scripts/sweep_sharded.sh; this keeps the in-process runner on the
  // identical path).
  const runtime::BatchEvaluator engine;
  const runtime::shard::ShardPlan plan(
      grid.size(), std::min<std::size_t>(4, grid.size()),
      runtime::shard::ShardStrategy::kRange);
  std::vector<AblationRow> rows;
  for (ModelVariant v :
       {ModelVariant::kFull, ModelVariant::kNoMemoryTerms,
        ModelVariant::kNoAllocationModel, ModelVariant::kNoCnnComplexity,
        ModelVariant::kFixedEncodeCost}) {
    std::vector<double> predicted;
    predicted.reserve(grid.size());
    for (std::size_t k = 0; k < plan.shard_count(); ++k) {
      const auto part = engine.map(plan.shard_size(k), [&](std::size_t j) {
        return variant_latency_ms(v, grid.at(plan.global_index(k, j)));
      });
      predicted.insert(predicted.end(), part.begin(), part.end());
    }
    rows.push_back(AblationRow{v, math::mape(truth, predicted)});
  }
  return rows;
}

}  // namespace xr::testbed
