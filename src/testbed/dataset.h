// Synthetic measurement-dataset generation — the §VII data substitute.
//
// The paper trains its regression models (Eqs. 3, 10, 12, 21) on 119,465
// measured samples and evaluates them on 36,083 held-out samples, with the
// split by device (train: XR1/XR3/XR5/XR6; test: XR2/XR4/XR7). We cannot
// rerun their testbed, so this module generates the datasets from *hidden*
// device behaviour models: the true responses follow richer functional forms
// (DVFS efficiency ripple, device-specific offsets, codec interactions,
// CNN-depth saturation) than the linear regressions, plus measurement noise.
// Refitting the paper's regression forms on these datasets reproduces the
// reported goodness-of-fit regime (R² ≈ 0.79–0.87) and the cross-device
// generalization experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "devices/device.h"

namespace xr::testbed {

/// Raw-input rows plus targets, split §VII-style by device.
struct RegressionDataset {
  std::vector<std::vector<double>> x_train;
  std::vector<double> y_train;
  std::vector<std::vector<double>> x_test;
  std::vector<double> y_test;

  [[nodiscard]] std::size_t train_size() const noexcept {
    return y_train.size();
  }
  [[nodiscard]] std::size_t test_size() const noexcept {
    return y_test.size();
  }
};

/// Row counts per dataset, chosen so the totals match the paper's
/// 119,465-train / 36,083-test sample counts exactly.
struct DatasetSizes {
  std::size_t allocation_train = 40'000, allocation_test = 12'000;
  std::size_t encoding_train = 40'000, encoding_test = 12'000;
  std::size_t power_train = 30'000, power_test = 9'000;
  std::size_t cnn_train = 9'465, cnn_test = 3'083;
};

/// The four §VII datasets.
struct TestbedDatasets {
  RegressionDataset allocation;  ///< rows {f_c, f_g, ω_c} → c_client.
  RegressionDataset encoding;    ///< rows {n_i,n_b,n_bitrate,s_f1,n_fps,
                                 ///<        n_quant} → encode work.
  RegressionDataset cnn;         ///< rows {depth, storage, scale} → C_CNN.
  RegressionDataset power;       ///< rows {f_c, f_g, ω_c} → P_mean.

  [[nodiscard]] std::size_t total_train() const noexcept;
  [[nodiscard]] std::size_t total_test() const noexcept;
};

/// Generate all four datasets deterministically from a seed.
[[nodiscard]] TestbedDatasets generate_datasets(
    std::uint64_t seed, const DatasetSizes& sizes = DatasetSizes{});

/// Hidden ground-truth responses (exposed for white-box tests only; the
/// calibration code never calls these).
namespace hidden {
/// True allocated resource for a device operating point.
[[nodiscard]] double allocation_true(double fc, double fg, double wc,
                                     double device_bias, double noise);
/// True encoder work (Eq. 10 numerator's real-world counterpart).
[[nodiscard]] double encoding_true(double ni, double nb, double bitrate,
                                   double sf1, double fps, double quant,
                                   double device_bias, double noise);
/// True CNN complexity.
[[nodiscard]] double cnn_true(double depth, double storage, double scale,
                              double noise);
/// True mean power (regression units).
[[nodiscard]] double power_true(double fc, double fg, double wc,
                                double device_bias, double noise);
}  // namespace hidden

}  // namespace xr::testbed
