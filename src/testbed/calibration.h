// Regression calibration — reproduces the §VII training/evaluation workflow.
//
// Fits each of the paper's four regression models on the synthetic training
// split (devices XR1/XR3/XR5/XR6) and scores it on the held-out device split
// (XR2/XR4/XR7), reporting train/test R² next to the paper's printed values
// (0.87 allocation, 0.79 encoding, 0.844 CNN complexity, 0.863 power).
// The fitted coefficients can be injected back into the analytical models
// via the from_fitted() factories.
#pragma once

#include <string>
#include <vector>

#include "math/regression.h"
#include "testbed/dataset.h"

namespace xr::testbed {

/// Outcome of fitting one regression model.
struct CalibrationResult {
  std::string model_name;
  double paper_r2 = 0;       ///< the R² the paper reports for this model.
  math::FitSummary train;    ///< our fit diagnostics on the training split.
  std::size_t n_test = 0;    ///< held-out sample count.
  double test_r2 = 0;        ///< our R² on the held-out device split.
  std::vector<double> coefficients;
  std::string equation;      ///< human-readable fitted equation.
};

/// Fit Eq. (3) — compute allocation. Paper R² = 0.87.
[[nodiscard]] CalibrationResult calibrate_allocation(
    const RegressionDataset& data);
/// Fit Eq. (10)'s numerator — encoding work. Paper R² = 0.79.
[[nodiscard]] CalibrationResult calibrate_encoding(
    const RegressionDataset& data);
/// Fit Eq. (12) — CNN complexity. Paper R² = 0.844.
[[nodiscard]] CalibrationResult calibrate_cnn(const RegressionDataset& data);
/// Fit Eq. (21) — mean power. Paper R² = 0.863.
[[nodiscard]] CalibrationResult calibrate_power(const RegressionDataset& data);

/// All four, in the order above.
[[nodiscard]] std::vector<CalibrationResult> calibrate_all(
    const TestbedDatasets& datasets);

/// Render calibration results as an aligned table (the "Table III" the
/// paper reports inline in §VII).
[[nodiscard]] std::string render_calibration_table(
    const std::vector<CalibrationResult>& results);

}  // namespace xr::testbed
