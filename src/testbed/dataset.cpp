#include "testbed/dataset.h"

#include <cmath>
#include <stdexcept>

#include "devices/cnn.h"
#include "devices/codec.h"
#include "devices/compute.h"
#include "devices/power.h"
#include "math/rng.h"

namespace xr::testbed {

std::size_t TestbedDatasets::total_train() const noexcept {
  return allocation.train_size() + encoding.train_size() + cnn.train_size() +
         power.train_size();
}

std::size_t TestbedDatasets::total_test() const noexcept {
  return allocation.test_size() + encoding.test_size() + cnn.test_size() +
         power.test_size();
}

namespace hidden {

double allocation_true(double fc, double fg, double wc, double device_bias,
                       double noise) {
  // The device's real allocation curve: the paper's quadratic trend plus a
  // DVFS-governor ripple, a CPU/GPU contention interaction, and a
  // device-specific offset — structure the Eq. (3) form cannot capture.
  const devices::ComputeAllocationModel paper;
  double value = 0.0;
  if (wc > 0)
    value += wc * (paper.cpu_branch(fc) * (1.0 + 0.05 * std::sin(2.6 * fc)) +
                   device_bias);
  if (wc < 1)
    value += (1.0 - wc) *
             (paper.gpu_branch(fg) * (1.0 + 0.06 * std::sin(4.0 * fg)) +
              2.5 * device_bias);
  value -= 1.5 * wc * (1.0 - wc) * fc * fg;  // shared-memory contention
  return value + noise;
}

double encoding_true(double ni, double nb, double bitrate, double sf1,
                     double fps, double quant, double device_bias,
                     double noise) {
  const devices::CodecModel paper;
  devices::H264Config cfg;
  cfg.i_frame_interval = ni;
  cfg.b_frame_interval = nb;
  cfg.bitrate_mbps = bitrate;
  cfg.fps = fps;
  cfg.quantization = quant;
  double work = paper.encode_work(sf1, cfg);
  // Real encoders have motion-estimation interactions the linear form
  // misses: B-frame cost scales with bitrate, and fps pressure interacts
  // with resolution.
  work += 9.0 * nb * bitrate;
  work += 0.004 * sf1 * fps;
  work -= 0.35 * quant * nb;
  work *= 1.0 + 0.04 * std::sin(0.011 * sf1);
  return work + 40.0 * device_bias + noise;
}

double cnn_true(double depth, double storage, double scale, double noise) {
  const devices::CnnComplexityModel paper;
  double c = paper.evaluate(depth, storage, scale);
  // Depth saturates (deep nets pipeline well) and tiny quantized models pay
  // fixed dispatch overhead — both invisible to the linear form.
  c -= 6.0e-7 * depth * depth;
  c += 0.9 * std::exp(-storage / 4.0);
  return c + noise;
}

double power_true(double fc, double fg, double wc, double device_bias,
                  double noise) {
  const devices::PowerModel paper;
  double p = 0.0;
  if (wc > 0)
    p += wc * (paper.cpu_branch(fc) + 0.35 * std::sin(3.0 * fc));
  if (wc < 1)
    p += (1.0 - wc) * (paper.gpu_branch(fg) + 0.3 * std::sin(5.0 * fg));
  // Leakage grows super-quadratically at the top of the voltage curve.
  p += 0.12 * std::max(fc - 2.4, 0.0) * wc;
  return p + 0.4 * device_bias + noise;
}

}  // namespace hidden

namespace {

/// Stable per-device bias derived from the device id.
double device_bias(const devices::DeviceSpec& d) {
  const auto h = math::hash64(d.id);
  // Map to [-1, 1].
  return (double(h % 2000) / 1000.0) - 1.0;
}

/// Fill one split of a dataset by cycling over the given devices.
template <typename RowFn, typename TruthFn>
void fill(std::vector<std::vector<double>>& xs, std::vector<double>& ys,
          std::size_t count, const std::vector<devices::DeviceSpec>& devs,
          math::Rng& rng, RowFn&& row_fn, TruthFn&& truth_fn) {
  if (devs.empty()) throw std::logic_error("dataset: no devices");
  xs.reserve(xs.size() + count);
  ys.reserve(ys.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& dev = devs[i % devs.size()];
    auto row = row_fn(dev, rng);
    ys.push_back(truth_fn(dev, row, rng));
    xs.push_back(std::move(row));
  }
}

std::vector<double> allocation_row(const devices::DeviceSpec& d,
                                   math::Rng& rng) {
  const double fc = rng.uniform(0.8, d.max_cpu_ghz);
  const double fg = rng.uniform(0.4, std::max(d.max_gpu_ghz, 0.5));
  const double wc = rng.uniform(0.0, 1.0);
  return {fc, fg, wc};
}

std::vector<double> encoding_row(const devices::DeviceSpec&, math::Rng& rng) {
  const double ni = double(rng.uniform_int(10, 60));
  const double nb = double(rng.uniform_int(0, 4));
  const double bitrate = rng.uniform(1.0, 10.0);
  const double sf1 = rng.uniform(240.0, 720.0);
  const double fps = double(rng.uniform_int(15, 60));
  const double quant = double(rng.uniform_int(18, 40));
  return {ni, nb, bitrate, sf1, fps, quant};
}

std::vector<double> cnn_row(const devices::DeviceSpec&, math::Rng& rng) {
  // Sample around the Table II zoo with augmentation jitter, as the paper's
  // "vast dataset of different CNN models" would.
  const auto& zoo = devices::cnn_zoo();
  const auto& base =
      zoo[std::size_t(rng.uniform_int(0, std::int64_t(zoo.size()) - 1))];
  const double depth =
      std::max(1.0, double(base.depth_layers) * rng.uniform(0.8, 1.2));
  const double storage =
      std::max(0.5, base.storage_mb * rng.uniform(0.8, 1.2));
  const double scale = base.depth_scale > 0
                           ? base.depth_scale * rng.uniform(0.8, 1.2)
                           : 0.0;
  return {depth, storage, scale};
}

}  // namespace

TestbedDatasets generate_datasets(std::uint64_t seed,
                                  const DatasetSizes& sizes) {
  TestbedDatasets out;
  const auto train_devs = devices::training_devices();
  const auto test_devs = devices::test_devices();
  math::Rng root(seed);

  {
    math::Rng rng = root.stream("allocation");
    const auto truth = [](const devices::DeviceSpec& d,
                          const std::vector<double>& r, math::Rng& g) {
      return hidden::allocation_true(r[0], r[1], r[2], device_bias(d),
                                     g.normal(0.0, 2.2));
    };
    fill(out.allocation.x_train, out.allocation.y_train,
         sizes.allocation_train, train_devs, rng, allocation_row, truth);
    fill(out.allocation.x_test, out.allocation.y_test, sizes.allocation_test,
         test_devs, rng, allocation_row, truth);
  }
  {
    math::Rng rng = root.stream("encoding");
    const auto truth = [](const devices::DeviceSpec& d,
                          const std::vector<double>& r, math::Rng& g) {
      return hidden::encoding_true(r[0], r[1], r[2], r[3], r[4], r[5],
                                   device_bias(d), g.normal(0.0, 1250.0));
    };
    fill(out.encoding.x_train, out.encoding.y_train, sizes.encoding_train,
         train_devs, rng, encoding_row, truth);
    fill(out.encoding.x_test, out.encoding.y_test, sizes.encoding_test,
         test_devs, rng, encoding_row, truth);
  }
  {
    math::Rng rng = root.stream("cnn");
    const auto truth = [](const devices::DeviceSpec&,
                          const std::vector<double>& r, math::Rng& g) {
      return hidden::cnn_true(r[0], r[1], r[2], g.normal(0.0, 0.75));
    };
    fill(out.cnn.x_train, out.cnn.y_train, sizes.cnn_train, train_devs, rng,
         cnn_row, truth);
    fill(out.cnn.x_test, out.cnn.y_test, sizes.cnn_test, test_devs, rng,
         cnn_row, truth);
  }
  {
    math::Rng rng = root.stream("power");
    const auto truth = [](const devices::DeviceSpec& d,
                          const std::vector<double>& r, math::Rng& g) {
      return hidden::power_true(r[0], r[1], r[2], device_bias(d),
                                g.normal(0.0, 1.0));
    };
    fill(out.power.x_train, out.power.y_train, sizes.power_train, train_devs,
         rng, allocation_row, truth);
    fill(out.power.x_test, out.power.y_test, sizes.power_test, test_devs,
         rng, allocation_row, truth);
  }
  return out;
}

}  // namespace xr::testbed
