#include "testbed/calibration.h"

#include "devices/cnn.h"
#include "devices/codec.h"
#include "devices/compute.h"
#include "devices/power.h"
#include "trace/table.h"

namespace xr::testbed {

namespace {
CalibrationResult run_fit(std::string name, double paper_r2,
                          std::vector<math::Feature> features,
                          bool intercept, const RegressionDataset& data) {
  math::LinearModel model(std::move(features), intercept);
  CalibrationResult result;
  result.model_name = std::move(name);
  result.paper_r2 = paper_r2;
  result.train = model.fit(data.x_train, data.y_train);
  result.n_test = data.test_size();
  result.test_r2 = model.score(data.x_test, data.y_test);
  result.coefficients = model.coefficients();
  result.equation = model.equation_string();
  return result;
}
}  // namespace

CalibrationResult calibrate_allocation(const RegressionDataset& data) {
  return run_fit("allocation (Eq. 3)", 0.87,
                 devices::ComputeAllocationModel::regression_features(),
                 /*intercept=*/false, data);
}

CalibrationResult calibrate_encoding(const RegressionDataset& data) {
  return run_fit("encoding (Eq. 10)", 0.79,
                 devices::CodecModel::regression_features(),
                 /*intercept=*/true, data);
}

CalibrationResult calibrate_cnn(const RegressionDataset& data) {
  return run_fit("CNN complexity (Eq. 12)", 0.844,
                 devices::CnnComplexityModel::regression_features(),
                 /*intercept=*/true, data);
}

CalibrationResult calibrate_power(const RegressionDataset& data) {
  return run_fit("power (Eq. 21)", 0.863,
                 devices::PowerModel::regression_features(),
                 /*intercept=*/false, data);
}

std::vector<CalibrationResult> calibrate_all(const TestbedDatasets& d) {
  return {calibrate_allocation(d.allocation), calibrate_encoding(d.encoding),
          calibrate_cnn(d.cnn), calibrate_power(d.power)};
}

std::string render_calibration_table(
    const std::vector<CalibrationResult>& results) {
  trace::TablePrinter t({"model", "n train", "n test", "R2 train", "R2 test",
                         "adj R2", "paper R2"});
  t.set_align(0, trace::Align::kLeft);
  for (const auto& r : results) {
    t.add_row({r.model_name, std::to_string(r.train.n_samples),
               std::to_string(r.n_test),
               trace::fixed(r.train.r_squared, 3),
               trace::fixed(r.test_r2, 3),
               trace::fixed(r.train.adjusted_r_squared, 3),
               trace::fixed(r.paper_r2, 3)});
  }
  return t.render();
}

}  // namespace xr::testbed
