// Canonical experiment runners — one per table/figure of the paper's §VIII.
//
// Every bench binary under bench/ is a thin wrapper over these runners, so
// tests can assert on the same numbers the benches print.
//
//   Fig. 4(a)/(b): end-to-end latency validation (local/remote), frame-size
//                  sweep 300–700 at CPU clocks 1/2/3 GHz, GT vs Proposed.
//   Fig. 4(c)/(d): end-to-end energy validation, same sweeps.
//   Fig. 4(e):     AoI vs time for sensor rates 200/100/66.67 Hz.
//   Fig. 4(f):     AoI staircase + RoI for the 100 Hz sensor.
//   Fig. 5(a)/(b): normalized accuracy comparison GT/Proposed/FACT/LEAF.
//
// FACT and LEAF are calibrated the way their authors would calibrate them:
// their free constants are least-squares fitted against ground-truth
// measurements on a training grid, then evaluated on the figure sweep. The
// accuracy gap that remains is structural (missing memory terms, missing
// allocation/CNN/encoding models), exactly the paper's argument.
#pragma once

#include <string>
#include <vector>

#include "baselines/fact.h"
#include "baselines/leaf.h"
#include "core/framework.h"
#include "runtime/adaptive.h"
#include "runtime/shard/evaluator.h"
#include "runtime/shard/shard_plan.h"
#include "trace/series.h"
#include "xrsim/ground_truth.h"

namespace xr::testbed {

/// Which metric an experiment validates.
enum class Metric { kLatency, kEnergy };

/// Sweep configuration shared by the Fig. 4/5 experiments.
struct SweepConfig {
  std::vector<double> frame_sizes = {300, 400, 500, 600, 700};
  std::vector<double> cpu_clocks_ghz = {1.0, 2.0, 3.0};
  /// GT frames averaged per point. Must be >= 1: gt_evaluator_spec (the
  /// single choke point every sweep runner goes through) rejects 0 rather
  /// than silently running the simulator's configured default.
  std::size_t frames_per_point = 200;
  std::uint64_t seed = 42;
};

/// The ground-truth evaluator every Fig. 4/5 runner uses: per-point
/// simulator seeds derive from (cfg.seed + seed_offset) and the *global*
/// grid index, so in-process runs and sharded sweep_worker runs over the
/// same grid compute bitwise-identical measurements. Throws
/// std::invalid_argument when cfg.frames_per_point == 0.
[[nodiscard]] runtime::shard::EvaluatorSpec gt_evaluator_spec(
    const SweepConfig& cfg, std::uint64_t seed_offset = 0);

/// Result of a Fig. 4(a)–(d) validation sweep.
struct ValidationResult {
  trace::SeriesSet series;     ///< "GT (f GHz)" and "Proposed (f GHz)".
  double mean_error_percent = 0;  ///< MAPE of Proposed vs GT over all points.
  /// Per-clock mean errors, aligned with SweepConfig::cpu_clocks_ghz.
  std::vector<double> per_clock_error_percent;

  ValidationResult() : series("", "", "") {}
};

/// Fig. 4(a)/(b): latency validation for the given placement.
[[nodiscard]] ValidationResult run_latency_validation(
    core::InferencePlacement placement, const SweepConfig& cfg = {});

/// Fig. 4(c)/(d): energy validation.
[[nodiscard]] ValidationResult run_energy_validation(
    core::InferencePlacement placement, const SweepConfig& cfg = {});

/// One AoI validation curve configuration (Fig. 4e).
struct AoiSweepConfig {
  std::vector<double> sensor_rates_hz = {200.0, 100.0, 200.0 / 3.0};
  double request_period_ms = 5.0;
  int cycles = 18;  ///< covers the paper's 15–90 ms time axis.
  std::uint64_t seed = 42;
};

/// Fig. 4(e): AoI vs request time, GT (simulated sensors) vs Proposed.
struct AoiValidationResult {
  trace::SeriesSet series;  ///< x = request time (ms), y = AoI (ms).
  double mean_error_percent = 0;

  AoiValidationResult() : series("", "", "") {}
};
[[nodiscard]] AoiValidationResult run_aoi_validation(
    const AoiSweepConfig& cfg = {});

/// Fig. 4(f): the per-update AoI/RoI staircase of one sensor.
struct RoiStaircaseResult {
  std::vector<core::AoiPoint> points;  ///< analytical staircase.
  double sensor_rate_hz = 0;
  double request_period_ms = 0;
};
[[nodiscard]] RoiStaircaseResult run_roi_staircase(
    double sensor_rate_hz = 100.0, double request_period_ms = 5.0,
    int cycles = 8);

/// Calibrated baseline bundle (see header comment).
struct CalibratedBaselines {
  baselines::FactModel fact;
  baselines::LeafModel leaf;
  std::size_t calibration_points = 0;
};

/// Least-squares calibrate FACT and LEAF against ground truth on a training
/// grid of (frame size, clock) points.
[[nodiscard]] CalibratedBaselines calibrate_baselines(
    const SweepConfig& cfg = {});

/// Fig. 5(a)/(b): normalized-accuracy comparison on the remote-inference
/// sweep. Accuracy per frame size aggregates |error| across the CPU clocks.
struct ComparisonResult {
  trace::SeriesSet accuracy;  ///< x = frame size; GT/Proposed/FACT/LEAF (%).
  double mean_accuracy_proposed = 0;
  double mean_accuracy_fact = 0;
  double mean_accuracy_leaf = 0;

  /// The paper's headline gaps: Proposed − FACT and Proposed − LEAF.
  [[nodiscard]] double gap_vs_fact() const noexcept {
    return mean_accuracy_proposed - mean_accuracy_fact;
  }
  [[nodiscard]] double gap_vs_leaf() const noexcept {
    return mean_accuracy_proposed - mean_accuracy_leaf;
  }

  ComparisonResult() : accuracy("", "", "") {}
};
[[nodiscard]] ComparisonResult run_model_comparison(Metric metric,
                                                    const SweepConfig& cfg = {});

/// The Fig. 4(a)–(d) validation sweep as a *serializable* grid spec: CPU
/// clock (outer) × frame size (inner) over the local or remote factory
/// scenario. validation_grid_spec(p, cfg).build() enumerates exactly the
/// grid run_latency_validation / run_energy_validation measure, so
/// tools/sweep_worker with the ground_truth evaluator shards the same
/// sweep across processes (scripts/sweep_gt_sharded.sh).
[[nodiscard]] runtime::GridSpec validation_grid_spec(
    core::InferencePlacement placement, const SweepConfig& cfg = {});

/// The Fig. 5 comparison sweep as a grid spec: frame size (outer) × CPU
/// clock (inner) over the remote factory scenario.
[[nodiscard]] runtime::GridSpec comparison_grid_spec(
    const SweepConfig& cfg = {});

/// The Fig. 4 validation sweep as an adaptive-fidelity SweepRequest
/// (runtime/adaptive.h): ground-truth evaluator at cfg.frames_per_point
/// (the fine/target fidelity), coarse pass + boundary refinement per
/// `adaptive` (whose fine_frames is overwritten with cfg.frames_per_point
/// so the two cannot disagree). Throws when coarse_frames >=
/// cfg.frames_per_point.
[[nodiscard]] runtime::SweepRequest adaptive_validation_request(
    core::InferencePlacement placement, const SweepConfig& cfg = {},
    runtime::AdaptiveSpec adaptive = {});

/// The offload decision-boundary sweep: placement (outer) × CPU clock ×
/// frame size over the remote factory base. Each (clock, size) cell pairs
/// a local and a remote variant, so the ground truth draws a real
/// local/remote decision boundary across the plane — the boundary the
/// adaptive driver's flip rule refines.
[[nodiscard]] runtime::GridSpec placement_decision_grid_spec(
    const SweepConfig& cfg = {});

/// The ablation's remote-inference clock × size sweep as a *serializable*
/// grid spec — the document tools/sweep_worker and scripts/sweep_sharded.sh
/// shard across worker processes. ablation_grid_spec(cfg).build()
/// enumerates exactly the grid run_ablation evaluates (clock outer, frame
/// size inner over the remote factory scenario).
[[nodiscard]] runtime::GridSpec ablation_grid_spec(
    const SweepConfig& cfg = {});

/// Ablation of the proposed model's distinguishing terms (§VIII insight:
/// accuracy comes from the computation-resource, encoding, and
/// device↔edge-relation models). Each variant removes one term.
enum class ModelVariant {
  kFull,
  kNoMemoryTerms,        ///< drop every δ/m term.
  kNoAllocationModel,    ///< c_client = f_c (cycles-style).
  kNoCnnComplexity,      ///< C_CNN = 1.
  kFixedEncodeCost,      ///< Eq. (10) → constant measured at the center.
};
[[nodiscard]] const char* variant_name(ModelVariant v) noexcept;

struct AblationRow {
  ModelVariant variant;
  double latency_error_percent = 0;  ///< MAPE vs GT on the remote sweep.
};
[[nodiscard]] std::vector<AblationRow> run_ablation(
    const SweepConfig& cfg = {});

/// Evaluate the proposed model's latency under a variant (used by the
/// ablation; exposed for tests).
[[nodiscard]] double variant_latency_ms(ModelVariant v,
                                        const core::ScenarioConfig& s);

}  // namespace xr::testbed
