#include "sim/simulator.h"

#include <cmath>
#include <stdexcept>

namespace xr::sim {

Simulator::Simulator(std::uint64_t seed) noexcept : root_rng_(seed) {}

EventId Simulator::schedule_at(double at, Action action) {
  if (!std::isfinite(at) || at < now_)
    throw std::invalid_argument(
        "Simulator::schedule_at: time in the past or not finite");
  if (!action)
    throw std::invalid_argument("Simulator::schedule_at: empty action");
  const EventId id = next_id_++;
  queue_.push(Scheduled{at, next_sequence_++, id,
                        std::make_shared<Action>(std::move(action))});
  return id;
}

EventId Simulator::schedule_in(double delay, Action action) {
  if (!(delay >= 0))
    throw std::invalid_argument("Simulator::schedule_in: negative delay");
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_every(double period, Action action, double phase) {
  if (!(period > 0))
    throw std::invalid_argument(
        "Simulator::schedule_every: period must be > 0");
  if (!(phase >= 0))
    throw std::invalid_argument("Simulator::schedule_every: negative phase");
  const EventId id = schedule_at(now_ + phase, std::move(action));
  periodic_.emplace(id, period);
  return id;
}

bool Simulator::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  periodic_.erase(id);
  auto [_, inserted] = cancelled_.insert(id);
  return inserted;
}

bool Simulator::dispatch(const Scheduled& ev) {
  now_ = ev.time;
  if (cancelled_.contains(ev.id)) return false;
  ++executed_;
  (*ev.action)(*this);
  // Re-arm a periodic train unless the action cancelled itself.
  const auto it = periodic_.find(ev.id);
  if (it != periodic_.end() && !cancelled_.contains(ev.id))
    queue_.push(Scheduled{now_ + it->second, next_sequence_++, ev.id,
                          ev.action});
  return true;
}

std::size_t Simulator::run_until(double until) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    const Scheduled ev = queue_.top();
    queue_.pop();
    if (dispatch(ev)) ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

std::size_t Simulator::run() {
  if (!periodic_.empty())
    throw std::logic_error(
        "Simulator::run: periodic events active; use run_until");
  std::size_t n = 0;
  while (!queue_.empty()) {
    const Scheduled ev = queue_.top();
    queue_.pop();
    if (dispatch(ev)) ++n;
  }
  return n;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Scheduled ev = queue_.top();
    queue_.pop();
    if (dispatch(ev)) return true;
  }
  return false;
}

std::size_t Simulator::pending_events() const noexcept {
  // Cancelled events still sit in the heap; this is an upper bound.
  return queue_.size();
}

math::Rng Simulator::rng_stream(std::string_view name) const noexcept {
  return root_rng_.stream(name);
}

}  // namespace xr::sim
