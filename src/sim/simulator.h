// Discrete-event simulation engine.
//
// A minimal but complete DES kernel: a monotonically advancing clock, a
// priority queue of scheduled events (stable FIFO order among simultaneous
// events), cancellation handles, periodic processes, and named deterministic
// RNG streams. The ground-truth XR testbed (src/xrsim) is built on it.
//
// Time is in milliseconds, matching the rest of the framework.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "math/rng.h"

namespace xr::sim {

/// Opaque handle identifying a scheduled event (for cancellation).
using EventId = std::uint64_t;

/// The simulation kernel.
class Simulator {
 public:
  using Action = std::function<void(Simulator&)>;

  explicit Simulator(std::uint64_t seed = 0xC0FFEE) noexcept;

  /// Current simulation time in ms.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedule `action` to run at absolute time `at` (must be >= now()).
  /// Returns a handle usable with cancel(). Throws std::invalid_argument if
  /// `at` is in the past or not finite.
  EventId schedule_at(double at, Action action);

  /// Schedule after a non-negative delay from now.
  EventId schedule_in(double delay, Action action);

  /// Schedule a periodic process: first fires at now()+phase, then every
  /// `period`. Cancelling the returned id stops the whole train.
  /// Period must be > 0.
  EventId schedule_every(double period, Action action, double phase = 0.0);

  /// Cancel a pending (or periodic) event. Returns false if already fired
  /// and not periodic, or unknown.
  bool cancel(EventId id);

  /// Run until the event queue is empty or the clock passes `until` (ms).
  /// Events scheduled exactly at `until` still execute, and the clock is
  /// advanced to `until` even if the queue drains early. Returns the number
  /// of events executed.
  std::size_t run_until(double until);

  /// Run until the queue drains completely. Periodic events would run
  /// forever, so this throws std::logic_error if any periodic train is
  /// still active.
  std::size_t run();

  /// Execute exactly one event if any is pending; returns whether one ran.
  bool step();

  [[nodiscard]] std::size_t pending_events() const noexcept;
  [[nodiscard]] std::size_t executed_events() const noexcept {
    return executed_;
  }

  /// Deterministic named RNG stream: the same (seed, name) always yields the
  /// same sequence, independent of scheduling order.
  [[nodiscard]] math::Rng rng_stream(std::string_view name) const noexcept;

 private:
  struct Scheduled {
    double time;
    std::uint64_t sequence;  // tie-break: FIFO among equal times
    EventId id;
    std::shared_ptr<Action> action;
    bool operator>(const Scheduled& other) const noexcept {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  /// Runs one popped event; re-arms periodic trains. Returns true if the
  /// action actually executed (not cancelled).
  bool dispatch(const Scheduled& ev);

  double now_ = 0;
  std::uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
  std::size_t executed_ = 0;
  math::Rng root_rng_;
  std::priority_queue<Scheduled, std::vector<Scheduled>,
                      std::greater<Scheduled>>
      queue_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, double> periodic_;  // id -> period
};

}  // namespace xr::sim
