// M/G/1 queueing via the Pollaczek–Khinchine formula.
//
// The ground-truth simulator's encoder stage has non-exponential (jittered
// deterministic) service times; the M/G/1 model bounds the buffering error an
// M/M/1 assumption introduces and is exercised by the ablation benches.
#pragma once

namespace xr::queueing {

/// A stable M/G/1 queue described by its arrival rate and the first two
/// moments of the service-time distribution.
class MG1 {
 public:
  /// mean_service: E[S]; service_scv: squared coefficient of variation
  /// Var[S]/E[S]². Throws std::invalid_argument unless lambda*E[S] < 1.
  MG1(double lambda, double mean_service, double service_scv);

  /// Convenience factories.
  [[nodiscard]] static MG1 md1(double lambda, double deterministic_service);
  [[nodiscard]] static MG1 mm1(double lambda, double mu);

  [[nodiscard]] double utilization() const noexcept;
  /// Pollaczek–Khinchine mean waiting time:
  ///   Wq = rho E[S] (1 + C²) / (2 (1 − rho)).
  [[nodiscard]] double mean_waiting_time() const noexcept;
  [[nodiscard]] double mean_time_in_system() const noexcept;
  [[nodiscard]] double mean_number_in_queue() const noexcept;
  [[nodiscard]] double mean_number_in_system() const noexcept;

 private:
  double lambda_;
  double es_;
  double scv_;
};

}  // namespace xr::queueing
