#include "queueing/simqueue.h"

#include <algorithm>
#include <stdexcept>

namespace xr::queueing {

QueueSimResult simulate_fifo(const std::vector<double>& interarrival_times,
                             const std::vector<double>& service_times) {
  if (interarrival_times.size() != service_times.size())
    throw std::invalid_argument("simulate_fifo: length mismatch");
  if (interarrival_times.empty())
    throw std::invalid_argument("simulate_fifo: empty input");

  QueueSimResult result;
  result.jobs.reserve(interarrival_times.size());

  double clock = 0;
  double server_free_at = 0;
  double wait_sum = 0, sojourn_sum = 0;

  for (std::size_t i = 0; i < interarrival_times.size(); ++i) {
    if (interarrival_times[i] < 0 || service_times[i] < 0)
      throw std::invalid_argument("simulate_fifo: negative time");
    clock += interarrival_times[i];
    JobRecord job;
    job.arrival_time = clock;
    job.service_start = std::max(clock, server_free_at);
    job.departure_time = job.service_start + service_times[i];
    server_free_at = job.departure_time;
    wait_sum += job.waiting_time();
    sojourn_sum += job.time_in_system();
    result.jobs.push_back(job);
  }

  const auto n = double(result.jobs.size());
  result.mean_wait = wait_sum / n;
  result.mean_sojourn = sojourn_sum / n;

  // Time-averaged AoI via the sawtooth decomposition. The age at the
  // monitor resets to (departure - arrival of the *freshest delivered*
  // update); FIFO delivery keeps updates in generation order, so each
  // departure j resets age to the sojourn of job j.
  //
  // Integrate the sawtooth between consecutive departures:
  // between D_{j-1} and D_j the age grows linearly from
  // (D_{j-1} - A_{j-1}) to (D_j - A_{j-1}).
  double area = 0;
  double horizon_start = result.jobs.front().departure_time;
  for (std::size_t j = 1; j < result.jobs.size(); ++j) {
    const auto& prev = result.jobs[j - 1];
    const auto& cur = result.jobs[j];
    const double lo = cur.departure_time - prev.arrival_time;  // age just
    const double hi = prev.departure_time - prev.arrival_time; // after/before
    const double dt = cur.departure_time - prev.departure_time;
    // Trapezoid with left value `hi` growing to right value `lo`.
    area += 0.5 * (hi + lo) * dt;
  }
  const double horizon =
      result.jobs.back().departure_time - horizon_start;
  result.mean_aoi = horizon > 0 ? area / horizon : result.mean_sojourn;
  return result;
}

QueueSimResult simulate_mm1(double lambda, double mu, std::size_t jobs,
                            math::Rng& rng) {
  if (jobs == 0) throw std::invalid_argument("simulate_mm1: zero jobs");
  std::vector<double> inter(jobs), service(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    inter[i] = rng.exponential(lambda);
    service[i] = rng.exponential(mu);
  }
  return simulate_fifo(inter, service);
}

QueueSimResult simulate_md1(double lambda, double service_time,
                            std::size_t jobs, math::Rng& rng) {
  if (jobs == 0) throw std::invalid_argument("simulate_md1: zero jobs");
  std::vector<double> inter(jobs), service(jobs, service_time);
  for (std::size_t i = 0; i < jobs; ++i) inter[i] = rng.exponential(lambda);
  return simulate_fifo(inter, service);
}

}  // namespace xr::queueing
