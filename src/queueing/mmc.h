// M/M/c queueing: Erlang-B, Erlang-C, and the standard waiting metrics.
//
// Multi-server queues model the multi-edge-server deployments of Eq. (15):
// when an XR application splits inference across several edge servers the
// per-server buffers behave as an M/M/c pool under symmetric load, which the
// capacity-planning example uses.
#pragma once

namespace xr::queueing {

/// Erlang-B blocking probability for c servers offered load a = lambda/mu.
/// Computed with the numerically stable recurrence.
[[nodiscard]] double erlang_b(double offered_load, unsigned servers);

/// Erlang-C probability that an arrival must wait (M/M/c, lambda < c mu).
[[nodiscard]] double erlang_c(double offered_load, unsigned servers);

/// A stable M/M/c queue (lambda < c * mu).
class MMc {
 public:
  /// Throws std::invalid_argument unless servers >= 1 and lambda < c mu.
  MMc(double lambda, double mu, unsigned servers);

  [[nodiscard]] double arrival_rate() const noexcept { return lambda_; }
  [[nodiscard]] double service_rate() const noexcept { return mu_; }
  [[nodiscard]] unsigned servers() const noexcept { return c_; }

  /// Per-server utilization rho = lambda / (c mu).
  [[nodiscard]] double utilization() const noexcept;
  /// Probability an arriving job waits (Erlang C).
  [[nodiscard]] double probability_wait() const;
  /// Mean waiting time in queue.
  [[nodiscard]] double mean_waiting_time() const;
  /// Mean time in system (wait + service).
  [[nodiscard]] double mean_time_in_system() const;
  /// Mean number in queue.
  [[nodiscard]] double mean_number_in_queue() const;
  /// Mean number in system.
  [[nodiscard]] double mean_number_in_system() const;

 private:
  double lambda_;
  double mu_;
  unsigned c_;
};

}  // namespace xr::queueing
