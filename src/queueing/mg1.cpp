#include "queueing/mg1.h"

#include <stdexcept>

namespace xr::queueing {

MG1::MG1(double lambda, double mean_service, double service_scv)
    : lambda_(lambda), es_(mean_service), scv_(service_scv) {
  if (lambda <= 0 || mean_service <= 0)
    throw std::invalid_argument("MG1: rates must be positive");
  if (service_scv < 0)
    throw std::invalid_argument("MG1: SCV must be non-negative");
  if (lambda * mean_service >= 1.0)
    throw std::invalid_argument("MG1: unstable (rho >= 1)");
}

MG1 MG1::md1(double lambda, double deterministic_service) {
  return MG1(lambda, deterministic_service, 0.0);
}

MG1 MG1::mm1(double lambda, double mu) {
  if (mu <= 0) throw std::invalid_argument("MG1::mm1: mu must be positive");
  return MG1(lambda, 1.0 / mu, 1.0);
}

double MG1::utilization() const noexcept { return lambda_ * es_; }

double MG1::mean_waiting_time() const noexcept {
  const double rho = utilization();
  return rho * es_ * (1.0 + scv_) / (2.0 * (1.0 - rho));
}

double MG1::mean_time_in_system() const noexcept {
  return mean_waiting_time() + es_;
}

double MG1::mean_number_in_queue() const noexcept {
  return lambda_ * mean_waiting_time();
}

double MG1::mean_number_in_system() const noexcept {
  return lambda_ * mean_time_in_system();
}

}  // namespace xr::queueing
