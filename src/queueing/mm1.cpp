#include "queueing/mm1.h"

#include <cmath>
#include <stdexcept>

namespace xr::queueing {

bool mm1_stable(double lambda, double mu) noexcept {
  return lambda > 0.0 && mu > 0.0 && lambda < mu;
}

MM1::MM1(double lambda, double mu) : lambda_(lambda), mu_(mu) {
  if (!mm1_stable(lambda, mu))
    throw std::invalid_argument(
        "MM1: requires 0 < lambda < mu for stability");
}

double MM1::utilization() const noexcept { return lambda_ / mu_; }

double MM1::mean_time_in_system() const noexcept {
  return 1.0 / (mu_ - lambda_);
}

double MM1::mean_waiting_time() const noexcept {
  return utilization() / (mu_ - lambda_);
}

double MM1::mean_number_in_system() const noexcept {
  const double rho = utilization();
  return rho / (1.0 - rho);
}

double MM1::mean_number_in_queue() const noexcept {
  const double rho = utilization();
  return rho * rho / (1.0 - rho);
}

double MM1::probability_empty() const noexcept { return 1.0 - utilization(); }

double MM1::probability_n(unsigned n) const noexcept {
  const double rho = utilization();
  return (1.0 - rho) * std::pow(rho, double(n));
}

double MM1::sojourn_tail(double t) const noexcept {
  return std::exp(-(mu_ - lambda_) * t);
}

double MM1::average_aoi() const noexcept {
  const double rho = utilization();
  return (1.0 / mu_) * (1.0 + 1.0 / rho + rho * rho / (1.0 - rho));
}

}  // namespace xr::queueing
