// M/M/1 queueing formulas.
//
// The paper models the XR device's input buffer as a stable M/M/1 system:
// buffering time T̄ = 1/(µ − λ) (Eqs. 7 and 22). This module provides that
// quantity plus the standard derived metrics and the closed-form average
// Age-of-Information of an M/M/1 FCFS system, which the AoI validation uses
// as an independent cross-check.
#pragma once

namespace xr::queueing {

/// A stable M/M/1 queue with Poisson arrivals (rate lambda) and exponential
/// service (rate mu), lambda < mu. Rates are in events per unit time; all
/// returned times are in the same time unit.
class MM1 {
 public:
  /// Throws std::invalid_argument unless 0 < lambda < mu (stability).
  MM1(double lambda, double mu);

  [[nodiscard]] double arrival_rate() const noexcept { return lambda_; }
  [[nodiscard]] double service_rate() const noexcept { return mu_; }

  /// Utilization rho = lambda / mu, in (0, 1).
  [[nodiscard]] double utilization() const noexcept;
  /// Mean time in system W = 1 / (mu - lambda)  — the paper's T̄ (Eq. 22).
  [[nodiscard]] double mean_time_in_system() const noexcept;
  /// Mean waiting time in queue Wq = rho / (mu - lambda).
  [[nodiscard]] double mean_waiting_time() const noexcept;
  /// Mean number in system L = rho / (1 - rho).
  [[nodiscard]] double mean_number_in_system() const noexcept;
  /// Mean number in queue Lq = rho² / (1 - rho).
  [[nodiscard]] double mean_number_in_queue() const noexcept;
  /// P(system empty) = 1 - rho.
  [[nodiscard]] double probability_empty() const noexcept;
  /// P(exactly n in system) = (1 - rho) rho^n.
  [[nodiscard]] double probability_n(unsigned n) const noexcept;
  /// P(time in system > t) = exp(-(mu - lambda) t).
  [[nodiscard]] double sojourn_tail(double t) const noexcept;

  /// Closed-form average Age-of-Information of an M/M/1 FCFS queue
  /// (Kaul–Yates–Gruteser 2012):
  ///   AoI = (1/mu) (1 + 1/rho + rho²/(1 − rho)).
  [[nodiscard]] double average_aoi() const noexcept;

 private:
  double lambda_;
  double mu_;
};

/// Whether (lambda, mu) form a stable M/M/1 system.
[[nodiscard]] bool mm1_stable(double lambda, double mu) noexcept;

}  // namespace xr::queueing
