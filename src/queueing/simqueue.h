// Empirical single-server FIFO queue simulation (Lindley recursion).
//
// Cross-validates the closed-form M/M/1 / M/G/1 results: generate arrival
// and service sequences, push them through the exact waiting-time recursion,
// and compare empirical means with theory. Also measures empirical
// Age-of-Information for the AoI validation (Fig. 4e).
#pragma once

#include <cstddef>
#include <vector>

#include "math/rng.h"

namespace xr::queueing {

/// Per-job record from a queue simulation.
struct JobRecord {
  double arrival_time = 0;
  double service_start = 0;
  double departure_time = 0;

  [[nodiscard]] double waiting_time() const noexcept {
    return service_start - arrival_time;
  }
  [[nodiscard]] double time_in_system() const noexcept {
    return departure_time - arrival_time;
  }
};

/// Summary of a simulated queue run.
struct QueueSimResult {
  std::vector<JobRecord> jobs;
  double mean_wait = 0;
  double mean_sojourn = 0;
  /// Time-averaged Age-of-Information, computed from the departure process
  /// assuming each job is a status update generated at its arrival time.
  double mean_aoi = 0;
};

/// Simulate a FIFO single-server queue given explicit interarrival and
/// service times (equal lengths). Throws std::invalid_argument on mismatch.
[[nodiscard]] QueueSimResult simulate_fifo(
    const std::vector<double>& interarrival_times,
    const std::vector<double>& service_times);

/// Simulate an M/M/1 queue for `jobs` jobs with the given rates and RNG.
[[nodiscard]] QueueSimResult simulate_mm1(double lambda, double mu,
                                          std::size_t jobs, math::Rng& rng);

/// Simulate an M/D/1 queue (deterministic service) for `jobs` jobs.
[[nodiscard]] QueueSimResult simulate_md1(double lambda, double service_time,
                                          std::size_t jobs, math::Rng& rng);

}  // namespace xr::queueing
