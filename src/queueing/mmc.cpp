#include "queueing/mmc.h"

#include <stdexcept>

namespace xr::queueing {

double erlang_b(double offered_load, unsigned servers) {
  if (offered_load < 0)
    throw std::invalid_argument("erlang_b: offered load must be >= 0");
  // B(0, a) = 1; B(c, a) = a B(c-1, a) / (c + a B(c-1, a)).
  double b = 1.0;
  for (unsigned k = 1; k <= servers; ++k)
    b = offered_load * b / (double(k) + offered_load * b);
  return b;
}

double erlang_c(double offered_load, unsigned servers) {
  if (servers == 0) throw std::invalid_argument("erlang_c: need >= 1 server");
  if (offered_load >= double(servers))
    throw std::invalid_argument("erlang_c: unstable (a >= c)");
  const double b = erlang_b(offered_load, servers);
  const double rho = offered_load / double(servers);
  return b / (1.0 - rho + rho * b);
}

MMc::MMc(double lambda, double mu, unsigned servers)
    : lambda_(lambda), mu_(mu), c_(servers) {
  if (servers == 0) throw std::invalid_argument("MMc: need >= 1 server");
  if (lambda <= 0 || mu <= 0)
    throw std::invalid_argument("MMc: rates must be positive");
  if (lambda >= double(servers) * mu)
    throw std::invalid_argument("MMc: unstable (lambda >= c mu)");
}

double MMc::utilization() const noexcept {
  return lambda_ / (double(c_) * mu_);
}

double MMc::probability_wait() const { return erlang_c(lambda_ / mu_, c_); }

double MMc::mean_waiting_time() const {
  return probability_wait() / (double(c_) * mu_ - lambda_);
}

double MMc::mean_time_in_system() const {
  return mean_waiting_time() + 1.0 / mu_;
}

double MMc::mean_number_in_queue() const {
  return lambda_ * mean_waiting_time();
}

double MMc::mean_number_in_system() const {
  return lambda_ * mean_time_in_system();
}

}  // namespace xr::queueing
