#include "queueing/priority.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace xr::queueing {

PriorityMM1::PriorityMM1(std::vector<PriorityClass> classes, double mu)
    : classes_(std::move(classes)), mu_(mu) {
  if (classes_.empty())
    throw std::invalid_argument("PriorityMM1: need >= 1 class");
  if (mu <= 0) throw std::invalid_argument("PriorityMM1: mu must be > 0");
  double total = 0;
  for (const auto& c : classes_) {
    if (c.lambda <= 0)
      throw std::invalid_argument("PriorityMM1: lambdas must be > 0");
    total += c.lambda;
  }
  if (total >= mu)
    throw std::invalid_argument("PriorityMM1: unstable (sum lambda >= mu)");
}

double PriorityMM1::total_utilization() const noexcept {
  double total = 0;
  for (const auto& c : classes_) total += c.lambda;
  return total / mu_;
}

double PriorityMM1::mean_waiting_time(std::size_t k) const {
  if (k >= classes_.size())
    throw std::out_of_range("PriorityMM1: class index");
  // Mean residual service seen by an arrival (PASTA): with exponential
  // service, R = rho * E[S] = rho / mu.
  const double residual = total_utilization() / mu_;
  double sigma_above = 0;  // utilization of classes strictly above k
  for (std::size_t i = 0; i < k; ++i)
    sigma_above += classes_[i].lambda / mu_;
  const double sigma_incl = sigma_above + classes_[k].lambda / mu_;
  return residual / ((1.0 - sigma_above) * (1.0 - sigma_incl));
}

double PriorityMM1::mean_time_in_system(std::size_t k) const {
  return mean_waiting_time(k) + 1.0 / mu_;
}

double PriorityMM1::mean_number_in_system(std::size_t k) const {
  if (k >= classes_.size())
    throw std::out_of_range("PriorityMM1: class index");
  return classes_[k].lambda * mean_time_in_system(k);
}

double PriorityMM1::aggregate_mean_waiting_time() const {
  double lambda_total = 0;
  for (const auto& c : classes_) lambda_total += c.lambda;
  double acc = 0;
  for (std::size_t k = 0; k < classes_.size(); ++k)
    acc += classes_[k].lambda / lambda_total * mean_waiting_time(k);
  return acc;
}

PrioritySimResult simulate_priority_mm1(
    const std::vector<PriorityClass>& classes, double mu, std::size_t jobs,
    math::Rng& rng) {
  if (classes.empty())
    throw std::invalid_argument("simulate_priority_mm1: no classes");
  if (jobs == 0)
    throw std::invalid_argument("simulate_priority_mm1: zero jobs");

  struct Arrival {
    double time;
    std::size_t cls;
    bool operator>(const Arrival& o) const noexcept {
      if (time != o.time) return time > o.time;
      return cls > o.cls;
    }
  };

  // Pre-generate the merged Poisson arrival stream.
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>>
      arrivals;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    if (classes[c].lambda <= 0)
      throw std::invalid_argument("simulate_priority_mm1: lambda > 0");
    double t = 0;
    // Enough arrivals per class to cover `jobs` served in total.
    for (std::size_t i = 0; i < jobs; ++i) {
      t += rng.exponential(classes[c].lambda);
      arrivals.push(Arrival{t, c});
    }
  }

  // Head-of-line priority queue: one waiting FIFO per class.
  std::vector<std::queue<double>> waiting(classes.size());
  PrioritySimResult result;
  result.mean_wait_per_class.assign(classes.size(), 0.0);
  result.served_per_class.assign(classes.size(), 0);

  double server_free_at = 0;
  std::size_t served = 0;
  while (served < jobs) {
    // Admit every arrival that lands while the server is busy: they queue
    // and compete by priority when the server frees up.
    while (!arrivals.empty() && arrivals.top().time <= server_free_at) {
      const Arrival a = arrivals.top();
      arrivals.pop();
      waiting[a.cls].push(a.time);
    }
    // Serve the highest-priority waiting job, if any.
    const auto next_class = [&]() -> std::size_t {
      for (std::size_t c = 0; c < waiting.size(); ++c)
        if (!waiting[c].empty()) return c;
      return waiting.size();
    }();
    if (next_class == waiting.size()) {
      // Idle: jump the clock to the next arrival and admit it.
      if (arrivals.empty()) break;
      const Arrival a = arrivals.top();
      arrivals.pop();
      server_free_at = std::max(server_free_at, a.time);
      waiting[a.cls].push(a.time);
      continue;
    }
    const double arrival_time = waiting[next_class].front();
    waiting[next_class].pop();
    const double start = std::max(server_free_at, arrival_time);
    result.mean_wait_per_class[next_class] += start - arrival_time;
    ++result.served_per_class[next_class];
    server_free_at = start + rng.exponential(mu);
    ++served;
  }
  for (std::size_t c = 0; c < classes.size(); ++c)
    if (result.served_per_class[c] > 0)
      result.mean_wait_per_class[c] /= double(result.served_per_class[c]);
  return result;
}

}  // namespace xr::queueing
