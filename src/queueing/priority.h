// Non-preemptive priority M/M/1 — a refinement of the paper's input buffer.
//
// The paper models the XR input buffer as three independent M/M/1 classes
// (captured frames, volumetric data, external sensor packets) sharing a
// service rate (Eq. 7). A real input buffer serves one packet at a time, and
// giving time-critical sensor packets priority is the obvious deployment
// knob. This module provides the classic non-preemptive head-of-line
// priority M/M/1 results (Cobham's formulas) so the framework can quantify
// that design choice, plus an event-accurate simulator to validate them.
#pragma once

#include <cstddef>
#include <vector>

#include "math/rng.h"

namespace xr::queueing {

/// One priority class: Poisson arrivals at `lambda`, exponential service at
/// the shared rate mu. Index 0 is the highest priority.
struct PriorityClass {
  double lambda = 0;
};

/// Non-preemptive priority M/M/1 with a shared exponential service rate.
class PriorityMM1 {
 public:
  /// Throws std::invalid_argument unless every rate is positive and the
  /// total utilization Σλ/µ is below 1.
  PriorityMM1(std::vector<PriorityClass> classes, double mu);

  [[nodiscard]] std::size_t num_classes() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] double service_rate() const noexcept { return mu_; }
  /// Total utilization ρ = Σ λ_k / µ.
  [[nodiscard]] double total_utilization() const noexcept;

  /// Cobham's mean waiting time of class k (0 = highest priority):
  ///   W_k = R / ((1 − σ_{k-1})(1 − σ_k)),
  /// with R = ρ/µ the mean residual service and σ_k = Σ_{i<=k} λ_i/µ.
  [[nodiscard]] double mean_waiting_time(std::size_t k) const;
  /// Mean time in system of class k (wait + service).
  [[nodiscard]] double mean_time_in_system(std::size_t k) const;
  /// Mean number of class-k jobs in the system (Little).
  [[nodiscard]] double mean_number_in_system(std::size_t k) const;

  /// Aggregate mean waiting time across classes (λ-weighted) — must equal
  /// the FCFS M/M/1 value by the conservation law, which the tests verify.
  [[nodiscard]] double aggregate_mean_waiting_time() const;

 private:
  std::vector<PriorityClass> classes_;
  double mu_;
};

/// Empirical per-class waits from an event-accurate non-preemptive priority
/// simulation, for cross-validation of the closed forms.
struct PrioritySimResult {
  std::vector<double> mean_wait_per_class;
  std::vector<std::size_t> served_per_class;
};

[[nodiscard]] PrioritySimResult simulate_priority_mm1(
    const std::vector<PriorityClass>& classes, double mu, std::size_t jobs,
    math::Rng& rng);

}  // namespace xr::queueing
