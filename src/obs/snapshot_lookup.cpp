// Snapshot field lookups — compiled in both builds (the Snapshot struct is
// plain data either way; only the registry machinery is stubbed out).
#include "obs/registry.h"

#include <algorithm>

namespace xr::obs {

namespace {

template <typename Section>
auto find_named(const Section& section, std::string_view name)
    -> decltype(&section.front().second) {
  const auto it = std::find_if(
      section.begin(), section.end(),
      [&](const auto& entry) { return entry.first == name; });
  return it == section.end() ? nullptr : &it->second;
}

}  // namespace

const std::uint64_t* Snapshot::counter(std::string_view name) const {
  return find_named(counters, name);
}

const double* Snapshot::gauge(std::string_view name) const {
  return find_named(gauges, name);
}

const HistogramData* Snapshot::histogram(std::string_view name) const {
  return find_named(histograms, name);
}

}  // namespace xr::obs
