#ifndef XR_OBS_DISABLED

#include "obs/registry.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <mutex>
#include <new>
#include <stdexcept>
#include <unordered_map>

namespace xr::obs {

namespace detail {

namespace {

enum Kind : int { kCounter = 0, kGauge = 1, kHistogram = 2 };

constexpr std::size_t kCellAlign = 64;  // one cache line per thread cell

const char* kind_name(int kind) {
  switch (kind) {
    case kCounter:
      return "counter";
    case kGauge:
      return "gauge";
    default:
      return "histogram";
  }
}

}  // namespace

/// One thread's private slice of a counter or histogram family. Owned by
/// the family (not the thread) so totals survive thread exit; padded to a
/// cache line so two threads' cells never share one.
struct alignas(kCellAlign) Cell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  // One slot per bound plus the +Inf overflow slot; empty for counters.
  std::deque<std::atomic<std::uint64_t>> buckets;

  explicit Cell(std::size_t n_buckets) : buckets(n_buckets) {}
};

struct Family {
  std::string name;
  int kind = kCounter;
  std::vector<double> bounds;       // histogram only
  std::atomic<double> gauge{0.0};   // gauge only

  std::mutex cells_mutex;                    // guards `cells` growth
  std::deque<std::unique_ptr<Cell>> cells;   // one per writer thread
  // Unique across all families ever created in this process; keys the
  // thread-local cell cache, so a recycled Family* can never alias a
  // stale cache entry from a destroyed registry.
  std::uint64_t id = 0;

  Cell* cell_for_this_thread() {
    // Per-thread map family-id -> cell. A miss (first touch from this
    // thread) takes the family mutex once to append a fresh cell; every
    // later touch is one hash lookup.
    thread_local std::unordered_map<std::uint64_t, Cell*> t_cells;
    auto it = t_cells.find(id);
    if (it != t_cells.end()) return it->second;
    const std::size_t n_buckets =
        kind == kHistogram ? bounds.size() + 1 : 0;
    std::lock_guard<std::mutex> lock(cells_mutex);
    cells.push_back(std::make_unique<Cell>(n_buckets));
    Cell* cell = cells.back().get();
    t_cells.emplace(id, cell);
    return cell;
  }
};

}  // namespace detail

namespace {

std::uint64_t next_family_id() {
  static std::atomic<std::uint64_t> g_next{1};
  return g_next.fetch_add(1, std::memory_order_relaxed);
}

void atomic_add_double(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

struct Registry::Impl {
  mutable std::mutex mutex;  // guards `families` growth and snapshot/reset
  std::deque<std::unique_ptr<detail::Family>> families;
  std::unordered_map<std::string, detail::Family*> by_name;
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  // Leaked on purpose: handles living in function-local statics may fire
  // during shutdown, after any non-leaked registry would have died.
  static Registry* g = new Registry();
  return *g;
}

detail::Family* Registry::family(std::string name, int kind,
                                 std::vector<double> bounds) {
  if (name.empty())
    throw std::invalid_argument("obs: metric name must be non-empty");
  if (kind == detail::kHistogram) {
    if (bounds.empty())
      throw std::invalid_argument("obs: histogram '" + name +
                                  "' needs at least one bucket bound");
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (!std::isfinite(bounds[i]) ||
          (i > 0 && !(bounds[i - 1] < bounds[i])))
        throw std::invalid_argument(
            "obs: histogram '" + name +
            "' bounds must be finite and strictly ascending");
    }
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->by_name.find(name);
  if (it != impl_->by_name.end()) {
    detail::Family* f = it->second;
    if (f->kind != kind)
      throw std::invalid_argument(
          "obs: metric '" + name + "' already registered as a " +
          std::string(detail::kind_name(f->kind)) + ", cannot reopen as a " +
          detail::kind_name(kind));
    if (kind == detail::kHistogram && f->bounds != bounds)
      throw std::invalid_argument("obs: histogram '" + name +
                                  "' reopened with different bucket bounds");
    return f;
  }
  auto owned = std::make_unique<detail::Family>();
  owned->name = std::move(name);
  owned->kind = kind;
  owned->bounds = std::move(bounds);
  owned->id = next_family_id();
  detail::Family* f = owned.get();
  impl_->families.push_back(std::move(owned));
  impl_->by_name.emplace(f->name, f);
  return f;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& f : impl_->families) {
    switch (f->kind) {
      case detail::kCounter: {
        std::uint64_t total = 0;
        std::lock_guard<std::mutex> cells(f->cells_mutex);
        for (const auto& c : f->cells)
          total += c->count.load(std::memory_order_relaxed);
        out.counters.emplace_back(f->name, total);
        break;
      }
      case detail::kGauge:
        out.gauges.emplace_back(f->name,
                                f->gauge.load(std::memory_order_relaxed));
        break;
      default: {
        HistogramData h;
        h.bounds = f->bounds;
        h.counts.assign(f->bounds.size() + 1, 0);
        std::lock_guard<std::mutex> cells(f->cells_mutex);
        for (const auto& c : f->cells) {
          h.count += c->count.load(std::memory_order_relaxed);
          h.sum += c->sum.load(std::memory_order_relaxed);
          for (std::size_t i = 0; i < h.counts.size(); ++i)
            h.counts[i] += c->buckets[i].load(std::memory_order_relaxed);
        }
        out.histograms.emplace_back(f->name, std::move(h));
        break;
      }
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& f : impl_->families) {
    f->gauge.store(0.0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> cells(f->cells_mutex);
    for (const auto& c : f->cells) {
      c->count.store(0, std::memory_order_relaxed);
      c->sum.store(0.0, std::memory_order_relaxed);
      for (auto& b : c->buckets) b.store(0, std::memory_order_relaxed);
    }
  }
}

Counter::Counter(std::string name, Registry* registry)
    : family_((registry ? *registry : Registry::global())
                  .family(std::move(name), detail::kCounter, {})) {}

void Counter::add(std::uint64_t delta) noexcept {
  family_->cell_for_this_thread()->count.fetch_add(delta,
                                                   std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(family_->cells_mutex);
  for (const auto& c : family_->cells)
    total += c->count.load(std::memory_order_relaxed);
  return total;
}

Gauge::Gauge(std::string name, Registry* registry)
    : family_((registry ? *registry : Registry::global())
                  .family(std::move(name), detail::kGauge, {})) {}

void Gauge::set(double value) noexcept {
  family_->gauge.store(value, std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept {
  atomic_add_double(family_->gauge, delta);
}

double Gauge::value() const {
  return family_->gauge.load(std::memory_order_relaxed);
}

Histogram::Histogram(std::string name, std::vector<double> bounds,
                     Registry* registry)
    : family_((registry ? *registry : Registry::global())
                  .family(std::move(name), detail::kHistogram,
                          std::move(bounds))) {}

void Histogram::observe(double value) noexcept {
  detail::Cell* cell = family_->cell_for_this_thread();
  const auto& bounds = family_->bounds;
  // First bucket whose upper bound admits the value ("le" semantics);
  // values above every bound land in the trailing +Inf slot.
  const std::size_t i =
      static_cast<std::size_t>(std::lower_bound(bounds.begin(), bounds.end(),
                                                value) -
                               bounds.begin());
  cell->buckets[i].fetch_add(1, std::memory_order_relaxed);
  cell->count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(cell->sum, value);
}

HistogramData Histogram::data() const {
  HistogramData h;
  h.bounds = family_->bounds;
  h.counts.assign(h.bounds.size() + 1, 0);
  std::lock_guard<std::mutex> lock(family_->cells_mutex);
  for (const auto& c : family_->cells) {
    h.count += c->count.load(std::memory_order_relaxed);
    h.sum += c->sum.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < h.counts.size(); ++i)
      h.counts[i] += c->buckets[i].load(std::memory_order_relaxed);
  }
  return h;
}

const std::vector<double>& Histogram::latency_bounds_ms() {
  static const std::vector<double> bounds{0.01, 0.1, 1.0, 10.0,
                                          100.0, 1000.0, 10000.0};
  return bounds;
}

}  // namespace xr::obs

#endif  // XR_OBS_DISABLED
