// obs::Span — lightweight RAII tracing spans with ring-buffer retention.
//
// A span measures one named region of one thread: construction stamps a
// monotonic-clock start, destruction stamps the end and pushes the finished
// record into a process-wide ring buffer. Nesting is tracked per thread —
// a span opened while another is live on the same thread records that span
// as its parent — so capture_trace() yields a forest that reconstructs the
// call structure (request.run → request.map → pool tasks, …).
//
// The ring keeps the most recent `trace_capacity()` finished spans and
// counts what it dropped; capture_trace() serializes to the
// "xr.obs.trace.v1" document (obs/snapshot.h embeds it in snapshots).
//
// Same zero-perturbation contract as the registry: spans only read the
// steady clock and write trace state, never anything a computation reads;
// under XR_OBS_DISABLED a Span is an empty struct with no clock reads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/jsonio.h"

namespace xr::obs {

/// One finished span as retained by the ring buffer. Times are
/// microseconds on the steady clock, relative to the process trace epoch
/// (first obs use), so they order and subtract correctly but carry no
/// wall-clock meaning.
struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;         // unique per process, never 0
  std::uint64_t parent_id = 0;  // 0 = root
  std::uint32_t depth = 0;      // 0 = root, parent.depth + 1 otherwise
  std::uint64_t thread_id = 0;  // hashed std::thread::id (opaque label)
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
};

/// Serializable capture of the span ring ("xr.obs.trace.v1").
struct Trace {
  std::size_t capacity = 0;       // ring size at capture time
  std::uint64_t dropped = 0;      // finished spans evicted before capture
  std::vector<SpanRecord> spans;  // oldest first

  [[nodiscard]] core::Json to_json() const;
  /// Strict inverse of to_json: unknown fields and schema mismatches
  /// throw (same named-field rejection style as plan_index::from_json).
  [[nodiscard]] static Trace from_json(const core::Json& j);
};

#ifndef XR_OBS_DISABLED

class Span {
 public:
  /// `name` must outlive the span; pass string literals.
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t id_;
  std::uint64_t parent_id_;
  std::uint32_t depth_;
  std::uint64_t start_us_;
};

/// Ring capacity control (default 4096). Shrinking drops the oldest
/// retained spans (counted in Trace::dropped); capacity 0 disables
/// retention entirely.
void set_trace_capacity(std::size_t capacity);
[[nodiscard]] std::size_t trace_capacity();

/// Snapshot the ring (oldest first) without clearing it.
[[nodiscard]] Trace capture_trace();

/// Empty the ring and zero the dropped counter (capacity unchanged).
void clear_trace();

#else  // XR_OBS_DISABLED — spans cost nothing, the ring holds nothing.

class Span {
 public:
  explicit Span(const char*) noexcept {}
};

inline void set_trace_capacity(std::size_t) {}
[[nodiscard]] inline std::size_t trace_capacity() { return 0; }
[[nodiscard]] inline Trace capture_trace() { return {}; }
inline void clear_trace() {}

#endif  // XR_OBS_DISABLED

}  // namespace xr::obs
