#include "obs/span.h"

#include <stdexcept>

namespace xr::obs {

namespace {

constexpr const char* kTraceSchema = "xr.obs.trace.v1";

core::Json span_to_json(const SpanRecord& s) {
  core::Json j = core::Json::object();
  j.set("name", s.name);
  // Hex for every id: span ids stay small, but the thread id is a full
  // 64-bit hash and would not survive a double-typed JSON number.
  j.set("id", core::format_hex64(s.id));
  j.set("parent_id", core::format_hex64(s.parent_id));
  j.set("depth", std::size_t{s.depth});
  j.set("thread_id", core::format_hex64(s.thread_id));
  j.set("start_us", std::size_t{s.start_us});
  j.set("end_us", std::size_t{s.end_us});
  return j;
}

SpanRecord span_from_json(const core::Json& j) {
  SpanRecord s;
  for (const auto& [key, value] : j.as_object()) {
    if (key == "name")
      s.name = value.as_string();
    else if (key == "id")
      s.id = core::parse_hex64(value.as_string());
    else if (key == "parent_id")
      s.parent_id = core::parse_hex64(value.as_string());
    else if (key == "depth")
      s.depth = static_cast<std::uint32_t>(value.as_size());
    else if (key == "thread_id")
      s.thread_id = core::parse_hex64(value.as_string());
    else if (key == "start_us")
      s.start_us = value.as_size();
    else if (key == "end_us")
      s.end_us = value.as_size();
    else
      throw std::invalid_argument("Trace: unknown span field '" + key + "'");
  }
  if (s.id == 0)
    throw std::invalid_argument("Trace: span is missing a non-zero 'id'");
  return s;
}

}  // namespace

core::Json Trace::to_json() const {
  core::Json j = core::Json::object();
  j.set("schema", kTraceSchema);
  j.set("capacity", capacity);
  j.set("dropped", std::size_t{dropped});
  core::Json arr = core::Json::array();
  for (const SpanRecord& s : spans) arr.push_back(span_to_json(s));
  j.set("spans", std::move(arr));
  return j;
}

Trace Trace::from_json(const core::Json& j) {
  Trace out;
  bool saw_schema = false;
  for (const auto& [key, value] : j.as_object()) {
    if (key == "schema") {
      if (value.as_string() != kTraceSchema)
        throw std::invalid_argument("Trace: unknown schema '" +
                                    value.as_string() + "'");
      saw_schema = true;
    } else if (key == "capacity") {
      out.capacity = value.as_size();
    } else if (key == "dropped") {
      out.dropped = value.as_size();
    } else if (key == "spans") {
      for (const core::Json& s : value.as_array())
        out.spans.push_back(span_from_json(s));
    } else {
      throw std::invalid_argument("Trace: unknown field '" + key + "'");
    }
  }
  if (!saw_schema)
    throw std::invalid_argument("Trace: missing 'schema'");
  return out;
}

}  // namespace xr::obs

#ifndef XR_OBS_DISABLED

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace xr::obs {

namespace {

/// All finished spans land here; leaked like the registry so spans in
/// static destructors can still retire safely.
struct SpanRing {
  std::mutex mutex;
  std::deque<SpanRecord> spans;
  std::size_t capacity = 4096;
  std::uint64_t dropped = 0;
};

SpanRing& ring() {
  static SpanRing* g = new SpanRing();
  return *g;
}

std::uint64_t now_us() {
  using clock = std::chrono::steady_clock;
  // Trace epoch = first obs clock read in the process; all span times are
  // offsets from it, so they fit comfortably in a JSON number.
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            epoch)
          .count());
}

std::uint64_t this_thread_id() {
  thread_local const std::uint64_t id =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return id;
}

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> g_next{1};
  return g_next.fetch_add(1, std::memory_order_relaxed);
}

// The innermost live span on this thread; children read it for their
// parent link, destruction restores it.
struct ThreadCursor {
  std::uint64_t id = 0;
  std::uint32_t depth = 0;
};
thread_local ThreadCursor t_cursor;

}  // namespace

Span::Span(const char* name) noexcept
    : name_(name),
      id_(next_span_id()),
      parent_id_(t_cursor.id),
      depth_(t_cursor.id == 0 ? 0 : t_cursor.depth + 1),
      start_us_(now_us()) {
  t_cursor = ThreadCursor{id_, depth_};
}

Span::~Span() {
  const std::uint64_t end = now_us();
  t_cursor = ThreadCursor{parent_id_,
                          depth_ == 0 ? 0 : depth_ - 1};
  SpanRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (r.capacity == 0) {
    ++r.dropped;
    return;
  }
  while (r.spans.size() >= r.capacity) {
    r.spans.pop_front();
    ++r.dropped;
  }
  SpanRecord rec;
  rec.name = name_;
  rec.id = id_;
  rec.parent_id = parent_id_;
  rec.depth = depth_;
  rec.thread_id = this_thread_id();
  rec.start_us = start_us_;
  rec.end_us = end;
  r.spans.push_back(std::move(rec));
}

void set_trace_capacity(std::size_t capacity) {
  SpanRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.capacity = capacity;
  while (r.spans.size() > r.capacity) {
    r.spans.pop_front();
    ++r.dropped;
  }
}

std::size_t trace_capacity() {
  SpanRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.capacity;
}

Trace capture_trace() {
  SpanRing& r = ring();
  Trace out;
  std::lock_guard<std::mutex> lock(r.mutex);
  out.capacity = r.capacity;
  out.dropped = r.dropped;
  out.spans.assign(r.spans.begin(), r.spans.end());
  return out;
}

void clear_trace() {
  SpanRing& r = ring();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.spans.clear();
  r.dropped = 0;
}

}  // namespace xr::obs

#endif  // XR_OBS_DISABLED
