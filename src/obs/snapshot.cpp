#include "obs/snapshot.h"

#include <fstream>
#include <stdexcept>

namespace xr::obs {

namespace {

constexpr const char* kSnapshotSchema = "xr.obs.snapshot.v1";

core::Json histogram_to_json(const HistogramData& h) {
  core::Json j = core::Json::object();
  core::Json bounds = core::Json::array();
  for (double b : h.bounds) bounds.push_back(b);
  j.set("bounds", std::move(bounds));
  core::Json counts = core::Json::array();
  for (std::uint64_t c : h.counts) counts.push_back(std::size_t{c});
  j.set("counts", std::move(counts));
  j.set("sum", h.sum);
  j.set("count", std::size_t{h.count});
  return j;
}

HistogramData histogram_from_json(const std::string& name,
                                  const core::Json& j) {
  HistogramData h;
  for (const auto& [key, value] : j.as_object()) {
    if (key == "bounds") {
      for (const core::Json& b : value.as_array())
        h.bounds.push_back(b.as_double());
    } else if (key == "counts") {
      for (const core::Json& c : value.as_array())
        h.counts.push_back(c.as_size());
    } else if (key == "sum") {
      h.sum = value.as_double();
    } else if (key == "count") {
      h.count = value.as_size();
    } else {
      throw std::invalid_argument("ObsDocument: histogram '" + name +
                                  "' has unknown field '" + key + "'");
    }
  }
  if (h.counts.size() != h.bounds.size() + 1)
    throw std::invalid_argument(
        "ObsDocument: histogram '" + name + "' has " +
        std::to_string(h.counts.size()) + " counts for " +
        std::to_string(h.bounds.size()) +
        " bounds (want bounds + 1, the +Inf bucket)");
  return h;
}

}  // namespace

core::Json ObsDocument::to_json() const {
  core::Json j = core::Json::object();
  j.set("schema", kSnapshotSchema);
  if (!label.empty()) j.set("bench", label);
  core::Json counters = core::Json::object();
  for (const auto& [name, value] : metrics.counters)
    counters.set(name, std::size_t{value});
  j.set("counters", std::move(counters));
  core::Json gauges = core::Json::object();
  for (const auto& [name, value] : metrics.gauges) gauges.set(name, value);
  j.set("gauges", std::move(gauges));
  core::Json histograms = core::Json::object();
  for (const auto& [name, h] : metrics.histograms)
    histograms.set(name, histogram_to_json(h));
  j.set("histograms", std::move(histograms));
  if (trace) j.set("trace", trace->to_json());
  return j;
}

ObsDocument ObsDocument::from_json(const core::Json& j) {
  ObsDocument out;
  bool saw_schema = false;
  for (const auto& [key, value] : j.as_object()) {
    if (key == "schema") {
      if (value.as_string() != kSnapshotSchema)
        throw std::invalid_argument("ObsDocument: unknown schema '" +
                                    value.as_string() + "'");
      saw_schema = true;
    } else if (key == "bench") {
      out.label = value.as_string();
    } else if (key == "counters") {
      for (const auto& [name, v] : value.as_object())
        out.metrics.counters.emplace_back(name, v.as_size());
    } else if (key == "gauges") {
      for (const auto& [name, v] : value.as_object())
        out.metrics.gauges.emplace_back(name, v.as_double());
    } else if (key == "histograms") {
      for (const auto& [name, v] : value.as_object())
        out.metrics.histograms.emplace_back(name,
                                            histogram_from_json(name, v));
    } else if (key == "trace") {
      out.trace = Trace::from_json(value);
    } else {
      throw std::invalid_argument("ObsDocument: unknown field '" + key +
                                  "'");
    }
  }
  if (!saw_schema)
    throw std::invalid_argument("ObsDocument: missing 'schema'");
  return out;
}

std::string ObsDocument::to_text() const {
  std::string out;
  if (!label.empty()) out += "# bench " + label + "\n";
  for (const auto& [name, value] : metrics.counters)
    out += name + " " + std::to_string(value) + "\n";
  for (const auto& [name, value] : metrics.gauges)
    out += name + " " + core::format_double(value) + "\n";
  for (const auto& [name, h] : metrics.histograms) {
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::string le =
          i < h.bounds.size() ? core::format_double(h.bounds[i]) : "+Inf";
      out += name + "{le=\"" + le + "\"} " + std::to_string(h.counts[i]) +
             "\n";
    }
    out += name + ".sum " + core::format_double(h.sum) + "\n";
    out += name + ".count " + std::to_string(h.count) + "\n";
  }
  if (trace) {
    out += "# trace spans=" + std::to_string(trace->spans.size()) +
           " dropped=" + std::to_string(trace->dropped) +
           " capacity=" + std::to_string(trace->capacity) + "\n";
  }
  return out;
}

ObsDocument capture(bool include_trace) {
  ObsDocument doc;
  doc.metrics = Registry::global().snapshot();
  if (include_trace) doc.trace = capture_trace();
  return doc;
}

std::string snapshot_json(bool include_trace) {
  return capture(include_trace).to_json().dump();
}

void write_snapshot_file(const std::string& path, bool include_trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    throw std::runtime_error("obs: cannot open metrics file '" + path +
                             "' for writing");
  out << snapshot_json(include_trace) << "\n";
  if (!out)
    throw std::runtime_error("obs: failed writing metrics file '" + path +
                             "'");
}

}  // namespace xr::obs
