#include "obs/snapshot.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace xr::obs {

namespace {

constexpr const char* kSnapshotSchema = "xr.obs.snapshot.v1";

core::Json histogram_to_json(const HistogramData& h) {
  core::Json j = core::Json::object();
  core::Json bounds = core::Json::array();
  for (double b : h.bounds) bounds.push_back(b);
  j.set("bounds", std::move(bounds));
  core::Json counts = core::Json::array();
  for (std::uint64_t c : h.counts) counts.push_back(std::size_t{c});
  j.set("counts", std::move(counts));
  j.set("sum", h.sum);
  j.set("count", std::size_t{h.count});
  return j;
}

HistogramData histogram_from_json(const std::string& name,
                                  const core::Json& j) {
  HistogramData h;
  for (const auto& [key, value] : j.as_object()) {
    if (key == "bounds") {
      for (const core::Json& b : value.as_array())
        h.bounds.push_back(b.as_double());
    } else if (key == "counts") {
      for (const core::Json& c : value.as_array())
        h.counts.push_back(c.as_size());
    } else if (key == "sum") {
      h.sum = value.as_double();
    } else if (key == "count") {
      h.count = value.as_size();
    } else {
      throw std::invalid_argument("ObsDocument: histogram '" + name +
                                  "' has unknown field '" + key + "'");
    }
  }
  if (h.counts.size() != h.bounds.size() + 1)
    throw std::invalid_argument(
        "ObsDocument: histogram '" + name + "' has " +
        std::to_string(h.counts.size()) + " counts for " +
        std::to_string(h.bounds.size()) +
        " bounds (want bounds + 1, the +Inf bucket)");
  return h;
}

}  // namespace

core::Json ObsDocument::to_json() const {
  core::Json j = core::Json::object();
  j.set("schema", kSnapshotSchema);
  if (!label.empty()) j.set("bench", label);
  core::Json counters = core::Json::object();
  for (const auto& [name, value] : metrics.counters)
    counters.set(name, std::size_t{value});
  j.set("counters", std::move(counters));
  core::Json gauges = core::Json::object();
  for (const auto& [name, value] : metrics.gauges) gauges.set(name, value);
  j.set("gauges", std::move(gauges));
  core::Json histograms = core::Json::object();
  for (const auto& [name, h] : metrics.histograms)
    histograms.set(name, histogram_to_json(h));
  j.set("histograms", std::move(histograms));
  if (trace) j.set("trace", trace->to_json());
  return j;
}

ObsDocument ObsDocument::from_json(const core::Json& j) {
  ObsDocument out;
  bool saw_schema = false;
  for (const auto& [key, value] : j.as_object()) {
    if (key == "schema") {
      if (value.as_string() != kSnapshotSchema)
        throw std::invalid_argument("ObsDocument: unknown schema '" +
                                    value.as_string() + "'");
      saw_schema = true;
    } else if (key == "bench") {
      out.label = value.as_string();
    } else if (key == "counters") {
      for (const auto& [name, v] : value.as_object())
        out.metrics.counters.emplace_back(name, v.as_size());
    } else if (key == "gauges") {
      for (const auto& [name, v] : value.as_object())
        out.metrics.gauges.emplace_back(name, v.as_double());
    } else if (key == "histograms") {
      for (const auto& [name, v] : value.as_object())
        out.metrics.histograms.emplace_back(name,
                                            histogram_from_json(name, v));
    } else if (key == "trace") {
      out.trace = Trace::from_json(value);
    } else {
      throw std::invalid_argument("ObsDocument: unknown field '" + key +
                                  "'");
    }
  }
  if (!saw_schema)
    throw std::invalid_argument("ObsDocument: missing 'schema'");
  return out;
}

std::string ObsDocument::to_text() const {
  std::string out;
  if (!label.empty()) out += "# bench " + label + "\n";
  for (const auto& [name, value] : metrics.counters)
    out += name + " " + std::to_string(value) + "\n";
  for (const auto& [name, value] : metrics.gauges)
    out += name + " " + core::format_double(value) + "\n";
  for (const auto& [name, h] : metrics.histograms) {
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::string le =
          i < h.bounds.size() ? core::format_double(h.bounds[i]) : "+Inf";
      out += name + "{le=\"" + le + "\"} " + std::to_string(h.counts[i]) +
             "\n";
    }
    out += name + ".sum " + core::format_double(h.sum) + "\n";
    out += name + ".count " + std::to_string(h.count) + "\n";
  }
  if (trace) {
    out += "# trace spans=" + std::to_string(trace->spans.size()) +
           " dropped=" + std::to_string(trace->dropped) +
           " capacity=" + std::to_string(trace->capacity) + "\n";
  }
  return out;
}

ObsDocument capture(bool include_trace) {
  ObsDocument doc;
  doc.metrics = Registry::global().snapshot();
  if (include_trace) doc.trace = capture_trace();
  return doc;
}

std::string snapshot_json(bool include_trace) {
  return capture(include_trace).to_json().dump();
}

void write_snapshot_file(const std::string& path, bool include_trace) {
  write_document_file(capture(include_trace), path);
}

void write_document_file(const ObsDocument& doc, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    throw std::runtime_error("obs: cannot open metrics file '" + path +
                             "' for writing");
  out << doc.to_json().dump() << "\n";
  if (!out)
    throw std::runtime_error("obs: failed writing metrics file '" + path +
                             "'");
}

namespace {

std::string labeled_name(const std::string& name, const std::string& key,
                         const std::string& value) {
  return name + "{" + key + "=\"" + value + "\"}";
}

template <typename Section>
void sort_section(Section& s) {
  std::sort(s.begin(), s.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

template <typename Section>
void merge_labeled_section(Section& into, const Section& from,
                           const std::string& key, const std::string& value) {
  for (const auto& [name, data] : from)
    into.emplace_back(labeled_name(name, key, value), data);
}

template <typename Section>
void check_unique(const Section& s, const char* what) {
  for (std::size_t i = 1; i < s.size(); ++i)
    if (s[i].first == s[i - 1].first)
      throw std::invalid_argument(
          std::string("aggregate_labeled: duplicate ") + what + " '" +
          s[i].first + "' (same source labeled twice?)");
}

}  // namespace

Snapshot label_snapshot(Snapshot s, const std::string& key,
                        const std::string& value) {
  for (auto& [name, v] : s.counters) name = labeled_name(name, key, value);
  for (auto& [name, v] : s.gauges) name = labeled_name(name, key, value);
  for (auto& [name, v] : s.histograms) name = labeled_name(name, key, value);
  sort_section(s.counters);
  sort_section(s.gauges);
  sort_section(s.histograms);
  return s;
}

ObsDocument aggregate_labeled(
    const ObsDocument& local,
    const std::vector<std::pair<std::string, ObsDocument>>& workers,
    const std::string& label_key) {
  ObsDocument out;
  out.label = local.label;
  out.metrics = local.metrics;
  out.trace = local.trace;
  for (const auto& [worker, doc] : workers) {
    merge_labeled_section(out.metrics.counters, doc.metrics.counters,
                          label_key, worker);
    merge_labeled_section(out.metrics.gauges, doc.metrics.gauges, label_key,
                          worker);
    merge_labeled_section(out.metrics.histograms, doc.metrics.histograms,
                          label_key, worker);
  }
  sort_section(out.metrics.counters);
  sort_section(out.metrics.gauges);
  sort_section(out.metrics.histograms);
  check_unique(out.metrics.counters, "counter");
  check_unique(out.metrics.gauges, "gauge");
  check_unique(out.metrics.histograms, "histogram");
  return out;
}

}  // namespace xr::obs
