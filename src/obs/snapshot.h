// Exposition layer: obs state as a serializable document.
//
// ObsDocument bundles a merged registry Snapshot with an optional span
// Trace under the "xr.obs.snapshot.v1" schema. Everything downstream —
// the --metrics-out flag on sweep_worker/sweep_merge/plan_index, the
// bench snapshot files scripts/bench_compare.py diffs, tools/obs_dump —
// speaks this one document.
//
// from_json is the strict inverse of to_json (unknown fields throw, the
// same named-field rejection style as plan_index), and doubles round-trip
// bitwise through core::Json, so dump → parse → dump is byte-identical.
//
// This header compiles identically in XR_OBS_DISABLED builds: the
// document type is plain data; a disabled build just captures empty ones.
#pragma once

#include <optional>
#include <string>

#include "core/jsonio.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace xr::obs {

struct ObsDocument {
  /// Optional provenance tag ("bench" in JSON); benches set it to their
  /// bench name so bench_compare.py can pair snapshots across runs.
  std::string label;
  Snapshot metrics;
  std::optional<Trace> trace;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static ObsDocument from_json(const core::Json& j);

  /// Human-readable exposition (Prometheus-flavored text, one sample per
  /// line; histogram buckets as `name{le="…"}` rows plus sum/count).
  [[nodiscard]] std::string to_text() const;
};

/// Capture the global registry (and, when asked, the span ring) now.
[[nodiscard]] ObsDocument capture(bool include_trace = true);

/// capture(...).to_json().dump() — the one-call JSON exposition.
[[nodiscard]] std::string snapshot_json(bool include_trace = true);

/// Capture and write a single-line JSON document to `path` (plus a
/// trailing newline). Throws std::runtime_error when the file cannot be
/// written. Backs every tool's --metrics-out flag.
void write_snapshot_file(const std::string& path, bool include_trace = true);

}  // namespace xr::obs
