// Exposition layer: obs state as a serializable document.
//
// ObsDocument bundles a merged registry Snapshot with an optional span
// Trace under the "xr.obs.snapshot.v1" schema. Everything downstream —
// the --metrics-out flag on sweep_worker/sweep_merge/plan_index, the
// bench snapshot files scripts/bench_compare.py diffs, tools/obs_dump —
// speaks this one document.
//
// from_json is the strict inverse of to_json (unknown fields throw, the
// same named-field rejection style as plan_index), and doubles round-trip
// bitwise through core::Json, so dump → parse → dump is byte-identical.
//
// This header compiles identically in XR_OBS_DISABLED builds: the
// document type is plain data; a disabled build just captures empty ones.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/jsonio.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace xr::obs {

struct ObsDocument {
  /// Optional provenance tag ("bench" in JSON); benches set it to their
  /// bench name so bench_compare.py can pair snapshots across runs.
  std::string label;
  Snapshot metrics;
  std::optional<Trace> trace;

  [[nodiscard]] core::Json to_json() const;
  [[nodiscard]] static ObsDocument from_json(const core::Json& j);

  /// Human-readable exposition (Prometheus-flavored text, one sample per
  /// line; histogram buckets as `name{le="…"}` rows plus sum/count).
  [[nodiscard]] std::string to_text() const;
};

/// Capture the global registry (and, when asked, the span ring) now.
[[nodiscard]] ObsDocument capture(bool include_trace = true);

/// capture(...).to_json().dump() — the one-call JSON exposition.
[[nodiscard]] std::string snapshot_json(bool include_trace = true);

/// Capture and write a single-line JSON document to `path` (plus a
/// trailing newline). Throws std::runtime_error when the file cannot be
/// written. Backs every tool's --metrics-out flag.
void write_snapshot_file(const std::string& path, bool include_trace = true);

/// Write an already-assembled document (e.g. the sweep coordinator's
/// aggregated, worker-labeled snapshot) instead of capturing the global
/// registry. Same file shape as write_snapshot_file.
void write_document_file(const ObsDocument& doc, const std::string& path);

/// Rewrite every metric name in `s` to carry one Prometheus-style label:
/// "shard.worker.chunks" -> "shard.worker.chunks{worker=\"w0\"}". Names
/// stay unique (the label value differs per source) and each section is
/// re-sorted, so the result is still a valid Snapshot.
[[nodiscard]] Snapshot label_snapshot(Snapshot s, const std::string& key,
                                      const std::string& value);

/// One aggregated service document: the local (coordinator) snapshot
/// unlabeled plus each worker's metrics under a `label_key` label
/// dimension, merged name-sorted. Worker traces are dropped — only the
/// local trace (if any) is carried; a metric name that would collide
/// after labeling (same worker listed twice) throws.
[[nodiscard]] ObsDocument aggregate_labeled(
    const ObsDocument& local,
    const std::vector<std::pair<std::string, ObsDocument>>& workers,
    const std::string& label_key = "worker");

}  // namespace xr::obs
