// obs::Registry — lock-cheap named counters, gauges, and histograms.
//
// The runtime's telemetry substrate. Every hot path in the repo (ThreadPool,
// BatchEvaluator, the SoA decision kernel, the plan index serving tiers, the
// shard workers) reports through handles defined here, under one standing
// contract:
//
//   ZERO PERTURBATION. Telemetry never changes a computed value. With
//   metrics compiled in (the default) every sweep, plan, and record stream
//   is bitwise identical to a build with XR_OBS_DISABLED — enforced by the
//   scripts.obs_zero_perturbation ctest gate, which diffs a sharded run and
//   a plan-index serve across the two builds. The disabled build compiles
//   every handle to an empty inline stub, so the off path has literally no
//   atomics, no clocks, and no allocation.
//
// Design (enabled build):
//
//   * A metric is a *family* (name + kind + histogram bounds), owned by a
//     Registry. Handles (Counter/Gauge/Histogram) resolve their family once
//     at construction — make them function-local statics at the call site.
//   * Counters and histograms write to THREAD-LOCAL SHARDS: each thread
//     gets its own cache-line-padded cell on first touch, so an add() is a
//     hash lookup plus one uncontended relaxed atomic increment — no locks,
//     no shared cache line. snapshot() merges the shards; cells are owned
//     by the family and survive thread exit, so totals never go backwards.
//   * Gauges are last-write-wins process-wide atomics (set() is rare).
//   * Histograms use fixed, ascending bucket upper bounds with Prometheus
//     "le" semantics (value <= bound) plus an implicit +Inf overflow
//     bucket, and carry an exact sum/count.
//   * snapshot() returns a name-sorted, self-contained Snapshot value; the
//     JSON/text exposition lives in obs/snapshot.h.
//
// Registering the same name twice with a different kind (or different
// histogram bounds) throws — one name, one meaning, process-wide.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xr::obs {

/// False in XR_OBS_DISABLED builds: every handle below is a no-op stub and
/// snapshots are empty. Callers gating obs-dependent assertions (benches,
/// tests) branch on this instead of the macro.
inline constexpr bool kEnabled =
#ifdef XR_OBS_DISABLED
    false;
#else
    true;
#endif

/// Merged view of one histogram family: `counts[i]` is the number of
/// observations with value <= bounds[i] (and > bounds[i-1]); counts.back()
/// is the +Inf overflow bucket, so counts.size() == bounds.size() + 1.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  double sum = 0;
  std::uint64_t count = 0;
};

/// Point-in-time merged view of a registry, name-sorted per section.
/// Plain data — serialization lives in obs/snapshot.h.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  [[nodiscard]] const std::uint64_t* counter(std::string_view name) const;
  [[nodiscard]] const double* gauge(std::string_view name) const;
  [[nodiscard]] const HistogramData* histogram(std::string_view name) const;
};

#ifndef XR_OBS_DISABLED

namespace detail {
struct Family;
}  // namespace detail

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every default-constructed handle joins.
  /// Deliberately leaked (never destroyed) so handles in static storage
  /// can report during shutdown without destruction-order hazards.
  static Registry& global();

  /// Merge every thread shard into a name-sorted value snapshot.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every counter, gauge, and histogram (families and cells are
  /// kept). For tests and per-run scoping; racing writers are merely
  /// folded into the post-reset totals.
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;
  [[nodiscard]] detail::Family* family(std::string name, int kind,
                                       std::vector<double> bounds);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Monotonic event count. add() is thread-shard cheap; value() merges.
class Counter {
 public:
  explicit Counter(std::string name, Registry* registry = nullptr);
  void add(std::uint64_t delta = 1) noexcept;
  [[nodiscard]] std::uint64_t value() const;

 private:
  detail::Family* family_;
};

/// Last-write-wins instantaneous value (queue depth, heartbeat, rates).
class Gauge {
 public:
  explicit Gauge(std::string name, Registry* registry = nullptr);
  void set(double value) noexcept;
  void add(double delta) noexcept;
  [[nodiscard]] double value() const;

 private:
  detail::Family* family_;
};

/// Fixed-bucket latency/size distribution. Bounds must be finite and
/// strictly ascending (validated at registration, offender named).
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds,
            Registry* registry = nullptr);
  void observe(double value) noexcept;
  [[nodiscard]] HistogramData data() const;

  /// The shared wall-time bucket ladder (ms): 0.01 … 10000, decades.
  [[nodiscard]] static const std::vector<double>& latency_bounds_ms();

 private:
  detail::Family* family_;
};

#else  // XR_OBS_DISABLED — every handle is an empty inline stub.

class Registry {
 public:
  Registry() = default;
  static Registry& global() {
    static Registry stub;
    return stub;
  }
  [[nodiscard]] Snapshot snapshot() const { return {}; }
  void reset() {}
};

class Counter {
 public:
  explicit Counter(const std::string&, Registry* = nullptr) {}
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  explicit Gauge(const std::string&, Registry* = nullptr) {}
  void set(double) noexcept {}
  void add(double) noexcept {}
  [[nodiscard]] double value() const { return 0; }
};

class Histogram {
 public:
  Histogram(const std::string&, std::vector<double>, Registry* = nullptr) {}
  void observe(double) noexcept {}
  [[nodiscard]] HistogramData data() const { return {}; }
  [[nodiscard]] static const std::vector<double>& latency_bounds_ms() {
    static const std::vector<double> none;
    return none;
  }
};

#endif  // XR_OBS_DISABLED

}  // namespace xr::obs
