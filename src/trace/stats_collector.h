// Streaming statistics (Welford) and fixed-width histograms.
//
// Used throughout the ground-truth simulator to accumulate per-frame latency
// and energy observations without storing every sample.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace xr::trace {

/// Numerically stable streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * double(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in the
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const {
    return bins_.at(i);
  }
  [[nodiscard]] std::size_t bins() const noexcept { return bins_.size(); }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  /// Approximate quantile from bin midpoints, q in [0,1].
  [[nodiscard]] double quantile(double q) const;
  /// Compact text rendering (one line per nonempty bin with a bar).
  [[nodiscard]] std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> bins_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace xr::trace
