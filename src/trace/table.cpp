#include "trace/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace xr::trace {

std::string fixed(double v, int precision) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return std::string(buf, static_cast<std::size_t>(n));
}

std::string heading(const std::string& title) {
  std::string bar(title.size() + 4, '=');
  return bar + "\n= " + title + " =\n" + bar + "\n";
}

TablePrinter::TablePrinter(std::vector<std::string> header, Align default_align)
    : header_(std::move(header)),
      align_(header_.size(), default_align) {
  if (header_.empty())
    throw std::invalid_argument("TablePrinter: empty header");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("TablePrinter: row width mismatch");
  rows_.push_back(Row{std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TablePrinter::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double v : cells) out.push_back(fixed(v, precision));
  add_row(std::move(out));
}

void TablePrinter::add_rule() { pending_rule_ = true; }

void TablePrinter::set_align(std::size_t column, Align align) {
  align_.at(column) = align;
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i)
    widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.cells.size(); ++i)
      widths[i] = std::max(widths[i], row.cells[i].size());

  const auto pad = [&](const std::string& s, std::size_t i) {
    std::string out;
    const std::size_t fill = widths[i] - s.size();
    if (align_[i] == Align::kRight) out.append(fill, ' ');
    out += s;
    if (align_[i] == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  const auto rule = [&] {
    std::string out = "+";
    for (std::size_t w : widths) {
      out.append(w + 2, '-');
      out += '+';
    }
    out += '\n';
    return out;
  }();

  std::ostringstream oss;
  oss << rule;
  oss << '|';
  for (std::size_t i = 0; i < header_.size(); ++i)
    oss << ' ' << pad(header_[i], i) << " |";
  oss << '\n' << rule;
  for (const auto& row : rows_) {
    if (row.rule_before) oss << rule;
    oss << '|';
    for (std::size_t i = 0; i < row.cells.size(); ++i)
      oss << ' ' << pad(row.cells[i], i) << " |";
    oss << '\n';
  }
  oss << rule;
  return oss.str();
}

}  // namespace xr::trace
