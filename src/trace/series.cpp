#include "trace/series.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "trace/table.h"

namespace xr::trace {

SeriesSet::SeriesSet(std::string figure_name, std::string x_label,
                     std::string y_label)
    : name_(std::move(figure_name)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

Series& SeriesSet::series(const std::string& label) {
  for (auto& s : series_)
    if (s.label == label) return s;
  series_.push_back(Series{label, {}, {}});
  return series_.back();
}

const Series* SeriesSet::find(const std::string& label) const noexcept {
  for (const auto& s : series_)
    if (s.label == label) return &s;
  return nullptr;
}

namespace {
void check_shared_grid(const std::deque<Series>& series) {
  if (series.empty()) throw std::logic_error("SeriesSet: no series");
  const auto& ref = series.front().x;
  for (const auto& s : series) {
    if (s.x.size() != ref.size())
      throw std::logic_error("SeriesSet: series '" + s.label +
                             "' has mismatched length");
    for (std::size_t i = 0; i < ref.size(); ++i)
      if (std::abs(s.x[i] - ref[i]) > 1e-9)
        throw std::logic_error("SeriesSet: series '" + s.label +
                               "' has mismatched x grid");
  }
}
}  // namespace

std::string SeriesSet::render_table(int precision) const {
  check_shared_grid(series_);
  std::vector<std::string> header{x_label_};
  for (const auto& s : series_) header.push_back(s.label);
  TablePrinter printer(std::move(header));
  const auto& xs = series_.front().x;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<double> row{xs[i]};
    for (const auto& s : series_) row.push_back(s.y[i]);
    printer.add_numeric_row(row, precision);
  }
  std::ostringstream oss;
  oss << heading(name_ + "  [y: " + y_label_ + "]");
  oss << printer.render();
  return oss.str();
}

CsvTable SeriesSet::to_table() const {
  check_shared_grid(series_);
  std::vector<std::string> cols{x_label_};
  for (const auto& s : series_) cols.push_back(s.label);
  CsvTable table(std::move(cols));
  const auto& xs = series_.front().x;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<double> row{xs[i]};
    for (const auto& s : series_) row.push_back(s.y[i]);
    table.add_row(row);
  }
  return table;
}

}  // namespace xr::trace
