#include "trace/csv.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace xr::trace {

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string{field};
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::vector<std::string> csv_split(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // ignore CR in CRLF input
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string format_double(double v) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", v);
  return std::string(buf, static_cast<std::size_t>(n));
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(&out), width_(header.size()) {
  if (width_ == 0) throw std::invalid_argument("CsvWriter: empty header");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << csv_escape(header[i]);
  }
  *out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (fields.size() != width_)
    throw std::invalid_argument("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_double(v));
  write_row(fields);
}

CsvTable::CsvTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("CsvTable: no columns");
}

void CsvTable::add_row(const std::vector<double>& values) {
  if (values.size() != columns_.size())
    throw std::invalid_argument("CsvTable: row width mismatch");
  data_.push_back(values);
}

std::optional<std::size_t> CsvTable::column_index(
    std::string_view name) const noexcept {
  for (std::size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i] == name) return i;
  return std::nullopt;
}

std::vector<double> CsvTable::column(std::string_view name) const {
  const auto idx = column_index(name);
  if (!idx) throw std::out_of_range("CsvTable: unknown column " +
                                    std::string{name});
  std::vector<double> out;
  out.reserve(data_.size());
  for (const auto& row : data_) out.push_back(row[*idx]);
  return out;
}

std::string CsvTable::to_csv() const {
  std::ostringstream oss;
  {
    CsvWriter w(oss, columns_);
    for (const auto& row : data_) w.write_row(row);
  }
  return oss.str();
}

void CsvTable::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("CsvTable: cannot open " + path);
  f << to_csv();
  if (!f) throw std::runtime_error("CsvTable: write failed for " + path);
}

CsvTable CsvTable::parse(std::string_view text) {
  std::istringstream iss{std::string{text}};
  std::string line;
  if (!std::getline(iss, line))
    throw std::invalid_argument("CsvTable::parse: empty input");
  CsvTable table(csv_split(line));
  while (std::getline(iss, line)) {
    if (line.empty()) continue;
    const auto fields = csv_split(line);
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto& f : fields) {
      double v = 0;
      const auto* first = f.data();
      const auto* last = f.data() + f.size();
      const auto [ptr, ec] = std::from_chars(first, last, v);
      if (ec != std::errc{} || ptr != last)
        throw std::invalid_argument("CsvTable::parse: non-numeric field '" +
                                    f + "'");
      row.push_back(v);
    }
    table.add_row(row);
  }
  return table;
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("CsvTable: cannot open " + path);
  std::ostringstream oss;
  oss << f.rdbuf();
  return parse(oss.str());
}

}  // namespace xr::trace
