// Aligned console-table rendering for benchmark harness output.
//
// The benchmark binaries regenerate the paper's tables and figures as text;
// TablePrinter produces the aligned, boxed layout they print.
#pragma once

#include <string>
#include <vector>

namespace xr::trace {

/// Column alignment for TablePrinter.
enum class Align { kLeft, kRight };

/// Renders rows of strings as an aligned ASCII table with a header rule.
///
/// Usage:
///   TablePrinter t({"frame size", "GT (ms)", "model (ms)"});
///   t.add_row({"300", "412.1", "409.8"});
///   std::cout << t.render();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header,
                        Align default_align = Align::kRight);

  void add_row(std::vector<std::string> cells);
  /// Convenience: format doubles with the given precision.
  void add_numeric_row(const std::vector<double>& cells, int precision = 2);
  /// Insert a horizontal rule before the next row.
  void add_rule();

  /// Set per-column alignment (defaults to the constructor's alignment).
  void set_align(std::size_t column, Align align);

  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

/// Format a double with fixed precision (e.g. for table cells).
[[nodiscard]] std::string fixed(double v, int precision = 2);

/// Render a one-line "key: value" style section heading used by benches.
[[nodiscard]] std::string heading(const std::string& title);

}  // namespace xr::trace
