// Named (x, y) series used to assemble paper-figure data.
//
// A SeriesSet holds several labelled curves sharing an x-axis meaning (e.g.
// "GT (1 GHz)", "Proposed (1 GHz)" for Fig. 4a) and can render them as a
// combined table or CSV for plotting.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "trace/csv.h"

namespace xr::trace {

/// One labelled curve.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
};

/// A collection of curves for a single figure.
class SeriesSet {
 public:
  SeriesSet(std::string figure_name, std::string x_label, std::string y_label);

  /// Create (or retrieve) the series with this label.
  Series& series(const std::string& label);
  [[nodiscard]] const Series* find(const std::string& label) const noexcept;
  [[nodiscard]] const std::deque<Series>& all() const noexcept {
    return series_;
  }

  [[nodiscard]] const std::string& figure_name() const noexcept {
    return name_;
  }
  [[nodiscard]] const std::string& x_label() const noexcept { return x_label_; }
  [[nodiscard]] const std::string& y_label() const noexcept { return y_label_; }

  /// Render as an aligned table: first column x, one column per series.
  /// All series must share identical x grids; throws std::logic_error if not.
  [[nodiscard]] std::string render_table(int precision = 2) const;

  /// As a CsvTable (x plus one column per series).
  [[nodiscard]] CsvTable to_table() const;

 private:
  std::string name_;
  std::string x_label_;
  std::string y_label_;
  std::deque<Series> series_;
};

}  // namespace xr::trace
