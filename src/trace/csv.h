// CSV reading and writing for experiment outputs.
//
// A CsvWriter streams rows to a file (or any std::ostream); a CsvTable is an
// in-memory column-labelled table that can be written out or parsed back.
// Fields containing separators, quotes, or newlines are quoted per RFC 4180.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xr::trace {

/// Escape a single CSV field (quote if it contains comma/quote/newline).
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Split one CSV line into fields, honouring RFC 4180 quoting.
[[nodiscard]] std::vector<std::string> csv_split(std::string_view line);

/// Streaming CSV writer. The header is written on construction.
class CsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Append one row of string fields. Throws std::invalid_argument if the
  /// field count does not match the header width.
  void write_row(const std::vector<std::string>& fields);

  /// Append one row of numeric fields (formatted with max precision that
  /// round-trips a double).
  void write_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t columns() const noexcept { return width_; }
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream* out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

/// In-memory table with named columns of doubles plus an optional string
/// label column. Used by the benchmark harnesses to accumulate figure series
/// before printing / saving.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> columns);

  void add_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return columns_.size(); }
  [[nodiscard]] const std::vector<std::string>& column_names() const noexcept {
    return columns_;
  }
  [[nodiscard]] const std::vector<double>& row(std::size_t i) const {
    return data_.at(i);
  }
  /// Extract one column by name. Throws std::out_of_range if unknown.
  [[nodiscard]] std::vector<double> column(std::string_view name) const;
  /// Index of a column by name, if present.
  [[nodiscard]] std::optional<std::size_t> column_index(
      std::string_view name) const noexcept;

  /// Serialize the whole table as CSV text.
  [[nodiscard]] std::string to_csv() const;
  /// Write CSV text to a file. Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  /// Parse a CSV string (first line = header) into a table. All body fields
  /// must parse as double. Throws std::invalid_argument on malformed input.
  [[nodiscard]] static CsvTable parse(std::string_view text);
  /// Load and parse a CSV file.
  [[nodiscard]] static CsvTable load(const std::string& path);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> data_;
};

/// Format a double with enough digits to round-trip.
[[nodiscard]] std::string format_double(double v);

}  // namespace xr::trace
