#include "trace/stats_collector.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace xr::trace {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::size_t total = n_ + other.n_;
  m2_ += other.m2_ +
         delta * delta * double(n_) * double(other.n_) / double(total);
  mean_ += delta * double(other.n_) / double(total);
  n_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need >= 1 bin");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * double(bins_.size()));
  if (idx >= bins_.size()) idx = bins_.size() - 1;  // guard fp edge
  ++bins_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  if (i >= bins_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + (hi_ - lo_) * double(i) / double(bins_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  if (i >= bins_.size()) throw std::out_of_range("Histogram::bin_hi");
  return lo_ + (hi_ - lo_) * double(i + 1) / double(bins_.size());
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q in [0,1]");
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return lo_;
  const double target = q * double(in_range);
  double cum = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    cum += double(bins_[i]);
    if (cum >= target) return 0.5 * (bin_lo(i) + bin_hi(i));
  }
  return bin_hi(bins_.size() - 1);
}

std::string Histogram::render(std::size_t bar_width) const {
  std::size_t peak = 1;
  for (auto c : bins_) peak = std::max(peak, c);
  std::ostringstream oss;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    const auto len =
        static_cast<std::size_t>(double(bins_[i]) / double(peak) *
                                 double(bar_width));
    oss << "[" << bin_lo(i) << ", " << bin_hi(i) << ") " << bins_[i] << " "
        << std::string(std::max<std::size_t>(len, 1), '#') << '\n';
  }
  if (underflow_) oss << "underflow: " << underflow_ << '\n';
  if (overflow_) oss << "overflow: " << overflow_ << '\n';
  return oss.str();
}

}  // namespace xr::trace
