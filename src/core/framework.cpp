#include "core/framework.h"

#include <sstream>

#include "trace/table.h"

namespace xr::core {

XrPerformanceModel::XrPerformanceModel(LatencyModel latency,
                                       EnergyModel energy, AoiModel aoi)
    : latency_(std::move(latency)),
      energy_(std::move(energy)),
      aoi_(std::move(aoi)) {}

PerformanceReport XrPerformanceModel::evaluate(
    const ScenarioConfig& s) const {
  PerformanceReport report;
  report.latency = latency_.evaluate(s);
  report.energy = energy_.evaluate(s, report.latency);
  report.sensors.reserve(s.sensors.size());
  for (const auto& sensor : s.sensors) {
    SensorReport sr;
    sr.name = sensor.name;
    sr.average_aoi_ms = aoi_.average_aoi_ms(sensor, s.buffer, s.aoi);
    sr.processed_hz = aoi_.processed_frequency_hz(sensor, s.buffer, s.aoi);
    sr.roi = aoi_.roi(sensor, s.buffer, s.aoi);
    sr.fresh = sr.roi >= 1.0;
    report.sensors.push_back(std::move(sr));
  }
  return report;
}

std::string PerformanceReport::to_string() const {
  std::ostringstream oss;
  trace::TablePrinter seg({"segment", "latency (ms)", "energy (mJ)"});
  seg.set_align(0, trace::Align::kLeft);
  for (Segment s : all_segments()) {
    const double l = latency.segment(s);
    const double e = energy.segment(s);
    if (l == 0 && e == 0) continue;
    seg.add_row({segment_name(s), trace::fixed(l, 2), trace::fixed(e, 2)});
  }
  seg.add_rule();
  seg.add_row({"buffer wait (within rendering)",
               trace::fixed(latency.buffer_wait, 2), "-"});
  seg.add_row({"base energy", "-", trace::fixed(energy.base, 2)});
  seg.add_row({"thermal energy", "-", trace::fixed(energy.thermal, 2)});
  seg.add_rule();
  seg.add_row({"TOTAL", trace::fixed(latency.total, 2),
               trace::fixed(energy.total, 2)});
  oss << seg.render();

  if (!sensors.empty()) {
    trace::TablePrinter st(
        {"sensor", "avg AoI (ms)", "processed (Hz)", "RoI", "fresh"});
    st.set_align(0, trace::Align::kLeft);
    for (const auto& s : sensors)
      st.add_row({s.name, trace::fixed(s.average_aoi_ms, 2),
                  trace::fixed(s.processed_hz, 2), trace::fixed(s.roi, 3),
                  s.fresh ? "yes" : "no"});
    oss << st.render();
  }
  return oss.str();
}

ScenarioConfig make_local_scenario(double frame_size, double cpu_ghz) {
  ScenarioConfig s;
  s.client.cpu_ghz = cpu_ghz;
  s.client.gpu_ghz = 0.7;
  s.client.omega_c = 1.0;  // the Fig. 4 sweeps vary the CPU clock.
  s.client.memory_bandwidth_gbps = 44.0;
  s.frame.fps = 30.0;
  s.frame.frame_size = frame_size;
  s.frame.scene_size = frame_size;
  s.frame.converted_size = frame_size * 0.6;  // CNN input scaled down.
  s.sensors = {SensorConfig{"rsu", 200.0, 20.0},
               SensorConfig{"vehicle", 100.0, 35.0}};
  s.updates_per_frame = 3;
  s.buffer.service_rate_per_ms = 0.35;
  s.buffer.frame_arrival_per_ms = 0.030;
  s.buffer.volumetric_arrival_per_ms = 0.030;
  s.buffer.external_arrival_per_ms = 0.200;
  s.inference.placement = InferencePlacement::kLocal;
  s.inference.local_cnn_name = "MobileNetv2_300_Float";
  s.inference.omega_client = 1.0;
  s.inference.edges.clear();
  return s;
}

ScenarioConfig make_remote_scenario(double frame_size, double cpu_ghz) {
  ScenarioConfig s = make_local_scenario(frame_size, cpu_ghz);
  s.inference.placement = InferencePlacement::kRemote;
  s.inference.omega_client = 0.0;
  EdgeConfig edge;
  edge.name = "jetson-agx";
  edge.cnn_name = "YoloV3";
  edge.omega_edge = 1.0;
  s.inference.edges = {edge};
  s.network.throughput_mbps = 40.0;
  s.network.edge_distance_m = 50.0;
  s.mobility.enabled = false;  // Fig. 4(b): no device mobility.
  return s;
}

ScenarioConfig make_autonomous_driving_scenario() {
  ScenarioConfig s = make_remote_scenario(/*frame_size=*/640.0,
                                          /*cpu_ghz=*/2.5);
  // The ADS consumes one environment update every 10 ms, five per frame.
  s.aoi.request_period_ms = 10.0;
  s.aoi.updates_per_frame = 5;
  s.sensors = {
      SensorConfig{"rsu-pedestrian", /*hz=*/200.0, /*distance=*/60.0},
      SensorConfig{"traffic-signal", 50.0, 120.0},
      SensorConfig{"vehicle-map", 20.0, 40.0},
      SensorConfig{"lidar-unit", 100.0, 5.0},
  };
  s.updates_per_frame = 5;
  return s;
}

ScenarioConfig make_multiplayer_game_scenario() {
  ScenarioConfig s = make_remote_scenario(/*frame_size=*/600.0,
                                          /*cpu_ghz=*/2.8);
  s.cooperation.active = true;      // peers exchange object positions
  s.network.coop_payload_mb = 0.4;  // scene-fragment payload
  s.network.coop_distance_m = 45.0;
  s.sensors = {SensorConfig{"peer-positions", 120.0, 45.0}};
  // Split 60/40 across two servers; the smaller share goes to a weaker
  // second server (explicit resource instead of the 11.76x ratio).
  EdgeConfig near_edge;
  near_edge.name = "edge-A";
  near_edge.cnn_name = "YoloV7";
  near_edge.omega_edge = 0.6;
  EdgeConfig far_edge;
  far_edge.name = "edge-B";
  far_edge.cnn_name = "YoloV3";
  far_edge.omega_edge = 0.4;
  far_edge.resource = 80.0;  // weaker server
  far_edge.memory_bandwidth_gbps = 59.7;
  s.inference.edges = {near_edge, far_edge};
  return s;
}

ScenarioConfig make_handoff_mobility_scenario(double step_length_per_frame_m,
                                              double vertical_fraction) {
  ScenarioConfig s = make_remote_scenario(500.0, 2.0);
  s.mobility.enabled = true;
  s.mobility.zone_radius_m = 120.0;
  s.mobility.step_length_per_frame_m = step_length_per_frame_m;
  s.mobility.vertical_fraction = vertical_fraction;
  return s;
}

}  // namespace xr::core
