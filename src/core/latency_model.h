// The end-to-end latency analysis model — §IV, Eqs. (1)–(18).
//
// Every segment of the Fig. 1 pipeline has a named method implementing the
// corresponding equation; evaluate() composes them per Eq. (1):
//
//   L_tot = L_fg + L_vol + L_ext + L_ren + ω_loc L_fc + ω̄_loc L_en
//         + ω_loc L_loc + ω̄_loc L_rem + ω̄_loc L_tr + ω̄_loc L_HO + L_coop
//
// where ω_loc ∈ {0,1} selects local vs. remote inference. XR cooperation is
// normally executed in parallel with rendering and excluded from the total
// (§IV, "XR cooperation latency"); CooperationConfig::include_in_total
// overrides that.
#pragma once

#include "core/pipeline.h"

namespace xr::core {

/// Per-segment latency decomposition, all in ms.
struct LatencyBreakdown {
  double frame_generation = 0;   ///< L_fg  (Eq. 2).
  double volumetric = 0;         ///< L_vol (Eq. 4).
  double external_sensors = 0;   ///< L_ext (Eq. 5).
  double rendering = 0;          ///< L_renTotal (Eq. 8), incl. buffering.
  double buffer_wait = 0;        ///< t_buff (Eq. 7), part of rendering.
  double frame_conversion = 0;   ///< L_fc  (Eq. 9), local path.
  double encoding = 0;           ///< L_en  (Eq. 10), remote path.
  double local_inference = 0;    ///< L_loc (Eq. 11), local path.
  double remote_inference = 0;   ///< L_rem (Eq. 13/15), remote path.
  double transmission = 0;       ///< L_tr  (Eq. 16), remote path.
  double handoff = 0;            ///< L_HO  (Eq. 17), remote path w/ mobility.
  double cooperation = 0;        ///< L_coop (Eq. 18).
  bool cooperation_in_total = false;
  double total = 0;              ///< L_tot (Eq. 1).

  /// Segment accessor for table printing; buffer_wait is folded into
  /// rendering as in Eq. (8).
  [[nodiscard]] double segment(Segment s) const noexcept;
};

/// The analytical latency model. Immutable; thread-safe for concurrent
/// evaluate() calls.
class LatencyModel {
 public:
  /// Submodels: compute allocation (Eq. 3), CNN complexity (Eq. 12), codec
  /// (Eqs. 10/14). Defaults are the paper's printed coefficients.
  struct Submodels {
    devices::ComputeAllocationModel allocation{};
    devices::CnnComplexityModel cnn{};
    devices::CodecModel codec{};
  };

  LatencyModel();
  explicit LatencyModel(Submodels submodels);

  /// Full Eq. (1) evaluation. Validates the scenario first.
  [[nodiscard]] LatencyBreakdown evaluate(const ScenarioConfig& s) const;

  // --- Per-segment equations (all take the scenario for parameter access) --

  /// Allocated client compute resource c_client (Eq. 3).
  [[nodiscard]] double client_resource(const ClientConfig& c) const;
  /// Allocated edge resource c_ε: explicit, or 11.76 · c_client (Eq. 14's
  /// measured ratio) when the edge config leaves it negative.
  [[nodiscard]] double edge_resource(const EdgeConfig& e,
                                     const ClientConfig& c) const;

  /// Eq. (2): L_fg = 1/n_fps + s_f1/c_client + δ_f1/m_client.
  [[nodiscard]] double frame_generation_ms(const ScenarioConfig& s) const;
  /// Eq. (4): L_vol = s_vol/c_client + δ_vol/m_client.
  [[nodiscard]] double volumetric_ms(const ScenarioConfig& s) const;
  /// Eqs. (5)+(6): L_ext = max_m Σ_n (1/f_t^m + d_mn/c).
  [[nodiscard]] double external_sensors_ms(const ScenarioConfig& s) const;
  /// Eq. (7): t_buff as the sum of three stable M/M/1 sojourn times.
  [[nodiscard]] double buffering_ms(const BufferConfig& b) const;
  /// Eq. (8): L_renTotal = s_f1/c + δ_f1/m + t_buff + result delivery.
  [[nodiscard]] double rendering_ms(const ScenarioConfig& s) const;
  /// Eq. (9): L_fc = s_f1/c + δ_f1/m.
  [[nodiscard]] double frame_conversion_ms(const ScenarioConfig& s) const;
  /// Eq. (10): encoding latency via the codec regression.
  [[nodiscard]] double encoding_ms(const ScenarioConfig& s) const;
  /// Eq. (11): L_loc = ω_client [ s_f2/(c·C_CNN(loc)) + δ_f2/m ].
  [[nodiscard]] double local_inference_ms(const ScenarioConfig& s) const;
  /// Eq. (13) for one edge; Eq. (15) max-composition over all edges.
  [[nodiscard]] double remote_inference_ms(const ScenarioConfig& s) const;
  [[nodiscard]] double remote_inference_one_edge_ms(const ScenarioConfig& s,
                                                    const EdgeConfig& e) const;
  /// Eq. (14): decode latency on the edge.
  [[nodiscard]] double decode_ms(const ScenarioConfig& s,
                                 const EdgeConfig& e) const;
  /// Eq. (16): L_tr = δ_f3/r_w + d_ε/c.
  [[nodiscard]] double transmission_ms(const ScenarioConfig& s) const;
  /// Eq. (17): L_HO = l_HO · P(HO); zero when mobility is disabled.
  [[nodiscard]] double handoff_ms(const ScenarioConfig& s) const;
  /// Eq. (18): L_coop = δ_f4/r_w + d_coop/c; zero when cooperation inactive.
  [[nodiscard]] double cooperation_ms(const ScenarioConfig& s) const;

  /// Encoded payload δ_f3 in MB (codec output model).
  [[nodiscard]] double encoded_payload_mb(const ScenarioConfig& s) const;

  [[nodiscard]] const Submodels& submodels() const noexcept {
    return submodels_;
  }

 private:
  Submodels submodels_;
};

}  // namespace xr::core
