// xr::fail — deterministic, schedule-driven fault injection.
//
// A *failpoint* is a named hook compiled into a path that can genuinely
// fail in production (a transport write, a sink flush, a coordinator
// fold). At runtime each hook asks the process-wide FaultSchedule whether
// it should fire this hit:
//
//   if (auto f = fail::point("transport.send"))
//     ...apply f->action (throw io_error, truncate, corrupt, drop, delay)
//
// The schedule ("xr.fault.schedule.v1" JSON) is a seeded list of rules —
// per-point triggers (fire on the Nth hit, every Kth hit, or with seeded
// probability p per hit) bound to an action — loaded either
// programmatically (load_schedule, tests) or lazily from the
// XR_FAULT_SCHEDULE environment variable naming a schedule file (tools,
// chaos scripts). Hit counting and the probability PRNG are owned by the
// process registry, so replaying the same schedule against the same
// process behavior fires the same faults: chaos runs are reproducible.
//
// Zero perturbation, in the spirit of the obs layer: with no schedule
// loaded a hook is one relaxed atomic load; under -DXR_FAULT_DISABLED=ON
// every hook compiles to an inline `return nullopt` stub and the chaos
// gate (scripts.sweep_service_chaos) proves the stub build's streams are
// byte-identical to the default build's. Every firing increments the obs
// counter `fault.<point>.fired`, so a schedule's bite is auditable in any
// metrics snapshot.
//
// Failpoint catalog (what each site honors) lives in DESIGN.md §"Fault
// injection"; a site silently ignores actions it cannot express.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/jsonio.h"

namespace xr::fail {

/// False in XR_FAULT_DISABLED builds: point() is an inline nullopt stub
/// and schedules cannot be loaded. Tests gate their assertions on this.
inline constexpr bool kEnabled =
#ifdef XR_FAULT_DISABLED
    false;
#else
    true;
#endif

/// What a firing failpoint asks its site to do. A site applies the subset
/// it can express and ignores the rest (catalogued in DESIGN.md).
enum class Action {
  kIoError,   ///< throw a named I/O error from the site.
  kTruncate,  ///< tear the write: persist a prefix, then fail.
  kCorrupt,   ///< flip bytes in the written/fetched payload, no error.
  kDrop,      ///< swallow the message/blob silently.
  kDelay,     ///< stall the site for delay_ms, then proceed normally.
};

[[nodiscard]] const char* action_name(Action a) noexcept;
[[nodiscard]] Action action_from_name(const std::string& name);

/// Trigger of one rule: when does it fire relative to the point's hits
/// (1-based, counted per rule)?
struct Trigger {
  enum class Kind {
    kNth,          ///< exactly the n-th hit.
    kEvery,        ///< every n-th hit (n, 2n, 3n, ...).
    kProbability,  ///< each hit independently with probability p (seeded).
  };
  Kind kind = Kind::kNth;
  std::size_t n = 1;  ///< kNth / kEvery.
  double p = 0;       ///< kProbability, in [0, 1].
};

/// One schedule entry: at `point`, when `trigger` says so, do `action`.
struct FaultRule {
  std::string point;
  Trigger trigger;
  Action action = Action::kIoError;
  std::uint64_t delay_ms = 0;  ///< kDelay stall; ignored otherwise.
  std::size_t max_fires = 0;   ///< stop firing after this many; 0 = never.
};

/// The serializable process fault plan ("xr.fault.schedule.v1").
struct FaultSchedule {
  std::uint64_t seed = 0;  ///< PRNG seed for probability triggers.
  std::vector<FaultRule> rules;

  [[nodiscard]] core::Json to_json() const;
  /// Strict parse: unknown fields, bad action/trigger names, p outside
  /// [0,1], n == 0, or a delay action without delay_ms are all named
  /// std::invalid_argument errors.
  [[nodiscard]] static FaultSchedule from_json(const core::Json& j);
};

/// What point() hands a firing site.
struct Fired {
  Action action = Action::kIoError;
  std::uint64_t delay_ms = 0;
  std::string point;  ///< for naming the injected error.
};

#ifndef XR_FAULT_DISABLED

/// Install `schedule` as the process fault plan, replacing any previous
/// one and resetting all hit/fire counters. Thread-safe.
void load_schedule(const FaultSchedule& schedule);

/// Remove the process fault plan (tests); every point() returns nullopt
/// again and the XR_FAULT_SCHEDULE environment variable is NOT re-read.
void clear_schedule();

/// True when a schedule is installed (after env lazy-load, if any).
[[nodiscard]] bool schedule_loaded();

/// Count one hit of `name` against the process schedule; engaged when a
/// rule fires (first firing rule wins). With no schedule installed the
/// first call lazily loads XR_FAULT_SCHEDULE (a schedule file path) if
/// set — an unreadable or invalid schedule file throws, loudly, rather
/// than silently running fault-free — after which a hook costs one
/// relaxed atomic load. Every firing increments `fault.<name>.fired`.
[[nodiscard]] std::optional<Fired> point(std::string_view name);

#else  // XR_FAULT_DISABLED: every hook is an inline no-op stub.

inline void load_schedule(const FaultSchedule&) {}
inline void clear_schedule() {}
[[nodiscard]] inline bool schedule_loaded() { return false; }
[[nodiscard]] inline std::optional<Fired> point(std::string_view) {
  return std::nullopt;
}

#endif

}  // namespace xr::fail
