#include "core/serialize.h"

#include <stdexcept>

namespace xr::core {

namespace {

// ---- scenario sub-configs ----------------------------------------------

Json client_to_json(const ClientConfig& c) {
  Json j = Json::object();
  j.set("cpu_ghz", c.cpu_ghz);
  j.set("gpu_ghz", c.gpu_ghz);
  j.set("omega_c", c.omega_c);
  j.set("memory_bandwidth_gbps", c.memory_bandwidth_gbps);
  return j;
}

ClientConfig client_from_json(const Json& j) {
  ClientConfig c;
  c.cpu_ghz = j.at("cpu_ghz").as_double();
  c.gpu_ghz = j.at("gpu_ghz").as_double();
  c.omega_c = j.at("omega_c").as_double();
  c.memory_bandwidth_gbps = j.at("memory_bandwidth_gbps").as_double();
  return c;
}

Json frame_to_json(const FrameConfig& f) {
  Json j = Json::object();
  j.set("fps", f.fps);
  j.set("frame_size", f.frame_size);
  j.set("scene_size", f.scene_size);
  j.set("converted_size", f.converted_size);
  j.set("raw_frame_mb", f.raw_frame_mb);
  j.set("volumetric_mb", f.volumetric_mb);
  j.set("converted_mb", f.converted_mb);
  j.set("inference_result_mb", f.inference_result_mb);
  return j;
}

FrameConfig frame_from_json(const Json& j) {
  FrameConfig f;
  f.fps = j.at("fps").as_double();
  f.frame_size = j.at("frame_size").as_double();
  f.scene_size = j.at("scene_size").as_double();
  f.converted_size = j.at("converted_size").as_double();
  f.raw_frame_mb = j.at("raw_frame_mb").as_double();
  f.volumetric_mb = j.at("volumetric_mb").as_double();
  f.converted_mb = j.at("converted_mb").as_double();
  f.inference_result_mb = j.at("inference_result_mb").as_double();
  return f;
}

Json sensor_to_json(const SensorConfig& s) {
  Json j = Json::object();
  j.set("name", s.name);
  j.set("generation_hz", s.generation_hz);
  j.set("distance_m", s.distance_m);
  return j;
}

SensorConfig sensor_from_json(const Json& j) {
  SensorConfig s;
  s.name = j.at("name").as_string();
  s.generation_hz = j.at("generation_hz").as_double();
  s.distance_m = j.at("distance_m").as_double();
  return s;
}

Json buffer_to_json(const BufferConfig& b) {
  Json j = Json::object();
  j.set("service_rate_per_ms", b.service_rate_per_ms);
  j.set("frame_arrival_per_ms", b.frame_arrival_per_ms);
  j.set("volumetric_arrival_per_ms", b.volumetric_arrival_per_ms);
  j.set("external_arrival_per_ms", b.external_arrival_per_ms);
  return j;
}

BufferConfig buffer_from_json(const Json& j) {
  BufferConfig b;
  b.service_rate_per_ms = j.at("service_rate_per_ms").as_double();
  b.frame_arrival_per_ms = j.at("frame_arrival_per_ms").as_double();
  b.volumetric_arrival_per_ms = j.at("volumetric_arrival_per_ms").as_double();
  b.external_arrival_per_ms = j.at("external_arrival_per_ms").as_double();
  return b;
}

Json network_to_json(const NetworkConfig& n) {
  Json j = Json::object();
  j.set("throughput_mbps", n.throughput_mbps);
  j.set("edge_distance_m", n.edge_distance_m);
  j.set("coop_distance_m", n.coop_distance_m);
  j.set("coop_payload_mb", n.coop_payload_mb);
  return j;
}

NetworkConfig network_from_json(const Json& j) {
  NetworkConfig n;
  n.throughput_mbps = j.at("throughput_mbps").as_double();
  n.edge_distance_m = j.at("edge_distance_m").as_double();
  n.coop_distance_m = j.at("coop_distance_m").as_double();
  n.coop_payload_mb = j.at("coop_payload_mb").as_double();
  return n;
}

Json edge_to_json(const EdgeConfig& e) {
  Json j = Json::object();
  j.set("name", e.name);
  j.set("resource", e.resource);
  j.set("memory_bandwidth_gbps", e.memory_bandwidth_gbps);
  j.set("cnn_name", e.cnn_name);
  j.set("omega_edge", e.omega_edge);
  return j;
}

EdgeConfig edge_from_json(const Json& j) {
  EdgeConfig e;
  e.name = j.at("name").as_string();
  e.resource = j.at("resource").as_double();
  e.memory_bandwidth_gbps = j.at("memory_bandwidth_gbps").as_double();
  e.cnn_name = j.at("cnn_name").as_string();
  e.omega_edge = j.at("omega_edge").as_double();
  return e;
}

Json inference_to_json(const InferenceConfig& i) {
  Json j = Json::object();
  j.set("placement", placement_name(i.placement));
  j.set("local_cnn_name", i.local_cnn_name);
  j.set("omega_client", i.omega_client);
  Json edges = Json::array();
  for (const auto& e : i.edges) edges.push_back(edge_to_json(e));
  j.set("edges", std::move(edges));
  j.set("encoded_size", i.encoded_size);
  return j;
}

InferenceConfig inference_from_json(const Json& j) {
  InferenceConfig i;
  i.placement = placement_from_name(j.at("placement").as_string());
  i.local_cnn_name = j.at("local_cnn_name").as_string();
  i.omega_client = j.at("omega_client").as_double();
  i.edges.clear();
  for (const Json& e : j.at("edges").as_array())
    i.edges.push_back(edge_from_json(e));
  i.encoded_size = j.at("encoded_size").as_double();
  return i;
}

Json handoff_to_json(const wireless::HandoffLatencyConfig& h) {
  Json j = Json::object();
  j.set("l2_scan_ms", h.l2_scan_ms);
  j.set("l2_auth_assoc_ms", h.l2_auth_assoc_ms);
  j.set("l3_registration_ms", h.l3_registration_ms);
  j.set("interface_activation_ms", h.interface_activation_ms);
  j.set("vertical_auth_ms", h.vertical_auth_ms);
  j.set("vertical_l3_ms", h.vertical_l3_ms);
  j.set("service_migration_ms", h.service_migration_ms);
  return j;
}

wireless::HandoffLatencyConfig handoff_from_json(const Json& j) {
  wireless::HandoffLatencyConfig h;
  h.l2_scan_ms = j.at("l2_scan_ms").as_double();
  h.l2_auth_assoc_ms = j.at("l2_auth_assoc_ms").as_double();
  h.l3_registration_ms = j.at("l3_registration_ms").as_double();
  h.interface_activation_ms = j.at("interface_activation_ms").as_double();
  h.vertical_auth_ms = j.at("vertical_auth_ms").as_double();
  h.vertical_l3_ms = j.at("vertical_l3_ms").as_double();
  h.service_migration_ms = j.at("service_migration_ms").as_double();
  return h;
}

Json mobility_to_json(const MobilityConfig& m) {
  Json j = Json::object();
  j.set("enabled", m.enabled);
  j.set("zone_radius_m", m.zone_radius_m);
  j.set("step_length_per_frame_m", m.step_length_per_frame_m);
  j.set("vertical_fraction", m.vertical_fraction);
  j.set("handoff", handoff_to_json(m.handoff));
  return j;
}

MobilityConfig mobility_from_json(const Json& j) {
  MobilityConfig m;
  m.enabled = j.at("enabled").as_bool();
  m.zone_radius_m = j.at("zone_radius_m").as_double();
  m.step_length_per_frame_m = j.at("step_length_per_frame_m").as_double();
  m.vertical_fraction = j.at("vertical_fraction").as_double();
  m.handoff = handoff_from_json(j.at("handoff"));
  return m;
}

Json cooperation_to_json(const CooperationConfig& c) {
  Json j = Json::object();
  j.set("active", c.active);
  j.set("include_in_total", c.include_in_total);
  return j;
}

CooperationConfig cooperation_from_json(const Json& j) {
  CooperationConfig c;
  c.active = j.at("active").as_bool();
  c.include_in_total = j.at("include_in_total").as_bool();
  return c;
}

Json aoi_to_json(const AoiConfig& a) {
  Json j = Json::object();
  j.set("request_period_ms", a.request_period_ms);
  j.set("updates_per_frame", a.updates_per_frame);
  return j;
}

AoiConfig aoi_from_json(const Json& j) {
  AoiConfig a;
  a.request_period_ms = j.at("request_period_ms").as_double();
  a.updates_per_frame = int(j.at("updates_per_frame").as_size());
  return a;
}

}  // namespace

Json to_json(const ScenarioConfig& s) {
  Json j = Json::object();
  j.set("client", client_to_json(s.client));
  j.set("frame", frame_to_json(s.frame));
  Json sensors = Json::array();
  for (const auto& sensor : s.sensors)
    sensors.push_back(sensor_to_json(sensor));
  j.set("sensors", std::move(sensors));
  j.set("buffer", buffer_to_json(s.buffer));
  j.set("network", network_to_json(s.network));
  j.set("inference", inference_to_json(s.inference));
  j.set("codec", to_json(s.codec));
  j.set("mobility", mobility_to_json(s.mobility));
  j.set("cooperation", cooperation_to_json(s.cooperation));
  j.set("aoi", aoi_to_json(s.aoi));
  j.set("updates_per_frame", std::size_t(s.updates_per_frame));
  return j;
}

ScenarioConfig scenario_from_json(const Json& j) {
  ScenarioConfig s;
  s.client = client_from_json(j.at("client"));
  s.frame = frame_from_json(j.at("frame"));
  s.sensors.clear();
  for (const Json& sensor : j.at("sensors").as_array())
    s.sensors.push_back(sensor_from_json(sensor));
  s.buffer = buffer_from_json(j.at("buffer"));
  s.network = network_from_json(j.at("network"));
  s.inference = inference_from_json(j.at("inference"));
  s.codec = h264_from_json(j.at("codec"));
  s.mobility = mobility_from_json(j.at("mobility"));
  s.cooperation = cooperation_from_json(j.at("cooperation"));
  s.aoi = aoi_from_json(j.at("aoi"));
  s.updates_per_frame = int(j.at("updates_per_frame").as_size());
  return s;
}

// ---- performance report breakdowns -------------------------------------

Json to_json(const LatencyBreakdown& l) {
  Json j = Json::object();
  j.set("frame_generation", l.frame_generation);
  j.set("volumetric", l.volumetric);
  j.set("external_sensors", l.external_sensors);
  j.set("rendering", l.rendering);
  j.set("buffer_wait", l.buffer_wait);
  j.set("frame_conversion", l.frame_conversion);
  j.set("encoding", l.encoding);
  j.set("local_inference", l.local_inference);
  j.set("remote_inference", l.remote_inference);
  j.set("transmission", l.transmission);
  j.set("handoff", l.handoff);
  j.set("cooperation", l.cooperation);
  j.set("cooperation_in_total", l.cooperation_in_total);
  j.set("total", l.total);
  return j;
}

LatencyBreakdown latency_breakdown_from_json(const Json& j) {
  LatencyBreakdown l;
  l.frame_generation = j.at("frame_generation").as_double();
  l.volumetric = j.at("volumetric").as_double();
  l.external_sensors = j.at("external_sensors").as_double();
  l.rendering = j.at("rendering").as_double();
  l.buffer_wait = j.at("buffer_wait").as_double();
  l.frame_conversion = j.at("frame_conversion").as_double();
  l.encoding = j.at("encoding").as_double();
  l.local_inference = j.at("local_inference").as_double();
  l.remote_inference = j.at("remote_inference").as_double();
  l.transmission = j.at("transmission").as_double();
  l.handoff = j.at("handoff").as_double();
  l.cooperation = j.at("cooperation").as_double();
  l.cooperation_in_total = j.at("cooperation_in_total").as_bool();
  l.total = j.at("total").as_double();
  return l;
}

Json to_json(const EnergyBreakdown& e) {
  Json j = Json::object();
  j.set("frame_generation", e.frame_generation);
  j.set("volumetric", e.volumetric);
  j.set("external_sensors", e.external_sensors);
  j.set("rendering", e.rendering);
  j.set("frame_conversion", e.frame_conversion);
  j.set("encoding", e.encoding);
  j.set("local_inference", e.local_inference);
  j.set("remote_inference", e.remote_inference);
  j.set("transmission", e.transmission);
  j.set("handoff", e.handoff);
  j.set("cooperation", e.cooperation);
  j.set("cooperation_in_total", e.cooperation_in_total);
  j.set("thermal", e.thermal);
  j.set("base", e.base);
  j.set("total", e.total);
  return j;
}

EnergyBreakdown energy_breakdown_from_json(const Json& j) {
  EnergyBreakdown e;
  e.frame_generation = j.at("frame_generation").as_double();
  e.volumetric = j.at("volumetric").as_double();
  e.external_sensors = j.at("external_sensors").as_double();
  e.rendering = j.at("rendering").as_double();
  e.frame_conversion = j.at("frame_conversion").as_double();
  e.encoding = j.at("encoding").as_double();
  e.local_inference = j.at("local_inference").as_double();
  e.remote_inference = j.at("remote_inference").as_double();
  e.transmission = j.at("transmission").as_double();
  e.handoff = j.at("handoff").as_double();
  e.cooperation = j.at("cooperation").as_double();
  e.cooperation_in_total = j.at("cooperation_in_total").as_bool();
  e.thermal = j.at("thermal").as_double();
  e.base = j.at("base").as_double();
  e.total = j.at("total").as_double();
  return e;
}
Json to_json(const std::vector<SensorReport>& sensors) {
  Json arr = Json::array();
  for (const auto& s : sensors) {
    Json sj = Json::object();
    sj.set("name", s.name);
    sj.set("average_aoi_ms", s.average_aoi_ms);
    sj.set("processed_hz", s.processed_hz);
    sj.set("roi", s.roi);
    sj.set("fresh", s.fresh);
    arr.push_back(std::move(sj));
  }
  return arr;
}

std::vector<SensorReport> sensors_from_json(const Json& j) {
  std::vector<SensorReport> out;
  for (const Json& sj : j.as_array()) {
    SensorReport s;
    s.name = sj.at("name").as_string();
    s.average_aoi_ms = sj.at("average_aoi_ms").as_double();
    s.processed_hz = sj.at("processed_hz").as_double();
    s.roi = sj.at("roi").as_double();
    s.fresh = sj.at("fresh").as_bool();
    out.push_back(std::move(s));
  }
  return out;
}

Json to_json(const PerformanceReport& report) {
  Json j = Json::object();
  j.set("latency", to_json(report.latency));
  j.set("energy", to_json(report.energy));
  j.set("sensors", to_json(report.sensors));
  return j;
}

PerformanceReport report_from_json(const Json& j) {
  PerformanceReport report;
  report.latency = latency_breakdown_from_json(j.at("latency"));
  report.energy = energy_breakdown_from_json(j.at("energy"));
  report.sensors = sensors_from_json(j.at("sensors"));
  return report;
}

Json to_json(const devices::H264Config& codec) {
  Json j = Json::object();
  j.set("i_frame_interval", codec.i_frame_interval);
  j.set("b_frame_interval", codec.b_frame_interval);
  j.set("bitrate_mbps", codec.bitrate_mbps);
  j.set("fps", codec.fps);
  j.set("quantization", codec.quantization);
  return j;
}

devices::H264Config h264_from_json(const Json& j) {
  devices::H264Config c;
  c.i_frame_interval = j.at("i_frame_interval").as_double();
  c.b_frame_interval = j.at("b_frame_interval").as_double();
  c.bitrate_mbps = j.at("bitrate_mbps").as_double();
  c.fps = j.at("fps").as_double();
  c.quantization = j.at("quantization").as_double();
  return c;
}

}  // namespace xr::core
