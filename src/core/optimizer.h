// Offload-decision optimizer — operationalizing the ω terms of Eq. (1).
//
// The paper's framework exposes the deployment knobs an XR application
// controls: inference placement ω_loc, the CPU/GPU allocation share ω_c, the
// task split across edge servers ω_edge^e (Eq. 15), and the codec operating
// point. The analytical models make those decisions cheap to search: this
// module expresses the candidate grid as a *serializable*
// runtime::SweepRequest (offload_search_request) and reduces its summary to
// the latency-optimal, energy-optimal, and weighted-objective-optimal
// configurations plus the Pareto frontier — the planning workflow the
// paper's introduction motivates (replace testbed trial-and-error with
// analysis).
//
// Because the request is a document, the search distributes: K sweep_worker
// processes over the same request merge (sweep_merge / merge_partials) into
// a summary whose offload_plan_from_summary reduction is bitwise identical
// to the monolithic plan_offload call — asserted in-process by
// tests/runtime/test_sweep_request.cpp and across real processes by
// scripts/sweep_offload_plan.sh.
//
// This header declares only the core value types and the classic
// plan_offload entry point; the request-facing plumbing
// (offload_search_request, decision_at, offload_plan_from_summary, the
// SweepRequest overload of plan_offload) lives in runtime/offload_search.h
// so core headers stay below the runtime layer.
#pragma once

#include <string>
#include <vector>

#include "core/framework.h"
#include "core/jsonio.h"

namespace xr::core {

/// One candidate decision.
struct OffloadDecision {
  InferencePlacement placement = InferencePlacement::kLocal;
  double omega_c = 1.0;        ///< CPU share of the device allocation.
  std::string local_cnn = "MobileNetv2_300_Float";
  std::string edge_cnn = "YoloV3";
  int edge_count = 1;          ///< parallel edge servers (Eq. 15).
  devices::H264Config codec;   ///< remote path only.

  /// Apply this decision to a scenario (leaves everything else untouched).
  [[nodiscard]] ScenarioConfig apply(ScenarioConfig base) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static OffloadDecision from_json(const Json& j);
};

/// Evaluated candidate: the decision plus the full performance analysis of
/// the scenario it produces (latency, energy, and per-sensor AoI/RoI), so
/// downstream planning can inspect any metric without re-evaluating.
struct EvaluatedDecision {
  OffloadDecision decision;
  PerformanceReport report;

  [[nodiscard]] double latency_ms() const noexcept {
    return report.latency.total;
  }
  [[nodiscard]] double energy_mj() const noexcept {
    return report.energy.total;
  }

  /// Weighted objective: alpha·latency + (1−alpha)·energy, both normalized
  /// by the supplied scales.
  [[nodiscard]] double objective(double alpha, double latency_scale,
                                 double energy_scale) const;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static EvaluatedDecision from_json(const Json& j);
};

/// Search space description (serializable, so an offload search is as
/// shippable as any other sweep document).
struct OffloadSearchSpace {
  std::vector<double> omega_c_grid = {0.0, 0.25, 0.5, 0.75, 1.0};
  std::vector<std::string> local_cnns = {"MobileNetv1_240_Quant",
                                         "MobileNetv2_300_Float"};
  std::vector<std::string> edge_cnns = {"YoloV3", "YoloV7"};
  std::vector<int> edge_counts = {1, 2};
  std::vector<double> codec_bitrates_mbps = {2.0, 4.0, 8.0};
  bool include_local = true;
  bool include_remote = true;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static OffloadSearchSpace from_json(const Json& j);
};

/// Result of a search.
struct OffloadPlan {
  EvaluatedDecision best_latency;
  EvaluatedDecision best_energy;
  EvaluatedDecision best_weighted;
  /// Latency-ascending Pareto frontier (no candidate dominates another).
  std::vector<EvaluatedDecision> pareto;
  std::size_t candidates_evaluated = 0;

  /// Canonical serialization (doubles bitwise, deterministic order) — what
  /// the offload merge-law gate compares byte for byte.
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static OffloadPlan from_json(const Json& j);

  /// Human-readable summary block (one line per optimum + frontier size),
  /// each line prefixed with `indent` — shared by the CLI tools so both
  /// describe a plan identically.
  [[nodiscard]] std::string to_string(double alpha,
                                      const std::string& indent = "") const;
};

/// Grid-search the offload decision for a base scenario. `alpha` weights
/// latency against energy in the combined objective (normalized by the
/// best-found values of each metric). Thin wrapper:
/// plan_offload(offload_search_request(base, space, alpha), model) — see
/// runtime/offload_search.h for the request-facing functions.
[[nodiscard]] OffloadPlan plan_offload(const ScenarioConfig& base,
                                       const OffloadSearchSpace& space = {},
                                       double alpha = 0.5,
                                       const XrPerformanceModel& model = {});

/// Split ω_edge^e across `count` edge servers proportionally to their
/// resources so the Eq. (15) max is minimized (load balancing). Resources
/// must be positive; shares sum to 1.
[[nodiscard]] std::vector<double> balance_edge_split(
    const std::vector<double>& edge_resources);

}  // namespace xr::core
