#include "core/aoi_model.h"

#include <algorithm>
#include <stdexcept>

#include "queueing/mm1.h"
#include "wireless/propagation.h"

namespace xr::core {

double AoiModel::buffer_sojourn_ms(const BufferConfig& b) const {
  const queueing::MM1 q(b.external_arrival_per_ms, b.service_rate_per_ms);
  return q.mean_time_in_system();
}

double AoiModel::aoi_ms(const SensorConfig& sensor, const BufferConfig& buffer,
                        double request_period_ms, int cycle) const {
  if (cycle < 1) throw std::invalid_argument("AoiModel: cycle is 1-based");
  if (request_period_ms <= 0)
    throw std::invalid_argument("AoiModel: request period must be > 0");
  const double period = 1000.0 / sensor.generation_hz;
  const double generation = double(cycle) * period;
  const double requested = double(cycle - 1) * request_period_ms;
  const double delay = wireless::propagation_delay_ms(sensor.distance_m) +
                       buffer_sojourn_ms(buffer);
  // Eq. (23), with the physical floor for sensors faster than the request
  // rate: information can never be fresher than one generation interval, so
  // a fast sensor settles at AoI = 1/f_t + delivery delay instead of the
  // raw (negative) timing difference.
  return std::max(generation - requested, period) + delay;
}

std::vector<AoiPoint> AoiModel::timeline(const SensorConfig& sensor,
                                         const BufferConfig& buffer,
                                         double request_period_ms,
                                         int cycles) const {
  if (cycles < 1)
    throw std::invalid_argument("AoiModel::timeline: need >= 1 cycle");
  std::vector<AoiPoint> points;
  points.reserve(std::size_t(cycles));
  for (int n = 1; n <= cycles; ++n) {
    AoiPoint p;
    p.cycle = n;
    p.request_time_ms = double(n - 1) * request_period_ms;
    p.generation_time_ms = double(n) * 1000.0 / sensor.generation_hz;
    p.aoi_ms = aoi_ms(sensor, buffer, request_period_ms, n);
    p.roi = request_period_ms / p.aoi_ms;
    points.push_back(p);
  }
  return points;
}

double AoiModel::average_aoi_ms(const SensorConfig& sensor,
                                const BufferConfig& buffer,
                                const AoiConfig& aoi) const {
  // Eq. (24): A^mq = (1/N) Σ_n t_mnq.
  double sum = 0;
  for (int n = 1; n <= aoi.updates_per_frame; ++n)
    sum += aoi_ms(sensor, buffer, aoi.request_period_ms, n);
  return sum / double(aoi.updates_per_frame);
}

double AoiModel::processed_frequency_hz(const SensorConfig& sensor,
                                        const BufferConfig& buffer,
                                        const AoiConfig& aoi) const {
  return 1000.0 / average_aoi_ms(sensor, buffer, aoi);  // Eq. (25).
}

double AoiModel::roi(const SensorConfig& sensor, const BufferConfig& buffer,
                     const AoiConfig& aoi) const {
  const double f_req_hz = 1000.0 / aoi.request_period_ms;
  return processed_frequency_hz(sensor, buffer, aoi) / f_req_hz;  // Eq. (26).
}

bool AoiModel::fresh(const SensorConfig& sensor, const BufferConfig& buffer,
                     const AoiConfig& aoi) const {
  return roi(sensor, buffer, aoi) >= 1.0;
}

double AoiModel::required_generation_hz(double distance_m,
                                        const BufferConfig& buffer,
                                        const AoiConfig& aoi) const {
  SensorConfig probe;
  probe.distance_m = distance_m;
  // RoI is monotonically increasing in generation frequency; bisect.
  double lo = 1.0, hi = 1.0e6;
  probe.generation_hz = hi;
  if (roi(probe, buffer, aoi) < 1.0)
    throw std::runtime_error(
        "AoiModel: delays alone exceed the freshness budget");
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    probe.generation_hz = mid;
    if (roi(probe, buffer, aoi) >= 1.0)
      hi = mid;
    else
      lo = mid;
  }
  return hi;
}

}  // namespace xr::core
