// XrPerformanceModel — the framework facade (§III).
//
// Composes the three analytical models (latency §IV, energy §V, AoI §VI)
// into a single evaluation over a ScenarioConfig, producing a full
// PerformanceReport: per-segment latency and energy plus per-sensor AoI/RoI.
// This is the primary public entry point of the library.
#pragma once

#include <string>
#include <vector>

#include "core/aoi_model.h"
#include "core/energy_model.h"
#include "core/latency_model.h"
#include "core/pipeline.h"

namespace xr::core {

/// AoI summary for one sensor.
struct SensorReport {
  std::string name;
  double average_aoi_ms = 0;   ///< Eq. (24).
  double processed_hz = 0;     ///< Eq. (25).
  double roi = 0;              ///< Eq. (26).
  bool fresh = false;          ///< RoI >= 1.
};

/// Complete per-frame performance analysis.
struct PerformanceReport {
  LatencyBreakdown latency;
  EnergyBreakdown energy;
  std::vector<SensorReport> sensors;

  /// Render the report as human-readable tables.
  [[nodiscard]] std::string to_string() const;
};

/// The XR performance-analysis modeling framework.
class XrPerformanceModel {
 public:
  XrPerformanceModel() = default;
  XrPerformanceModel(LatencyModel latency, EnergyModel energy,
                     AoiModel aoi = AoiModel{});

  /// Evaluate latency, energy, and AoI for one scenario. Validates the
  /// scenario and throws std::invalid_argument on inconsistent input.
  [[nodiscard]] PerformanceReport evaluate(const ScenarioConfig& s) const;

  /// Access the constituent models.
  [[nodiscard]] const LatencyModel& latency_model() const noexcept {
    return latency_;
  }
  [[nodiscard]] const EnergyModel& energy_model() const noexcept {
    return energy_;
  }
  [[nodiscard]] const AoiModel& aoi_model() const noexcept { return aoi_; }

 private:
  LatencyModel latency_{};
  EnergyModel energy_{};
  AoiModel aoi_{};
};

/// Convenience scenario factories used by examples, tests, and benches.
/// Local object-detection on a mid-range phone (Fig. 4a/4c operating point).
[[nodiscard]] ScenarioConfig make_local_scenario(double frame_size = 500.0,
                                                 double cpu_ghz = 2.0);
/// Edge-offloaded object detection, no mobility (Fig. 4b/4d).
[[nodiscard]] ScenarioConfig make_remote_scenario(double frame_size = 500.0,
                                                  double cpu_ghz = 2.0);

// The example workloads, shared by examples/, the serialization tests, and
// sweep request documents (any of these can be a grid's base scenario).

/// Autonomous driving: AoI-driven sensing from roadside units, traffic
/// infrastructure, neighbouring vehicles, and an onboard lidar.
[[nodiscard]] ScenarioConfig make_autonomous_driving_scenario();
/// Multiplayer XR game: active cooperation plus a heterogeneous two-edge
/// 60/40 split of the inference task (Eq. 15/18).
[[nodiscard]] ScenarioConfig make_multiplayer_game_scenario();
/// Walking user leaving Wi-Fi zones: mobility/handoff enabled (Eq. 17).
[[nodiscard]] ScenarioConfig make_handoff_mobility_scenario(
    double step_length_per_frame_m = 1.0, double vertical_fraction = 0.0);

}  // namespace xr::core
