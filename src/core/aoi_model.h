// The Age-of-Information (AoI) and Relevance-of-Information (RoI) analysis
// model — §VI, Eqs. (22)–(26).
//
// Sensors generate information at their own frequency f_t^m; the XR device
// requests one update every request period. The information answering the
// n-th request is the sensor's n-th generation cycle, so the age observed at
// the device is
//
//   t_mnq = T_mn + (d_m/c + T̄) − T^n_Req                         (Eq. 23)
//
// with T_mn = n / f_t^m (generation completion), T^n_Req = (n−1)·T_req
// (request issue times starting at t = 0), propagation delay d_m/c, and the
// M/M/1 input-buffer sojourn T̄ = 1/(µ−λ) (Eq. 22). A sensor slower than the
// request rate falls further behind every cycle, producing the growing
// staircase of Figs. 4(e)/(f); a sensor at (or above) the request rate keeps
// a flat AoI floored at one generation interval plus the delivery delay.
//
// RoI (Eq. 26) is the ratio of the processed-information frequency
// f̄ = 1/AoI (Eq. 25) to the required frequency f_req = N / L_tot = 1/T_req.
#pragma once

#include <vector>

#include "core/pipeline.h"

namespace xr::core {

/// One AoI observation for update cycle n of a sensor.
struct AoiPoint {
  int cycle = 0;              ///< n (1-based).
  double request_time_ms = 0; ///< T^n_Req = (n−1)·T_req.
  double generation_time_ms = 0;  ///< T_mn = n/f_t.
  double aoi_ms = 0;          ///< Eq. (23).
  double roi = 0;             ///< instantaneous RoI = T_req / AoI.
};

/// The AoI/RoI analytical model.
class AoiModel {
 public:
  AoiModel() = default;

  /// Eq. (22): mean buffer sojourn T̄ for the external-information class.
  [[nodiscard]] double buffer_sojourn_ms(const BufferConfig& b) const;

  /// Eq. (23) for one sensor and one cycle (n is 1-based).
  [[nodiscard]] double aoi_ms(const SensorConfig& sensor,
                              const BufferConfig& buffer,
                              double request_period_ms, int cycle) const;

  /// Timeline of the first `cycles` updates (Figs. 4e/4f).
  [[nodiscard]] std::vector<AoiPoint> timeline(const SensorConfig& sensor,
                                               const BufferConfig& buffer,
                                               double request_period_ms,
                                               int cycles) const;

  /// Eq. (24): average AoI over N update cycles of a frame.
  [[nodiscard]] double average_aoi_ms(const SensorConfig& sensor,
                                      const BufferConfig& buffer,
                                      const AoiConfig& aoi) const;

  /// Eq. (25): processed-information frequency f̄ = 1/A^mq, in Hz.
  [[nodiscard]] double processed_frequency_hz(const SensorConfig& sensor,
                                              const BufferConfig& buffer,
                                              const AoiConfig& aoi) const;

  /// Eq. (26): RoI = f̄ / f_req with f_req = 1/T_req. Information is fresh
  /// when RoI >= 1.
  [[nodiscard]] double roi(const SensorConfig& sensor,
                           const BufferConfig& buffer,
                           const AoiConfig& aoi) const;

  /// Whether a sensor keeps information fresh for the application.
  [[nodiscard]] bool fresh(const SensorConfig& sensor,
                           const BufferConfig& buffer,
                           const AoiConfig& aoi) const;

  /// Minimum generation frequency (Hz) a sensor at the given distance needs
  /// for RoI >= 1 under the configured request period — the paper's design
  /// insight ("sensors should follow the RoI"). Found by bisection.
  [[nodiscard]] double required_generation_hz(double distance_m,
                                              const BufferConfig& buffer,
                                              const AoiConfig& aoi) const;
};

}  // namespace xr::core
