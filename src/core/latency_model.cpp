#include "core/latency_model.h"

#include <algorithm>
#include <stdexcept>

#include "queueing/mm1.h"
#include "wireless/propagation.h"

namespace xr::core {

double LatencyBreakdown::segment(Segment s) const noexcept {
  switch (s) {
    case Segment::kFrameGeneration: return frame_generation;
    case Segment::kVolumetricData: return volumetric;
    case Segment::kExternalSensors: return external_sensors;
    case Segment::kRendering: return rendering;
    case Segment::kFrameConversion: return frame_conversion;
    case Segment::kEncoding: return encoding;
    case Segment::kLocalInference: return local_inference;
    case Segment::kRemoteInference: return remote_inference;
    case Segment::kTransmission: return transmission;
    case Segment::kHandoff: return handoff;
    case Segment::kCooperation: return cooperation;
  }
  return 0;
}

LatencyModel::LatencyModel() : submodels_{} {}

LatencyModel::LatencyModel(Submodels submodels)
    : submodels_(std::move(submodels)) {}

double LatencyModel::client_resource(const ClientConfig& c) const {
  return submodels_.allocation.evaluate(c.cpu_ghz, c.gpu_ghz, c.omega_c);
}

double LatencyModel::edge_resource(const EdgeConfig& e,
                                   const ClientConfig& c) const {
  if (e.resource > 0) return e.resource;
  return devices::kEdgeResourceRatio * client_resource(c);
}

double LatencyModel::frame_generation_ms(const ScenarioConfig& s) const {
  const double c = client_resource(s.client);
  return 1000.0 / s.frame.fps + s.frame.frame_size / c +
         raw_frame_mb(s.frame) / s.client.memory_bandwidth_gbps;
}

double LatencyModel::volumetric_ms(const ScenarioConfig& s) const {
  const double c = client_resource(s.client);
  return s.frame.scene_size / c +
         volumetric_mb(s.frame) / s.client.memory_bandwidth_gbps;
}

double LatencyModel::external_sensors_ms(const ScenarioConfig& s) const {
  if (s.sensors.empty() || s.updates_per_frame == 0) return 0.0;
  // Eq. (5): the slowest sensor bounds the segment; each of its N updates
  // costs one generation interval plus the propagation delay (Eq. 6).
  double worst = 0.0;
  for (const auto& sensor : s.sensors) {
    const double per_update =
        1000.0 / sensor.generation_hz +
        wireless::propagation_delay_ms(sensor.distance_m);
    worst = std::max(worst, per_update * double(s.updates_per_frame));
  }
  return worst;
}

double LatencyModel::buffering_ms(const BufferConfig& b) const {
  // Eq. (7): three data classes, each a stable M/M/1 with sojourn 1/(µ−λ).
  const queueing::MM1 frame_q(b.frame_arrival_per_ms, b.service_rate_per_ms);
  const queueing::MM1 vol_q(b.volumetric_arrival_per_ms,
                            b.service_rate_per_ms);
  const queueing::MM1 ext_q(b.external_arrival_per_ms, b.service_rate_per_ms);
  return frame_q.mean_time_in_system() + vol_q.mean_time_in_system() +
         ext_q.mean_time_in_system();
}

double LatencyModel::rendering_ms(const ScenarioConfig& s) const {
  const double c = client_resource(s.client);
  const double base =
      s.frame.frame_size / c +
      raw_frame_mb(s.frame) / s.client.memory_bandwidth_gbps +
      buffering_ms(s.buffer);
  // Result delivery to the renderer (Eq. 8's L_tr(loc)/L_tr(rem) terms):
  // local results cross device memory; remote results arrive by wireless.
  if (s.inference.placement == InferencePlacement::kLocal)
    return base +
           s.frame.inference_result_mb / s.client.memory_bandwidth_gbps;
  const double d = s.network.edge_distance_m;
  return base +
         wireless::transmission_time_ms(s.frame.inference_result_mb,
                                        s.network.throughput_mbps) +
         wireless::propagation_delay_ms(d);
}

double LatencyModel::frame_conversion_ms(const ScenarioConfig& s) const {
  const double c = client_resource(s.client);
  return s.frame.frame_size / c +
         raw_frame_mb(s.frame) / s.client.memory_bandwidth_gbps;
}

double LatencyModel::encoding_ms(const ScenarioConfig& s) const {
  const double c = client_resource(s.client);
  return submodels_.codec.encode_latency_ms(
      s.frame.frame_size, s.codec, c, raw_frame_mb(s.frame),
      s.client.memory_bandwidth_gbps);
}

double LatencyModel::local_inference_ms(const ScenarioConfig& s) const {
  const double c = client_resource(s.client);
  const auto& cnn = devices::cnn_by_name(s.inference.local_cnn_name);
  const double complexity = submodels_.cnn.evaluate(cnn);
  // Eq. (11), implemented exactly as printed (C_CNN in the denominator —
  // see DESIGN.md "Faithfulness notes").
  return s.inference.omega_client *
         (s.frame.converted_size / (c * complexity) +
          converted_mb(s.frame) / s.client.memory_bandwidth_gbps);
}

double LatencyModel::decode_ms(const ScenarioConfig& s,
                               const EdgeConfig& e) const {
  const double c = client_resource(s.client);
  return submodels_.codec.decode_latency_ms(encoding_ms(s), c,
                                            edge_resource(e, s.client));
}

double LatencyModel::encoded_payload_mb(const ScenarioConfig& s) const {
  return submodels_.codec.encoded_size_mb(s.frame.frame_size, s.codec);
}

double LatencyModel::remote_inference_one_edge_ms(const ScenarioConfig& s,
                                                  const EdgeConfig& e) const {
  const double c_edge = edge_resource(e, s.client);
  const auto& cnn = devices::cnn_by_name(e.cnn_name);
  const double complexity = submodels_.cnn.evaluate(cnn);
  const double s_f3 = s.inference.encoded_size > 0 ? s.inference.encoded_size
                                                   : s.frame.frame_size;
  // Eq. (13): ω_edge [ s_f3/(c_ε · C_CNN(rem)) + δ_f3/m_ε + L_dec ].
  return e.omega_edge * (s_f3 / (c_edge * complexity) +
                         encoded_payload_mb(s) / e.memory_bandwidth_gbps +
                         decode_ms(s, e));
}

double LatencyModel::remote_inference_ms(const ScenarioConfig& s) const {
  if (s.inference.edges.empty()) return 0.0;
  // Eq. (15): parallel edges; the slowest share bounds the segment.
  double worst = 0.0;
  for (const auto& e : s.inference.edges)
    worst = std::max(worst, remote_inference_one_edge_ms(s, e));
  return worst;
}

double LatencyModel::transmission_ms(const ScenarioConfig& s) const {
  // Eq. (16): uplink of the encoded frame plus propagation.
  return wireless::transmission_time_ms(encoded_payload_mb(s),
                                        s.network.throughput_mbps) +
         wireless::propagation_delay_ms(s.network.edge_distance_m);
}

double LatencyModel::handoff_ms(const ScenarioConfig& s) const {
  if (!s.mobility.enabled) return 0.0;
  const wireless::HandoffModel model(
      s.mobility.handoff, s.mobility.zone_radius_m,
      s.mobility.step_length_per_frame_m, s.mobility.vertical_fraction);
  return model.expected_latency_ms();
}

double LatencyModel::cooperation_ms(const ScenarioConfig& s) const {
  if (!s.cooperation.active) return 0.0;
  return wireless::transmission_time_ms(s.network.coop_payload_mb,
                                        s.network.throughput_mbps) +
         wireless::propagation_delay_ms(s.network.coop_distance_m);
}

LatencyBreakdown LatencyModel::evaluate(const ScenarioConfig& s) const {
  validate(s);
  LatencyBreakdown out;
  const bool local = s.inference.placement == InferencePlacement::kLocal;

  out.frame_generation = frame_generation_ms(s);
  out.volumetric = volumetric_ms(s);
  out.external_sensors = external_sensors_ms(s);
  out.buffer_wait = buffering_ms(s.buffer);
  out.rendering = rendering_ms(s);
  out.cooperation = cooperation_ms(s);
  out.cooperation_in_total =
      s.cooperation.active && s.cooperation.include_in_total;

  if (local) {
    out.frame_conversion = frame_conversion_ms(s);
    out.local_inference = local_inference_ms(s);
  } else {
    out.encoding = encoding_ms(s);
    out.remote_inference = remote_inference_ms(s);
    out.transmission = transmission_ms(s);
    out.handoff = handoff_ms(s);
  }

  // Eq. (1).
  out.total = out.frame_generation + out.volumetric + out.external_sensors +
              out.rendering + out.frame_conversion + out.encoding +
              out.local_inference + out.remote_inference + out.transmission +
              out.handoff +
              (out.cooperation_in_total ? out.cooperation : 0.0);
  return out;
}

}  // namespace xr::core
