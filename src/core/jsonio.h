// Minimal JSON value type shared by every serializable document in the repo.
//
// Sweep requests, grid/scenario specs, JSONL result records, and
// partial-reduction summaries all cross process boundaries as JSON, and all
// of them must round-trip IEEE-754 doubles *exactly* — the merge law
// (sharded run ≡ monolithic run, bitwise) depends on it — so numbers are
// formatted with std::to_chars (shortest round-trip form) and parsed with
// std::from_chars, both locale-independent.
//
// This is deliberately a small, dependency-free subset of JSON: UTF-8
// strings with the standard escapes, doubles, bools, null, arrays, and
// objects that preserve insertion order (so dump() is deterministic).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xr::core {

/// Format a finite double so that parse_double(format_double(v)) == v
/// bitwise (shortest round-trip form, std::to_chars).
[[nodiscard]] std::string format_double(double v);
/// Exact inverse of format_double; also accepts any JSON number. Throws
/// std::invalid_argument on malformed input.
[[nodiscard]] double parse_double(std::string_view text);

/// 64-bit value as fixed-width lowercase hex (values like the grid
/// fingerprint do not survive a double-typed JSON number).
[[nodiscard]] std::string format_hex64(std::uint64_t v);
/// Strict inverse of format_hex64; throws std::invalid_argument on
/// anything but a full hex string (a corrupt fingerprint must fail loud,
/// not parse as 0 and defeat the mismatch guard).
[[nodiscard]] std::uint64_t parse_hex64(std::string_view text);

/// Slurp a whole file; throws std::runtime_error when it cannot be opened.
[[nodiscard]] std::string read_text_file(const std::string& path);

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  /// Insertion-ordered object so serialization is deterministic.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : type_(Type::kNumber), number_(double(v)) {}
  Json(std::size_t v) : type_(Type::kNumber), number_(double(v)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }

  // ---- typed access (throws std::invalid_argument on type mismatch) ----
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Number as a non-negative integral index; throws if negative or not
  /// integral.
  [[nodiscard]] std::size_t as_size() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  // ---- object helpers --------------------------------------------------
  /// Member lookup; throws std::invalid_argument when missing.
  [[nodiscard]] const Json& at(std::string_view key) const;
  /// Member lookup; nullptr when missing (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  /// Append-or-replace a member (value becomes an object if null).
  Json& set(std::string key, Json value);

  // ---- array helpers ---------------------------------------------------
  /// Append an element (value becomes an array if null).
  Json& push_back(Json value);

  /// Compact single-line serialization.
  [[nodiscard]] std::string dump() const;

  /// Parse one JSON document (the whole input, surrounding whitespace
  /// allowed). Throws std::invalid_argument with position info on error.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace xr::core
