#include "core/optimizer.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace xr::core {

ScenarioConfig OffloadDecision::apply(ScenarioConfig base) const {
  base.client.omega_c = omega_c;
  base.inference.placement = placement;
  if (placement == InferencePlacement::kLocal) {
    base.inference.local_cnn_name = local_cnn;
    base.inference.omega_client = 1.0;
    base.inference.edges.clear();
  } else {
    base.inference.omega_client = 0.0;
    base.codec = codec;
    EdgeConfig edge;
    edge.cnn_name = edge_cnn;
    edge.omega_edge = 1.0 / double(edge_count);
    base.inference.edges.assign(std::size_t(edge_count), edge);
    for (std::size_t e = 0; e < base.inference.edges.size(); ++e)
      base.inference.edges[e].name = "edge-" + std::to_string(e);
  }
  return base;
}

std::string OffloadDecision::to_string() const {
  std::ostringstream oss;
  if (placement == InferencePlacement::kLocal) {
    oss << "local(" << local_cnn << ", wc=" << omega_c << ")";
  } else {
    oss << "remote(" << edge_cnn << " x" << edge_count
        << ", wc=" << omega_c << ", " << codec.bitrate_mbps << " Mbps)";
  }
  return oss.str();
}

double EvaluatedDecision::objective(double alpha, double latency_scale,
                                    double energy_scale) const {
  return alpha * latency_ms / latency_scale +
         (1.0 - alpha) * energy_mj / energy_scale;
}

std::vector<double> balance_edge_split(
    const std::vector<double>& edge_resources) {
  if (edge_resources.empty())
    throw std::invalid_argument("balance_edge_split: no edges");
  double total = 0;
  for (double r : edge_resources) {
    if (r <= 0)
      throw std::invalid_argument("balance_edge_split: resources > 0");
    total += r;
  }
  std::vector<double> shares;
  shares.reserve(edge_resources.size());
  for (double r : edge_resources) shares.push_back(r / total);
  return shares;
}

OffloadPlan plan_offload(const ScenarioConfig& base,
                         const OffloadSearchSpace& space, double alpha,
                         const XrPerformanceModel& model) {
  if (alpha < 0 || alpha > 1)
    throw std::invalid_argument("plan_offload: alpha in [0, 1]");
  if (!space.include_local && !space.include_remote)
    throw std::invalid_argument("plan_offload: empty placement set");
  if (space.omega_c_grid.empty())
    throw std::invalid_argument("plan_offload: empty omega_c grid");

  std::vector<EvaluatedDecision> evaluated;
  const auto consider = [&](const OffloadDecision& d) {
    const auto scenario = d.apply(base);
    const auto report = model.evaluate(scenario);
    evaluated.push_back(
        EvaluatedDecision{d, report.latency.total, report.energy.total});
  };

  for (double wc : space.omega_c_grid) {
    if (space.include_local) {
      for (const auto& cnn : space.local_cnns) {
        OffloadDecision d;
        d.placement = InferencePlacement::kLocal;
        d.omega_c = wc;
        d.local_cnn = cnn;
        consider(d);
      }
    }
    if (space.include_remote) {
      for (const auto& cnn : space.edge_cnns)
        for (int count : space.edge_counts)
          for (double bitrate : space.codec_bitrates_mbps) {
            OffloadDecision d;
            d.placement = InferencePlacement::kRemote;
            d.omega_c = wc;
            d.edge_cnn = cnn;
            d.edge_count = count;
            d.codec = base.codec;
            d.codec.bitrate_mbps = bitrate;
            consider(d);
          }
    }
  }
  if (evaluated.empty())
    throw std::invalid_argument("plan_offload: search space produced no "
                                "candidates");

  OffloadPlan plan;
  plan.candidates_evaluated = evaluated.size();
  plan.best_latency = *std::min_element(
      evaluated.begin(), evaluated.end(),
      [](const auto& a, const auto& b) { return a.latency_ms < b.latency_ms; });
  plan.best_energy = *std::min_element(
      evaluated.begin(), evaluated.end(),
      [](const auto& a, const auto& b) { return a.energy_mj < b.energy_mj; });

  const double l_scale = std::max(plan.best_latency.latency_ms, 1e-9);
  const double e_scale = std::max(plan.best_energy.energy_mj, 1e-9);
  plan.best_weighted = *std::min_element(
      evaluated.begin(), evaluated.end(),
      [&](const auto& a, const auto& b) {
        return a.objective(alpha, l_scale, e_scale) <
               b.objective(alpha, l_scale, e_scale);
      });

  // Pareto frontier: sort by latency, keep strictly improving energy.
  std::sort(evaluated.begin(), evaluated.end(),
            [](const auto& a, const auto& b) {
              if (a.latency_ms != b.latency_ms)
                return a.latency_ms < b.latency_ms;
              return a.energy_mj < b.energy_mj;
            });
  double best_energy_so_far = std::numeric_limits<double>::infinity();
  for (const auto& e : evaluated) {
    if (e.energy_mj < best_energy_so_far) {
      plan.pareto.push_back(e);
      best_energy_so_far = e.energy_mj;
    }
  }
  return plan;
}

}  // namespace xr::core
