#include "core/optimizer.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "runtime/batch_evaluator.h"
#include "runtime/sweep.h"

namespace xr::core {

ScenarioConfig OffloadDecision::apply(ScenarioConfig base) const {
  base.client.omega_c = omega_c;
  base.inference.placement = placement;
  if (placement == InferencePlacement::kLocal) {
    base.inference.local_cnn_name = local_cnn;
    base.inference.omega_client = 1.0;
    base.inference.edges.clear();
  } else {
    base.inference.omega_client = 0.0;
    base.codec = codec;
    EdgeConfig edge;
    edge.cnn_name = edge_cnn;
    edge.omega_edge = 1.0 / double(edge_count);
    base.inference.edges.assign(std::size_t(edge_count), edge);
    for (std::size_t e = 0; e < base.inference.edges.size(); ++e)
      base.inference.edges[e].name = "edge-" + std::to_string(e);
  }
  return base;
}

std::string OffloadDecision::to_string() const {
  std::ostringstream oss;
  if (placement == InferencePlacement::kLocal) {
    oss << "local(" << local_cnn << ", wc=" << omega_c << ")";
  } else {
    oss << "remote(" << edge_cnn << " x" << edge_count
        << ", wc=" << omega_c << ", " << codec.bitrate_mbps << " Mbps)";
  }
  return oss.str();
}

double EvaluatedDecision::objective(double alpha, double latency_scale,
                                    double energy_scale) const {
  return alpha * latency_ms() / latency_scale +
         (1.0 - alpha) * energy_mj() / energy_scale;
}

std::vector<double> balance_edge_split(
    const std::vector<double>& edge_resources) {
  if (edge_resources.empty())
    throw std::invalid_argument("balance_edge_split: no edges");
  double total = 0;
  for (double r : edge_resources) {
    if (r <= 0)
      throw std::invalid_argument("balance_edge_split: resources > 0");
    total += r;
  }
  std::vector<double> shares;
  shares.reserve(edge_resources.size());
  for (double r : edge_resources) shares.push_back(r / total);
  return shares;
}

namespace {

/// One placement family of the search space evaluated as a batch: the grid,
/// its batch result, and the decision each grid coordinate encodes.
struct EvaluatedGrid {
  runtime::ScenarioGrid grid;
  runtime::BatchResult batch;
  std::function<OffloadDecision(const std::vector<std::size_t>&)>
      decision_from_coords;

  [[nodiscard]] EvaluatedDecision candidate(std::size_t i) const {
    return EvaluatedDecision{decision_from_coords(grid.coords(i)),
                             batch.reports[i]};
  }
};

/// The local half of the search space: ω_c × on-device CNN.
std::optional<EvaluatedGrid> evaluate_local(
    const ScenarioConfig& base, const OffloadSearchSpace& space,
    const runtime::BatchEvaluator& evaluator) {
  if (!space.include_local || space.local_cnns.empty()) return std::nullopt;
  OffloadDecision seed;
  seed.placement = InferencePlacement::kLocal;
  auto grid = runtime::SweepSpec(seed.apply(base))
                  .omega_c(space.omega_c_grid)
                  .local_cnns(space.local_cnns)
                  .build();
  auto batch = evaluator.run(grid);
  const auto decision = [&space](const std::vector<std::size_t>& c) {
    OffloadDecision d;
    d.placement = InferencePlacement::kLocal;
    d.omega_c = space.omega_c_grid[c[0]];
    d.local_cnn = space.local_cnns[c[1]];
    return d;
  };
  return EvaluatedGrid{std::move(grid), std::move(batch), decision};
}

/// The remote half: ω_c × edge CNN × edge count × codec bitrate.
std::optional<EvaluatedGrid> evaluate_remote(
    const ScenarioConfig& base, const OffloadSearchSpace& space,
    const runtime::BatchEvaluator& evaluator) {
  if (!space.include_remote || space.edge_cnns.empty() ||
      space.edge_counts.empty() || space.codec_bitrates_mbps.empty())
    return std::nullopt;
  OffloadDecision seed;
  seed.placement = InferencePlacement::kRemote;
  seed.codec = base.codec;
  auto grid = runtime::SweepSpec(seed.apply(base))
                  .omega_c(space.omega_c_grid)
                  .edge_cnns(space.edge_cnns)
                  .edge_counts(space.edge_counts)
                  .codec_bitrates_mbps(space.codec_bitrates_mbps)
                  .build();
  auto batch = evaluator.run(grid);
  const auto decision = [&space, &base](const std::vector<std::size_t>& c) {
    OffloadDecision d;
    d.placement = InferencePlacement::kRemote;
    d.omega_c = space.omega_c_grid[c[0]];
    d.edge_cnn = space.edge_cnns[c[1]];
    d.edge_count = space.edge_counts[c[2]];
    d.codec = base.codec;
    d.codec.bitrate_mbps = space.codec_bitrates_mbps[c[3]];
    return d;
  };
  return EvaluatedGrid{std::move(grid), std::move(batch), decision};
}

}  // namespace

OffloadPlan plan_offload(const ScenarioConfig& base,
                         const OffloadSearchSpace& space, double alpha,
                         const XrPerformanceModel& model) {
  if (alpha < 0 || alpha > 1)
    throw std::invalid_argument("plan_offload: alpha in [0, 1]");
  if (!space.include_local && !space.include_remote)
    throw std::invalid_argument("plan_offload: empty placement set");
  if (space.omega_c_grid.empty())
    throw std::invalid_argument("plan_offload: empty omega_c grid");

  const runtime::BatchEvaluator evaluator(model);
  std::vector<EvaluatedGrid> halves;
  if (auto local = evaluate_local(base, space, evaluator))
    halves.push_back(std::move(*local));
  if (auto remote = evaluate_remote(base, space, evaluator))
    halves.push_back(std::move(*remote));
  if (halves.empty())
    throw std::invalid_argument("plan_offload: search space produced no "
                                "candidates");

  // The plan is a thin reduction over the batch results.
  OffloadPlan plan;
  std::vector<EvaluatedDecision> frontier_pool;
  bool first = true;
  for (const auto& half : halves) {
    plan.candidates_evaluated += half.grid.size();
    const auto best_l = half.candidate(half.batch.best_latency_index);
    const auto best_e = half.candidate(half.batch.best_energy_index);
    if (first || best_l.latency_ms() < plan.best_latency.latency_ms())
      plan.best_latency = best_l;
    if (first || best_e.energy_mj() < plan.best_energy.energy_mj())
      plan.best_energy = best_e;
    // Merging per-half frontiers is lossless: the union's frontier is a
    // subset of the union of the halves' frontiers.
    for (std::size_t i : half.batch.pareto_indices)
      frontier_pool.push_back(half.candidate(i));
    first = false;
  }
  std::sort(frontier_pool.begin(), frontier_pool.end(),
            [](const auto& a, const auto& b) {
              if (a.latency_ms() != b.latency_ms())
                return a.latency_ms() < b.latency_ms();
              return a.energy_mj() < b.energy_mj();
            });
  double best_energy_so_far = std::numeric_limits<double>::infinity();
  for (const auto& e : frontier_pool) {
    if (e.energy_mj() < best_energy_so_far) {
      plan.pareto.push_back(e);
      best_energy_so_far = e.energy_mj();
    }
  }

  // The weighted optimum lies on the Pareto frontier: the objective is
  // non-decreasing in both metrics, so a dominated candidate never wins.
  const double l_scale = std::max(plan.best_latency.latency_ms(), 1e-9);
  const double e_scale = std::max(plan.best_energy.energy_mj(), 1e-9);
  plan.best_weighted = *std::min_element(
      plan.pareto.begin(), plan.pareto.end(), [&](const auto& a, const auto& b) {
        return a.objective(alpha, l_scale, e_scale) <
               b.objective(alpha, l_scale, e_scale);
      });
  return plan;
}

}  // namespace xr::core
