#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/serialize.h"
#include "runtime/offload_search.h"
#include "runtime/sweep.h"

namespace xr::core {

ScenarioConfig OffloadDecision::apply(ScenarioConfig base) const {
  base.client.omega_c = omega_c;
  base.inference.placement = placement;
  if (placement == InferencePlacement::kLocal) {
    base.inference.local_cnn_name = local_cnn;
    base.inference.omega_client = 1.0;
    base.inference.edges.clear();
  } else {
    base.inference.omega_client = 0.0;
    base.codec = codec;
    EdgeConfig edge;
    edge.cnn_name = edge_cnn;
    edge.omega_edge = 1.0 / double(edge_count);
    base.inference.edges.assign(std::size_t(edge_count), edge);
    for (std::size_t e = 0; e < base.inference.edges.size(); ++e)
      base.inference.edges[e].name = "edge-" + std::to_string(e);
  }
  return base;
}

std::string OffloadDecision::to_string() const {
  std::ostringstream oss;
  if (placement == InferencePlacement::kLocal) {
    oss << "local(" << local_cnn << ", wc=" << omega_c << ")";
  } else {
    oss << "remote(" << edge_cnn << " x" << edge_count
        << ", wc=" << omega_c << ", " << codec.bitrate_mbps << " Mbps)";
  }
  return oss.str();
}

Json OffloadDecision::to_json() const {
  Json j = Json::object();
  j.set("placement", placement_name(placement));
  j.set("omega_c", omega_c);
  j.set("local_cnn", local_cnn);
  j.set("edge_cnn", edge_cnn);
  j.set("edge_count", std::size_t(edge_count));
  j.set("codec", core::to_json(codec));
  return j;
}

OffloadDecision OffloadDecision::from_json(const Json& j) {
  OffloadDecision d;
  d.placement = placement_from_name(j.at("placement").as_string());
  d.omega_c = j.at("omega_c").as_double();
  d.local_cnn = j.at("local_cnn").as_string();
  d.edge_cnn = j.at("edge_cnn").as_string();
  d.edge_count = int(j.at("edge_count").as_size());
  d.codec = h264_from_json(j.at("codec"));
  // A decision no search could have produced must not deserialize: apply()
  // would hand the model an invalid scenario (or a nonsense split) long
  // after the document's origin is gone.
  if (!(d.omega_c >= 0.0 && d.omega_c <= 1.0))
    throw std::invalid_argument(
        "OffloadDecision: omega_c must be in [0, 1], got " +
        format_double(d.omega_c));
  if (d.edge_count < 1)
    throw std::invalid_argument("OffloadDecision: edge_count must be >= 1");
  if (!(d.codec.bitrate_mbps > 0.0) || !std::isfinite(d.codec.bitrate_mbps))
    throw std::invalid_argument(
        "OffloadDecision: codec.bitrate_mbps must be finite and > 0, got " +
        format_double(d.codec.bitrate_mbps));
  return d;
}

double EvaluatedDecision::objective(double alpha, double latency_scale,
                                    double energy_scale) const {
  return alpha * latency_ms() / latency_scale +
         (1.0 - alpha) * energy_mj() / energy_scale;
}

Json EvaluatedDecision::to_json() const {
  Json j = Json::object();
  j.set("decision", decision.to_json());
  j.set("report", core::to_json(report));
  return j;
}

EvaluatedDecision EvaluatedDecision::from_json(const Json& j) {
  EvaluatedDecision e;
  e.decision = OffloadDecision::from_json(j.at("decision"));
  e.report = report_from_json(j.at("report"));
  if (!std::isfinite(e.report.latency.total))
    throw std::invalid_argument(
        "EvaluatedDecision: report.latency.total must be finite");
  if (!std::isfinite(e.report.energy.total))
    throw std::invalid_argument(
        "EvaluatedDecision: report.energy.total must be finite");
  return e;
}

Json OffloadSearchSpace::to_json() const {
  Json j = Json::object();
  Json omegas = Json::array();
  for (double v : omega_c_grid) omegas.push_back(Json(v));
  j.set("omega_c_grid", std::move(omegas));
  Json locals = Json::array();
  for (const auto& n : local_cnns) locals.push_back(Json(n));
  j.set("local_cnns", std::move(locals));
  Json edges = Json::array();
  for (const auto& n : edge_cnns) edges.push_back(Json(n));
  j.set("edge_cnns", std::move(edges));
  Json counts = Json::array();
  for (int c : edge_counts) counts.push_back(Json(std::size_t(c)));
  j.set("edge_counts", std::move(counts));
  Json rates = Json::array();
  for (double v : codec_bitrates_mbps) rates.push_back(Json(v));
  j.set("codec_bitrates_mbps", std::move(rates));
  j.set("include_local", include_local);
  j.set("include_remote", include_remote);
  return j;
}

OffloadSearchSpace OffloadSearchSpace::from_json(const Json& j) {
  OffloadSearchSpace s;
  s.omega_c_grid.clear();
  for (const Json& v : j.at("omega_c_grid").as_array())
    s.omega_c_grid.push_back(v.as_double());
  s.local_cnns.clear();
  for (const Json& v : j.at("local_cnns").as_array())
    s.local_cnns.push_back(v.as_string());
  s.edge_cnns.clear();
  for (const Json& v : j.at("edge_cnns").as_array())
    s.edge_cnns.push_back(v.as_string());
  s.edge_counts.clear();
  for (const Json& v : j.at("edge_counts").as_array())
    s.edge_counts.push_back(int(v.as_size()));
  s.codec_bitrates_mbps.clear();
  for (const Json& v : j.at("codec_bitrates_mbps").as_array())
    s.codec_bitrates_mbps.push_back(v.as_double());
  s.include_local = j.at("include_local").as_bool();
  s.include_remote = j.at("include_remote").as_bool();
  return s;
}

namespace {

constexpr const char* kPlanSchema = "xr.offload_plan.v1";

}  // namespace

Json OffloadPlan::to_json() const {
  Json j = Json::object();
  j.set("schema", kPlanSchema);
  j.set("candidates_evaluated", candidates_evaluated);
  j.set("best_latency", best_latency.to_json());
  j.set("best_energy", best_energy.to_json());
  j.set("best_weighted", best_weighted.to_json());
  Json frontier = Json::array();
  for (const auto& e : pareto) frontier.push_back(e.to_json());
  j.set("pareto", std::move(frontier));
  return j;
}

std::string OffloadPlan::to_string(double alpha,
                                   const std::string& indent) const {
  std::ostringstream oss;
  char line[256];
  std::snprintf(line, sizeof line,
                "offload plan over %zu candidates (alpha = %g)\n",
                candidates_evaluated, alpha);
  oss << indent << line;
  std::snprintf(line, sizeof line, "  best latency : %s -> %.2f ms\n",
                best_latency.decision.to_string().c_str(),
                best_latency.latency_ms());
  oss << indent << line;
  std::snprintf(line, sizeof line, "  best energy  : %s -> %.2f mJ\n",
                best_energy.decision.to_string().c_str(),
                best_energy.energy_mj());
  oss << indent << line;
  std::snprintf(line, sizeof line, "  best weighted: %s\n",
                best_weighted.decision.to_string().c_str());
  oss << indent << line;
  std::snprintf(line, sizeof line, "  Pareto frontier: %zu decisions\n",
                pareto.size());
  oss << indent << line;
  return oss.str();
}

OffloadPlan OffloadPlan::from_json(const Json& j) {
  if (j.at("schema").as_string() != kPlanSchema)
    throw std::invalid_argument("OffloadPlan: unknown schema '" +
                                j.at("schema").as_string() + "'");
  OffloadPlan plan;
  plan.candidates_evaluated = j.at("candidates_evaluated").as_size();
  plan.best_latency = EvaluatedDecision::from_json(j.at("best_latency"));
  plan.best_energy = EvaluatedDecision::from_json(j.at("best_energy"));
  plan.best_weighted = EvaluatedDecision::from_json(j.at("best_weighted"));
  for (const Json& e : j.at("pareto").as_array())
    plan.pareto.push_back(EvaluatedDecision::from_json(e));
  // Structural invariants every real search run satisfies (see
  // PartialReduction's frontier): reject documents that could not have
  // come from one, with the offending field named.
  if (plan.candidates_evaluated < 1)
    throw std::invalid_argument(
        "OffloadPlan: candidates_evaluated must be >= 1");
  if (plan.pareto.empty())
    throw std::invalid_argument("OffloadPlan: pareto must not be empty");
  if (plan.candidates_evaluated < plan.pareto.size())
    throw std::invalid_argument(
        "OffloadPlan: candidates_evaluated (" +
        std::to_string(plan.candidates_evaluated) +
        ") smaller than the pareto frontier (" +
        std::to_string(plan.pareto.size()) + " entries)");
  for (std::size_t i = 1; i < plan.pareto.size(); ++i) {
    if (!(plan.pareto[i - 1].latency_ms() < plan.pareto[i].latency_ms()))
      throw std::invalid_argument(
          "OffloadPlan: pareto[" + std::to_string(i) +
          "]: latency must be strictly ascending along the frontier");
    if (!(plan.pareto[i - 1].energy_mj() > plan.pareto[i].energy_mj()))
      throw std::invalid_argument(
          "OffloadPlan: pareto[" + std::to_string(i) +
          "]: energy must be strictly descending along the frontier");
  }
  return plan;
}

std::vector<double> balance_edge_split(
    const std::vector<double>& edge_resources) {
  if (edge_resources.empty())
    throw std::invalid_argument("balance_edge_split: no edges");
  double total = 0;
  for (double r : edge_resources) {
    if (r <= 0)
      throw std::invalid_argument("balance_edge_split: resources > 0");
    total += r;
  }
  std::vector<double> shares;
  shares.reserve(edge_resources.size());
  for (double r : edge_resources) shares.push_back(r / total);
  return shares;
}

runtime::SweepRequest offload_search_request(const ScenarioConfig& base,
                                             const OffloadSearchSpace& space,
                                             double alpha) {
  if (alpha < 0 || alpha > 1)
    throw std::invalid_argument("plan_offload: alpha in [0, 1]");
  if (!space.include_local && !space.include_remote)
    throw std::invalid_argument("plan_offload: empty placement set");
  if (space.omega_c_grid.empty())
    throw std::invalid_argument("plan_offload: empty omega_c grid");
  const bool local = space.include_local && !space.local_cnns.empty();
  const bool remote = space.include_remote && !space.edge_cnns.empty() &&
                      !space.edge_counts.empty() &&
                      !space.codec_bitrates_mbps.empty();
  if (!local && !remote)
    throw std::invalid_argument(
        "plan_offload: search space produced no candidates");

  // The edge axes mutate the *existing* edge set (CNN onto every edge, then
  // replication of the front edge), so the embedded base always carries at
  // least one edge for them to act on.
  ScenarioConfig grid_base = base;
  if (grid_base.inference.edges.empty())
    grid_base.inference.edges = {EdgeConfig{}};

  // One grid for the whole search. Placement is declared LAST: its applier
  // runs after the edge axes, so each point resolves its own path — local
  // points drop the prepared edge set, remote points adopt it.
  runtime::SweepSpec spec(grid_base);
  spec.omega_c(space.omega_c_grid);
  if (local) spec.local_cnns(space.local_cnns);
  if (remote) {
    spec.edge_cnns(space.edge_cnns);
    spec.edge_counts(space.edge_counts);
    spec.codec_bitrates_mbps(space.codec_bitrates_mbps);
  }
  std::vector<InferencePlacement> placements;
  if (local) placements.push_back(InferencePlacement::kLocal);
  if (remote) placements.push_back(InferencePlacement::kRemote);
  spec.placements(placements);

  runtime::SweepRequest request;
  request.grid = spec.grid_spec();
  request.reduction.kind = runtime::ReductionKind::kOffloadPlan;
  request.reduction.alpha = alpha;
  return request;
}

OffloadDecision decision_at(const runtime::GridSpec& grid,
                            std::size_t index) {
  const ScenarioConfig base = grid.base_config();

  // Mixed-radix decode, last axis fastest — ScenarioGrid::coords without
  // materializing the grid.
  std::vector<std::size_t> coords(grid.axes.size(), 0);
  std::size_t rest = index;
  for (std::size_t k = grid.axes.size(); k-- > 0;) {
    const auto& axis = grid.axes[k];
    const std::size_t radix =
        axis.numbers.empty() ? axis.strings.size() : axis.numbers.size();
    if (radix == 0)
      throw std::invalid_argument("decision_at: axis '" + axis.knob +
                                  "' has no values");
    coords[k] = rest % radix;
    rest /= radix;
  }
  if (rest != 0)
    throw std::out_of_range("decision_at: index out of range");

  // Raw knob values, defaulted from the base scenario; axes outside the
  // decision vocabulary (frame_size, throughput, ...) are scenario context
  // and contribute nothing to the decision.
  InferencePlacement placement = base.inference.placement;
  double omega_c = base.client.omega_c;
  std::string local_cnn = base.inference.local_cnn_name;
  std::string edge_cnn = base.inference.edges.empty()
                             ? OffloadDecision{}.edge_cnn
                             : base.inference.edges.front().cnn_name;
  int edge_count =
      base.inference.edges.empty() ? 1 : int(base.inference.edges.size());
  double bitrate = base.codec.bitrate_mbps;
  for (std::size_t k = 0; k < grid.axes.size(); ++k) {
    const auto& axis = grid.axes[k];
    const std::size_t c = coords[k];
    if (axis.knob == "omega_c") {
      omega_c = axis.numbers[c];
    } else if (axis.knob == "local_cnn") {
      local_cnn = axis.strings[c];
    } else if (axis.knob == "edge_cnn") {
      edge_cnn = axis.strings[c];
    } else if (axis.knob == "edge_count") {
      edge_count = int(axis.numbers[c]);
    } else if (axis.knob == "codec_mbps") {
      bitrate = axis.numbers[c];
    } else if (axis.knob == "placement") {
      placement = placement_from_name(axis.strings[c]);
    }
  }

  // Canonical decision: only the fields its placement consumes.
  OffloadDecision d;
  d.placement = placement;
  d.omega_c = omega_c;
  if (placement == InferencePlacement::kLocal) {
    d.local_cnn = local_cnn;
  } else {
    d.edge_cnn = edge_cnn;
    d.edge_count = edge_count;
    d.codec = base.codec;
    d.codec.bitrate_mbps = bitrate;
  }
  return d;
}

OffloadPlan offload_plan_from_summary(
    const runtime::SweepRequest& request,
    const runtime::shard::MergedSummary& summary,
    const XrPerformanceModel& model) {
  if (request.reduction.kind != runtime::ReductionKind::kOffloadPlan)
    throw std::invalid_argument(
        "offload_plan_from_summary: request reduction is not offload_plan");
  if (request.evaluator.is_ground_truth())
    throw std::invalid_argument(
        "offload_plan_from_summary: offload plans require the analytical "
        "evaluator");
  if (summary.grid_fingerprint != request.fingerprint())
    throw std::invalid_argument(
        "offload_plan_from_summary: summary does not belong to this request "
        "(sweep fingerprint mismatch)");
  const double alpha = request.reduction.alpha;
  if (alpha < 0 || alpha > 1)
    throw std::invalid_argument("plan_offload: alpha in [0, 1]");

  // The models are pure functions of the scenario, so re-deriving the few
  // reports the plan carries reproduces the workers' streamed values
  // bitwise — no record files needed, the partial summaries suffice.
  const runtime::ScenarioGrid grid = request.grid.build();
  const auto evaluated = [&](std::size_t i) {
    return EvaluatedDecision{decision_at(request.grid, i),
                             model.evaluate(grid.at(i))};
  };

  OffloadPlan plan;
  plan.candidates_evaluated = summary.evaluated;
  plan.best_latency = evaluated(summary.best_latency_index);
  plan.best_energy = evaluated(summary.best_energy_index);
  plan.pareto.reserve(summary.pareto.size());
  for (const auto& p : summary.pareto) plan.pareto.push_back(evaluated(p.index));

  // The weighted optimum lies on the Pareto frontier: the objective is
  // non-decreasing in both metrics, so a dominated candidate never wins.
  const double l_scale = std::max(plan.best_latency.latency_ms(), 1e-9);
  const double e_scale = std::max(plan.best_energy.energy_mj(), 1e-9);
  plan.best_weighted = *std::min_element(
      plan.pareto.begin(), plan.pareto.end(),
      [&](const auto& a, const auto& b) {
        return a.objective(alpha, l_scale, e_scale) <
               b.objective(alpha, l_scale, e_scale);
      });
  return plan;
}

OffloadPlan plan_offload(const runtime::SweepRequest& request,
                         const XrPerformanceModel& model) {
  // Fail before the sweep runs, not after: the summary reduction would
  // reject these requests anyway (see offload_plan_from_summary), and a
  // ground-truth sweep can be hours of simulation.
  if (request.reduction.kind != runtime::ReductionKind::kOffloadPlan)
    throw std::invalid_argument(
        "plan_offload: request reduction is not offload_plan");
  if (request.evaluator.is_ground_truth())
    throw std::invalid_argument(
        "plan_offload: offload plans require the analytical evaluator");
  return offload_plan_from_summary(request, runtime::run_request(request, model),
                                   model);
}

OffloadPlan plan_offload(const ScenarioConfig& base,
                         const OffloadSearchSpace& space, double alpha,
                         const XrPerformanceModel& model) {
  return plan_offload(offload_search_request(base, space, alpha), model);
}

}  // namespace xr::core
