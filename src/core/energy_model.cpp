#include "core/energy_model.h"

namespace xr::core {

double EnergyBreakdown::segment(Segment s) const noexcept {
  switch (s) {
    case Segment::kFrameGeneration: return frame_generation;
    case Segment::kVolumetricData: return volumetric;
    case Segment::kExternalSensors: return external_sensors;
    case Segment::kRendering: return rendering;
    case Segment::kFrameConversion: return frame_conversion;
    case Segment::kEncoding: return encoding;
    case Segment::kLocalInference: return local_inference;
    case Segment::kRemoteInference: return remote_inference;
    case Segment::kTransmission: return transmission;
    case Segment::kHandoff: return handoff;
    case Segment::kCooperation: return cooperation;
  }
  return 0;
}

EnergyModel::EnergyModel(devices::PowerModel power, RadioPowerConfig radio)
    : power_(std::move(power)), radio_(radio) {}

double EnergyModel::compute_power_mw(const ClientConfig& c) const {
  return power_.mean_power_mw(c.cpu_ghz, c.gpu_ghz, c.omega_c);
}

namespace {
/// mW · ms → mJ.
double energy_mj(double power_mw, double duration_ms) {
  return power_mw * duration_ms / 1000.0;
}
}  // namespace

EnergyBreakdown EnergyModel::evaluate(const ScenarioConfig& s,
                                      const LatencyBreakdown& lat) const {
  EnergyBreakdown out;
  const double p_compute = compute_power_mw(s.client);

  // Compute-bound segments run the allocated CPU/GPU mix (Eq. 21).
  out.frame_generation = energy_mj(p_compute, lat.frame_generation);
  out.volumetric = energy_mj(p_compute, lat.volumetric);
  out.rendering = energy_mj(p_compute, lat.rendering);
  out.frame_conversion = energy_mj(p_compute, lat.frame_conversion);
  out.encoding = energy_mj(p_compute, lat.encoding);
  out.local_inference = energy_mj(p_compute, lat.local_inference);

  // Communication segments run the radio.
  out.external_sensors = energy_mj(radio_.rx_mw, lat.external_sensors);
  out.transmission = energy_mj(radio_.tx_mw, lat.transmission);
  out.handoff = energy_mj(radio_.tx_mw, lat.handoff);
  out.cooperation = energy_mj(radio_.tx_mw, lat.cooperation);
  out.cooperation_in_total = lat.cooperation_in_total;

  // During remote inference the device merely awaits results.
  out.remote_inference = energy_mj(radio_.idle_wait_mw, lat.remote_inference);

  const double segment_sum =
      out.frame_generation + out.volumetric + out.external_sensors +
      out.rendering + out.frame_conversion + out.encoding +
      out.local_inference + out.remote_inference + out.transmission +
      out.handoff + (out.cooperation_in_total ? out.cooperation : 0.0);

  // E_base accrues over the whole frame time; E_θ is the heat fraction of
  // the electrical energy spent on the application segments.
  out.base = power_.base_energy_mj(lat.total);
  out.thermal = power_.thermal_energy_mj(segment_sum);
  out.total = segment_sum + out.base + out.thermal;  // Eq. (19).
  return out;
}

}  // namespace xr::core
