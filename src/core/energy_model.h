// The energy-consumption analysis model — §V, Eqs. (19)–(21).
//
// Energy mirrors the latency decomposition: each segment contributes
// ∫P dt ≈ P_segment · L_segment (Eq. 20), with the segment power drawn from
// the Eq. (21) regression for compute-bound segments and from radio power
// states for communication segments. Two closing terms complete the balance:
// E_base (OS background + leakage over the whole frame time) and E_θ (the
// fraction of electrical energy converted to heat).
#pragma once

#include "core/latency_model.h"
#include "core/pipeline.h"

namespace xr::core {

/// Per-segment energy decomposition, all in mJ.
struct EnergyBreakdown {
  double frame_generation = 0;
  double volumetric = 0;
  double external_sensors = 0;
  double rendering = 0;
  double frame_conversion = 0;
  double encoding = 0;
  double local_inference = 0;
  double remote_inference = 0;   ///< XR device's draw while awaiting results.
  double transmission = 0;
  double handoff = 0;
  double cooperation = 0;
  bool cooperation_in_total = false;
  double thermal = 0;            ///< E_θ.
  double base = 0;               ///< E_base.
  double total = 0;              ///< E_tot (Eq. 19).

  [[nodiscard]] double segment(Segment s) const noexcept;
};

/// Radio and idle power states of the XR device (mW). Defaults follow
/// published smartphone Wi-Fi measurements (active TX ≈ 700–900 mW, active
/// RX ≈ 250–350 mW, idle-connected ≈ 100–200 mW).
struct RadioPowerConfig {
  double tx_mw = 800.0;
  double rx_mw = 300.0;
  double idle_wait_mw = 150.0;
};

/// The analytical energy model.
class EnergyModel {
 public:
  explicit EnergyModel(devices::PowerModel power = devices::PowerModel{},
                       RadioPowerConfig radio = RadioPowerConfig{});

  /// Eq. (19)/(20): compose the energy breakdown from a scenario and its
  /// latency breakdown (computed by the caller — typically the framework
  /// facade evaluates latency once and reuses it here).
  [[nodiscard]] EnergyBreakdown evaluate(const ScenarioConfig& s,
                                         const LatencyBreakdown& lat) const;

  /// Mean application power of the device allocation (Eq. 21), in mW.
  [[nodiscard]] double compute_power_mw(const ClientConfig& c) const;

  [[nodiscard]] const devices::PowerModel& power_model() const noexcept {
    return power_;
  }
  [[nodiscard]] const RadioPowerConfig& radio() const noexcept {
    return radio_;
  }

 private:
  devices::PowerModel power_;
  RadioPowerConfig radio_;
};

}  // namespace xr::core
