#include "core/jsonio.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace xr::core {

std::string format_hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_hex64(std::string_view text) {
  std::uint64_t v = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto res = std::from_chars(first, last, v, 16);
  if (text.empty() || res.ec != std::errc{} || res.ptr != last)
    throw std::invalid_argument("parse_hex64: malformed hex '" +
                                std::string(text) + "'");
  return v;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string format_double(double v) {
  if (!std::isfinite(v))
    throw std::invalid_argument("format_double: non-finite value");
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  if (res.ec != std::errc{})
    throw std::invalid_argument("format_double: to_chars failed");
  return std::string(buf, res.ptr);
}

double parse_double(std::string_view text) {
  double v = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto res = std::from_chars(first, last, v);
  if (res.ec != std::errc{} || res.ptr != last)
    throw std::invalid_argument("parse_double: malformed number '" +
                                std::string(text) + "'");
  return v;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool)
    throw std::invalid_argument("Json: not a bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber)
    throw std::invalid_argument("Json: not a number");
  return number_;
}

std::size_t Json::as_size() const {
  const double v = as_double();
  if (v < 0 || v != std::floor(v) || v > 9.007199254740992e15)
    throw std::invalid_argument("Json: not a non-negative integer");
  return std::size_t(v);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString)
    throw std::invalid_argument("Json: not a string");
  return string_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray)
    throw std::invalid_argument("Json: not an array");
  return array_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject)
    throw std::invalid_argument("Json: not an object");
  return object_;
}

const Json& Json::at(std::string_view key) const {
  if (const Json* j = find(key)) return *j;
  throw std::invalid_argument("Json: missing member '" + std::string(key) +
                              "'");
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject)
    throw std::invalid_argument("Json: set() on non-object");
  for (auto& [k, v] : object_)
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray)
    throw std::invalid_argument("Json: push_back() on non-array");
  array_.push_back(std::move(value));
  return *this;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: out += format_double(number_); return;
    case Type::kString: dump_string(string_, out); return;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        array_[i].dump_to(out);
      }
      out += ']';
      return;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        dump_string(object_[i].first, out);
        out += ':';
        object_[i].second.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  out.reserve(64);
  dump_to(out);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument("Json::parse: " + std::string(what) +
                                " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json(string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return Json(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return Json(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return Json();
    }
    return number();
  }

  Json number() {
    double v = 0;
    const char* first = text_.data() + pos_;
    const char* last = text_.data() + text_.size();
    const auto res = std::from_chars(first, last, v);
    // from_chars accepts "inf"/"nan", which are not JSON and would make
    // dump() throw far from here; reject them at the parse site.
    if (res.ec != std::errc{} || !std::isfinite(v))
      fail("malformed number");
    pos_ += std::size_t(res.ptr - first);
    return Json(v);
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDFFF)
            fail("surrogate pairs unsupported");
          // Encode the BMP code point as UTF-8.
          if (code < 0x80) {
            out += char(code);
          } else if (code < 0x800) {
            out += char(0xC0 | (code >> 6));
            out += char(0x80 | (code & 0x3F));
          } else {
            out += char(0xE0 | (code >> 12));
            out += char(0x80 | ((code >> 6) & 0x3F));
            out += char(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.set(std::move(key), value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace xr::core
