#include "core/slo.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "trace/table.h"

namespace xr::core {

double achievable_fps(double latency_ms) {
  if (latency_ms <= 0)
    throw std::invalid_argument("achievable_fps: latency must be > 0");
  return 1000.0 / latency_ms;
}

double battery_life_hours(double battery_wh, double energy_per_frame_mj,
                          double fps) {
  if (battery_wh <= 0 || energy_per_frame_mj <= 0 || fps <= 0)
    throw std::invalid_argument("battery_life_hours: positive inputs");
  // Wh -> J; mJ per frame at fps frames/s -> W.
  const double joules = battery_wh * 3600.0;
  const double watts = energy_per_frame_mj / 1000.0 * fps;
  return joules / watts / 3600.0;
}

SloReport assess_slo(const ScenarioConfig& scenario, const SloTargets& t,
                     const XrPerformanceModel& model) {
  const PerformanceReport perf = model.evaluate(scenario);
  SloReport report;

  report.achievable_fps = achievable_fps(perf.latency.total);
  // Frames consumed per second: the device cannot render faster than its
  // pipeline latency allows, nor faster than the capture rate.
  const double effective_fps =
      std::min(report.achievable_fps, scenario.frame.fps);
  report.battery_hours =
      battery_life_hours(t.battery_wh, perf.energy.total, effective_fps);

  report.checks.push_back(SloCheck{
      "motion-to-photon (ms)", perf.latency.total, t.motion_to_photon_ms,
      perf.latency.total <= t.motion_to_photon_ms});
  report.checks.push_back(SloCheck{"frame rate (fps)",
                                   report.achievable_fps, t.min_fps,
                                   report.achievable_fps >= t.min_fps});
  report.checks.push_back(SloCheck{"battery life (h)", report.battery_hours,
                                   t.min_battery_hours,
                                   report.battery_hours >=
                                       t.min_battery_hours});
  if (t.require_fresh_sensors) {
    double min_roi = perf.sensors.empty() ? 1.0 : perf.sensors[0].roi;
    for (const auto& s : perf.sensors) min_roi = std::min(min_roi, s.roi);
    report.checks.push_back(
        SloCheck{"sensor freshness (min RoI)", min_roi, 1.0, min_roi >= 1.0});
  }

  report.all_pass = std::all_of(report.checks.begin(), report.checks.end(),
                                [](const SloCheck& c) { return c.pass; });
  return report;
}

std::string SloReport::to_string() const {
  trace::TablePrinter t({"SLO", "measured", "target", "verdict"});
  t.set_align(0, trace::Align::kLeft);
  for (const auto& c : checks)
    t.add_row({c.name, trace::fixed(c.measured, 2), trace::fixed(c.target, 2),
               c.pass ? "PASS" : "FAIL"});
  std::ostringstream oss;
  oss << t.render();
  oss << (all_pass ? "all SLOs met\n" : "SLO VIOLATION\n");
  return oss.str();
}

}  // namespace xr::core
