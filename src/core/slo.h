// Service-level-objective analysis on top of the performance models.
//
// Turns the per-frame numbers into the quantities an XR product team tracks:
// whether the motion-to-photon budget holds, the achievable frame rate, the
// battery life the energy model implies, and whether every sensor satisfies
// the RoI freshness rule. This is the "assess the effectiveness of an XR
// application" use the paper's abstract promises.
#pragma once

#include <string>
#include <vector>

#include "core/framework.h"

namespace xr::core {

/// Targets the application must meet.
struct SloTargets {
  double motion_to_photon_ms = 100.0;  ///< end-to-end latency budget.
  double min_fps = 10.0;               ///< sustained frame-rate floor.
  double battery_wh = 15.0;            ///< device battery capacity.
  double min_battery_hours = 2.0;      ///< required session length.
  bool require_fresh_sensors = true;   ///< all RoI >= 1.
};

/// Verdict for one target.
struct SloCheck {
  std::string name;
  double measured = 0;
  double target = 0;
  bool pass = false;
};

/// Full SLO assessment.
struct SloReport {
  std::vector<SloCheck> checks;
  bool all_pass = false;
  double achievable_fps = 0;   ///< 1000 / latency (pipeline un-pipelined).
  double battery_hours = 0;    ///< battery / (energy-per-frame · fps).
  [[nodiscard]] std::string to_string() const;
};

/// Achievable frame rate implied by an end-to-end latency (sequential
/// pipeline; a pipelined implementation can do better, this is the
/// conservative bound). Latency must be positive.
[[nodiscard]] double achievable_fps(double latency_ms);

/// Battery life in hours for a per-frame energy at a frame rate.
/// battery_wh > 0, energy > 0, fps > 0.
[[nodiscard]] double battery_life_hours(double battery_wh,
                                        double energy_per_frame_mj,
                                        double fps);

/// Assess a scenario against the targets.
[[nodiscard]] SloReport assess_slo(const ScenarioConfig& scenario,
                                   const SloTargets& targets,
                                   const XrPerformanceModel& model = {});

}  // namespace xr::core
