// Exact JSON codecs for the core value types.
//
// ScenarioConfig round-trips *fully*: every field of every nested config,
// doubles in shortest round-trip form (core/jsonio.h), so a scenario can be
// embedded verbatim in a serializable sweep document and a worker process
// rebuilds bit-for-bit the scenario the author described. This is what lets
// a grid's base be *any* scenario — the example workloads included — not
// just the "local"/"remote" factory strings.
//
// PerformanceReport uses the same codec rules; it is the payload of the
// shard layer's JSONL records and of serialized OffloadPlan summaries, and
// the round trip preserves every breakdown field bitwise.
#pragma once

#include <vector>

#include "core/framework.h"
#include "core/jsonio.h"
#include "core/pipeline.h"

namespace xr::core {

/// Serialize a scenario; scenario_from_json(to_json(s)) reproduces `s`
/// exactly (bitwise on every double).
[[nodiscard]] Json to_json(const ScenarioConfig& s);
/// Inverse of to_json. Missing members throw std::invalid_argument — a
/// scenario document is complete, not a patch.
[[nodiscard]] ScenarioConfig scenario_from_json(const Json& j);

/// Serialize a full performance report (latency + energy breakdowns and the
/// per-sensor AoI summaries), bitwise round-trippable.
[[nodiscard]] Json to_json(const PerformanceReport& report);
[[nodiscard]] PerformanceReport report_from_json(const Json& j);

/// Breakdown-level codecs — the report codec is built from these, and the
/// shard layer's JSONL record hot path writes them directly (one line per
/// grid point; no intermediate report document to copy from).
[[nodiscard]] Json to_json(const LatencyBreakdown& l);
[[nodiscard]] LatencyBreakdown latency_breakdown_from_json(const Json& j);
[[nodiscard]] Json to_json(const EnergyBreakdown& e);
[[nodiscard]] EnergyBreakdown energy_breakdown_from_json(const Json& j);
[[nodiscard]] Json to_json(const std::vector<SensorReport>& sensors);
[[nodiscard]] std::vector<SensorReport> sensors_from_json(const Json& j);

/// Serialize a codec operating point (the Eq. 10 regressors), bitwise
/// round-trippable; also embedded in scenario and offload-plan documents.
[[nodiscard]] Json to_json(const devices::H264Config& codec);
[[nodiscard]] devices::H264Config h264_from_json(const Json& j);

}  // namespace xr::core
