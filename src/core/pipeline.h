// XR application pipeline description (Fig. 1) and scenario configuration.
//
// The paper decomposes an object-detection XR application into segments:
// frame generation, volumetric data generation, external sensor information
// generation, frame conversion (local path), frame encoding (remote path),
// local inference, remote inference, frame rendering, transmission, handoff,
// and XR cooperation. ScenarioConfig captures every parameter those segment
// models consume; the latency/energy/AoI models (Eqs. 1–26) are pure
// functions of it.
//
// Unit conventions (see DESIGN.md): ms, mJ, mW, MB, GB/s, GHz, Mbps, m, Hz.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "devices/cnn.h"
#include "devices/codec.h"
#include "devices/compute.h"
#include "devices/power.h"
#include "wireless/handoff.h"

namespace xr::core {

/// Pipeline segments of Fig. 1, in the order of Eq. (1).
enum class Segment {
  kFrameGeneration,
  kVolumetricData,
  kExternalSensors,
  kRendering,
  kFrameConversion,
  kEncoding,
  kLocalInference,
  kRemoteInference,
  kTransmission,
  kHandoff,
  kCooperation,
};

/// Display name of a segment ("frame_generation", ...).
[[nodiscard]] const char* segment_name(Segment s) noexcept;
/// All segments in Eq. (1) order.
[[nodiscard]] const std::vector<Segment>& all_segments();

/// Where a frame's inference runs — ω_loc in Eq. (1).
enum class InferencePlacement { kLocal, kRemote };

/// Display name of a placement ("local"/"remote") — the one spelling every
/// serialized document uses.
[[nodiscard]] const char* placement_name(InferencePlacement p) noexcept;
/// Inverse of placement_name; throws std::invalid_argument on unknown
/// names.
[[nodiscard]] InferencePlacement placement_from_name(const std::string& name);

/// The XR client device's resource allocation.
struct ClientConfig {
  double cpu_ghz = 2.0;               ///< f_c.
  double gpu_ghz = 0.7;               ///< f_g.
  double omega_c = 1.0;               ///< CPU share of the allocation.
  double memory_bandwidth_gbps = 44.0;  ///< m_client.
};

/// Frame geometry and rates.
struct FrameConfig {
  double fps = 30.0;            ///< n_fps.
  double frame_size = 500.0;    ///< s_f1: the paper's "pixel²" axis value.
  double scene_size = 500.0;    ///< s_vol: virtual scene size.
  double converted_size = 300.0;  ///< s_f2: CNN input tensor dimension.
  /// Data sizes in MB; negative values mean "derive from geometry" via the
  /// raw_frame_mb()/volumetric_mb()/converted_mb() helpers below.
  double raw_frame_mb = -1.0;     ///< δ_f1.
  double volumetric_mb = -1.0;    ///< δ_vol.
  double converted_mb = -1.0;     ///< δ_f2.
  double inference_result_mb = 0.02;  ///< result payload to renderer.
};

/// Derived data sizes. YUV420 raw frames occupy 1.5 B/pixel; RGB converted
/// tensors 3 B/pixel; volumetric point clouds ≈ 2 B/pixel of scene.
[[nodiscard]] double raw_frame_mb(const FrameConfig& f);
[[nodiscard]] double volumetric_mb(const FrameConfig& f);
[[nodiscard]] double converted_mb(const FrameConfig& f);

/// One external sensor or device (Eq. 5/6 and the AoI model).
struct SensorConfig {
  std::string name = "sensor";
  double generation_hz = 100.0;  ///< f_t^m.
  double distance_m = 20.0;      ///< d_m.
};

/// Input-buffer queueing (Eqs. 7, 22): three data classes share one buffer
/// served at rate mu; each class arrives at its own Poisson rate.
struct BufferConfig {
  double service_rate_per_ms = 1.0;       ///< µ.
  double frame_arrival_per_ms = 0.030;    ///< λ for captured frames (≈fps).
  double volumetric_arrival_per_ms = 0.030;  ///< λ for volumetric data.
  double external_arrival_per_ms = 0.200;    ///< λ for sensor packets.
};

/// Wireless connectivity to the edge and cooperative devices (Eq. 16/18).
struct NetworkConfig {
  double throughput_mbps = 40.0;  ///< r_w.
  double edge_distance_m = 50.0;  ///< d_ε.
  double coop_distance_m = 30.0;  ///< d_coop.
  double coop_payload_mb = 0.25;  ///< δ_f4.
};

/// One edge server executing a share of the inference task (Eqs. 13–15).
struct EdgeConfig {
  std::string name = "edge";
  /// Allocated resource c_ε. Negative means "derive from the client via the
  /// paper's measured ratio c_ε = 11.76 c_client".
  double resource = -1.0;
  double memory_bandwidth_gbps = 136.5;  ///< m_ε (AGX Xavier class).
  std::string cnn_name = "YoloV3";       ///< the large CNN on this server.
  double omega_edge = 1.0;               ///< ω_edge^e: task share.
};

/// Inference placement and task split (ω terms of Eqs. 11, 13, 15).
struct InferenceConfig {
  InferencePlacement placement = InferencePlacement::kLocal;
  std::string local_cnn_name = "MobileNetv2_300_Float";
  double omega_client = 1.0;  ///< ω_client: split share kept on-device.
  std::vector<EdgeConfig> edges = {EdgeConfig{}};
  /// Encoded-frame "size" s_f3 fed to the edge CNN; negative derives from
  /// the captured frame size.
  double encoded_size = -1.0;
};

/// Device mobility / handoff (Eq. 17). Disabled by default (Fig. 4b's
/// remote-inference evaluation has no mobility).
struct MobilityConfig {
  bool enabled = false;
  double zone_radius_m = 120.0;
  double step_length_per_frame_m = 1.0;
  double vertical_fraction = 0.3;
  wireless::HandoffLatencyConfig handoff;
};

/// XR cooperation (Eq. 18). Runs parallel to rendering by default, so it is
/// excluded from the end-to-end totals unless include_in_total is set.
struct CooperationConfig {
  bool active = false;
  bool include_in_total = false;
};

/// AoI requirements (Eqs. 22–26).
struct AoiConfig {
  double request_period_ms = 5.0;  ///< XR requests one update per period.
  int updates_per_frame = 5;       ///< N.
};

/// The complete scenario consumed by the latency/energy/AoI models.
struct ScenarioConfig {
  ClientConfig client;
  FrameConfig frame;
  std::vector<SensorConfig> sensors = {SensorConfig{}};
  BufferConfig buffer;
  NetworkConfig network;
  InferenceConfig inference;
  devices::H264Config codec;
  MobilityConfig mobility;
  CooperationConfig cooperation;
  AoiConfig aoi;

  /// Number of sensor updates consumed per frame (N in Eq. 5).
  int updates_per_frame = 3;
};

/// Validate a scenario's invariants (rates positive, shares in range, queue
/// stability, ω_client + Σω_edge consistency). Throws std::invalid_argument
/// with a descriptive message on the first violation.
void validate(const ScenarioConfig& scenario);

/// ω_task = ω_client + Σ_e ω_edge^e: the total inference task share.
[[nodiscard]] double total_task_share(const InferenceConfig& inference);

}  // namespace xr::core
