#include "core/pipeline.h"

#include <stdexcept>

#include "queueing/mm1.h"

namespace xr::core {

const char* segment_name(Segment s) noexcept {
  switch (s) {
    case Segment::kFrameGeneration: return "frame_generation";
    case Segment::kVolumetricData: return "volumetric_data";
    case Segment::kExternalSensors: return "external_sensors";
    case Segment::kRendering: return "rendering";
    case Segment::kFrameConversion: return "frame_conversion";
    case Segment::kEncoding: return "encoding";
    case Segment::kLocalInference: return "local_inference";
    case Segment::kRemoteInference: return "remote_inference";
    case Segment::kTransmission: return "transmission";
    case Segment::kHandoff: return "handoff";
    case Segment::kCooperation: return "cooperation";
  }
  return "unknown";
}

const std::vector<Segment>& all_segments() {
  static const std::vector<Segment> segments = {
      Segment::kFrameGeneration, Segment::kVolumetricData,
      Segment::kExternalSensors, Segment::kRendering,
      Segment::kFrameConversion, Segment::kEncoding,
      Segment::kLocalInference,  Segment::kRemoteInference,
      Segment::kTransmission,    Segment::kHandoff,
      Segment::kCooperation,
  };
  return segments;
}

const char* placement_name(InferencePlacement p) noexcept {
  return p == InferencePlacement::kLocal ? "local" : "remote";
}

InferencePlacement placement_from_name(const std::string& name) {
  if (name == "local") return InferencePlacement::kLocal;
  if (name == "remote") return InferencePlacement::kRemote;
  throw std::invalid_argument("unknown placement '" + name +
                              "' (expected 'local' or 'remote')");
}

double raw_frame_mb(const FrameConfig& f) {
  if (f.raw_frame_mb >= 0) return f.raw_frame_mb;
  // YUV420: 1.5 bytes per pixel of an s x s frame.
  return 1.5e-6 * f.frame_size * f.frame_size;
}

double volumetric_mb(const FrameConfig& f) {
  if (f.volumetric_mb >= 0) return f.volumetric_mb;
  // Point cloud + inertial data ≈ 2 bytes per pixel of the virtual scene.
  return 2.0e-6 * f.scene_size * f.scene_size;
}

double converted_mb(const FrameConfig& f) {
  if (f.converted_mb >= 0) return f.converted_mb;
  // RGB888 tensor: 3 bytes per pixel of the converted frame.
  return 3.0e-6 * f.converted_size * f.converted_size;
}

double total_task_share(const InferenceConfig& inference) {
  double total = inference.omega_client;
  for (const auto& e : inference.edges) total += e.omega_edge;
  return total;
}

namespace {
void require(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(std::string("ScenarioConfig: ") +
                                       message);
}
}  // namespace

void validate(const ScenarioConfig& s) {
  require(s.client.cpu_ghz > 0, "client CPU clock must be > 0");
  require(s.client.gpu_ghz > 0, "client GPU clock must be > 0");
  require(s.client.omega_c >= 0 && s.client.omega_c <= 1,
          "omega_c must be in [0, 1]");
  require(s.client.memory_bandwidth_gbps > 0,
          "memory bandwidth must be > 0");

  require(s.frame.fps > 0, "fps must be > 0");
  require(s.frame.frame_size > 0, "frame size must be > 0");
  require(s.frame.scene_size > 0, "scene size must be > 0");
  require(s.frame.converted_size > 0, "converted size must be > 0");
  require(s.frame.inference_result_mb >= 0,
          "result payload must be >= 0");

  for (const auto& sensor : s.sensors) {
    require(sensor.generation_hz > 0, "sensor frequency must be > 0");
    require(sensor.distance_m >= 0, "sensor distance must be >= 0");
  }
  require(s.updates_per_frame >= 0, "updates per frame must be >= 0");
  require(s.updates_per_frame == 0 || !s.sensors.empty(),
          "updates per frame requires at least one sensor");

  const auto& b = s.buffer;
  require(b.service_rate_per_ms > 0, "buffer service rate must be > 0");
  // The paper assumes a *stable* M/M/1 buffer (Eq. 7); enforce per class.
  require(queueing::mm1_stable(b.frame_arrival_per_ms, b.service_rate_per_ms),
          "frame buffer class unstable (lambda >= mu)");
  require(queueing::mm1_stable(b.volumetric_arrival_per_ms,
                               b.service_rate_per_ms),
          "volumetric buffer class unstable (lambda >= mu)");
  require(queueing::mm1_stable(b.external_arrival_per_ms,
                               b.service_rate_per_ms),
          "external buffer class unstable (lambda >= mu)");

  require(s.network.throughput_mbps > 0, "throughput must be > 0");
  require(s.network.edge_distance_m >= 0, "edge distance must be >= 0");
  require(s.network.coop_distance_m >= 0, "coop distance must be >= 0");
  require(s.network.coop_payload_mb >= 0, "coop payload must be >= 0");

  const auto& inf = s.inference;
  require(inf.omega_client >= 0 && inf.omega_client <= 1,
          "omega_client must be in [0, 1]");
  if (inf.placement == InferencePlacement::kRemote)
    require(!inf.edges.empty(), "remote inference requires an edge server");
  for (const auto& e : inf.edges) {
    require(e.omega_edge >= 0 && e.omega_edge <= 1,
            "omega_edge must be in [0, 1]");
    require(e.memory_bandwidth_gbps > 0, "edge bandwidth must be > 0");
    // Resolvable CNN name (throws out_of_range otherwise).
    (void)devices::cnn_by_name(e.cnn_name);
  }
  (void)devices::cnn_by_name(inf.local_cnn_name);

  if (s.mobility.enabled) {
    require(s.mobility.zone_radius_m > 0, "zone radius must be > 0");
    require(s.mobility.step_length_per_frame_m > 0,
            "mobility step must be > 0");
    require(s.mobility.step_length_per_frame_m < s.mobility.zone_radius_m,
            "mobility step must be below the zone radius");
    require(s.mobility.vertical_fraction >= 0 &&
                s.mobility.vertical_fraction <= 1,
            "vertical fraction must be in [0, 1]");
  }

  require(s.aoi.request_period_ms > 0, "AoI request period must be > 0");
  require(s.aoi.updates_per_frame > 0, "AoI updates per frame must be > 0");
}

}  // namespace xr::core
