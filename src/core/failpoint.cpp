#include "core/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

#include "obs/registry.h"

namespace xr::fail {

using core::Json;

namespace {

constexpr const char* kScheduleSchema = "xr.fault.schedule.v1";

/// Shared strict-object walker (the message.cpp idiom): calls `field` for
/// each member and throws, naming the offender, when it returns false.
template <typename F>
void walk_strict(const Json& j, const char* what, F&& field) {
  for (const auto& [key, value] : j.as_object()) {
    if (!field(key, value))
      throw std::invalid_argument(std::string(what) + ": unknown field '" +
                                  key + "'");
  }
}

const char* trigger_kind_name(Trigger::Kind k) noexcept {
  switch (k) {
    case Trigger::Kind::kNth: return "nth";
    case Trigger::Kind::kEvery: return "every";
    case Trigger::Kind::kProbability: return "probability";
  }
  return "?";
}

Trigger::Kind trigger_kind_from_name(const std::string& name) {
  for (Trigger::Kind k : {Trigger::Kind::kNth, Trigger::Kind::kEvery,
                          Trigger::Kind::kProbability})
    if (name == trigger_kind_name(k)) return k;
  throw std::invalid_argument("fault schedule: unknown trigger '" + name +
                              "' (nth | every | probability)");
}

Json trigger_to_json(const Trigger& t) {
  Json j = Json::object();
  j.set("on", trigger_kind_name(t.kind));
  if (t.kind == Trigger::Kind::kProbability)
    j.set("p", t.p);
  else
    j.set("n", t.n);
  return j;
}

Trigger trigger_from_json(const Json& j) {
  Trigger t;
  bool saw_on = false, saw_n = false, saw_p = false;
  walk_strict(j, "fault trigger", [&](const std::string& key,
                                      const Json& value) {
    if (key == "on") {
      t.kind = trigger_kind_from_name(value.as_string());
      saw_on = true;
    } else if (key == "n") {
      t.n = value.as_size();
      saw_n = true;
    } else if (key == "p") {
      t.p = value.as_double();
      saw_p = true;
    } else {
      return false;
    }
    return true;
  });
  if (!saw_on) throw std::invalid_argument("fault trigger: missing 'on'");
  if (t.kind == Trigger::Kind::kProbability) {
    if (!saw_p || saw_n)
      throw std::invalid_argument(
          "fault trigger: probability takes 'p' (and no 'n')");
    if (!(t.p >= 0.0 && t.p <= 1.0))
      throw std::invalid_argument("fault trigger: p must be in [0, 1]");
  } else {
    if (!saw_n || saw_p)
      throw std::invalid_argument(
          "fault trigger: nth/every take 'n' (and no 'p')");
    if (t.n == 0) throw std::invalid_argument("fault trigger: n must be >= 1");
  }
  return t;
}

#ifndef XR_FAULT_DISABLED

/// splitmix64: the per-rule probability stream. Small, seedable, and
/// stateless beyond one word — replaying a schedule replays the stream.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Process fault registry: the installed schedule plus per-rule hit/fire
/// counters and PRNG streams, all under one mutex (failpoints sit on
/// I/O-granularity paths, never in per-record inner loops).
class FaultRegistry {
 public:
  static FaultRegistry& get() {
    // Deliberately leaked, like obs::Registry::global(): hooks in static
    // destructors must never touch a destroyed registry.
    static FaultRegistry* r = new FaultRegistry;
    return *r;
  }

  void install(const FaultSchedule& schedule) {
    const std::lock_guard<std::mutex> lock(mu_);
    rules_.clear();
    for (std::size_t i = 0; i < schedule.rules.size(); ++i) {
      RuleState state;
      state.rule = schedule.rules[i];
      // Decorrelate the per-rule streams without making them order-free:
      // rule i of seed s always sees the same sequence.
      state.rng = schedule.seed ^ (0x9E3779B97F4A7C15ull * (i + 1));
      rules_.push_back(std::move(state));
    }
    loaded_.store(true, std::memory_order_release);
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    rules_.clear();
    env_checked_ = true;  // an explicit clear wins over the environment.
    loaded_.store(false, std::memory_order_release);
  }

  bool loaded() {
    maybe_load_env();
    return loaded_.load(std::memory_order_acquire);
  }

  std::optional<Fired> hit(std::string_view name) {
    maybe_load_env();
    // The no-schedule fast path: one relaxed-ish atomic load, no lock.
    if (!loaded_.load(std::memory_order_acquire)) return std::nullopt;
    const std::lock_guard<std::mutex> lock(mu_);
    // Every matching rule counts every hit (and a probability rule always
    // advances its stream), so each rule's trigger is a pure function of
    // the point's hit sequence — independent of which OTHER rules fired.
    // Of the rules firing on this hit, the first unexhausted one wins.
    std::optional<Fired> result;
    for (RuleState& state : rules_) {
      const FaultRule& rule = state.rule;
      if (rule.point != name) continue;
      ++state.hits;
      bool fire = false;
      switch (rule.trigger.kind) {
        case Trigger::Kind::kNth:
          fire = state.hits == rule.trigger.n;
          break;
        case Trigger::Kind::kEvery:
          fire = state.hits % rule.trigger.n == 0;
          break;
        case Trigger::Kind::kProbability:
          fire = double(splitmix64(state.rng) >> 11) * 0x1.0p-53 <
                 rule.trigger.p;
          break;
      }
      if (!fire) continue;
      if (rule.max_fires && state.fires >= rule.max_fires) continue;
      if (result) continue;  // shadowed this hit; not an injection.
      ++state.fires;
      fired_counter(rule.point).add();
      Fired out;
      out.action = rule.action;
      out.delay_ms = rule.delay_ms;
      out.point = rule.point;
      result = std::move(out);
    }
    return result;
  }

 private:
  struct RuleState {
    FaultRule rule;
    std::size_t hits = 0;
    std::size_t fires = 0;
    std::uint64_t rng = 0;
  };

  void maybe_load_env() {
    // One env read per process; a programmatic load_schedule beats it.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (env_checked_) return;
      env_checked_ = true;
    }
    const char* path = std::getenv("XR_FAULT_SCHEDULE");
    if (!path || !*path) return;
    // A broken schedule file must fail the run loudly — silently running
    // fault-free would green a chaos gate that injected nothing.
    install(FaultSchedule::from_json(Json::parse(core::read_text_file(path))));
  }

  obs::Counter& fired_counter(const std::string& point) {
    // One auditable counter per firing point; names are schedule-driven,
    // so the handles cannot be function-local statics. mu_ is held.
    auto it = counters_.find(point);
    if (it == counters_.end())
      it = counters_.emplace(point, obs::Counter("fault." + point + ".fired"))
               .first;
    return it->second;
  }

  std::mutex mu_;
  std::vector<RuleState> rules_;
  std::map<std::string, obs::Counter> counters_;
  bool env_checked_ = false;
  std::atomic<bool> loaded_{false};
};

#endif  // XR_FAULT_DISABLED

}  // namespace

const char* action_name(Action a) noexcept {
  switch (a) {
    case Action::kIoError: return "io_error";
    case Action::kTruncate: return "truncate";
    case Action::kCorrupt: return "corrupt";
    case Action::kDrop: return "drop";
    case Action::kDelay: return "delay";
  }
  return "?";
}

Action action_from_name(const std::string& name) {
  for (Action a : {Action::kIoError, Action::kTruncate, Action::kCorrupt,
                   Action::kDrop, Action::kDelay})
    if (name == action_name(a)) return a;
  throw std::invalid_argument(
      "fault schedule: unknown action '" + name +
      "' (io_error | truncate | corrupt | drop | delay)");
}

Json FaultSchedule::to_json() const {
  Json j = Json::object();
  j.set("schema", kScheduleSchema);
  j.set("seed", std::size_t(seed));
  Json rules_json = Json::array();
  for (const FaultRule& rule : rules) {
    Json r = Json::object();
    r.set("point", rule.point);
    r.set("trigger", trigger_to_json(rule.trigger));
    r.set("action", action_name(rule.action));
    if (rule.action == Action::kDelay) r.set("delay_ms", std::size_t(rule.delay_ms));
    if (rule.max_fires) r.set("max_fires", rule.max_fires);
    rules_json.push_back(std::move(r));
  }
  j.set("rules", std::move(rules_json));
  return j;
}

FaultSchedule FaultSchedule::from_json(const Json& j) {
  FaultSchedule out;
  bool saw_schema = false, saw_rules = false;
  walk_strict(j, "fault schedule", [&](const std::string& key,
                                       const Json& value) {
    if (key == "schema") {
      if (value.as_string() != kScheduleSchema)
        throw std::invalid_argument("fault schedule: unknown schema '" +
                                    value.as_string() + "'");
      saw_schema = true;
    } else if (key == "seed") {
      out.seed = value.as_size();
    } else if (key == "rules") {
      for (const Json& r : value.as_array()) {
        FaultRule rule;
        bool saw_point = false, saw_trigger = false, saw_action = false;
        walk_strict(r, "fault rule", [&](const std::string& rkey,
                                         const Json& rvalue) {
          if (rkey == "point") {
            rule.point = rvalue.as_string();
            saw_point = true;
          } else if (rkey == "trigger") {
            rule.trigger = trigger_from_json(rvalue);
            saw_trigger = true;
          } else if (rkey == "action") {
            rule.action = action_from_name(rvalue.as_string());
            saw_action = true;
          } else if (rkey == "delay_ms") {
            rule.delay_ms = rvalue.as_size();
          } else if (rkey == "max_fires") {
            rule.max_fires = rvalue.as_size();
          } else {
            return false;
          }
          return true;
        });
        if (!saw_point || rule.point.empty())
          throw std::invalid_argument("fault rule: missing 'point'");
        if (!saw_trigger)
          throw std::invalid_argument("fault rule: missing 'trigger'");
        if (!saw_action)
          throw std::invalid_argument("fault rule: missing 'action'");
        if (rule.action == Action::kDelay && rule.delay_ms == 0)
          throw std::invalid_argument(
              "fault rule: a delay action needs delay_ms >= 1");
        out.rules.push_back(std::move(rule));
      }
      saw_rules = true;
    } else {
      return false;
    }
    return true;
  });
  if (!saw_schema)
    throw std::invalid_argument("fault schedule: missing 'schema'");
  if (!saw_rules) throw std::invalid_argument("fault schedule: missing 'rules'");
  return out;
}

#ifndef XR_FAULT_DISABLED

void load_schedule(const FaultSchedule& schedule) {
  FaultRegistry::get().install(schedule);
}

void clear_schedule() { FaultRegistry::get().clear(); }

bool schedule_loaded() { return FaultRegistry::get().loaded(); }

std::optional<Fired> point(std::string_view name) {
  return FaultRegistry::get().hit(name);
}

#endif

}  // namespace xr::fail
