#include "xrsim/power_monitor.h"

#include <cmath>
#include <stdexcept>

namespace xr::xrsim {

PowerMonitor::PowerMonitor(PowerMonitorConfig config) : config_(config) {
  if (config.sampling_interval_ms <= 0)
    throw std::invalid_argument("PowerMonitor: sampling interval > 0");
  if (config.noise_sigma_mw < 0 || config.quantization_mw < 0)
    throw std::invalid_argument("PowerMonitor: negative noise config");
}

double PowerMonitor::power_at(const std::vector<PowerInterval>& profile,
                              double t_ms) const noexcept {
  double acc = 0;
  for (const auto& seg : profile) {
    if (t_ms < acc + seg.duration_ms) return seg.power_mw;
    acc += seg.duration_ms;
  }
  return 0.0;  // monitor reads zero after the profile ends
}

double PowerMonitor::exact_energy_mj(
    const std::vector<PowerInterval>& profile) {
  double mj = 0;
  for (const auto& seg : profile) {
    if (seg.duration_ms < 0 || seg.power_mw < 0)
      throw std::invalid_argument("PowerMonitor: negative profile entry");
    mj += seg.power_mw * seg.duration_ms / 1000.0;
  }
  return mj;
}

std::vector<double> PowerMonitor::sample_trace(
    const std::vector<PowerInterval>& profile, math::Rng& rng) const {
  double total_ms = 0;
  for (const auto& seg : profile) {
    if (seg.duration_ms < 0 || seg.power_mw < 0)
      throw std::invalid_argument("PowerMonitor: negative profile entry");
    total_ms += seg.duration_ms;
  }
  std::vector<double> samples;
  const auto n = static_cast<std::size_t>(
                     std::floor(total_ms / config_.sampling_interval_ms)) +
                 1;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = double(i) * config_.sampling_interval_ms;
    double p = power_at(profile, t);
    if (config_.noise_sigma_mw > 0)
      p += rng.normal(0.0, config_.noise_sigma_mw);
    if (config_.quantization_mw > 0)
      p = std::round(p / config_.quantization_mw) * config_.quantization_mw;
    samples.push_back(std::max(p, 0.0));
  }
  return samples;
}

double PowerMonitor::measure_energy_mj(
    const std::vector<PowerInterval>& profile, math::Rng& rng) const {
  const auto samples = sample_trace(profile, rng);
  if (samples.size() < 2) return exact_energy_mj(profile);
  // Trapezoidal integration over the sampling grid.
  double mj = 0;
  for (std::size_t i = 1; i < samples.size(); ++i)
    mj += 0.5 * (samples[i - 1] + samples[i]) *
          config_.sampling_interval_ms / 1000.0;
  return mj;
}

}  // namespace xr::xrsim
