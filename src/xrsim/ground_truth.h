// Ground-truth XR pipeline simulator — the testbed substitute.
//
// The paper validates its analytical models against measurements from a
// physical testbed (§VII). This simulator plays that testbed's role: it
// executes the Fig. 1 pipeline frame by frame on the DES kernel with
// stochastic effects and *hidden systematic behaviours the analytical model
// does not know about*:
//
//   * cache pressure — compute cost grows slightly super-linearly with
//     frame size (the analytical model is linear in s);
//   * DVFS / scheduler bias — mid-range clocks deliver slightly less
//     effective throughput than the Eq. (3) quadratic predicts;
//   * encoder content dependence — H.264 work varies with scene content;
//   * OS preemption — occasional exponential scheduling stalls;
//   * throughput fluctuation — per-frame Wi-Fi rate variation;
//   * real queueing — buffer waits are sampled from the M/M/1 sojourn
//     distribution, not its mean;
//   * measured energy — a Monsoon-style monitor samples the simulated power
//     draw at 0.2 ms (see power_monitor.h) including base power and the
//     thermal-conversion overhead.
//
// Because the predictor and the ground truth are *different models*, the
// error the benches report is genuine model error, as in the paper
// (mean errors ≈ 2.7–5.4% for the proposed framework).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/pipeline.h"
#include "trace/stats_collector.h"
#include "xrsim/power_monitor.h"

namespace xr::xrsim {

/// Stochastic / hidden-effect configuration.
struct GroundTruthConfig {
  std::size_t frames = 200;     ///< frames per run.
  std::uint64_t seed = 42;
  /// Store per-frame FrameRecords in the result. Sweep evaluators only
  /// consume the running latency/energy stats, and on million-point grids
  /// the per-point frame vector is pure allocation churn — set false for a
  /// totals-only run. Never changes the stats: the same frames are
  /// simulated in the same order either way.
  bool record_frames = true;

  // Per-frame noise magnitudes (lognormal sigma unless stated).
  double resource_noise = 0.03;
  double encode_content_noise = 0.05;
  double throughput_noise = 0.08;
  double power_noise = 0.04;
  double preemption_probability = 0.05;   ///< OS stall per frame.
  double preemption_mean_ms = 3.0;

  // Hidden systematic effect strengths (fractions).
  double cache_pressure_strength = 0.08;
  double dvfs_bias_strength = 0.07;
  double encoder_bias_strength = 0.05;
  double power_bias_strength = 0.05;
  /// True thermal-conversion fraction of the device (the analytical model
  /// assumes its PowerModel's thermal_fraction; a mismatch here is part of
  /// the model error).
  double thermal_fraction_true = 0.068;
  double base_power_true_mw = 368.0;

  PowerMonitorConfig monitor{};
};

/// Per-frame measurement record.
struct FrameRecord {
  int frame = 0;
  double frame_generation_ms = 0;
  double volumetric_ms = 0;
  double external_ms = 0;
  double buffer_wait_ms = 0;
  double rendering_ms = 0;        ///< includes buffer wait + result delivery.
  double conversion_or_encode_ms = 0;
  double inference_ms = 0;        ///< local, or remote (decode+infer) time.
  double transmission_ms = 0;
  double handoff_ms = 0;
  double total_latency_ms = 0;
  double energy_mj = 0;           ///< as measured by the power monitor.
};

/// Aggregated run result. `frames` is empty when the run was configured
/// totals-only (GroundTruthConfig::record_frames == false); the running
/// stats are always populated.
struct GroundTruthResult {
  std::vector<FrameRecord> frames;
  trace::RunningStats latency;
  trace::RunningStats energy;

  [[nodiscard]] double mean_latency_ms() const { return latency.mean(); }
  [[nodiscard]] double mean_energy_mj() const { return energy.mean(); }
};

/// The testbed-substitute simulator. Deterministic for a fixed
/// (config.seed, scenario) pair.
class GroundTruthSimulator {
 public:
  explicit GroundTruthSimulator(GroundTruthConfig config = GroundTruthConfig{});

  /// Simulate `config.frames` frames of the scenario and return per-frame
  /// measurements. Validates the scenario. `frames_override`, when
  /// engaged, replaces the configured frame count for this run only, so
  /// sweep runners can trade fidelity for wall time without rebuilding the
  /// simulator; std::nullopt preserves the configured behaviour. The
  /// sentinel is explicit on purpose: an override of 0 is an honored
  /// request for a zero-frame dry run (empty result, zero means), not a
  /// silent fallback to the configured count. Runs that agree on (seed,
  /// scenario, effective frame count) are identical.
  [[nodiscard]] GroundTruthResult run(
      const core::ScenarioConfig& s,
      std::optional<std::size_t> frames_override = std::nullopt) const;

  [[nodiscard]] const GroundTruthConfig& config() const noexcept {
    return config_;
  }

  /// The hidden compute-inflation multiplier (exposed for tests: the
  /// analytical model must NOT use this).
  [[nodiscard]] double hidden_compute_inflation(double frame_size,
                                                double cpu_ghz) const noexcept;
  /// Hidden power-draw multiplier.
  [[nodiscard]] double hidden_power_inflation(double cpu_ghz) const noexcept;

 private:
  GroundTruthConfig config_;
};

}  // namespace xr::xrsim
