// External-sensor processes and empirical Age-of-Information measurement.
//
// Drives sensor generation cycles through the DES kernel: each sensor emits
// an information packet every 1/f_t (with optional phase jitter), the packet
// crosses the wireless medium (propagation delay) and the XR device's input
// buffer (sampled M/M/1 sojourn), and the XR application consumes the n-th
// packet at its n-th request instant. The observed ages form the empirical
// staircases the paper plots as "GT" in Figs. 4(e)/(f).
#pragma once

#include <vector>

#include "core/pipeline.h"
#include "math/rng.h"

namespace xr::xrsim {

/// One observed update at the XR device.
struct AoiObservation {
  int cycle = 0;                ///< n (1-based).
  double request_time_ms = 0;   ///< when the XR app asked for update n.
  double generated_time_ms = 0; ///< when the sensor finished generating it.
  double delivered_time_ms = 0; ///< generation + propagation + buffer wait.
  double aoi_ms = 0;            ///< observed age at consumption.
};

/// Stochastic knobs of the emulated sensor path.
struct SensorSimConfig {
  double generation_jitter_fraction = 0.02;  ///< jitter on each cycle length.
  std::uint64_t seed = 7;
};

/// Simulate `cycles` update cycles of one sensor against the XR request
/// schedule (one request per `request_period_ms`, first at t = 0).
/// Buffer waits are drawn from the exact M/M/1 sojourn distribution
/// Exp(µ − λ) of the external-information class.
[[nodiscard]] std::vector<AoiObservation> simulate_sensor_aoi(
    const core::SensorConfig& sensor, const core::BufferConfig& buffer,
    double request_period_ms, int cycles, const SensorSimConfig& config);

/// Mean observed AoI over the simulated cycles.
[[nodiscard]] double mean_observed_aoi_ms(
    const std::vector<AoiObservation>& observations);

}  // namespace xr::xrsim
