#include "xrsim/ground_truth.h"

#include <algorithm>
#include <cmath>

#include "core/latency_model.h"
#include "devices/power.h"
#include "sim/simulator.h"
#include "wireless/propagation.h"

namespace xr::xrsim {

GroundTruthSimulator::GroundTruthSimulator(GroundTruthConfig config)
    : config_(config) {}

double GroundTruthSimulator::hidden_compute_inflation(
    double frame_size, double cpu_ghz) const noexcept {
  // Cache pressure: super-linear cost growth with frame size. Centered at
  // the 500-unit operating point so the inflation is ±strength/2 across the
  // paper's 300–700 sweep.
  const double cache =
      config_.cache_pressure_strength * 0.5 *
      ((frame_size / 500.0) * (frame_size / 500.0) - 1.0);
  // DVFS/scheduler bias: mid-range clocks lose a little effective
  // throughput; zero at 1 and 3 GHz, maximal near 2 GHz.
  const double dvfs = config_.dvfs_bias_strength * 0.25 *
                      -((cpu_ghz - 1.0) * (cpu_ghz - 3.0));
  return std::clamp(1.0 + cache + dvfs, 0.8, 1.25);
}

double GroundTruthSimulator::hidden_power_inflation(
    double cpu_ghz) const noexcept {
  // Real silicon draws slightly more than the regression at high clocks
  // (leakage grows with voltage) and slightly less at the bottom.
  return std::clamp(
      1.0 + config_.power_bias_strength * 0.5 * (cpu_ghz - 2.0), 0.8, 1.25);
}

namespace {

/// Multiplicative lognormal jitter with sigma as a fraction.
double jitter(math::Rng& rng, double sigma) {
  if (sigma <= 0) return 1.0;
  return rng.lognormal(-0.5 * sigma * sigma, sigma);
}

}  // namespace

GroundTruthResult GroundTruthSimulator::run(
    const core::ScenarioConfig& s,
    std::optional<std::size_t> frames_override) const {
  core::validate(s);
  const std::size_t frames = frames_override.value_or(config_.frames);
  GroundTruthResult result;
  if (config_.record_frames) result.frames.reserve(frames);

  // The simulator *reuses the same physical sub-models* the analytical
  // framework derives its equations from (that is the point of the paper's
  // regressions — they approximate the device), but perturbs them with the
  // hidden effects declared in the config.
  const core::LatencyModel analytical;  // paper-coefficient sub-models
  const auto& sub = analytical.submodels();
  const devices::PowerModel power_true(
      devices::PowerCoefficients{}, config_.base_power_true_mw,
      config_.thermal_fraction_true);
  const PowerMonitor monitor(config_.monitor);

  sim::Simulator des(config_.seed);
  math::Rng rng_res = des.rng_stream("resource");
  math::Rng rng_enc = des.rng_stream("encoder");
  math::Rng rng_net = des.rng_stream("network");
  math::Rng rng_pow = des.rng_stream("power");
  math::Rng rng_qs = des.rng_stream("queues");
  math::Rng rng_os = des.rng_stream("os");
  math::Rng rng_ho = des.rng_stream("handoff");

  const bool local =
      s.inference.placement == core::InferencePlacement::kLocal;
  const double eta =
      hidden_compute_inflation(s.frame.frame_size, s.client.cpu_ghz);
  const double p_eta = hidden_power_inflation(s.client.cpu_ghz);
  const double frame_interval = 1000.0 / s.frame.fps;

  const double mu = s.buffer.service_rate_per_ms;
  const auto buffer_wait = [&](double lambda) {
    // Exact M/M/1 FCFS sojourn: Exp(mu - lambda).
    return rng_qs.exponential(mu - lambda);
  };

  // Mobility handled as Bernoulli zone exits per frame.
  double p_ho = 0.0;
  double l_ho_h = 0.0, l_ho_v = 0.0;
  if (s.mobility.enabled && !local) {
    const wireless::HandoffModel hom(
        s.mobility.handoff, s.mobility.zone_radius_m,
        s.mobility.step_length_per_frame_m, s.mobility.vertical_fraction);
    p_ho = hom.handoff_probability();
    l_ho_h = hom.event_latency_ms(wireless::HandoffKind::kHorizontal);
    l_ho_v = hom.event_latency_ms(wireless::HandoffKind::kVertical);
  }

  // Drive one frame per event on the DES clock. The power profile is
  // hoisted out of the per-frame lambda (frames run sequentially on the
  // DES, so one cleared-and-refilled vector serves every frame without a
  // fresh allocation each time).
  std::vector<PowerInterval> profile;
  profile.reserve(10);
  for (std::size_t q = 0; q < frames; ++q) {
    des.schedule_at(double(q) * frame_interval, [&, q](sim::Simulator&) {
      FrameRecord rec;
      rec.frame = int(q);

      // --- Resource realization for this frame -------------------------
      const double c_model = sub.allocation.evaluate(
          s.client.cpu_ghz, s.client.gpu_ghz, s.client.omega_c);
      const double c_true =
          std::max(c_model / (eta * jitter(rng_res, config_.resource_noise)),
                   0.1);
      const double m = s.client.memory_bandwidth_gbps;

      // --- Frame generation (capture + ISP) -----------------------------
      rec.frame_generation_ms = frame_interval +
                                s.frame.frame_size / c_true +
                                core::raw_frame_mb(s.frame) / m;
      // --- Volumetric data ----------------------------------------------
      rec.volumetric_ms = s.frame.scene_size / c_true +
                          core::volumetric_mb(s.frame) / m;

      // --- External sensors: slowest sensor, N updates ------------------
      double ext = 0.0;
      for (const auto& sensor : s.sensors) {
        const double per =
            (1000.0 / sensor.generation_hz) *
                jitter(rng_qs, 0.02) +
            wireless::propagation_delay_ms(sensor.distance_m);
        ext = std::max(ext, per * double(s.updates_per_frame));
      }
      rec.external_ms = ext;

      // --- Input buffer: sampled sojourns of the three classes ----------
      rec.buffer_wait_ms = buffer_wait(s.buffer.frame_arrival_per_ms) +
                           buffer_wait(s.buffer.volumetric_arrival_per_ms) +
                           buffer_wait(s.buffer.external_arrival_per_ms);

      // --- Inference path ------------------------------------------------
      double result_delivery_ms = 0.0;
      if (local) {
        rec.conversion_or_encode_ms = s.frame.frame_size / c_true +
                                      core::raw_frame_mb(s.frame) / m;
        const auto& cnn = devices::cnn_by_name(s.inference.local_cnn_name);
        const double complexity = sub.cnn.evaluate(cnn);
        rec.inference_ms =
            s.inference.omega_client *
            (s.frame.converted_size / (c_true * complexity) +
             core::converted_mb(s.frame) / m);
        result_delivery_ms = s.frame.inference_result_mb / m;
      } else {
        // Encode with content-dependent work.
        const double enc_bias =
            1.0 + config_.encoder_bias_strength * 0.5 *
                      (s.frame.frame_size / 500.0 - 1.0);
        const double work = sub.codec.encode_work(s.frame.frame_size,
                                                  s.codec) *
                            enc_bias *
                            jitter(rng_enc, config_.encode_content_noise);
        rec.conversion_or_encode_ms =
            work / c_true + core::raw_frame_mb(s.frame) / m;

        // Uplink with fluctuating throughput.
        const double rate = s.network.throughput_mbps *
                            jitter(rng_net, config_.throughput_noise);
        const double payload =
            sub.codec.encoded_size_mb(s.frame.frame_size, s.codec) *
            jitter(rng_enc, 0.04);
        rec.transmission_ms =
            wireless::transmission_time_ms(payload, rate) +
            wireless::propagation_delay_ms(s.network.edge_distance_m);

        // Edge: decode + inference across the parallel servers (Eq. 15
        // geometry: slowest assigned share bounds the segment).
        double worst = 0.0;
        for (const auto& e : s.inference.edges) {
          const double c_edge =
              e.resource > 0 ? e.resource
                             : devices::kEdgeResourceRatio * c_true;
          const double dec = rec.conversion_or_encode_ms * c_true *
                             sub.codec.decode_discount() / c_edge;
          const auto& cnn = devices::cnn_by_name(e.cnn_name);
          const double complexity = sub.cnn.evaluate(cnn);
          const double s_f3 = s.inference.encoded_size > 0
                                  ? s.inference.encoded_size
                                  : s.frame.frame_size;
          const double infer =
              s_f3 / (c_edge * complexity) + payload / e.memory_bandwidth_gbps;
          worst = std::max(worst, e.omega_edge * (dec + infer));
        }
        rec.inference_ms = worst;

        // Result downlink to the renderer.
        result_delivery_ms =
            wireless::transmission_time_ms(s.frame.inference_result_mb,
                                           rate) +
            wireless::propagation_delay_ms(s.network.edge_distance_m);

        // Handoff?
        if (p_ho > 0 && rng_ho.bernoulli(p_ho)) {
          rec.handoff_ms =
              rng_ho.bernoulli(s.mobility.vertical_fraction) ? l_ho_v
                                                             : l_ho_h;
        }
      }

      // --- Rendering ------------------------------------------------------
      rec.rendering_ms = s.frame.frame_size / c_true +
                         core::raw_frame_mb(s.frame) / m +
                         rec.buffer_wait_ms + result_delivery_ms;

      // --- OS preemption stall --------------------------------------------
      double stall = 0.0;
      if (rng_os.bernoulli(config_.preemption_probability))
        stall = rng_os.exponential(1.0 / config_.preemption_mean_ms);
      rec.rendering_ms += stall;

      rec.total_latency_ms =
          rec.frame_generation_ms + rec.volumetric_ms + rec.external_ms +
          rec.rendering_ms + rec.conversion_or_encode_ms + rec.inference_ms +
          rec.transmission_ms + rec.handoff_ms;

      // --- Energy: build the power profile and measure it -----------------
      const double p_compute =
          power_true.mean_power_mw(s.client.cpu_ghz, s.client.gpu_ghz,
                                   s.client.omega_c) *
          p_eta * jitter(rng_pow, config_.power_noise) *
          (1.0 + config_.thermal_fraction_true);
      const double p_base = config_.base_power_true_mw;
      const double p_tx = 800.0, p_rx = 300.0, p_idle = 150.0;

      profile.clear();
      const auto add = [&](double dur, double pw) {
        if (dur > 0) profile.push_back({dur, pw + p_base});
      };
      add(rec.frame_generation_ms, p_compute);
      add(rec.volumetric_ms, p_compute);
      add(rec.external_ms, p_rx);
      add(rec.conversion_or_encode_ms, p_compute);
      if (local) {
        add(rec.inference_ms, p_compute);
      } else {
        add(rec.transmission_ms, p_tx);
        add(rec.inference_ms, p_idle);
        add(rec.handoff_ms, p_tx);
      }
      add(rec.rendering_ms, p_compute);
      rec.energy_mj = monitor.measure_energy_mj(profile, rng_pow);

      if (config_.record_frames) result.frames.push_back(rec);
      result.latency.add(rec.total_latency_ms);
      result.energy.add(rec.energy_mj);
    });
  }

  des.run_until(double(frames) * frame_interval + 1.0);
  return result;
}

}  // namespace xr::xrsim
