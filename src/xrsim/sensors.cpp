#include "xrsim/sensors.h"

#include <algorithm>
#include <stdexcept>

#include "sim/simulator.h"
#include "wireless/propagation.h"

namespace xr::xrsim {

std::vector<AoiObservation> simulate_sensor_aoi(
    const core::SensorConfig& sensor, const core::BufferConfig& buffer,
    double request_period_ms, int cycles, const SensorSimConfig& config) {
  if (cycles < 1)
    throw std::invalid_argument("simulate_sensor_aoi: need >= 1 cycle");
  if (request_period_ms <= 0)
    throw std::invalid_argument("simulate_sensor_aoi: period must be > 0");

  sim::Simulator des(config.seed);
  math::Rng jitter = des.rng_stream("sensor-jitter");
  math::Rng queue = des.rng_stream("buffer-sojourn");

  const double period_ms = 1000.0 / sensor.generation_hz;
  const double prop_ms = wireless::propagation_delay_ms(sensor.distance_m);
  const double mu = buffer.service_rate_per_ms;
  const double lambda = buffer.external_arrival_per_ms;
  if (lambda >= mu)
    throw std::invalid_argument("simulate_sensor_aoi: unstable buffer");

  std::vector<AoiObservation> observations(static_cast<std::size_t>(cycles));
  std::vector<double> cycle_lengths(static_cast<std::size_t>(cycles));

  // Sensor process: generation cycle n completes at ~n * period (the first
  // cycle starts at t = 0 and needs one full generation interval).
  double completion = 0.0;
  for (int n = 1; n <= cycles; ++n) {
    double cycle_len = period_ms;
    if (config.generation_jitter_fraction > 0)
      cycle_len *= 1.0 + jitter.normal(0.0, config.generation_jitter_fraction);
    if (cycle_len < 1e-6) cycle_len = 1e-6;
    cycle_lengths[std::size_t(n - 1)] = cycle_len;
    completion += cycle_len;
    const double generated = completion;
    const int idx = n - 1;
    des.schedule_at(generated, [&, idx, generated](sim::Simulator&) {
      // The packet leaves the sensor, crosses the air, and queues in the
      // input buffer; M/M/1 FCFS sojourn is Exp(µ − λ).
      const double sojourn = queue.exponential(mu - lambda);
      observations[std::size_t(idx)].generated_time_ms = generated;
      observations[std::size_t(idx)].delivered_time_ms =
          generated + prop_ms + sojourn;
    });
  }
  des.run();

  for (int n = 1; n <= cycles; ++n) {
    auto& obs = observations[std::size_t(n - 1)];
    obs.cycle = n;
    obs.request_time_ms = double(n - 1) * request_period_ms;
    // Age of update n when the application consumes it: the time elapsed
    // since the request it answers was issued, accounting for delivery.
    // As in the analytical model, information can never be fresher than
    // one generation cycle plus its delivery delay, which floors the age
    // for sensors faster than the request rate.
    const double delivery = obs.delivered_time_ms - obs.generated_time_ms;
    obs.aoi_ms = std::max(obs.delivered_time_ms - obs.request_time_ms,
                          cycle_lengths[std::size_t(n - 1)] + delivery);
  }
  return observations;
}

double mean_observed_aoi_ms(const std::vector<AoiObservation>& observations) {
  if (observations.empty())
    throw std::invalid_argument("mean_observed_aoi_ms: empty input");
  double sum = 0;
  for (const auto& o : observations) sum += o.aoi_ms;
  return sum / double(observations.size());
}

}  // namespace xr::xrsim
