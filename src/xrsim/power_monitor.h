// Monsoon-style power-monitor emulation.
//
// The paper measures device energy with a Monsoon Power Monitor sampling at
// one reading every 0.2 ms (§VII). PowerMonitor reproduces that measurement
// pipeline: it takes the simulated piecewise-constant instantaneous power
// profile of a frame, samples it on the monitor's fixed grid with sensor
// noise and ADC quantization, and integrates the samples (trapezoidal rule)
// into energy — including the aliasing of spikes shorter than the sampling
// interval, exactly the error a physical monitor exhibits.
#pragma once

#include <vector>

#include "math/rng.h"

namespace xr::xrsim {

/// One constant-power interval of the simulated draw.
struct PowerInterval {
  double duration_ms = 0;
  double power_mw = 0;
};

/// Configuration of the emulated monitor.
struct PowerMonitorConfig {
  double sampling_interval_ms = 0.2;  ///< Monsoon: 5 kHz.
  double noise_sigma_mw = 5.0;        ///< additive sensor noise per sample.
  double quantization_mw = 0.5;       ///< ADC step.
};

/// The emulated monitor.
class PowerMonitor {
 public:
  explicit PowerMonitor(PowerMonitorConfig config = PowerMonitorConfig{});

  /// Measure a power profile: returns energy in mJ as the monitor would
  /// report it. `rng` drives the per-sample noise.
  [[nodiscard]] double measure_energy_mj(
      const std::vector<PowerInterval>& profile, math::Rng& rng) const;

  /// The exact (noise-free, continuous) energy of a profile, for comparing
  /// measurement error in tests.
  [[nodiscard]] static double exact_energy_mj(
      const std::vector<PowerInterval>& profile);

  /// The sampled trace itself (mW at each grid point), for inspection.
  [[nodiscard]] std::vector<double> sample_trace(
      const std::vector<PowerInterval>& profile, math::Rng& rng) const;

  [[nodiscard]] const PowerMonitorConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] double power_at(const std::vector<PowerInterval>& profile,
                                double t_ms) const noexcept;
  PowerMonitorConfig config_;
};

}  // namespace xr::xrsim
