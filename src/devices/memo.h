// Toggle for the per-thread submodel lookup caches.
//
// The evaluation hot path resolves the same few submodel lookups for every
// scenario of a sweep: the Table II CNN spec behind a name string
// (cnn_by_name) and the Eq. (10) codec curves for a handful of (frame size,
// H.264 config) points. Both are pure, so each worker thread keeps a small
// thread-local cache in front of them — no locks, no cross-thread
// invalidation, and a cache hit returns the exact double the cold path
// would compute (asserted by tests/devices/test_memoization.cpp).
//
// The process-wide toggle exists for that test and for A/B profiling; it
// defaults to enabled.
#pragma once

namespace xr::devices {

/// Enable/disable the per-thread submodel lookup caches (default enabled).
/// Takes effect on the next lookup; per-thread caches are retained but
/// bypassed while disabled.
void set_submodel_memoization(bool enabled) noexcept;
[[nodiscard]] bool submodel_memoization_enabled() noexcept;

}  // namespace xr::devices
