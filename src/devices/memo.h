// Toggle for the per-thread submodel lookup caches.
//
// The evaluation hot path resolves the same few submodel lookups for every
// scenario of a sweep: the Table II CNN spec behind a name string
// (cnn_by_name) and the Eq. (10) codec curves for a handful of (frame size,
// H.264 config) points. Both are pure, so each worker thread keeps a small
// thread-local cache in front of them — no locks, no cross-thread
// invalidation, and a cache hit returns the exact double the cold path
// would compute (asserted by tests/devices/test_memoization.cpp).
//
// The process-wide toggle exists for that test and for A/B profiling; it
// defaults to enabled.
//
// The lookup counter exists so callers can PROVE a code path never reached
// the submodels: every cnn_by_name resolution and codec-curve evaluation
// bumps it (hit or miss), so a zero delta across a call means the models
// were never consulted. The serving path relies on this twice — the SoA
// decision kernel (runtime/decision_batch.h) hoists all lookups into its
// prepare step, and an OffloadPlanIndex exact hit must answer without
// touching the model at all (asserted by tests/runtime/test_plan_index.cpp).
#pragma once

#include <cstdint>

namespace xr::devices {

/// Enable/disable the per-thread submodel lookup caches (default enabled).
/// Takes effect on the next lookup; per-thread caches are retained but
/// bypassed while disabled.
void set_submodel_memoization(bool enabled) noexcept;
[[nodiscard]] bool submodel_memoization_enabled() noexcept;

/// Process-wide count of submodel lookups since process start: cnn_by_name
/// resolutions plus codec-curve evaluations, cached and cold alike.
/// Monotonic; meant for before/after deltas, not absolute values.
[[nodiscard]] std::uint64_t submodel_lookup_count() noexcept;

/// Record one submodel lookup (called by devices/cnn.cpp and
/// devices/codec.cpp; not meant for other callers).
void count_submodel_lookup() noexcept;

}  // namespace xr::devices
