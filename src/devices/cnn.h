// CNN model zoo (Table II) and the CNN-complexity model (Eq. 12).
//
// The paper quantifies a pre-trained CNN's contribution to inference latency
// through a scalar complexity fitted by linear regression over the network's
// depth (layers), storage size (MB), and depth-scaling factor:
//
//   C_CNN = 2.45 + 0.0025 d_CNN + 0.03 s_CNN + 0.0029 d_scale    (Eq. 12)
//
// with reported R² = 0.844. Note the printed Eqs. (11)/(13) use C_CNN in the
// *denominator* of the inference-latency term; we reproduce the printed form
// verbatim (see DESIGN.md, "Faithfulness notes").
#pragma once

#include <string>
#include <vector>

#include "math/regression.h"

namespace xr::devices {

/// One row of Table II.
struct CnnSpec {
  std::string name;
  int depth_layers = 0;       ///< d_CNN.
  double storage_mb = 0;      ///< s_CNN.
  double depth_scale = 0;     ///< d_scale (0 when the model has none).
  bool gpu_support = true;
  bool quantized = false;
  /// True for the heavyweight models the paper deploys on the edge server
  /// (YOLOv3 / YOLOv7).
  bool edge_class = false;
};

/// The 11 CNN models of Table II.
[[nodiscard]] const std::vector<CnnSpec>& cnn_zoo();

/// Lookup by name; throws std::out_of_range if unknown.
[[nodiscard]] const CnnSpec& cnn_by_name(const std::string& name);

/// Coefficients of Eq. (12).
struct CnnComplexityCoefficients {
  double intercept = 2.45;
  double per_layer = 0.0025;
  double per_mb = 0.03;
  double per_scale = 0.0029;
};

/// The CNN-complexity model (Eq. 12).
class CnnComplexityModel {
 public:
  explicit CnnComplexityModel(
      CnnComplexityCoefficients coef = CnnComplexityCoefficients{});

  /// C_CNN for raw attributes. Throws std::invalid_argument on negative
  /// inputs.
  [[nodiscard]] double evaluate(double depth_layers, double storage_mb,
                                double depth_scale) const;
  /// C_CNN for a zoo entry.
  [[nodiscard]] double evaluate(const CnnSpec& spec) const;

  [[nodiscard]] const CnnComplexityCoefficients& coefficients()
      const noexcept {
    return coef_;
  }

  /// Feature set for refitting via xr::math::LinearModel; raw rows are
  /// {depth, storage_mb, depth_scale} and the model has an intercept.
  [[nodiscard]] static std::vector<math::Feature> regression_features();
  [[nodiscard]] static CnnComplexityModel from_fitted(
      const std::vector<double>& beta);

 private:
  CnnComplexityCoefficients coef_;
};

}  // namespace xr::devices
