#include "devices/cnn.h"

#include <stdexcept>
#include <unordered_map>

#include "devices/memo.h"

namespace xr::devices {

const std::vector<CnnSpec>& cnn_zoo() {
  static const std::vector<CnnSpec> zoo = {
      // name, depth, storage MB, depth-scale, gpu, quantized, edge-class
      {"MobileNetv1_240_Float", 31, 16.9, 0.0, true, false, false},
      {"MobileNetv1_240_Quant", 31, 4.3, 0.0, false, true, false},
      {"MobileNetv2_300_Float", 99, 24.2, 0.0, true, false, false},
      {"MobileNetv2_300_Quant", 112, 6.9, 0.0, false, true, false},
      {"MobileNetv2_640_Float", 155, 12.3, 0.0, true, false, false},
      {"MobileNetv2_640_Quant", 167, 4.5, 0.0, false, true, false},
      {"EfficientNet_Float", 62, 18.6, 0.0, true, false, false},
      {"EfficientNet_Quant", 65, 5.4, 0.0, false, true, false},
      {"NasNet_Float", 663, 21.4, 0.0, true, false, false},
      {"YoloV3", 106, 210.0, 0.0, true, false, true},
      {"YoloV7", 0, 142.8, 1.5, true, false, true},
  };
  return zoo;
}

namespace {

const CnnSpec* find_cnn(const std::string& name) {
  for (const auto& c : cnn_zoo())
    if (c.name == name) return &c;
  return nullptr;
}

}  // namespace

const CnnSpec& cnn_by_name(const std::string& name) {
  // The zoo scan runs once per (thread, name): zoo entries live in a
  // function-local static, so the cached pointers stay valid for the
  // process lifetime. Unknown names are never cached (they throw).
  count_submodel_lookup();
  if (submodel_memoization_enabled()) {
    thread_local std::unordered_map<std::string, const CnnSpec*> cache;
    if (const auto it = cache.find(name); it != cache.end())
      return *it->second;
    if (const CnnSpec* spec = find_cnn(name)) {
      cache.emplace(name, spec);
      return *spec;
    }
  } else if (const CnnSpec* spec = find_cnn(name)) {
    return *spec;
  }
  throw std::out_of_range("cnn_by_name: unknown CNN " + name);
}

CnnComplexityModel::CnnComplexityModel(CnnComplexityCoefficients coef)
    : coef_(coef) {}

double CnnComplexityModel::evaluate(double depth_layers, double storage_mb,
                                    double depth_scale) const {
  if (depth_layers < 0 || storage_mb < 0 || depth_scale < 0)
    throw std::invalid_argument("CnnComplexityModel: negative attribute");
  return coef_.intercept + coef_.per_layer * depth_layers +
         coef_.per_mb * storage_mb + coef_.per_scale * depth_scale;
}

double CnnComplexityModel::evaluate(const CnnSpec& spec) const {
  return evaluate(double(spec.depth_layers), spec.storage_mb,
                  spec.depth_scale);
}

std::vector<math::Feature> CnnComplexityModel::regression_features() {
  return {math::raw_feature("d_cnn", 0), math::raw_feature("s_cnn", 1),
          math::raw_feature("d_scale", 2)};
}

CnnComplexityModel CnnComplexityModel::from_fitted(
    const std::vector<double>& beta) {
  if (beta.size() != 4)
    throw std::invalid_argument(
        "CnnComplexityModel::from_fitted: expected 4 coefficients");
  return CnnComplexityModel(
      CnnComplexityCoefficients{beta[0], beta[1], beta[2], beta[3]});
}

}  // namespace xr::devices
