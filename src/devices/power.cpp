#include "devices/power.h"

#include <algorithm>
#include <stdexcept>

namespace xr::devices {

PowerModel::PowerModel(PowerCoefficients coef, double base_power_mw,
                       double thermal_fraction, double scale)
    : coef_(coef), base_mw_(base_power_mw), theta_(thermal_fraction),
      scale_(scale) {
  if (base_power_mw < 0)
    throw std::invalid_argument("PowerModel: negative base power");
  if (thermal_fraction < 0 || thermal_fraction >= 1)
    throw std::invalid_argument("PowerModel: thermal fraction in [0, 1)");
  if (scale <= 0) throw std::invalid_argument("PowerModel: scale > 0");
}

double PowerModel::cpu_branch(double cpu_ghz) const {
  if (cpu_ghz <= 0)
    throw std::invalid_argument("PowerModel: cpu clock > 0");
  return coef_.cpu_linear * cpu_ghz +
         coef_.cpu_quadratic * cpu_ghz * cpu_ghz + coef_.cpu_intercept;
}

double PowerModel::gpu_branch(double gpu_ghz) const {
  if (gpu_ghz <= 0)
    throw std::invalid_argument("PowerModel: gpu clock > 0");
  return coef_.gpu_linear * gpu_ghz +
         coef_.gpu_quadratic * gpu_ghz * gpu_ghz + coef_.gpu_intercept;
}

double PowerModel::mean_power_mw(double cpu_ghz, double gpu_ghz,
                                 double omega_c) const {
  if (omega_c < 0 || omega_c > 1)
    throw std::invalid_argument("PowerModel: omega_c in [0, 1]");
  double p = 0.0;
  if (omega_c > 0) p += omega_c * cpu_branch(cpu_ghz);
  if (omega_c < 1) p += (1.0 - omega_c) * gpu_branch(gpu_ghz);
  return std::max(p * scale_, 10.0);
}

double PowerModel::segment_energy_mj(double duration_ms, double cpu_ghz,
                                     double gpu_ghz, double omega_c) const {
  if (duration_ms < 0)
    throw std::invalid_argument("PowerModel: negative duration");
  // mW * ms = µJ; divide by 1000 for mJ.
  return mean_power_mw(cpu_ghz, gpu_ghz, omega_c) * duration_ms / 1000.0;
}

double PowerModel::base_energy_mj(double duration_ms) const {
  if (duration_ms < 0)
    throw std::invalid_argument("PowerModel: negative duration");
  return base_mw_ * duration_ms / 1000.0;
}

double PowerModel::thermal_energy_mj(double electrical_mj) const {
  if (electrical_mj < 0)
    throw std::invalid_argument("PowerModel: negative energy");
  return theta_ * electrical_mj;
}

std::vector<math::Feature> PowerModel::regression_features() {
  using math::Feature;
  const auto fc = [](const std::vector<double>& x) { return x.at(0); };
  const auto fg = [](const std::vector<double>& x) { return x.at(1); };
  const auto wc = [](const std::vector<double>& x) { return x.at(2); };
  return {
      Feature{"wc*fc",
              [wc, fc](const std::vector<double>& x) {
                return wc(x) * fc(x);
              }},
      Feature{"wc*fc^2",
              [wc, fc](const std::vector<double>& x) {
                return wc(x) * fc(x) * fc(x);
              }},
      Feature{"wc", [wc](const std::vector<double>& x) { return wc(x); }},
      Feature{"(1-wc)*fg",
              [wc, fg](const std::vector<double>& x) {
                return (1.0 - wc(x)) * fg(x);
              }},
      Feature{"(1-wc)*fg^2",
              [wc, fg](const std::vector<double>& x) {
                return (1.0 - wc(x)) * fg(x) * fg(x);
              }},
      Feature{"(1-wc)",
              [wc](const std::vector<double>& x) { return 1.0 - wc(x); }},
  };
}

PowerModel PowerModel::from_fitted(const std::vector<double>& beta,
                                   double base_power_mw,
                                   double thermal_fraction, double scale) {
  if (beta.size() != 6)
    throw std::invalid_argument(
        "PowerModel::from_fitted: expected 6 coefficients");
  PowerCoefficients c;
  c.cpu_linear = beta[0];
  c.cpu_quadratic = beta[1];
  c.cpu_intercept = beta[2];
  c.gpu_linear = beta[3];
  c.gpu_quadratic = beta[4];
  c.gpu_intercept = beta[5];
  return PowerModel(c, base_power_mw, thermal_fraction, scale);
}

}  // namespace xr::devices
