// Device catalog — Table I of the paper as data.
//
// Seven XR devices (phones, Google Glass, Quest 2, Jetson TX2) and the edge
// servers (Jetson TX2 / AGX Xavier) with the hardware attributes the models
// consume: CPU/GPU clocks, RAM size, memory bandwidth, OS, Wi-Fi standard,
// and role. The regression training/testing split of §VII (train on XR1/3/5/6,
// test on XR2/4/7) is encoded here too.
#pragma once

#include <string>
#include <vector>

namespace xr::devices {

/// Whether a device acts as the XR client, an external sensor platform, or
/// an edge server in the testbed.
enum class DeviceRole { kXrClient, kExternalSensor, kEdgeServer };

/// Dataset split of §VII.
enum class DatasetSplit { kTrain, kTest };

/// One row of Table I plus the derived attributes the framework needs.
struct DeviceSpec {
  std::string id;            ///< "XR1" ... "XR7", "EDGE".
  std::string model_name;    ///< e.g. "Huawei Mate 40 Pro".
  std::string soc;           ///< e.g. "Kirin 9000 (5 nm)".
  int cpu_cores = 0;
  double max_cpu_ghz = 0;    ///< fastest core cluster clock.
  double max_gpu_ghz = 0;    ///< approximate GPU clock.
  std::string gpu_name;
  double ram_gb = 0;
  /// Peak memory bandwidth (GB/s) implied by the RAM technology: LPDDR4
  /// ≈ 13–17, LPDDR4X ≈ 17–34, LPDDR5 ≈ 44–51.
  double memory_bandwidth_gbps = 0;
  std::string os;
  std::string wifi;          ///< 802.11 amendment list.
  std::string release_date;
  DeviceRole role = DeviceRole::kXrClient;
  DatasetSplit split = DatasetSplit::kTrain;
  bool has_gpu_delegate = true;  ///< CNN GPU offload supported.
};

/// All Table I devices (7 XR devices + the AGX Xavier edge server).
[[nodiscard]] const std::vector<DeviceSpec>& device_catalog();

/// Lookup by id ("XR1".."XR7", "EDGE"). Throws std::out_of_range if unknown.
[[nodiscard]] const DeviceSpec& device_by_id(const std::string& id);

/// The §VII training devices (XR1, XR3, XR5, XR6).
[[nodiscard]] std::vector<DeviceSpec> training_devices();
/// The §VII held-out test devices (XR2, XR4, XR7).
[[nodiscard]] std::vector<DeviceSpec> test_devices();
/// The edge server spec (Jetson AGX Xavier).
[[nodiscard]] const DeviceSpec& edge_server();

}  // namespace xr::devices
