#include "devices/device.h"

#include <stdexcept>

namespace xr::devices {

const std::vector<DeviceSpec>& device_catalog() {
  static const std::vector<DeviceSpec> catalog = [] {
    std::vector<DeviceSpec> d;
    d.push_back(DeviceSpec{
        "XR1", "Huawei Mate 40 Pro", "Kirin 9000 (5 nm)", 8, 3.13, 0.76,
        "Mali G78", 8, 44.0, "Android 10", "a/b/g/n/ac/ax", "2020-10",
        DeviceRole::kXrClient, DatasetSplit::kTrain, true});
    d.push_back(DeviceSpec{
        "XR2", "OnePlus 8 Pro", "Snapdragon 865 (7 nm)", 8, 2.84, 0.587,
        "Adreno 650", 8, 44.0, "Android 10", "a/b/g/n/ac/ax", "2020-04",
        DeviceRole::kXrClient, DatasetSplit::kTest, true});
    d.push_back(DeviceSpec{
        "XR3", "Motorola One Macro", "Helio P70 (12 nm)", 8, 2.0, 0.9,
        "Mali G72", 4, 14.9, "Android 9", "b/g/n", "2019-10",
        DeviceRole::kXrClient, DatasetSplit::kTrain, true});
    d.push_back(DeviceSpec{
        "XR4", "Xiaomi Redmi Note8", "Snapdragon 665 (11 nm)", 8, 2.0, 0.6,
        "Adreno 610", 4, 14.9, "Android 10", "a/b/g/n/ac", "2020-08",
        DeviceRole::kXrClient, DatasetSplit::kTest, true});
    d.push_back(DeviceSpec{
        "XR5", "Google Glass Enterprise Ed. 2", "Snapdragon XR1", 8, 2.52,
        0.7, "Adreno 615", 3, 14.9, "Android 8.1", "a/g/b/n/ac", "2019-05",
        DeviceRole::kXrClient, DatasetSplit::kTrain, true});
    d.push_back(DeviceSpec{
        "XR6", "Meta Quest 2", "Snapdragon XR2", 8, 2.84, 0.587,
        "Adreno 650", 6, 44.0, "Oculus OS", "a/g/b/n/ac/ax", "2020-10",
        DeviceRole::kXrClient, DatasetSplit::kTrain, true});
    d.push_back(DeviceSpec{
        "XR7", "Nvidia Jetson TX2", "Tegra (Denver2 + A57)", 6, 2.0, 1.3,
        "256-core Pascal", 8, 59.7, "Ubuntu 18.04", "-", "2017-03",
        DeviceRole::kExternalSensor, DatasetSplit::kTest, true});
    d.push_back(DeviceSpec{
        "EDGE", "Nvidia Jetson AGX Xavier", "Tegra (8x ARM v8.2)", 8, 2.27,
        1.377, "512-core Volta (Tensor Cores)", 32, 136.5,
        "Ubuntu 18.04 LTS aarch64", "-", "2018-10", DeviceRole::kEdgeServer,
        DatasetSplit::kTest, true});
    return d;
  }();
  return catalog;
}

const DeviceSpec& device_by_id(const std::string& id) {
  for (const auto& d : device_catalog())
    if (d.id == id) return d;
  throw std::out_of_range("device_by_id: unknown device " + id);
}

std::vector<DeviceSpec> training_devices() {
  std::vector<DeviceSpec> out;
  for (const auto& d : device_catalog())
    if (d.split == DatasetSplit::kTrain) out.push_back(d);
  return out;
}

std::vector<DeviceSpec> test_devices() {
  std::vector<DeviceSpec> out;
  for (const auto& d : device_catalog())
    if (d.split == DatasetSplit::kTest && d.role != DeviceRole::kEdgeServer)
      out.push_back(d);
  return out;
}

const DeviceSpec& edge_server() { return device_by_id("EDGE"); }

}  // namespace xr::devices
