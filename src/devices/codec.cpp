#include "devices/codec.h"

#include <algorithm>
#include <stdexcept>

namespace xr::devices {

CodecModel::CodecModel(EncodingCoefficients coef, double decode_discount)
    : coef_(coef), gamma_(decode_discount) {
  if (decode_discount <= 0 || decode_discount > 1)
    throw std::invalid_argument("CodecModel: discount in (0, 1]");
}

double CodecModel::encode_work(double frame_size,
                               const H264Config& cfg) const {
  if (frame_size <= 0)
    throw std::invalid_argument("CodecModel: frame size must be > 0");
  const double work =
      coef_.intercept + coef_.per_i_interval * cfg.i_frame_interval +
      coef_.per_b_interval * cfg.b_frame_interval +
      coef_.per_bitrate * cfg.bitrate_mbps +
      coef_.per_frame_size * frame_size + coef_.per_fps * cfg.fps +
      coef_.per_quant * cfg.quantization;
  return std::max(work, 1.0);
}

double CodecModel::encode_latency_ms(double frame_size, const H264Config& cfg,
                                     double client_resource,
                                     double data_size_mb,
                                     double memory_bandwidth_gbps) const {
  if (client_resource <= 0)
    throw std::invalid_argument("CodecModel: resource must be > 0");
  if (memory_bandwidth_gbps <= 0)
    throw std::invalid_argument("CodecModel: bandwidth must be > 0");
  if (data_size_mb < 0)
    throw std::invalid_argument("CodecModel: negative data size");
  return encode_work(frame_size, cfg) / client_resource +
         data_size_mb / memory_bandwidth_gbps;
}

double CodecModel::decode_latency_ms(double encode_latency_ms,
                                     double client_resource,
                                     double edge_resource) const {
  if (encode_latency_ms < 0)
    throw std::invalid_argument("CodecModel: negative encode latency");
  if (client_resource <= 0 || edge_resource <= 0)
    throw std::invalid_argument("CodecModel: resources must be > 0");
  return encode_latency_ms * client_resource * gamma_ / edge_resource;
}

double CodecModel::encoded_size_mb(double frame_size,
                                   const H264Config& cfg) const {
  if (frame_size <= 0)
    throw std::invalid_argument("CodecModel: frame size must be > 0");
  if (cfg.fps <= 0)
    throw std::invalid_argument("CodecModel: fps must be > 0");
  // Bitrate budget per frame (Mbit → MB) plus a small resolution-dependent
  // floor: rate control cannot compress syntax overhead away.
  const double rate_budget_mb = cfg.bitrate_mbps / cfg.fps / 8.0;
  const double floor_mb = 4.0e-7 * frame_size * frame_size;
  return rate_budget_mb + floor_mb;
}

std::vector<math::Feature> CodecModel::regression_features() {
  return {math::raw_feature("n_i", 0),      math::raw_feature("n_b", 1),
          math::raw_feature("n_bitrate", 2), math::raw_feature("s_f1", 3),
          math::raw_feature("n_fps", 4),    math::raw_feature("n_quant", 5)};
}

CodecModel CodecModel::from_fitted(const std::vector<double>& beta,
                                   double decode_discount) {
  if (beta.size() != 7)
    throw std::invalid_argument(
        "CodecModel::from_fitted: expected 7 coefficients");
  EncodingCoefficients c;
  c.intercept = beta[0];
  c.per_i_interval = beta[1];
  c.per_b_interval = beta[2];
  c.per_bitrate = beta[3];
  c.per_frame_size = beta[4];
  c.per_fps = beta[5];
  c.per_quant = beta[6];
  return CodecModel(c, decode_discount);
}

}  // namespace xr::devices
