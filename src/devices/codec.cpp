#include "devices/codec.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "devices/memo.h"

namespace xr::devices {

namespace {

/// Cache key for the Eq. (10) curves: every input that feeds the result,
/// and nothing else — for encode_work that is the frame size, the full
/// H.264 configuration, and the model's own coefficients (CodecModel
/// instances can carry refitted coefficients, so keying on `this` would
/// alias across instances); encoded_size_mb reads only (frame size,
/// bitrate, fps) and keys on exactly those. Keys compare bitwise, which is
/// exactly the identity the memo needs.
template <std::size_t N>
struct CodecCurveKey {
  double values[N];

  bool operator==(const CodecCurveKey& other) const noexcept {
    return std::memcmp(values, other.values, sizeof values) == 0;
  }
};

struct CodecCurveKeyHash {
  template <std::size_t N>
  std::size_t operator()(const CodecCurveKey<N>& k) const noexcept {
    std::size_t h = 0;
    for (double v : k.values) {
      std::uint64_t bits;
      std::memcpy(&bits, &v, sizeof bits);
      h ^= std::hash<std::uint64_t>{}(bits) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
    }
    return h;
  }
};

template <std::size_t N>
using CodecCurveCache =
    std::unordered_map<CodecCurveKey<N>, double, CodecCurveKeyHash>;

/// Sweeps revisit a handful of codec operating points; cap the per-thread
/// cache so a pathological axis cannot grow it without bound.
constexpr std::size_t kCodecCacheCap = 4096;

CodecCurveKey<13> encode_work_key(const EncodingCoefficients& coef,
                                  double frame_size, const H264Config& cfg) {
  return CodecCurveKey<13>{{coef.intercept, coef.per_i_interval,
                            coef.per_b_interval, coef.per_bitrate,
                            coef.per_frame_size, coef.per_fps,
                            coef.per_quant, frame_size,
                            cfg.i_frame_interval, cfg.b_frame_interval,
                            cfg.bitrate_mbps, cfg.fps, cfg.quantization}};
}

template <std::size_t N, typename Compute>
double memoized_curve(CodecCurveCache<N>& cache, const CodecCurveKey<N>& key,
                      Compute&& compute) {
  if (const auto it = cache.find(key); it != cache.end()) return it->second;
  const double value = compute();
  if (cache.size() >= kCodecCacheCap) cache.clear();
  cache.emplace(key, value);
  return value;
}

}  // namespace

CodecModel::CodecModel(EncodingCoefficients coef, double decode_discount)
    : coef_(coef), gamma_(decode_discount) {
  if (decode_discount <= 0 || decode_discount > 1)
    throw std::invalid_argument("CodecModel: discount in (0, 1]");
}

double CodecModel::encode_work(double frame_size,
                               const H264Config& cfg) const {
  if (frame_size <= 0)
    throw std::invalid_argument("CodecModel: frame size must be > 0");
  count_submodel_lookup();
  const auto compute = [&] {
    const double work =
        coef_.intercept + coef_.per_i_interval * cfg.i_frame_interval +
        coef_.per_b_interval * cfg.b_frame_interval +
        coef_.per_bitrate * cfg.bitrate_mbps +
        coef_.per_frame_size * frame_size + coef_.per_fps * cfg.fps +
        coef_.per_quant * cfg.quantization;
    return std::max(work, 1.0);
  };
  if (!submodel_memoization_enabled()) return compute();
  thread_local CodecCurveCache<13> cache;
  return memoized_curve(cache, encode_work_key(coef_, frame_size, cfg),
                        compute);
}

double CodecModel::encode_latency_ms(double frame_size, const H264Config& cfg,
                                     double client_resource,
                                     double data_size_mb,
                                     double memory_bandwidth_gbps) const {
  if (client_resource <= 0)
    throw std::invalid_argument("CodecModel: resource must be > 0");
  if (memory_bandwidth_gbps <= 0)
    throw std::invalid_argument("CodecModel: bandwidth must be > 0");
  if (data_size_mb < 0)
    throw std::invalid_argument("CodecModel: negative data size");
  return encode_work(frame_size, cfg) / client_resource +
         data_size_mb / memory_bandwidth_gbps;
}

double CodecModel::decode_latency_ms(double encode_latency_ms,
                                     double client_resource,
                                     double edge_resource) const {
  if (encode_latency_ms < 0)
    throw std::invalid_argument("CodecModel: negative encode latency");
  if (client_resource <= 0 || edge_resource <= 0)
    throw std::invalid_argument("CodecModel: resources must be > 0");
  return encode_latency_ms * client_resource * gamma_ / edge_resource;
}

double CodecModel::encoded_size_mb(double frame_size,
                                   const H264Config& cfg) const {
  if (frame_size <= 0)
    throw std::invalid_argument("CodecModel: frame size must be > 0");
  if (cfg.fps <= 0)
    throw std::invalid_argument("CodecModel: fps must be > 0");
  count_submodel_lookup();
  const auto compute = [&] {
    // Bitrate budget per frame (Mbit → MB) plus a small resolution-
    // dependent floor: rate control cannot compress syntax overhead away.
    const double rate_budget_mb = cfg.bitrate_mbps / cfg.fps / 8.0;
    const double floor_mb = 4.0e-7 * frame_size * frame_size;
    return rate_budget_mb + floor_mb;
  };
  if (!submodel_memoization_enabled()) return compute();
  thread_local CodecCurveCache<3> cache;
  return memoized_curve(
      cache,
      CodecCurveKey<3>{{frame_size, cfg.bitrate_mbps, cfg.fps}}, compute);
}

std::vector<math::Feature> CodecModel::regression_features() {
  return {math::raw_feature("n_i", 0),      math::raw_feature("n_b", 1),
          math::raw_feature("n_bitrate", 2), math::raw_feature("s_f1", 3),
          math::raw_feature("n_fps", 4),    math::raw_feature("n_quant", 5)};
}

CodecModel CodecModel::from_fitted(const std::vector<double>& beta,
                                   double decode_discount) {
  if (beta.size() != 7)
    throw std::invalid_argument(
        "CodecModel::from_fitted: expected 7 coefficients");
  EncodingCoefficients c;
  c.intercept = beta[0];
  c.per_i_interval = beta[1];
  c.per_b_interval = beta[2];
  c.per_bitrate = beta[3];
  c.per_frame_size = beta[4];
  c.per_fps = beta[5];
  c.per_quant = beta[6];
  return CodecModel(c, decode_discount);
}

}  // namespace xr::devices
