// Computation-resource allocation model — Eq. (3).
//
// The paper finds that "available computation resources are a tuple of
// processing speed, memory size, and allocated resources determined by the
// application itself and the OS", and models the allocated resource c_client
// by multiple linear regression over CPU/GPU clock frequencies and the CPU
// utilization share ω_c:
//
//   c_client = ω_c (18.24 + 1.84 f_c² − 6.02 f_c)
//            + (1 − ω_c)(193.67 + 400.96 f_g² − 558.29 f_g)     (Eq. 3)
//
// with reported R² = 0.87. The quadratics are only valid inside the fitted
// clock range; `valid_range()` documents it and evaluate() clamps to a small
// positive floor so downstream divisions stay finite.
#pragma once

#include "math/regression.h"

namespace xr::devices {

/// Allocated-resource tuple as the paper defines it: the effective resource
/// scalar used in the latency equations plus the memory bandwidth that forms
/// the second component of every segment latency (δ/m terms).
struct ComputeResources {
  double resource;             ///< c_client / c_ε (paper's internal unit).
  double memory_bandwidth_gbps;  ///< m_client / m_ε in GB/s.
};

/// The per-branch quadratic coefficients of Eq. (3).
struct AllocationCoefficients {
  // CPU branch: a0 + a2 f_c² + a1 f_c.
  double cpu_intercept = 18.24;
  double cpu_quadratic = 1.84;
  double cpu_linear = -6.02;
  // GPU branch: b0 + b2 f_g² + b1 f_g.
  double gpu_intercept = 193.67;
  double gpu_quadratic = 400.96;
  double gpu_linear = -558.29;
};

/// Eq. (3) with the paper's printed coefficients.
[[nodiscard]] AllocationCoefficients paper_allocation_coefficients() noexcept;

/// The compute-allocation model. Immutable after construction; refitting
/// produces a new instance (see testbed/calibration).
class ComputeAllocationModel {
 public:
  explicit ComputeAllocationModel(
      AllocationCoefficients coef = paper_allocation_coefficients());

  /// Eq. (3): allocated resource for CPU clock f_c (GHz), GPU clock f_g
  /// (GHz), CPU utilization share omega_c in [0, 1]. Result floored at
  /// `min_resource()` to keep downstream s/c divisions finite.
  /// Throws std::invalid_argument for out-of-domain omega_c or non-positive
  /// clocks.
  [[nodiscard]] double evaluate(double cpu_ghz, double gpu_ghz,
                                double omega_c) const;

  /// CPU-only / GPU-only conveniences.
  [[nodiscard]] double cpu_branch(double cpu_ghz) const;
  [[nodiscard]] double gpu_branch(double gpu_ghz) const;

  [[nodiscard]] const AllocationCoefficients& coefficients() const noexcept {
    return coef_;
  }

  /// Clock range (GHz) inside which the quadratic fits are meaningful
  /// (Table I devices span roughly 1.7–3.13 GHz CPU, 0.6–1.3 GHz GPU).
  struct Range {
    double cpu_lo = 0.5, cpu_hi = 3.2;
    double gpu_lo = 0.4, gpu_hi = 1.5;
  };
  [[nodiscard]] static Range valid_range() noexcept { return {}; }

  /// Floor applied to the evaluated resource.
  [[nodiscard]] static double min_resource() noexcept { return 0.5; }

  /// Feature set for refitting Eq. (3) via xr::math::LinearModel. Raw input
  /// rows are {f_c, f_g, omega_c}; the regression has no intercept because
  /// the two branches carry their own intercepts through the ω_c weights.
  [[nodiscard]] static std::vector<math::Feature> regression_features();

  /// Build a model from coefficients fitted with regression_features():
  /// order {wc, wc*fc², wc*fc, (1-wc), (1-wc)*fg², (1-wc)*fg}.
  [[nodiscard]] static ComputeAllocationModel from_fitted(
      const std::vector<double>& beta);

 private:
  AllocationCoefficients coef_;
};

/// Paper relation derived from Eq. (14)'s experiments: the edge server's
/// allocated resource relative to the XR device, c_ε = 11.76 c_client.
inline constexpr double kEdgeResourceRatio = 11.76;

}  // namespace xr::devices
