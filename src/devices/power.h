// Power-consumption model — Eq. (21), base power, and heat dissipation.
//
// The paper models the mean power draw of an XR device during an application
// as a regression over the allocated CPU/GPU resources:
//
//   P_mean = ω_c (18.85 f_c − 3.64 f_c² − 20.74)
//          + (1 − ω_c)(187.48 f_g − 135.11 f_g² − 62.197)        (Eq. 21)
//
// with reported R² = 0.863 (units: internal power unit ≈ mW/100; we use mW
// after a documented scale). Energy per segment is ∫P dt (Eq. 20); two extra
// terms complete the balance: base energy E_base (OS background + leakage)
// and thermal conversion E_θ (a fraction of total electrical energy
// dissipated as heat).
#pragma once

#include "math/regression.h"

namespace xr::devices {

/// Per-branch coefficients of Eq. (21): c1 f − c2 f² − c0.
struct PowerCoefficients {
  double cpu_linear = 18.85;
  double cpu_quadratic = -3.64;
  double cpu_intercept = -20.74;
  double gpu_linear = 187.48;
  double gpu_quadratic = -135.11;
  double gpu_intercept = -62.197;
};

/// Mean-power model with base power and heat-dissipation accounting.
class PowerModel {
 public:
  /// base_power_mw: P_base, the always-on draw from OS background activity
  /// and leakage current. thermal_fraction: share of total electrical energy
  /// converted to heat (E_θ), in [0, 1). scale: multiplier converting the
  /// regression's internal unit to mW (default 100).
  explicit PowerModel(PowerCoefficients coef = PowerCoefficients{},
                      double base_power_mw = 350.0,
                      double thermal_fraction = 0.06, double scale = 100.0);

  /// Eq. (21): mean application power (mW) for clocks (GHz) and CPU share
  /// omega_c in [0, 1]. Floored at a small positive value (regressions
  /// extrapolate negative below ~1 GHz CPU-only).
  [[nodiscard]] double mean_power_mw(double cpu_ghz, double gpu_ghz,
                                     double omega_c) const;

  [[nodiscard]] double cpu_branch(double cpu_ghz) const;
  [[nodiscard]] double gpu_branch(double gpu_ghz) const;

  /// Energy (mJ) of a segment of `duration_ms` at the mean power for the
  /// given allocation — one term of Eq. (20).
  [[nodiscard]] double segment_energy_mj(double duration_ms, double cpu_ghz,
                                         double gpu_ghz, double omega_c) const;

  /// E_base over a window: base power integrated over the duration.
  [[nodiscard]] double base_energy_mj(double duration_ms) const;

  /// E_θ: thermal energy for a given total electrical energy.
  [[nodiscard]] double thermal_energy_mj(double electrical_mj) const;

  [[nodiscard]] double base_power_mw() const noexcept { return base_mw_; }
  [[nodiscard]] double thermal_fraction() const noexcept { return theta_; }
  [[nodiscard]] const PowerCoefficients& coefficients() const noexcept {
    return coef_;
  }

  /// Feature set for refitting Eq. (21); raw rows {f_c, f_g, omega_c},
  /// no intercept (branch intercepts are carried by the ω features).
  [[nodiscard]] static std::vector<math::Feature> regression_features();
  [[nodiscard]] static PowerModel from_fitted(const std::vector<double>& beta,
                                              double base_power_mw,
                                              double thermal_fraction,
                                              double scale = 100.0);

 private:
  PowerCoefficients coef_;
  double base_mw_;
  double theta_;
  double scale_;
};

}  // namespace xr::devices
