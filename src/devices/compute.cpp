#include "devices/compute.h"

#include <algorithm>
#include <stdexcept>

namespace xr::devices {

AllocationCoefficients paper_allocation_coefficients() noexcept {
  return AllocationCoefficients{};
}

ComputeAllocationModel::ComputeAllocationModel(AllocationCoefficients coef)
    : coef_(coef) {}

double ComputeAllocationModel::cpu_branch(double cpu_ghz) const {
  if (cpu_ghz <= 0)
    throw std::invalid_argument("ComputeAllocationModel: cpu clock > 0");
  return coef_.cpu_intercept + coef_.cpu_quadratic * cpu_ghz * cpu_ghz +
         coef_.cpu_linear * cpu_ghz;
}

double ComputeAllocationModel::gpu_branch(double gpu_ghz) const {
  if (gpu_ghz <= 0)
    throw std::invalid_argument("ComputeAllocationModel: gpu clock > 0");
  return coef_.gpu_intercept + coef_.gpu_quadratic * gpu_ghz * gpu_ghz +
         coef_.gpu_linear * gpu_ghz;
}

double ComputeAllocationModel::evaluate(double cpu_ghz, double gpu_ghz,
                                        double omega_c) const {
  if (omega_c < 0.0 || omega_c > 1.0)
    throw std::invalid_argument(
        "ComputeAllocationModel: omega_c must be in [0, 1]");
  // A branch with zero weight is not evaluated, so a pure-CPU allocation
  // does not require a valid GPU clock (and vice versa).
  double value = 0.0;
  if (omega_c > 0.0) value += omega_c * cpu_branch(cpu_ghz);
  if (omega_c < 1.0) value += (1.0 - omega_c) * gpu_branch(gpu_ghz);
  return std::max(value, min_resource());
}

std::vector<math::Feature> ComputeAllocationModel::regression_features() {
  using math::Feature;
  // Raw row: {f_c, f_g, omega_c}.
  const auto fc = [](const std::vector<double>& x) { return x.at(0); };
  const auto fg = [](const std::vector<double>& x) { return x.at(1); };
  const auto wc = [](const std::vector<double>& x) { return x.at(2); };
  return {
      Feature{"wc", [wc](const std::vector<double>& x) { return wc(x); }},
      Feature{"wc*fc^2",
              [wc, fc](const std::vector<double>& x) {
                return wc(x) * fc(x) * fc(x);
              }},
      Feature{"wc*fc",
              [wc, fc](const std::vector<double>& x) {
                return wc(x) * fc(x);
              }},
      Feature{"(1-wc)",
              [wc](const std::vector<double>& x) { return 1.0 - wc(x); }},
      Feature{"(1-wc)*fg^2",
              [wc, fg](const std::vector<double>& x) {
                return (1.0 - wc(x)) * fg(x) * fg(x);
              }},
      Feature{"(1-wc)*fg",
              [wc, fg](const std::vector<double>& x) {
                return (1.0 - wc(x)) * fg(x);
              }},
  };
}

ComputeAllocationModel ComputeAllocationModel::from_fitted(
    const std::vector<double>& beta) {
  if (beta.size() != 6)
    throw std::invalid_argument(
        "ComputeAllocationModel::from_fitted: expected 6 coefficients");
  AllocationCoefficients c;
  c.cpu_intercept = beta[0];
  c.cpu_quadratic = beta[1];
  c.cpu_linear = beta[2];
  c.gpu_intercept = beta[3];
  c.gpu_quadratic = beta[4];
  c.gpu_linear = beta[5];
  return ComputeAllocationModel(c);
}

}  // namespace xr::devices
