// H.264 encode/decode latency models — Eqs. (10) and (14).
//
// The paper models the H.264 frame-encoding latency by multiple linear
// regression over the codec configuration (I-frame interval, B-frame
// interval, bitrate, frame size, frame rate, quantization), divided by the
// allocated compute resource, plus the buffer read term δ/m:
//
//   L_en = (−574.36 − 7.71 n_i + 142.61 n_b + 53.38 n_bitrate + 1.43 s_f1
//           + 163.65 n_fps + 3.62 n_quant) / c_client + δ_f1/m_client  (Eq.10)
//
// with reported R² = 0.79. Decoding reconstructs frames in about one third
// of the encode time on the same hardware ("discount rate" γ ≈ 1/3):
//
//   L_dec = L_en · c_client · γ / c_ε                              (Eq. 14)
#pragma once

#include "math/regression.h"

namespace xr::devices {

/// H.264 configuration, the regressors of Eq. (10).
struct H264Config {
  double i_frame_interval = 30;   ///< n_i: frames between I-frames.
  double b_frame_interval = 2;    ///< n_b: consecutive B-frames.
  double bitrate_mbps = 4;        ///< n_bitrate.
  double fps = 30;                ///< n_fps.
  double quantization = 28;       ///< n_quant (QP).
};

/// Coefficients of the Eq. (10) numerator polynomial.
struct EncodingCoefficients {
  double intercept = -574.36;
  double per_i_interval = -7.71;
  double per_b_interval = 142.61;
  double per_bitrate = 53.38;
  double per_frame_size = 1.43;
  double per_fps = 163.65;
  double per_quant = 3.62;
};

/// Encode/decode latency model.
class CodecModel {
 public:
  explicit CodecModel(EncodingCoefficients coef = EncodingCoefficients{},
                      double decode_discount = 1.0 / 3.0);

  /// Numerator of Eq. (10) (compute work units) for a frame of size
  /// `frame_size` (the paper's pixel² axis value) under `cfg`.
  /// Floored at a small positive value: a regression extrapolated to tiny
  /// frames can go negative, which is unphysical.
  [[nodiscard]] double encode_work(double frame_size,
                                   const H264Config& cfg) const;

  /// Eq. (10): encode latency in ms given allocated resource and the buffer
  /// read term δ_f1/m_client (pass data size in MB and bandwidth in GB/s).
  [[nodiscard]] double encode_latency_ms(double frame_size,
                                         const H264Config& cfg,
                                         double client_resource,
                                         double data_size_mb,
                                         double memory_bandwidth_gbps) const;

  /// Eq. (14): decode latency in ms on the edge from the encode latency on
  /// the client.
  [[nodiscard]] double decode_latency_ms(double encode_latency_ms,
                                         double client_resource,
                                         double edge_resource) const;

  /// The paper's measured discount rate γ (decode/encode on equal hardware).
  [[nodiscard]] double decode_discount() const noexcept { return gamma_; }
  [[nodiscard]] const EncodingCoefficients& coefficients() const noexcept {
    return coef_;
  }

  /// Compression: encoded output size (MB) for a frame under `cfg`. The
  /// paper transmits δ_f3 (encoded data size); H.264 output is dominated by
  /// bitrate/fps with a size-dependent floor.
  [[nodiscard]] double encoded_size_mb(double frame_size,
                                       const H264Config& cfg) const;

  /// Feature set for refitting Eq. (10)'s numerator; raw rows are
  /// {n_i, n_b, n_bitrate, s_f1, n_fps, n_quant}, with intercept.
  [[nodiscard]] static std::vector<math::Feature> regression_features();
  [[nodiscard]] static CodecModel from_fitted(const std::vector<double>& beta,
                                              double decode_discount);

 private:
  EncodingCoefficients coef_;
  double gamma_;
};

}  // namespace xr::devices
