#include "devices/memo.h"

#include <atomic>

#include "obs/registry.h"

namespace xr::devices {

namespace {
std::atomic<bool> g_memoization_enabled{true};

#ifndef XR_OBS_DISABLED
// The counter now lives on the obs registry ("devices.submodel_lookups"),
// so it shows up in every snapshot next to the serving-tier counters; the
// accessors below stay as thin forwarders, preserving the proof-of-absence
// contract tests rely on (zero delta == submodels never consulted).
obs::Counter& lookup_counter() {
  static obs::Counter c("devices.submodel_lookups");
  return c;
}
#else
// The stub registry holds no state, but the proof-of-absence contract must
// survive the obs-off build — keep the original process-wide atomic.
std::atomic<std::uint64_t> g_lookup_count{0};
#endif
}  // namespace

void set_submodel_memoization(bool enabled) noexcept {
  g_memoization_enabled.store(enabled, std::memory_order_relaxed);
}

bool submodel_memoization_enabled() noexcept {
  return g_memoization_enabled.load(std::memory_order_relaxed);
}

std::uint64_t submodel_lookup_count() noexcept {
#ifndef XR_OBS_DISABLED
  return lookup_counter().value();
#else
  return g_lookup_count.load(std::memory_order_relaxed);
#endif
}

void count_submodel_lookup() noexcept {
#ifndef XR_OBS_DISABLED
  lookup_counter().add();
#else
  g_lookup_count.fetch_add(1, std::memory_order_relaxed);
#endif
}

}  // namespace xr::devices
