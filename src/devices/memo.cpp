#include "devices/memo.h"

#include <atomic>

namespace xr::devices {

namespace {
std::atomic<bool> g_memoization_enabled{true};
}  // namespace

void set_submodel_memoization(bool enabled) noexcept {
  g_memoization_enabled.store(enabled, std::memory_order_relaxed);
}

bool submodel_memoization_enabled() noexcept {
  return g_memoization_enabled.load(std::memory_order_relaxed);
}

}  // namespace xr::devices
