#include "devices/memo.h"

#include <atomic>

namespace xr::devices {

namespace {
std::atomic<bool> g_memoization_enabled{true};
std::atomic<std::uint64_t> g_lookup_count{0};
}  // namespace

void set_submodel_memoization(bool enabled) noexcept {
  g_memoization_enabled.store(enabled, std::memory_order_relaxed);
}

bool submodel_memoization_enabled() noexcept {
  return g_memoization_enabled.load(std::memory_order_relaxed);
}

std::uint64_t submodel_lookup_count() noexcept {
  return g_lookup_count.load(std::memory_order_relaxed);
}

void count_submodel_lookup() noexcept {
  g_lookup_count.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace xr::devices
