// Deterministic pseudo-random number generation and distributions.
//
// The framework's experiments must be exactly reproducible across runs and
// platforms, so we ship our own xoshiro256** generator (public-domain
// algorithm by Blackman & Vigna) seeded via SplitMix64, plus the handful of
// distributions the simulators need. std::*_distribution is deliberately
// avoided: its output is implementation-defined.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace xr::math {

/// SplitMix64 step — used for seeding and cheap stateless hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stable 64-bit hash of a string (FNV-1a), for deriving named RNG streams.
[[nodiscard]] std::uint64_t hash64(std::string_view s) noexcept;

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xD1CEB01DULL) noexcept;

  /// Uniform 64-bit integer.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (no cached spare: keeps state simple).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Lognormal with the given parameters of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential with rate lambda (> 0). Mean = 1/lambda.
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Derive an independent child generator for the named stream. The same
  /// (seed, name) pair always produces the same child, regardless of how many
  /// draws were made from the parent.
  [[nodiscard]] Rng stream(std::string_view name) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
  std::uint64_t seed_;
};

}  // namespace xr::math
