#include "math/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xr::math {

namespace {
void require_nonempty(const std::vector<double>& v, const char* who) {
  if (v.empty()) throw std::invalid_argument(std::string(who) + ": empty");
}
void require_same_size(const std::vector<double>& a,
                       const std::vector<double>& b, const char* who) {
  if (a.size() != b.size())
    throw std::invalid_argument(std::string(who) + ": length mismatch");
  require_nonempty(a, who);
}
}  // namespace

double mean(const std::vector<double>& v) {
  require_nonempty(v, "mean");
  double s = 0;
  for (double x : v) s += x;
  return s / double(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) throw std::invalid_argument("variance: need >= 2 samples");
  const double m = mean(v);
  double s = 0;
  for (double x : v) s += (x - m) * (x - m);
  return s / double(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) { return percentile(std::move(v), 50.0); }

double percentile(std::vector<double> v, double p) {
  require_nonempty(v, "percentile");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p must be in [0, 100]");
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = p / 100.0 * double(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - double(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double min_of(const std::vector<double>& v) {
  require_nonempty(v, "min_of");
  return *std::min_element(v.begin(), v.end());
}

double max_of(const std::vector<double>& v) {
  require_nonempty(v, "max_of");
  return *std::max_element(v.begin(), v.end());
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  require_same_size(a, b, "pearson");
  const double ma = mean(a), mb = mean(b);
  double num = 0, da = 0, db = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0 || db <= 0)
    throw std::invalid_argument("pearson: degenerate variance");
  return num / std::sqrt(da * db);
}

double mape(const std::vector<double>& truth,
            const std::vector<double>& predicted) {
  require_same_size(truth, predicted, "mape");
  double s = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 0.0)
      throw std::invalid_argument("mape: ground truth contains zero");
    s += std::abs((predicted[i] - truth[i]) / truth[i]);
  }
  return 100.0 * s / double(truth.size());
}

double rmse(const std::vector<double>& truth,
            const std::vector<double>& predicted) {
  require_same_size(truth, predicted, "rmse");
  double s = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = predicted[i] - truth[i];
    s += d * d;
  }
  return std::sqrt(s / double(truth.size()));
}

double mae(const std::vector<double>& truth,
           const std::vector<double>& predicted) {
  require_same_size(truth, predicted, "mae");
  double s = 0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    s += std::abs(predicted[i] - truth[i]);
  return s / double(truth.size());
}

double normalized_accuracy(const std::vector<double>& truth,
                           const std::vector<double>& predicted) {
  return std::max(0.0, 100.0 - mape(truth, predicted));
}

double r_squared(const std::vector<double>& truth,
                 const std::vector<double>& predicted) {
  require_same_size(truth, predicted, "r_squared");
  const double m = mean(truth);
  double rss = 0, tss = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    rss += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    tss += (truth[i] - m) * (truth[i] - m);
  }
  if (tss <= 0) throw std::invalid_argument("r_squared: degenerate truth");
  return 1.0 - rss / tss;
}

}  // namespace xr::math
