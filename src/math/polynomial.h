// 1-D polynomial utilities: evaluation (Horner) and least-squares polyfit.
//
// Used for quick curve fits in the calibration tooling and for generating
// smooth hidden "device efficiency" curves in the synthetic testbed.
#pragma once

#include <cstddef>
#include <vector>

namespace xr::math {

/// Polynomial with coefficients in ascending power order:
/// p(x) = c[0] + c[1] x + c[2] x² + ...
class Polynomial {
 public:
  Polynomial() = default;
  explicit Polynomial(std::vector<double> coefficients);

  [[nodiscard]] double operator()(double x) const noexcept;
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return coef_;
  }
  [[nodiscard]] std::size_t degree() const noexcept {
    return coef_.empty() ? 0 : coef_.size() - 1;
  }
  /// Derivative polynomial.
  [[nodiscard]] Polynomial derivative() const;

  /// Least-squares fit of a degree-`degree` polynomial to (x, y) points.
  /// Requires more points than coefficients.
  [[nodiscard]] static Polynomial fit(const std::vector<double>& x,
                                      const std::vector<double>& y,
                                      std::size_t degree);

 private:
  std::vector<double> coef_;
};

}  // namespace xr::math
