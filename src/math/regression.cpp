#include "math/regression.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace xr::math {

LinearModel::LinearModel(std::vector<Feature> features, bool include_intercept)
    : features_(std::move(features)), intercept_(include_intercept) {
  if (features_.empty() && !intercept_)
    throw std::invalid_argument("LinearModel: no parameters");
}

LinearModel::LinearModel(std::vector<Feature> features,
                         std::vector<double> coefficients,
                         bool include_intercept)
    : LinearModel(std::move(features), include_intercept) {
  if (coefficients.size() != parameter_count())
    throw std::invalid_argument(
        "LinearModel: coefficient count does not match feature count");
  coef_ = std::move(coefficients);
}

std::vector<double> LinearModel::design_row(
    const std::vector<double>& x) const {
  std::vector<double> row;
  row.reserve(parameter_count());
  if (intercept_) row.push_back(1.0);
  for (const auto& f : features_) row.push_back(f.eval(x));
  return row;
}

FitSummary LinearModel::fit(const std::vector<std::vector<double>>& x,
                            const std::vector<double>& y) {
  if (x.size() != y.size())
    throw std::invalid_argument("LinearModel::fit: X/y length mismatch");
  const std::size_t n = x.size();
  const std::size_t p = parameter_count();
  if (n <= p)
    throw std::invalid_argument("LinearModel::fit: need more samples than "
                                "parameters");

  Matrix design(n, p);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = design_row(x[i]);
    for (std::size_t j = 0; j < p; ++j) design(i, j) = row[j];
  }
  coef_ = solve_least_squares(design, y);

  // Residual and total sums of squares.
  double y_mean = 0;
  for (double v : y) y_mean += v;
  y_mean /= double(n);
  double rss = 0, tss = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double pred = 0;
    for (std::size_t j = 0; j < p; ++j) pred += design(i, j) * coef_[j];
    const double r = y[i] - pred;
    rss += r * r;
    const double d = y[i] - y_mean;
    tss += d * d;
  }

  FitSummary s;
  s.n_samples = n;
  s.n_params = p;
  s.r_squared = tss > 0 ? 1.0 - rss / tss : 1.0;
  s.adjusted_r_squared =
      1.0 - (1.0 - s.r_squared) * double(n - 1) / double(n - p);
  const double sigma2 = rss / double(n - p);
  s.residual_std_error = std::sqrt(sigma2);

  // Coefficient covariance = sigma² (XᵀX)⁻¹.
  const Matrix xtx = design.transpose() * design;
  const Matrix cov = invert_spd(xtx).scaled(sigma2);
  s.coef_std_errors.resize(p);
  s.coef_ci95_halfwidth.resize(p);
  for (std::size_t j = 0; j < p; ++j) {
    s.coef_std_errors[j] = std::sqrt(std::max(cov(j, j), 0.0));
    s.coef_ci95_halfwidth[j] = 1.96 * s.coef_std_errors[j];
  }
  return s;
}

double LinearModel::predict(const std::vector<double>& x) const {
  if (!fitted())
    throw std::logic_error("LinearModel::predict: model has no coefficients");
  const auto row = design_row(x);
  double out = 0;
  for (std::size_t j = 0; j < row.size(); ++j) out += row[j] * coef_[j];
  return out;
}

std::vector<double> LinearModel::predict(
    const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

double LinearModel::score(const std::vector<std::vector<double>>& x,
                          const std::vector<double>& y) const {
  if (x.size() != y.size())
    throw std::invalid_argument("LinearModel::score: X/y length mismatch");
  if (y.empty()) throw std::invalid_argument("LinearModel::score: empty data");
  double y_mean = 0;
  for (double v : y) y_mean += v;
  y_mean /= double(y.size());
  double rss = 0, tss = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - predict(x[i]);
    rss += r * r;
    const double d = y[i] - y_mean;
    tss += d * d;
  }
  return tss > 0 ? 1.0 - rss / tss : 1.0;
}

std::string LinearModel::equation_string(int precision) const {
  if (!fitted()) return "<unfitted>";
  std::ostringstream oss;
  oss.precision(precision);
  oss << "y = ";
  std::size_t j = 0;
  bool first = true;
  if (intercept_) {
    oss << coef_[0];
    ++j;
    first = false;
  }
  for (const auto& f : features_) {
    const double c = coef_[j++];
    if (first) {
      oss << c << "*" << f.name;
      first = false;
    } else {
      oss << (c < 0 ? " - " : " + ") << std::abs(c) << "*" << f.name;
    }
  }
  return oss.str();
}

Feature raw_feature(std::string name, std::size_t index) {
  return {std::move(name),
          [index](const std::vector<double>& x) { return x.at(index); }};
}

Feature squared_feature(std::string name, std::size_t index) {
  return {std::move(name), [index](const std::vector<double>& x) {
            const double v = x.at(index);
            return v * v;
          }};
}

Feature product_feature(std::string name, std::size_t i, std::size_t j) {
  return {std::move(name), [i, j](const std::vector<double>& x) {
            return x.at(i) * x.at(j);
          }};
}

}  // namespace xr::math
