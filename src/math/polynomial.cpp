#include "math/polynomial.h"

#include <stdexcept>

#include "math/matrix.h"

namespace xr::math {

Polynomial::Polynomial(std::vector<double> coefficients)
    : coef_(std::move(coefficients)) {
  if (coef_.empty())
    throw std::invalid_argument("Polynomial: need >= 1 coefficient");
}

double Polynomial::operator()(double x) const noexcept {
  double acc = 0;
  for (std::size_t i = coef_.size(); i-- > 0;) acc = acc * x + coef_[i];
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (coef_.size() <= 1) return Polynomial({0.0});
  std::vector<double> d(coef_.size() - 1);
  for (std::size_t i = 1; i < coef_.size(); ++i)
    d[i - 1] = coef_[i] * double(i);
  return Polynomial(std::move(d));
}

Polynomial Polynomial::fit(const std::vector<double>& x,
                           const std::vector<double>& y, std::size_t degree) {
  if (x.size() != y.size())
    throw std::invalid_argument("Polynomial::fit: length mismatch");
  const std::size_t p = degree + 1;
  if (x.size() <= p)
    throw std::invalid_argument("Polynomial::fit: need more points than "
                                "coefficients");
  Matrix design(x.size(), p);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double pow = 1.0;
    for (std::size_t j = 0; j < p; ++j) {
      design(i, j) = pow;
      pow *= x[i];
    }
  }
  return Polynomial(solve_least_squares(design, y));
}

}  // namespace xr::math
