#include "math/rng.h"

#include <cmath>
#include <numbers>

namespace xr::math {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one forbidden state for xoshiro; SplitMix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return double(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire-style rejection-free enough for non-cryptographic use: modulo bias
  // is negligible for the span sizes used here, but reject to be exact.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() noexcept {
  // Box–Muller; u1 nudged away from zero so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::stream(std::string_view name) const noexcept {
  return Rng(seed_ ^ hash64(name) ^ 0x9E3779B97F4A7C15ULL);
}

}  // namespace xr::math
