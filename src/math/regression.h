// Multiple linear regression with the diagnostics the paper reports.
//
// The framework's regression-backed equations (Eqs. 3, 10, 12, 21) are all
// ordinary least-squares fits; the paper reports their R² and fits them at a
// 95% confidence boundary. LinearModel reproduces that workflow: fit via QR,
// report R² / adjusted R², coefficient standard errors and 95% confidence
// intervals, and predict on held-out data.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "math/matrix.h"

namespace xr::math {

/// A named feature: maps a raw input row to one regressor value.
/// Example: {"fc^2", [](const auto& x){ return x[0]*x[0]; }}.
struct Feature {
  std::string name;
  std::function<double(const std::vector<double>&)> eval;
};

/// Result diagnostics of an OLS fit.
struct FitSummary {
  std::size_t n_samples = 0;
  std::size_t n_params = 0;
  double r_squared = 0.0;
  double adjusted_r_squared = 0.0;
  double residual_std_error = 0.0;  ///< sqrt(RSS / (n - p))
  std::vector<double> coef_std_errors;
  /// Half-width of the 95% confidence interval per coefficient
  /// (1.96 * std error; large-sample normal approximation).
  std::vector<double> coef_ci95_halfwidth;
};

/// Ordinary least-squares linear model over a configurable feature map.
///
/// A model is constructed either from known coefficients (the paper's printed
/// equations) or by fitting to data (reproducing §VII). The feature list
/// always implicitly includes an intercept as the first coefficient unless
/// `include_intercept` is false.
class LinearModel {
 public:
  LinearModel(std::vector<Feature> features, bool include_intercept = true);

  /// Construct with pre-set coefficients (paper-printed form). The number of
  /// coefficients must equal features().size() + (intercept ? 1 : 0).
  LinearModel(std::vector<Feature> features, std::vector<double> coefficients,
              bool include_intercept = true);

  /// Fit to raw input rows X (each row is the raw input vector passed to the
  /// features) and targets y. Returns diagnostics. Throws on shape errors or
  /// rank deficiency.
  FitSummary fit(const std::vector<std::vector<double>>& x,
                 const std::vector<double>& y);

  /// Predict a single raw input row.
  [[nodiscard]] double predict(const std::vector<double>& x) const;
  /// Predict many rows.
  [[nodiscard]] std::vector<double> predict(
      const std::vector<std::vector<double>>& x) const;

  /// R² evaluated on an arbitrary dataset (e.g. the held-out test split).
  [[nodiscard]] double score(const std::vector<std::vector<double>>& x,
                             const std::vector<double>& y) const;

  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return coef_;
  }
  [[nodiscard]] bool fitted() const noexcept { return !coef_.empty(); }
  [[nodiscard]] std::size_t parameter_count() const noexcept {
    return features_.size() + (intercept_ ? 1u : 0u);
  }
  [[nodiscard]] const std::vector<Feature>& features() const noexcept {
    return features_;
  }
  /// Human-readable equation string, e.g. "y = 18.24 + 1.84*fc^2 - 6.02*fc".
  [[nodiscard]] std::string equation_string(int precision = 4) const;

 private:
  [[nodiscard]] std::vector<double> design_row(
      const std::vector<double>& x) const;

  std::vector<Feature> features_;
  bool intercept_;
  std::vector<double> coef_;
};

/// Helpers to build common feature sets.
[[nodiscard]] Feature raw_feature(std::string name, std::size_t index);
[[nodiscard]] Feature squared_feature(std::string name, std::size_t index);
[[nodiscard]] Feature product_feature(std::string name, std::size_t i,
                                      std::size_t j);

}  // namespace xr::math
