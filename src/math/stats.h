// Descriptive statistics and model-error metrics.
//
// The paper reports model quality as "mean error" percentages (MAPE against
// ground truth) and Fig. 5 as "normalized accuracy"; these helpers implement
// those exact definitions plus the usual supporting metrics.
#pragma once

#include <cstddef>
#include <vector>

namespace xr::math {

[[nodiscard]] double mean(const std::vector<double>& v);
/// Sample variance (n-1). Requires at least two elements.
[[nodiscard]] double variance(const std::vector<double>& v);
[[nodiscard]] double stddev(const std::vector<double>& v);
[[nodiscard]] double median(std::vector<double> v);
/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> v, double p);
[[nodiscard]] double min_of(const std::vector<double>& v);
[[nodiscard]] double max_of(const std::vector<double>& v);

/// Pearson correlation coefficient. Requires equal non-empty lengths and
/// non-degenerate variance.
[[nodiscard]] double pearson(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Mean absolute percentage error of predictions vs. ground truth, in
/// percent. This is the paper's "mean error". Ground-truth zeros are
/// rejected (std::invalid_argument).
[[nodiscard]] double mape(const std::vector<double>& truth,
                          const std::vector<double>& predicted);

/// Root-mean-square error.
[[nodiscard]] double rmse(const std::vector<double>& truth,
                          const std::vector<double>& predicted);

/// Mean absolute error.
[[nodiscard]] double mae(const std::vector<double>& truth,
                         const std::vector<double>& predicted);

/// The paper's Fig. 5 metric: accuracy normalized so ground truth = 100%.
/// Defined as 100 − MAPE(truth, predicted), floored at 0.
[[nodiscard]] double normalized_accuracy(const std::vector<double>& truth,
                                         const std::vector<double>& predicted);

/// Coefficient of determination R² of predictions vs. truth.
[[nodiscard]] double r_squared(const std::vector<double>& truth,
                               const std::vector<double>& predicted);

}  // namespace xr::math
