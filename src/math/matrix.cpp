#include "math/matrix.h"

#include <cmath>
#include <stdexcept>

namespace xr::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::column(const std::vector<double>& values) {
  Matrix m(values.size(), 1);
  for (std::size_t i = 0; i < values.size(); ++i) m(i, 0) = values[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("Matrix::operator*: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j)
        out(i, j) += a * rhs(k, j);
    }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix::operator+: shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix::operator-: shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::scaled(double k) const {
  Matrix out = *this;
  for (auto& v : out.data_) v *= k;
  return out;
}

std::vector<double> Matrix::to_vector() const {
  if (cols_ != 1 && rows_ != 1)
    throw std::logic_error("Matrix::to_vector: not a vector");
  return data_;
}

double Matrix::max_abs() const noexcept {
  double m = 0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::vector<double> solve_least_squares(const Matrix& a,
                                        const std::vector<double>& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m)
    throw std::invalid_argument("solve_least_squares: b length mismatch");
  if (m < n)
    throw std::invalid_argument("solve_least_squares: underdetermined");

  // Householder QR applied in-place to a working copy of [A | b].
  Matrix r = a;
  std::vector<double> qtb = b;

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k.
    double norm = 0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-12)
      throw std::runtime_error("solve_least_squares: rank-deficient matrix");
    if (r(k, k) > 0) norm = -norm;

    std::vector<double> v(m - k);
    v[0] = r(k, k) - norm;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vtv = 0;
    for (double x : v) vtv += x * x;
    if (vtv < 1e-300)
      throw std::runtime_error("solve_least_squares: degenerate reflector");

    // Apply H = I - 2 v vᵀ / (vᵀv) to the remaining columns and to b.
    for (std::size_t j = k; j < n; ++j) {
      double dot = 0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * r(i, j);
      const double f = 2.0 * dot / vtv;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= f * v[i - k];
    }
    double dot = 0;
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * qtb[i];
    const double f = 2.0 * dot / vtv;
    for (std::size_t i = k; i < m; ++i) qtb[i] -= f * v[i - k];
  }

  // Back-substitute R x = Qᵀb (top n rows).
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = qtb[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= r(ii, j) * x[j];
    if (std::abs(r(ii, ii)) < 1e-12)
      throw std::runtime_error("solve_least_squares: singular R");
    x[ii] = sum / r(ii, ii);
  }
  return x;
}

Matrix cholesky(const Matrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("cholesky: matrix must be square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0)
          throw std::runtime_error("cholesky: matrix not positive definite");
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> solve_spd(const Matrix& a, const std::vector<double>& b) {
  const Matrix l = cholesky(a);
  const std::size_t n = a.rows();
  if (b.size() != n) throw std::invalid_argument("solve_spd: length mismatch");
  // Forward solve L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back solve Lᵀ x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

Matrix invert_spd(const Matrix& a) {
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    const auto col = solve_spd(a, e);
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  return inv;
}

}  // namespace xr::math
