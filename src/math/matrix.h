// Small dense matrix type with the factorizations the regression code needs.
//
// This is not a general linear-algebra library: it provides exactly what the
// multiple-linear-regression fitting in this framework requires — dense
// storage, products, transpose, Householder QR least-squares, and Cholesky
// for (XᵀX)⁻¹ when coefficient standard errors are needed.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace xr::math {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Construct from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Column vector from values.
  [[nodiscard]] static Matrix column(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const;
  /// Bounds-checked access; throws std::out_of_range.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  [[nodiscard]] Matrix scaled(double k) const;

  /// Flatten a single-column (or single-row) matrix to a std::vector.
  [[nodiscard]] std::vector<double> to_vector() const;

  /// Max absolute element (infinity norm of the flattened matrix).
  [[nodiscard]] double max_abs() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve the least-squares problem min ||A x − b||₂ via Householder QR.
/// A is m x n with m >= n and full column rank; b has length m.
/// Throws std::invalid_argument on shape mismatch and std::runtime_error if
/// A is rank-deficient (within a tolerance).
[[nodiscard]] std::vector<double> solve_least_squares(
    const Matrix& a, const std::vector<double>& b);

/// Cholesky factorization of a symmetric positive-definite matrix: returns
/// lower-triangular L with A = L Lᵀ. Throws std::runtime_error if A is not
/// positive definite.
[[nodiscard]] Matrix cholesky(const Matrix& a);

/// Solve A x = b for SPD A using its Cholesky factor.
[[nodiscard]] std::vector<double> solve_spd(const Matrix& a,
                                            const std::vector<double>& b);

/// Inverse of an SPD matrix via Cholesky (used for coefficient covariance).
[[nodiscard]] Matrix invert_spd(const Matrix& a);

}  // namespace xr::math
