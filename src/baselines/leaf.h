// LEAF baseline model — reimplementation of Wang et al., "LEAF + AIO:
// Edge-assisted energy-aware object detection for mobile augmented reality"
// (IEEE TMC 2023), as characterized by the paper's §VIII.D:
//
//   "LEAF overcomes several limitations of FACT by breaking down the entire
//    pipeline of an edge-AR application and considering each segment's
//    latency separately. However, it still suffers from the simplicity in
//    formulating the computation latency and energy as FACT does."
//
// Concretely: LEAF models the same per-segment pipeline as the proposed
// framework (capture, conversion/encode, inference, rendering, wireless),
// but each computation segment is cycles/frequency — no memory-bandwidth
// term, no CPU/GPU allocation regression (Eq. 3), no CNN-complexity model
// (Eq. 12), and a fixed per-frame encode cost instead of the Eq. (10)
// regression. Its energy model assigns each segment a constant power state.
#pragma once

#include "core/pipeline.h"

namespace xr::baselines {

/// LEAF's calibration knobs.
struct LeafConfig {
  /// Cycles per frame-size unit for capture-class segments (Gcycles).
  double capture_cycles_per_size = 0.004;
  /// Cycles per scene-size unit for volumetric processing.
  double volumetric_cycles_per_size = 0.004;
  /// Cycles per frame-size unit for conversion and rendering segments.
  double stage_cycles_per_size = 0.004;
  /// Fixed encode cost per frame (ms) — LEAF measures a constant.
  double encode_fixed_ms = 45.0;
  /// Inference cycles per converted-frame-size unit (local).
  double local_inference_cycles_per_size = 0.010;
  /// Edge inference cycles per frame-size unit and edge clock (GHz).
  double edge_inference_cycles_per_size = 0.011;
  double edge_cpu_ghz = 2.27;
  /// Fixed buffer/queueing allowance per frame (ms) — LEAF has no queueing
  /// model, only a measured constant.
  double buffer_fixed_ms = 8.0;
  /// Per-segment power states (mW).
  double compute_mw = 2000.0;
  /// Frequency slope of the compute power state (mW per GHz): LEAF is
  /// energy-aware and profiles power per frequency configuration.
  double compute_mw_per_ghz = 0.0;
  double radio_tx_mw = 800.0;
  double radio_rx_mw = 300.0;
  double idle_mw = 150.0;
};

/// LEAF latency/energy estimates over the shared scenario type.
class LeafModel {
 public:
  explicit LeafModel(LeafConfig config = LeafConfig{});

  [[nodiscard]] double latency_ms(const core::ScenarioConfig& s) const;
  [[nodiscard]] double energy_mj(const core::ScenarioConfig& s) const;

  /// Per-segment latency values (for breakdown comparisons).
  struct Breakdown {
    double capture = 0;
    double volumetric = 0;
    double external = 0;
    double conversion_or_encode = 0;
    double inference = 0;
    double rendering = 0;
    double wireless = 0;
    double total = 0;
  };
  [[nodiscard]] Breakdown breakdown(const core::ScenarioConfig& s) const;

  [[nodiscard]] const LeafConfig& config() const noexcept { return config_; }

 private:
  LeafConfig config_;
};

}  // namespace xr::baselines
