#include "baselines/leaf.h"

#include "wireless/propagation.h"

namespace xr::baselines {

LeafModel::LeafModel(LeafConfig config) : config_(config) {}

LeafModel::Breakdown LeafModel::breakdown(
    const core::ScenarioConfig& s) const {
  core::validate(s);
  Breakdown b;
  const bool local =
      s.inference.placement == core::InferencePlacement::kLocal;
  const double f = s.client.cpu_ghz;  // cycles/frequency only — no memory,
                                      // no GPU share, no allocation model.

  b.capture = 1000.0 / s.frame.fps +
              config_.capture_cycles_per_size * s.frame.frame_size / f *
                  1000.0;
  b.volumetric =
      config_.volumetric_cycles_per_size * s.frame.scene_size / f * 1000.0;

  // External sensor information: LEAF counts one generation interval of the
  // slowest sensor (it has no per-update accumulation).
  for (const auto& sensor : s.sensors)
    b.external = std::max(b.external, 1000.0 / sensor.generation_hz);

  if (local) {
    b.conversion_or_encode =
        config_.stage_cycles_per_size * s.frame.frame_size / f * 1000.0;
    b.inference = config_.local_inference_cycles_per_size *
                  s.frame.converted_size / f * 1000.0;
  } else {
    b.conversion_or_encode = config_.encode_fixed_ms;
    b.inference = config_.edge_inference_cycles_per_size *
                  s.frame.frame_size / config_.edge_cpu_ghz * 1000.0;
    // LEAF transmits the encoded frame; reuse the codec output-size model
    // since LEAF measures payloads empirically.
    const devices::CodecModel codec;
    b.wireless = wireless::transmission_time_ms(
                     codec.encoded_size_mb(s.frame.frame_size, s.codec),
                     s.network.throughput_mbps) +
                 wireless::propagation_delay_ms(s.network.edge_distance_m);
  }

  b.rendering =
      config_.stage_cycles_per_size * s.frame.frame_size / f * 1000.0 +
      config_.buffer_fixed_ms;

  b.total = b.capture + b.volumetric + b.external + b.conversion_or_encode +
            b.inference + b.rendering + b.wireless;
  return b;
}

double LeafModel::latency_ms(const core::ScenarioConfig& s) const {
  return breakdown(s).total;
}

double LeafModel::energy_mj(const core::ScenarioConfig& s) const {
  const Breakdown b = breakdown(s);
  const bool local =
      s.inference.placement == core::InferencePlacement::kLocal;
  // Per-segment constant power states (LEAF's energy model), mW·ms → mJ.
  double mj = 0;
  const double compute_mw =
      config_.compute_mw + config_.compute_mw_per_ghz * s.client.cpu_ghz;
  mj += compute_mw * (b.capture + b.volumetric + b.conversion_or_encode +
                      b.rendering);
  mj += config_.radio_rx_mw * b.external;
  if (local) {
    mj += config_.compute_mw * b.inference;
  } else {
    mj += config_.idle_mw * b.inference;  // device waits on the edge.
    mj += config_.radio_tx_mw * b.wireless;
  }
  return mj / 1000.0;
}

}  // namespace xr::baselines
