// FACT baseline model — reimplementation of the analysis in Liu et al.,
// "An edge network orchestrator for mobile augmented reality" (INFOCOM'18),
// as characterized by the paper's §VIII.D:
//
//   "FACT proposes to include computation, core network, and wireless
//    latency into the overall service latency model ... [it] presents the
//    computation latency as a function of the computation complexity and
//    available computation resources, which are formulated *without*
//    considering different processing sources, data size, and the memory of
//    the device."
//
// Concretely: computation latency = task cycles / CPU frequency (no GPU
// split, no memory-bandwidth term, no CNN-complexity model, no per-segment
// breakdown, no encoding regression — encode cost folds into the single
// computation term), plus wireless transmission and a fixed core-network
// latency. It also assumes a single server at a time (no service migration /
// handoff term).
#pragma once

#include "core/pipeline.h"

namespace xr::baselines {

/// FACT's calibration knobs: how many "cycles" one unit of the paper's
/// frame-size axis costs, and the fixed core-network latency.
struct FactConfig {
  /// Client-side cycles per frame-size unit per pipeline pass (Gcycles).
  double client_cycles_per_size = 0.009;
  /// Edge-side cycles per frame-size unit for the detection task.
  double edge_cycles_per_size = 0.011;
  /// Edge CPU frequency (GHz) — FACT models the server as cycles/frequency.
  double edge_cpu_ghz = 2.27;
  /// Fixed core-network latency between AP and edge (ms).
  double core_network_ms = 4.0;
  /// Average active power FACT-style energy accounting charges (mW) — a
  /// single device-level constant, not per-segment.
  double device_active_mw = 1800.0;
  /// Frequency slope of the active power (mW per GHz): FACT profiles the
  /// device's power at its operating frequency, so the active draw is
  /// affine in the clock.
  double device_active_mw_per_ghz = 0.0;
  double radio_tx_mw = 800.0;
};

/// FACT latency/energy estimates for the same scenarios the proposed model
/// consumes, allowing like-for-like comparison (Fig. 5).
class FactModel {
 public:
  explicit FactModel(FactConfig config = FactConfig{});

  /// End-to-end service latency (ms).
  [[nodiscard]] double latency_ms(const core::ScenarioConfig& s) const;
  /// End-to-end device energy (mJ), following each latency component.
  [[nodiscard]] double energy_mj(const core::ScenarioConfig& s) const;

  [[nodiscard]] const FactConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double client_compute_ms(const core::ScenarioConfig& s) const;
  [[nodiscard]] double edge_compute_ms(const core::ScenarioConfig& s) const;
  [[nodiscard]] double wireless_ms(const core::ScenarioConfig& s) const;

  FactConfig config_;
};

}  // namespace xr::baselines
