#include "baselines/fact.h"

#include "core/pipeline.h"
#include "wireless/propagation.h"

namespace xr::baselines {

FactModel::FactModel(FactConfig config) : config_(config) {}

double FactModel::client_compute_ms(const core::ScenarioConfig& s) const {
  // One aggregate computation term: cycles / frequency. FACT does not
  // separate capture, conversion, rendering, or encoding, and has no memory
  // or GPU model. Frame + scene work both charge the CPU clock directly.
  const double gcycles =
      config_.client_cycles_per_size * (s.frame.frame_size +
                                        s.frame.scene_size);
  const double seconds = gcycles / s.client.cpu_ghz;
  const double capture_ms = 1000.0 / s.frame.fps;
  return capture_ms + seconds * 1000.0;
}

double FactModel::edge_compute_ms(const core::ScenarioConfig& s) const {
  if (s.inference.placement == core::InferencePlacement::kLocal) {
    // Local inference charged at the same cycles/frequency abstraction.
    const double gcycles =
        config_.edge_cycles_per_size * s.frame.converted_size;
    return gcycles / s.client.cpu_ghz * 1000.0;
  }
  const double gcycles = config_.edge_cycles_per_size * s.frame.frame_size;
  return gcycles / config_.edge_cpu_ghz * 1000.0;
}

double FactModel::wireless_ms(const core::ScenarioConfig& s) const {
  if (s.inference.placement == core::InferencePlacement::kLocal) return 0.0;
  // FACT transmits the *raw* frame — it has no encoding model.
  return wireless::transmission_time_ms(core::raw_frame_mb(s.frame),
                                        s.network.throughput_mbps) +
         wireless::propagation_delay_ms(s.network.edge_distance_m);
}

double FactModel::latency_ms(const core::ScenarioConfig& s) const {
  core::validate(s);
  double total = client_compute_ms(s) + edge_compute_ms(s);
  if (s.inference.placement == core::InferencePlacement::kRemote)
    total += wireless_ms(s) + config_.core_network_ms;
  return total;
}

double FactModel::energy_mj(const core::ScenarioConfig& s) const {
  core::validate(s);
  // Device-level power constant over compute time plus radio power over
  // transmit time; no base power, no thermal accounting, no per-segment
  // allocation.
  const double compute_ms =
      client_compute_ms(s) +
      (s.inference.placement == core::InferencePlacement::kLocal
           ? edge_compute_ms(s)
           : 0.0);
  const double tx_ms = wireless_ms(s);
  const double active_mw =
      config_.device_active_mw +
      config_.device_active_mw_per_ghz * s.client.cpu_ghz;
  return (active_mw * compute_ms + config_.radio_tx_mw * tx_ms) / 1000.0;
}

}  // namespace xr::baselines
