// Multiplayer XR game: cooperation and multi-edge split inference.
//
// A cooperative XR game shares scene fragments with peer devices (the
// paper's "XR cooperation" segment, Eq. 18) and splits the inference task
// across multiple edge servers (Eq. 15). The example compares a single-edge
// deployment against a two-server split and shows the cooperation cost both
// when it runs parallel to rendering (the default) and when the application
// must serialize it.
//
//   $ ./multiplayer_game
#include <cstdio>

#include "core/framework.h"
#include "trace/table.h"

namespace {

xr::core::ScenarioConfig base_game() {
  using namespace xr::core;
  ScenarioConfig s = make_remote_scenario(/*frame_size=*/600.0,
                                          /*cpu_ghz=*/2.8);
  s.cooperation.active = true;           // peers exchange object positions
  s.network.coop_payload_mb = 0.4;       // scene-fragment payload
  s.network.coop_distance_m = 45.0;
  s.sensors = {SensorConfig{"peer-positions", 120.0, 45.0}};
  return s;
}

}  // namespace

int main() {
  using namespace xr::core;
  const XrPerformanceModel model;

  // Deployment A: one edge server runs the whole task.
  ScenarioConfig single = base_game();

  // Deployment B: split 60/40 across two servers; the smaller share goes to
  // a weaker second server (explicit resource instead of the 11.76x ratio).
  ScenarioConfig split = base_game();
  EdgeConfig near_edge;
  near_edge.name = "edge-A";
  near_edge.cnn_name = "YoloV7";
  near_edge.omega_edge = 0.6;
  EdgeConfig far_edge;
  far_edge.name = "edge-B";
  far_edge.cnn_name = "YoloV3";
  far_edge.omega_edge = 0.4;
  far_edge.resource = 80.0;  // weaker server
  far_edge.memory_bandwidth_gbps = 59.7;
  split.inference.edges = {near_edge, far_edge};

  const auto rep_single = model.evaluate(single);
  const auto rep_split = model.evaluate(split);

  xr::trace::TablePrinter t({"deployment", "latency ms", "remote inf. ms",
                             "energy mJ", "coop ms (parallel)"});
  t.set_align(0, xr::trace::Align::kLeft);
  t.add_row({"single edge (YOLOv3)",
             xr::trace::fixed(rep_single.latency.total, 2),
             xr::trace::fixed(rep_single.latency.remote_inference, 2),
             xr::trace::fixed(rep_single.energy.total, 2),
             xr::trace::fixed(rep_single.latency.cooperation, 2)});
  t.add_row({"split 60/40 (YOLOv7 + YOLOv3)",
             xr::trace::fixed(rep_split.latency.total, 2),
             xr::trace::fixed(rep_split.latency.remote_inference, 2),
             xr::trace::fixed(rep_split.energy.total, 2),
             xr::trace::fixed(rep_split.latency.cooperation, 2)});
  std::printf("%s", t.render().c_str());

  // What if the game must serialize cooperation into the frame loop?
  ScenarioConfig serialized = single;
  serialized.cooperation.include_in_total = true;
  const auto rep_serial = model.evaluate(serialized);
  std::printf(
      "\nserializing cooperation into the frame adds %.2f ms "
      "(%.1f%% of the frame budget)\n",
      rep_serial.latency.total - rep_single.latency.total,
      100.0 * (rep_serial.latency.total - rep_single.latency.total) /
          rep_single.latency.total);
  return 0;
}
