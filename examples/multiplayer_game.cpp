// Multiplayer XR game: cooperation and multi-edge split inference.
//
// A cooperative XR game shares scene fragments with peer devices (the
// paper's "XR cooperation" segment, Eq. 18) and splits the inference task
// across multiple edge servers (Eq. 15). The example compares a single-edge
// deployment against a two-server split and shows the cooperation cost both
// when it runs parallel to rendering (the default) and when the application
// must serialize it.
//
//   $ ./multiplayer_game
#include <cstdio>

#include "core/framework.h"
#include "trace/table.h"

int main() {
  using namespace xr::core;
  const XrPerformanceModel model;

  // Deployment B is the shared workload factory: cooperation active and the
  // inference task split 60/40 across a strong and a weak edge server.
  ScenarioConfig split = make_multiplayer_game_scenario();

  // Deployment A: the same game, but one edge server runs the whole task.
  ScenarioConfig single = split;
  EdgeConfig sole = single.inference.edges.front();
  sole.cnn_name = "YoloV3";
  sole.omega_edge = 1.0;
  sole.name = "edge-A";
  single.inference.edges = {sole};

  const auto rep_single = model.evaluate(single);
  const auto rep_split = model.evaluate(split);

  xr::trace::TablePrinter t({"deployment", "latency ms", "remote inf. ms",
                             "energy mJ", "coop ms (parallel)"});
  t.set_align(0, xr::trace::Align::kLeft);
  t.add_row({"single edge (YOLOv3)",
             xr::trace::fixed(rep_single.latency.total, 2),
             xr::trace::fixed(rep_single.latency.remote_inference, 2),
             xr::trace::fixed(rep_single.energy.total, 2),
             xr::trace::fixed(rep_single.latency.cooperation, 2)});
  t.add_row({"split 60/40 (YOLOv7 + YOLOv3)",
             xr::trace::fixed(rep_split.latency.total, 2),
             xr::trace::fixed(rep_split.latency.remote_inference, 2),
             xr::trace::fixed(rep_split.energy.total, 2),
             xr::trace::fixed(rep_split.latency.cooperation, 2)});
  std::printf("%s", t.render().c_str());

  // What if the game must serialize cooperation into the frame loop?
  ScenarioConfig serialized = single;
  serialized.cooperation.include_in_total = true;
  const auto rep_serial = model.evaluate(serialized);
  std::printf(
      "\nserializing cooperation into the frame adds %.2f ms "
      "(%.1f%% of the frame budget)\n",
      rep_serial.latency.total - rep_single.latency.total,
      100.0 * (rep_serial.latency.total - rep_single.latency.total) /
          rep_single.latency.total);
  return 0;
}
