// Autonomous-driving scenario: AoI-driven sensor planning.
//
// An XR-equipped autonomous driving system (the paper's ADS example)
// receives pedestrian locations from roadside units, traffic-signal state
// from infrastructure, and map updates from neighbouring vehicles. The
// example checks the freshness (RoI) of each feed against the application's
// update requirement and computes the minimum generation frequency each
// sensor would need — the paper's "sensors should follow the RoI" insight.
//
//   $ ./autonomous_driving
#include <cstdio>

#include "core/framework.h"
#include "trace/table.h"

int main() {
  using namespace xr::core;

  // The shared workload factory (also the serialization tests' corpus and
  // a valid inline base for any sweep request document).
  ScenarioConfig s = make_autonomous_driving_scenario();

  const XrPerformanceModel model;
  const PerformanceReport report = model.evaluate(s);

  std::printf("ADS frame analysis: latency %.1f ms, energy %.1f mJ\n\n",
              report.latency.total, report.energy.total);

  xr::trace::TablePrinter t({"sensor", "rate Hz", "avg AoI ms", "RoI",
                             "fresh", "required Hz"});
  t.set_align(0, xr::trace::Align::kLeft);
  const AoiModel& aoi = model.aoi_model();
  for (std::size_t i = 0; i < s.sensors.size(); ++i) {
    const auto& cfg = s.sensors[i];
    const auto& rep = report.sensors[i];
    const double required =
        aoi.required_generation_hz(cfg.distance_m, s.buffer, s.aoi);
    t.add_row({cfg.name, xr::trace::fixed(cfg.generation_hz, 0),
               xr::trace::fixed(rep.average_aoi_ms, 2),
               xr::trace::fixed(rep.roi, 3), rep.fresh ? "yes" : "NO",
               xr::trace::fixed(required, 0)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nsensors with RoI < 1 deliver stale data: raise their "
              "generation rate to at least the 'required Hz' column.\n");
  return 0;
}
