// Batch sweep: evaluate thousands of deployments in one parallel run —
// declared once, as a serializable sweep request.
//
// The paper's pitch is that analytical evaluation makes deployment
// questions cheap enough to answer by search instead of testbed
// trial-and-error. This example shows the unified sweep API that
// operationalizes that at scale: declare the deployment space once as
// SweepSpec axes, turn it into a SweepRequest document (the same document
// `sweep_worker --request` shards across processes), and read the answers
// off the reductions — fastest point, most frugal point, and the
// latency/energy Pareto frontier the application can choose from.
//
//   $ ./batch_sweep            # run in-process
//   $ ./batch_sweep --emit-request > request.json   # ship it to a fleet
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/framework.h"
#include "runtime/batch_evaluator.h"
#include "runtime/sweep_request.h"
#include "trace/table.h"

int main(int argc, char** argv) {
  using namespace xr;

  // 1. Declare the deployment space: every knob is one axis. 5 sizes x
  //    3 clocks x 2 placements x 5 shares x 3 bitrates = 450 deployments.
  //    All of these axes are typed knobs, so the whole spec is a document.
  const auto spec =
      runtime::SweepSpec(core::make_remote_scenario(500.0, 2.0))
          .frame_sizes({300, 400, 500, 600, 700})
          .cpu_clocks_ghz({1.0, 2.0, 3.0})
          .placements({core::InferencePlacement::kLocal,
                       core::InferencePlacement::kRemote})
          .omega_c({0.0, 0.25, 0.5, 0.75, 1.0})
          .codec_bitrates_mbps({2.0, 4.0, 8.0});

  runtime::SweepRequest request;
  request.grid = spec.grid_spec();
  if (argc > 1 && std::strcmp(argv[1], "--emit-request") == 0) {
    // The exact document K sweep_worker processes shard and sweep_merge
    // folds back — bitwise — into the summary computed below.
    std::printf("%s\n", request.to_json().dump().c_str());
    return 0;
  }

  const auto grid = request.grid.build();
  std::printf("deployment space: %zu scenarios over %zu axes "
              "(request: %zu bytes of JSON)\n",
              grid.size(), grid.axis_count(),
              request.to_json().dump().size());

  // 2. Evaluate the whole space, serial vs. parallel.
  const runtime::BatchEvaluator serial({}, runtime::BatchOptions{1});
  const runtime::BatchEvaluator parallel({}, runtime::BatchOptions{0});
  const auto serial_run = serial.run(grid);
  const auto result = parallel.run(grid);

  bool identical = true;
  for (std::size_t i = 0; i < grid.size(); ++i)
    identical = identical &&
                serial_run.latency_ms(i) == result.latency_ms(i) &&
                serial_run.energy_mj(i) == result.energy_mj(i);
  std::printf("serial   : %8.2f ms  (%.0f candidates/s)\n",
              serial_run.stats.wall_ms,
              serial_run.stats.candidates_per_sec);
  std::printf("parallel : %8.2f ms  (%.0f candidates/s, %zu threads)\n",
              result.stats.wall_ms, result.stats.candidates_per_sec,
              result.stats.threads);
  std::printf("parallel results identical to serial loop: %s\n",
              identical ? "yes" : "NO (bug!)");

  // 3. The request path computes the same reductions through the shard
  //    layer's merge law (run_request is the K = 1 case of a sharded run).
  const auto summary = runtime::run_request(request);
  std::string why;
  const bool law = runtime::shard::matches_batch_result(summary, result, &why);
  std::printf("run_request summary == BatchEvaluator reductions: %s%s\n\n",
              law ? "yes (bitwise)" : "NO: ", law ? "" : why.c_str());

  // 4. Read the answers off the reductions.
  std::printf("fastest   : %s -> %.1f ms\n",
              grid.label(summary.best_latency_index).c_str(),
              summary.min_latency_ms);
  std::printf("most frugal: %s -> %.1f mJ\n\n",
              grid.label(summary.best_energy_index).c_str(),
              summary.min_energy_mj);

  trace::TablePrinter pareto(
      {"Pareto-optimal deployment", "latency (ms)", "energy (mJ)"});
  pareto.set_align(0, trace::Align::kLeft);
  for (const auto& p : summary.pareto)
    pareto.add_row({grid.label(p.index), trace::fixed(p.latency_ms, 1),
                    trace::fixed(p.energy_mj, 1)});
  std::printf("%s", trace::heading("Latency/energy Pareto frontier").c_str());
  std::printf("%s", pareto.render().c_str());
  return identical && law ? 0 : 1;
}
