// Batch sweep: evaluate thousands of deployments in one parallel run.
//
// The paper's pitch is that analytical evaluation makes deployment
// questions cheap enough to answer by search instead of testbed
// trial-and-error. This example shows the runtime layer that operationalizes
// that at scale: declare the deployment space once as SweepSpec axes, let
// BatchEvaluator fan it out across cores, and read the answers off the
// reductions — fastest point, most frugal point, and the latency/energy
// Pareto frontier the application can choose from.
//
//   $ ./batch_sweep
#include <cstdio>
#include <vector>

#include "core/framework.h"
#include "runtime/batch_evaluator.h"
#include "runtime/sweep.h"
#include "trace/table.h"

int main() {
  using namespace xr;

  // 1. Declare the deployment space: every knob is one axis. 5 sizes x
  //    3 clocks x 2 placements x 5 shares x 3 bitrates = 450 deployments.
  const auto grid =
      runtime::SweepSpec(core::make_remote_scenario(500.0, 2.0))
          .frame_sizes({300, 400, 500, 600, 700})
          .cpu_clocks_ghz({1.0, 2.0, 3.0})
          .placements({core::InferencePlacement::kLocal,
                       core::InferencePlacement::kRemote})
          .omega_c({0.0, 0.25, 0.5, 0.75, 1.0})
          .codec_bitrates_mbps({2.0, 4.0, 8.0})
          .build();
  std::printf("deployment space: %zu scenarios over %zu axes\n",
              grid.size(), grid.axis_count());

  // 2. Evaluate the whole space, serial vs. parallel.
  const runtime::BatchEvaluator serial({}, runtime::BatchOptions{1});
  const runtime::BatchEvaluator parallel({}, runtime::BatchOptions{0});
  const auto serial_run = serial.run(grid);
  const auto result = parallel.run(grid);

  bool identical = true;
  for (std::size_t i = 0; i < grid.size(); ++i)
    identical = identical &&
                serial_run.latency_ms(i) == result.latency_ms(i) &&
                serial_run.energy_mj(i) == result.energy_mj(i);
  std::printf("serial   : %8.2f ms  (%.0f candidates/s)\n",
              serial_run.stats.wall_ms,
              serial_run.stats.candidates_per_sec);
  std::printf("parallel : %8.2f ms  (%.0f candidates/s, %zu threads)\n",
              result.stats.wall_ms, result.stats.candidates_per_sec,
              result.stats.threads);
  std::printf("parallel results identical to serial loop: %s\n\n",
              identical ? "yes" : "NO (bug!)");

  // 3. Read the answers off the batch reductions.
  std::printf("fastest   : %s -> %.1f ms\n",
              grid.label(result.best_latency_index).c_str(),
              result.min_latency_ms);
  std::printf("most frugal: %s -> %.1f mJ\n\n",
              grid.label(result.best_energy_index).c_str(),
              result.min_energy_mj);

  trace::TablePrinter pareto(
      {"Pareto-optimal deployment", "latency (ms)", "energy (mJ)"});
  pareto.set_align(0, trace::Align::kLeft);
  for (std::size_t i : result.pareto_indices)
    pareto.add_row({grid.label(i), trace::fixed(result.latency_ms(i), 1),
                    trace::fixed(result.energy_mj(i), 1)});
  std::printf("%s", trace::heading("Latency/energy Pareto frontier").c_str());
  std::printf("%s", pareto.render().c_str());
  return identical ? 0 : 1;
}
