// Offload planner: where is the local/remote crossover?
//
// Sweeps network throughput and frame size and asks, for each operating
// point, whether local (ω_loc = 1) or remote (ω_loc = 0) inference minimizes
// end-to-end latency — the decision the ω_loc term of Eq. (1) encodes. This
// is the planning workflow the paper motivates: answering deployment
// questions analytically instead of re-measuring a testbed. Both placement
// sweeps are declared as SweepSpec grids and evaluated in one batch each.
//
//   $ ./offload_planner
#include <cstdio>
#include <vector>

#include "core/framework.h"
#include "runtime/batch_evaluator.h"
#include "runtime/sweep.h"
#include "trace/table.h"

int main() {
  using namespace xr;
  using core::InferencePlacement;

  const std::vector<double> throughputs = {5, 10, 20, 40, 80};   // Mbps
  const std::vector<double> sizes = {300, 400, 500, 600, 700};

  // Local latency is throughput-independent: one size axis. Remote needs
  // the full throughput (outer) x size (inner) grid.
  const runtime::BatchEvaluator engine;
  const auto local_run =
      engine.run(runtime::SweepSpec(core::make_local_scenario(500, 2.0))
                     .frame_sizes(sizes)
                     .build());
  const auto remote_grid =
      runtime::SweepSpec(core::make_remote_scenario(500, 2.0))
          .network_throughputs_mbps(throughputs)
          .frame_sizes(sizes)
          .build();
  const auto remote_run = engine.run(remote_grid);

  std::vector<std::string> header{"throughput \\ size"};
  for (double s : sizes) header.push_back(xr::trace::fixed(s, 0));
  xr::trace::TablePrinter t(std::move(header));
  t.set_align(0, trace::Align::kLeft);

  std::size_t i = 0;
  for (double mbps : throughputs) {
    std::vector<std::string> row{trace::fixed(mbps, 0) + " Mbps"};
    for (std::size_t k = 0; k < sizes.size(); ++k, ++i) {
      const double l_local = local_run.latency_ms(k);
      const double l_remote = remote_run.latency_ms(i);
      char cell[64];
      std::snprintf(cell, sizeof cell, "%s (%+.0f ms)",
                    l_local <= l_remote ? "local" : "REMOTE",
                    l_remote - l_local);
      row.emplace_back(cell);
    }
    t.add_row(std::move(row));
  }
  std::printf("%s",
              trace::heading("Offload decision map: winner "
                             "(remote minus local latency)")
                  .c_str());
  std::printf("%s", t.render().c_str());

  // Energy view at one size.
  std::printf("\nenergy at 500 px: ");
  const core::XrPerformanceModel& model = engine.model();
  const double e_local =
      model.evaluate(core::make_local_scenario(500, 2.0)).energy.total;
  const double e_remote =
      model.evaluate(core::make_remote_scenario(500, 2.0)).energy.total;
  std::printf("local %.1f mJ vs remote %.1f mJ -> %s saves energy\n",
              e_local, e_remote, e_local < e_remote ? "local" : "remote");
  return 0;
}
