// Offload planner: where is the local/remote crossover?
//
// Sweeps network throughput and frame size and asks, for each operating
// point, whether local (ω_loc = 1) or remote (ω_loc = 0) inference minimizes
// end-to-end latency — the decision the ω_loc term of Eq. (1) encodes. This
// is the planning workflow the paper motivates: answering deployment
// questions analytically instead of re-measuring a testbed.
//
//   $ ./offload_planner
#include <cstdio>
#include <vector>

#include "core/framework.h"
#include "trace/table.h"

int main() {
  using namespace xr::core;
  const XrPerformanceModel model;

  const std::vector<double> throughputs = {5, 10, 20, 40, 80};   // Mbps
  const std::vector<double> sizes = {300, 400, 500, 600, 700};

  std::vector<std::string> header{"throughput \\ size"};
  for (double s : sizes) header.push_back(xr::trace::fixed(s, 0));
  xr::trace::TablePrinter t(std::move(header));
  t.set_align(0, xr::trace::Align::kLeft);

  for (double mbps : throughputs) {
    std::vector<std::string> row{xr::trace::fixed(mbps, 0) + " Mbps"};
    for (double size : sizes) {
      ScenarioConfig local = make_local_scenario(size, 2.0);
      ScenarioConfig remote = make_remote_scenario(size, 2.0);
      remote.network.throughput_mbps = mbps;
      const double l_local = model.evaluate(local).latency.total;
      const double l_remote = model.evaluate(remote).latency.total;
      char cell[64];
      std::snprintf(cell, sizeof cell, "%s (%+.0f ms)",
                    l_local <= l_remote ? "local" : "REMOTE",
                    l_remote - l_local);
      row.emplace_back(cell);
    }
    t.add_row(std::move(row));
  }
  std::printf("%s",
              xr::trace::heading("Offload decision map: winner "
                                 "(remote minus local latency)")
                  .c_str());
  std::printf("%s", t.render().c_str());

  // Energy view at one size.
  std::printf("\nenergy at 500 px: ");
  ScenarioConfig local = make_local_scenario(500, 2.0);
  ScenarioConfig remote = make_remote_scenario(500, 2.0);
  const double e_local = model.evaluate(local).energy.total;
  const double e_remote = model.evaluate(remote).energy.total;
  std::printf("local %.1f mJ vs remote %.1f mJ -> %s saves energy\n",
              e_local, e_remote, e_local < e_remote ? "local" : "remote");
  return 0;
}
