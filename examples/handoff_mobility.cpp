// Mobility study: how handoffs degrade an edge-assisted XR session.
//
// A walking XR user leaves Wi-Fi coverage zones as frames are processed
// (random-walk mobility, Eq. 17). The example sweeps the user's speed and
// the fraction of vertical (cross-technology) handoffs, comparing the
// analytical expected handoff cost with the ground-truth simulator's
// measured per-frame handoff latency.
//
//   $ ./handoff_mobility
#include <cstdio>

#include "core/framework.h"
#include "trace/table.h"
#include "wireless/handoff.h"
#include "xrsim/ground_truth.h"

int main() {
  using namespace xr;

  const core::XrPerformanceModel model;
  trace::TablePrinter t({"speed m/frame", "vertical frac", "P(HO)",
                         "model L_HO ms", "sim L_HO ms", "total ms"});

  for (double step : {0.5, 1.0, 2.0, 4.0}) {
    for (double vertical : {0.0, 0.5}) {
      // The shared workload factory (also the serialization tests' corpus
      // and a valid inline base for any sweep request document).
      const core::ScenarioConfig s =
          core::make_handoff_mobility_scenario(step, vertical);

      const auto report = model.evaluate(s);
      const wireless::HandoffModel hom(s.mobility.handoff,
                                       s.mobility.zone_radius_m, step,
                                       vertical);

      xrsim::GroundTruthConfig gt_cfg;
      gt_cfg.frames = 2000;  // handoffs are rare; average over many frames
      const xrsim::GroundTruthSimulator sim(gt_cfg);
      const auto gt = sim.run(s);
      double sim_ho = 0;
      for (const auto& f : gt.frames) sim_ho += f.handoff_ms;
      sim_ho /= double(gt.frames.size());

      t.add_row({trace::fixed(step, 1), trace::fixed(vertical, 1),
                 trace::fixed(hom.handoff_probability(), 4),
                 trace::fixed(report.latency.handoff, 2),
                 trace::fixed(sim_ho, 2),
                 trace::fixed(report.latency.total, 1)});
    }
  }
  std::printf("%s", trace::heading("Handoff impact on an edge-assisted XR "
                                   "session (Eq. 17)")
                        .c_str());
  std::printf("%s", t.render().c_str());
  std::printf("\nvertical handoffs (Wi-Fi -> cellular) cost ~%.0f ms per "
              "event vs ~%.0f ms horizontal;\nfast-moving users should "
              "prefer larger cells or horizontal-only deployments.\n",
              wireless::HandoffModel(wireless::HandoffLatencyConfig{}, 120, 1,
                                     1)
                  .event_latency_ms(wireless::HandoffKind::kVertical),
              wireless::HandoffModel(wireless::HandoffLatencyConfig{}, 120, 1,
                                     0)
                  .event_latency_ms(wireless::HandoffKind::kHorizontal));
  return 0;
}
