// SLO-driven deployment planning.
//
// Combines the offload optimizer with the SLO analyzer: given a product's
// targets (motion-to-photon budget, frame rate, battery life, sensor
// freshness), search the deployment space for a configuration that meets
// them, and show the latency/energy Pareto frontier the application can
// choose from.
//
//   $ ./slo_planner
#include <cstdio>

#include "core/optimizer.h"
#include "core/slo.h"
#include "trace/table.h"

int main() {
  using namespace xr;

  core::ScenarioConfig base = core::make_remote_scenario(500, 2.0);
  base.network.throughput_mbps = 40.0;

  core::SloTargets targets;
  targets.motion_to_photon_ms = 450.0;
  targets.min_fps = 2.0;
  targets.battery_wh = 15.0;           // Quest-2-class battery
  targets.min_battery_hours = 2.0;
  targets.require_fresh_sensors = false;  // handled by sensor planning

  // 1. Does the default deployment meet the targets?
  std::printf("%s", trace::heading("Default deployment").c_str());
  const auto default_report = core::assess_slo(base, targets);
  std::printf("%s\n", default_report.to_string().c_str());

  // 2. Search the deployment space.
  const auto plan = core::plan_offload(base, {}, /*alpha=*/0.5);
  std::printf("%s", trace::heading("Deployment search").c_str());
  std::printf("candidates evaluated : %zu\n", plan.candidates_evaluated);
  std::printf("best latency  : %s -> %.1f ms / %.1f mJ\n",
              plan.best_latency.decision.to_string().c_str(),
              plan.best_latency.latency_ms(), plan.best_latency.energy_mj());
  std::printf("best energy   : %s -> %.1f ms / %.1f mJ\n",
              plan.best_energy.decision.to_string().c_str(),
              plan.best_energy.latency_ms(), plan.best_energy.energy_mj());
  std::printf("best weighted : %s -> %.1f ms / %.1f mJ\n\n",
              plan.best_weighted.decision.to_string().c_str(),
              plan.best_weighted.latency_ms(), plan.best_weighted.energy_mj());

  trace::TablePrinter pareto({"Pareto point", "latency (ms)", "energy (mJ)"});
  pareto.set_align(0, trace::Align::kLeft);
  for (const auto& p : plan.pareto)
    pareto.add_row({p.decision.to_string(), trace::fixed(p.latency_ms(), 1),
                    trace::fixed(p.energy_mj(), 1)});
  std::printf("%s\n", pareto.render().c_str());

  // 3. Re-assess the chosen deployment against the SLOs.
  const auto chosen = plan.best_weighted.decision.apply(base);
  std::printf("%s", trace::heading("Chosen deployment vs SLOs").c_str());
  const auto chosen_report = core::assess_slo(chosen, targets);
  std::printf("%s", chosen_report.to_string().c_str());
  return 0;
}
