// Quickstart: analyze one XR object-detection scenario.
//
// Builds a scenario (a phone-class XR device running local inference, then
// the same device offloading to an edge server), evaluates the full
// framework, and prints the per-segment latency/energy breakdown and the
// per-sensor AoI/RoI report.
//
//   $ ./quickstart
#include <cstdio>

#include "core/framework.h"

int main() {
  using namespace xr::core;

  // 1. Describe the scenario. Factories give the paper's Fig. 4 operating
  //    point; every field can be customized.
  ScenarioConfig local = make_local_scenario(/*frame_size=*/500.0,
                                             /*cpu_ghz=*/2.0);
  local.inference.local_cnn_name = "MobileNetv2_300_Float";

  ScenarioConfig remote = make_remote_scenario(500.0, 2.0);
  remote.network.throughput_mbps = 40.0;   // Wi-Fi 5 GHz TCP goodput
  remote.network.edge_distance_m = 50.0;

  // 2. Evaluate the framework (latency Eqs. 1-18, energy Eqs. 19-21,
  //    AoI/RoI Eqs. 22-26).
  const XrPerformanceModel model;
  const PerformanceReport local_report = model.evaluate(local);
  const PerformanceReport remote_report = model.evaluate(remote);

  // 3. Inspect results.
  std::printf("=== local inference (on-device MobileNet) ===\n%s\n",
              local_report.to_string().c_str());
  std::printf("=== remote inference (edge YOLOv3) ===\n%s\n",
              remote_report.to_string().c_str());

  std::printf("decision hint: %s inference is faster for this scenario "
              "(%.1f ms vs %.1f ms)\n",
              local_report.latency.total < remote_report.latency.total
                  ? "LOCAL"
                  : "REMOTE",
              local_report.latency.total, remote_report.latency.total);
  return 0;
}
