#include "core/latency_model.h"

#include <gtest/gtest.h>

#include "core/framework.h"
#include "queueing/mm1.h"
#include "wireless/propagation.h"

namespace xr::core {
namespace {

const LatencyModel& model() {
  static const LatencyModel m;
  return m;
}

TEST(LatencyModel, FrameGenerationEq2) {
  // L_fg = 1/n_fps + s_f1/c + δ_f1/m.
  const auto s = make_local_scenario(500, 2.0);
  const double c = model().client_resource(s.client);
  const double expected = 1000.0 / 30.0 + 500.0 / c +
                          raw_frame_mb(s.frame) / 44.0;
  EXPECT_NEAR(model().frame_generation_ms(s), expected, 1e-9);
}

TEST(LatencyModel, ClientResourceMatchesEq3) {
  const auto s = make_local_scenario(500, 2.0);
  // omega_c = 1 in the factory -> pure CPU branch of Eq. (3).
  EXPECT_NEAR(model().client_resource(s.client),
              18.24 + 1.84 * 4 - 6.02 * 2, 1e-9);
}

TEST(LatencyModel, VolumetricEq4) {
  const auto s = make_local_scenario(500, 2.0);
  const double c = model().client_resource(s.client);
  EXPECT_NEAR(model().volumetric_ms(s),
              s.frame.scene_size / c + volumetric_mb(s.frame) / 44.0, 1e-9);
}

TEST(LatencyModel, ExternalSensorsEq5TakesSlowestSensor) {
  auto s = make_local_scenario();
  s.sensors = {SensorConfig{"fast", 200.0, 10.0},
               SensorConfig{"slow", 50.0, 10.0}};
  s.updates_per_frame = 4;
  // Slowest: 4 updates x (20 ms + prop).
  const double per = 1000.0 / 50.0 + wireless::propagation_delay_ms(10.0);
  EXPECT_NEAR(model().external_sensors_ms(s), 4 * per, 1e-9);
}

TEST(LatencyModel, ExternalSensorsZeroWithoutUpdates) {
  auto s = make_local_scenario();
  s.updates_per_frame = 0;
  EXPECT_DOUBLE_EQ(model().external_sensors_ms(s), 0.0);
}

TEST(LatencyModel, BufferingEq7SumsThreeClasses) {
  BufferConfig b;
  b.service_rate_per_ms = 0.35;
  b.frame_arrival_per_ms = 0.03;
  b.volumetric_arrival_per_ms = 0.03;
  b.external_arrival_per_ms = 0.2;
  const double expected = 1.0 / (0.35 - 0.03) + 1.0 / (0.35 - 0.03) +
                          1.0 / (0.35 - 0.2);
  EXPECT_NEAR(model().buffering_ms(b), expected, 1e-9);
}

TEST(LatencyModel, RenderingEq8LocalUsesMemoryDelivery) {
  const auto s = make_local_scenario(500, 2.0);
  const double c = model().client_resource(s.client);
  const double expected = 500.0 / c + raw_frame_mb(s.frame) / 44.0 +
                          model().buffering_ms(s.buffer) +
                          s.frame.inference_result_mb / 44.0;
  EXPECT_NEAR(model().rendering_ms(s), expected, 1e-9);
}

TEST(LatencyModel, RenderingEq8RemoteUsesWirelessDelivery) {
  const auto s = make_remote_scenario(500, 2.0);
  const double c = model().client_resource(s.client);
  const double expected =
      500.0 / c + raw_frame_mb(s.frame) / 44.0 +
      model().buffering_ms(s.buffer) +
      wireless::transmission_time_ms(s.frame.inference_result_mb, 40.0) +
      wireless::propagation_delay_ms(50.0);
  EXPECT_NEAR(model().rendering_ms(s), expected, 1e-9);
}

TEST(LatencyModel, FrameConversionEq9) {
  const auto s = make_local_scenario(500, 2.0);
  const double c = model().client_resource(s.client);
  EXPECT_NEAR(model().frame_conversion_ms(s),
              500.0 / c + raw_frame_mb(s.frame) / 44.0, 1e-9);
}

TEST(LatencyModel, EncodingEq10) {
  const auto s = make_remote_scenario(500, 2.0);
  const double c = model().client_resource(s.client);
  const double work = -574.36 - 7.71 * 30 + 142.61 * 2 + 53.38 * 4 +
                      1.43 * 500 + 163.65 * 30 + 3.62 * 28;
  EXPECT_NEAR(model().encoding_ms(s), work / c + raw_frame_mb(s.frame) / 44.0,
              1e-9);
}

TEST(LatencyModel, LocalInferenceEq11) {
  auto s = make_local_scenario(500, 2.0);
  s.inference.local_cnn_name = "MobileNetv2_300_Float";
  const double c = model().client_resource(s.client);
  // C_CNN = 2.45 + 0.0025*99 + 0.03*24.2 (Eq. 12), used as the printed
  // denominator of Eq. (11).
  const double complexity = 2.45 + 0.0025 * 99 + 0.03 * 24.2;
  const double expected = s.frame.converted_size / (c * complexity) +
                          converted_mb(s.frame) / 44.0;
  EXPECT_NEAR(model().local_inference_ms(s), expected, 1e-9);
}

TEST(LatencyModel, LocalInferenceScalesWithSplitShare) {
  auto s = make_local_scenario();
  const double full = model().local_inference_ms(s);
  s.inference.omega_client = 0.5;
  EXPECT_NEAR(model().local_inference_ms(s), 0.5 * full, 1e-12);
}

TEST(LatencyModel, EdgeResourceDefaultsToPaperRatio) {
  const auto s = make_remote_scenario(500, 2.0);
  const double c = model().client_resource(s.client);
  EXPECT_NEAR(model().edge_resource(s.inference.edges[0], s.client),
              11.76 * c, 1e-9);
  EdgeConfig explicit_edge;
  explicit_edge.resource = 222.0;
  EXPECT_DOUBLE_EQ(model().edge_resource(explicit_edge, s.client), 222.0);
}

TEST(LatencyModel, DecodeEq14) {
  const auto s = make_remote_scenario(500, 2.0);
  const double c = model().client_resource(s.client);
  const double c_edge = 11.76 * c;
  EXPECT_NEAR(model().decode_ms(s, s.inference.edges[0]),
              model().encoding_ms(s) * c * (1.0 / 3.0) / c_edge, 1e-9);
}

TEST(LatencyModel, RemoteInferenceEq13Composition) {
  const auto s = make_remote_scenario(500, 2.0);
  const auto& edge = s.inference.edges[0];
  const double c_edge = model().edge_resource(edge, s.client);
  const double complexity = 2.45 + 0.0025 * 106 + 0.03 * 210;  // YOLOv3
  const double expected =
      1.0 * (500.0 / (c_edge * complexity) +
             model().encoded_payload_mb(s) / edge.memory_bandwidth_gbps +
             model().decode_ms(s, edge));
  EXPECT_NEAR(model().remote_inference_one_edge_ms(s, edge), expected, 1e-9);
  EXPECT_NEAR(model().remote_inference_ms(s), expected, 1e-9);
}

TEST(LatencyModel, MultiEdgeEq15TakesSlowestShare) {
  auto s = make_remote_scenario(500, 2.0);
  EdgeConfig fast = s.inference.edges[0];
  fast.omega_edge = 0.3;
  EdgeConfig slow = s.inference.edges[0];
  slow.omega_edge = 0.7;
  slow.resource = 40.0;  // much weaker server
  s.inference.edges = {fast, slow};
  const double expected =
      std::max(model().remote_inference_one_edge_ms(s, fast),
               model().remote_inference_one_edge_ms(s, slow));
  EXPECT_NEAR(model().remote_inference_ms(s), expected, 1e-12);
  EXPECT_NEAR(model().remote_inference_ms(s),
              model().remote_inference_one_edge_ms(s, slow), 1e-12);
}

TEST(LatencyModel, TransmissionEq16) {
  const auto s = make_remote_scenario(500, 2.0);
  const double expected =
      wireless::transmission_time_ms(model().encoded_payload_mb(s), 40.0) +
      wireless::propagation_delay_ms(50.0);
  EXPECT_NEAR(model().transmission_ms(s), expected, 1e-12);
}

TEST(LatencyModel, HandoffEq17ZeroWhenDisabled) {
  const auto s = make_remote_scenario();
  EXPECT_DOUBLE_EQ(model().handoff_ms(s), 0.0);
}

TEST(LatencyModel, HandoffEq17PositiveWithMobility) {
  auto s = make_remote_scenario();
  s.mobility.enabled = true;
  const double ho = model().handoff_ms(s);
  EXPECT_GT(ho, 0.0);
  // Faster movement raises the expected cost.
  s.mobility.step_length_per_frame_m *= 4;
  EXPECT_GT(model().handoff_ms(s), ho);
}

TEST(LatencyModel, CooperationEq18) {
  auto s = make_remote_scenario();
  EXPECT_DOUBLE_EQ(model().cooperation_ms(s), 0.0);  // inactive by default
  s.cooperation.active = true;
  const double expected =
      wireless::transmission_time_ms(s.network.coop_payload_mb, 40.0) +
      wireless::propagation_delay_ms(s.network.coop_distance_m);
  EXPECT_NEAR(model().cooperation_ms(s), expected, 1e-12);
}

TEST(LatencyModel, Eq1LocalComposition) {
  const auto s = make_local_scenario(500, 2.0);
  const auto b = model().evaluate(s);
  // Local path: remote-only segments are zero.
  EXPECT_DOUBLE_EQ(b.encoding, 0);
  EXPECT_DOUBLE_EQ(b.remote_inference, 0);
  EXPECT_DOUBLE_EQ(b.transmission, 0);
  EXPECT_DOUBLE_EQ(b.handoff, 0);
  EXPECT_NEAR(b.total,
              b.frame_generation + b.volumetric + b.external_sensors +
                  b.rendering + b.frame_conversion + b.local_inference,
              1e-9);
}

TEST(LatencyModel, Eq1RemoteComposition) {
  const auto s = make_remote_scenario(500, 2.0);
  const auto b = model().evaluate(s);
  EXPECT_DOUBLE_EQ(b.frame_conversion, 0);
  EXPECT_DOUBLE_EQ(b.local_inference, 0);
  EXPECT_GT(b.encoding, 0);
  EXPECT_GT(b.transmission, 0);
  EXPECT_NEAR(b.total,
              b.frame_generation + b.volumetric + b.external_sensors +
                  b.rendering + b.encoding + b.remote_inference +
                  b.transmission + b.handoff,
              1e-9);
}

TEST(LatencyModel, CooperationExcludedFromTotalByDefault) {
  auto s = make_remote_scenario();
  s.cooperation.active = true;
  const auto parallel = model().evaluate(s);
  EXPECT_GT(parallel.cooperation, 0);
  EXPECT_FALSE(parallel.cooperation_in_total);
  s.cooperation.include_in_total = true;
  const auto serial = model().evaluate(s);
  EXPECT_NEAR(serial.total, parallel.total + parallel.cooperation, 1e-9);
}

TEST(LatencyModel, SegmentAccessorMatchesFields) {
  const auto b = model().evaluate(make_remote_scenario());
  EXPECT_DOUBLE_EQ(b.segment(Segment::kEncoding), b.encoding);
  EXPECT_DOUBLE_EQ(b.segment(Segment::kRendering), b.rendering);
  EXPECT_DOUBLE_EQ(b.segment(Segment::kTransmission), b.transmission);
}

class LatencyMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(LatencyMonotonicity, TotalGrowsWithFrameSize) {
  const double ghz = GetParam();
  double prev_local = 0, prev_remote = 0;
  for (double size : {300.0, 400.0, 500.0, 600.0, 700.0}) {
    const double local = model().evaluate(make_local_scenario(size, ghz)).total;
    const double remote =
        model().evaluate(make_remote_scenario(size, ghz)).total;
    EXPECT_GT(local, prev_local) << "size " << size;
    EXPECT_GT(remote, prev_remote) << "size " << size;
    prev_local = local;
    prev_remote = remote;
  }
}

INSTANTIATE_TEST_SUITE_P(ClockSweep, LatencyMonotonicity,
                         ::testing::Values(1.0, 1.5, 2.0, 2.5, 3.0));

TEST(LatencyModel, FasterNetworkNeverHurtsRemote) {
  auto s = make_remote_scenario();
  s.network.throughput_mbps = 10;
  const double slow = model().evaluate(s).total;
  s.network.throughput_mbps = 80;
  EXPECT_LT(model().evaluate(s).total, slow);
}

TEST(LatencyModel, EvaluateValidates) {
  ScenarioConfig s = make_remote_scenario();
  s.frame.fps = 0;
  EXPECT_THROW((void)model().evaluate(s), std::invalid_argument);
}

}  // namespace
}  // namespace xr::core
