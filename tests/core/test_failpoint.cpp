// xr::fail contract: the "xr.fault.schedule.v1" document round-trips and
// rejects malformed input strictly; nth/every/probability triggers fire
// deterministically per the installed schedule; max_fires caps a rule;
// firings are audited as `fault.<point>.fired` counters; and with no
// schedule loaded every point() is disengaged. Behavior assertions are
// gated on fail::kEnabled so the same binary compiles (and the schema
// tests still run) under -DXR_FAULT_DISABLED=ON.
#include "core/failpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "obs/registry.h"

namespace xr::fail {
namespace {

/// Install a schedule for one test body and guarantee removal, so a
/// throwing assertion cannot leak faults into unrelated tests.
class ScopedSchedule {
 public:
  explicit ScopedSchedule(const FaultSchedule& s) { load_schedule(s); }
  ~ScopedSchedule() { clear_schedule(); }
  ScopedSchedule(const ScopedSchedule&) = delete;
  ScopedSchedule& operator=(const ScopedSchedule&) = delete;
};

FaultSchedule one_rule(const std::string& point, Trigger::Kind kind,
                       std::size_t n, Action action,
                       std::size_t max_fires = 0) {
  FaultSchedule s;
  s.seed = 42;
  FaultRule r;
  r.point = point;
  r.trigger.kind = kind;
  r.trigger.n = n;
  r.action = action;
  r.max_fires = max_fires;
  s.rules.push_back(r);
  return s;
}

TEST(FaultSchedule, JsonRoundTripsEveryField) {
  FaultSchedule s;
  s.seed = 0xDEADBEEFull;
  FaultRule nth;
  nth.point = "transport.send";
  nth.trigger.kind = Trigger::Kind::kNth;
  nth.trigger.n = 3;
  nth.action = Action::kTruncate;
  nth.max_fires = 2;
  FaultRule prob;
  prob.point = "shard.sink.flush";
  prob.trigger.kind = Trigger::Kind::kProbability;
  prob.trigger.p = 0.25;
  prob.action = Action::kDelay;
  prob.delay_ms = 15;
  s.rules = {nth, prob};

  const FaultSchedule back =
      FaultSchedule::from_json(core::Json::parse(s.to_json().dump()));
  ASSERT_EQ(back.rules.size(), 2u);
  EXPECT_EQ(back.seed, s.seed);
  EXPECT_EQ(back.rules[0].point, "transport.send");
  EXPECT_EQ(back.rules[0].trigger.kind, Trigger::Kind::kNth);
  EXPECT_EQ(back.rules[0].trigger.n, 3u);
  EXPECT_EQ(back.rules[0].action, Action::kTruncate);
  EXPECT_EQ(back.rules[0].max_fires, 2u);
  EXPECT_EQ(back.rules[1].trigger.kind, Trigger::Kind::kProbability);
  EXPECT_EQ(back.rules[1].trigger.p, 0.25);
  EXPECT_EQ(back.rules[1].action, Action::kDelay);
  EXPECT_EQ(back.rules[1].delay_ms, 15u);
  // The round-trip is exact: dumping again yields the same bytes.
  EXPECT_EQ(back.to_json().dump(), s.to_json().dump());
}

TEST(FaultSchedule, StrictParseRejectsMalformedDocuments) {
  const auto parse = [](const std::string& text) {
    return FaultSchedule::from_json(core::Json::parse(text));
  };
  const std::string ok =
      R"({"schema":"xr.fault.schedule.v1","seed":1,"rules":[)"
      R"({"point":"p","trigger":{"on":"nth","n":1},"action":"io_error"}]})";
  EXPECT_NO_THROW(parse(ok));
  // Wrong/missing schema tag.
  EXPECT_THROW(parse(R"({"schema":"nope","seed":1,"rules":[]})"),
               std::invalid_argument);
  // Unknown top-level field.
  EXPECT_THROW(
      parse(R"({"schema":"xr.fault.schedule.v1","seed":1,"rules":[],"x":1})"),
      std::invalid_argument);
  // Unknown action name.
  EXPECT_THROW(
      parse(R"({"schema":"xr.fault.schedule.v1","seed":1,"rules":[)"
            R"({"point":"p","trigger":{"on":"nth","n":1},"action":"boom"}]})"),
      std::invalid_argument);
  // n == 0 on a counted trigger.
  EXPECT_THROW(
      parse(R"({"schema":"xr.fault.schedule.v1","seed":1,"rules":[)"
            R"({"point":"p","trigger":{"on":"every","n":0},"action":"drop"}]})"),
      std::invalid_argument);
  // p outside [0, 1].
  EXPECT_THROW(
      parse(
          R"({"schema":"xr.fault.schedule.v1","seed":1,"rules":[)"
          R"({"point":"p","trigger":{"on":"probability","p":1.5},"action":"drop"}]})"),
      std::invalid_argument);
  // A counted trigger must not carry p (and vice versa).
  EXPECT_THROW(
      parse(
          R"({"schema":"xr.fault.schedule.v1","seed":1,"rules":[)"
          R"({"point":"p","trigger":{"on":"nth","n":1,"p":0.5},"action":"drop"}]})"),
      std::invalid_argument);
  // delay action without delay_ms.
  EXPECT_THROW(
      parse(R"({"schema":"xr.fault.schedule.v1","seed":1,"rules":[)"
            R"({"point":"p","trigger":{"on":"nth","n":1},"action":"delay"}]})"),
      std::invalid_argument);
  // Empty point name.
  EXPECT_THROW(
      parse(R"({"schema":"xr.fault.schedule.v1","seed":1,"rules":[)"
            R"({"point":"","trigger":{"on":"nth","n":1},"action":"drop"}]})"),
      std::invalid_argument);
}

TEST(Failpoint, NoScheduleMeansEveryPointIsDisengaged) {
  if (!kEnabled) GTEST_SKIP() << "fault layer compiled out";
  clear_schedule();
  EXPECT_FALSE(schedule_loaded());
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(point("test.failpoint.idle").has_value());
}

TEST(Failpoint, NthFiresExactlyOnce) {
  if (!kEnabled) GTEST_SKIP() << "fault layer compiled out";
  ScopedSchedule s(one_rule("test.failpoint.nth", Trigger::Kind::kNth, 3,
                            Action::kIoError));
  EXPECT_FALSE(point("test.failpoint.nth"));
  EXPECT_FALSE(point("test.failpoint.nth"));
  const auto fired = point("test.failpoint.nth");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->action, Action::kIoError);
  EXPECT_EQ(fired->point, "test.failpoint.nth");
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(point("test.failpoint.nth"));
  // Unrelated points never fire.
  EXPECT_FALSE(point("test.failpoint.other"));
}

TEST(Failpoint, EveryFiresPeriodicallyUntilMaxFires) {
  if (!kEnabled) GTEST_SKIP() << "fault layer compiled out";
  ScopedSchedule s(one_rule("test.failpoint.every", Trigger::Kind::kEvery, 2,
                            Action::kDrop, /*max_fires=*/3));
  std::size_t fires = 0;
  for (std::size_t hit = 1; hit <= 20; ++hit) {
    const auto fired = point("test.failpoint.every");
    if (hit % 2 == 0 && fires < 3) {
      ASSERT_TRUE(fired.has_value()) << "hit " << hit;
      EXPECT_EQ(fired->action, Action::kDrop);
      ++fires;
    } else {
      EXPECT_FALSE(fired.has_value()) << "hit " << hit;
    }
  }
  EXPECT_EQ(fires, 3u);
}

TEST(Failpoint, ReloadingTheScheduleResetsHitCounters) {
  if (!kEnabled) GTEST_SKIP() << "fault layer compiled out";
  const FaultSchedule s =
      one_rule("test.failpoint.reset", Trigger::Kind::kNth, 2, Action::kDrop);
  ScopedSchedule guard(s);
  EXPECT_FALSE(point("test.failpoint.reset"));
  load_schedule(s);  // reinstall: the partial hit count is discarded.
  EXPECT_FALSE(point("test.failpoint.reset"));
  EXPECT_TRUE(point("test.failpoint.reset").has_value());
}

TEST(Failpoint, ProbabilityIsSeededAndDeterministic) {
  if (!kEnabled) GTEST_SKIP() << "fault layer compiled out";
  FaultSchedule s;
  s.seed = 7;
  FaultRule r;
  r.point = "test.failpoint.prob";
  r.trigger.kind = Trigger::Kind::kProbability;
  r.trigger.p = 0.5;
  r.action = Action::kCorrupt;
  s.rules.push_back(r);

  const auto run = [&] {
    std::string pattern;
    for (int i = 0; i < 64; ++i)
      pattern += point("test.failpoint.prob") ? '1' : '0';
    return pattern;
  };
  ScopedSchedule guard(s);
  const std::string first = run();
  load_schedule(s);  // same seed → identical firing pattern.
  EXPECT_EQ(run(), first);

  // p = 0.5 over 64 hits: both outcomes occur (the pattern is not stuck).
  EXPECT_NE(first.find('1'), std::string::npos);
  EXPECT_NE(first.find('0'), std::string::npos);

  s.seed = 8;  // different seed → (overwhelmingly) different pattern.
  load_schedule(s);
  EXPECT_NE(run(), first);

  s.rules[0].trigger.p = 0.0;  // never fires...
  load_schedule(s);
  EXPECT_EQ(run(), std::string(64, '0'));
  s.rules[0].trigger.p = 1.0;  // ...and always fires.
  load_schedule(s);
  EXPECT_EQ(run(), std::string(64, '1'));
}

TEST(Failpoint, FirstFiringRuleWinsWhenRulesShareAPoint) {
  if (!kEnabled) GTEST_SKIP() << "fault layer compiled out";
  FaultSchedule s;
  FaultRule a = one_rule("test.failpoint.shared", Trigger::Kind::kNth, 2,
                         Action::kTruncate)
                    .rules[0];
  FaultRule b = one_rule("test.failpoint.shared", Trigger::Kind::kEvery, 2,
                         Action::kDrop)
                    .rules[0];
  s.rules = {a, b};
  ScopedSchedule guard(s);
  EXPECT_FALSE(point("test.failpoint.shared"));  // hit 1: neither.
  const auto second = point("test.failpoint.shared");
  ASSERT_TRUE(second.has_value());  // hit 2: both match; rule order wins.
  EXPECT_EQ(second->action, Action::kTruncate);
  EXPECT_FALSE(point("test.failpoint.shared"));  // hit 3.
  const auto fourth = point("test.failpoint.shared");
  ASSERT_TRUE(fourth.has_value());  // hit 4: only the every-2 rule.
  EXPECT_EQ(fourth->action, Action::kDrop);
}

TEST(Failpoint, FiringsIncrementTheAuditCounter) {
  if (!kEnabled) GTEST_SKIP() << "fault layer compiled out";
  obs::Counter audit("fault.test.failpoint.audited.fired");
  const std::uint64_t before = audit.value();
  ScopedSchedule s(one_rule("test.failpoint.audited", Trigger::Kind::kEvery, 1,
                            Action::kDrop, /*max_fires=*/5));
  for (int i = 0; i < 9; ++i) (void)point("test.failpoint.audited");
  EXPECT_EQ(audit.value(), before + 5);  // fired 5 of the 9 hits.
}

}  // namespace
}  // namespace xr::fail
