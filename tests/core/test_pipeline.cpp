#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <functional>

#include "core/framework.h"

namespace xr::core {
namespace {

TEST(Pipeline, SegmentNamesUnique) {
  const auto& segments = all_segments();
  EXPECT_EQ(segments.size(), 11u);
  for (std::size_t i = 0; i < segments.size(); ++i)
    for (std::size_t j = i + 1; j < segments.size(); ++j)
      EXPECT_STRNE(segment_name(segments[i]), segment_name(segments[j]));
}

TEST(Pipeline, DataSizeDerivations) {
  FrameConfig f;
  f.frame_size = 500;
  f.scene_size = 400;
  f.converted_size = 300;
  // YUV420: 1.5 B/px; scene: 2 B/px; RGB tensor: 3 B/px.
  EXPECT_NEAR(raw_frame_mb(f), 1.5e-6 * 500 * 500, 1e-12);
  EXPECT_NEAR(volumetric_mb(f), 2.0e-6 * 400 * 400, 1e-12);
  EXPECT_NEAR(converted_mb(f), 3.0e-6 * 300 * 300, 1e-12);
}

TEST(Pipeline, ExplicitDataSizesOverrideDerivation) {
  FrameConfig f;
  f.raw_frame_mb = 1.25;
  f.volumetric_mb = 0.5;
  f.converted_mb = 0.75;
  EXPECT_DOUBLE_EQ(raw_frame_mb(f), 1.25);
  EXPECT_DOUBLE_EQ(volumetric_mb(f), 0.5);
  EXPECT_DOUBLE_EQ(converted_mb(f), 0.75);
}

TEST(Pipeline, TotalTaskShareSumsClientAndEdges) {
  InferenceConfig inf;
  inf.omega_client = 0.2;
  inf.edges = {EdgeConfig{}, EdgeConfig{}};
  inf.edges[0].omega_edge = 0.5;
  inf.edges[1].omega_edge = 0.3;
  EXPECT_NEAR(total_task_share(inf), 1.0, 1e-12);
}

TEST(PipelineValidate, DefaultFactoriesAreValid) {
  EXPECT_NO_THROW(validate(make_local_scenario()));
  EXPECT_NO_THROW(validate(make_remote_scenario()));
}

/// Each case mutates a valid scenario into an invalid one.
struct InvalidCase {
  const char* name;
  std::function<void(ScenarioConfig&)> mutate;
};

class ValidateRejects : public ::testing::TestWithParam<InvalidCase> {};

TEST_P(ValidateRejects, Throws) {
  ScenarioConfig s = make_remote_scenario();
  GetParam().mutate(s);
  EXPECT_ANY_THROW(validate(s)) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    InvalidScenarios, ValidateRejects,
    ::testing::Values(
        InvalidCase{"zero_cpu",
                    [](ScenarioConfig& s) { s.client.cpu_ghz = 0; }},
        InvalidCase{"zero_gpu",
                    [](ScenarioConfig& s) { s.client.gpu_ghz = 0; }},
        InvalidCase{"omega_above_one",
                    [](ScenarioConfig& s) { s.client.omega_c = 1.5; }},
        InvalidCase{"zero_bandwidth",
                    [](ScenarioConfig& s) {
                      s.client.memory_bandwidth_gbps = 0;
                    }},
        InvalidCase{"zero_fps", [](ScenarioConfig& s) { s.frame.fps = 0; }},
        InvalidCase{"zero_frame_size",
                    [](ScenarioConfig& s) { s.frame.frame_size = 0; }},
        InvalidCase{"negative_result_payload",
                    [](ScenarioConfig& s) {
                      s.frame.inference_result_mb = -1;
                    }},
        InvalidCase{"bad_sensor_rate",
                    [](ScenarioConfig& s) {
                      s.sensors[0].generation_hz = 0;
                    }},
        InvalidCase{"unstable_frame_buffer",
                    [](ScenarioConfig& s) {
                      s.buffer.frame_arrival_per_ms =
                          s.buffer.service_rate_per_ms;
                    }},
        InvalidCase{"unstable_external_buffer",
                    [](ScenarioConfig& s) {
                      s.buffer.external_arrival_per_ms =
                          2 * s.buffer.service_rate_per_ms;
                    }},
        InvalidCase{"zero_throughput",
                    [](ScenarioConfig& s) {
                      s.network.throughput_mbps = 0;
                    }},
        InvalidCase{"remote_without_edges",
                    [](ScenarioConfig& s) { s.inference.edges.clear(); }},
        InvalidCase{"bad_omega_edge",
                    [](ScenarioConfig& s) {
                      s.inference.edges[0].omega_edge = 1.5;
                    }},
        InvalidCase{"unknown_edge_cnn",
                    [](ScenarioConfig& s) {
                      s.inference.edges[0].cnn_name = "NotACnn";
                    }},
        InvalidCase{"unknown_local_cnn",
                    [](ScenarioConfig& s) {
                      s.inference.local_cnn_name = "NotACnn";
                    }},
        InvalidCase{"mobility_step_too_big",
                    [](ScenarioConfig& s) {
                      s.mobility.enabled = true;
                      s.mobility.step_length_per_frame_m =
                          s.mobility.zone_radius_m;
                    }},
        InvalidCase{"bad_vertical_fraction",
                    [](ScenarioConfig& s) {
                      s.mobility.enabled = true;
                      s.mobility.vertical_fraction = 2.0;
                    }},
        InvalidCase{"zero_request_period",
                    [](ScenarioConfig& s) { s.aoi.request_period_ms = 0; }},
        InvalidCase{"zero_aoi_updates",
                    [](ScenarioConfig& s) { s.aoi.updates_per_frame = 0; }},
        InvalidCase{"updates_without_sensors",
                    [](ScenarioConfig& s) {
                      s.sensors.clear();
                      s.updates_per_frame = 2;
                    }}),
    [](const ::testing::TestParamInfo<InvalidCase>& info) {
      return info.param.name;
    });

TEST(PipelineValidate, LocalScenarioHasNoEdges) {
  const ScenarioConfig s = make_local_scenario();
  EXPECT_TRUE(s.inference.edges.empty());
  EXPECT_EQ(s.inference.placement, InferencePlacement::kLocal);
}

TEST(PipelineValidate, RemoteFactoryDisablesMobility) {
  // Fig. 4(b): "In remote inference, device mobility is not considered."
  const ScenarioConfig s = make_remote_scenario();
  EXPECT_FALSE(s.mobility.enabled);
}

TEST(PipelineValidate, SensorlessScenarioIsValid) {
  ScenarioConfig s = make_local_scenario();
  s.sensors.clear();
  s.updates_per_frame = 0;
  EXPECT_NO_THROW(validate(s));
}

}  // namespace
}  // namespace xr::core
