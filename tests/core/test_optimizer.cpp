#include "core/optimizer.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>

namespace xr::core {
namespace {

ScenarioConfig base_scenario() { return make_remote_scenario(500, 2.0); }

TEST(Optimizer, DecisionApplyLocal) {
  OffloadDecision d;
  d.placement = InferencePlacement::kLocal;
  d.omega_c = 0.75;
  d.local_cnn = "MobileNetv1_240_Quant";
  const auto s = d.apply(base_scenario());
  EXPECT_EQ(s.inference.placement, InferencePlacement::kLocal);
  EXPECT_TRUE(s.inference.edges.empty());
  EXPECT_EQ(s.inference.local_cnn_name, "MobileNetv1_240_Quant");
  EXPECT_DOUBLE_EQ(s.client.omega_c, 0.75);
  EXPECT_NO_THROW(validate(s));
}

TEST(Optimizer, DecisionApplyRemoteSplitsEdges) {
  OffloadDecision d;
  d.placement = InferencePlacement::kRemote;
  d.edge_cnn = "YoloV7";
  d.edge_count = 3;
  d.codec.bitrate_mbps = 8.0;
  const auto s = d.apply(base_scenario());
  ASSERT_EQ(s.inference.edges.size(), 3u);
  for (const auto& e : s.inference.edges) {
    EXPECT_EQ(e.cnn_name, "YoloV7");
    EXPECT_NEAR(e.omega_edge, 1.0 / 3.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(s.codec.bitrate_mbps, 8.0);
  EXPECT_NO_THROW(validate(s));
}

TEST(Optimizer, DecisionToStringDistinguishesPlacement) {
  OffloadDecision local;
  local.placement = InferencePlacement::kLocal;
  OffloadDecision remote;
  remote.placement = InferencePlacement::kRemote;
  EXPECT_NE(local.to_string().find("local"), std::string::npos);
  EXPECT_NE(remote.to_string().find("remote"), std::string::npos);
}

TEST(Optimizer, PlanFindsOptimaOverGrid) {
  const auto plan = plan_offload(base_scenario());
  EXPECT_GT(plan.candidates_evaluated, 10u);
  EXPECT_GT(plan.best_latency.latency_ms(), 0);
  // By definition of the optima:
  EXPECT_LE(plan.best_latency.latency_ms(), plan.best_energy.latency_ms());
  EXPECT_LE(plan.best_energy.energy_mj(), plan.best_latency.energy_mj());
}

TEST(Optimizer, WeightedObjectiveInterpolates) {
  const auto pure_latency = plan_offload(base_scenario(), {}, 1.0);
  const auto pure_energy = plan_offload(base_scenario(), {}, 0.0);
  EXPECT_NEAR(pure_latency.best_weighted.latency_ms(),
              pure_latency.best_latency.latency_ms(), 1e-9);
  EXPECT_NEAR(pure_energy.best_weighted.energy_mj(),
              pure_energy.best_energy.energy_mj(), 1e-9);
}

TEST(Optimizer, ParetoFrontierIsNonDominated) {
  const auto plan = plan_offload(base_scenario());
  ASSERT_GE(plan.pareto.size(), 1u);
  for (std::size_t i = 1; i < plan.pareto.size(); ++i) {
    // Latency ascending, energy strictly descending along the frontier.
    EXPECT_GE(plan.pareto[i].latency_ms(), plan.pareto[i - 1].latency_ms());
    EXPECT_LT(plan.pareto[i].energy_mj(), plan.pareto[i - 1].energy_mj());
  }
  // Endpoints are the single-metric optima.
  EXPECT_NEAR(plan.pareto.front().latency_ms(),
              plan.best_latency.latency_ms(), 1e-9);
  EXPECT_NEAR(plan.pareto.back().energy_mj(), plan.best_energy.energy_mj(),
              1e-9);
}

TEST(Optimizer, RestrictedSearchSpaces) {
  OffloadSearchSpace local_only;
  local_only.include_remote = false;
  const auto plan = plan_offload(base_scenario(), local_only);
  EXPECT_EQ(plan.best_latency.decision.placement,
            InferencePlacement::kLocal);

  OffloadSearchSpace remote_only;
  remote_only.include_local = false;
  const auto plan2 = plan_offload(base_scenario(), remote_only);
  EXPECT_EQ(plan2.best_energy.decision.placement,
            InferencePlacement::kRemote);
}

TEST(Optimizer, SlowNetworkPushesDecisionLocal) {
  auto s = base_scenario();
  s.network.throughput_mbps = 2.0;  // terrible uplink
  const auto plan = plan_offload(s);
  EXPECT_EQ(plan.best_latency.decision.placement,
            InferencePlacement::kLocal);
}

TEST(Optimizer, Validation) {
  EXPECT_THROW((void)plan_offload(base_scenario(), {}, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)plan_offload(base_scenario(), {}, 1.1),
               std::invalid_argument);
  OffloadSearchSpace empty;
  empty.include_local = false;
  empty.include_remote = false;
  EXPECT_THROW((void)plan_offload(base_scenario(), empty),
               std::invalid_argument);
  OffloadSearchSpace no_grid;
  no_grid.omega_c_grid.clear();
  EXPECT_THROW((void)plan_offload(base_scenario(), no_grid),
               std::invalid_argument);
}

TEST(BalanceEdgeSplit, ProportionalToResources) {
  const auto shares = balance_edge_split({100.0, 50.0, 50.0});
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_NEAR(shares[0], 0.5, 1e-12);
  EXPECT_NEAR(shares[1], 0.25, 1e-12);
  double total = 0;
  for (double s : shares) total += s;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BalanceEdgeSplit, BalancedSplitMinimizesEq15) {
  // Assigning shares proportional to resources makes the per-edge terms
  // equal, which minimizes the Eq. (15) max for resource-bound servers.
  auto s = base_scenario();
  EdgeConfig strong = s.inference.edges[0];
  strong.resource = 200.0;
  EdgeConfig weak = s.inference.edges[0];
  weak.resource = 100.0;
  const auto shares = balance_edge_split({200.0, 100.0});
  strong.omega_edge = shares[0];
  weak.omega_edge = shares[1];
  s.inference.edges = {strong, weak};
  const LatencyModel model;
  const double balanced = model.remote_inference_ms(s);

  // Any lopsided split is worse.
  s.inference.edges[0].omega_edge = 0.33;
  s.inference.edges[1].omega_edge = 0.67;
  EXPECT_GT(model.remote_inference_ms(s), balanced);
}

TEST(BalanceEdgeSplit, Validation) {
  EXPECT_THROW((void)balance_edge_split({}), std::invalid_argument);
  EXPECT_THROW((void)balance_edge_split({1.0, 0.0}), std::invalid_argument);
}

// ---- OffloadPlan::from_json structural validation ----------------------
// An index serves stored plans straight from JSON, so a corrupted document
// must be rejected at load with the offending field named — never served.

/// A synthetic evaluated candidate with chosen totals (from_json checks
/// structure, not physics, so defaults + pinned totals suffice).
EvaluatedDecision fake_entry(double latency_ms, double energy_mj) {
  EvaluatedDecision e;
  e.report.latency.total = latency_ms;
  e.report.energy.total = energy_mj;
  return e;
}

/// A structurally valid two-point plan to mutate per test.
OffloadPlan fake_plan() {
  OffloadPlan plan;
  plan.best_latency = fake_entry(10.0, 90.0);
  plan.best_energy = fake_entry(50.0, 20.0);
  plan.best_weighted = plan.best_latency;
  plan.pareto = {fake_entry(10.0, 90.0), fake_entry(50.0, 20.0)};
  plan.candidates_evaluated = 8;
  return plan;
}

void expect_from_json_throws(const OffloadPlan& plan,
                             const std::string& needle) {
  try {
    (void)OffloadPlan::from_json(plan.to_json());
    FAIL() << "expected std::invalid_argument containing '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(OffloadPlanJson, AcceptsAValidPlanBitwise) {
  const auto plan = fake_plan();
  const std::string dump = plan.to_json().dump();
  EXPECT_EQ(OffloadPlan::from_json(Json::parse(dump)).to_json().dump(), dump);
}

TEST(OffloadPlanJson, RejectsNonAscendingPareto) {
  auto plan = fake_plan();
  std::swap(plan.pareto[0], plan.pareto[1]);  // latency now descending
  expect_from_json_throws(
      plan, "pareto[1]: latency must be strictly ascending");
}

TEST(OffloadPlanJson, RejectsNonDescendingParetoEnergy) {
  auto plan = fake_plan();
  plan.pareto[1].report.energy.total = 90.0;  // duplicates entry 0's energy
  expect_from_json_throws(
      plan, "pareto[1]: energy must be strictly descending");
}

TEST(OffloadPlanJson, RejectsOutOfRangeDecisionFields) {
  auto plan = fake_plan();
  plan.best_latency.decision.omega_c = 2.0;
  expect_from_json_throws(plan, "omega_c must be in [0, 1], got 2");

  plan = fake_plan();
  plan.pareto[0].decision.edge_count = 0;
  expect_from_json_throws(plan, "edge_count must be >= 1");

  plan = fake_plan();
  plan.best_energy.decision.codec.bitrate_mbps = 0.0;
  expect_from_json_throws(plan,
                          "codec.bitrate_mbps must be finite and > 0");
}

TEST(OffloadPlanJson, RejectsImpossibleCounts) {
  auto plan = fake_plan();
  plan.candidates_evaluated = 0;
  expect_from_json_throws(plan, "candidates_evaluated must be >= 1");

  plan = fake_plan();
  plan.candidates_evaluated = 1;  // smaller than the 2-entry frontier
  expect_from_json_throws(plan, "smaller than the pareto frontier");

  plan = fake_plan();
  plan.pareto.clear();
  expect_from_json_throws(plan, "pareto must not be empty");
}

}  // namespace
}  // namespace xr::core
