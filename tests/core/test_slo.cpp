#include "core/slo.h"

#include <gtest/gtest.h>

namespace xr::core {
namespace {

TEST(Slo, AchievableFps) {
  EXPECT_NEAR(achievable_fps(100.0), 10.0, 1e-12);
  EXPECT_NEAR(achievable_fps(16.67), 60.0, 0.05);
  EXPECT_THROW((void)achievable_fps(0), std::invalid_argument);
}

TEST(Slo, BatteryLifeHandComputed) {
  // 15 Wh = 54 kJ; 200 mJ/frame at 30 fps = 6 W -> 9000 s = 2.5 h.
  EXPECT_NEAR(battery_life_hours(15.0, 200.0, 30.0), 2.5, 1e-9);
  EXPECT_THROW((void)battery_life_hours(0, 200, 30), std::invalid_argument);
  EXPECT_THROW((void)battery_life_hours(15, 0, 30), std::invalid_argument);
  EXPECT_THROW((void)battery_life_hours(15, 200, 0), std::invalid_argument);
}

TEST(Slo, AssessProducesAllChecks) {
  const auto report = assess_slo(make_remote_scenario(500, 2.0), SloTargets{});
  ASSERT_EQ(report.checks.size(), 4u);  // latency, fps, battery, freshness
  EXPECT_GT(report.achievable_fps, 0);
  EXPECT_GT(report.battery_hours, 0);
}

TEST(Slo, FreshnessCheckOptional) {
  SloTargets t;
  t.require_fresh_sensors = false;
  const auto report = assess_slo(make_remote_scenario(500, 2.0), t);
  EXPECT_EQ(report.checks.size(), 3u);
}

TEST(Slo, GenerousTargetsPassStrictTargetsFail) {
  const auto scenario = make_local_scenario(500, 2.0);
  SloTargets generous;
  generous.motion_to_photon_ms = 10000.0;
  generous.min_fps = 0.1;
  generous.min_battery_hours = 0.001;
  generous.require_fresh_sensors = false;
  EXPECT_TRUE(assess_slo(scenario, generous).all_pass);

  SloTargets strict;
  strict.motion_to_photon_ms = 1.0;  // impossible
  const auto report = assess_slo(scenario, strict);
  EXPECT_FALSE(report.all_pass);
  EXPECT_FALSE(report.checks[0].pass);
}

TEST(Slo, MeasuredValuesConsistentWithModel) {
  const XrPerformanceModel model;
  const auto scenario = make_remote_scenario(400, 2.0);
  const auto perf = model.evaluate(scenario);
  const auto report = assess_slo(scenario, SloTargets{}, model);
  EXPECT_NEAR(report.checks[0].measured, perf.latency.total, 1e-9);
  EXPECT_NEAR(report.achievable_fps, 1000.0 / perf.latency.total, 1e-9);
}

TEST(Slo, BatteryUsesEffectiveFps) {
  // When the pipeline is slower than the capture rate, the battery drains
  // at the pipeline rate, not the nominal capture fps.
  const auto scenario = make_remote_scenario(700, 1.0);  // slow pipeline
  const XrPerformanceModel model;
  const auto perf = model.evaluate(scenario);
  const double pipeline_fps = 1000.0 / perf.latency.total;
  ASSERT_LT(pipeline_fps, scenario.frame.fps);
  const SloTargets t;
  const auto report = assess_slo(scenario, t);
  EXPECT_NEAR(report.battery_hours,
              battery_life_hours(t.battery_wh, perf.energy.total,
                                 pipeline_fps),
              1e-9);
}

TEST(Slo, ToStringRendersVerdicts) {
  const auto report =
      assess_slo(make_local_scenario(500, 2.0), SloTargets{});
  const auto text = report.to_string();
  EXPECT_NE(text.find("motion-to-photon"), std::string::npos);
  EXPECT_NE(text.find("battery"), std::string::npos);
  EXPECT_TRUE(text.find("PASS") != std::string::npos ||
              text.find("FAIL") != std::string::npos);
}

TEST(Slo, StaleSensorFailsFreshnessSlo) {
  auto scenario = make_local_scenario(500, 2.0);
  scenario.sensors = {SensorConfig{"slow", 20.0, 50.0}};  // 20 Hz vs 5 ms
  const auto report = assess_slo(scenario, SloTargets{});
  const auto& freshness = report.checks.back();
  EXPECT_FALSE(freshness.pass);
  EXPECT_LT(freshness.measured, 1.0);
  EXPECT_FALSE(report.all_pass);
}

}  // namespace
}  // namespace xr::core
