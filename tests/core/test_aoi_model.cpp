#include "core/aoi_model.h"

#include <gtest/gtest.h>

namespace xr::core {
namespace {

/// Idealized buffer: negligible queueing so the Fig. 4(f) timing is pure.
BufferConfig ideal_buffer() {
  BufferConfig b;
  b.external_arrival_per_ms = 1e-9;
  b.service_rate_per_ms = 1e9;
  return b;
}

SensorConfig sensor_at(double hz, double distance = 0.0) {
  SensorConfig s;
  s.generation_hz = hz;
  s.distance_m = distance;
  return s;
}

TEST(AoiModel, Fig4fPaperAnnotations) {
  // 100 Hz sensor, 5 ms request period: AoI = 10, 15, 20 ms and
  // RoI = 0.5, 0.33, 0.25 at cycles 1-3 — the paper's printed values.
  const AoiModel m;
  const auto pts = m.timeline(sensor_at(100.0), ideal_buffer(), 5.0, 3);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_NEAR(pts[0].aoi_ms, 10.0, 1e-6);
  EXPECT_NEAR(pts[1].aoi_ms, 15.0, 1e-6);
  EXPECT_NEAR(pts[2].aoi_ms, 20.0, 1e-6);
  EXPECT_NEAR(pts[0].roi, 0.5, 1e-6);
  EXPECT_NEAR(pts[1].roi, 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(pts[2].roi, 0.25, 1e-6);
}

TEST(AoiModel, MatchedRateSensorKeepsFlatAoi) {
  // Fig. 4(e): the 200 Hz sensor against a 5 ms request period stays flat.
  const AoiModel m;
  const auto pts = m.timeline(sensor_at(200.0), ideal_buffer(), 5.0, 10);
  for (const auto& p : pts) EXPECT_NEAR(p.aoi_ms, 5.0, 1e-6);
}

TEST(AoiModel, SlowerSensorFallsBehindLinearly) {
  // 66.67 Hz sensor: each 5 ms cycle adds 10 ms of staleness.
  const AoiModel m;
  const auto pts =
      m.timeline(sensor_at(200.0 / 3.0), ideal_buffer(), 5.0, 5);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_NEAR(pts[i].aoi_ms - pts[i - 1].aoi_ms, 10.0, 1e-6);
}

TEST(AoiModel, Eq23IncludesPropagationAndBufferDelay) {
  const AoiModel m;
  BufferConfig b;
  b.external_arrival_per_ms = 0.2;
  b.service_rate_per_ms = 0.35;  // T̄ = 1/0.15 ms
  const double t_bar = 1.0 / 0.15;
  // 300 km away: 1 ms propagation.
  const double aoi =
      m.aoi_ms(sensor_at(100.0, 299792.458e3 / 1000.0), b, 5.0, 1);
  EXPECT_NEAR(aoi, 10.0 + 1.0 + t_bar, 1e-6);
}

TEST(AoiModel, BufferSojournMatchesEq22) {
  const AoiModel m;
  BufferConfig b;
  b.external_arrival_per_ms = 0.2;
  b.service_rate_per_ms = 0.35;
  EXPECT_NEAR(m.buffer_sojourn_ms(b), 1.0 / 0.15, 1e-9);
}

TEST(AoiModel, Eq24AverageOverCycles) {
  const AoiModel m;
  AoiConfig cfg;
  cfg.request_period_ms = 5.0;
  cfg.updates_per_frame = 3;
  // 100 Hz: cycles give 10, 15, 20 -> mean 15.
  EXPECT_NEAR(m.average_aoi_ms(sensor_at(100.0), ideal_buffer(), cfg), 15.0,
              1e-6);
}

TEST(AoiModel, Eq25And26ProcessedFrequencyAndRoi) {
  const AoiModel m;
  AoiConfig cfg;
  cfg.request_period_ms = 5.0;
  cfg.updates_per_frame = 3;
  const auto sensor = sensor_at(100.0);
  const double avg = m.average_aoi_ms(sensor, ideal_buffer(), cfg);
  EXPECT_NEAR(m.processed_frequency_hz(sensor, ideal_buffer(), cfg),
              1000.0 / avg, 1e-9);
  EXPECT_NEAR(m.roi(sensor, ideal_buffer(), cfg),
              (1000.0 / avg) / (1000.0 / 5.0), 1e-9);
}

TEST(AoiModel, FreshnessThreshold) {
  const AoiModel m;
  AoiConfig cfg;
  cfg.request_period_ms = 10.0;
  cfg.updates_per_frame = 3;
  // A sensor far faster than the request rate stays fresh.
  EXPECT_TRUE(m.fresh(sensor_at(1000.0), ideal_buffer(), cfg));
  // A sensor at half the request rate cannot be fresh.
  EXPECT_FALSE(m.fresh(sensor_at(50.0), ideal_buffer(), cfg));
}

TEST(AoiModel, RoiMonotoneInGenerationFrequency) {
  const AoiModel m;
  AoiConfig cfg;
  cfg.request_period_ms = 5.0;
  cfg.updates_per_frame = 5;
  double prev = 0;
  for (double hz : {50.0, 100.0, 200.0, 400.0, 800.0}) {
    const double r = m.roi(sensor_at(hz), ideal_buffer(), cfg);
    EXPECT_GT(r, prev) << hz;
    prev = r;
  }
}

TEST(AoiModel, RequiredGenerationHzAchievesFreshness) {
  const AoiModel m;
  AoiConfig cfg;
  cfg.request_period_ms = 5.0;
  cfg.updates_per_frame = 5;
  const double needed = m.required_generation_hz(10.0, ideal_buffer(), cfg);
  EXPECT_GT(needed, 0);
  // At the boundary frequency RoI is (numerically) 1.
  EXPECT_NEAR(m.roi(sensor_at(needed, 10.0), ideal_buffer(), cfg), 1.0,
              1e-3);
  // Slightly below it, not fresh.
  EXPECT_FALSE(
      m.fresh(sensor_at(needed * 0.98, 10.0), ideal_buffer(), cfg));
}

TEST(AoiModel, RequiredGenerationImpossibleWhenDelaysDominate) {
  const AoiModel m;
  AoiConfig cfg;
  cfg.request_period_ms = 5.0;
  cfg.updates_per_frame = 5;
  BufferConfig slow;
  slow.external_arrival_per_ms = 0.1;
  slow.service_rate_per_ms = 0.2;  // 10 ms sojourn > request period
  EXPECT_THROW((void)m.required_generation_hz(0.0, slow, cfg),
               std::runtime_error);
}

TEST(AoiModel, InputValidation) {
  const AoiModel m;
  EXPECT_THROW((void)m.aoi_ms(sensor_at(100), ideal_buffer(), 5.0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)m.aoi_ms(sensor_at(100), ideal_buffer(), 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)m.timeline(sensor_at(100), ideal_buffer(), 5.0, 0),
               std::invalid_argument);
}

TEST(AoiModel, TimelineMetadataConsistent) {
  const AoiModel m;
  const auto pts = m.timeline(sensor_at(100.0), ideal_buffer(), 5.0, 4);
  for (int n = 1; n <= 4; ++n) {
    const auto& p = pts[std::size_t(n - 1)];
    EXPECT_EQ(p.cycle, n);
    EXPECT_NEAR(p.request_time_ms, 5.0 * (n - 1), 1e-12);
    EXPECT_NEAR(p.generation_time_ms, 10.0 * n, 1e-9);
    EXPECT_NEAR(p.roi, 5.0 / p.aoi_ms, 1e-9);
  }
}

}  // namespace
}  // namespace xr::core
