#include "core/energy_model.h"

#include <gtest/gtest.h>

#include "core/framework.h"

namespace xr::core {
namespace {

struct Models {
  LatencyModel latency;
  EnergyModel energy;
};

const Models& models() {
  static const Models m;
  return m;
}

TEST(EnergyModel, ComputeSegmentsChargeEq21Power) {
  const auto s = make_local_scenario(500, 2.0);
  const auto lat = models().latency.evaluate(s);
  const auto e = models().energy.evaluate(s, lat);
  const double p = models().energy.compute_power_mw(s.client);
  EXPECT_NEAR(e.frame_generation, p * lat.frame_generation / 1000.0, 1e-9);
  EXPECT_NEAR(e.volumetric, p * lat.volumetric / 1000.0, 1e-9);
  EXPECT_NEAR(e.rendering, p * lat.rendering / 1000.0, 1e-9);
  EXPECT_NEAR(e.local_inference, p * lat.local_inference / 1000.0, 1e-9);
}

TEST(EnergyModel, RadioSegmentsChargeRadioPower) {
  const auto s = make_remote_scenario(500, 2.0);
  const auto lat = models().latency.evaluate(s);
  const auto e = models().energy.evaluate(s, lat);
  const auto& radio = models().energy.radio();
  EXPECT_NEAR(e.transmission, radio.tx_mw * lat.transmission / 1000.0, 1e-9);
  EXPECT_NEAR(e.external_sensors,
              radio.rx_mw * lat.external_sensors / 1000.0, 1e-9);
  // Remote inference is an idle wait for the XR device.
  EXPECT_NEAR(e.remote_inference,
              radio.idle_wait_mw * lat.remote_inference / 1000.0, 1e-9);
}

TEST(EnergyModel, Eq19TotalComposition) {
  const auto s = make_remote_scenario(500, 2.0);
  const auto lat = models().latency.evaluate(s);
  const auto e = models().energy.evaluate(s, lat);
  const double segments = e.frame_generation + e.volumetric +
                          e.external_sensors + e.rendering +
                          e.frame_conversion + e.encoding +
                          e.local_inference + e.remote_inference +
                          e.transmission + e.handoff;
  EXPECT_NEAR(e.total, segments + e.base + e.thermal, 1e-9);
}

TEST(EnergyModel, BaseEnergyAccruesOverFrameTime) {
  const auto s = make_local_scenario();
  const auto lat = models().latency.evaluate(s);
  const auto e = models().energy.evaluate(s, lat);
  const double base_mw = models().energy.power_model().base_power_mw();
  EXPECT_NEAR(e.base, base_mw * lat.total / 1000.0, 1e-9);
}

TEST(EnergyModel, ThermalIsFractionOfSegmentSum) {
  const auto s = make_local_scenario();
  const auto lat = models().latency.evaluate(s);
  const auto e = models().energy.evaluate(s, lat);
  const double theta = models().energy.power_model().thermal_fraction();
  const double segments = e.total - e.base - e.thermal;
  EXPECT_NEAR(e.thermal, theta * segments, 1e-9);
}

TEST(EnergyModel, CooperationFollowsLatencyInclusionFlag) {
  auto s = make_remote_scenario();
  s.cooperation.active = true;
  const auto lat_par = models().latency.evaluate(s);
  const auto e_par = models().energy.evaluate(s, lat_par);
  EXPECT_GT(e_par.cooperation, 0);
  s.cooperation.include_in_total = true;
  const auto lat_ser = models().latency.evaluate(s);
  const auto e_ser = models().energy.evaluate(s, lat_ser);
  EXPECT_GT(e_ser.total, e_par.total);
}

TEST(EnergyModel, LocalPathHasNoRadioTxEnergy) {
  const auto s = make_local_scenario();
  const auto e = models().energy.evaluate(s, models().latency.evaluate(s));
  EXPECT_DOUBLE_EQ(e.transmission, 0);
  EXPECT_DOUBLE_EQ(e.remote_inference, 0);
  EXPECT_DOUBLE_EQ(e.handoff, 0);
}

TEST(EnergyModel, SegmentAccessorMatchesFields) {
  const auto s = make_remote_scenario();
  const auto e = models().energy.evaluate(s, models().latency.evaluate(s));
  EXPECT_DOUBLE_EQ(e.segment(Segment::kEncoding), e.encoding);
  EXPECT_DOUBLE_EQ(e.segment(Segment::kTransmission), e.transmission);
  EXPECT_DOUBLE_EQ(e.segment(Segment::kExternalSensors),
                   e.external_sensors);
}

TEST(EnergyModel, AllComponentsNonNegativeAcrossSweep) {
  for (double ghz : {1.0, 2.0, 3.0})
    for (double size : {300.0, 500.0, 700.0})
      for (bool local : {true, false}) {
        const auto s = local ? make_local_scenario(size, ghz)
                             : make_remote_scenario(size, ghz);
        const auto e =
            models().energy.evaluate(s, models().latency.evaluate(s));
        for (Segment seg : all_segments())
          EXPECT_GE(e.segment(seg), 0.0)
              << segment_name(seg) << " ghz=" << ghz << " size=" << size;
        EXPECT_GT(e.total, 0.0);
        EXPECT_GE(e.thermal, 0.0);
        EXPECT_GT(e.base, 0.0);
      }
}

TEST(EnergyModel, HigherClockDrawsMorePowerInRange) {
  ClientConfig low;
  low.cpu_ghz = 1.8;
  ClientConfig high;
  high.cpu_ghz = 2.6;
  EXPECT_GT(models().energy.compute_power_mw(high),
            models().energy.compute_power_mw(low));
}

}  // namespace
}  // namespace xr::core
