#include "core/serialize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/framework.h"
#include "core/jsonio.h"

namespace xr::core {
namespace {

/// The scenarios a grid base can be: factories and the example workloads.
std::vector<std::pair<std::string, ScenarioConfig>> corpus() {
  return {
      {"local", make_local_scenario(300, 1.0)},
      {"remote", make_remote_scenario(700, 3.0)},
      {"autonomous_driving", make_autonomous_driving_scenario()},
      {"multiplayer_game", make_multiplayer_game_scenario()},
      {"handoff_mobility", make_handoff_mobility_scenario(2.0, 0.5)},
  };
}

TEST(ScenarioJson, RoundTrippedScenarioEvaluatesBitwiseIdentical) {
  const XrPerformanceModel model;
  for (const auto& [name, original] : corpus()) {
    const ScenarioConfig back =
        scenario_from_json(Json::parse(to_json(original).dump()));
    const PerformanceReport a = model.evaluate(original);
    const PerformanceReport b = model.evaluate(back);
    // Bitwise identity of the full report — every latency/energy breakdown
    // field and every sensor's AoI/RoI — via the exact serialization.
    EXPECT_EQ(to_json(a).dump(), to_json(b).dump()) << name;
  }
}

TEST(ScenarioJson, SerializationIsDeterministic) {
  for (const auto& [name, s] : corpus()) {
    const std::string text = to_json(s).dump();
    const ScenarioConfig back = scenario_from_json(Json::parse(text));
    EXPECT_EQ(to_json(back).dump(), text) << name;
  }
}

TEST(ScenarioJson, UnusualFieldValuesSurviveTheTrip) {
  ScenarioConfig s = make_remote_scenario();
  s.frame.raw_frame_mb = 1.0 / 3.0;     // explicit size (not the sentinel)
  s.frame.volumetric_mb = -1.0;         // derive-from-geometry sentinel
  s.inference.encoded_size = 123.456789012345678;
  s.inference.edges[0].resource = -1.0;  // derive-from-client sentinel
  s.mobility.enabled = true;
  s.mobility.handoff.service_migration_ms = 17.25;
  s.cooperation.active = true;
  s.cooperation.include_in_total = true;
  s.codec.quantization = 31.5;
  const ScenarioConfig back =
      scenario_from_json(Json::parse(to_json(s).dump()));
  EXPECT_EQ(back.frame.raw_frame_mb, s.frame.raw_frame_mb);
  EXPECT_EQ(back.frame.volumetric_mb, s.frame.volumetric_mb);
  EXPECT_EQ(back.inference.encoded_size, s.inference.encoded_size);
  EXPECT_EQ(back.inference.edges[0].resource, -1.0);
  EXPECT_TRUE(back.mobility.enabled);
  EXPECT_EQ(back.mobility.handoff.service_migration_ms, 17.25);
  EXPECT_TRUE(back.cooperation.include_in_total);
  EXPECT_EQ(back.codec.quantization, 31.5);
}

TEST(ScenarioJson, CompleteDocumentsOnly) {
  Json j = to_json(make_local_scenario());
  // A scenario document is complete, not a patch: dropping a member fails.
  Json partial = Json::object();
  for (const auto& [key, value] : j.as_object())
    if (key != "buffer") partial.set(key, value);
  EXPECT_THROW((void)scenario_from_json(partial), std::invalid_argument);
  EXPECT_THROW((void)scenario_from_json(Json::object()),
               std::invalid_argument);
}

TEST(ReportJson, RoundTripsBitwise) {
  const XrPerformanceModel model;
  const PerformanceReport report =
      model.evaluate(make_autonomous_driving_scenario());
  const PerformanceReport back =
      report_from_json(Json::parse(to_json(report).dump()));
  EXPECT_EQ(to_json(back).dump(), to_json(report).dump());
  ASSERT_EQ(back.sensors.size(), report.sensors.size());
  EXPECT_EQ(back.sensors[0].average_aoi_ms, report.sensors[0].average_aoi_ms);
  EXPECT_EQ(back.latency.total, report.latency.total);
  EXPECT_EQ(back.energy.total, report.energy.total);
}

TEST(JsonNumbers, RoundTripExactly) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           2.5e-17,
                           123456789.123456789,
                           -0.0,
                           5e-324,  // smallest denormal
                           1.7976931348623157e308};
  for (double v : values) {
    const double back = parse_double(format_double(v));
    EXPECT_EQ(back, v);
    EXPECT_EQ(std::signbit(back), std::signbit(v));
  }
}

}  // namespace
}  // namespace xr::core
