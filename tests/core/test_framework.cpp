#include "core/framework.h"

#include <gtest/gtest.h>

namespace xr::core {
namespace {

TEST(Framework, ReportIsInternallyConsistent) {
  const XrPerformanceModel model;
  const auto s = make_remote_scenario(500, 2.0);
  const auto report = model.evaluate(s);
  // The facade must produce the same numbers as the constituent models.
  EXPECT_NEAR(report.latency.total, model.latency_model().evaluate(s).total,
              1e-12);
  const auto energy =
      model.energy_model().evaluate(s, model.latency_model().evaluate(s));
  EXPECT_NEAR(report.energy.total, energy.total, 1e-12);
}

TEST(Framework, OneSensorReportPerSensor) {
  const XrPerformanceModel model;
  auto s = make_local_scenario();
  s.sensors = {SensorConfig{"a", 200, 10}, SensorConfig{"b", 100, 20},
               SensorConfig{"c", 50, 30}};
  const auto report = model.evaluate(s);
  ASSERT_EQ(report.sensors.size(), 3u);
  EXPECT_EQ(report.sensors[0].name, "a");
  EXPECT_EQ(report.sensors[2].name, "c");
  // Faster sensors have lower AoI and higher RoI.
  EXPECT_LT(report.sensors[0].average_aoi_ms,
            report.sensors[2].average_aoi_ms);
  EXPECT_GT(report.sensors[0].roi, report.sensors[2].roi);
}

TEST(Framework, SensorReportMatchesAoiModel) {
  const XrPerformanceModel model;
  const auto s = make_local_scenario();
  const auto report = model.evaluate(s);
  const auto& aoi = model.aoi_model();
  for (std::size_t i = 0; i < s.sensors.size(); ++i) {
    EXPECT_NEAR(report.sensors[i].average_aoi_ms,
                aoi.average_aoi_ms(s.sensors[i], s.buffer, s.aoi), 1e-12);
    EXPECT_NEAR(report.sensors[i].roi,
                aoi.roi(s.sensors[i], s.buffer, s.aoi), 1e-12);
    EXPECT_EQ(report.sensors[i].fresh, report.sensors[i].roi >= 1.0);
  }
}

TEST(Framework, ToStringMentionsSegmentsAndTotals) {
  const XrPerformanceModel model;
  const auto report = model.evaluate(make_remote_scenario());
  const auto text = report.to_string();
  EXPECT_NE(text.find("frame_generation"), std::string::npos);
  EXPECT_NE(text.find("encoding"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
  EXPECT_NE(text.find("RoI"), std::string::npos);
  EXPECT_NE(text.find("base energy"), std::string::npos);
  // Local-only segments are suppressed on the remote path.
  EXPECT_EQ(text.find("local_inference"), std::string::npos);
}

TEST(Framework, FactoryFrameSizeAndClockApplied) {
  const auto s = make_local_scenario(640.0, 2.5);
  EXPECT_DOUBLE_EQ(s.frame.frame_size, 640.0);
  EXPECT_DOUBLE_EQ(s.client.cpu_ghz, 2.5);
  EXPECT_DOUBLE_EQ(s.frame.scene_size, 640.0);
}

TEST(Framework, RemoteUsesYoloClassEdgeCnn) {
  const auto s = make_remote_scenario();
  ASSERT_EQ(s.inference.edges.size(), 1u);
  EXPECT_EQ(s.inference.edges[0].cnn_name, "YoloV3");
  EXPECT_DOUBLE_EQ(s.inference.omega_client, 0.0);
}

TEST(Framework, InvalidScenarioRejected) {
  const XrPerformanceModel model;
  auto s = make_local_scenario();
  s.client.omega_c = -1;
  EXPECT_THROW((void)model.evaluate(s), std::invalid_argument);
}

TEST(Framework, LatencyEnergyBothPositive) {
  const XrPerformanceModel model;
  for (double ghz : {1.0, 2.0, 3.0}) {
    const auto local = model.evaluate(make_local_scenario(500, ghz));
    const auto remote = model.evaluate(make_remote_scenario(500, ghz));
    EXPECT_GT(local.latency.total, 0);
    EXPECT_GT(local.energy.total, 0);
    EXPECT_GT(remote.latency.total, 0);
    EXPECT_GT(remote.energy.total, 0);
  }
}

}  // namespace
}  // namespace xr::core
