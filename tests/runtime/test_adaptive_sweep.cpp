// The adaptive-fidelity contract (runtime/adaptive.h): the selection rule
// is a pure function of the coarse measurements, pass-aware seeds keep
// both legs bitwise independent of shard layout, and the sharded two-pass
// flow (coarse legs -> one refinement set -> hybrid fine legs) merges
// bitwise identical to the monolithic AdaptiveSweep driver — for
// K ∈ {1, 2, 3, 7} × {range, strided}, across thread counts, and through
// a kill/resume mid-fine-leg.
#include "runtime/adaptive.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/shard/merge.h"
#include "runtime/shard/worker.h"
#include "testbed/experiments.h"

namespace xr::runtime {
namespace {

namespace fs = std::filesystem;
using core::Json;

class AdaptiveSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("xr_adaptive_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string stem(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

/// A small adaptive request over the Fig. 4-shaped remote grid: 2 clocks
/// x 3 sizes, 3 coarse / 10 fine frames — fast, but with a real
/// refinement decision to make.
SweepRequest small_request() {
  testbed::SweepConfig cfg;
  cfg.frame_sizes = {400, 500, 600};
  cfg.cpu_clocks_ghz = {1.0, 3.0};
  cfg.frames_per_point = 10;
  cfg.seed = 42;
  AdaptiveSpec adaptive;
  adaptive.coarse_frames = 3;
  adaptive.band_fraction = 0.05;
  auto request = testbed::adaptive_validation_request(
      core::InferencePlacement::kRemote, cfg, adaptive);
  request.execution.threads = 1;
  request.execution.chunk_records = 2;
  return request;
}

/// Run one adaptive request sharded in-process: K coarse legs, the
/// refinement set derived from their record streams (the pure-function
/// path sweep_plan uses), then K hybrid fine legs; returns the merged
/// summary plus (via out-params) the derived set for assertions.
shard::MergedSummary run_sharded_adaptive(
    const SweepRequest& request, const std::string& stem_base,
    std::size_t shards, shard::ShardStrategy strategy,
    std::vector<std::size_t>* refined_out = nullptr) {
  std::vector<std::string> coarse_jsonl;
  for (std::size_t k = 0; k < shards; ++k) {
    auto spec = shard::WorkerSpec::from_request(
        request, k, shards, strategy, stem_base + "c" + std::to_string(k));
    spec.adaptive_pass = 1;
    const auto outcome = shard::run_worker(spec);
    EXPECT_TRUE(outcome.complete);
    coarse_jsonl.push_back(outcome.records_path);
  }

  const std::size_t grid_size = request.grid.build().size();
  const auto estimates =
      coarse_estimates_from_records(coarse_jsonl, grid_size);
  const auto refined =
      select_refinement(request.grid, estimates, *request.adaptive);
  if (refined_out) *refined_out = refined;

  std::vector<shard::PartialReduction> partials;
  for (std::size_t k = 0; k < shards; ++k) {
    auto spec = shard::WorkerSpec::from_request(
        request, k, shards, strategy, stem_base + "f" + std::to_string(k));
    spec.adaptive_pass = 2;
    spec.refine = refined;
    spec.coarse_input = stem_base + "c" + std::to_string(k);
    partials.push_back(shard::run_worker(spec).partial);
  }
  return shard::merge_partials(partials);
}

// ---- request schema ----------------------------------------------------

TEST(AdaptiveSpecJson, RoundTripsAndRejectsBadFidelities) {
  AdaptiveSpec spec;
  spec.coarse_frames = 7;
  spec.fine_frames = 90;
  spec.band_fraction = 0.125;
  const auto back = AdaptiveSpec::from_json(Json::parse(spec.to_json().dump()));
  EXPECT_EQ(back.coarse_frames, 7u);
  EXPECT_EQ(back.fine_frames, 90u);
  EXPECT_EQ(back.band_fraction, 0.125);

  // coarse_frames >= fine_frames is refused at parse time, naming the
  // offending field.
  try {
    (void)AdaptiveSpec::from_json(
        Json::parse(R"({"coarse_frames":200,"fine_frames":200})"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("adaptive.coarse_frames"),
              std::string::npos);
  }
  EXPECT_THROW((void)AdaptiveSpec::from_json(Json::parse(
                   R"({"coarse_frames":0,"fine_frames":10})")),
               std::invalid_argument);
  EXPECT_THROW((void)AdaptiveSpec::from_json(Json::parse(
                   R"({"coarse_frames":2,"fine_frames":10,)"
                   R"("band_fraction":-0.5})")),
               std::invalid_argument);
}

TEST(AdaptiveSpecJson, RequestCarriesTheBlockAndGuardsTheEvaluator) {
  const SweepRequest request = small_request();
  const std::string text = request.to_json().dump();
  const SweepRequest back = SweepRequest::from_json(Json::parse(text));
  ASSERT_TRUE(back.adaptive.has_value());
  EXPECT_EQ(back.to_json().dump(), text);
  EXPECT_EQ(back.fingerprint(), request.fingerprint());

  // The adaptive fingerprint differs from both single-fidelity cousins.
  SweepRequest plain = request;
  plain.adaptive.reset();
  EXPECT_NE(plain.fingerprint(), request.fingerprint());

  // Adaptive + analytical evaluator is refused at parse time.
  Json j = request.to_json();
  Json analytical = Json::object();
  analytical.set("kind", "analytical");
  j.set("evaluator", std::move(analytical));
  EXPECT_THROW((void)SweepRequest::from_json(j), std::invalid_argument);
  EXPECT_THROW((void)AdaptiveSweep(plain), std::invalid_argument);
}

TEST(AdaptiveSpecJson, PassAwareSeedsExtendTheLegacyDerivation) {
  // Pass 0 IS the historical derivation — committed streams keep their
  // values.
  EXPECT_EQ(shard::point_seed(42, 7), shard::point_seed(42, 7, 0));
  // The two legs and the legacy sweep draw three distinct seeds per point.
  EXPECT_NE(shard::point_seed(42, 7, 1), shard::point_seed(42, 7, 0));
  EXPECT_NE(shard::point_seed(42, 7, 2), shard::point_seed(42, 7, 0));
  EXPECT_NE(shard::point_seed(42, 7, 1), shard::point_seed(42, 7, 2));
}

// ---- the selection rule ------------------------------------------------

/// A 1-axis grid spec with `n` numeric points (no placement semantics).
GridSpec line_grid(std::size_t n) {
  GridSpec grid;
  grid.factory = "remote";
  AxisSpec axis;
  axis.knob = "frame_size";
  for (std::size_t i = 0; i < n; ++i)
    axis.numbers.push_back(300.0 + 10.0 * double(i));
  grid.axes = {axis};
  return grid;
}

TEST(SelectRefinement, BandIsInclusiveAtTheEdge) {
  AdaptiveSpec adaptive;
  adaptive.coarse_frames = 2;
  adaptive.fine_frames = 10;
  adaptive.band_fraction = 0.10;
  // Latencies: 100 (argmin), 110 (exactly on the edge), 110.01 (outside);
  // energies far apart so only latency selects.
  const std::vector<PointEstimate> coarse = {
      {100.0, 50.0}, {110.0, 500.0}, {110.01, 501.0}};
  const auto refined = select_refinement(line_grid(3), coarse, adaptive);
  // Point 0: latency argmin AND energy argmin. Point 1: on the latency
  // edge, inclusive. Point 2: outside both bands.
  EXPECT_EQ(refined, (std::vector<std::size_t>{0, 1}));
}

TEST(SelectRefinement, BandZeroRefinesTheArgminsAlone) {
  AdaptiveSpec adaptive;
  adaptive.coarse_frames = 2;
  adaptive.fine_frames = 10;
  adaptive.band_fraction = 0.0;
  const std::vector<PointEstimate> coarse = {
      {100.0, 500.0}, {200.0, 50.0}, {300.0, 400.0}};
  // Latency argmin at 0, energy argmin at 1, point 2 nowhere.
  EXPECT_EQ(select_refinement(line_grid(3), coarse, adaptive),
            (std::vector<std::size_t>{0, 1}));
}

TEST(SelectRefinement, SizeMismatchIsRefused) {
  AdaptiveSpec adaptive;
  adaptive.coarse_frames = 2;
  adaptive.fine_frames = 10;
  EXPECT_THROW((void)select_refinement(line_grid(3),
                                       std::vector<PointEstimate>(2),
                                       adaptive),
               std::invalid_argument);
}

/// placement (outer, local/remote) x 4 positions (inner).
GridSpec placement_line_grid() {
  GridSpec grid;
  grid.factory = "remote";
  AxisSpec placement;
  placement.knob = "placement";
  placement.strings = {"local", "remote"};
  AxisSpec sizes;
  sizes.knob = "frame_size";
  sizes.numbers = {300, 400, 500, 600};
  grid.axes = {placement, sizes};
  return grid;
}

TEST(SelectRefinement, PlacementFlipsRefineBothStraddlingCells) {
  AdaptiveSpec adaptive;
  adaptive.coarse_frames = 2;
  adaptive.fine_frames = 10;
  adaptive.band_fraction = 0.0;
  // Index layout: local points 0..3, remote points 4..7. The decision is
  // local for cells 0/1 and remote for cells 2/3 — one flip between cells
  // 1 and 2, so cells 1 and 2 refine whole (indices 1, 2, 5, 6). Strictly
  // increasing energies pin the band rule to the two argmins, both at
  // index 0.
  const std::vector<PointEstimate> coarse = {
      {10.0, 100.0}, {20.0, 101.0}, {30.0, 102.0}, {40.0, 103.0},   // local
      {15.0, 104.0}, {25.0, 105.0}, {28.0, 106.0}, {35.0, 107.0}};  // remote
  const auto refined =
      select_refinement(placement_line_grid(), coarse, adaptive);
  // Band 0: latency argmin index 0, energy argmin index 0. Flips: cells
  // 1<->2 disagree (local vs remote) -> 1, 5, 2, 6.
  EXPECT_EQ(refined, (std::vector<std::size_t>{0, 1, 2, 5, 6}));
}

TEST(SelectRefinement, NoFlipsWithoutAPlacementAxisOrDisagreement) {
  AdaptiveSpec adaptive;
  adaptive.coarse_frames = 2;
  adaptive.fine_frames = 10;
  adaptive.band_fraction = 0.0;
  // Uniform decision (remote always wins): no cell refines via flips, so
  // only the two argmins remain — energy argmin at 0, latency argmin at 4.
  const std::vector<PointEstimate> coarse = {
      {20.0, 100.0}, {30.0, 101.0}, {40.0, 102.0}, {50.0, 103.0},   // local
      {10.0, 104.0}, {15.0, 105.0}, {18.0, 106.0}, {25.0, 107.0}};  // remote
  EXPECT_EQ(select_refinement(placement_line_grid(), coarse, adaptive),
            (std::vector<std::size_t>{0, 4}));
}

// ---- refinement-set document -------------------------------------------

TEST(RefinementSetJson, RoundTripsAndValidates) {
  RefinementSet set;
  set.fingerprint = 0xDEADBEEFull;
  set.grid_size = 10;
  set.indices = {1, 4, 9};
  const auto back = RefinementSet::from_json(Json::parse(set.to_json().dump()));
  EXPECT_EQ(back.fingerprint, 0xDEADBEEFull);
  EXPECT_EQ(back.grid_size, 10u);
  EXPECT_EQ(back.indices, set.indices);

  Json bad = set.to_json();
  Json idx = Json::array();
  idx.push_back(std::size_t{4});
  idx.push_back(std::size_t{1});
  bad.set("indices", std::move(idx));
  EXPECT_THROW((void)RefinementSet::from_json(bad), std::invalid_argument);
  Json oob = set.to_json();
  Json idx2 = Json::array();
  idx2.push_back(std::size_t{10});
  oob.set("indices", std::move(idx2));
  EXPECT_THROW((void)RefinementSet::from_json(oob), std::invalid_argument);
}

// ---- the determinism / merge-law contract ------------------------------

TEST_F(AdaptiveSweepTest, ShardedTwoPassMatchesMonolithicBitwise) {
  const SweepRequest request = small_request();
  const AdaptiveOutcome mono = run_adaptive(request);
  ASSERT_TRUE(mono.summary.gt.has_value());
  ASSERT_FALSE(mono.refined.empty());

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{3}, std::size_t{7}}) {
    for (const auto strategy :
         {shard::ShardStrategy::kRange, shard::ShardStrategy::kStrided}) {
      std::vector<std::size_t> refined;
      const auto sharded = run_sharded_adaptive(
          request,
          stem(std::string(shard::strategy_name(strategy)) +
               std::to_string(shards)),
          shards, strategy, &refined);
      // The refinement set derived from the sharded coarse streams is the
      // monolithic driver's set — a pure function of the request.
      EXPECT_EQ(refined, mono.refined)
          << shard::strategy_name(strategy) << " K=" << shards;
      std::string why;
      EXPECT_TRUE(shard::summaries_equivalent(mono.summary, sharded, &why))
          << shard::strategy_name(strategy) << " K=" << shards << ": "
          << why;
    }
  }
}

TEST_F(AdaptiveSweepTest, ThreadCountNeverChangesTheSummary) {
  SweepRequest request = small_request();
  const auto serial = run_adaptive(request);
  request.execution.threads = 3;
  request.execution.grain = 1;  // grain is mechanics, not identity
  const auto pooled = run_adaptive(request);
  EXPECT_EQ(pooled.refined, serial.refined);
  std::string why;
  EXPECT_TRUE(
      shard::summaries_equivalent(serial.summary, pooled.summary, &why))
      << why;
}

TEST_F(AdaptiveSweepTest, KilledFineLegResumesByteIdentical) {
  const SweepRequest request = small_request();
  const AdaptiveOutcome mono = run_adaptive(request);

  // Uninterrupted reference fine leg (shard 1 of 3).
  const auto coarse_stem = stem("c");
  auto coarse_spec = shard::WorkerSpec::from_request(
      request, 1, 3, shard::ShardStrategy::kRange, coarse_stem);
  coarse_spec.adaptive_pass = 1;
  ASSERT_TRUE(shard::run_worker(coarse_spec).complete);

  auto fine_spec = shard::WorkerSpec::from_request(
      request, 1, 3, shard::ShardStrategy::kRange, stem("ref"));
  fine_spec.adaptive_pass = 2;
  fine_spec.refine = mono.refined;
  fine_spec.coarse_input = coarse_stem;
  fine_spec.chunk_records = 1;
  const auto reference = shard::run_worker(fine_spec);
  ASSERT_TRUE(reference.complete);

  // Killed-after-one-record + resumed leg.
  fine_spec.output = stem("resumed");
  const auto first = shard::run_worker(fine_spec, /*max_new_records=*/1);
  ASSERT_FALSE(first.complete);
  fine_spec.resume = true;
  const auto resumed = shard::run_worker(fine_spec);
  ASSERT_TRUE(resumed.complete);

  std::ifstream a(reference.records_path, std::ios::binary);
  std::ifstream b(resumed.records_path, std::ios::binary);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

TEST_F(AdaptiveSweepTest, EmptyRefinementSetCopiesTheCoarseShard) {
  const SweepRequest request = small_request();

  auto coarse_spec = shard::WorkerSpec::from_request(
      request, 0, 1, shard::ShardStrategy::kRange, stem("c"));
  coarse_spec.adaptive_pass = 1;
  const auto coarse = shard::run_worker(coarse_spec);
  ASSERT_TRUE(coarse.complete);

  auto fine_spec = shard::WorkerSpec::from_request(
      request, 0, 1, shard::ShardStrategy::kRange, stem("f"));
  fine_spec.adaptive_pass = 2;
  fine_spec.refine = {};  // legal: nothing crossed the selection rule
  fine_spec.coarse_input = stem("c");
  const auto fine = shard::run_worker(fine_spec);
  ASSERT_TRUE(fine.complete);

  // Every value is the coarse value (only the stream identity differs).
  EXPECT_EQ(fine.partial.min_latency_ms(), coarse.partial.min_latency_ms());
  EXPECT_EQ(fine.partial.best_latency_index(),
            coarse.partial.best_latency_index());
  EXPECT_TRUE(fine.partial.gt()->same_values(*coarse.partial.gt()));
  EXPECT_NE(fine.partial.identity().grid_fingerprint,
            coarse.partial.identity().grid_fingerprint);
}

TEST_F(AdaptiveSweepTest, FineLegGuardsItsInputs) {
  const SweepRequest request = small_request();

  // Missing coarse stream: the leg has unrefined indices to copy.
  auto fine_spec = shard::WorkerSpec::from_request(
      request, 0, 1, shard::ShardStrategy::kRange, stem("f"));
  fine_spec.adaptive_pass = 2;
  fine_spec.refine = {0};
  EXPECT_THROW((void)shard::run_worker(fine_spec), std::invalid_argument);

  // A coarse checkpoint from a different fidelity is refused.
  SweepRequest other = request;
  other.adaptive->coarse_frames += 1;
  auto other_coarse = shard::WorkerSpec::from_request(
      other, 0, 1, shard::ShardStrategy::kRange, stem("other"));
  other_coarse.adaptive_pass = 1;
  ASSERT_TRUE(shard::run_worker(other_coarse).complete);
  fine_spec.coarse_input = stem("other");
  EXPECT_THROW((void)shard::run_worker(fine_spec), std::runtime_error);

  // Unsorted refinement sets and a missing leg selection fail loud.
  fine_spec.coarse_input.clear();
  fine_spec.refine = {2, 1};
  EXPECT_THROW((void)shard::run_worker(fine_spec), std::invalid_argument);
  auto no_pass = shard::WorkerSpec::from_request(
      request, 0, 1, shard::ShardStrategy::kRange, stem("np"));
  EXPECT_THROW((void)shard::run_worker(no_pass), std::invalid_argument);

  // A coarse leg with a refinement set is a contradiction, not a no-op.
  auto coarse_misuse = shard::WorkerSpec::from_request(
      request, 0, 1, shard::ShardStrategy::kRange, stem("cm"));
  coarse_misuse.adaptive_pass = 1;
  coarse_misuse.refine = {0};
  EXPECT_THROW((void)shard::run_worker(coarse_misuse),
               std::invalid_argument);

  // A document carrying leg fields without an adaptive block (e.g. a
  // misspelled key) must parse them so run_worker can refuse — never
  // silently run a full single-fidelity sweep instead of the intended
  // refinement leg.
  SweepRequest plain = request;
  plain.adaptive.reset();
  auto doc = shard::WorkerSpec::from_request(
                 plain, 0, 1, shard::ShardStrategy::kRange, stem("doc"))
                 .to_json();
  doc.set("adaptive_pass", std::size_t{2});
  const auto parsed = shard::WorkerSpec::from_json(doc);
  EXPECT_EQ(parsed.adaptive_pass, 2u);
  EXPECT_THROW((void)shard::run_worker(parsed), std::invalid_argument);
}

TEST_F(AdaptiveSweepTest, RunRequestDispatchesToTheAdaptiveDriver) {
  const SweepRequest request = small_request();
  const auto via_run_request = run_request(request);
  const auto via_driver = run_adaptive(request).summary;
  std::string why;
  EXPECT_TRUE(
      shard::summaries_equivalent(via_run_request, via_driver, &why))
      << why;
  // The hybrid summary is NOT the fine-everywhere summary (unrefined
  // points keep coarse values) — the fingerprint seals the difference.
  EXPECT_EQ(via_run_request.grid_fingerprint, request.fingerprint());
}

TEST_F(AdaptiveSweepTest, WorkerSpecRoundTripsAdaptiveFields) {
  const SweepRequest request = small_request();
  auto spec = shard::WorkerSpec::from_request(
      request, 1, 3, shard::ShardStrategy::kStrided, stem("w"));
  spec.adaptive_pass = 2;
  spec.refine = {0, 3, 5};
  spec.coarse_input = stem("c1");
  spec.grain = 4;
  const auto back =
      shard::WorkerSpec::from_json(Json::parse(spec.to_json().dump()));
  ASSERT_TRUE(back.adaptive.has_value());
  EXPECT_EQ(back.adaptive->coarse_frames, request.adaptive->coarse_frames);
  EXPECT_EQ(back.adaptive_pass, 2u);
  EXPECT_EQ(back.refine, spec.refine);
  EXPECT_EQ(back.coarse_input, spec.coarse_input);
  EXPECT_EQ(back.grain, 4u);
}

}  // namespace
}  // namespace xr::runtime
