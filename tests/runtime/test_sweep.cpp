#include "runtime/sweep.h"

#include <gtest/gtest.h>

#include "core/framework.h"

namespace xr::runtime {
namespace {

TEST(SweepSpec, EmptySpecYieldsTheBaseScenario) {
  const auto base = core::make_local_scenario(500, 2.0);
  const auto grid = SweepSpec(base).build();
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.axis_count(), 0u);
  const auto s = grid.at(0);
  EXPECT_DOUBLE_EQ(s.frame.frame_size, base.frame.frame_size);
  EXPECT_DOUBLE_EQ(s.client.cpu_ghz, base.client.cpu_ghz);
}

TEST(SweepSpec, SizeIsProductOfAxes) {
  const auto grid = SweepSpec(core::make_remote_scenario(500, 2.0))
                        .cpu_clocks_ghz({1.0, 2.0, 3.0})
                        .frame_sizes({300, 400, 500, 600, 700})
                        .codec_bitrates_mbps({2.0, 4.0})
                        .build();
  EXPECT_EQ(grid.size(), 3u * 5u * 2u);
  EXPECT_EQ(grid.axis_count(), 3u);
  EXPECT_EQ(grid.axis(0).name, "cpu_ghz");
}

TEST(SweepSpec, EnumerationMatchesNestedLoops) {
  // First declared axis is the outermost loop; factory geometry matches
  // make_local_scenario(size, ghz) exactly.
  const std::vector<double> clocks = {1.0, 2.0, 3.0};
  const std::vector<double> sizes = {300, 500, 700};
  const auto grid = SweepSpec(core::make_local_scenario(500, 2.0))
                        .cpu_clocks_ghz(clocks)
                        .frame_sizes(sizes)
                        .build();
  std::size_t i = 0;
  for (double ghz : clocks)
    for (double size : sizes) {
      const auto from_grid = grid.at(i);
      const auto from_factory = core::make_local_scenario(size, ghz);
      EXPECT_DOUBLE_EQ(from_grid.client.cpu_ghz, from_factory.client.cpu_ghz);
      EXPECT_DOUBLE_EQ(from_grid.frame.frame_size,
                       from_factory.frame.frame_size);
      EXPECT_DOUBLE_EQ(from_grid.frame.scene_size,
                       from_factory.frame.scene_size);
      EXPECT_DOUBLE_EQ(from_grid.frame.converted_size,
                       from_factory.frame.converted_size);
      ++i;
    }
  EXPECT_EQ(i, grid.size());
}

TEST(SweepSpec, CoordsRoundTrip) {
  const auto grid = SweepSpec(core::make_remote_scenario(500, 2.0))
                        .cpu_clocks_ghz({1.0, 2.0})
                        .frame_sizes({300, 500, 700})
                        .edge_counts({1, 2})
                        .build();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto c = grid.coords(i);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(grid.index_of(c), i);
  }
  EXPECT_THROW((void)grid.coords(grid.size()), std::out_of_range);
  EXPECT_THROW((void)grid.index_of({0}), std::invalid_argument);
}

TEST(SweepSpec, PlacementAxisConfiguresInference) {
  const auto grid =
      SweepSpec(core::make_local_scenario(500, 2.0))
          .placements({core::InferencePlacement::kLocal,
                       core::InferencePlacement::kRemote})
          .build();
  ASSERT_EQ(grid.size(), 2u);
  const auto local = grid.at(0);
  EXPECT_EQ(local.inference.placement, core::InferencePlacement::kLocal);
  EXPECT_TRUE(local.inference.edges.empty());
  EXPECT_DOUBLE_EQ(local.inference.omega_client, 1.0);
  const auto remote = grid.at(1);
  EXPECT_EQ(remote.inference.placement, core::InferencePlacement::kRemote);
  ASSERT_EQ(remote.inference.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(remote.inference.omega_client, 0.0);
  EXPECT_NO_THROW(core::validate(remote));
}

TEST(SweepSpec, EdgeCountAxisSplitsEvenly) {
  const auto grid = SweepSpec(core::make_remote_scenario(500, 2.0))
                        .edge_cnns({"YoloV7"})
                        .edge_counts({1, 2, 4})
                        .build();
  const auto s = grid.at(2);  // edge_count=4
  ASSERT_EQ(s.inference.edges.size(), 4u);
  for (const auto& e : s.inference.edges) {
    EXPECT_EQ(e.cnn_name, "YoloV7");  // CNN axis applied to every edge
    EXPECT_NEAR(e.omega_edge, 0.25, 1e-12);
  }
  EXPECT_EQ(s.inference.edges[3].name, "edge-3");
  EXPECT_NO_THROW(core::validate(s));
}

TEST(SweepSpec, LabelsDescribeThePoint) {
  const auto grid = SweepSpec(core::make_local_scenario(500, 2.0))
                        .cpu_clocks_ghz({1.0, 2.0})
                        .local_cnns({"MobileNetv1_240_Quant"})
                        .build();
  EXPECT_EQ(grid.label(0), "cpu_ghz=1, local_cnn=MobileNetv1_240_Quant");
  EXPECT_EQ(grid.label(1), "cpu_ghz=2, local_cnn=MobileNetv1_240_Quant");
}

TEST(SweepSpec, GenericTypedAxis) {
  auto grid =
      SweepSpec(core::make_local_scenario(500, 2.0))
          .axis<double>("fps", {30.0, 60.0},
                        [](core::ScenarioConfig& s, const double& fps) {
                          s.frame.fps = fps;
                        })
          .build();
  EXPECT_DOUBLE_EQ(grid.at(0).frame.fps, 30.0);
  EXPECT_DOUBLE_EQ(grid.at(1).frame.fps, 60.0);
}

TEST(SweepSpec, Validation) {
  SweepSpec spec(core::make_local_scenario(500, 2.0));
  EXPECT_THROW(spec.cpu_clocks_ghz({}), std::invalid_argument);
  spec.cpu_clocks_ghz({1.0});
  EXPECT_THROW(spec.cpu_clocks_ghz({2.0}), std::invalid_argument);  // dup
  EXPECT_THROW(
      (void)SweepSpec(core::make_remote_scenario(500, 2.0))
          .edge_counts({0})
          .build()
          .at(0),
      std::invalid_argument);
}

}  // namespace
}  // namespace xr::runtime
