#include "runtime/sweep.h"

#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/serialize.h"

namespace xr::runtime {
namespace {

using core::Json;

TEST(SweepSpec, EmptySpecYieldsTheBaseScenario) {
  const auto base = core::make_local_scenario(500, 2.0);
  const auto grid = SweepSpec(base).build();
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.axis_count(), 0u);
  const auto s = grid.at(0);
  EXPECT_DOUBLE_EQ(s.frame.frame_size, base.frame.frame_size);
  EXPECT_DOUBLE_EQ(s.client.cpu_ghz, base.client.cpu_ghz);
}

TEST(SweepSpec, SizeIsProductOfAxes) {
  const auto grid = SweepSpec(core::make_remote_scenario(500, 2.0))
                        .cpu_clocks_ghz({1.0, 2.0, 3.0})
                        .frame_sizes({300, 400, 500, 600, 700})
                        .codec_bitrates_mbps({2.0, 4.0})
                        .build();
  EXPECT_EQ(grid.size(), 3u * 5u * 2u);
  EXPECT_EQ(grid.axis_count(), 3u);
  EXPECT_EQ(grid.axis(0).name, "cpu_ghz");
}

TEST(SweepSpec, EnumerationMatchesNestedLoops) {
  // First declared axis is the outermost loop; factory geometry matches
  // make_local_scenario(size, ghz) exactly.
  const std::vector<double> clocks = {1.0, 2.0, 3.0};
  const std::vector<double> sizes = {300, 500, 700};
  const auto grid = SweepSpec(core::make_local_scenario(500, 2.0))
                        .cpu_clocks_ghz(clocks)
                        .frame_sizes(sizes)
                        .build();
  std::size_t i = 0;
  for (double ghz : clocks)
    for (double size : sizes) {
      const auto from_grid = grid.at(i);
      const auto from_factory = core::make_local_scenario(size, ghz);
      EXPECT_DOUBLE_EQ(from_grid.client.cpu_ghz, from_factory.client.cpu_ghz);
      EXPECT_DOUBLE_EQ(from_grid.frame.frame_size,
                       from_factory.frame.frame_size);
      EXPECT_DOUBLE_EQ(from_grid.frame.scene_size,
                       from_factory.frame.scene_size);
      EXPECT_DOUBLE_EQ(from_grid.frame.converted_size,
                       from_factory.frame.converted_size);
      ++i;
    }
  EXPECT_EQ(i, grid.size());
}

TEST(SweepSpec, CoordsRoundTrip) {
  const auto grid = SweepSpec(core::make_remote_scenario(500, 2.0))
                        .cpu_clocks_ghz({1.0, 2.0})
                        .frame_sizes({300, 500, 700})
                        .edge_counts({1, 2})
                        .build();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto c = grid.coords(i);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(grid.index_of(c), i);
  }
  EXPECT_THROW((void)grid.coords(grid.size()), std::out_of_range);
  EXPECT_THROW((void)grid.index_of({0}), std::invalid_argument);
}

TEST(SweepSpec, PlacementAxisConfiguresInference) {
  const auto grid =
      SweepSpec(core::make_local_scenario(500, 2.0))
          .placements({core::InferencePlacement::kLocal,
                       core::InferencePlacement::kRemote})
          .build();
  ASSERT_EQ(grid.size(), 2u);
  const auto local = grid.at(0);
  EXPECT_EQ(local.inference.placement, core::InferencePlacement::kLocal);
  EXPECT_TRUE(local.inference.edges.empty());
  EXPECT_DOUBLE_EQ(local.inference.omega_client, 1.0);
  const auto remote = grid.at(1);
  EXPECT_EQ(remote.inference.placement, core::InferencePlacement::kRemote);
  ASSERT_EQ(remote.inference.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(remote.inference.omega_client, 0.0);
  EXPECT_NO_THROW(core::validate(remote));
}

TEST(SweepSpec, EdgeCountAxisSplitsEvenly) {
  const auto grid = SweepSpec(core::make_remote_scenario(500, 2.0))
                        .edge_cnns({"YoloV7"})
                        .edge_counts({1, 2, 4})
                        .build();
  const auto s = grid.at(2);  // edge_count=4
  ASSERT_EQ(s.inference.edges.size(), 4u);
  for (const auto& e : s.inference.edges) {
    EXPECT_EQ(e.cnn_name, "YoloV7");  // CNN axis applied to every edge
    EXPECT_NEAR(e.omega_edge, 0.25, 1e-12);
  }
  EXPECT_EQ(s.inference.edges[3].name, "edge-3");
  EXPECT_NO_THROW(core::validate(s));
}

TEST(SweepSpec, LabelsDescribeThePoint) {
  const auto grid = SweepSpec(core::make_local_scenario(500, 2.0))
                        .cpu_clocks_ghz({1.0, 2.0})
                        .local_cnns({"MobileNetv1_240_Quant"})
                        .build();
  EXPECT_EQ(grid.label(0), "cpu_ghz=1, local_cnn=MobileNetv1_240_Quant");
  EXPECT_EQ(grid.label(1), "cpu_ghz=2, local_cnn=MobileNetv1_240_Quant");
}

TEST(SweepSpec, GenericTypedAxis) {
  auto grid =
      SweepSpec(core::make_local_scenario(500, 2.0))
          .axis<double>("fps", {30.0, 60.0},
                        [](core::ScenarioConfig& s, const double& fps) {
                          s.frame.fps = fps;
                        })
          .build();
  EXPECT_DOUBLE_EQ(grid.at(0).frame.fps, 30.0);
  EXPECT_DOUBLE_EQ(grid.at(1).frame.fps, 60.0);
}

TEST(SweepSpec, Validation) {
  SweepSpec spec(core::make_local_scenario(500, 2.0));
  EXPECT_THROW(spec.cpu_clocks_ghz({}), std::invalid_argument);
  spec.cpu_clocks_ghz({1.0});
  EXPECT_THROW(spec.cpu_clocks_ghz({2.0}), std::invalid_argument);  // dup
  // Eager validation: a bad edge count fails at declaration, not at at().
  EXPECT_THROW((void)SweepSpec(core::make_remote_scenario(500, 2.0))
                   .edge_counts({0}),
               std::invalid_argument);
}

TEST(SweepSpec, ClosureAxesAreTheNonSerializableEscapeHatch) {
  SweepSpec spec(core::make_local_scenario(500, 2.0));
  spec.cpu_clocks_ghz({1.0, 2.0});
  EXPECT_TRUE(spec.serializable());
  EXPECT_EQ(spec.grid_spec().axes.size(), 1u);

  spec.axis<double>("fps", {30.0, 60.0},
                    [](core::ScenarioConfig& s, const double& fps) {
                      s.frame.fps = fps;
                    });
  EXPECT_FALSE(spec.serializable());
  EXPECT_THROW((void)spec.grid_spec(), std::invalid_argument);
  // The spec still builds; it just cannot become a document.
  EXPECT_EQ(spec.build().size(), 4u);
}

TEST(SweepSpec, GridSpecRoundTripsTheSpecThroughJson) {
  const auto spec = SweepSpec(core::make_remote_scenario(640, 2.5))
                        .cpu_clocks_ghz({1.0, 2.0})
                        .placements({core::InferencePlacement::kLocal,
                                     core::InferencePlacement::kRemote})
                        .codec_bitrates_mbps({2.0, 8.0});
  const GridSpec doc = spec.grid_spec();
  ASSERT_TRUE(doc.scenario.has_value());  // base embedded inline
  const GridSpec reparsed =
      GridSpec::from_json(Json::parse(doc.to_json().dump()));
  const auto a = spec.build();
  const auto b = reparsed.build();
  ASSERT_EQ(a.size(), b.size());
  const core::XrPerformanceModel model;
  for (std::size_t i = 0; i < a.size(); i += 3) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_EQ(core::to_json(model.evaluate(a.at(i))).dump(),
              core::to_json(model.evaluate(b.at(i))).dump());
  }
}

// ---- GridSpec -----------------------------------------------------------

GridSpec demo_spec() {
  GridSpec spec;
  spec.factory = "remote";
  spec.frame_size = 500;
  spec.cpu_ghz = 2.0;
  AxisSpec clocks;
  clocks.knob = "cpu_ghz";
  clocks.numbers = {1.0, 2.0, 3.0};
  AxisSpec sizes;
  sizes.knob = "frame_size";
  sizes.numbers = {300, 500, 700};
  AxisSpec cnns;
  cnns.knob = "edge_cnn";
  cnns.strings = {"YoloV3", "YoloV7"};
  spec.axes = {clocks, sizes, cnns};
  return spec;
}

TEST(GridSpec, BuildMatchesEquivalentSweepSpec) {
  const auto grid = demo_spec().build();
  const auto reference =
      SweepSpec(core::make_remote_scenario(500, 2.0))
          .cpu_clocks_ghz({1.0, 2.0, 3.0})
          .frame_sizes({300, 500, 700})
          .edge_cnns({"YoloV3", "YoloV7"})
          .build();
  ASSERT_EQ(grid.size(), reference.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid.label(i), reference.label(i));
    const auto a = grid.at(i);
    const auto b = reference.at(i);
    EXPECT_EQ(a.frame.frame_size, b.frame.frame_size);
    EXPECT_EQ(a.client.cpu_ghz, b.client.cpu_ghz);
    ASSERT_EQ(a.inference.edges.size(), b.inference.edges.size());
    for (std::size_t e = 0; e < a.inference.edges.size(); ++e)
      EXPECT_EQ(a.inference.edges[e].cnn_name, b.inference.edges[e].cnn_name);
  }
}

TEST(GridSpec, JsonRoundTripRebuildsTheSameGrid) {
  const GridSpec original = demo_spec();
  const std::string text = original.to_json().dump();
  const GridSpec reparsed = GridSpec::from_json(Json::parse(text));
  const auto a = original.build();
  const auto b = reparsed.build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_EQ(a.at(i).frame.frame_size, b.at(i).frame.frame_size);
    EXPECT_EQ(a.at(i).client.cpu_ghz, b.at(i).client.cpu_ghz);
  }
  // Serialization itself is deterministic.
  EXPECT_EQ(text, reparsed.to_json().dump());
}

TEST(GridSpec, InlineScenarioBaseRoundTripsAnyWorkload) {
  GridSpec spec;
  spec.scenario = core::make_multiplayer_game_scenario();
  AxisSpec clocks;
  clocks.knob = "cpu_ghz";
  clocks.numbers = {1.0, 2.0};
  spec.axes = {clocks};

  const GridSpec reparsed =
      GridSpec::from_json(Json::parse(spec.to_json().dump()));
  ASSERT_TRUE(reparsed.scenario.has_value());
  const auto a = spec.build();
  const auto b = reparsed.build();
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  const core::XrPerformanceModel model;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(core::to_json(model.evaluate(a.at(i))).dump(),
              core::to_json(model.evaluate(b.at(i))).dump());
  // The heterogeneous two-edge deployment survived the trip.
  EXPECT_EQ(b.at(0).inference.edges.size(), 2u);
  EXPECT_EQ(b.at(0).inference.edges[1].name, "edge-B");
}

TEST(GridSpec, RejectsUnknownNames) {
  GridSpec spec = demo_spec();
  spec.factory = "orbital";
  EXPECT_THROW((void)spec.build(), std::invalid_argument);

  spec = demo_spec();
  AxisSpec bogus;
  bogus.knob = "warp_factor";
  bogus.numbers = {9.0};
  spec.axes.push_back(bogus);
  EXPECT_THROW((void)spec.build(), std::invalid_argument);

  spec = demo_spec();
  AxisSpec placement;
  placement.knob = "placement";
  placement.strings = {"local", "orbit"};
  spec.axes.push_back(placement);
  EXPECT_THROW((void)spec.build(), std::invalid_argument);
}

TEST(GridSpec, AxisValidationNamesTheOffendingAxis) {
  // Both value lists populated.
  AxisSpec mixed;
  mixed.knob = "cpu_ghz";
  mixed.numbers = {1.0};
  mixed.strings = {"YoloV3"};
  try {
    (void)axis_from_spec(mixed);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cpu_ghz"), std::string::npos);
  }

  // Wrong value kind for the knob.
  AxisSpec stringy;
  stringy.knob = "frame_size";
  stringy.strings = {"big"};
  try {
    (void)axis_from_spec(stringy);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("frame_size"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("numeric"), std::string::npos);
  }

  // Unknown knob ids name the axis too.
  try {
    (void)knob_is_numeric("warp_factor");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("warp_factor"), std::string::npos);
  }

  // Fractional edge counts are rejected eagerly.
  AxisSpec counts;
  counts.knob = "edge_count";
  counts.numbers = {1.5};
  EXPECT_THROW((void)axis_from_spec(counts), std::invalid_argument);

  // Duplicate knobs across axes are rejected, with the knob named.
  GridSpec dup = demo_spec();
  AxisSpec again;
  again.knob = "cpu_ghz";
  again.numbers = {4.0};
  dup.axes.push_back(again);
  try {
    (void)dup.build();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cpu_ghz"), std::string::npos);
  }

  // Mixed-type values are rejected on parse, naming the axis.
  try {
    (void)GridSpec::from_json(Json::parse(
        R"({"base":{"scenario":"remote","frame_size":500,"cpu_ghz":2},)"
        R"("axes":[{"knob":"cpu_ghz","values":[1.0,"turbo"]}]})"));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cpu_ghz"), std::string::npos);
  }
}

}  // namespace
}  // namespace xr::runtime
