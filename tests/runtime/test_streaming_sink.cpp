#include "runtime/shard/streaming_sink.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/framework.h"
#include "runtime/batch_evaluator.h"

namespace xr::runtime::shard {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test.
class StreamingSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("xr_sink_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string stem(const char* name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

ScenarioGrid small_grid() {
  return SweepSpec(core::make_remote_scenario(500, 2.0))
      .cpu_clocks_ghz({1.0, 2.0, 3.0})
      .frame_sizes({300, 500, 700})
      .build();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST_F(StreamingSinkTest, RecordRoundTripIsBitwiseExact) {
  const auto grid = small_grid();
  const core::XrPerformanceModel model;
  for (std::size_t i : {std::size_t{0}, grid.size() / 2, grid.size() - 1}) {
    const auto report = model.evaluate(grid.at(i));
    const auto parsed = parse_record_line(record_line(i, report));
    EXPECT_EQ(parsed.index, i);
    EXPECT_EQ(parsed.report.latency.total, report.latency.total);
    EXPECT_EQ(parsed.report.latency.buffer_wait, report.latency.buffer_wait);
    EXPECT_EQ(parsed.report.energy.total, report.energy.total);
    EXPECT_EQ(parsed.report.energy.thermal, report.energy.thermal);
    EXPECT_EQ(parsed.report.energy.base, report.energy.base);
    for (core::Segment s : core::all_segments()) {
      EXPECT_EQ(parsed.report.latency.segment(s), report.latency.segment(s));
      EXPECT_EQ(parsed.report.energy.segment(s), report.energy.segment(s));
    }
    ASSERT_EQ(parsed.report.sensors.size(), report.sensors.size());
    for (std::size_t m = 0; m < report.sensors.size(); ++m) {
      EXPECT_EQ(parsed.report.sensors[m].name, report.sensors[m].name);
      EXPECT_EQ(parsed.report.sensors[m].average_aoi_ms,
                report.sensors[m].average_aoi_ms);
      EXPECT_EQ(parsed.report.sensors[m].processed_hz,
                report.sensors[m].processed_hz);
      EXPECT_EQ(parsed.report.sensors[m].roi, report.sensors[m].roi);
      EXPECT_EQ(parsed.report.sensors[m].fresh, report.sensors[m].fresh);
    }
  }
}

TEST_F(StreamingSinkTest, PartialReductionMatchesBatchEvaluatorReductions) {
  const auto grid = small_grid();
  const auto result = BatchEvaluator({}, BatchOptions{1}).run(grid);

  PartialReduction partial(
      ShardIdentity{0, 1, ShardStrategy::kRange, grid.size()});
  for (std::size_t i = 0; i < grid.size(); ++i)
    partial.add(i, result.reports[i].latency.total,
                result.reports[i].energy.total);

  EXPECT_EQ(partial.evaluated(), grid.size());
  EXPECT_EQ(partial.best_latency_index(), result.best_latency_index);
  EXPECT_EQ(partial.best_energy_index(), result.best_energy_index);
  EXPECT_EQ(partial.min_latency_ms(), result.min_latency_ms);
  EXPECT_EQ(partial.max_latency_ms(), result.max_latency_ms);
  EXPECT_EQ(partial.min_energy_mj(), result.min_energy_mj);
  EXPECT_EQ(partial.max_energy_mj(), result.max_energy_mj);

  const auto frontier = partial.pareto();
  ASSERT_EQ(frontier.size(), result.pareto_indices.size());
  for (std::size_t k = 0; k < frontier.size(); ++k) {
    EXPECT_EQ(frontier[k].index, result.pareto_indices[k]);
    EXPECT_EQ(frontier[k].latency_ms,
              result.latency_ms(result.pareto_indices[k]));
    EXPECT_EQ(frontier[k].energy_mj,
              result.energy_mj(result.pareto_indices[k]));
  }
}

TEST_F(StreamingSinkTest, ParetoHandlesTiesLikeTheStableSort) {
  // Duplicate points and latency ties: the frontier must keep the earliest
  // index, exactly as BatchEvaluator's stable_sort + strict-improvement
  // scan does.
  PartialReduction partial(ShardIdentity{0, 1, ShardStrategy::kRange, 6});
  partial.add(0, 5.0, 10.0);
  partial.add(1, 5.0, 10.0);   // exact duplicate: loses to index 0
  partial.add(2, 5.0, 8.0);    // same latency, better energy: replaces 0
  partial.add(3, 4.0, 12.0);   // faster, worse energy: joins
  partial.add(4, 6.0, 8.0);    // dominated by 2 (tie on energy): excluded
  partial.add(5, 6.0, 7.0);    // strictly better energy: joins
  const auto frontier = partial.pareto();
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_EQ(frontier[0].index, 3u);
  EXPECT_EQ(frontier[1].index, 2u);
  EXPECT_EQ(frontier[2].index, 5u);
}

TEST_F(StreamingSinkTest, RejectsOutOfOrderIndices) {
  PartialReduction partial(ShardIdentity{0, 1, ShardStrategy::kRange, 4});
  partial.add(1, 1.0, 1.0);
  EXPECT_THROW(partial.add(1, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(partial.add(0, 1.0, 1.0), std::invalid_argument);
}

TEST_F(StreamingSinkTest, PartialJsonRoundTripsExactly) {
  const auto grid = small_grid();
  const auto result = BatchEvaluator({}, BatchOptions{1}).run(grid);
  PartialReduction partial(
      ShardIdentity{2, 5, ShardStrategy::kStrided, grid.size()});
  const ShardPlan plan(grid.size(), 5, ShardStrategy::kStrided);
  for (std::size_t j = 0; j < plan.shard_size(2); ++j) {
    const std::size_t g = plan.global_index(2, j);
    partial.add(g, result.reports[g].latency.total,
                result.reports[g].energy.total);
  }
  partial.wall_ms = 12.5;
  partial.threads = 3;

  const auto back =
      PartialReduction::from_json(Json::parse(partial.to_json().dump()));
  EXPECT_EQ(back.identity().shard_id, 2u);
  EXPECT_EQ(back.identity().shard_count, 5u);
  EXPECT_EQ(back.identity().strategy, ShardStrategy::kStrided);
  EXPECT_EQ(back.evaluated(), partial.evaluated());
  EXPECT_EQ(back.best_latency_index(), partial.best_latency_index());
  EXPECT_EQ(back.min_latency_ms(), partial.min_latency_ms());
  EXPECT_EQ(back.max_energy_mj(), partial.max_energy_mj());
  EXPECT_EQ(back.wall_ms, 12.5);
  const auto a = partial.pareto();
  const auto b = back.pareto();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].index, b[k].index);
    EXPECT_EQ(a[k].latency_ms, b[k].latency_ms);
    EXPECT_EQ(a[k].energy_mj, b[k].energy_mj);
  }
}

TEST_F(StreamingSinkTest, WritesChunkedRecordsAndCheckpoints) {
  const auto grid = small_grid();
  const core::XrPerformanceModel model;
  SinkOptions options;
  options.output_stem = stem("sweep");
  options.chunk_records = 4;
  const ShardIdentity id{0, 1, ShardStrategy::kRange, grid.size()};

  StreamingSink sink(options, id);
  for (std::size_t i = 0; i < grid.size(); ++i)
    sink.append(i, model.evaluate(grid.at(i)));
  const auto partial = sink.finalize();
  EXPECT_EQ(partial.evaluated(), grid.size());

  // Every record is one parseable line with the right index.
  std::ifstream in(sink.records_path());
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    const auto record = parse_record_line(line);
    EXPECT_EQ(record.index, count);
    ++count;
  }
  EXPECT_EQ(count, grid.size());

  // The checkpoint parses back to the same reduction.
  const auto checkpoint = PartialReduction::from_json(
      Json::parse(read_file(sink.partial_path())));
  EXPECT_EQ(checkpoint.evaluated(), partial.evaluated());
  EXPECT_EQ(checkpoint.min_latency_ms(), partial.min_latency_ms());
}

TEST_F(StreamingSinkTest, ScanRecoversPrefixAndDropsTornTail) {
  const auto grid = small_grid();
  const core::XrPerformanceModel model;
  SinkOptions options;
  options.output_stem = stem("sweep");
  options.chunk_records = 2;
  const ShardIdentity id{0, 1, ShardStrategy::kRange, grid.size()};
  const ShardPlan plan(grid.size(), 1, ShardStrategy::kRange);

  {
    StreamingSink sink(options, id);
    for (std::size_t i = 0; i < 5; ++i)
      sink.append(i, model.evaluate(grid.at(i)));
    sink.flush();
  }
  const std::string intact = read_file(options.output_stem + ".jsonl");

  // Append a torn line (a kill mid-write).
  {
    std::ofstream out(options.output_stem + ".jsonl",
                      std::ios::binary | std::ios::app);
    out << "{\"i\":5,\"latency\":{\"to";
  }
  const auto recovered = StreamingSink::scan_existing(options, id, plan);
  EXPECT_EQ(recovered.records, 5u);
  EXPECT_EQ(recovered.valid_bytes, intact.size());
  EXPECT_EQ(recovered.partial.evaluated(), 5u);

  // Resuming truncates the torn tail before appending.
  {
    StreamingSink sink(options, id, &recovered);
    EXPECT_EQ(sink.records_written(), 5u);
    sink.append(5, model.evaluate(grid.at(5)));
    sink.flush();
  }
  const auto again = StreamingSink::scan_existing(options, id, plan);
  EXPECT_EQ(again.records, 6u);
}

TEST_F(StreamingSinkTest, ScanStopsAtCorruptOrMisorderedLines) {
  const auto grid = small_grid();
  const core::XrPerformanceModel model;
  SinkOptions options;
  options.output_stem = stem("sweep");
  options.chunk_records = 8;
  const ShardIdentity id{0, 1, ShardStrategy::kRange, grid.size()};
  const ShardPlan plan(grid.size(), 1, ShardStrategy::kRange);

  // Write records 0..3 but swap record 2's index to 7: the scan must stop
  // after the first two records.
  {
    StreamingSink sink(options, id);
    for (std::size_t i = 0; i < 2; ++i)
      sink.append(i, model.evaluate(grid.at(i)));
    sink.flush();
  }
  {
    std::ofstream out(options.output_stem + ".jsonl",
                      std::ios::binary | std::ios::app);
    out << record_line(7, model.evaluate(grid.at(7))) << '\n';
    out << record_line(3, model.evaluate(grid.at(3))) << '\n';
  }
  const auto recovered = StreamingSink::scan_existing(options, id, plan);
  EXPECT_EQ(recovered.records, 2u);

  // A missing file is just an empty recovery.
  SinkOptions missing;
  missing.output_stem = stem("nothing");
  missing.chunk_records = 8;
  const auto empty = StreamingSink::scan_existing(missing, id, plan);
  EXPECT_EQ(empty.records, 0u);
  EXPECT_EQ(empty.valid_bytes, 0u);
}

}  // namespace
}  // namespace xr::runtime::shard
