// The SoA serving kernel's standing gate: decisions and reports computed by
// DecisionBatchKernel are BITWISE identical to the scalar
// XrPerformanceModel::evaluate walk — per point, per summary, per plan —
// across the shared example scenarios and across thread counts. Also the
// satellite coverage for decision_at at grid edges (single-value axes,
// placement-last ordering, out-of-range rejection).
#include "runtime/decision_batch.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/framework.h"
#include "core/optimizer.h"
#include "devices/memo.h"
#include "runtime/offload_search.h"
#include "runtime/sweep_request.h"

namespace xr::runtime {
namespace {

/// RAII toggle so a failing assertion can't leave the kernel disabled for
/// the rest of the suite.
class KernelToggle {
 public:
  explicit KernelToggle(bool enabled)
      : restore_(batch_decision_kernel_enabled()) {
    set_batch_decision_kernel(enabled);
  }
  ~KernelToggle() { set_batch_decision_kernel(restore_); }

 private:
  bool restore_;
};

/// The shared example workloads the paper's figures use, plus the factory
/// bases — the same bases the sharded merge-law gates sweep.
std::vector<std::pair<std::string, core::ScenarioConfig>> example_bases() {
  return {{"remote_factory", core::make_remote_scenario()},
          {"local_factory", core::make_local_scenario()},
          {"autonomous_driving", core::make_autonomous_driving_scenario()},
          {"multiplayer_game", core::make_multiplayer_game_scenario()},
          {"handoff_mobility", core::make_handoff_mobility_scenario()}};
}

/// Everything decision-relevant in a MergedSummary, excluding the wall-time
/// stats (which legitimately differ run to run).
void expect_summaries_bitwise_equal(const shard::MergedSummary& a,
                                    const shard::MergedSummary& b,
                                    const std::string& label) {
  EXPECT_EQ(a.grid_size, b.grid_size) << label;
  EXPECT_EQ(a.evaluated, b.evaluated) << label;
  EXPECT_EQ(a.grid_fingerprint, b.grid_fingerprint) << label;
  EXPECT_EQ(a.best_latency_index, b.best_latency_index) << label;
  EXPECT_EQ(a.best_energy_index, b.best_energy_index) << label;
  EXPECT_EQ(a.min_latency_ms, b.min_latency_ms) << label;
  EXPECT_EQ(a.max_latency_ms, b.max_latency_ms) << label;
  EXPECT_EQ(a.min_energy_mj, b.min_energy_mj) << label;
  EXPECT_EQ(a.max_energy_mj, b.max_energy_mj) << label;
  ASSERT_EQ(a.pareto.size(), b.pareto.size()) << label;
  for (std::size_t i = 0; i < a.pareto.size(); ++i) {
    EXPECT_EQ(a.pareto[i].index, b.pareto[i].index) << label << " pareto " << i;
    EXPECT_EQ(a.pareto[i].latency_ms, b.pareto[i].latency_ms)
        << label << " pareto " << i;
    EXPECT_EQ(a.pareto[i].energy_mj, b.pareto[i].energy_mj)
        << label << " pareto " << i;
  }
}

TEST(DecisionBatchKernel, DefaultEnabled) {
  EXPECT_TRUE(batch_decision_kernel_enabled());
}

// The tentpole gate: run_request with the kernel vs run_request without,
// over every example base and thread count — summaries bitwise equal and
// the derived plans byte-identical.
TEST(DecisionBatchKernel, BitwiseIdenticalToScalarAcrossExamplesAndThreads) {
  const core::XrPerformanceModel model;
  for (const auto& [name, base] : example_bases()) {
    for (const std::size_t threads : {std::size_t(1), std::size_t(2),
                                      std::size_t(7)}) {
      auto request = core::offload_search_request(base, {}, 0.5);
      request.execution.threads = threads;
      const std::string label = name + " threads=" + std::to_string(threads);

      std::optional<shard::MergedSummary> scalar, batched;
      {
        KernelToggle off(false);
        scalar = run_request(request, model);
      }
      {
        KernelToggle on(true);
        // Assert the kernel actually took the request (not a silent
        // scalar fallback that would make this gate vacuous).
        ASSERT_TRUE(try_run_request_batched(request, model).has_value())
            << label;
        batched = run_request(request, model);
      }
      expect_summaries_bitwise_equal(*scalar, *batched, label);

      const auto scalar_plan =
          core::offload_plan_from_summary(request, *scalar, model);
      const auto batched_plan =
          core::offload_plan_from_summary(request, *batched, model);
      EXPECT_EQ(scalar_plan.to_json().dump(), batched_plan.to_json().dump())
          << label;
    }
  }
}

// Per-point totals, not just reductions: every (latency, energy) pair the
// kernel computes equals the scalar model's, on a grid mixing decision
// knobs with scenario context axes — and is invariant to the thread count.
TEST(DecisionBatchKernel, PerPointTotalsMatchScalarOnMixedGrid) {
  const core::XrPerformanceModel model;
  GridSpec spec;
  spec.factory = "remote";
  const auto axis = [](const char* knob, std::vector<double> numbers,
                       std::vector<std::string> strings = {}) {
    AxisSpec a;
    a.knob = knob;
    a.numbers = std::move(numbers);
    a.strings = std::move(strings);
    return a;
  };
  spec.axes = {axis("frame_size", {300, 700}),
               axis("cpu_ghz", {1.0, 2.5}),
               axis("omega_c", {0.0, 0.5, 1.0}),
               axis("local_cnn", {}, {"MobileNetv2_300_Float"}),
               axis("edge_count", {1, 2}),
               axis("codec_mbps", {2.0, 8.0}),
               axis("placement", {}, {"local", "remote"})};

  const auto kernel = DecisionBatchKernel::prepare(spec, model);
  ASSERT_TRUE(kernel.has_value());
  const ScenarioGrid grid = spec.build();
  ASSERT_EQ(kernel->size(), grid.size());

  const auto serial = kernel->run(BatchOptions{1});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto report = model.evaluate(grid.at(i));
    ASSERT_EQ(serial.latency_ms[i], report.latency.total) << "point " << i;
    ASSERT_EQ(serial.energy_mj[i], report.energy.total) << "point " << i;
  }

  for (const std::size_t threads : {std::size_t(2), std::size_t(7)}) {
    const auto parallel = kernel->run(BatchOptions{threads});
    ASSERT_EQ(parallel.latency_ms, serial.latency_ms)
        << "threads=" << threads;
    ASSERT_EQ(parallel.energy_mj, serial.energy_mj) << "threads=" << threads;
  }
}

// All CNN/codec submodel lookups happen in prepare(); a run() touches only
// the precomputed tables. (The throughput bench gates the same property at
// serving scale.)
TEST(DecisionBatchKernel, RunPerformsNoSubmodelLookups) {
  const auto request =
      core::offload_search_request(core::make_remote_scenario(), {}, 0.5);
  const auto kernel = DecisionBatchKernel::prepare(request.grid);
  ASSERT_TRUE(kernel.has_value());
  const std::uint64_t before = devices::submodel_lookup_count();
  (void)kernel->run(BatchOptions{1});
  EXPECT_EQ(devices::submodel_lookup_count(), before);
}

TEST(DecisionBatchKernel, FallsBackWhenDisabledOrIneligible) {
  const core::XrPerformanceModel model;
  auto request =
      core::offload_search_request(core::make_remote_scenario(), {}, 0.5);
  {
    KernelToggle off(false);
    EXPECT_FALSE(try_run_request_batched(request, model).has_value());
  }
  {
    KernelToggle on(true);
    EXPECT_TRUE(try_run_request_batched(request, model).has_value());
    // Ground-truth evaluators have fidelity/seed semantics the table
    // cannot reproduce — the kernel must decline, not approximate.
    auto gt = request;
    gt.reduction.kind = ReductionKind::kSummary;
    gt.evaluator.kind = shard::EvaluatorKind::kGroundTruth;
    EXPECT_FALSE(try_run_request_batched(gt, model).has_value());
  }
}

// ---- decision_at grid edges (satellite) --------------------------------

TEST(DecisionAt, SingleValueAxesDecodeTheOnlyCandidate) {
  core::OffloadSearchSpace space;
  space.omega_c_grid = {0.25};
  space.local_cnns = {"MobileNetv2_300_Float"};
  space.edge_cnns = {"YoloV7"};
  space.edge_counts = {2};
  space.codec_bitrates_mbps = {4.0};
  space.include_local = false;  // placement axis collapses to {remote}
  const auto request = core::offload_search_request(
      core::make_remote_scenario(), space, 0.5);
  ASSERT_EQ(request.grid.build().size(), 1u);
  const auto d = core::decision_at(request.grid, 0);
  EXPECT_EQ(d.placement, core::InferencePlacement::kRemote);
  EXPECT_EQ(d.omega_c, 0.25);
  EXPECT_EQ(d.local_cnn, "MobileNetv2_300_Float");
  EXPECT_EQ(d.edge_cnn, "YoloV7");
  EXPECT_EQ(d.edge_count, 2);
  EXPECT_EQ(d.codec.bitrate_mbps, 4.0);
}

// The placement axis is declared last (fastest-varying), so adjacent
// indices are the local/remote pair of one candidate: index 0 and 1 share
// every decoded knob (here ω_c, the only knob both placements consume —
// decisions are canonicalized to the fields their placement uses) and
// differ in placement alone.
TEST(DecisionAt, PlacementVariesFastest) {
  const auto request = core::offload_search_request(
      core::make_remote_scenario(), {}, 0.5);
  const auto first = core::decision_at(request.grid, 0);
  const auto second = core::decision_at(request.grid, 1);
  EXPECT_EQ(first.placement, core::InferencePlacement::kLocal);
  EXPECT_EQ(second.placement, core::InferencePlacement::kRemote);
  EXPECT_EQ(first.omega_c, second.omega_c);

  // Last in-range index decodes (the far grid edge)…
  const std::size_t size = request.grid.build().size();
  EXPECT_NO_THROW((void)core::decision_at(request.grid, size - 1));
  // …and one past it is a hard error, not a wrapped coordinate.
  EXPECT_THROW((void)core::decision_at(request.grid, size),
               std::out_of_range);
}

}  // namespace
}  // namespace xr::runtime
