#include "runtime/shard/shard_plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/framework.h"

namespace xr::runtime::shard {
namespace {

void expect_exact_cover(const ShardPlan& plan) {
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t k = 0; k < plan.shard_count(); ++k) {
    std::size_t previous = 0;
    for (std::size_t j = 0; j < plan.shard_size(k); ++j) {
      const std::size_t g = plan.global_index(k, j);
      ASSERT_LT(g, plan.grid_size());
      EXPECT_TRUE(seen.insert(g).second) << "index " << g << " owned twice";
      EXPECT_EQ(plan.shard_of(g), k);
      if (j > 0) EXPECT_GT(g, previous) << "shard enumeration must ascend";
      previous = g;
      ++total;
    }
  }
  EXPECT_EQ(total, plan.grid_size());
  EXPECT_EQ(seen.size(), plan.grid_size());
}

TEST(ShardPlan, RangeCoversEveryIndexExactlyOnce) {
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{15},
                        std::size_t{64}, std::size_t{101}})
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{7}, std::size_t{13}})
      expect_exact_cover(ShardPlan(n, k, ShardStrategy::kRange));
}

TEST(ShardPlan, StridedCoversEveryIndexExactlyOnce) {
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{15},
                        std::size_t{64}, std::size_t{101}})
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{7}, std::size_t{13}})
      expect_exact_cover(ShardPlan(n, k, ShardStrategy::kStrided));
}

TEST(ShardPlan, RangeShardsAreContiguousAndBalanced) {
  const ShardPlan plan(17, 5, ShardStrategy::kRange);
  std::size_t expected_next = 0;
  std::size_t min_size = plan.grid_size(), max_size = 0;
  for (std::size_t k = 0; k < plan.shard_count(); ++k) {
    const std::size_t size = plan.shard_size(k);
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
    for (std::size_t j = 0; j < size; ++j)
      EXPECT_EQ(plan.global_index(k, j), expected_next++);
  }
  EXPECT_EQ(expected_next, plan.grid_size());
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ShardPlan, MoreShardsThanIndicesLeavesSurplusEmpty) {
  const ShardPlan plan(3, 7, ShardStrategy::kRange);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(plan.shard_size(k), 1u);
  for (std::size_t k = 3; k < 7; ++k) EXPECT_EQ(plan.shard_size(k), 0u);
  expect_exact_cover(plan);
  expect_exact_cover(ShardPlan(3, 7, ShardStrategy::kStrided));
}

TEST(ShardPlan, BoundsAreEnforced) {
  EXPECT_THROW(ShardPlan(10, 0), std::invalid_argument);
  const ShardPlan plan(10, 3);
  EXPECT_THROW((void)plan.shard_size(3), std::out_of_range);
  EXPECT_THROW((void)plan.global_index(0, plan.shard_size(0)),
               std::out_of_range);
  EXPECT_THROW((void)plan.shard_of(10), std::out_of_range);
}

TEST(ShardStrategyNames, RoundTrip) {
  EXPECT_EQ(strategy_from_name(strategy_name(ShardStrategy::kRange)),
            ShardStrategy::kRange);
  EXPECT_EQ(strategy_from_name(strategy_name(ShardStrategy::kStrided)),
            ShardStrategy::kStrided);
  EXPECT_THROW(strategy_from_name("diagonal"), std::invalid_argument);
}

// ---- GridSpec ----------------------------------------------------------

GridSpec demo_spec() {
  GridSpec spec;
  spec.base = "remote";
  spec.frame_size = 500;
  spec.cpu_ghz = 2.0;
  GridAxisSpec clocks;
  clocks.knob = "cpu_ghz";
  clocks.numbers = {1.0, 2.0, 3.0};
  GridAxisSpec sizes;
  sizes.knob = "frame_size";
  sizes.numbers = {300, 500, 700};
  GridAxisSpec cnns;
  cnns.knob = "edge_cnn";
  cnns.strings = {"YoloV3", "YoloV7"};
  spec.axes = {clocks, sizes, cnns};
  return spec;
}

TEST(GridSpec, BuildMatchesEquivalentSweepSpec) {
  const auto grid = demo_spec().build();
  const auto reference =
      SweepSpec(core::make_remote_scenario(500, 2.0))
          .cpu_clocks_ghz({1.0, 2.0, 3.0})
          .frame_sizes({300, 500, 700})
          .edge_cnns({"YoloV3", "YoloV7"})
          .build();
  ASSERT_EQ(grid.size(), reference.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid.label(i), reference.label(i));
    const auto a = grid.at(i);
    const auto b = reference.at(i);
    EXPECT_EQ(a.frame.frame_size, b.frame.frame_size);
    EXPECT_EQ(a.client.cpu_ghz, b.client.cpu_ghz);
    ASSERT_EQ(a.inference.edges.size(), b.inference.edges.size());
    for (std::size_t e = 0; e < a.inference.edges.size(); ++e)
      EXPECT_EQ(a.inference.edges[e].cnn_name, b.inference.edges[e].cnn_name);
  }
}

TEST(GridSpec, JsonRoundTripRebuildsTheSameGrid) {
  const GridSpec original = demo_spec();
  const std::string text = original.to_json().dump();
  const GridSpec reparsed = GridSpec::from_json(Json::parse(text));
  const auto a = original.build();
  const auto b = reparsed.build();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_EQ(a.at(i).frame.frame_size, b.at(i).frame.frame_size);
    EXPECT_EQ(a.at(i).client.cpu_ghz, b.at(i).client.cpu_ghz);
  }
  // Serialization itself is deterministic.
  EXPECT_EQ(text, reparsed.to_json().dump());
}

TEST(GridSpec, RejectsUnknownNames) {
  GridSpec spec = demo_spec();
  spec.base = "orbital";
  EXPECT_THROW((void)spec.build(), std::invalid_argument);

  spec = demo_spec();
  GridAxisSpec bogus;
  bogus.knob = "warp_factor";
  bogus.numbers = {9.0};
  spec.axes.push_back(bogus);
  EXPECT_THROW((void)spec.build(), std::invalid_argument);

  spec = demo_spec();
  GridAxisSpec placement;
  placement.knob = "placement";
  placement.strings = {"local", "orbit"};
  spec.axes.push_back(placement);
  EXPECT_THROW((void)spec.build(), std::invalid_argument);
}

TEST(JsonNumbers, RoundTripExactly) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           2.5e-17,
                           123456789.123456789,
                           -0.0,
                           5e-324,  // smallest denormal
                           1.7976931348623157e308};
  for (double v : values) {
    const double back = parse_double(format_double(v));
    EXPECT_EQ(back, v);
    EXPECT_EQ(std::signbit(back), std::signbit(v));
  }
}

}  // namespace
}  // namespace xr::runtime::shard
