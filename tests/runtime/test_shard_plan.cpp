#include "runtime/shard/shard_plan.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace xr::runtime::shard {
namespace {

void expect_exact_cover(const ShardPlan& plan) {
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t k = 0; k < plan.shard_count(); ++k) {
    std::size_t previous = 0;
    for (std::size_t j = 0; j < plan.shard_size(k); ++j) {
      const std::size_t g = plan.global_index(k, j);
      ASSERT_LT(g, plan.grid_size());
      EXPECT_TRUE(seen.insert(g).second) << "index " << g << " owned twice";
      EXPECT_EQ(plan.shard_of(g), k);
      if (j > 0) EXPECT_GT(g, previous) << "shard enumeration must ascend";
      previous = g;
      ++total;
    }
  }
  EXPECT_EQ(total, plan.grid_size());
  EXPECT_EQ(seen.size(), plan.grid_size());
}

TEST(ShardPlan, RangeCoversEveryIndexExactlyOnce) {
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{15},
                        std::size_t{64}, std::size_t{101}})
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{7}, std::size_t{13}})
      expect_exact_cover(ShardPlan(n, k, ShardStrategy::kRange));
}

TEST(ShardPlan, StridedCoversEveryIndexExactlyOnce) {
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{15},
                        std::size_t{64}, std::size_t{101}})
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{7}, std::size_t{13}})
      expect_exact_cover(ShardPlan(n, k, ShardStrategy::kStrided));
}

TEST(ShardPlan, RangeShardsAreContiguousAndBalanced) {
  const ShardPlan plan(17, 5, ShardStrategy::kRange);
  std::size_t expected_next = 0;
  std::size_t min_size = plan.grid_size(), max_size = 0;
  for (std::size_t k = 0; k < plan.shard_count(); ++k) {
    const std::size_t size = plan.shard_size(k);
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
    for (std::size_t j = 0; j < size; ++j)
      EXPECT_EQ(plan.global_index(k, j), expected_next++);
  }
  EXPECT_EQ(expected_next, plan.grid_size());
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ShardPlan, MoreShardsThanIndicesLeavesSurplusEmpty) {
  const ShardPlan plan(3, 7, ShardStrategy::kRange);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(plan.shard_size(k), 1u);
  for (std::size_t k = 3; k < 7; ++k) EXPECT_EQ(plan.shard_size(k), 0u);
  expect_exact_cover(plan);
  expect_exact_cover(ShardPlan(3, 7, ShardStrategy::kStrided));
}

TEST(ShardPlan, BoundsAreEnforced) {
  EXPECT_THROW(ShardPlan(10, 0), std::invalid_argument);
  const ShardPlan plan(10, 3);
  EXPECT_THROW((void)plan.shard_size(3), std::out_of_range);
  EXPECT_THROW((void)plan.global_index(0, plan.shard_size(0)),
               std::out_of_range);
  EXPECT_THROW((void)plan.shard_of(10), std::out_of_range);
}

TEST(ShardStrategyNames, RoundTrip) {
  EXPECT_EQ(strategy_from_name(strategy_name(ShardStrategy::kRange)),
            ShardStrategy::kRange);
  EXPECT_EQ(strategy_from_name(strategy_name(ShardStrategy::kStrided)),
            ShardStrategy::kStrided);
  EXPECT_THROW(strategy_from_name("diagonal"), std::invalid_argument);
}

}  // namespace
}  // namespace xr::runtime::shard
